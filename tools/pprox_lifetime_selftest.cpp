// Dynamic cross-check for pprox_lint --lifetime (DESIGN.md §14.6).
//
// Normal build: greeting() returns an owning std::string; the program reads
// it and exits 0.
//
// -DPPROX_CHECK_SELFTEST: greeting() is replaced by a deliberately dangling
// variant that returns a std::string_view of a function-local heap-backed
// string (96 chars defeats SSO, so the bytes live on the freed heap and
// ASan reports a deterministic heap-use-after-free). The ctest entry is
// WILL_FAIL under ASan builds. pprox_lint --lifetime is preprocessor-blind
// (it scans both arms of the #ifdef), so the lifetime-return-local finding
// fires on this TU in BOTH configurations — that is the static leg
// (lifetime_selftest_static), and this binary is the dynamic leg. If the
// analyzer ever stops seeing the bug, or the sanitizer does, the paired
// test goes green-on-red and CI catches the divergence.

#include <cstdio>
#include <string>
#include <string_view>

namespace {

#ifdef PPROX_CHECK_SELFTEST
std::string_view greeting() {
  std::string local(96, 'g');  // heap-backed: no SSO rescue for the view
  std::string_view view = local;
  return view;  // dangling: lifetime-return-local
}
#else
std::string greeting() { return std::string(96, 'g'); }
#endif

}  // namespace

int main() {
  auto g = greeting();
  // Touch every byte so the stale read cannot be optimized away.
  unsigned long sum = 0;
  for (char c : std::string_view(g)) sum += static_cast<unsigned char>(c);
  std::printf("greeting checksum: %lu\n", sum);
  return sum == 96ul * 'g' ? 0 : 1;
}
