// Interface of the pprox_lint --lifetime pass (interprocedural lifetime /
// escape analyzer, DESIGN.md §14). Mirrors locks_pass.hpp: the driver fills
// Options and calls run(); the implementation lives in
// pprox_lint_lifetime.cpp.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace lifetime {

struct Options {
  bool json = false;
  std::string baseline;        ///< --baseline FILE (ratchet mode)
  std::string baseline_write;  ///< --baseline-write FILE (regenerate)
  std::vector<std::filesystem::path> inputs;
};

/// Exit code: 0 clean/within-baseline, 1 findings/regressions, 2 IO errors.
int run(const Options& opts);

}  // namespace lifetime
