// pprox_lint --lifetime — interprocedural lifetime/escape pass (DESIGN.md
// §14).
//
// PProx's hot path is built on transient views: requests are parsed in
// place, ciphertext and pseudonyms live only as long as a connection
// buffer, and the unlinkability argument assumes no request-derived state
// outlives its shuffle batch. A dangling std::string_view here is therefore
// a privacy bug, not just a crash. This pass makes the discipline
// checkable before the zero-copy network rebuild (ROADMAP item 1)
// multiplies the number of view edges. Reusing the shared call-graph front
// end (lint_callgraph.hpp), the pass
//
//   1. replays every function body span, classifying view-typed values
//      (std::string_view / std::span / ByteView / pointers & iterators
//      obtained via .data()/.c_str()/.begin()) by the *owner* of the bytes
//      they alias: a local owner object (std::string, Bytes, vector, stack
//      array, or an owning temporary), a parameter, an arena-flavored
//      connection/batch buffer, or a member;
//   2. records escape events — returning a view, storing a view or a
//      callable into a member, handing a lambda to a sink that outlives
//      the frame (ThreadPool::submit, ShuffleQueue::add, DetThread,
//      registered callbacks) — and propagates two interprocedural
//      summaries to a fixpoint with shortest witness chains:
//      "returns a view of parameter i" and "parameter i escapes the
//      caller's frame";
//   3. reports PPROX-LIFETIME-RETURN-LOCAL (a view-returning function
//      returns a view of a local or temporary, directly or through a
//      summarized callee), PPROX-LIFETIME-REF-CAPTURE-ESCAPE (a by-ref or
//      `this` lambda capture reaches an outliving sink; weak_ptr /
//      shared_from_this guards and member-owned sinks are recognized as
//      safe), PPROX-LIFETIME-VIEW-MEMBER (a view-typed data member — the
//      declaration itself is the hazard: the object does not own the
//      bytes), and PPROX-LIFETIME-ARENA-ESCAPE (a view of a per-connection
//      or per-batch buffer stored into state that survives the handler).
//
// Known soundness limits (DESIGN.md §14.5): classification is token-level
// (no real types), so owner-typed temporaries hidden behind helper calls
// are invisible, `auto` views are recognized only for .data()/.c_str()
// initializers, and container element types are approximated by method
// name (push_back stores as-is; append/assign/insert copy).
//
// Suppression (on the offending line or the line above, reason mandatory,
// same contract as the other passes); aspects are return / capture /
// member / arena:
//   std::string_view text_;  // PPROX-LIFETIME-OK(member): parser is
//                            // stack-local to parse(), never outlives text
// A bare suppression (no ": reason") is itself a finding and suppresses
// nothing. Baseline ratchet: --baseline FILE compares finding keys against
// tools/lifetime_baseline.json; only new keys fail. --baseline-write FILE
// regenerates the file, carrying over existing "why" justifications.
#include "lifetime_pass.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint_callgraph.hpp"

namespace fs = std::filesystem;

namespace lifetime {
namespace {

using cg::Finding;

// ---------------------------------------------------------------------------
// Aspects (the suppression vocabulary).
// ---------------------------------------------------------------------------

enum Aspect : unsigned {
  kReturn = 1u << 0,
  kCapture = 1u << 1,
  kMember = 1u << 2,
  kArena = 1u << 3,
};
constexpr unsigned kAllAspects = kReturn | kCapture | kMember | kArena;

unsigned aspect_from_name(const std::string& name) {
  if (name == "return") return kReturn;
  if (name == "capture") return kCapture;
  if (name == "member") return kMember;
  if (name == "arena") return kArena;
  return 0;
}

// ---------------------------------------------------------------------------
// Vocabulary tables.
// ---------------------------------------------------------------------------

/// Non-owning view types, matched by last name component.
const std::set<std::string> kViewTypeNames = {
    "string_view", "basic_string_view", "span", "ByteView", "MutByteView"};

/// Owning container/buffer types: a local of one of these owns its bytes,
/// and a *temporary* of one of these dies at the end of the statement.
const std::set<std::string> kOwnerTypeNames = {
    "string", "basic_string", "Bytes",  "vector",       "array",
    "deque",  "ostringstream", "stringstream", "to_string"};

/// Element-wise character/byte types whose stack arrays are local owners.
const std::set<std::string> kCharTypeNames = {"char", "uint8_t",
                                              "unsigned"};

/// Builtin sink calls: a callable argument outlives the calling frame.
/// ThreadPool::submit and ShuffleQueue::add are also derived
/// interprocedurally (their bodies push the parameter into a member), but
/// the builtin names keep fixtures self-contained.
const std::set<std::string> kSinkCallNames = {"submit", "enqueue",
                                              "dispatch", "defer"};

/// Member-container calls that store their argument *as-is* (a pushed
/// string_view stays a string_view). append/assign/insert are deliberately
/// absent: on the std containers they copy the range.
const std::set<std::string> kStoreCallNames = {"push_back", "emplace_back",
                                               "emplace", "push", "add"};

/// Member calls yielding a view/iterator of the receiver.
const std::set<std::string> kViewOfRecvNames = {
    "data", "c_str", "begin", "end", "cbegin", "cend", "substr"};

/// Identifiers never classified as value sources inside expressions.
const std::set<std::string> kSkipIdents = {
    "const",    "constexpr", "static",   "unsigned", "signed",  "long",
    "short",    "int",       "char",     "bool",     "auto",    "void",
    "float",    "double",    "struct",   "class",    "enum",    "std",
    "size_t",   "uint8_t",   "uint16_t", "uint32_t", "uint64_t",
    "int8_t",   "int16_t",   "int32_t",  "int64_t",  "true",    "false",
    "nullptr",  "this",      "sizeof",   "static_cast",
    "reinterpret_cast", "const_cast", "dynamic_cast", "move",    "forward",
    "if",       "else",      "for",      "while",    "switch",  "case",
    "return",   "new",       "delete",   "throw",    "noexcept", "mutable",
    "override", "final",     "volatile", "operator", "template", "typename",
};

const std::set<std::string> kNotACall = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "else", "do", "case", "goto", "new", "delete", "throw", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "decltype", "typeid",
    "noexcept", "alignas", "static_assert", "defined", "assert",
    "PPROX_HOT", "PPROX_NONBLOCKING", "PPROX_ECALL_BOUNDARY",
};

/// Builtin calls never resolved to scanned functions (same rationale as
/// the other call-graph passes).
const std::set<std::string> kTerminalCallNames = {
    "malloc", "calloc", "realloc", "strdup", "make_unique", "make_shared",
    "to_string", "reserve", "resize", "append", "assign", "insert",
    "stoi", "stol", "stoul", "stoull", "stod", "snprintf", "memcpy",
    "memset", "min", "max", "swap",
};

const std::set<std::string> kNeutralMemberNames = {
    "load",  "store", "exchange", "fetch_add", "fetch_sub", "clear",
    "empty", "get",   "size",     "length",    "front",     "back",
    "top",   "count", "contains", "erase",     "find",      "at",
    "lock",  "unlock", "reset",   "release",   "str",       "value",
    "ok",
};

bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/// Arena-flavored names: per-connection / per-batch buffers whose lifetime
/// is a protocol window, not an object. A *locally owned* buffer named
/// this way classifies as local first (the decl wins over the name).
bool arena_named(const std::string& n) {
  return n.find("arena") != std::string::npos ||
         n.find("buffer") != std::string::npos ||
         n.find("scratch") != std::string::npos || n == "buf" ||
         ends_with(n, "_buf") || ends_with(n, "buf_");
}

bool member_named(const std::string& n) {
  return n.size() > 1 && n.back() == '_';
}

bool weakish(const std::string& n) {
  return n.find("weak") != std::string::npos ||
         n == "shared_from_this" || n == "weak_from_this";
}

bool callable_type_tok(const std::string& t) {
  return t == "function" || ends_with(t, "Fn") || ends_with(t, "Handler") ||
         ends_with(t, "Callback") || ends_with(t, "callback");
}

// ---------------------------------------------------------------------------
// Data model.
// ---------------------------------------------------------------------------

/// Where the bytes behind a value live.
constexpr unsigned kSrcLocal = 1u << 0;  ///< local owner or owning temporary
constexpr unsigned kSrcArena = 1u << 1;  ///< connection/batch buffer
constexpr unsigned kSrcMember = 1u << 2;

constexpr unsigned kMaxParams = 24;

unsigned param_bit(std::size_t i) {
  return i < kMaxParams ? (1u << i) : 0u;
}

struct Src {
  unsigned kind = 0;        ///< kSrcLocal | kSrcArena | kSrcMember
  unsigned params = 0;      ///< bitmask of contributing parameters
  std::string name;         ///< identifier behind the strongest class
};

struct Witness {
  std::string chain;  ///< "f -> g -> leaf-fn"
  std::string file;
  std::size_t line = 0;
  std::string token;
};

struct Summary {
  unsigned ret_params = 0;  ///< returns a view of parameter i
  std::map<int, Witness> ret_w;
  unsigned escapes = 0;     ///< parameter i outlives the caller's frame
  std::map<int, Witness> esc_w;
};

struct LamInfo {
  bool is_lambda = false;
  bool byref_local = false;  ///< [&] or [&x]
  bool this_cap = false;
  bool guarded = false;  ///< shared_from_this / weak_from_this / *weak*
};

struct Arg {
  Src src;
  LamInfo lam;
};

struct CallSite {
  std::string name;
  bool member = false;
  bool in_return = false;     ///< `return f(...)` in a view-returning fn
  std::string recv_root;      ///< first receiver component, "" if none
  std::size_t line = 0;
  std::string file;
  unsigned mask = kAllAspects;
  std::vector<Arg> args;
  std::vector<int> callees;
};

struct FnSig {
  std::vector<std::set<std::string>> param_names;
  std::vector<bool> param_view;
  std::vector<bool> param_callable;
  bool ret_is_view = false;
};

struct FnData {
  FnSig sig;
  std::vector<CallSite> calls;
  Summary sum;
};

struct Pass {
  cg::Graph g;
  std::vector<FnData> data;
  std::vector<Finding> direct_findings;
  std::vector<Finding> bare_findings;
  std::map<std::string, std::map<std::size_t, unsigned>> line_suppressions;
  /// Member names declared with a view type / a callable type anywhere in
  /// scope: assignment to one of these stores the RHS as-is.
  std::set<std::string> view_member_names;
  std::set<std::string> callable_member_names;
};

/// A suppression covers its own line and the line above it, so the comment
/// can sit trailing on the offending line or alone directly above it.
unsigned line_mask(const Pass& p, const std::string& file, std::size_t line) {
  const auto fit = p.line_suppressions.find(file);
  if (fit == p.line_suppressions.end()) return kAllAspects;
  unsigned suppressed = 0;
  auto lit = fit->second.find(line);
  if (lit != fit->second.end()) suppressed |= lit->second;
  if (line > 0) {
    lit = fit->second.find(line - 1);
    if (lit != fit->second.end()) suppressed |= lit->second;
  }
  return kAllAspects & ~suppressed;
}

// ---------------------------------------------------------------------------
// Signature extraction: parameter names/types and the return type.
// ---------------------------------------------------------------------------

/// Walks back from the body '{' to the parameter list (the balanced group
/// introduced by the function's own name beats ctor-init-list groups) and
/// then further back to the return type. Same machinery as the --ct pass.
void scan_signature(const std::vector<cg::Tok>& toks, const cg::Span& sp,
                    const std::string& fname_last, FnSig& sig) {
  if (sp.begin < 2) return;
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  std::size_t i = sp.begin - 2;
  for (std::size_t steps = 0; steps < 600; ++steps) {
    const std::string& t = toks[i].text;
    if (t == ";" || t == "{" || t == "}") break;
    if (t == ")") {
      int depth = 1;
      std::size_t j = i;
      while (j > 0 && depth > 0) {
        --j;
        if (toks[j].text == ")") ++depth;
        if (toks[j].text == "(") --depth;
      }
      if (depth != 0) break;
      groups.push_back({j, i});
      if (j == 0) break;
      i = j - 1;
      continue;
    }
    if (i == 0) break;
    --i;
  }
  if (groups.empty()) return;
  std::size_t open = groups.back().first;
  std::size_t close = groups.back().second;
  for (const auto& [o, c] : groups) {
    if (o > 0 && toks[o - 1].text == fname_last) {
      open = o;
      close = c;
      break;
    }
  }

  // Return type: tokens between the previous statement boundary and the
  // function name. A view-type token or a '*' marks a view return.
  if (open >= 1) {
    std::size_t k = open - 1;  // function name token
    for (std::size_t steps = 0; steps < 40 && k > 0; ++steps) {
      --k;
      const std::string& t = toks[k].text;
      if (t == ";" || t == "{" || t == "}" || t == ")") break;
      if (kViewTypeNames.count(t) != 0 || t == "*") sig.ret_is_view = true;
    }
  }

  // Split [open+1, close) on top-level commas.
  std::vector<std::pair<std::size_t, std::size_t>> pieces;
  int depth = 0;
  std::size_t start = open + 1;
  for (std::size_t k = open + 1; k < close; ++k) {
    const std::string& t = toks[k].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") --depth;
    if (t == "," && depth == 0) {
      pieces.push_back({start, k});
      start = k + 1;
    }
  }
  if (start < close) pieces.push_back({start, close});

  for (std::size_t pi = 0; pi < pieces.size(); ++pi) {
    auto [b, e] = pieces[pi];
    for (std::size_t k = b; k < e; ++k) {
      if (toks[k].text == "=") {
        e = k;
        break;
      }
    }
    if (b >= e) continue;
    bool is_view = false, is_callable = false;
    std::string name;
    for (std::size_t k = b; k < e; ++k) {
      const std::string& t = toks[k].text;
      if (kViewTypeNames.count(t) != 0) is_view = true;
      if (callable_type_tok(t)) is_callable = true;
      if (cg::is_ident_tok(t) && kSkipIdents.count(t) == 0 &&
          !(k > b && toks[k - 1].text == "::")) {
        name = t;  // last plain identifier wins: the parameter name
      }
    }
    if (name.empty()) continue;
    if (sig.param_names.size() <= pi) {
      sig.param_names.resize(pi + 1);
      sig.param_view.resize(pi + 1, false);
      sig.param_callable.resize(pi + 1, false);
    }
    sig.param_names[pi].insert(name);
    if (is_view) sig.param_view[pi] = true;
    if (is_callable) sig.param_callable[pi] = true;
  }
}

// ---------------------------------------------------------------------------
// View-member declaration scan (rule: lifetime-view-member).
// ---------------------------------------------------------------------------

void scan_members(Pass& p) {
  for (const cg::Tu& tu : p.g.tus) {
    const auto& toks = tu.toks;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      const bool is_view = kViewTypeNames.count(t) != 0;
      const bool is_callable = callable_type_tok(t);
      if (!is_view && !is_callable) continue;
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        continue;  // member access, not a declaration
      }
      std::size_t k = i + 1;
      if (k < toks.size() && toks[k].text == "<") {
        int depth = 1;
        ++k;
        while (k < toks.size() && depth > 0) {
          if (toks[k].text == "<") ++depth;
          if (toks[k].text == ">") --depth;
          ++k;
        }
      }
      while (k < toks.size() &&
             (toks[k].text == "&" || toks[k].text == "*" ||
              toks[k].text == "const")) {
        ++k;
      }
      if (k + 1 >= toks.size() || !cg::is_ident_tok(toks[k].text)) continue;
      const std::string& name = toks[k].text;
      const std::string& nxt = toks[k + 1].text;
      if (!member_named(name)) continue;
      if (nxt != ";" && nxt != "=" && nxt != "{") continue;
      if (is_callable) {
        p.callable_member_names.insert(name);
        continue;
      }
      p.view_member_names.insert(name);
      if ((line_mask(p, tu.path, toks[k].line) & kMember) == 0) continue;
      Finding f;
      f.rule = "lifetime-view-member";
      f.key = "lifetime-view-member|" +
              fs::path(tu.path).filename().string() + "|" + name;
      f.path = tu.path;
      f.line = toks[k].line;
      f.chain = name;
      f.message =
          "PPROX-LIFETIME-VIEW-MEMBER: view-typed member '" + name +
          "' — the object does not own the bytes it aliases, so any use "
          "after the source buffer dies is a dangling read; own the bytes "
          "(std::string/Bytes), document the lifetime contract with "
          "// PPROX-LIFETIME-" "OK(member): <why>, or ratchet it in the "
          "--baseline file";
      p.direct_findings.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Body replay: classification and escape-event extraction.
// ---------------------------------------------------------------------------

struct Replayer {
  Pass& p;
  int fi;
  const cg::Fn& fn;
  FnData& d;
  const std::vector<cg::Tok>& toks;
  const std::string& file;
  const cg::Span sp;

  std::set<std::string> local_owners;
  std::map<std::string, Src> view_vars;
  std::vector<std::pair<std::size_t, std::size_t>> lambda_bodies;
  // Per-BODY view-return flag. Overloads and #ifdef twins merge into one Fn
  // node; unioning ret_is_view across bodies would let a `const char*`
  // overload taint a `std::string` one (seen with pprox::to_string), so each
  // body is judged by its own declared return type.
  bool body_ret_view = false;

  Replayer(Pass& pass, int idx, const cg::Span& span)
      : p(pass),
        fi(idx),
        fn(pass.g.fns[static_cast<std::size_t>(idx)]),
        d(pass.data[static_cast<std::size_t>(idx)]),
        toks(pass.g.tus[static_cast<std::size_t>(span.tu)].toks),
        file(pass.g.tus[static_cast<std::size_t>(span.tu)].path),
        sp(span) {}

  const std::string& text(std::size_t at) const {
    static const std::string kEnd;
    return at < toks.size() ? toks[at].text : kEnd;
  }

  unsigned param_mask_of(const std::string& n) const {
    for (std::size_t i = 0; i < d.sig.param_names.size(); ++i) {
      if (d.sig.param_names[i].count(n) != 0) return param_bit(i);
    }
    return 0;
  }

  bool in_lambda(std::size_t at) const {
    for (const auto& [b, e] : lambda_bodies) {
      if (at > b && at < e) return true;
    }
    return false;
  }

  /// Classifies one identifier as a byte-source.
  void classify_ident(const std::string& n, Src& out) const {
    auto strengthen = [&](unsigned bit) {
      if ((out.kind & bit) == 0 || out.name.empty()) out.name = n;
      out.kind |= bit;
    };
    const auto vit = view_vars.find(n);
    if (vit != view_vars.end()) {
      if (vit->second.kind != 0 && out.name.empty()) {
        out.name = vit->second.name;
      }
      out.kind |= vit->second.kind;
      out.params |= vit->second.params;
      return;
    }
    if (local_owners.count(n) != 0) {
      strengthen(kSrcLocal);
      return;
    }
    const unsigned pm = param_mask_of(n);
    if (pm != 0) {
      out.params |= pm;
      if (out.name.empty()) out.name = n;
      return;
    }
    if (arena_named(n)) {
      strengthen(kSrcArena);
      return;
    }
    if (member_named(n)) {
      out.kind |= kSrcMember;
      if (out.name.empty()) out.name = n;
    }
  }

  /// Classifies an expression token range [b, e): unions the sources of
  /// every contributing identifier. Call names are skipped, except
  /// owner-type "calls" which are owning temporaries (kSrcLocal).
  Src classify_expr(std::size_t b, std::size_t e) const {
    Src out;
    for (std::size_t k = b; k < e && k < b + 120; ++k) {
      const std::string& t = toks[k].text;
      if (!cg::is_ident_tok(t)) continue;
      if (kSkipIdents.count(t) != 0) continue;
      const bool qualifier = text(k + 1) == "::";
      if (qualifier) continue;
      const bool called = text(k + 1) == "(" || text(k + 1) == "{";
      if (called) {
        if (kOwnerTypeNames.count(t) != 0) {
          out.kind |= kSrcLocal;
          if (out.name.empty()) out.name = t + "(...)";
        }
        continue;  // other call results are classified via their arguments
      }
      classify_ident(t, out);
    }
    return out;
  }

  std::size_t match_forward(std::size_t open) const {
    int depth = 1;
    std::size_t k = open + 1;
    while (k < toks.size() && depth > 0) {
      const std::string& t = toks[k].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      ++k;
    }
    return k - 1;  // index of the closer
  }

  /// Parses a lambda introducer starting at `[` (index lb). Returns the
  /// index just past the lambda body's closing '}' (or past ']' when no
  /// body follows), filling `info`.
  std::size_t parse_lambda(std::size_t lb, LamInfo& info) {
    info.is_lambda = true;
    const std::size_t rb = match_forward(lb);
    bool expect_name = false;  // previous token was '&'
    for (std::size_t k = lb + 1; k < rb; ++k) {
      const std::string& t = toks[k].text;
      if (t == "&") {
        info.byref_local = true;  // [&] or [&x]
        expect_name = true;
        continue;
      }
      if (t == "this") {
        info.this_cap = true;
        expect_name = false;
        continue;
      }
      if (cg::is_ident_tok(t)) {
        if (weakish(t)) info.guarded = true;
        if (expect_name && weakish(t)) info.byref_local = false;
        expect_name = false;
      }
    }
    // Init captures referencing shared_from_this(): scan a few tokens for
    // the guard even past nested parens ("self = shared_from_this()").
    for (std::size_t k = lb + 1; k < rb + 1 && k < toks.size(); ++k) {
      if (weakish(toks[k].text)) info.guarded = true;
    }
    // Skip optional (params), specifiers, -> type, then the body.
    std::size_t k = rb + 1;
    if (text(k) == "(") k = match_forward(k) + 1;
    for (std::size_t steps = 0; steps < 8 && k < toks.size(); ++steps) {
      if (text(k) == "{") break;
      ++k;
    }
    if (text(k) == "{") {
      const std::size_t body_end = match_forward(k);
      lambda_bodies.push_back({k, body_end});
      return body_end + 1;
    }
    return rb + 1;
  }

  /// Collects top-level arguments of a call whose '(' is at `open`,
  /// classifying each and parsing lambdas.
  std::vector<Arg> collect_args(std::size_t open, std::size_t close) {
    std::vector<Arg> args;
    int depth = 0;
    std::size_t start = open + 1;
    auto flush = [&](std::size_t e) {
      if (start >= e) return;
      Arg a;
      if (text(start) == "[" ||
          (text(start) == "std" && text(start + 1) == "::" &&
           text(start + 2) == "move" && text(start + 3) == "(" &&
           text(start + 4) == "[")) {
        // direct lambda or std::move(lambda) — rare but cheap to accept
        const std::size_t lb = text(start) == "[" ? start : start + 4;
        parse_lambda(lb, a.lam);
      } else {
        a.src = classify_expr(start, e);
      }
      args.push_back(std::move(a));
    };
    for (std::size_t k = open + 1; k < close; ++k) {
      const std::string& t = toks[k].text;
      if (t == "(" || t == "[" || t == "{") {
        if (t == "[" && depth == 0 && k == start) {
          // lambda argument: skip its whole extent so its internal commas
          // do not split the argument list
          LamInfo scratch;
          const std::size_t past = parse_lambda(k, scratch);
          k = past - 1;
          continue;
        }
        ++depth;
        continue;
      }
      if (t == ")" || t == "]" || t == "}") {
        --depth;
        continue;
      }
      if (t == "," && depth == 0) {
        flush(k);
        start = k + 1;
      }
    }
    flush(close);
    return args;
  }

  void emit(const char* rule, unsigned aspect, const std::string& key_tail,
            std::size_t line, const std::string& chain,
            const std::string& message) {
    if ((line_mask(p, file, line) & aspect) == 0) return;
    Finding f;
    f.rule = rule;
    f.key = std::string(rule) + "|" + fn.qname + "|" + key_tail;
    f.path = file;
    f.line = line;
    f.chain = chain;
    f.message = message;
    p.direct_findings.push_back(std::move(f));
  }

  void seed_escape(std::size_t pi, std::size_t line,
                   const std::string& target) {
    const int bit_index = static_cast<int>(pi);
    if (param_bit(pi) == 0) return;
    if ((d.sum.escapes & param_bit(pi)) != 0) return;
    d.sum.escapes |= param_bit(pi);
    d.sum.esc_w[bit_index] = {fn.qname, file, line, target};
  }

  void handle_return(std::size_t& i);
  void handle_call(std::size_t i, std::size_t j, const std::string& name);
  void run();
};

void Replayer::handle_return(std::size_t& i) {
  // i points at `return`. Scan the expression up to ';'.
  std::size_t e = i + 1;
  int depth = 0;
  while (e < sp.end && e < i + 120) {
    const std::string& t = toks[e].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") --depth;
    if (t == ";" && depth == 0) break;
    ++e;
  }
  const std::size_t b = i + 1;
  const std::size_t line = toks[i].line;
  if (b >= e || !body_ret_view || in_lambda(i)) {
    i = e;
    return;
  }

  // `return f(args...)` — leading callable path?
  std::size_t k = b;
  std::string name;
  if (cg::is_ident_tok(text(k)) && kSkipIdents.count(text(k)) == 0) {
    name = text(k);
    std::size_t j = k + 1;
    while (j + 1 < e && text(j) == "::" && cg::is_ident_tok(text(j + 1))) {
      name += "::" + text(j + 1);
      j += 2;
    }
    if (text(j) == "(") {
      const std::string last = cg::last_component(name);
      const std::size_t close = match_forward(j);
      if (kViewTypeNames.count(last) != 0) {
        // view construction: classify the constructor arguments directly
        const Src s = classify_expr(j + 1, close);
        if ((s.kind & kSrcLocal) != 0) {
          emit("lifetime-return-local", kReturn, s.name, line, fn.qname,
               "PPROX-LIFETIME-RETURN-LOCAL: " + fn.qname +
                   " returns a view of local '" + s.name +
                   "' — the bytes die with the frame; return an owning "
                   "type, suppress with // PPROX-LIFETIME-" "OK(return): "
                   "<why>, or ratchet it in the --baseline file");
        }
        d.sum.ret_params |= s.params;
        for (std::size_t pi = 0; pi < kMaxParams; ++pi) {
          if ((s.params & param_bit(pi)) != 0 &&
              d.sum.ret_w.count(static_cast<int>(pi)) == 0) {
            d.sum.ret_w[static_cast<int>(pi)] = {fn.qname, file, line,
                                                 "return " + s.name};
          }
        }
        i = e;
        return;
      }
      if (kOwnerTypeNames.count(last) != 0) {
        emit("lifetime-return-local", kReturn, last + "-temp", line,
             fn.qname,
             "PPROX-LIFETIME-RETURN-LOCAL: " + fn.qname +
                 " returns a view of an owning temporary (" + last +
                 ") — the temporary dies at the end of the return "
                 "statement; return the owning type itself, suppress with "
                 "// PPROX-LIFETIME-" "OK(return): <why>, or ratchet it in "
                 "the --baseline file");
        i = e;
        return;
      }
      if (kTerminalCallNames.count(last) == 0 &&
          kNeutralMemberNames.count(last) == 0) {
        // Scanned-function call: resolved + evaluated after the fixpoint.
        CallSite cs;
        cs.name = name;
        cs.member = toks[k - 1].text == "." || toks[k - 1].text == "->";
        cs.in_return = true;
        cs.line = line;
        cs.file = file;
        cs.mask = line_mask(p, file, line);
        cs.args = collect_args(j, close);
        d.calls.push_back(std::move(cs));
        i = e;
        return;
      }
    }
  }

  // Plain expression: classify it directly.
  const Src s = classify_expr(b, e);
  if ((s.kind & (kSrcLocal | kSrcArena)) != 0) {
    const bool arena_only =
        (s.kind & kSrcLocal) == 0 && (s.kind & kSrcArena) != 0;
    // Returning an arena view *upward* is the caller's decision; only a
    // local-owner view is unconditionally dead at return.
    if (!arena_only) {
      emit("lifetime-return-local", kReturn, s.name, line, fn.qname,
           "PPROX-LIFETIME-RETURN-LOCAL: " + fn.qname +
               " returns a view of local '" + s.name +
               "' — the bytes die with the frame; return an owning type, "
               "suppress with // PPROX-LIFETIME-" "OK(return): <why>, or "
               "ratchet it in the --baseline file");
    }
  }
  d.sum.ret_params |= s.params;
  for (std::size_t pi = 0; pi < kMaxParams; ++pi) {
    if ((s.params & param_bit(pi)) != 0 &&
        d.sum.ret_w.count(static_cast<int>(pi)) == 0) {
      d.sum.ret_w[static_cast<int>(pi)] = {fn.qname, file, line,
                                           "return " + s.name};
    }
  }
  i = e;
}

void Replayer::handle_call(std::size_t i, std::size_t j,
                           const std::string& name) {
  // toks[j] == "(" — the call's argument list opener.
  const std::string last = cg::last_component(name);
  const std::size_t line = toks[i].line;
  const std::size_t close = match_forward(j);
  const bool member =
      i > sp.begin && (toks[i - 1].text == "." || toks[i - 1].text == "->");

  std::string recv_root;
  if (member) {
    std::size_t k = i;
    while (k >= 2 && (toks[k - 1].text == "." || toks[k - 1].text == "->")) {
      std::size_t m = k - 2;
      if (toks[m].text == ")") break;  // f().x — receiver is a temporary
      // Skip a balanced subscript so `cpus_[idx]->submit(...)` roots at
      // the container member, not at the `]`.
      if (toks[m].text == "]") {
        int depth = 1;
        while (m > sp.begin && depth > 0) {
          --m;
          if (toks[m].text == "]") ++depth;
          if (toks[m].text == "[") --depth;
        }
        if (depth != 0 || m == sp.begin) break;
        --m;
      }
      if (!cg::is_ident_tok(toks[m].text)) break;
      recv_root = toks[m].text;
      k = m;
    }
  }

  const bool sink_builtin =
      kSinkCallNames.count(last) != 0 ||
      (last == "add" && member &&
       (recv_root.find("queue") != std::string::npos ||
        recv_root.find("shuffle") != std::string::npos));
  const bool store_member =
      kStoreCallNames.count(last) != 0 && member && member_named(recv_root);

  if (sink_builtin || store_member) {
    const std::vector<Arg> args = collect_args(j, close);
    const unsigned mask = line_mask(p, file, line);
    const std::string sink_txt =
        (member ? recv_root + "." : std::string()) + last;
    for (std::size_t ai = 0; ai < args.size(); ++ai) {
      const Arg& a = args[ai];
      if (a.lam.is_lambda) {
        if (a.lam.guarded) continue;
        const bool this_unsafe =
            a.lam.this_cap && !(member && member_named(recv_root));
        if ((a.lam.byref_local || this_unsafe) && (mask & kCapture) != 0) {
          Finding f;
          f.rule = "lifetime-ref-capture-escape";
          f.key = "lifetime-ref-capture-escape|" + fn.qname + "|" + sink_txt;
          f.path = file;
          f.line = line;
          f.chain = fn.qname + " -> " + sink_txt;
          f.message =
              "PPROX-LIFETIME-REF-CAPTURE-ESCAPE: lambda handed to '" +
              sink_txt + "' in " + fn.qname +
              (a.lam.byref_local
                   ? " captures locals by reference"
                   : " captures 'this' into a sink the object does not "
                     "own") +
              " — the callback outlives the frame; capture by value, pin "
              "with shared_from_this()/weak_ptr, suppress with "
              "// PPROX-LIFETIME-" "OK(capture): <why>, or ratchet it in "
              "the --baseline file";
          p.direct_findings.push_back(std::move(f));
        }
        continue;
      }
      if ((a.src.kind & kSrcArena) != 0 && store_member &&
          (mask & kArena) != 0) {
        Finding f;
        f.rule = "lifetime-arena-escape";
        f.key = "lifetime-arena-escape|" + fn.qname + "|" + recv_root;
        f.path = file;
        f.line = line;
        f.chain = fn.qname + " -> " + sink_txt;
        f.message =
            "PPROX-LIFETIME-ARENA-ESCAPE: view of per-connection/batch "
            "buffer '" + a.src.name + "' stored into '" + recv_root +
            "' in " + fn.qname +
            " — the buffer is recycled when the handler returns; copy the "
            "bytes, suppress with // PPROX-LIFETIME-" "OK(arena): <why>, "
            "or ratchet it in the --baseline file";
        p.direct_findings.push_back(std::move(f));
      }
      // A parameter stored as-is into a member container escapes — but
      // only view/callable parameters carry lifetime (a pushed int or
      // string is copied by value).
      for (std::size_t pi = 0; pi < d.sig.param_names.size(); ++pi) {
        if ((a.src.params & param_bit(pi)) != 0 &&
            (d.sig.param_view[pi] || d.sig.param_callable[pi])) {
          seed_escape(pi, line, sink_txt);
        }
      }
    }
    return;
  }

  // DetThread construction: the callable runs on another thread. `this`
  // capture is safe (the join-before-destruction discipline pins it);
  // by-ref locals are not.
  if (last == "DetThread" || last == "thread") {
    const std::vector<Arg> args = collect_args(j, close);
    const unsigned mask = line_mask(p, file, line);
    for (const Arg& a : args) {
      if (a.lam.is_lambda && a.lam.byref_local && !a.lam.guarded &&
          (mask & kCapture) != 0) {
        Finding f;
        f.rule = "lifetime-ref-capture-escape";
        f.key = "lifetime-ref-capture-escape|" + fn.qname + "|" + last;
        f.path = file;
        f.line = line;
        f.chain = fn.qname + " -> " + last;
        f.message =
            "PPROX-LIFETIME-REF-CAPTURE-ESCAPE: thread body in " +
            fn.qname +
            " captures locals by reference — the thread can outlive the "
            "frame; capture by value, suppress with // PPROX-LIFETIME-"
            "OK(capture): <why>, or ratchet it in the --baseline file";
        p.direct_findings.push_back(std::move(f));
      }
      for (std::size_t pi = 0; pi < d.sig.param_names.size(); ++pi) {
        if ((a.src.params & param_bit(pi)) != 0 &&
            d.sig.param_callable[pi]) {
          seed_escape(pi, line, last);
        }
      }
    }
    return;
  }

  if (kTerminalCallNames.count(last) != 0) return;
  if (member && kNeutralMemberNames.count(last) != 0) return;

  // Generic scanned-function call: record the site for resolution and
  // post-fixpoint evaluation.
  CallSite cs;
  cs.name = name;
  cs.member = member;
  cs.recv_root = recv_root;
  cs.line = line;
  cs.file = file;
  cs.mask = line_mask(p, file, line);
  cs.args = collect_args(j, close);
  bool interesting = false;
  for (const Arg& a : cs.args) {
    if (a.lam.is_lambda || a.src.kind != 0 || a.src.params != 0) {
      interesting = true;
      break;
    }
  }
  if (interesting) d.calls.push_back(std::move(cs));
}

void Replayer::run() {
  std::size_t i = sp.begin;
  while (i < sp.end) {
    const std::string& t = toks[i].text;
    if (t == "return") {
      const std::size_t before = i;
      handle_return(i);
      if (i == before) ++i;
      continue;
    }
    if (t == "[") {
      // Standalone lambda (not inside a recorded call argument): register
      // its body so `return` statements inside it are not attributed to
      // the enclosing function. The walk still descends into the body.
      const std::string& prev = i > sp.begin ? toks[i - 1].text : t;
      if (prev == "=" || prev == "(" || prev == "," || prev == "{" ||
          prev == "return") {
        LamInfo scratch;
        (void)parse_lambda(i, scratch);
      }
      ++i;
      continue;
    }
    if (!cg::is_ident_tok(t) || kNotACall.count(t) != 0) {
      ++i;
      continue;
    }

    // Absolute-qualified global call (`::send(fd, ...)`): a libc/syscall,
    // not a scanned function — resolving it by last component would alias
    // it onto unrelated class methods (TcpChannel::send). Skip the head;
    // the walk still descends into the argument tokens.
    if (i > sp.begin && toks[i - 1].text == "::" &&
        (i < sp.begin + 2 || !cg::is_ident_tok(toks[i - 2].text))) {
      ++i;
      continue;
    }

    // Forward qualified path.
    std::string name = t;
    std::size_t j = i + 1;
    while (j + 1 < toks.size() && toks[j].text == "::" &&
           cg::is_ident_tok(toks[j + 1].text)) {
      name += "::" + toks[j + 1].text;
      j += 2;
    }
    const std::string last = cg::last_component(name);

    // Local owner declaration: `std::string s ...`, `Bytes b{...}`,
    // `char buf[256]`.
    if (kOwnerTypeNames.count(last) != 0 ||
        kCharTypeNames.count(last) != 0) {
      std::size_t k = j;
      if (text(k) == "<") k = match_forward(k) + 1;
      bool ref = false;
      while (text(k) == "&" || text(k) == "*" || text(k) == "const" ||
             text(k) == "char") {
        if (text(k) == "&" || text(k) == "*") ref = true;
        ++k;
      }
      if (cg::is_ident_tok(text(k)) && kSkipIdents.count(text(k)) == 0) {
        const std::string& nxt = text(k + 1);
        const bool decl = nxt == ";" || nxt == "=" || nxt == "{" ||
                          nxt == "(" || nxt == "[";
        if (decl && !ref) local_owners.insert(text(k));
        if (decl) {
          i = k + 1;
          continue;
        }
      }
      i = j;
      continue;
    }

    // View-typed local declaration: classify the initializer.
    if (kViewTypeNames.count(last) != 0 && !in_lambda(i)) {
      std::size_t k = j;
      if (text(k) == "<") k = match_forward(k) + 1;
      while (text(k) == "&" || text(k) == "const") ++k;
      if (cg::is_ident_tok(text(k)) && kSkipIdents.count(text(k)) == 0 &&
          (text(k + 1) == "=" || text(k + 1) == "{" ||
           text(k + 1) == "(")) {
        const std::string var = text(k);
        std::size_t e = k + 1;
        int depth = 0;
        while (e < sp.end && e < k + 120) {
          const std::string& tt = toks[e].text;
          if (tt == "(" || tt == "[" || tt == "{") ++depth;
          if (tt == ")" || tt == "]" || tt == "}") --depth;
          if (tt == ";" && depth <= 0) break;
          ++e;
        }
        Src s = classify_expr(k + 1, e);
        s.name = s.name.empty() ? var : s.name;
        view_vars[var] = s;
        i = e;
        continue;
      }
      i = j;
      continue;
    }

    // Member assignment: `x_ = expr` where x_ is a known view/callable
    // member — the RHS is stored as-is.
    if (member_named(t) && text(j) == "=" && text(j + 1) != "=" &&
        (i == sp.begin || toks[i - 1].text != ".") &&
        (p.view_member_names.count(t) != 0 ||
         p.callable_member_names.count(t) != 0)) {
      std::size_t e = j + 1;
      int depth = 0;
      while (e < sp.end && e < j + 120) {
        const std::string& tt = toks[e].text;
        if (tt == "(" || tt == "[" || tt == "{") ++depth;
        if (tt == ")" || tt == "]" || tt == "}") --depth;
        if (tt == ";" && depth <= 0) break;
        ++e;
      }
      const Src s = classify_expr(j + 1, e);
      const unsigned mask = line_mask(p, file, toks[i].line);
      if ((s.kind & kSrcArena) != 0 && (mask & kArena) != 0) {
        Finding f;
        f.rule = "lifetime-arena-escape";
        f.key = "lifetime-arena-escape|" + fn.qname + "|" + t;
        f.path = file;
        f.line = toks[i].line;
        f.chain = fn.qname;
        f.message =
            "PPROX-LIFETIME-ARENA-ESCAPE: view of per-connection/batch "
            "buffer '" + s.name + "' stored into member '" + t + "' in " +
            fn.qname +
            " — the buffer is recycled when the handler returns; copy the "
            "bytes, suppress with // PPROX-LIFETIME-" "OK(arena): <why>, "
            "or ratchet it in the --baseline file";
        p.direct_findings.push_back(std::move(f));
      }
      for (std::size_t pi = 0; pi < d.sig.param_names.size(); ++pi) {
        if ((s.params & param_bit(pi)) != 0 &&
            (d.sig.param_view[pi] || d.sig.param_callable[pi])) {
          seed_escape(pi, toks[i].line, t);
        }
      }
      i = e;
      continue;
    }

    const bool call = text(j) == "(";
    if (call) handle_call(i, j, name);
    i = j;
    if (call) ++i;  // step past '(' so nested calls inside args are seen
  }
}

void extract_events(Pass& p) {
  p.data.assign(p.g.fns.size(), FnData{});
  for (std::size_t fi = 0; fi < p.g.fns.size(); ++fi) {
    const cg::Fn& fn = p.g.fns[fi];
    FnData& d = p.data[fi];
    // One signature scan per body: param info unions into the shared sig,
    // but each body keeps its own ret_is_view (see Replayer::body_ret_view).
    std::vector<bool> body_ret;
    for (const cg::Span& sp : fn.bodies) {
      FnSig bsig;
      scan_signature(p.g.tus[static_cast<std::size_t>(sp.tu)].toks, sp,
                     cg::last_component(fn.qname), bsig);
      body_ret.push_back(bsig.ret_is_view);
      d.sig.ret_is_view = d.sig.ret_is_view || bsig.ret_is_view;
      for (std::size_t pi = 0; pi < bsig.param_names.size(); ++pi) {
        if (d.sig.param_names.size() <= pi) {
          d.sig.param_names.push_back(bsig.param_names[pi]);
          d.sig.param_view.push_back(bsig.param_view[pi]);
          d.sig.param_callable.push_back(bsig.param_callable[pi]);
        } else {
          d.sig.param_names[pi].insert(bsig.param_names[pi].begin(),
                                       bsig.param_names[pi].end());
          d.sig.param_view[pi] = d.sig.param_view[pi] || bsig.param_view[pi];
          d.sig.param_callable[pi] =
              d.sig.param_callable[pi] || bsig.param_callable[pi];
        }
      }
    }
    for (std::size_t bi = 0; bi < fn.bodies.size(); ++bi) {
      Replayer r(p, static_cast<int>(fi), fn.bodies[bi]);
      r.body_ret_view = body_ret[bi];
      r.run();
    }
  }
}

void resolve_calls(Pass& p) {
  const auto by_last = cg::index_by_last(p.g);
  for (std::size_t i = 0; i < p.g.fns.size(); ++i) {
    for (CallSite& cs : p.data[i].calls) {
      cs.callees = cg::resolve_name(p.g, by_last, p.g.fns[i], cs.name);
    }
  }
}

// ---------------------------------------------------------------------------
// Fixpoint: returns-view-of-param and escapes-param summaries.
// ---------------------------------------------------------------------------

void propagate_summaries(Pass& p) {
  bool changed = true;
  std::size_t guard = 0;
  while (changed && guard++ < p.g.fns.size() + 8) {
    changed = false;
    for (std::size_t i = 0; i < p.g.fns.size(); ++i) {
      const cg::Fn& fn = p.g.fns[i];
      FnData& d = p.data[i];
      for (const CallSite& cs : d.calls) {
        for (int ci : cs.callees) {
          const Summary& csum = p.data[static_cast<std::size_t>(ci)].sum;
          for (std::size_t aj = 0; aj < cs.args.size(); ++aj) {
            const Arg& a = cs.args[aj];
            // Callee returns a view of arg aj, and we return that call:
            // our return aliases whatever arg aj aliases.
            if (cs.in_return && (csum.ret_params & param_bit(aj)) != 0) {
              const unsigned add = a.src.params & ~d.sum.ret_params;
              if (add != 0) {
                d.sum.ret_params |= add;
                for (std::size_t pi = 0; pi < kMaxParams; ++pi) {
                  if ((add & param_bit(pi)) == 0) continue;
                  Witness w =
                      csum.ret_w.count(static_cast<int>(aj)) != 0
                          ? csum.ret_w.at(static_cast<int>(aj))
                          : Witness{fn.qname, cs.file, cs.line, cs.name};
                  w.chain = fn.qname + " -> " + w.chain;
                  d.sum.ret_w[static_cast<int>(pi)] = std::move(w);
                }
                changed = true;
              }
            }
            // Callee lets arg aj escape: whatever parameters feed it
            // escape from us too.
            if ((csum.escapes & param_bit(aj)) != 0) {
              for (std::size_t pi = 0; pi < d.sig.param_names.size();
                   ++pi) {
                if ((a.src.params & param_bit(pi)) == 0) continue;
                if (!d.sig.param_view[pi] && !d.sig.param_callable[pi]) {
                  continue;
                }
                if ((d.sum.escapes & param_bit(pi)) != 0) continue;
                d.sum.escapes |= param_bit(pi);
                Witness w =
                    csum.esc_w.count(static_cast<int>(aj)) != 0
                        ? csum.esc_w.at(static_cast<int>(aj))
                        : Witness{fn.qname, cs.file, cs.line, cs.name};
                w.chain = fn.qname + " -> " + w.chain;
                d.sum.esc_w[static_cast<int>(pi)] = std::move(w);
                changed = true;
              }
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Post-fixpoint findings at call sites.
// ---------------------------------------------------------------------------

void collect_call_findings(const Pass& p, std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < p.g.fns.size(); ++i) {
    const cg::Fn& fn = p.g.fns[i];
    const FnData& d = p.data[i];
    for (const CallSite& cs : d.calls) {
      for (int ci : cs.callees) {
        const cg::Fn& callee = p.g.fns[static_cast<std::size_t>(ci)];
        const Summary& csum = p.data[static_cast<std::size_t>(ci)].sum;
        for (std::size_t aj = 0; aj < cs.args.size(); ++aj) {
          const Arg& a = cs.args[aj];
          // return f(local): f returns a view of arg aj, and the bytes
          // behind arg aj die with this frame.
          if (cs.in_return && (csum.ret_params & param_bit(aj)) != 0 &&
              (a.src.kind & kSrcLocal) != 0 && (cs.mask & kReturn) != 0) {
            Witness w = csum.ret_w.count(static_cast<int>(aj)) != 0
                            ? csum.ret_w.at(static_cast<int>(aj))
                            : Witness{callee.qname, cs.file, cs.line,
                                      cs.name};
            Finding f;
            f.rule = "lifetime-return-local";
            f.key = "lifetime-return-local|" + fn.qname + "|" +
                    callee.qname;
            f.path = cs.file;
            f.line = cs.line;
            f.chain = fn.qname + " -> " + w.chain;
            f.message =
                "PPROX-LIFETIME-RETURN-LOCAL: " + fn.qname +
                " returns a view of local '" + a.src.name + "' via " +
                fn.qname + " -> " + w.chain +
                " — the bytes die with the frame; return an owning type, "
                "suppress with // PPROX-LIFETIME-" "OK(return): <why>, or "
                "ratchet it in the --baseline file";
            findings.push_back(std::move(f));
          }
          // f(lambda): f stores arg aj past its return.
          if ((csum.escapes & param_bit(aj)) != 0 && a.lam.is_lambda &&
              !a.lam.guarded && (cs.mask & kCapture) != 0) {
            const bool recv_member =
                cs.member && member_named(cs.recv_root);
            const bool this_unsafe = a.lam.this_cap && !recv_member;
            if (a.lam.byref_local || this_unsafe) {
              Witness w = csum.esc_w.count(static_cast<int>(aj)) != 0
                              ? csum.esc_w.at(static_cast<int>(aj))
                              : Witness{callee.qname, cs.file, cs.line,
                                        cs.name};
              Finding f;
              f.rule = "lifetime-ref-capture-escape";
              f.key = "lifetime-ref-capture-escape|" + fn.qname + "|" +
                      callee.qname;
              f.path = cs.file;
              f.line = cs.line;
              f.chain = fn.qname + " -> " + w.chain;
              f.message =
                  "PPROX-LIFETIME-REF-CAPTURE-ESCAPE: lambda passed to " +
                  callee.qname + " in " + fn.qname +
                  (a.lam.byref_local
                       ? " captures locals by reference"
                       : " captures 'this' into a sink the object does "
                         "not own") +
                  " and the callee stores it past its return (" +
                  fn.qname + " -> " + w.chain +
                  ") — capture by value, pin with shared_from_this()/"
                  "weak_ptr, suppress with // PPROX-LIFETIME-"
                  "OK(capture): <why>, or ratchet it in the --baseline "
                  "file";
              findings.push_back(std::move(f));
            }
          }
          // f(view-of-arena): f stores arg aj past its return.
          if ((csum.escapes & param_bit(aj)) != 0 &&
              (a.src.kind & kSrcArena) != 0 && (cs.mask & kArena) != 0) {
            Witness w = csum.esc_w.count(static_cast<int>(aj)) != 0
                            ? csum.esc_w.at(static_cast<int>(aj))
                            : Witness{callee.qname, cs.file, cs.line,
                                      cs.name};
            Finding f;
            f.rule = "lifetime-arena-escape";
            f.key = "lifetime-arena-escape|" + fn.qname + "|" +
                    callee.qname;
            f.path = cs.file;
            f.line = cs.line;
            f.chain = fn.qname + " -> " + w.chain;
            f.message =
                "PPROX-LIFETIME-ARENA-ESCAPE: view of per-connection/"
                "batch buffer '" + a.src.name + "' passed to " +
                callee.qname + " which stores it past its return (" +
                fn.qname + " -> " + w.chain +
                ") — the buffer is recycled when the handler returns; "
                "copy the bytes, suppress with // PPROX-LIFETIME-"
                "OK(arena): <why>, or ratchet it in the --baseline file";
            findings.push_back(std::move(f));
          }
        }
      }
    }
  }
}

}  // namespace

int run(const Options& opts) {
  Pass p;
  std::size_t files = 0;
  // The marker is split so this tool's own sources never self-match.
  const std::string marker = std::string("PPROX-LIFETIME-") + "OK(";
  for (const fs::path& path : opts.inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "pprox_lint: cannot read " << path << "\n";
      return 2;
    }
    std::vector<std::string> raw;
    std::string line;
    while (std::getline(in, line)) raw.push_back(line);
    ++files;

    const auto supp = cg::scan_suppressions(raw, marker, &aspect_from_name);
    for (const auto& [ln, s] : supp) {
      if (!s.bare) continue;
      Finding f;
      f.rule = "lifetime-bare-suppression";
      f.key = std::string("lifetime-bare-suppression|") +
              path.filename().string() + "|" + std::to_string(ln);
      f.path = path.string();
      f.line = ln;
      f.chain = "";
      f.message =
          "lifetime suppression without a justification; write "
          "PPROX-LIFETIME-" "OK(<aspect>): <why> (the bare form suppresses "
          "nothing)";
      p.bare_findings.push_back(std::move(f));
    }
    for (const auto& [ln, s] : supp) {
      if (!s.bare) p.line_suppressions[path.string()][ln] |= s.effects;
    }
    p.g.add_tu(path.string(), cg::tokenize(cg::code_lines(raw)));
  }

  p.g.merge_decl_annotations();
  scan_members(p);
  extract_events(p);
  resolve_calls(p);
  propagate_summaries(p);

  std::vector<Finding> findings = std::move(p.bare_findings);
  for (Finding& f : p.direct_findings) findings.push_back(std::move(f));
  collect_call_findings(p, findings);

  // Transitive emission can mint the same key through several chains.
  std::set<std::string> seen;
  std::vector<Finding> unique;
  for (Finding& f : findings) {
    if (seen.insert(f.key).second) unique.push_back(std::move(f));
  }
  findings = std::move(unique);

  cg::ReportSpec spec;
  spec.mode = "lifetime";
  spec.anchor = "lifetime";
  spec.what = "lifetime";
  spec.bare_rule = "lifetime-bare-suppression";
  spec.default_why =
      "baselined pre-existing violation; shrink, do not grow (DESIGN.md "
      "§14.4)";
  spec.json = opts.json;
  spec.baseline = opts.baseline;
  spec.baseline_write = opts.baseline_write;
  return cg::report(spec, findings, files);
}

}  // namespace lifetime
