// pprox_lint --ct — interprocedural constant-time analyzer (DESIGN.md §13).
//
// Fifth pass over the shared call-graph front end (lint_callgraph.hpp).
// Tracks *secret taint* from sources to timing-relevant sinks:
//
//   sources   parameters/locals whose names carry key/secret/pseudonym
//             material, and variables declared with secret-bearing types
//             (Aes, AesGcm, RsaPrivateKey, RsaKeyPair, Drbg, Sensitive);
//   flow      statement-level assignments (flow-insensitive, monotone),
//             member access and member-call results on tainted receivers,
//             memcpy/memmove source->destination, and interprocedural
//             per-function summaries — param->return, param->out-param,
//             param->sink — propagated to a global fixpoint;
//   sinks     branch conditions and loop bounds (ct-branch), array
//             subscripts (ct-index), and variable-latency operations —
//             '/', '%', BigInt::compare/divmod/modinv — on tainted
//             operands (ct-varlat). A call into a function whose summary
//             says "param i reaches a sink" fires at the call site when the
//             argument is tainted, with the full witness chain.
//
// Taint is laundered only by the crypto/ct.hpp vocabulary (ct_equal,
// ct_select_*, ct_mask_*, ct_eq_*, ct_lt_*, ct_is_zero, ct_reveal,
// secure_wipe): their results are public by construction, which is what
// makes the branch-free unpad/compare idiom lint-clean. Container/operand
// *structure* queries (.size(), .empty(), .count(), .find(), .end(),
// BigInt::bit_length/is_zero/is_odd) also return public values — lengths
// and layout are public in the PProx framing model; contents re-seed taint
// at use sites through names and types. Soundness limits (ternaries,
// control-dependence, strong updates) are spelled out in DESIGN.md §13.5.
//
// Suppression (offending line, reason mandatory, same contract as the
// other passes): aspects are branch / index / varlat:
//   if (m1 >= m2) {  // PPROX-CT-OK(branch): CRT recombination, see §13.4
// A bare suppression is itself a finding and suppresses nothing. A
// suppressed sink also drops out of the function's summary, so transitive
// reports through it disappear with the same justification. Baseline
// ratchet: --baseline tools/ct_baseline.json; keys are line-free
// rule|root|leaf|token. Exit 0/1/2 as usual.
#include "ct_pass.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint_callgraph.hpp"

namespace fs = std::filesystem;

namespace ct {
namespace {

using cg::Finding;

// ---------------------------------------------------------------------------
// Aspects (the suppression vocabulary) and sink kinds.
// ---------------------------------------------------------------------------

enum Aspect : unsigned {
  kBranchA = 1u << 0,
  kIndexA = 1u << 1,
  kVarlatA = 1u << 2,
};
constexpr unsigned kAllAspects = kBranchA | kIndexA | kVarlatA;

unsigned aspect_from_name(const std::string& name) {
  if (name == "branch") return kBranchA;
  if (name == "index") return kIndexA;
  if (name == "varlat") return kVarlatA;
  return 0;
}

enum SinkKind : int { kSinkBranch = 0, kSinkIndex = 1, kSinkVarlat = 2 };

unsigned aspect_of(int kind) { return 1u << static_cast<unsigned>(kind); }

const char* rule_of(int kind) {
  switch (kind) {
    case kSinkBranch: return "ct-branch";
    case kSinkIndex: return "ct-index";
    default: return "ct-varlat";
  }
}

// ---------------------------------------------------------------------------
// Vocabulary tables.
// ---------------------------------------------------------------------------

/// Declaring a variable with one of these types makes its name secret
/// everywhere (the global-name collapse the locks pass also uses for
/// mutexes — conservative across same-named variables).
const std::set<std::string> kSecretTypeNames = {
    "Aes", "AesGcm", "RsaPrivateKey", "RsaKeyPair", "Drbg", "Sensitive",
};

/// crypto/ct.hpp vocabulary: arguments may be secret, the result is public
/// by construction, and the implementation is audited branch-free. These
/// are the only taint sanitizers the pass knows.
bool is_ct_safe_call(const std::string& last) {
  if (last.rfind("ct_", 0) == 0) return true;  // ct_equal, ct_select_*, ...
  return last == "secure_wipe";
}

/// Member calls whose result is *structure*, not content: sizes, emptiness,
/// lookup success, iterator sentinels, BigInt shape queries. Lengths and
/// container layout are public in the PProx framing model (fixed-size
/// messages, public batch sizes); branching on them is fine.
const std::set<std::string> kPublicResultMembers = {
    "size", "length", "empty", "capacity", "count", "contains", "find",
    "end", "cend", "rend", "bit_length", "is_zero", "is_odd",
    "modulus_bytes", "ok", "has_value", "error", "load", "exchange",
    "full", "joinable",
};

/// Member-call result publicity beyond the fixed set: PRNG draws (next_*)
/// are by definition independent of every secret, so their timing classes
/// carry no secret information; try_*/fetch_* are queue/atomic status
/// results whose scheduling channel is out of the lint's scope (the paper's
/// defense at that granularity is the shuffle batch, DESIGN.md §13.5).
bool is_public_result_member(const std::string& mem) {
  if (kPublicResultMembers.count(mem) != 0) return true;
  return mem.rfind("next_", 0) == 0 || mem.rfind("try_", 0) == 0 ||
         mem.rfind("fetch_", 0) == 0;
}

/// Data members that stay public inside otherwise-secret structs: the RSA
/// public components (n, e) and embedded public keys. Accessing them resets
/// the receiver's taint — `c >= key.n` is a public range check even though
/// `key` is the private key.
const std::set<std::string> kPublicFields = {"n", "e", "pub"};

/// Calls whose *result* is public by cryptographic construction: IND-CPA
/// ciphertext, AEAD output, signatures, and key fingerprints are exactly
/// the bytes the wire exposes. This is the encrypt-side declassification
/// boundary — taint on the plaintext/key arguments stops at the ciphertext
/// (the *internals* of these functions are still analyzed on their own).
bool is_public_result_call(const std::string& last) {
  if (last.find("encrypt") != std::string::npos) return true;
  return last == "seal" || last == "seal_with_random_nonce" ||
         last == "fingerprint" || last == "public_key" ||
         last == "rsa_sign_sha256";
}

/// Member calls that are variable-latency on their receiver/arguments:
/// limb-wise early-exit compare and division-shaped BigInt routines.
const std::set<std::string> kVarlatMembers = {"compare", "divmod", "modinv"};

/// Builtin/STL call names never resolved to scanned functions (same
/// rationale as the other passes); their taint behavior is the generic
/// propagate-args default.
const std::set<std::string> kTerminalCallNames = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "posix_memalign", "make_unique", "make_shared", "to_string",
    "push_back", "emplace_back", "emplace_front", "emplace", "insert",
    "resize", "reserve", "append", "assign", "substr", "stoi", "stol",
    "stoul", "stoull", "stod", "min", "max", "swap", "move", "copy",
    "fill", "get", "forward",
};

/// Tokens that never begin an expression primary.
const std::set<std::string> kSkipTokens = {
    "if", "else", "for", "while", "switch", "case", "default", "do",
    "return", "break", "continue", "goto", "new", "delete", "throw", "try",
    "catch", "const", "constexpr", "consteval", "constinit", "static",
    "inline", "volatile", "mutable", "auto", "void", "bool", "true",
    "false", "nullptr", "this", "int", "char", "short", "long", "unsigned",
    "signed", "float", "double", "struct", "class", "enum", "union",
    "using", "namespace", "template", "typename", "operator", "public",
    "private", "protected", "friend", "virtual", "override", "final",
    "noexcept", "explicit", "typedef", "extern", "register", "thread_local",
    "static_assert", "alignas", "co_await", "co_return", "co_yield",
    "PPROX_HOT", "PPROX_NONBLOCKING", "PPROX_ECALL_BOUNDARY",
};

/// Lowercases for the name tests below.
std::string lower(const std::string& ident) {
  std::string n;
  n.reserve(ident.size());
  for (char c : ident) {
    n.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return n;
}

/// Secret-bearing identifier test (lowercased substring match). Names that
/// carry key *metadata* — ids, sizes, epochs, directories — are public:
/// ct.hpp documents lengths as public, and key identity/rotation epochs are
/// protocol-visible in the paper's model.
bool is_secret_name(const std::string& ident) {
  const std::string n = lower(ident);
  auto has = [&](const char* s) { return n.find(s) != std::string::npos; };
  if (has("secret") || has("pseudonym")) return true;
  if (!has("key")) return false;
  static const char* kPublicKeyish[] = {
      "pub",      "key_id",   "keyid",    "key_size", "key_len",
      "key_bits", "key_name", "keyword",  "keyboard", "key_epoch",
      "keys_dir", "key_path", "key_count", "monkey",  "donkey",
      "turkey",   "key_fingerprint",
      // Rekey *schedules* are public policy (when to rotate, not what to
      // rotate to): counters and intervals named "rekey" don't seed.
      "rekey",
      // Parser cursors around a JSON "key" (field name), not key material.
      "key_begin", "key_end",
  };
  for (const char* s : kPublicKeyish) {
    if (has(s)) return false;
  }
  return true;
}

/// A *bare* "key"/"keys"/"k" name is a generic lookup key (JSON fields, map
/// keys, router paths) unless its declared type says otherwise; richer names
/// (aes_key, user_key, k_u) and "secret"/"pseudonym" always seed.
bool is_bare_key(const std::string& ident) {
  const std::string n = lower(ident);
  return n == "key" || n == "keys" || n == "k";
}

/// Name-based seeding for plain identifier uses (no type context).
bool is_secret_ident(const std::string& ident) {
  return is_secret_name(ident) && !is_bare_key(ident);
}

// ---------------------------------------------------------------------------
// Data model: taint masks, witnesses, summaries.
// ---------------------------------------------------------------------------

// A taint mask: bit 0 = intrinsically secret (name/type source), bit i+1 =
// "flows from parameter i" (positions past 30 lose their bit and track
// intrinsic taint only).
constexpr unsigned kIntrinsic = 1u;
constexpr unsigned kMaxParams = 30;

unsigned param_bit(std::size_t i) {
  return i < kMaxParams ? (1u << (i + 1)) : 0u;
}

struct Witness {
  int kind = kSinkBranch;
  std::string chain;  ///< "f -> g -> leaf-fn"
  std::string leaf;   ///< qualified name of the function holding the sink
  std::string file;
  std::size_t line = 0;
  std::string token;  ///< e.g. "branch(exponent)", "%(key.p)"
};

struct SinkEv {
  Witness w;
  unsigned mask = 0;
};

struct ParamSlot {
  std::set<std::string> names;  ///< positional names across merged bodies
  bool out = false;             ///< non-const reference/pointer/MutByteView
  bool bytes_like = false;      ///< byte-buffer/bigint/secret-class type
};

struct Summary {
  std::map<std::pair<unsigned, int>, Witness> param_sink;  ///< (param,kind)
  unsigned ret_taint = 0;
  std::vector<unsigned> param_out;  ///< taint written through out-param i
};

struct FnData {
  std::vector<ParamSlot> params;
  std::map<std::string, SinkEv> events;  ///< dedup key -> event (accumulates)
  unsigned ret_mask = 0;
  Summary sum;
};

struct Pass {
  cg::Graph g;
  std::vector<FnData> data;
  std::map<std::string, std::vector<int>> by_last;
  std::set<std::string> secret_decl_names;
  std::vector<Finding> bare_findings;
  std::map<std::string, std::map<std::size_t, unsigned>> line_suppressions;
};

/// A suppression covers its own line and the line below it, so the comment
/// can sit trailing on the sink line or alone directly above it.
unsigned line_mask(const Pass& p, const std::string& file, std::size_t line) {
  const auto fit = p.line_suppressions.find(file);
  if (fit == p.line_suppressions.end()) return kAllAspects;
  unsigned suppressed = 0;
  auto lit = fit->second.find(line);
  if (lit != fit->second.end()) suppressed |= lit->second;
  if (line > 0) {
    lit = fit->second.find(line - 1);
    if (lit != fit->second.end()) suppressed |= lit->second;
  }
  return kAllAspects & ~suppressed;
}

// ---------------------------------------------------------------------------
// Declared-name scan: variables of secret types are secret everywhere.
// ---------------------------------------------------------------------------

void scan_secret_decls(Pass& p) {
  for (const cg::Tu& tu : p.g.tus) {
    const auto& toks = tu.toks;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (kSecretTypeNames.count(toks[i].text) == 0) continue;
      std::size_t k = i + 1;
      if (k < toks.size() && toks[k].text == "<") {
        int depth = 1;
        ++k;
        while (k < toks.size() && depth > 0) {
          if (toks[k].text == "<") ++depth;
          if (toks[k].text == ">") --depth;
          ++k;
        }
      }
      while (k < toks.size() &&
             (toks[k].text == "&" || toks[k].text == "*")) {
        ++k;
      }
      if (k + 1 >= toks.size() || !cg::is_ident_tok(toks[k].text)) continue;
      const std::string& nxt = toks[k + 1].text;
      // Length filter: collapsing one- or two-letter names globally (the
      // same conservative collapse the locks pass uses for mutex members)
      // would poison unrelated loop variables in every TU.
      if (toks[k].text.size() >= 3 &&
          (nxt == ";" || nxt == "=" || nxt == "{" || nxt == "," ||
           nxt == ")" || nxt == "(")) {
        p.secret_decl_names.insert(toks[k].text);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Parameter extraction: walk back from the body '{' to the parameter list.
// ---------------------------------------------------------------------------

void extract_params(const std::vector<cg::Tok>& toks, const cg::Span& sp,
                    const std::string& fname_last,
                    std::vector<ParamSlot>& slots) {
  if (sp.begin < 2) return;
  // Collect the balanced "(...)" groups between the previous statement
  // boundary and the body brace; a constructor's init list contributes
  // groups too, so prefer the one introduced by the function's own name,
  // else the most-backward group.
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  std::size_t i = sp.begin - 2;
  for (std::size_t steps = 0; steps < 600; ++steps) {
    const std::string& t = toks[i].text;
    if (t == ";" || t == "{" || t == "}") break;
    if (t == ")") {
      int depth = 1;
      std::size_t j = i;
      while (j > 0 && depth > 0) {
        --j;
        if (toks[j].text == ")") ++depth;
        if (toks[j].text == "(") --depth;
      }
      if (depth != 0) break;
      groups.push_back({j, i});
      if (j == 0) break;
      i = j - 1;
      continue;
    }
    if (i == 0) break;
    --i;
  }
  if (groups.empty()) return;
  std::size_t open = groups.back().first;
  std::size_t close = groups.back().second;
  for (const auto& [o, c] : groups) {
    if (o > 0 && toks[o - 1].text == fname_last) {
      open = o;
      close = c;
      break;
    }
  }

  // Split [open+1, close) on top-level commas (angle brackets are not depth
  // counted; template-typed parameters may mis-split — DESIGN.md §13.5).
  std::vector<std::pair<std::size_t, std::size_t>> pieces;
  int depth = 0;
  std::size_t start = open + 1;
  for (std::size_t k = open + 1; k < close; ++k) {
    const std::string& t = toks[k].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") --depth;
    if (t == "," && depth == 0) {
      pieces.push_back({start, k});
      start = k + 1;
    }
  }
  if (start < close) pieces.push_back({start, close});

  for (std::size_t pi = 0; pi < pieces.size(); ++pi) {
    auto [b, e] = pieces[pi];
    // Cut a default argument.
    for (std::size_t k = b; k < e; ++k) {
      if (toks[k].text == "=") {
        e = k;
        break;
      }
    }
    if (b >= e) continue;
    bool has_const = false, has_ref = false, mut_view = false;
    bool bytes_like = false;
    std::string name;
    for (std::size_t k = b; k < e; ++k) {
      const std::string& t = toks[k].text;
      if (t == "const") has_const = true;
      if (t == "&" || t == "*") has_ref = true;
      if (t == "MutByteView") mut_view = true;
      if (t == "Bytes" || t == "ByteView" || t == "MutByteView" ||
          t == "BigInt" || t == "uint8_t" ||
          kSecretTypeNames.count(t) != 0) {
        bytes_like = true;
      }
      if (cg::is_ident_tok(t) && kSkipTokens.count(t) == 0 &&
          !(k > b && toks[k - 1].text == "::")) {
        name = t;  // last plain identifier wins: that's the parameter name
      }
    }
    if (name.empty() || pieces.size() == 1) {
      if (name.empty()) continue;
    }
    if (slots.size() <= pi) slots.resize(pi + 1);
    slots[pi].names.insert(name);
    if ((has_ref && !has_const) || mut_view) slots[pi].out = true;
    if (bytes_like) slots[pi].bytes_like = true;
  }
}

// ---------------------------------------------------------------------------
// Body walker: statement-level dataflow with sink recording.
// ---------------------------------------------------------------------------

struct Ev {
  unsigned mask = 0;
  std::string name;  ///< first tainted identifier, for reporting
  std::string root;  ///< root identifier when the expr is one simple path
};

struct Walker {
  Pass& p;
  int fi;
  const cg::Fn& fn;
  FnData& d;
  std::map<std::string, unsigned> taint;
  bool taint_changed = false;
  bool events_changed = false;

  // Current span context.
  const std::vector<cg::Tok>* toks = nullptr;
  const std::string* file = nullptr;
  std::size_t span_end = 0;

  Walker(Pass& pass, int idx)
      : p(pass),
        fi(idx),
        fn(pass.g.fns[static_cast<std::size_t>(idx)]),
        d(pass.data[static_cast<std::size_t>(idx)]) {
    for (std::size_t i = 0; i < d.params.size(); ++i) {
      for (const std::string& n : d.params[i].names) {
        unsigned m = param_bit(i);
        // A bare "key" name seeds only when its declared type is a byte
        // buffer / bigint / crypto class — `ByteView key` is key material,
        // `std::string_view key` is a JSON field name.
        if (is_secret_name(n) && (!is_bare_key(n) || d.params[i].bytes_like)) {
          m |= kIntrinsic;
        }
        taint[n] |= m;
      }
    }
  }

  const std::string& text(std::size_t at) const {
    static const std::string kEnd;
    return at < toks->size() ? (*toks)[at].text : kEnd;
  }
  std::size_t line_at(std::size_t at) const {
    return at < toks->size() ? (*toks)[at].line : 0;
  }

  std::size_t match_fwd(std::size_t open) const {
    const std::string& o = text(open);
    const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
    int depth = 1;
    std::size_t i = open + 1;
    while (i < span_end && depth > 0) {
      if (text(i) == o) ++depth;
      if (text(i) == c) --depth;
      if (depth == 0) return i;
      ++i;
    }
    return span_end;
  }

  unsigned ident_mask(const std::string& name) const {
    unsigned m = 0;
    const auto it = taint.find(name);
    if (it != taint.end()) m |= it->second;
    const std::string last = cg::last_component(name);
    if (is_secret_ident(last)) m |= kIntrinsic;
    if (name.find("::") == std::string::npos &&
        p.secret_decl_names.count(name) != 0) {
      m |= kIntrinsic;
    }
    return m;
  }

  void taint_assign(const std::string& name, unsigned mask) {
    if (name.empty() || mask == 0) return;
    unsigned& cur = taint[name];
    if ((cur | mask) != cur) {
      cur |= mask;
      taint_changed = true;
    }
  }

  void add_event(unsigned mask, const Witness& w) {
    if (mask == 0) return;
    const std::string key =
        std::to_string(w.kind) + "|" + w.leaf + "|" + w.token;
    auto it = d.events.find(key);
    if (it == d.events.end()) {
      d.events.emplace(key, SinkEv{w, mask});
      events_changed = true;
    } else if ((it->second.mask | mask) != it->second.mask) {
      it->second.mask |= mask;
      events_changed = true;
    }
  }

  void record_sink(int kind, std::size_t line, unsigned mask,
                   const std::string& nm, const std::string& op) {
    if (mask == 0) return;
    if ((line_mask(p, *file, line) & aspect_of(kind)) == 0) return;
    Witness w;
    w.kind = kind;
    w.chain = fn.qname;
    w.leaf = fn.qname;
    w.file = *file;
    w.line = line;
    w.token = op + "(" + (nm.empty() ? "?" : nm) + ")";
    add_event(mask, w);
  }

  /// Splits a call group (open points at '(' or '{') into top-level
  /// argument ranges.
  std::vector<std::pair<std::size_t, std::size_t>> split_args(
      std::size_t open, std::size_t close) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    if (open + 1 >= close) return out;
    int depth = 0;
    std::size_t start = open + 1;
    for (std::size_t k = open + 1; k < close; ++k) {
      const std::string& t = text(k);
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (t == "," && depth == 0) {
        out.push_back({start, k});
        start = k + 1;
      }
    }
    out.push_back({start, close});
    return out;
  }

  /// Root identifier of an lvalue-ish token range ("out.data()" -> "out",
  /// "&b" -> "b"); empty when the range is not one simple path.
  std::string simple_root(std::size_t b, std::size_t e) const {
    std::string root;
    for (std::size_t k = b; k < e; ++k) {
      const std::string& t = text(k);
      if (t == "&" || t == "*" || t == "this") continue;
      if (cg::is_ident_tok(t)) {
        root = t;
        break;
      }
      return "";
    }
    if (root.empty()) return "";
    return root;
  }

  /// End of the primary starting at `i` (identifier path with trailing
  /// call/subscript/member chain, or a parenthesized group).
  std::size_t primary_end(std::size_t i, std::size_t e) const {
    if (i >= e) return i;
    if (text(i) == "(") {
      const std::size_t c = match_fwd(i);
      return c < e ? c + 1 : e;
    }
    if (!cg::is_ident_tok(text(i))) return i + 1;
    std::size_t j = i + 1;
    while (j < e) {
      const std::string& t = text(j);
      if (t == "::" || t == "." || t == "->") {
        if (j + 1 < e && cg::is_ident_tok(text(j + 1))) {
          j += 2;
          continue;
        }
        break;
      }
      if (t == "(" || t == "[") {
        const std::size_t c = match_fwd(j);
        if (c >= e) return e;
        j = c + 1;
        continue;
      }
      break;
    }
    return j;
  }

  void merge(Ev& res, unsigned m, const std::string& nm) {
    res.mask |= m;
    if (res.name.empty() && m != 0) res.name = nm;
  }

  /// Applies a resolved callee's summary at a call site; returns the
  /// result's taint mask. Unresolved calls propagate receiver|args.
  unsigned handle_call(const std::vector<int>& targets,
                       const std::vector<Ev>& args, unsigned recv_mask,
                       std::size_t line) {
    unsigned arg_union = 0;
    for (const Ev& a : args) arg_union |= a.mask;
    if (targets.empty()) return recv_mask | arg_union;
    unsigned result = recv_mask;
    for (int t : targets) {
      const Summary& cs = p.data[static_cast<std::size_t>(t)].sum;
      auto translate = [&](unsigned mm) {
        unsigned o = mm & kIntrinsic;
        for (std::size_t pi = 0; pi < args.size() && pi < kMaxParams; ++pi) {
          if ((mm & param_bit(pi)) != 0) o |= args[pi].mask;
        }
        return o;
      };
      result |= translate(cs.ret_taint);
      for (const auto& [pk, w] : cs.param_sink) {
        const unsigned pi = pk.first;
        if (pi >= args.size()) continue;
        const unsigned am = args[pi].mask;
        if (am == 0) continue;
        if ((line_mask(p, *file, line) & aspect_of(w.kind)) == 0) continue;
        Witness nw = w;
        nw.chain = fn.qname + " -> " + w.chain;
        add_event(am, nw);
      }
      for (std::size_t pi = 0;
           pi < cs.param_out.size() && pi < args.size(); ++pi) {
        if (cs.param_out[pi] == 0) continue;
        taint_assign(args[pi].root, translate(cs.param_out[pi]));
      }
    }
    return result;
  }

  std::vector<Ev> eval_args(std::size_t open, std::size_t close) {
    std::vector<Ev> out;
    for (const auto& [b, e] : split_args(open, close)) {
      Ev a = eval(b, e);
      a.root = simple_root(b, e);
      out.push_back(std::move(a));
    }
    return out;
  }

  /// Member/subscript chain continuation: `m` is the mask of the primary
  /// just parsed ending at `i`; processes ".mem(...)", "->mem", "[idx]"
  /// until the chain ends. `root` names the chain's base variable (for
  /// mutation taint), empty when unknown.
  std::size_t chain(std::size_t i, std::size_t e, unsigned& m,
                    const std::string& root, Ev& res) {
    while (i < e) {
      const std::string& t = text(i);
      if ((t == "." || t == "->") && i + 1 < e &&
          cg::is_ident_tok(text(i + 1))) {
        const std::string mem = text(i + 1);
        std::size_t j = i + 2;
        if (j < e && text(j) == "(") {
          const std::size_t c = match_fwd(j);
          const std::size_t line = line_at(i + 1);
          if (is_public_result_member(mem) || is_public_result_call(mem)) {
            for (const auto& [b2, e2] : split_args(j, c)) eval(b2, e2);
            m = 0;  // structure query / ciphertext: public result
          } else if (is_ct_safe_call(mem)) {
            for (const auto& [b2, e2] : split_args(j, c)) eval(b2, e2);
            m = 0;
          } else if (kVarlatMembers.count(mem) != 0) {
            unsigned am = 0;
            std::string nm = m != 0 ? root : "";
            for (const auto& [b2, e2] : split_args(j, c)) {
              const Ev a = eval(b2, e2);
              am |= a.mask;
              if (nm.empty()) nm = a.name;
            }
            if ((m | am) != 0) {
              record_sink(kSinkVarlat, line, m | am, nm, mem);
            }
            m |= am;
          } else {
            std::vector<Ev> args = eval_args(j, c);
            std::vector<int> targets;
            if (kTerminalCallNames.count(mem) == 0) {
              targets = cg::resolve_name(p.g, p.by_last, fn, mem);
            }
            unsigned am = 0;
            for (const Ev& a : args) am |= a.mask;
            // A mutating member call taints the receiver from its
            // arguments (push_back/update/insert shapes).
            taint_assign(root, am);
            m = handle_call(targets, args, m, line);
          }
          i = c + 1;
        } else {
          if (kPublicFields.count(mem) != 0) {
            m = 0;  // public component of a secret-bearing struct
          } else if (is_secret_ident(mem)) {
            m |= kIntrinsic;
          }
          i = j;
        }
        continue;
      }
      if (t == "[") {
        const std::size_t c = match_fwd(i);
        const Ev idx = eval(i + 1, c);
        if (idx.mask != 0) {
          record_sink(kSinkIndex, line_at(i), idx.mask, idx.name, "index");
        }
        m |= idx.mask;
        i = c + 1;
        continue;
      }
      break;
    }
    if (res.name.empty() && m != 0 && !root.empty()) res.name = root;
    return i;
  }

  Ev eval(std::size_t b, std::size_t e) {
    Ev res;
    unsigned last_primary = 0;
    bool have_primary = false;
    std::size_t i = b;
    while (i < e) {
      const std::string& t = text(i);
      if (t == "(" || t == "{") {
        const std::size_t c = match_fwd(i);
        Ev sub = eval(i + 1, c);
        unsigned m = sub.mask;
        // Merge only after the trailing chain: "(expr).size()" is public
        // even when expr is tainted.
        i = chain(c + 1, e, m, sub.name, res);
        merge(res, m, sub.name);
        last_primary = m;
        have_primary = true;
        continue;
      }
      if (t == "/" || t == "%") {
        if (have_primary) {
          const std::size_t pe = primary_end(i + 1, e);
          Ev r;
          if (i + 1 < pe) r = eval(i + 1, pe);
          const unsigned m = last_primary | r.mask;
          if (m != 0) {
            record_sink(kSinkVarlat, line_at(i), m,
                        !r.name.empty() ? r.name : res.name, t);
          }
        }
        ++i;
        continue;
      }
      if (!cg::is_ident_tok(t) || kSkipTokens.count(t) != 0) {
        ++i;
        continue;
      }
      // Qualified path.
      std::string name = t;
      std::size_t j = i + 1;
      while (j + 1 < e && text(j) == "::" && cg::is_ident_tok(text(j + 1))) {
        name += "::" + text(j + 1);
        j += 2;
      }
      const std::string last = cg::last_component(name);
      if (last == "static_cast" || last == "dynamic_cast" ||
          last == "reinterpret_cast" || last == "const_cast") {
        if (j < e && text(j) == "<") {
          int depth = 1;
          ++j;
          while (j < e && depth > 0) {
            if (text(j) == "<") ++depth;
            if (text(j) == ">") --depth;
            ++j;
          }
        }
        i = j;  // the "(value)" group is evaluated as a grouping next
        continue;
      }
      if (last == "sizeof" || last == "alignof" || last == "decltype") {
        if (j < e && text(j) == "(") j = match_fwd(j) + 1;
        i = j;
        continue;
      }
      unsigned m = 0;
      std::string root = name;
      if (j < e && (text(j) == "(" || text(j) == "{") &&
          !(text(j) == "{" && j + 1 < e && text(j + 1) == "}")) {
        const std::size_t c = match_fwd(j);
        const std::size_t line = line_at(i);
        const bool ctor_decl =
            i > b && cg::is_ident_tok(text(i - 1)) &&
            kSkipTokens.count(text(i - 1)) == 0;
        if (is_ct_safe_call(last) || is_public_result_call(last)) {
          for (const auto& [b2, e2] : split_args(j, c)) eval(b2, e2);
          m = 0;
        } else if (last == "memcpy" || last == "memmove" ||
                   last == "memset") {
          const auto ranges = split_args(j, c);
          std::vector<Ev> args;
          for (const auto& [b2, e2] : ranges) {
            Ev a = eval(b2, e2);
            a.root = simple_root(b2, e2);
            args.push_back(std::move(a));
          }
          if (args.size() >= 2 && last != "memset") {
            taint_assign(args[0].root, args[1].mask);
            m = args[1].mask;
          }
        } else if (ctor_decl) {
          // `Type name(args);` — a declaration, not a call: the new
          // variable takes its initializer's taint.
          unsigned am = 0;
          for (const auto& [b2, e2] : split_args(j, c)) am |= eval(b2, e2).mask;
          taint_assign(name, am);
          m = am;
        } else {
          std::vector<Ev> args = eval_args(j, c);
          std::vector<int> targets;
          if (kTerminalCallNames.count(last) == 0) {
            targets = cg::resolve_name(p.g, p.by_last, fn, name);
          }
          m = handle_call(targets, args, 0, line);
        }
        i = chain(c + 1, e, m, root, res);
        merge(res, m, last);
        last_primary = m;
        have_primary = true;
        continue;
      }
      m = ident_mask(name);
      i = chain(j, e, m, root, res);
      merge(res, m, name);
      last_primary = m;
      have_primary = true;
    }
    return res;
  }

  /// Root of the lvalue/declaration on the left of an assignment.
  std::string lhs_root(std::size_t b, std::size_t e) const {
    std::string cur;
    bool absorbed = false;
    for (std::size_t k = b; k < e; ++k) {
      const std::string& t = text(k);
      if (t == "::" || t == "." || t == "->") {
        absorbed = true;
        continue;
      }
      if (t == "[" || t == "(" || t == "{") {
        int depth = 1;
        ++k;
        while (k < e && depth > 0) {
          const std::string& a = text(k);
          if (a == "[" || a == "(" || a == "{") ++depth;
          if (a == "]" || a == ")" || a == "}") --depth;
          if (depth > 0) ++k;
        }
        continue;
      }
      if (t == "<") {
        // template argument list of a declared type: skip to '>'
        int depth = 1;
        ++k;
        while (k < e && depth > 0) {
          if (text(k) == "<") ++depth;
          if (text(k) == ">") --depth;
          if (depth > 0) ++k;
        }
        continue;
      }
      if (cg::is_ident_tok(t) && kSkipTokens.count(t) == 0) {
        if (absorbed) {
          absorbed = false;
          continue;
        }
        cur = t;
      }
    }
    return cur;
  }

  void stmt(std::size_t b, std::size_t e) {
    if (b >= e) return;
    // Top-level assignment?
    std::size_t ap = span_end;
    std::string prevop;
    int depth = 0;
    for (std::size_t k = b; k < e; ++k) {
      const std::string& t = text(k);
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (depth != 0 || t != "=") continue;
      const std::string& prev = k > b ? text(k - 1) : text(k);
      const std::string& next = k + 1 < e ? text(k + 1) : text(k);
      if (prev == "=" || prev == "!" || prev == "<" || prev == ">" ||
          next == "=") {
        continue;
      }
      if (prev == "+" || prev == "-" || prev == "*" || prev == "/" ||
          prev == "%" || prev == "&" || prev == "|" || prev == "^") {
        prevop = prev;
      }
      ap = k;
      break;
    }
    if (ap >= e) {
      eval(b, e);
      return;
    }
    const std::size_t lhs_end = prevop.empty() ? ap : ap - 1;
    const Ev lv = eval(b, lhs_end);
    const Ev rv = eval(ap + 1, e);
    if ((prevop == "/" || prevop == "%") && (lv.mask | rv.mask) != 0) {
      record_sink(kSinkVarlat, line_at(ap), lv.mask | rv.mask,
                  !lv.name.empty() ? lv.name : rv.name, prevop);
    }
    const std::string root = lhs_root(b, lhs_end);
    taint_assign(root, rv.mask | (prevop.empty() ? 0u : lv.mask));
  }

  /// Statement end: next ';' at depth 0, stopping early at a top-level '{'
  /// so block bodies are walked statement-by-statement.
  std::size_t stmt_end(std::size_t b, std::size_t e) const {
    int depth = 0;
    for (std::size_t k = b; k < e; ++k) {
      const std::string& t = text(k);
      if (t == "{" && depth == 0) return k;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (t == ";" && depth <= 0) return k;
    }
    return e;
  }

  void walk_span(const cg::Span& sp) {
    toks = &p.g.tus[static_cast<std::size_t>(sp.tu)].toks;
    file = &p.g.tus[static_cast<std::size_t>(sp.tu)].path;
    span_end = sp.end;
    std::size_t i = sp.begin;
    while (i < sp.end) {
      const std::string& t = text(i);
      if (t == "{" || t == "}" || t == ";" || t == ":") {
        ++i;
        continue;
      }
      if ((t == "if" || t == "while" || t == "switch") &&
          text(i + 1) == "(") {
        const std::size_t c = match_fwd(i + 1);
        const Ev cond = eval(i + 2, c);
        if (cond.mask != 0) {
          record_sink(kSinkBranch, line_at(i), cond.mask, cond.name,
                      "branch");
        }
        i = c + 1;
        continue;
      }
      if (t == "for" && text(i + 1) == "(") {
        const std::size_t c = match_fwd(i + 1);
        std::size_t semi1 = c, semi2 = c, colon = c;
        int depth = 0;
        for (std::size_t k = i + 2; k < c; ++k) {
          const std::string& a = text(k);
          if (a == "(" || a == "[" || a == "{") ++depth;
          if (a == ")" || a == "]" || a == "}") --depth;
          if (depth != 0) continue;
          if (a == ";") {
            if (semi1 == c) {
              semi1 = k;
            } else if (semi2 == c) {
              semi2 = k;
            }
          }
          if (a == ":" && colon == c && semi1 == c) colon = k;
        }
        if (semi1 < c) {
          stmt(i + 2, semi1);
          const std::size_t cond_end = semi2 < c ? semi2 : c;
          const Ev cond = eval(semi1 + 1, cond_end);
          if (cond.mask != 0) {
            record_sink(kSinkBranch, line_at(i), cond.mask, cond.name,
                        "branch");
          }
          if (semi2 < c) stmt(semi2 + 1, c);
        } else if (colon < c) {
          // Ranged-for: the loop variable takes the range's taint; the
          // trip count is the container's (public) size.
          const Ev range = eval(colon + 1, c);
          taint_assign(lhs_root(i + 2, colon), range.mask);
        } else {
          eval(i + 2, c);
        }
        i = c + 1;
        continue;
      }
      if (t == "return") {
        const std::size_t e = stmt_end(i + 1, sp.end);
        const Ev r = eval(i + 1, e);
        if ((d.ret_mask | r.mask) != d.ret_mask) {
          d.ret_mask |= r.mask;
          taint_changed = true;
        }
        i = e + 1;
        continue;
      }
      if (t == "else" || t == "do" || t == "try" || t == "break" ||
          t == "continue" || t == "case" || t == "default" ||
          t == "goto") {
        ++i;
        continue;
      }
      if (t == "catch" && text(i + 1) == "(") {
        i = match_fwd(i + 1) + 1;
        continue;
      }
      const std::size_t e = stmt_end(i, sp.end);
      stmt(i, e);
      i = e == sp.end ? e : e + (text(e) == "{" ? 0 : 1);
      if (i < sp.end && text(i) == "{") ++i;  // enter the block
    }
  }

  void run() {
    for (int iter = 0; iter < 4; ++iter) {
      taint_changed = false;
      for (const cg::Span& sp : fn.bodies) walk_span(sp);
      if (!taint_changed) break;
    }
  }
};

// ---------------------------------------------------------------------------
// Global fixpoint over per-function summaries.
// ---------------------------------------------------------------------------

bool update_summary(Pass& p, int fi,
                    const std::map<std::string, unsigned>& taint) {
  FnData& d = p.data[static_cast<std::size_t>(fi)];
  Summary& s = d.sum;
  bool changed = false;
  for (const auto& [key, ev] : d.events) {
    (void)key;
    for (std::size_t pi = 0; pi < d.params.size() && pi < kMaxParams; ++pi) {
      if ((ev.mask & param_bit(pi)) == 0) continue;
      const auto pk = std::make_pair(static_cast<unsigned>(pi), ev.w.kind);
      if (s.param_sink.count(pk) == 0) {
        s.param_sink.emplace(pk, ev.w);
        changed = true;
      }
    }
  }
  if ((s.ret_taint | d.ret_mask) != s.ret_taint) {
    s.ret_taint |= d.ret_mask;
    changed = true;
  }
  if (s.param_out.size() < d.params.size()) {
    s.param_out.resize(d.params.size(), 0);
  }
  for (std::size_t pi = 0; pi < d.params.size(); ++pi) {
    if (!d.params[pi].out) continue;
    unsigned m = 0;
    for (const std::string& n : d.params[pi].names) {
      const auto it = taint.find(n);
      if (it != taint.end()) m |= it->second;
    }
    m &= ~param_bit(pi);  // a param's own seed bit is not an out-flow
    if ((s.param_out[pi] | m) != s.param_out[pi]) {
      s.param_out[pi] |= m;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

int run(const Options& opts) {
  Pass p;
  std::size_t files = 0;
  // The marker is split so this tool's own sources never self-match.
  const std::string marker = std::string("PPROX-CT-") + "OK(";
  for (const fs::path& path : opts.inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "pprox_lint: cannot read " << path << "\n";
      return 2;
    }
    std::vector<std::string> raw;
    std::string line;
    while (std::getline(in, line)) raw.push_back(line);
    ++files;

    const auto supp = cg::scan_suppressions(raw, marker, &aspect_from_name);
    for (const auto& [ln, s] : supp) {
      if (!s.bare) continue;
      Finding f;
      f.rule = "ct-bare-suppression";
      f.key = std::string("ct-bare-suppression|") + path.filename().string() +
              "|" + std::to_string(ln);
      f.path = path.string();
      f.line = ln;
      f.chain = "";
      f.message =
          "constant-time suppression without a justification; write "
          "PPROX-CT-" "OK(<aspect>): <why> (the bare form suppresses "
          "nothing)";
      p.bare_findings.push_back(std::move(f));
    }
    // A suppression on a comment-only line anchors forward to the next code
    // line, so a multi-line justification block above the sink still lands
    // on it; a trailing suppression anchors to its own line.
    const auto comment_only = [&raw](std::size_t ln) {
      if (ln == 0 || ln > raw.size()) return false;
      const std::string& l = raw[ln - 1];
      const std::size_t at = l.find_first_not_of(" \t");
      return at != std::string::npos && l.compare(at, 2, "//") == 0;
    };
    for (const auto& [ln, s] : supp) {
      if (s.bare) continue;
      std::size_t anchor = ln;
      if (comment_only(ln)) {
        while (anchor < raw.size() && comment_only(anchor + 1)) ++anchor;
        ++anchor;  // first non-comment line below the block
      }
      p.line_suppressions[path.string()][anchor] |= s.effects;
    }
    p.g.add_tu(path.string(), cg::tokenize(cg::code_lines(raw)));
  }

  p.g.merge_decl_annotations();
  scan_secret_decls(p);
  p.by_last = cg::index_by_last(p.g);
  p.data.assign(p.g.fns.size(), FnData{});
  for (std::size_t fi = 0; fi < p.g.fns.size(); ++fi) {
    const cg::Fn& fn = p.g.fns[fi];
    for (const cg::Span& sp : fn.bodies) {
      extract_params(p.g.tus[static_cast<std::size_t>(sp.tu)].toks, sp,
                     cg::last_component(fn.qname), p.data[fi].params);
    }
  }

  bool changed = true;
  std::size_t guard = 0;
  while (changed && guard++ < p.g.fns.size() + 8) {
    changed = false;
    for (std::size_t fi = 0; fi < p.g.fns.size(); ++fi) {
      if (p.g.fns[fi].bodies.empty()) continue;
      Walker w(p, static_cast<int>(fi));
      w.run();
      if (update_summary(p, static_cast<int>(fi), w.taint)) changed = true;
      if (w.events_changed) changed = true;
    }
  }

  // Findings are anchored at the SINK, not the path: one key per
  // (rule, sink-function, operation) with a representative (shortest)
  // taint chain in the message. Fixing or justifying the sink resolves
  // every path through it; the alternative — one key per root — explodes
  // a single leaky helper into dozens of baseline entries.
  std::vector<Finding> findings = std::move(p.bare_findings);
  for (std::size_t fi = 0; fi < p.g.fns.size(); ++fi) {
    const cg::Fn& fn = p.g.fns[fi];
    for (const auto& [key, ev] : p.data[fi].events) {
      (void)key;
      if ((ev.mask & kIntrinsic) == 0) continue;  // summaries only
      Finding f;
      f.rule = rule_of(ev.w.kind);
      f.key = std::string(f.rule) + "|" + ev.w.leaf + "|" + ev.w.token;
      f.path = ev.w.file.empty() ? fn.file : ev.w.file;
      f.line = ev.w.line != 0 ? ev.w.line : fn.line;
      f.chain = ev.w.chain;
      const char* what =
          ev.w.kind == kSinkBranch
              ? "a branch condition or loop bound"
              : ev.w.kind == kSinkIndex ? "an array subscript"
                                        : "a variable-latency operation";
      f.message = std::string("PPROX-CT-") +
                  (ev.w.kind == kSinkBranch
                       ? "BRANCH"
                       : ev.w.kind == kSinkIndex ? "INDEX" : "VARLAT") +
                  ": secret-tainted value reaches " + what + " at " +
                  ev.w.token + ": " + ev.w.chain +
                  "; make it branch-free with crypto/ct.hpp helpers "
                  "(ct_select_*/ct_mask_*/ct_eq_*), fold validity into one "
                  "flag revealed via ct_reveal, suppress the sink line with "
                  "// PPROX-CT-" "OK(" +
                  (ev.w.kind == kSinkBranch
                       ? "branch"
                       : ev.w.kind == kSinkIndex ? "index" : "varlat") +
                  "): <why>, or ratchet it in the --baseline file";
      findings.push_back(std::move(f));
    }
  }

  // Transitive emission mints the same sink key once per distinct chain;
  // keep the shortest chain as the representative witness.
  std::map<std::string, std::size_t> best;
  std::vector<Finding> unique;
  for (Finding& f : findings) {
    const auto it = best.find(f.key);
    if (it == best.end()) {
      best.emplace(f.key, unique.size());
      unique.push_back(std::move(f));
    } else if (f.chain.size() < unique[it->second].chain.size()) {
      unique[it->second] = std::move(f);
    }
  }
  findings = std::move(unique);

  cg::ReportSpec spec;
  spec.mode = "ct";
  spec.anchor = "ct";
  spec.what = "constant-time";
  spec.bare_rule = "ct-bare-suppression";
  spec.default_why =
      "baselined pre-existing secret-dependent timing; shrink, do not grow "
      "(DESIGN.md §13)";
  spec.json = opts.json;
  spec.baseline = opts.baseline;
  spec.baseline_write = opts.baseline_write;
  return cg::report(spec, findings, files);
}

}  // namespace ct
