// pprox_ct_bench — dudect-style dynamic timing-leakage harness (DESIGN.md
// §13.6). The static pass (pprox_lint --ct) proves the *code shape* is
// branch-free; this harness cross-validates the *compiled artifact*: the
// optimizer, the CPU, and the library are all in the measurement loop.
//
// Method (after Reparaz/Balasch/Verbauwhede, "dude, is my code constant
// time?"): for each primitive, prepare two input classes that take the same
// macro path — class 0 a fixed secret-side input, class 1 a fresh
// pseudo-random one — interleave them in a fixed-seed random order, measure
// each invocation in cycles (rdtscp on x86, steady_clock elsewhere), and run
// Welch's t-test on the two timing populations. |t| > 10 flags a leak. The
// threshold is deliberately far above dudect's canonical 4.5: CI boxes are
// noisy, and a miss here is backstopped by the static pass; what this gate
// must never do is flake.
//
// Primitives measured (shipped build):
//   ct_equal           4 KiB unequal compare — both classes reject
//   gcm_tag_check      AesGcm::open with a corrupted tag — both reject
//                      before any plaintext is released
//   rsa_unpad_pkcs1    128-byte em with no 0x00 separator — both reject
//                      after scanning the full block
//   rsa_unpad_oaep     128-byte em that fails the lHash/separator check —
//                      both reject after full unmasking
//   modexp_montgomery  fixed 1024-bit odd modulus, 256-bit exponents with
//                      the top bit pinned (mont_mul count is a function of
//                      bit_length alone after the always-multiply hardening)
//
// Under -DPPROX_CHECK_SELFTEST the harness instead measures ONLY a
// deliberately leaky early-exit compare (difference at byte 0 vs. byte
// 65535 of 64 KiB) and must exit 1 — a WILL_FAIL ctest that proves the
// statistics can still see a leak, mirroring the model-checker selftest.
//
// PPROX_CT_SAMPLES overrides the per-primitive sample count (default 20000;
// modexp runs 1/10th of it).
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/bigint.hpp"
#include "crypto/ct.hpp"
#include "crypto/gcm.hpp"
#include "crypto/rsa.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace {

using pprox::Bytes;
using pprox::ByteView;
using pprox::crypto::AesGcm;
using pprox::crypto::BigInt;

std::uint64_t now_ticks() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned aux;
  return __rdtscp(&aux);
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Fixed-seed splitmix64: the class schedule and the "random" class inputs
/// are identical on every run, so the gate's verdict is reproducible.
struct SplitMix {
  std::uint64_t s;
  explicit SplitMix(std::uint64_t seed) : s(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint8_t byte() { return static_cast<std::uint8_t>(next()); }
  void fill(Bytes& b) {
    for (auto& x : b) x = byte();
  }
};

/// Welch's t statistic over two online-accumulated populations.
struct Welch {
  double n[2] = {0, 0};
  double mean[2] = {0, 0};
  double m2[2] = {0, 0};

  void push(int cls, double x) {
    n[cls] += 1;
    const double d = x - mean[cls];
    mean[cls] += d / n[cls];
    m2[cls] += d * (x - mean[cls]);
  }
  double t() const {
    if (n[0] < 2 || n[1] < 2) return 0;
    const double v0 = m2[0] / (n[0] - 1);
    const double v1 = m2[1] / (n[1] - 1);
    const double denom = v0 / n[0] + v1 / n[1];
    if (denom <= 0) return 0;
    return (mean[0] - mean[1]) / std::sqrt(denom);
  }
};

volatile std::uint64_t g_sink;  // keeps measured results alive

struct Case {
  std::string name;
  std::size_t samples;
  /// prepare(cls) regenerates the per-invocation input for class `cls`;
  /// run() measures one invocation over the prepared input.
  std::function<void(int, SplitMix&)> prepare;
  std::function<std::uint64_t()> run;
};

bool measure(const Case& c) {
  SplitMix rng(0x5050726f78ull);  // constant: "PProx"
  Welch w;
  // Warmup: touch both classes so caches/predictors settle off the record.
  for (int i = 0; i < 64; ++i) {
    c.prepare(i & 1, rng);
    g_sink = g_sink + c.run();
  }
  for (std::size_t i = 0; i < c.samples; ++i) {
    const int cls = static_cast<int>(rng.next() & 1);
    c.prepare(cls, rng);
    const std::uint64_t t0 = now_ticks();
    g_sink = g_sink + c.run();
    const std::uint64_t t1 = now_ticks();
    w.push(cls, static_cast<double>(t1 - t0));
  }
  const double t = w.t();
  const bool leaky = t > 10.0 || t < -10.0;
  std::cout << (leaky ? "LEAKY " : "ok    ") << c.name << "  n0="
            << static_cast<std::uint64_t>(w.n[0])
            << " n1=" << static_cast<std::uint64_t>(w.n[1])
            << " mean0=" << w.mean[0] << " mean1=" << w.mean[1] << " t=" << t
            << "\n";
  return !leaky;
}

std::size_t sample_budget() {
  if (const char* e = std::getenv("PPROX_CT_SAMPLES")) {
    const long v = std::atol(e);
    if (v > 100) return static_cast<std::size_t>(v);
  }
  return 20000;
}

#if defined(PPROX_CHECK_SELFTEST)

/// The planted leak: an early-exit compare over 64 KiB. Class 0 differs at
/// byte 0 (returns immediately), class 1 differs at the last byte (scans
/// everything). Any working t-test sees this from orbit; if this build
/// exits 0 the harness has lost its eyes.
int run_selftest(std::size_t samples) {
  constexpr std::size_t kN = 64 * 1024;
  Bytes a(kN, 0xAB), b(kN, 0xAB);
  auto leaky_equal = [&]() -> std::uint64_t {
    for (std::size_t i = 0; i < kN; ++i) {
      if (a[i] != b[i]) return i;
    }
    return kN;
  };
  Case c;
  c.name = "leaky_equal(selftest)";
  c.samples = samples;
  c.prepare = [&](int cls, SplitMix&) {
    std::memcpy(b.data(), a.data(), kN);
    if (cls == 0) {
      b[0] ^= 0xFF;
    } else {
      b[kN - 1] ^= 0xFF;
    }
  };
  c.run = leaky_equal;
  const bool ok = measure(c);
  std::cout << (ok ? "selftest FAILED to detect the planted leak\n"
                   : "selftest detected the planted leak (expected)\n");
  return ok ? 0 : 1;  // WILL_FAIL: the leak must be found -> exit 1
}

#endif  // PPROX_CHECK_SELFTEST

}  // namespace

int main() {
  const std::size_t samples = sample_budget();
#if defined(PPROX_CHECK_SELFTEST)
  return run_selftest(samples);
#else
  bool all_ok = true;
  SplitMix setup(0x646f7263ull);

  // --- ct_equal: 4 KiB unequal buffers, both classes reject ---------------
  {
    constexpr std::size_t kN = 4096;
    Bytes pub(kN);
    setup.fill(pub);
    Bytes probe(kN);
    Case c;
    c.name = "ct_equal";
    c.samples = samples;
    c.prepare = [&](int cls, SplitMix& rng) {
      if (cls == 0) {
        std::memcpy(probe.data(), pub.data(), kN);
        probe[0] ^= 0xFF;  // fixed: differs at the first byte
      } else {
        rng.fill(probe);  // random: differs (w.h.p.) everywhere
        probe[0] ^= static_cast<std::uint8_t>(probe[0] == pub[0]);
      }
    };
    c.run = [&]() -> std::uint64_t {
      return pprox::crypto::ct_equal(pub, probe) ? 1 : 0;
    };
    all_ok = measure(c) && all_ok;
  }

  // --- GCM tag check: corrupted tag, both classes reject ------------------
  {
    Bytes key(32);  // pprox-lint: allow(secure-wipe): throwaway bench key
    setup.fill(key);
    AesGcm gcm(key);
    std::array<std::uint8_t, AesGcm::kNonceSize> nonce{};
    Bytes plain(1024);
    setup.fill(plain);
    const Bytes sealed = gcm.seal(nonce, plain);
    Bytes tampered = sealed;
    const std::size_t tag_at = sealed.size() - AesGcm::kTagSize;
    Case c;
    c.name = "gcm_tag_check";
    c.samples = samples;
    c.prepare = [&](int cls, SplitMix& rng) {
      std::memcpy(tampered.data() + tag_at, sealed.data() + tag_at,
                  AesGcm::kTagSize);
      if (cls == 0) {
        tampered[tag_at] ^= 0xFF;  // fixed single-byte corruption
      } else {
        for (std::size_t i = 0; i < AesGcm::kTagSize; ++i) {
          tampered[tag_at + i] = rng.byte();  // fully random wrong tag
        }
        tampered[tag_at] ^=
            static_cast<std::uint8_t>(tampered[tag_at] == sealed[tag_at]);
      }
    };
    c.run = [&]() -> std::uint64_t {
      return gcm.open(nonce, tampered).ok() ? 1 : 0;
    };
    all_ok = measure(c) && all_ok;
  }

  // --- PKCS#1 v1.5 unpad: no separator anywhere, both classes reject ------
  {
    constexpr std::size_t kK = 128;
    Bytes em(kK);
    Case c;
    c.name = "rsa_unpad_pkcs1";
    c.samples = samples;
    c.prepare = [&](int cls, SplitMix& rng) {
      em[0] = 0x00;
      em[1] = 0x02;
      for (std::size_t i = 2; i < kK; ++i) {
        // Nonzero fill: the separator scan must sweep the whole block.
        em[i] = cls == 0 ? 0x5A
                         : static_cast<std::uint8_t>(rng.byte() | 1);
      }
    };
    c.run = [&]() -> std::uint64_t {
      return pprox::crypto::rsa_unpad_pkcs1(em).ok() ? 1 : 0;
    };
    all_ok = measure(c) && all_ok;
  }

  // --- OAEP unpad: lHash check fails, both classes reject -----------------
  {
    constexpr std::size_t kK = 128;
    Bytes em(kK);
    Case c;
    c.name = "rsa_unpad_oaep";
    c.samples = samples;
    c.prepare = [&](int cls, SplitMix& rng) {
      if (cls == 0) {
        for (std::size_t i = 0; i < kK; ++i) {
          em[i] = static_cast<std::uint8_t>(i * 37 + 11);
        }
      } else {
        rng.fill(em);
      }
      em[0] = 0x01;  // nonzero leading byte: guaranteed reject either way
    };
    c.run = [&]() -> std::uint64_t {
      return pprox::crypto::rsa_unpad_oaep(em).ok() ? 1 : 0;
    };
    all_ok = measure(c) && all_ok;
  }

  // --- Montgomery modexp: secret exponent, pinned bit length --------------
  {
    Bytes mod_bytes(128);
    setup.fill(mod_bytes);
    mod_bytes[0] |= 0x80;    // full 1024 bits
    mod_bytes[127] |= 0x01;  // odd: Montgomery path
    const BigInt modulus = BigInt::from_bytes_be(mod_bytes);
    const BigInt base(0x10001);
    Bytes exp_fixed(32);
    setup.fill(exp_fixed);
    exp_fixed[0] |= 0x80;
    Bytes exp_bytes = exp_fixed;
    BigInt exponent = BigInt::from_bytes_be(exp_fixed);
    Case c;
    c.name = "modexp_montgomery";
    c.samples = samples / 10 < 1000 ? 1000 : samples / 10;
    c.prepare = [&](int cls, SplitMix& rng) {
      if (cls == 0) {
        exponent = BigInt::from_bytes_be(exp_fixed);
      } else {
        rng.fill(exp_bytes);
        exp_bytes[0] |= 0x80;  // same bit_length as the fixed class
        exponent = BigInt::from_bytes_be(exp_bytes);
      }
    };
    c.run = [&]() -> std::uint64_t {
      return base.modexp_montgomery(exponent, modulus).bit_length();
    };
    all_ok = measure(c) && all_ok;
  }

  std::cout << (all_ok ? "all primitives pass (|t| <= 10)\n"
                       : "timing leak detected\n");
  return all_ok ? 0 : 1;
#endif
}
