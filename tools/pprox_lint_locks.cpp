// pprox_lint --locks — interprocedural lock-discipline pass (DESIGN.md §12).
//
// Statically enforces the locking discipline the concurrency core depends
// on, reusing the shared call-graph front end (lint_callgraph.hpp) that the
// --hotpath pass builds on. The pass
//
//   1. replays every function body span against the sync.hpp vocabulary
//      (Mutex/SharedMutex declarations, LockGuard/UniqueLock/WriteLock/
//      ReadLock/SharedLock construction, ScopedUnlock, manual .lock()/
//      .unlock(), CondVar::wait*), tracking the *held-lock set* through the
//      body's block structure and recording acquire / blocking / ecall /
//      call events together with the locks held at each site;
//   2. resolves call events to scanned functions (same policy as --hotpath)
//      and propagates per-function summaries — "may block", "may cross the
//      enclave boundary", "may acquire lock L" — to a fixpoint, each with a
//      shortest witness chain;
//   3. builds a global lock-order graph (edge H -> L: L acquired while H is
//      held, directly or through a call chain) and reports every cycle as a
//      PPROX-LOCK-ORDER finding carrying the witness chain of each edge;
//   4. reports PPROX-LOCK-BLOCKING (a blocking leaf — sleep/join/syscall/
//      pool submit — reached while any lock is held; CondVar::wait on the
//      lock it releases is exempt), PPROX-LOCK-ECALL (a lock held across a
//      PPROX_ECALL_BOUNDARY function or an Enclave::ecall call),
//      PPROX-LOCK-MANUAL (bare .lock()/.unlock() outside common/sync.hpp —
//      invisible to RAII reasoning and to the pprox_check scheduler), and
//      PPROX-WAIT-NOPRED (CondVar::wait without a predicate — spurious
//      wakeups break the invariant the wait guards).
//
// Lock identity is resolved to qualified names: a locally declared mutex is
// "<function>::<name>", a member mutex is "<class>::<name>", and a dotted
// path ("server_->mu_") keeps its written spelling with "->" normalized to
// ".". Two instances of the same class collapse onto one name — which is
// why same-lock self-edges are excluded from the order graph (DESIGN.md
// §12.4 spells out this and the other soundness limits).
//
// Suppression (on the offending line, reason mandatory, same contract as
// --hotpath): aspects are order / blocking / ecall / manual / nopred:
//   stats_mu_.lock();  // PPROX-LOCKS-OK(manual): released across callback
// A bare suppression (no ": reason") is itself a finding and suppresses
// nothing. Baseline ratchet: --baseline FILE compares finding keys against
// tools/locks_baseline.json; only new keys fail. --baseline-write FILE
// regenerates the file, carrying over existing "why" justifications.
#include "locks_pass.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint_callgraph.hpp"

namespace fs = std::filesystem;

namespace locks {
namespace {

using cg::Finding;

// ---------------------------------------------------------------------------
// Aspects (the suppression vocabulary).
// ---------------------------------------------------------------------------

enum Aspect : unsigned {
  kOrder = 1u << 0,
  kBlocking = 1u << 1,
  kEcall = 1u << 2,
  kManual = 1u << 3,
  kNopred = 1u << 4,
};
constexpr unsigned kAllAspects = kOrder | kBlocking | kEcall | kManual |
                                 kNopred;

unsigned aspect_from_name(const std::string& name) {
  if (name == "order") return kOrder;
  if (name == "blocking") return kBlocking;
  if (name == "ecall") return kEcall;
  if (name == "manual") return kManual;
  if (name == "nopred") return kNopred;
  return 0;
}

// ---------------------------------------------------------------------------
// Vocabulary tables.
// ---------------------------------------------------------------------------

/// RAII guard types from common/sync.hpp whose construction acquires the
/// mutex passed as the first argument and releases it at scope end.
const std::set<std::string> kGuardTypeNames = {
    "LockGuard", "UniqueLock", "WriteLock", "ReadLock", "SharedLock"};

/// Mutex-flavored declarations establish lock identities; CondVar
/// declarations establish condition-variable identities for the wait rules.
const std::set<std::string> kMutexTypeNames = {"Mutex", "SharedMutex"};

/// Blocking leaves: reached while holding any lock, these are
/// PPROX-LOCK-BLOCKING. Mirrors the --hotpath blocking table minus
/// lock/lock_shared (modeled as acquisitions here, not blockers) plus
/// "submit" (bounded pool queues block when full).
const std::set<std::string> kBlockingCallNames = {
    "wait", "wait_for", "wait_until", "join", "sleep_for", "sleep_until",
    "sleep", "usleep", "nanosleep", "recv", "send", "sendto", "recvfrom",
    "poll", "ppoll", "select", "pselect", "epoll_wait", "epoll_pwait",
    "accept", "accept4", "connect", "fsync", "fdatasync", "flock",
    "getline", "submit",
};

/// Blocking only when written globally qualified (`::read`).
const std::set<std::string> kBlockGlobalOnlyNames = {
    "read", "write", "open", "pread", "pwrite", "readv", "writev",
};

/// Manual mutex operations on a receiver (guard variable or declared mutex).
const std::set<std::string> kManualOpNames = {"lock", "unlock", "lock_shared",
                                              "unlock_shared"};

/// Builtin calls that terminate a chain without lock relevance: never
/// resolved to scanned functions (same rationale as --hotpath: a push_back
/// is the STL member it almost certainly is, and resolving it by last
/// component manufactures ghost edges).
const std::set<std::string> kTerminalCallNames = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "posix_memalign", "make_unique", "make_shared", "to_string",
    "push_back", "emplace_back", "emplace_front", "emplace", "insert",
    "resize", "reserve", "append", "assign", "substr", "stoi", "stol",
    "stoul", "stoull", "stod",
};

/// Receiver-dot accessors that are never scanned functions (shared
/// rationale with --hotpath, DESIGN.md §11.2).
const std::set<std::string> kNeutralMemberNames = {
    "load",  "store", "exchange", "fetch_add", "fetch_sub",
    "compare_exchange_weak", "compare_exchange_strong", "clear", "empty",
    "get",   "size",  "length",   "begin",     "end",
    "data",  "c_str", "front",    "back",      "top",
    "count", "contains", "erase",
};

const std::set<std::string> kNotACall = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "else", "do", "case", "goto", "new", "delete", "throw", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "decltype", "typeid",
    "co_await", "co_return", "co_yield", "noexcept", "alignas",
    "static_assert", "defined", "assert", "PPROX_HOT", "PPROX_NONBLOCKING",
    "PPROX_ECALL_BOUNDARY",
};

/// common/sync.hpp (and the det-routed twin) implement the primitives: the
/// raw .lock()/.unlock() inside them is the one legitimate site, and their
/// bodies would otherwise self-flag every rule. Their functions stay in the
/// graph (so calls resolve) but contribute no events.
bool is_sync_impl_file(const std::string& path) {
  const std::string name = fs::path(path).filename().string();
  return name == "sync.hpp" || name == "sync.cpp";
}

// ---------------------------------------------------------------------------
// Events recorded while replaying a body span.
// ---------------------------------------------------------------------------

/// Lock acquisition (guard construction, manual .lock(), or the hidden
/// re-acquisition when CondVar::wait returns).
struct AcquireEv {
  std::string lock;
  std::size_t line = 0;
  std::vector<std::string> held_before;
  bool wait_reacquire = false;  ///< order edges only, not in acquires()
  std::string file;
};

/// Blocking leaf with the locks held at the site (for CondVar::wait the
/// released lock is already subtracted — the exemption).
struct BlockEv {
  std::string token;
  std::size_t line = 0;
  std::vector<std::string> held;
  std::string file;
};

/// Direct Enclave::ecall call site.
struct EcallEv {
  std::size_t line = 0;
  std::vector<std::string> held;
  std::string file;
};

/// Unresolved call site with the locks held at it.
struct CallEv {
  std::string name;
  bool member = false;
  bool global = false;
  std::size_t line = 0;
  std::vector<std::string> held;
  unsigned mask = kAllAspects;
  std::string file;
};

/// Resolved call edge.
struct Edge {
  int callee = -1;
  std::vector<std::string> held;
  unsigned mask = kAllAspects;
  std::size_t line = 0;
  std::string file;
};

/// One propagated fact with its shortest witness chain.
struct Witness {
  std::string chain;  ///< "f -> g -> leaf-fn"
  std::string file;
  std::size_t line = 0;
  std::string token;
};

struct Summary {
  bool blocks = false;
  Witness block_w;
  bool ecalls = false;
  Witness ecall_w;
  std::map<std::string, Witness> acquires;  ///< lock -> witness
};

struct FnData {
  std::vector<AcquireEv> acquires;
  std::vector<BlockEv> blocks;
  std::vector<EcallEv> ecalls;
  std::vector<CallEv> calls;
  std::vector<Edge> edges;
  Summary sum;
};

struct Pass {
  cg::Graph g;
  std::vector<FnData> data;
  std::vector<Finding> direct_findings;  ///< manual + nopred, minted in walk
  std::vector<Finding> bare_findings;
  std::map<std::string, std::map<std::size_t, unsigned>> line_suppressions;
  std::set<std::string> mutex_names;  ///< declared mutex variable names
  std::set<std::string> cv_names;     ///< declared CondVar variable names
};

unsigned line_mask(const Pass& p, const std::string& file, std::size_t line) {
  const auto fit = p.line_suppressions.find(file);
  if (fit == p.line_suppressions.end()) return kAllAspects;
  const auto lit = fit->second.find(line);
  if (lit == fit->second.end()) return kAllAspects;
  return kAllAspects & ~lit->second;
}

// ---------------------------------------------------------------------------
// Declared-name scan: which identifiers are mutexes / condition variables.
// ---------------------------------------------------------------------------

void scan_declared_names(Pass& p) {
  for (const cg::Tu& tu : p.g.tus) {
    if (is_sync_impl_file(tu.path)) continue;
    const auto& toks = tu.toks;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      const bool is_mutex = kMutexTypeNames.count(t) != 0;
      const bool is_cv = t == "CondVar";
      if (!is_mutex && !is_cv) continue;
      std::size_t k = i + 1;
      while (k < toks.size() &&
             (toks[k].text == "&" || toks[k].text == "*")) {
        ++k;
      }
      if (k + 1 >= toks.size() || !cg::is_ident_tok(toks[k].text)) continue;
      const std::string& nxt = toks[k + 1].text;
      if (nxt == ";" || nxt == "=" || nxt == "{" || nxt == "," ||
          nxt == ")") {
        (is_mutex ? p.mutex_names : p.cv_names).insert(toks[k].text);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Body replay: held-lock tracking and event extraction.
// ---------------------------------------------------------------------------

/// Lock identity from the tokens of a guard-constructor argument: "::" runs
/// merge into one component, components join with "."; `this`, `*`, `&`
/// are skipped; a single unqualified component is qualified by the
/// declaring scope (local mutex -> function, member mutex -> class).
std::string lock_id_from_parts(const cg::Fn& fn,
                               const std::set<std::string>& local_mutexes,
                               const std::vector<std::string>& parts) {
  if (parts.empty()) return "";
  if (parts.size() == 1 && parts[0].find("::") == std::string::npos) {
    const std::string& n = parts[0];
    if (local_mutexes.count(n) != 0) return fn.qname + "::" + n;
    if (!fn.cls.empty()) return fn.cls + "::" + n;
    return n;
  }
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += ".";
    out += parts[i];
  }
  return out;
}

void erase_last(std::vector<std::string>& held, const std::string& lock) {
  for (std::size_t i = held.size(); i-- > 0;) {
    if (held[i] == lock) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

/// Replays one body span. Mirrors the hotpath replay loop: absolute indices
/// into the TU token stream, forward qualified-path building, member/global
/// detection via the preceding token — plus a block-structured guard
/// registry so the held set shrinks when guards go out of scope.
void replay_span(Pass& p, int fi, const cg::Span& sp) {
  const cg::Fn& fn = p.g.fns[static_cast<std::size_t>(fi)];
  FnData& d = p.data[static_cast<std::size_t>(fi)];
  const std::vector<cg::Tok>& toks =
      p.g.tus[static_cast<std::size_t>(sp.tu)].toks;
  const std::string& file = p.g.tus[static_cast<std::size_t>(sp.tu)].path;
  const std::string kEnd;
  auto text = [&](std::size_t at) -> const std::string& {
    return at < toks.size() ? toks[at].text : kEnd;
  };

  struct GuardInfo {
    std::string lock;
    bool engaged = false;
  };
  struct Frame {
    std::vector<std::string> release_at_end;   ///< guard vars scoped here
    std::vector<std::string> reengage_at_end;  ///< ScopedUnlock'd guards
  };
  std::map<std::string, GuardInfo> guards;
  std::vector<Frame> frames(1);
  std::vector<std::string> held;
  std::set<std::string> local_mutexes, local_cvs;
  int tmp_counter = 0;

  // Backward receiver path for a member call at `at` (toks[at-1] is
  // "."/"->"): {"server_", "mu_"} for server_->mu_.lock(). Empty when the
  // receiver is an expression the token walk cannot name.
  auto receiver_path = [&](std::size_t at) {
    std::vector<std::string> comps;
    std::size_t k = at;
    while (k >= 2 &&
           (toks[k - 1].text == "." || toks[k - 1].text == "->")) {
      if (!cg::is_ident_tok(toks[k - 2].text)) {
        comps.clear();
        break;
      }
      comps.insert(comps.begin(), toks[k - 2].text);
      k -= 2;
    }
    if (!comps.empty() && comps.front() == "this") {
      comps.erase(comps.begin());
    }
    return comps;
  };

  // Collects one constructor/call argument starting at `at` (just past the
  // opener) into "::"-merged components; stops at the top-level "," or the
  // closing token.
  auto arg_parts = [&](std::size_t at) {
    std::vector<std::string> parts;
    bool glue = false;  // previous token was "::"
    for (std::size_t k = at; k < toks.size() && k < at + 64; ++k) {
      const std::string& a = toks[k].text;
      if (a == "(" || a == "{" || a == "[") break;  // nested expr: stop
      if (a == ")" || a == "}" || a == "]") break;
      if (a == "," || a == ";") break;
      if (a == "this" || a == "*" || a == "&") continue;
      if (a == "::") {
        glue = !parts.empty();
        continue;
      }
      if (a == "." || a == "->") {
        glue = false;
        continue;
      }
      if (cg::is_ident_tok(a)) {
        if (glue) {
          parts.back() += "::" + a;
          glue = false;
        } else {
          parts.push_back(a);
        }
      }
    }
    return parts;
  };

  auto record_acquire = [&](const std::string& lock, std::size_t line,
                            bool wait_reacquire) {
    d.acquires.push_back({lock, line, held, wait_reacquire, file});
  };

  std::size_t i = sp.begin;
  while (i < sp.end) {
    const std::string& t = toks[i].text;
    const std::size_t line = toks[i].line;
    if (t == "{") {
      frames.emplace_back();
      ++i;
      continue;
    }
    if (t == "}") {
      // ScopedUnlock destructors re-lock before guards declared in the
      // same frame release (the common shape nests ScopedUnlock in its own
      // block, so the order rarely matters in practice).
      Frame& fr = frames.back();
      for (const std::string& var : fr.reengage_at_end) {
        auto it = guards.find(var);
        if (it != guards.end() && !it->second.engaged) {
          it->second.engaged = true;
          held.push_back(it->second.lock);
        }
      }
      for (const std::string& var : fr.release_at_end) {
        auto it = guards.find(var);
        if (it != guards.end()) {
          if (it->second.engaged) erase_last(held, it->second.lock);
          guards.erase(it);
        }
      }
      if (frames.size() > 1) frames.pop_back();
      ++i;
      continue;
    }
    if (!cg::is_ident_tok(t) || kNotACall.count(t) != 0) {
      ++i;
      continue;
    }

    // Forward qualified path.
    std::string name = t;
    std::size_t j = i + 1;
    while (j + 1 < toks.size() && toks[j].text == "::" &&
           cg::is_ident_tok(toks[j + 1].text)) {
      name += "::" + toks[j + 1].text;
      j += 2;
    }
    const std::string last = cg::last_component(name);

    // Local mutex / condvar declaration: `Mutex m;`, `CondVar& cv = ...;`.
    if (kMutexTypeNames.count(last) != 0 || last == "CondVar") {
      std::size_t k = j;
      while (k < toks.size() &&
             (toks[k].text == "&" || toks[k].text == "*")) {
        ++k;
      }
      if (k + 1 < toks.size() && cg::is_ident_tok(toks[k].text)) {
        const std::string& nxt = toks[k + 1].text;
        if (nxt == ";" || nxt == "=" || nxt == "{" || nxt == ",") {
          (last == "CondVar" ? local_cvs : local_mutexes)
              .insert(toks[k].text);
        }
      }
      i = j;
      continue;
    }

    // ScopedUnlock var(guard): drop the guard's lock until scope end.
    if (last == "ScopedUnlock") {
      std::size_t k = j;
      if (k < toks.size() && cg::is_ident_tok(toks[k].text)) ++k;
      if (k + 1 < toks.size() &&
          (toks[k].text == "(" || toks[k].text == "{") &&
          cg::is_ident_tok(toks[k + 1].text)) {
        auto it = guards.find(toks[k + 1].text);
        if (it != guards.end() && it->second.engaged) {
          it->second.engaged = false;
          erase_last(held, it->second.lock);
          frames.back().reengage_at_end.push_back(toks[k + 1].text);
        }
      }
      i = j;
      continue;
    }

    // Guard construction: LockGuard g(mu); UniqueLock l{mu}; also the
    // unnamed temporary (block-scoped, conservative).
    if (kGuardTypeNames.count(last) != 0) {
      std::size_t k = j;
      std::string var;
      if (k < toks.size() && cg::is_ident_tok(toks[k].text)) {
        var = toks[k].text;
        ++k;
      }
      if (k < toks.size() && (toks[k].text == "(" || toks[k].text == "{")) {
        const std::string lock =
            lock_id_from_parts(fn, local_mutexes, arg_parts(k + 1));
        if (!lock.empty()) {
          if (var.empty()) var = "<tmp" + std::to_string(tmp_counter++) + ">";
          record_acquire(lock, line, /*wait_reacquire=*/false);
          guards[var] = {lock, true};
          frames.back().release_at_end.push_back(var);
          held.push_back(lock);
        }
      }
      i = j;
      continue;
    }

    const bool call = j < toks.size() && toks[j].text == "(";
    if (!call) {
      i = j;
      continue;
    }
    const bool member =
        i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
    const bool global = i > 0 && toks[i - 1].text == "::" &&
                        (i < 2 || !cg::is_ident_tok(toks[i - 2].text));
    const unsigned mask = line_mask(p, file, line);

    // CondVar::wait / wait_for / wait_until on a known condition variable.
    if (member &&
        (last == "wait" || last == "wait_for" || last == "wait_until")) {
      const std::vector<std::string> recv = receiver_path(i);
      const bool is_cv =
          !recv.empty() && (p.cv_names.count(recv.back()) != 0 ||
                            local_cvs.count(recv.back()) != 0);
      if (is_cv) {
        std::string cv_id;
        for (std::size_t ci = 0; ci < recv.size(); ++ci) {
          if (ci != 0) cv_id += ".";
          cv_id += recv[ci];
        }
        // Count top-level arguments.
        int depth = 1;
        std::size_t args = text(j + 1) == ")" ? 0 : 1;
        for (std::size_t k = j + 1; k < toks.size() && depth > 0; ++k) {
          const std::string& a = toks[k].text;
          if (a == "(" || a == "{" || a == "[") {
            ++depth;
          } else if (a == ")" || a == "}" || a == "]") {
            --depth;
          } else if (a == "," && depth == 1) {
            ++args;
          }
        }
        const std::size_t want = last == "wait" ? 2 : 3;
        if (args < want && (mask & kNopred) != 0) {
          Finding f;
          f.rule = "wait-nopred";
          f.key = "wait-nopred|" + fn.qname + "|" + cv_id;
          f.path = file;
          f.line = line;
          f.chain = fn.qname;
          f.message = "PPROX-WAIT-NOPRED: " + cv_id + "." + last +
                      " in " + fn.qname +
                      " has no predicate; spurious wakeups will run the "
                      "continuation with the invariant unchecked — pass the "
                      "condition as the predicate argument, suppress with "
                      "// PPROX-LOCKS-" "OK(nopred): <why>, or ratchet it "
                      "in the --baseline file";
          p.direct_findings.push_back(std::move(f));
        }
        // The wait releases the guard passed as the first argument: that
        // lock is exempt; every *other* held lock sits across the wait.
        std::vector<std::string> residual = held;
        std::string released;
        if (cg::is_ident_tok(text(j + 1))) {
          auto it = guards.find(text(j + 1));
          if (it != guards.end() && it->second.engaged) {
            released = it->second.lock;
            erase_last(residual, released);
          }
        }
        if ((mask & kBlocking) != 0) {
          d.blocks.push_back({last, line, residual, file});
        }
        if (!released.empty()) {
          // Hidden re-acquisition when the wait returns: an order edge
          // residual -> released, but not an acquire the function exports.
          d.acquires.push_back(
              {released, line, residual, /*wait_reacquire=*/true, file});
        }
        i = j;
        continue;
      }
      // Non-CondVar wait (future.wait(), latch.wait()): plain blocker.
      if ((mask & kBlocking) != 0) {
        d.blocks.push_back({last, line, held, file});
      }
      i = j;
      continue;
    }

    // Manual mutex operation: guard-var juggling or a bare mutex call.
    if (member && kManualOpNames.count(last) != 0) {
      const std::vector<std::string> recv = receiver_path(i);
      std::string lock;
      bool via_guard = false;
      if (recv.size() == 1) {
        auto git = guards.find(recv[0]);
        if (git != guards.end()) {
          lock = git->second.lock;
          via_guard = true;
        } else if (local_mutexes.count(recv[0]) != 0 ||
                   p.mutex_names.count(recv[0]) != 0) {
          lock = lock_id_from_parts(fn, local_mutexes, recv);
        }
      } else if (!recv.empty() && p.mutex_names.count(recv.back()) != 0) {
        lock = lock_id_from_parts(fn, local_mutexes, recv);
      }
      if (!lock.empty()) {
        const bool is_lock = last == "lock" || last == "lock_shared";
        std::string recv_txt;
        for (std::size_t ci = 0; ci < recv.size(); ++ci) {
          if (ci != 0) recv_txt += ".";
          recv_txt += recv[ci];
        }
        if ((mask & kManual) != 0) {
          Finding f;
          f.rule = "lock-manual";
          f.key = "lock-manual|" + fn.qname + "|" + recv_txt + "." + last;
          f.path = file;
          f.line = line;
          f.chain = fn.qname;
          f.message = "PPROX-LOCK-MANUAL: bare " + recv_txt + "." + last +
                      "() in " + fn.qname +
                      " — manual lock flow is invisible to RAII reasoning "
                      "and to this analyzer's held-set tracking; use "
                      "LockGuard/UniqueLock (or ScopedUnlock to release "
                      "across a call), suppress with // PPROX-LOCKS-"
                      "OK(manual): <why>, or ratchet it in the --baseline "
                      "file";
          p.direct_findings.push_back(std::move(f));
        }
        // Track the held set through the manual op regardless of whether
        // the finding was suppressed.
        if (is_lock) {
          record_acquire(lock, line, /*wait_reacquire=*/false);
          held.push_back(lock);
          if (via_guard) guards[recv[0]].engaged = true;
        } else {
          erase_last(held, lock);
          if (via_guard) guards[recv[0]].engaged = false;
        }
      }
      // weak_ptr.lock() etc.: no lock identity, no event.
      i = j;
      continue;
    }

    // Enclave::ecall — the boundary crossing itself. The callable executes
    // inside the enclave; holding any lock across it pins the lock for the
    // whole transition (and a pre-empted enclave thread cannot release it).
    if (last == "ecall") {
      if ((mask & kEcall) != 0) d.ecalls.push_back({line, held, file});
      i = j;
      continue;
    }

    // Blocking builtin leaves.
    if (kBlockingCallNames.count(last) != 0 ||
        (global && kBlockGlobalOnlyNames.count(last) != 0)) {
      if ((mask & kBlocking) != 0) {
        d.blocks.push_back({global ? "::" + last : last, line, held, file});
      }
      i = j;
      continue;
    }

    // Neutral accessors and alloc-family builtins terminate without events.
    if (member && kNeutralMemberNames.count(last) != 0) {
      i = j;
      continue;
    }
    if (kTerminalCallNames.count(last) != 0) {
      i = j;
      continue;
    }

    d.calls.push_back({name, member, global, line, held, mask, file});
    i = j;
    continue;
  }
}

void extract_events(Pass& p) {
  p.data.assign(p.g.fns.size(), FnData{});
  for (std::size_t fi = 0; fi < p.g.fns.size(); ++fi) {
    for (const cg::Span& sp : p.g.fns[fi].bodies) {
      if (is_sync_impl_file(p.g.tus[static_cast<std::size_t>(sp.tu)].path)) {
        continue;
      }
      replay_span(p, static_cast<int>(fi), sp);
    }
  }
}

void resolve_calls(Pass& p) {
  const auto by_last = cg::index_by_last(p.g);
  for (std::size_t i = 0; i < p.g.fns.size(); ++i) {
    FnData& d = p.data[i];
    for (const CallEv& c : d.calls) {
      for (int t : cg::resolve_name(p.g, by_last, p.g.fns[i], c.name)) {
        d.edges.push_back({t, c.held, c.mask, c.line, c.file});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Summary fixpoint: blocks / ecalls / acquires with witness chains.
// ---------------------------------------------------------------------------

void init_summaries(Pass& p) {
  for (std::size_t i = 0; i < p.g.fns.size(); ++i) {
    const cg::Fn& fn = p.g.fns[i];
    Summary& s = p.data[i].sum;
    for (const BlockEv& b : p.data[i].blocks) {
      if (!s.blocks) {
        s.blocks = true;
        s.block_w = {fn.qname, b.file, b.line, b.token};
      }
    }
    if ((fn.annotations & cg::kAnnEcall) != 0) {
      s.ecalls = true;
      s.ecall_w = {fn.qname, fn.file, fn.line, "PPROX_ECALL_BOUNDARY"};
    }
    for (const EcallEv& e : p.data[i].ecalls) {
      if (!s.ecalls) {
        s.ecalls = true;
        s.ecall_w = {fn.qname, e.file, e.line, "ecall"};
      }
    }
    for (const AcquireEv& a : p.data[i].acquires) {
      if (a.wait_reacquire) continue;
      if (s.acquires.count(a.lock) == 0) {
        s.acquires[a.lock] = {fn.qname, a.file, a.line, a.lock};
      }
    }
  }
}

void propagate_summaries(Pass& p) {
  bool changed = true;
  std::size_t guard = 0;
  while (changed && guard++ < p.g.fns.size() + 8) {
    changed = false;
    for (std::size_t i = 0; i < p.g.fns.size(); ++i) {
      const cg::Fn& fn = p.g.fns[i];
      Summary& s = p.data[i].sum;
      for (const Edge& e : p.data[i].edges) {
        const Summary& cs = p.data[static_cast<std::size_t>(e.callee)].sum;
        if ((e.mask & kBlocking) != 0 && cs.blocks && !s.blocks) {
          s.blocks = true;
          s.block_w = cs.block_w;
          s.block_w.chain = fn.qname + " -> " + cs.block_w.chain;
          changed = true;
        }
        if ((e.mask & kEcall) != 0 && cs.ecalls && !s.ecalls) {
          s.ecalls = true;
          s.ecall_w = cs.ecall_w;
          s.ecall_w.chain = fn.qname + " -> " + cs.ecall_w.chain;
          changed = true;
        }
        if ((e.mask & kOrder) != 0) {
          for (const auto& [lock, w] : cs.acquires) {
            if (s.acquires.count(lock) != 0) continue;
            Witness nw = w;
            nw.chain = fn.qname + " -> " + w.chain;
            s.acquires[lock] = std::move(nw);
            changed = true;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Findings: blocking-while-locked and ecall-while-locked.
// ---------------------------------------------------------------------------

void collect_held_findings(const Pass& p, std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < p.g.fns.size(); ++i) {
    const cg::Fn& fn = p.g.fns[i];
    const FnData& d = p.data[i];
    auto emit = [&](const char* rule, const char* label,
                    const std::string& hold, const Witness& w,
                    const std::string& advice) {
      Finding f;
      f.rule = rule;
      f.key = std::string(rule) + "|" + hold + "|" + fn.qname + "|" + w.token;
      f.path = w.file.empty() ? fn.file : w.file;
      f.line = w.line != 0 ? w.line : fn.line;
      f.chain = w.chain;
      f.message = std::string(label) + ": lock '" + hold +
                  "' is held across '" + w.token + "': " + w.chain + "; " +
                  advice + ", or ratchet it in the --baseline file";
      findings.push_back(std::move(f));
    };
    const std::string block_advice =
        "release it first (ScopedUnlock in common/sync.hpp releases across "
        "a call and re-locks on scope exit) or suppress the line with "
        "// PPROX-LOCKS-" "OK(blocking): <why>";
    const std::string ecall_advice =
        "no lock may be held across the enclave boundary (the enclave "
        "thread cannot be trusted to release it); release before the ecall "
        "or suppress with // PPROX-LOCKS-" "OK(ecall): <why>";
    for (const BlockEv& b : d.blocks) {
      for (const std::string& hold : b.held) {
        emit("lock-blocking", "PPROX-LOCK-BLOCKING", hold,
             {fn.qname, b.file, b.line, b.token}, block_advice);
      }
    }
    for (const EcallEv& e : d.ecalls) {
      for (const std::string& hold : e.held) {
        emit("lock-ecall", "PPROX-LOCK-ECALL", hold,
             {fn.qname, e.file, e.line, "ecall"}, ecall_advice);
      }
    }
    for (const Edge& e : d.edges) {
      if (e.held.empty()) continue;
      const Summary& cs = p.data[static_cast<std::size_t>(e.callee)].sum;
      if ((e.mask & kBlocking) != 0 && cs.blocks) {
        Witness w = cs.block_w;
        w.chain = fn.qname + " -> " + cs.block_w.chain;
        for (const std::string& hold : e.held) {
          emit("lock-blocking", "PPROX-LOCK-BLOCKING", hold, w,
               block_advice);
        }
      }
      if ((e.mask & kEcall) != 0 && cs.ecalls) {
        Witness w = cs.ecall_w;
        w.chain = fn.qname + " -> " + cs.ecall_w.chain;
        for (const std::string& hold : e.held) {
          emit("lock-ecall", "PPROX-LOCK-ECALL", hold, w, ecall_advice);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lock-order graph and cycle findings.
// ---------------------------------------------------------------------------

struct OrderEdge {
  std::string chain;
  std::string file;
  std::size_t line = 0;
};

void collect_order_findings(const Pass& p, std::vector<Finding>& findings) {
  // Edge (H, L): L acquired while H held. First witness per pair wins.
  std::map<std::string, std::map<std::string, OrderEdge>> graph;
  auto add_edge = [&](const std::string& h, const std::string& l,
                      OrderEdge e) {
    if (h == l) return;  // per-instance collapse: self-edges are noise
    auto& row = graph[h];
    if (row.count(l) == 0) row.emplace(l, std::move(e));
    graph.emplace(l, std::map<std::string, OrderEdge>{});  // ensure node
  };
  for (std::size_t i = 0; i < p.g.fns.size(); ++i) {
    const cg::Fn& fn = p.g.fns[i];
    const FnData& d = p.data[i];
    for (const AcquireEv& a : d.acquires) {
      if ((line_mask(p, a.file, a.line) & kOrder) == 0) continue;
      for (const std::string& h : a.held_before) {
        add_edge(h, a.lock, {fn.qname, a.file, a.line});
      }
    }
    for (const Edge& e : d.edges) {
      if (e.held.empty() || (e.mask & kOrder) == 0) continue;
      const Summary& cs = p.data[static_cast<std::size_t>(e.callee)].sum;
      for (const auto& [lock, w] : cs.acquires) {
        for (const std::string& h : e.held) {
          add_edge(h, lock, {fn.qname + " -> " + w.chain, w.file, w.line});
        }
      }
    }
  }

  // Tarjan over the lock nodes.
  std::vector<std::string> names;
  std::map<std::string, int> id;
  for (const auto& [nm, row] : graph) {
    (void)row;
    id[nm] = static_cast<int>(names.size());
    names.push_back(nm);
  }
  const std::size_t n = names.size();
  std::vector<std::vector<int>> succ(n);
  for (const auto& [from, row] : graph) {
    for (const auto& [to, e] : row) {
      (void)e;
      succ[static_cast<std::size_t>(id[from])].push_back(id[to]);
    }
  }
  std::vector<int> indices(n, -1), low(n, 0), comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int counter = 0, ncomp = 0;
  struct Frame {
    int v;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (indices[root] != -1) continue;
    std::vector<Frame> work;
    work.push_back({static_cast<int>(root)});
    indices[root] = low[root] = counter++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = true;
    while (!work.empty()) {
      Frame& fr = work.back();
      auto& edges = succ[static_cast<std::size_t>(fr.v)];
      if (fr.edge < edges.size()) {
        const int w = edges[fr.edge++];
        if (indices[static_cast<std::size_t>(w)] == -1) {
          indices[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = counter++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          work.push_back({w});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(fr.v)] =
              std::min(low[static_cast<std::size_t>(fr.v)],
                       indices[static_cast<std::size_t>(w)]);
        }
      } else {
        const int v = fr.v;
        work.pop_back();
        if (!work.empty()) {
          const int parent = work.back().v;
          low[static_cast<std::size_t>(parent)] =
              std::min(low[static_cast<std::size_t>(parent)],
                       low[static_cast<std::size_t>(v)]);
        }
        if (low[static_cast<std::size_t>(v)] ==
            indices[static_cast<std::size_t>(v)]) {
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            comp[static_cast<std::size_t>(w)] = ncomp;
            if (w == v) break;
          }
          ++ncomp;
        }
      }
    }
  }

  // One finding per nontrivial SCC: shortest cycle through the
  // lexicographically smallest lock, so the key is deterministic.
  std::map<int, std::vector<int>> members;
  for (std::size_t v = 0; v < n; ++v) {
    members[comp[v]].push_back(static_cast<int>(v));
  }
  for (auto& [c, vs] : members) {
    (void)c;
    if (vs.size() < 2) continue;
    int start = vs[0];
    for (int v : vs) {
      if (names[static_cast<std::size_t>(v)] <
          names[static_cast<std::size_t>(start)]) {
        start = v;
      }
    }
    // BFS from start within the SCC, looking for the shortest path back.
    std::vector<int> parent(n, -2);
    std::queue<int> q;
    q.push(start);
    parent[static_cast<std::size_t>(start)] = -1;
    std::vector<int> cycle;
    while (!q.empty() && cycle.empty()) {
      const int v = q.front();
      q.pop();
      for (int w : succ[static_cast<std::size_t>(v)]) {
        if (comp[static_cast<std::size_t>(w)] !=
            comp[static_cast<std::size_t>(start)]) {
          continue;
        }
        if (w == start) {
          for (int u = v; u != -1;
               u = parent[static_cast<std::size_t>(u)]) {
            cycle.push_back(u);
          }
          std::reverse(cycle.begin(), cycle.end());
          cycle.push_back(start);  // close the loop
          break;
        }
        if (parent[static_cast<std::size_t>(w)] == -2) {
          parent[static_cast<std::size_t>(w)] = v;
          q.push(w);
        }
      }
    }
    if (cycle.empty()) continue;  // unreachable for a nontrivial SCC

    std::string path_txt;
    for (std::size_t ci = 0; ci < cycle.size(); ++ci) {
      if (ci != 0) path_txt += "->";
      path_txt += names[static_cast<std::size_t>(cycle[ci])];
    }
    std::string msg = "PPROX-LOCK-ORDER: lock-order cycle " + path_txt;
    const OrderEdge* first = nullptr;
    for (std::size_t ci = 0; ci + 1 < cycle.size(); ++ci) {
      const std::string& a = names[static_cast<std::size_t>(cycle[ci])];
      const std::string& b = names[static_cast<std::size_t>(cycle[ci + 1])];
      const OrderEdge& e = graph[a].at(b);
      if (first == nullptr) first = &e;
      msg += "; '" + b + "' acquired with '" + a + "' held via " + e.chain +
             " (" + fs::path(e.file).filename().string() + ":" +
             std::to_string(e.line) + ")";
    }
    msg += "; impose one global acquisition order, suppress an acquire "
           "line with // PPROX-LOCKS-" "OK(order): <why>, or ratchet it in "
           "the --baseline file";
    Finding f;
    f.rule = "lock-order";
    f.key = "lock-order|" + path_txt;
    f.path = first->file;
    f.line = first->line;
    f.chain = first->chain;
    f.message = std::move(msg);
    findings.push_back(std::move(f));
  }
}

}  // namespace

int run(const Options& opts) {
  Pass p;
  std::size_t files = 0;
  // The marker is split so this tool's own sources never self-match.
  const std::string marker = std::string("PPROX-LOCKS-") + "OK(";
  for (const fs::path& path : opts.inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "pprox_lint: cannot read " << path << "\n";
      return 2;
    }
    std::vector<std::string> raw;
    std::string line;
    while (std::getline(in, line)) raw.push_back(line);
    ++files;

    const auto supp = cg::scan_suppressions(raw, marker, &aspect_from_name);
    for (const auto& [ln, s] : supp) {
      if (!s.bare) continue;
      Finding f;
      f.rule = "locks-bare-suppression";
      f.key = std::string("locks-bare-suppression|") +
              path.filename().string() + "|" + std::to_string(ln);
      f.path = path.string();
      f.line = ln;
      f.chain = "";
      f.message =
          "lock-discipline suppression without a justification; write "
          "PPROX-LOCKS-" "OK(<aspect>): <why> (the bare form suppresses "
          "nothing)";
      p.bare_findings.push_back(std::move(f));
    }
    for (const auto& [ln, s] : supp) {
      if (!s.bare) p.line_suppressions[path.string()][ln] |= s.effects;
    }
    p.g.add_tu(path.string(), cg::tokenize(cg::code_lines(raw)));
  }

  p.g.merge_decl_annotations();
  scan_declared_names(p);
  extract_events(p);
  resolve_calls(p);
  init_summaries(p);
  propagate_summaries(p);

  std::vector<Finding> findings = std::move(p.bare_findings);
  for (Finding& f : p.direct_findings) findings.push_back(std::move(f));
  collect_held_findings(p, findings);
  collect_order_findings(p, findings);

  // Transitive emission can mint the same key through several chains.
  std::set<std::string> seen;
  std::vector<Finding> unique;
  for (Finding& f : findings) {
    if (seen.insert(f.key).second) unique.push_back(std::move(f));
  }
  findings = std::move(unique);

  cg::ReportSpec spec;
  spec.mode = "locks";
  spec.anchor = "locks";
  spec.what = "lock-discipline";
  spec.bare_rule = "locks-bare-suppression";
  spec.default_why =
      "baselined pre-existing violation; shrink, do not grow (DESIGN.md "
      "§12.5)";
  spec.json = opts.json;
  spec.baseline = opts.baseline;
  spec.baseline_write = opts.baseline_write;
  return cg::report(spec, findings, files);
}

}  // namespace locks
