// Shared token-level C++ call-graph front end for the pprox_lint
// whole-program passes (--hotpath, --locks). There is no libclang in the
// container, so this is the same comment/string-stripping + scope-stack
// machinery the flow linter uses, grown function-grained: it records, for
// every function definition across all TUs, the qualified name, the
// PPROX_HOT / PPROX_NONBLOCKING / PPROX_ECALL_BOUNDARY annotations, and the
// *body token spans* (index ranges into the TU token stream). Passes replay
// the spans with their own leaf vocabularies — the parser itself knows
// nothing about allocation, blocking, or locks, which is what lets both
// passes share one graph without one pass's tables leaking into the other.
//
// Overloads and #ifdef-twin definitions merge into one node whose spans
// accumulate; effects computed by a pass are therefore unioned across all
// definitions — conservative in the right direction (DESIGN.md §11.2).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace cg {

/// Annotation bits shared by every call-graph pass (common/hotpath.hpp).
enum Annotation : unsigned {
  kAnnHot = 1u << 0,
  kAnnNonblocking = 1u << 1,
  kAnnEcall = 1u << 2,
};

struct Tok {
  std::string text;
  std::size_t line = 0;  ///< 1-based
};

bool is_ident_char(char c);
bool is_ident_tok(const std::string& t);

/// Strips comments, string/char literals, and preprocessor lines while
/// preserving line structure (so `#define PPROX_HOT ...` is not parsed as
/// code and token line numbers stay real).
std::vector<std::string> code_lines(const std::vector<std::string>& raw);

std::vector<Tok> tokenize(const std::vector<std::string>& code);

/// "a::b::c" -> "c"; names without "::" pass through.
std::string last_component(const std::string& qname);

std::string json_escape(const std::string& s);

/// One contiguous function-body token range: [begin, end) into
/// Graph::tus[tu].toks, where toks[end] is the body's closing '}'.
struct Span {
  int tu = -1;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// One merged function node.
struct Fn {
  std::string qname;
  std::string cls;  ///< qualified name minus the last component
  std::string file;  ///< first definition site
  std::size_t line = 0;
  unsigned annotations = 0;
  std::vector<Span> bodies;
};

struct Tu {
  std::string path;
  std::vector<Tok> toks;
};

struct Graph {
  std::vector<Tu> tus;
  std::vector<Fn> fns;
  std::map<std::string, int> index;                  // qname -> fns index
  std::map<std::string, unsigned> decl_annotations;  // from declarations

  Fn& get_or_create(const std::string& qname);

  /// Parses one TU's tokens into the graph; keeps the tokens alive in
  /// `tus` so passes can replay body spans.
  void add_tu(std::string path, std::vector<Tok> toks);

  /// Merges annotations recorded on declarations into their definitions.
  /// Call once, after every add_tu.
  void merge_decl_annotations();
};

// --- suppression comments --------------------------------------------------

/// Parsed `// <MARKER>(aspect[,aspect]): reason` suppression on one line.
struct Suppression {
  unsigned effects = 0;
  bool bare = false;  ///< reason missing — rejected, suppresses nothing
};

/// Scans raw source lines for `marker` (e.g. "PPROX-HOTPATH-OK(") and parses
/// the aspect list via `from_name`. The mandatory ": <why>" contract is
/// shared: a bare suppression gets effects=0 and bare=true.
std::map<std::size_t, Suppression> scan_suppressions(
    const std::vector<std::string>& raw, const std::string& marker,
    unsigned (*from_name)(const std::string&));

// --- call-name resolution --------------------------------------------------

/// Index of scanned functions by last name component, for unqualified and
/// virtual-call fallback resolution.
std::map<std::string, std::vector<int>> index_by_last(const Graph& g);

/// Resolves a written call name to scanned-function indices using the
/// documented policy (DESIGN.md §11.2 steps 3–4): qualified names match
/// exactly or by trailing "::"-aligned suffix; unqualified/member calls
/// prefer the caller's own class, else fall back to every scanned function
/// with that last component (the virtual-call over-approximation). Builtin
/// leaf tables and neutral-member skips are the caller's business and must
/// be applied *before* this.
std::vector<int> resolve_name(
    const Graph& g, const std::map<std::string, std::vector<int>>& by_last,
    const Fn& caller, const std::string& name);

// --- findings and keyed baselines ------------------------------------------

struct Finding {
  std::string rule;
  std::string key;  ///< line-free ratchet key
  std::string path;
  std::size_t line = 0;
  std::string message;
  std::string chain;  ///< "root -> ... -> leaf"
};

/// Reads the `"<anchor>": [{"key": ..., "why": ...}, ...]` entry list from a
/// baseline file into key -> why. Returns false when the file is unreadable
/// or the anchor is missing.
bool parse_keyed_baseline(const std::string& path, const std::string& anchor,
                          std::map<std::string, std::string>& entries);

/// Writes `{"<anchor>": [...]}` with sorted, deduplicated entries.
bool write_keyed_baseline(const std::string& path, const std::string& anchor,
                          const std::map<std::string, std::string>& entries);

/// Shared tail of a pass's run(): sort, print (plain or --json), apply the
/// --baseline ratchet or --baseline-write regeneration, return the exit
/// code (0 clean/within-baseline, 1 findings/regressions, 2 IO errors).
struct ReportSpec {
  std::string mode;        ///< --json "mode" field, e.g. "hotpath"
  std::string anchor;      ///< baseline top-level key
  std::string what;        ///< human label, e.g. "hot-path"
  std::string bare_rule;   ///< bare-suppression rule name (never baselinable)
  std::string default_why; ///< why for --baseline-write entries without one
  bool json = false;
  std::string baseline;
  std::string baseline_write;
};

int report(const ReportSpec& spec, std::vector<Finding>& findings,
           std::size_t files);

}  // namespace cg
