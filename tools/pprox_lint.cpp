// pprox_lint — crypto-hygiene lint for the PProx sources.
//
// Scans C++ sources (by default src/crypto and src/pprox, the layers that
// touch key material and pseudonyms) for patterns that break the paper's
// unlinkability argument in a real deployment even though they are
// functionally correct:
//
//   rand          rand()/srand()/random()/drand48()/rand_r() — non-crypto
//                 PRNGs must never generate keys, IVs, or shuffle orders.
//                 Use pprox::crypto::Drbg (or RandomSource for simulations).
//   memcmp        memcmp()/std::memcmp on buffers — early-exit comparison
//                 leaks a matching-prefix timing signal when the operands
//                 are tags, MACs, keys, or pseudonyms. Use
//                 pprox::crypto::ct_equal.
//   secure-wipe   function-local key material (stack arrays or Bytes whose
//                 name contains "key"/"secret") that is never passed to
//                 secure_wipe() before the scope ends.
//   secret-index  S-box style table lookups (identifiers matching
//                 k*Sbox/k*SBox) indexed by a non-constant expression —
//                 a classic cache side channel.
//
// False positives are suppressed inline, on the offending line:
//     std::memcmp(a, b, n);  // pprox-lint: allow(memcmp): public inputs
// The justification text after the second ':' is optional but encouraged.
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error. Diagnostics are
// "file:line: [rule] message" so editors and CI can jump to them.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;
  std::size_t line;
  std::string rule;
  std::string message;
};

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parses "pprox-lint: allow(rule1, rule2)" suppressions out of a raw line.
std::set<std::string> suppressions_on(const std::string& line) {
  std::set<std::string> rules;
  const std::string marker = "pprox-lint:";
  std::size_t pos = line.find(marker);
  if (pos == std::string::npos) return rules;
  pos = line.find("allow(", pos);
  if (pos == std::string::npos) return rules;
  pos += 6;
  const std::size_t end = line.find(')', pos);
  if (end == std::string::npos) return rules;
  std::string inside = line.substr(pos, end - pos);
  std::replace(inside.begin(), inside.end(), ',', ' ');
  std::istringstream iss(inside);
  std::string rule;
  while (iss >> rule) rules.insert(rule);
  return rules;
}

/// Strips comments and string/char literals from the file, preserving the
/// line structure so findings keep accurate line numbers. Returns one entry
/// per source line containing only code.
std::vector<std::string> code_lines(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string code;
    code.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            break;
          }
          ++i;
        }
        code.push_back(quote);  // keep a stand-in so tokens don't merge
        code.push_back(quote);
        continue;
      }
      code.push_back(c);
    }
    out.push_back(std::move(code));
  }
  return out;
}

/// True when `code` contains the identifier `name` as a whole word followed
/// (after whitespace) by '('. Member calls (`.name(` / `->name(`) are
/// ignored: they are methods of our own types, not libc.
bool has_call(const std::string& code, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || !is_ident(code[pos - 1]);
    std::size_t after = pos + name.size();
    while (after < code.size() &&
           std::isspace(static_cast<unsigned char>(code[after])) != 0) {
      ++after;
    }
    const bool call = after < code.size() && code[after] == '(';
    const bool member =
        (pos >= 1 && code[pos - 1] == '.') ||
        (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>');
    if (start_ok && call && !member) return true;
    pos += name.size();
  }
  return false;
}

/// Extracts the bracketed index expression after `table_end`, or empty.
std::string index_expr(const std::string& code, std::size_t bracket) {
  int depth = 0;
  std::string expr;
  for (std::size_t i = bracket; i < code.size(); ++i) {
    if (code[i] == '[') {
      ++depth;
      if (depth == 1) continue;
    }
    if (code[i] == ']') {
      --depth;
      if (depth == 0) return expr;
    }
    if (depth >= 1) expr.push_back(code[i]);
  }
  return expr;
}

bool is_constant_index(const std::string& expr) {
  return !expr.empty() &&
         std::all_of(expr.begin(), expr.end(), [](char c) {
           return std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                  std::isspace(static_cast<unsigned char>(c)) != 0 ||
                  c == 'x' || c == 'X' || c == 'u' || c == 'U';
         });
}

/// One function-local declaration of key material awaiting its wipe.
struct KeyDecl {
  std::string name;
  std::size_t line;
  int depth;  ///< brace depth the declaration lives at
  bool wiped = false;
};

bool name_is_key_material(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return name.find("key") != std::string::npos ||
         name.find("secret") != std::string::npos;
}

/// Finds `type name[` / `type name(;|=|{)` declarations of key-material
/// locals. Very approximate by design: names must contain key/secret.
std::vector<std::string> key_decl_names(const std::string& code) {
  static const std::vector<std::string> kTypes = {
      "std::uint8_t", "uint8_t", "unsigned char", "Bytes", "std::array"};
  std::vector<std::string> names;
  for (const std::string& type : kTypes) {
    std::size_t pos = 0;
    while ((pos = code.find(type, pos)) != std::string::npos) {
      const bool start_ok = pos == 0 || !is_ident(code[pos - 1]);
      std::size_t i = pos + type.size();
      pos = i;
      if (!start_ok) continue;
      // Skip a template argument list (std::array<...,...>) if present.
      if (i < code.size() && code[i] == '<') {
        int depth = 0;
        for (; i < code.size(); ++i) {
          if (code[i] == '<') ++depth;
          if (code[i] == '>' && --depth == 0) {
            ++i;
            break;
          }
        }
      }
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])) != 0) {
        ++i;
      }
      std::string name;
      while (i < code.size() && is_ident(code[i])) name.push_back(code[i++]);
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])) != 0) {
        ++i;
      }
      if (name.empty() || i >= code.size()) continue;
      const char next = code[i];
      const bool is_decl =
          next == '[' || next == ';' || next == '=' || next == '{' || next == '(';
      if (is_decl && name_is_key_material(name)) names.push_back(name);
    }
  }
  // "uint8_t" also matches inside "std::uint8_t" — drop duplicate names.
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void scan_file(const fs::path& path, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "pprox_lint: cannot read " << path << "\n";
    std::exit(2);
  }
  std::vector<std::string> raw;
  std::string line;
  while (std::getline(in, line)) raw.push_back(line);
  const std::vector<std::string> code = code_lines(raw);

  const bool is_source = path.extension() == ".cpp";
  int depth = 0;
  std::vector<KeyDecl> live_decls;

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::set<std::string> allowed = suppressions_on(raw[i]);
    const auto report = [&](const std::string& rule, const std::string& msg) {
      if (allowed.count(rule) != 0) return;
      findings.push_back({path.string(), i + 1, rule, msg});
    };

    // Rule: rand --------------------------------------------------------
    for (const char* fn : {"rand", "srand", "rand_r", "random", "drand48"}) {
      if (has_call(code[i], fn)) {
        report("rand", std::string(fn) +
                           "() is not a CSPRNG; use pprox::crypto::Drbg / "
                           "RandomSource for anything observable");
      }
    }

    // Rule: memcmp ------------------------------------------------------
    if (has_call(code[i], "memcmp")) {
      report("memcmp",
             "memcmp leaks a matching-prefix timing signal; compare tags/"
             "keys/pseudonyms with pprox::crypto::ct_equal");
    }

    // Rule: secret-index ------------------------------------------------
    std::size_t pos = 0;
    while ((pos = code[i].find('[', pos)) != std::string::npos) {
      // Walk back over the identifier preceding '['.
      std::size_t end = pos;
      while (end > 0 && std::isspace(static_cast<unsigned char>(
                            code[i][end - 1])) != 0) {
        --end;
      }
      std::size_t begin = end;
      while (begin > 0 && is_ident(code[i][begin - 1])) --begin;
      const std::string table = code[i].substr(begin, end - begin);
      const bool sbox_like =
          table.size() > 1 && table[0] == 'k' &&
          (table.find("Sbox") != std::string::npos ||
           table.find("SBox") != std::string::npos);
      if (sbox_like) {
        const std::string expr = index_expr(code[i], pos);
        if (!is_constant_index(expr)) {
          report("secret-index",
                 table + "[" + expr +
                     "]: data-dependent S-box lookup is a cache side "
                     "channel; use a constant-time implementation or "
                     "justify with an allow comment");
        }
      }
      ++pos;
    }

    // Rule: secure-wipe (function locals in .cpp files only) ------------
    if (is_source) {
      for (const std::string& name : key_decl_names(code[i])) {
        if (allowed.count("secure-wipe") != 0) continue;
        live_decls.push_back({name, i + 1, depth + /*opens its scope*/ 0});
      }
      if (code[i].find("secure_wipe") != std::string::npos) {
        for (KeyDecl& d : live_decls) {
          if (code[i].find(d.name) != std::string::npos) d.wiped = true;
        }
      }
      for (char c : code[i]) {
        if (c == '{') ++depth;
        if (c == '}') {
          --depth;
          for (auto it = live_decls.begin(); it != live_decls.end();) {
            if (it->depth > depth && depth >= 0) {
              if (!it->wiped && it->depth > 0) {
                findings.push_back(
                    {path.string(), it->line, "secure-wipe",
                     "key material '" + it->name +
                         "' leaves scope without secure_wipe(); stack "
                         "copies of keys outlive the call otherwise"});
              }
              it = live_decls.erase(it);
            } else {
              ++it;
            }
          }
        }
      }
    }
  }
}

void collect(const fs::path& root, std::vector<fs::path>& files) {
  if (fs::is_regular_file(root)) {
    const auto ext = root.extension();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
      files.push_back(root);
    }
    return;
  }
  if (!fs::is_directory(root)) {
    std::cerr << "pprox_lint: no such file or directory: " << root << "\n";
    std::exit(2);
  }
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
      files.push_back(entry.path());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pprox_lint <dir-or-file>...\n"
                   "rules: rand, memcmp, secure-wipe, secret-index\n"
                   "suppress: // pprox-lint: allow(<rule>): <why>\n";
      return 0;
    }
    collect(arg, files);
  }
  if (files.empty()) {
    std::cerr << "pprox_lint: no input files (pass src/crypto src/pprox)\n";
    return 2;
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& f : files) scan_file(f, findings);

  for (const Finding& f : findings) {
    std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << findings.size() << " finding(s) in " << files.size()
              << " file(s)\n";
    return 1;
  }
  std::cout << "pprox_lint: " << files.size() << " file(s) clean\n";
  return 0;
}
