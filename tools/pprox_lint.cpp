// pprox_lint — crypto-hygiene and privacy information-flow lint for the
// PProx sources.
//
// Crypto rules (always on) scan C++ sources for patterns that break the
// paper's unlinkability argument in a real deployment even though they are
// functionally correct:
//
//   rand          rand()/srand()/random()/drand48()/rand_r() — non-crypto
//                 PRNGs must never generate keys, IVs, or shuffle orders.
//                 Use pprox::crypto::Drbg (or RandomSource for simulations).
//   memcmp        memcmp()/std::memcmp on buffers — early-exit comparison
//                 leaks a matching-prefix timing signal when the operands
//                 are tags, MACs, keys, or pseudonyms. Use
//                 pprox::crypto::ct_equal.
//   secure-wipe   function-local key material (stack arrays or Bytes whose
//                 name contains "key"/"secret") that is never passed to
//                 secure_wipe() before the scope ends.
//   secret-index  S-box style table lookups (identifiers matching
//                 k*Sbox/k*SBox) indexed by a non-constant expression —
//                 a classic cache side channel.
//   bare-suppression  an inline allow(...) with no justification text after
//                 the closing parenthesis — every suppression must say why.
//
// Flow rules (--flow) enforce the UA/IA unlinkability layering of DESIGN.md
// §8 at the translation-unit level. Each file declares its layer with a
// marker comment in its first lines (or gets a path-based default):
//
//     ua | ia | client | lrs | shared | attack | vocab | tooling
//
//   flow-layer    a UA-layer unit references an item-plaintext symbol (or
//                 IA headers), an IA-layer unit references a user-plaintext
//                 symbol (or UA headers), a shared unit references any taint
//                 domain or declassifier, an LRS unit references anything
//                 but PseudonymDomain. Include bans are checked over the
//                 *transitive* include graph of the scanned set.
//   flow-declassify   a declassify_* reference without a PPROX-DECLASSIFY
//                 justification comment on the same or nearby lines.
//   flow-test-declassify  the test-only escape hatch used in src/ or tools/.
//   flow-internal UnsafeRawAccess referenced outside common/taint.hpp.
//
// False positives are suppressed inline, on the offending line, with a
// mandatory reason:
//     std::memcmp(a, b, n);  // pprox-lint: allow(memcmp): public inputs
//
// Output: "file:line: [rule] message" diagnostics on stderr, or a JSON
// report on stdout with --json (findings, per-rule totals, and the per-unit
// layer/include graph). --baseline FILE compares per-rule totals against a
// checked-in baseline and fails only on regressions, so CI can gate on
// "no new findings" while a cleanup is in flight.
//
// Hot-path rules (--hotpath) run the call-graph discipline pass of
// tools/pprox_lint_hotpath.cpp (DESIGN.md §11): PPROX_HOT /
// PPROX_NONBLOCKING / PPROX_ECALL_BOUNDARY functions must not reach heap
// allocation, blocking operations, throws, or recursion cycles. Its
// --baseline file is key-based (tools/hotpath_baseline.json), not
// totals-based; --baseline-write regenerates either format.
//
// Lock-discipline rules (--locks) run the interprocedural pass of
// tools/pprox_lint_locks.cpp (DESIGN.md §12) over the same shared call
// graph: lock-order cycles, blocking or enclave crossings while a lock is
// held, bare manual .lock()/.unlock(), predicate-less CondVar waits. Its
// key-based baseline is tools/locks_baseline.json.
//
// Constant-time rules (--ct) run the interprocedural secret-taint pass of
// tools/pprox_lint_ct.cpp (DESIGN.md §13) over the same shared call graph:
// key/secret/pseudonym-derived values must not reach branch conditions,
// array subscripts, or variable-latency operations. Its key-based baseline
// is tools/ct_baseline.json; the dynamic cross-check is tools/pprox_ct_bench.
//
// Exit status: 0 clean (or within baseline), 1 findings/regressions,
// 2 usage/IO error.
#include "ct_pass.hpp"
#include "hotpath_pass.hpp"
#include "lifetime_pass.hpp"
#include "locks_pass.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;
  std::size_t line;
  std::string rule;
  std::string message;
};

/// One scanned file in the flow model: its declared layer and its direct
/// repo-relative includes (the per-TU node of the symbol/include graph).
struct Unit {
  std::string path;           ///< as passed on the command line
  std::string layer;          ///< ua|ia|client|lrs|shared|attack|vocab|tooling
  bool layer_from_marker = false;
  std::vector<std::string> includes;  ///< include strings, e.g. "pprox/keys.hpp"
};

struct Options {
  bool flow = false;
  bool hotpath = false;
  bool locks = false;
  bool ct = false;
  bool lifetime = false;
  bool json = false;
  bool list_rules = false;
  std::string baseline;
  std::string baseline_write;
  std::vector<fs::path> inputs;
};

/// Rule registry for --list-rules: one consolidated row per rule across
/// every pass — pass name, rule id, suppression token, baseline file,
/// summary. Kept next to the Options so adding a rule without listing it
/// is hard to miss in review. (The suppression marker strings are split so
/// this file never matches its own scanners.)
struct RuleDoc {
  const char* pass;      ///< crypto | flow | hotpath | locks | ct | lifetime
  const char* name;
  const char* suppress;  ///< inline suppression token for the rule
  const char* baseline;  ///< ratchet file consulted by --baseline
  const char* summary;
};

#define PPROX_ALLOW_TOKEN "pprox-lint: allow(<rule>): <why>"
#define PPROX_OK_TOKEN(PASS) "PPROX-" PASS "-" "OK(<aspect>): <why>"

constexpr RuleDoc kRuleDocs[] = {
    {"crypto", "rand", PPROX_ALLOW_TOKEN, "tools/lint_baseline.json",
     "libc rand()/random() family is not a CSPRNG"},
    {"crypto", "memcmp", PPROX_ALLOW_TOKEN, "tools/lint_baseline.json",
     "memcmp on secrets leaks a matching-prefix timing signal"},
    {"crypto", "secure-wipe", PPROX_ALLOW_TOKEN, "tools/lint_baseline.json",
     "key-material locals must be secure_wipe()d before scope exit"},
    {"crypto", "secret-index", PPROX_ALLOW_TOKEN, "tools/lint_baseline.json",
     "data-dependent S-box lookups are a cache side channel"},
    {"crypto", "intrinsics", PPROX_ALLOW_TOKEN, "tools/lint_baseline.json",
     "CPU intrinsics in src/ stay inside the dispatch TUs "
     "(crypto/accel_x86.cpp, crypto/cpu_features.cpp)"},
    {"crypto", "raw-sync", PPROX_ALLOW_TOKEN, "tools/lint_baseline.json",
     "raw std sync primitives in src/ bypass common/sync.hpp and the "
     "pprox_check scheduler"},
    {"crypto", "bare-suppression", "(never suppressible)",
     "tools/lint_baseline.json",
     "allow(<rule>) comments must carry a ': <why>'"},
    {"flow", "flow-layer", PPROX_ALLOW_TOKEN, "tools/lint_baseline.json",
     "every file in flow scope declares a known layer"},
    {"flow", "flow-declassify", PPROX_ALLOW_TOKEN, "tools/lint_baseline.json",
     "PPROX_DECLASSIFY needs an adjacent justification"},
    {"flow", "flow-test-declassify", PPROX_ALLOW_TOKEN,
     "tools/lint_baseline.json",
     "test-only declassify macros stay out of src/"},
    {"flow", "flow-internal", PPROX_ALLOW_TOKEN, "tools/lint_baseline.json",
     "cross-layer includes must respect the layering graph"},
    {"hotpath", "hot-alloc", PPROX_OK_TOKEN("HOTPATH"),
     "tools/hotpath_baseline.json",
     "PPROX_HOT paths must not reach heap allocation"},
    {"hotpath", "hot-throw", PPROX_OK_TOKEN("HOTPATH"),
     "tools/hotpath_baseline.json",
     "PPROX_HOT paths must not reach a throw"},
    {"hotpath", "hot-recursion", PPROX_OK_TOKEN("HOTPATH"),
     "tools/hotpath_baseline.json",
     "PPROX_HOT paths must not reach a recursion cycle"},
    {"hotpath", "nonblocking-block", PPROX_OK_TOKEN("HOTPATH"),
     "tools/hotpath_baseline.json",
     "PPROX_NONBLOCKING paths must not reach a blocking operation"},
    {"hotpath", "ecall-alloc", PPROX_OK_TOKEN("HOTPATH"),
     "tools/hotpath_baseline.json",
     "PPROX_ECALL_BOUNDARY must not allocate inside the enclave (ROADMAP 3)"},
    {"hotpath", "ecall-block", PPROX_OK_TOKEN("HOTPATH"),
     "tools/hotpath_baseline.json",
     "PPROX_ECALL_BOUNDARY must not reach a blocking op"},
    {"hotpath", "hotpath-bare-suppression", "(never suppressible)",
     "tools/hotpath_baseline.json",
     "hot-path suppressions must carry a ': <why>'"},
    {"locks", "lock-order", PPROX_OK_TOKEN("LOCKS"),
     "tools/locks_baseline.json",
     "no cycle in the global lock-acquisition-order graph (deadlock)"},
    {"locks", "lock-blocking", PPROX_OK_TOKEN("LOCKS"),
     "tools/locks_baseline.json",
     "no blocking leaf (sleep/join/syscall/pool submit) while a lock is "
     "held; CondVar::wait on the released lock is exempt"},
    {"locks", "lock-ecall", PPROX_OK_TOKEN("LOCKS"),
     "tools/locks_baseline.json",
     "no lock held across the enclave boundary (PPROX_ECALL_BOUNDARY or "
     "Enclave::ecall)"},
    {"locks", "lock-manual", PPROX_OK_TOKEN("LOCKS"),
     "tools/locks_baseline.json",
     "bare .lock()/.unlock() outside common/sync.hpp; use RAII guards or "
     "ScopedUnlock"},
    {"locks", "wait-nopred", PPROX_OK_TOKEN("LOCKS"),
     "tools/locks_baseline.json",
     "CondVar::wait must carry a predicate argument"},
    {"locks", "locks-bare-suppression", "(never suppressible)",
     "tools/locks_baseline.json",
     "lock-discipline suppressions must carry a ': <why>'"},
    {"ct", "ct-branch", PPROX_OK_TOKEN("CT"), "tools/ct_baseline.json",
     "secret-tainted value reaches a branch condition or loop bound"},
    {"ct", "ct-index", PPROX_OK_TOKEN("CT"), "tools/ct_baseline.json",
     "secret-tainted value reaches an array subscript"},
    {"ct", "ct-varlat", PPROX_OK_TOKEN("CT"), "tools/ct_baseline.json",
     "secret-tainted operand of a variable-latency op (/ % "
     "BigInt::compare/divmod/modinv)"},
    {"ct", "ct-bare-suppression", "(never suppressible)",
     "tools/ct_baseline.json",
     "constant-time suppressions must carry a ': <why>'"},
    {"lifetime", "lifetime-return-local", PPROX_OK_TOKEN("LIFETIME"),
     "tools/lifetime_baseline.json",
     "a view-returning function must not return a view of a local or an "
     "owning temporary"},
    {"lifetime", "lifetime-ref-capture-escape", PPROX_OK_TOKEN("LIFETIME"),
     "tools/lifetime_baseline.json",
     "no by-ref or unowned-this lambda capture into a sink that outlives "
     "the frame (ThreadPool/ShuffleQueue/DetThread/callbacks); "
     "weak_ptr/shared_from_this guards recognized"},
    {"lifetime", "lifetime-view-member", PPROX_OK_TOKEN("LIFETIME"),
     "tools/lifetime_baseline.json",
     "view-typed data members alias bytes the object does not own"},
    {"lifetime", "lifetime-arena-escape", PPROX_OK_TOKEN("LIFETIME"),
     "tools/lifetime_baseline.json",
     "no view of a per-connection/per-batch buffer stored past the "
     "handler return"},
    {"lifetime", "lifetime-bare-suppression", "(never suppressible)",
     "tools/lifetime_baseline.json",
     "lifetime suppressions must carry a ': <why>'"},
};

#undef PPROX_ALLOW_TOKEN
#undef PPROX_OK_TOKEN

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `token` (a qualified name like "std::mutex") appears in `line`
/// as a whole token: not preceded by an identifier character or ':' (so
/// "mystd::mutex" and "::std::mutex"-via-alias tricks don't double-fire) and
/// not followed by an identifier character (so "std::thread" does not match
/// inside "std::this_thread").
bool has_qualified(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool pre_ok =
        pos == 0 || (!is_ident(line[pos - 1]) && line[pos - 1] != ':');
    const std::size_t after = pos + token.size();
    const bool post_ok = after >= line.size() || !is_ident(line[after]);
    if (pre_ok && post_ok) return true;
    pos += token.size();
  }
  return false;
}

/// Parses a suppression comment ("pprox-lint: allow(rule): why") out of a
/// raw line. `bare` is set when no ": why" follows the closing parenthesis.
std::set<std::string> suppressions_on(const std::string& line, bool* bare) {
  std::set<std::string> rules;
  if (bare != nullptr) *bare = false;
  const std::string marker = "pprox-lint:";
  std::size_t pos = line.find(marker);
  if (pos == std::string::npos) return rules;
  pos = line.find("allow(", pos);
  if (pos == std::string::npos) return rules;
  pos += 6;
  const std::size_t end = line.find(')', pos);
  if (end == std::string::npos) return rules;
  std::string inside = line.substr(pos, end - pos);
  std::replace(inside.begin(), inside.end(), ',', ' ');
  std::istringstream iss(inside);
  std::string rule;
  while (iss >> rule) rules.insert(rule);
  if (bare != nullptr && !rules.empty()) {
    // Require ": <nonempty reason>" after the closing parenthesis.
    std::size_t after = end + 1;
    while (after < line.size() &&
           std::isspace(static_cast<unsigned char>(line[after])) != 0) {
      ++after;
    }
    if (after >= line.size() || line[after] != ':') {
      *bare = true;
    } else {
      ++after;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0) {
        ++after;
      }
      if (after >= line.size()) *bare = true;
    }
  }
  return rules;
}

/// Strips comments and string/char literals from the file, preserving the
/// line structure so findings keep accurate line numbers. Returns one entry
/// per source line containing only code.
std::vector<std::string> code_lines(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string code;
    code.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            break;
          }
          ++i;
        }
        code.push_back(quote);  // keep a stand-in so tokens don't merge
        code.push_back(quote);
        continue;
      }
      code.push_back(c);
    }
    out.push_back(std::move(code));
  }
  return out;
}

/// True when `code` contains the identifier `name` as a whole word followed
/// (after whitespace) by '('. Member calls (`.name(` / `->name(`) are
/// ignored: they are methods of our own types, not libc.
bool has_call(const std::string& code, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || !is_ident(code[pos - 1]);
    std::size_t after = pos + name.size();
    while (after < code.size() &&
           std::isspace(static_cast<unsigned char>(code[after])) != 0) {
      ++after;
    }
    const bool call = after < code.size() && code[after] == '(';
    const bool member =
        (pos >= 1 && code[pos - 1] == '.') ||
        (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>');
    if (start_ok && call && !member) return true;
    pos += name.size();
  }
  return false;
}

/// True when `code` references `name` as a whole identifier (any context).
bool has_word(const std::string& code, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || !is_ident(code[pos - 1]);
    const std::size_t after = pos + name.size();
    const bool end_ok = after >= code.size() || !is_ident(code[after]);
    if (start_ok && end_ok) return true;
    pos += name.size();
  }
  return false;
}

/// Extracts the bracketed index expression after `table_end`, or empty.
std::string index_expr(const std::string& code, std::size_t bracket) {
  int depth = 0;
  std::string expr;
  for (std::size_t i = bracket; i < code.size(); ++i) {
    if (code[i] == '[') {
      ++depth;
      if (depth == 1) continue;
    }
    if (code[i] == ']') {
      --depth;
      if (depth == 0) return expr;
    }
    if (depth >= 1) expr.push_back(code[i]);
  }
  return expr;
}

bool is_constant_index(const std::string& expr) {
  return !expr.empty() &&
         std::all_of(expr.begin(), expr.end(), [](char c) {
           return std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                  std::isspace(static_cast<unsigned char>(c)) != 0 ||
                  c == 'x' || c == 'X' || c == 'u' || c == 'U';
         });
}

/// One function-local declaration of key material awaiting its wipe.
struct KeyDecl {
  std::string name;
  std::size_t line;
  int depth;  ///< brace depth the declaration lives at
  bool wiped = false;
};

bool name_is_key_material(std::string name, bool crypto_scope) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (name.find("key") != std::string::npos ||
      name.find("secret") != std::string::npos) {
    return true;
  }
  // In src/crypto/, CTR counter and keystream stack buffers are
  // keystream-equivalent secrets: XORing a counter block's ciphertext with
  // the ciphertext stream recovers plaintext, so they must be wiped too.
  return crypto_scope && (name.find("counter") != std::string::npos ||
                          name.find("keystream") != std::string::npos);
}

/// Finds `type name[` / `type name(;|=|{)` declarations of key-material
/// locals. Very approximate by design: names must contain key/secret (plus
/// counter/keystream when `crypto_scope`).
std::vector<std::string> key_decl_names(const std::string& code,
                                        bool crypto_scope) {
  static const std::vector<std::string> kTypes = {
      "std::uint8_t", "uint8_t", "unsigned char", "Bytes", "std::array"};
  std::vector<std::string> names;
  for (const std::string& type : kTypes) {
    std::size_t pos = 0;
    while ((pos = code.find(type, pos)) != std::string::npos) {
      const bool start_ok = pos == 0 || !is_ident(code[pos - 1]);
      std::size_t i = pos + type.size();
      pos = i;
      if (!start_ok) continue;
      // Skip a template argument list (std::array<...,...>) if present.
      if (i < code.size() && code[i] == '<') {
        int depth = 0;
        for (; i < code.size(); ++i) {
          if (code[i] == '<') ++depth;
          if (code[i] == '>' && --depth == 0) {
            ++i;
            break;
          }
        }
      }
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])) != 0) {
        ++i;
      }
      std::string name;
      while (i < code.size() && is_ident(code[i])) name.push_back(code[i++]);
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])) != 0) {
        ++i;
      }
      if (name.empty() || i >= code.size()) continue;
      const char next = code[i];
      const bool is_decl =
          next == '[' || next == ';' || next == '=' || next == '{' || next == '(';
      if (is_decl && name_is_key_material(name, crypto_scope)) {
        names.push_back(name);
      }
    }
  }
  // "uint8_t" also matches inside "std::uint8_t" — drop duplicate names.
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

// ---------------------------------------------------------------------------
// Flow model: layers, domain symbol sets, and the include graph.
// ---------------------------------------------------------------------------

const std::set<std::string> kKnownLayers = {
    "ua", "ia", "client", "lrs", "shared", "attack", "vocab", "tooling"};

/// Symbols whose presence means "this code touches cleartext USER identity".
const std::vector<std::string> kUserPlaintextSyms = {
    "UserDomain", "UserId", "recover_user", "de_pseudonymize_user"};

/// Symbols whose presence means "this code touches cleartext ITEM identity"
/// (the lrs declassifier is item-constrained, so it belongs here too).
const std::vector<std::string> kItemPlaintextSyms = {
    "ItemDomain", "ItemId", "recover_item", "de_pseudonymize_item",
    "declassify_for_lrs"};

/// Headers a UA-layer unit must never include (directly or transitively):
/// they declare the IA's plaintext surface.
const std::vector<std::string> kIaHeaders = {"pprox/logic_ia.hpp",
                                             "pprox/logic.hpp"};
/// Headers an IA-layer unit must never include.
const std::vector<std::string> kUaHeaders = {"pprox/logic_ua.hpp",
                                             "pprox/logic.hpp"};
/// Headers an LRS unit must never include: everything that can name a
/// cleartext identifier or drive the client side of the protocol.
const std::vector<std::string> kLrsBannedHeaders = {
    "pprox/logic.hpp",   "pprox/logic_ua.hpp", "pprox/logic_ia.hpp",
    "pprox/client.hpp",  "pprox/pseudonymize.hpp"};

/// Reads the file's layer marker from its first lines, or derives a default
/// from the path. Markers look like a comment containing the scan tag
/// followed by a layer name; only the first 40 lines are consulted so that
/// string literals deeper in a file (this one, for instance) cannot
/// self-classify it.
std::string detect_layer(const fs::path& path,
                         const std::vector<std::string>& raw,
                         bool* from_marker) {
  *from_marker = false;
  const std::string tag = std::string("PPROX-") + "LAYER:";
  for (std::size_t i = 0; i < raw.size() && i < 40; ++i) {
    const std::size_t pos = raw[i].find(tag);
    if (pos == std::string::npos) continue;
    std::istringstream iss(raw[i].substr(pos + tag.size()));
    std::string layer;
    iss >> layer;
    *from_marker = true;
    return layer;
  }
  const std::string p = path.generic_string();
  auto under = [&p](const char* dir) {
    return p.find(dir) != std::string::npos;
  };
  if (under("src/lrs")) return "lrs";
  if (under("src/attack")) return "attack";
  if (under("tools") || under("tests") || under("bench") || under("examples")) {
    return "tooling";
  }
  return "shared";  // src/common, src/crypto, src/pprox hosts, ...
}

/// Collects the #include "..." strings of a file (quoted form only — system
/// headers carry no PProx layering information).
std::vector<std::string> quoted_includes(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  for (const std::string& line : raw) {
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    if (i >= line.size() || line[i] != '#') continue;
    const std::size_t inc = line.find("include", i);
    if (inc == std::string::npos) continue;
    const std::size_t open = line.find('"', inc);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.push_back(line.substr(open + 1, close - open - 1));
  }
  return out;
}

/// All identifiers in `code` that start with the declassifier prefix.
std::vector<std::string> decl_refs_on(const std::string& code) {
  std::vector<std::string> refs;
  const std::string prefix = std::string("declassify") + "_";
  std::size_t pos = 0;
  while ((pos = code.find(prefix, pos)) != std::string::npos) {
    if (pos > 0 && is_ident(code[pos - 1])) {
      pos += prefix.size();
      continue;
    }
    std::size_t end = pos;
    while (end < code.size() && is_ident(code[end])) ++end;
    refs.push_back(code.substr(pos, end - pos));
    pos = end;
  }
  return refs;
}

// ---------------------------------------------------------------------------
// Per-file scan.
// ---------------------------------------------------------------------------

void scan_file(const fs::path& path, const Options& opts,
               std::vector<Finding>& findings, std::vector<Unit>& units) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "pprox_lint: cannot read " << path << "\n";
    std::exit(2);
  }
  std::vector<std::string> raw;
  std::string line;
  while (std::getline(in, line)) raw.push_back(line);
  const std::vector<std::string> code = code_lines(raw);

  const std::string generic = path.generic_string();
  const bool is_source = path.extension() == ".cpp";
  bool from_marker = false;
  const std::string layer = detect_layer(path, raw, &from_marker);

  Unit unit;
  unit.path = path.string();
  unit.layer = layer;
  unit.layer_from_marker = from_marker;
  unit.includes = quoted_includes(raw);
  units.push_back(unit);

  if (opts.flow && kKnownLayers.count(layer) == 0) {
    findings.push_back({path.string(), 1, "flow-layer",
                        "unknown layer '" + layer +
                            "' (expected ua, ia, client, lrs, shared, "
                            "attack, vocab, or tooling)"});
  }

  const bool in_crypto = generic.find("src/crypto/") != std::string::npos;
  const bool in_taint_core = generic.find("common/taint.hpp") != std::string::npos;
  const bool in_test_tree = generic.find("tests/") != std::string::npos ||
                            generic.find("bench/") != std::string::npos ||
                            generic.find("examples/") != std::string::npos;

  int depth = 0;
  std::vector<KeyDecl> live_decls;

  for (std::size_t i = 0; i < code.size(); ++i) {
    bool bare = false;
    const std::set<std::string> allowed = suppressions_on(raw[i], &bare);
    const auto report = [&](const std::string& rule, const std::string& msg) {
      if (allowed.count(rule) != 0) return;
      findings.push_back({path.string(), i + 1, rule, msg});
    };

    // Rule: bare-suppression ---------------------------------------------
    if (bare) {
      report("bare-suppression",
             "inline suppression without a justification; write "
             "allow(<rule>): <why>");
    }

    // Rule: rand --------------------------------------------------------
    for (const char* fn : {"rand", "srand", "rand_r", "random", "drand48"}) {
      if (has_call(code[i], fn)) {
        report("rand", std::string(fn) +
                           "() is not a CSPRNG; use pprox::crypto::Drbg / "
                           "RandomSource for anything observable");
      }
    }

    // Rule: memcmp ------------------------------------------------------
    if (has_call(code[i], "memcmp")) {
      report("memcmp",
             "memcmp leaks a matching-prefix timing signal; compare tags/"
             "keys/pseudonyms with pprox::crypto::ct_equal");
    }

    // Rule: raw-sync ----------------------------------------------------
    // Production code must route synchronization through common/sync.hpp
    // (pprox::Mutex / CondVar / Atomic<T> / DetThread) so pprox_check can
    // interpose on every schedule point under -DPPROX_MODEL_CHECK
    // (DESIGN.md §9). Raw std primitives are invisible to the scheduler and
    // silently shrink the explored interleaving space. Scope: src/ only —
    // tests, benches, and tools may drive threads however they like — and
    // the sync layer itself is exempt (it wraps these by definition).
    if (generic.find("src/") != std::string::npos &&
        generic.find("common/sync.hpp") == std::string::npos &&
        generic.find("common/sync.cpp") == std::string::npos) {
      static const char* const kRawSync[] = {
          // Longer names first so the break below reports the exact token.
          "std::recursive_timed_mutex", "std::recursive_mutex",
          "std::timed_mutex", "std::shared_mutex",
          "std::condition_variable_any", "std::condition_variable",
          "std::atomic_flag", "std::atomic_ref", "std::atomic",
          "std::mutex", "std::thread", "std::jthread",
      };
      for (const char* token : kRawSync) {
        if (has_qualified(code[i], token)) {
          report("raw-sync",
                 std::string(token) +
                     " bypasses the deterministic scheduler; use "
                     "pprox::Mutex/CondVar/Atomic/DetThread from "
                     "common/sync.hpp so pprox_check can explore this code "
                     "(DESIGN.md §9)");
          break;  // one finding per line, on the most specific token
        }
      }
    }

    // Rule: intrinsics ---------------------------------------------------
    // Hardware intrinsics must stay inside the dispatch TUs: accel_x86.cpp
    // (the kernels, the only TU built with -maes/-mpclmul) and
    // cpu_features.cpp (the CPUID probe). Everything else in src/ stays
    // portable C++, so non-x86 builds compile the same sources and the
    // runtime dispatch in accel.cpp remains the single switch point.
    if (generic.find("src/") != std::string::npos &&
        generic.find("crypto/accel_x86.cpp") == std::string::npos &&
        generic.find("crypto/cpu_features.cpp") == std::string::npos) {
      static const char* const kIntrinsicHeaders[] = {
          "immintrin.h", "wmmintrin.h", "emmintrin.h", "tmmintrin.h",
          "smmintrin.h", "nmmintrin.h", "x86intrin.h", "cpuid.h",
          "arm_neon.h",
      };
      if (code[i].find("#include") != std::string::npos) {
        for (const char* hdr : kIntrinsicHeaders) {
          if (code[i].find(hdr) != std::string::npos) {
            report("intrinsics",
                   std::string("#include <") + hdr +
                       "> outside the dispatch TUs; hardware kernels belong "
                       "in crypto/accel_x86.cpp behind the accel.hpp "
                       "backend interface");
            break;
          }
        }
      }
      static const char* const kIntrinsicTokens[] = {
          "_mm_", "_mm256_", "__m128i", "__m256i", "__cpuid", "__get_cpuid",
          "vaeseq_", "vmull_p64",
      };
      for (const char* token : kIntrinsicTokens) {
        if (code[i].find(token) != std::string::npos) {
          report("intrinsics",
                 std::string("intrinsic token '") + token +
                     "' outside the dispatch TUs; route hardware paths "
                     "through crypto/accel.hpp so portable builds and "
                     "PPROX_DISABLE_ACCEL keep working");
          break;
        }
      }
    }

    // Rule: secret-index ------------------------------------------------
    std::size_t pos = 0;
    while ((pos = code[i].find('[', pos)) != std::string::npos) {
      // Walk back over the identifier preceding '['.
      std::size_t end = pos;
      while (end > 0 && std::isspace(static_cast<unsigned char>(
                            code[i][end - 1])) != 0) {
        --end;
      }
      std::size_t begin = end;
      while (begin > 0 && is_ident(code[i][begin - 1])) --begin;
      const std::string table = code[i].substr(begin, end - begin);
      const bool sbox_like =
          table.size() > 1 && table[0] == 'k' &&
          (table.find("Sbox") != std::string::npos ||
           table.find("SBox") != std::string::npos);
      if (sbox_like) {
        const std::string expr = index_expr(code[i], pos);
        if (!is_constant_index(expr)) {
          report("secret-index",
                 table + "[" + expr +
                     "]: data-dependent S-box lookup is a cache side "
                     "channel; use a constant-time implementation or "
                     "justify with an allow comment");
        }
      }
      ++pos;
    }

    // Rule: secure-wipe (function locals in .cpp files only) ------------
    if (is_source) {
      for (const std::string& name : key_decl_names(code[i], in_crypto)) {
        if (allowed.count("secure-wipe") != 0) continue;
        live_decls.push_back({name, i + 1, depth + /*opens its scope*/ 0});
      }
      if (code[i].find("secure_wipe") != std::string::npos) {
        for (KeyDecl& d : live_decls) {
          if (code[i].find(d.name) != std::string::npos) d.wiped = true;
        }
      }
      for (char c : code[i]) {
        if (c == '{') ++depth;
        if (c == '}') {
          --depth;
          for (auto it = live_decls.begin(); it != live_decls.end();) {
            if (it->depth > depth && depth >= 0) {
              if (!it->wiped && it->depth > 0) {
                findings.push_back(
                    {path.string(), it->line, "secure-wipe",
                     "key material '" + it->name +
                         "' leaves scope without secure_wipe(); stack "
                         "copies of keys outlive the call otherwise"});
              }
              it = live_decls.erase(it);
            } else {
              ++it;
            }
          }
        }
      }
    }

    if (!opts.flow) continue;

    // Rule: flow-layer (symbol references) ------------------------------
    if (layer == "ua") {
      for (const std::string& sym : kItemPlaintextSyms) {
        if (has_word(code[i], sym)) {
          report("flow-layer",
                 "UA-layer unit references item-plaintext symbol '" + sym +
                     "'; the User Anonymizer must never observe item "
                     "identifiers (paper §4.2)");
        }
      }
    } else if (layer == "ia") {
      for (const std::string& sym : kUserPlaintextSyms) {
        if (has_word(code[i], sym)) {
          report("flow-layer",
                 "IA-layer unit references user-plaintext symbol '" + sym +
                     "'; the Item Anonymizer must never observe user "
                     "identities (paper §4.2)");
        }
      }
    } else if (layer == "shared") {
      for (const std::string& sym : kUserPlaintextSyms) {
        if (has_word(code[i], sym)) {
          report("flow-layer",
                 "shared unit references user-plaintext symbol '" + sym +
                     "'; hosts move ciphertext only — route plaintext "
                     "through a ua/ia/client-layer unit");
        }
      }
      for (const std::string& sym : kItemPlaintextSyms) {
        if (has_word(code[i], sym)) {
          report("flow-layer",
                 "shared unit references item-plaintext symbol '" + sym +
                     "'; hosts move ciphertext only — route plaintext "
                     "through a ua/ia/client-layer unit");
        }
      }
      if (!decl_refs_on(code[i]).empty()) {
        report("flow-layer",
               "shared unit calls a declassifier; only ua/ia/client/vocab "
               "units may release sensitive values");
      }
    } else if (layer == "lrs") {
      for (const std::string& sym : kUserPlaintextSyms) {
        if (has_word(code[i], sym)) {
          report("flow-layer",
                 "LRS unit references user-plaintext symbol '" + sym +
                     "'; the LRS may only consume PseudonymDomain values");
        }
      }
      for (const std::string& sym : kItemPlaintextSyms) {
        if (has_word(code[i], sym)) {
          report("flow-layer",
                 "LRS unit references item-plaintext symbol '" + sym +
                     "'; the LRS may only consume PseudonymDomain values");
        }
      }
      if (!decl_refs_on(code[i]).empty()) {
        report("flow-layer",
               "LRS unit calls a declassifier; declassification happens "
               "before data reaches the LRS, never inside it");
      }
    }

    // Rules: flow-declassify / flow-test-declassify ----------------------
    const std::vector<std::string> refs = decl_refs_on(code[i]);
    if (!refs.empty()) {
      // A justification must sit on the same line or within the preceding
      // comment block (up to 6 raw lines — declarations and wrapped call
      // expressions push the marker a few lines up).
      const std::string just = std::string("PPROX-") + "DECLASSIFY:";
      bool justified = raw[i].find(just) != std::string::npos;
      for (std::size_t back = 1; !justified && back <= 6 && back <= i; ++back) {
        justified = raw[i - back].find(just) != std::string::npos;
      }
      if (!justified) {
        report("flow-declassify",
               "declassify call site without a " + just +
                   " justification comment (see DESIGN.md §8.4)");
      }
      for (const std::string& ref : refs) {
        if (ref == "declassify_for_test" && !in_test_tree) {
          report("flow-test-declassify",
                 "declassify_for_test is a test-only escape hatch; src/ and "
                 "tools/ must use a purpose-named declassifier");
        }
      }
    }

    // Rule: flow-internal ------------------------------------------------
    if (!in_taint_core && has_word(code[i], "UnsafeRawAccess")) {
      report("flow-internal",
             "UnsafeRawAccess is reserved for common/taint.hpp; use a "
             "declassify_* function or a taint:: combinator");
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-TU pass: transitive include bans over the scanned set.
// ---------------------------------------------------------------------------

/// True when `path` (generic form) ends with the include string `inc`.
bool path_matches_include(const std::string& path, const std::string& inc) {
  if (path.size() < inc.size()) return false;
  if (path.compare(path.size() - inc.size(), inc.size(), inc) != 0) return false;
  return path.size() == inc.size() || path[path.size() - inc.size() - 1] == '/';
}

/// Transitive closure of a unit's includes, resolved against the scanned
/// set (includes leaving the scanned set terminate there — system headers
/// and unscanned files carry no layering rules).
std::set<std::string> reachable_includes(const Unit& start,
                                         const std::vector<Unit>& units) {
  std::set<std::string> seen;  // include strings
  std::vector<std::string> frontier = start.includes;
  while (!frontier.empty()) {
    const std::string inc = frontier.back();
    frontier.pop_back();
    if (!seen.insert(inc).second) continue;
    for (const Unit& u : units) {
      if (!path_matches_include(fs::path(u.path).generic_string(), inc)) continue;
      for (const std::string& next : u.includes) frontier.push_back(next);
    }
  }
  return seen;
}

void check_include_graph(const std::vector<Unit>& units,
                         std::vector<Finding>& findings) {
  for (const Unit& unit : units) {
    const std::vector<std::string>* banned = nullptr;
    const char* why = nullptr;
    if (unit.layer == "ua") {
      banned = &kIaHeaders;
      why = "UA-layer unit reaches the IA plaintext surface via include";
    } else if (unit.layer == "ia") {
      banned = &kUaHeaders;
      why = "IA-layer unit reaches the UA plaintext surface via include";
    } else if (unit.layer == "lrs") {
      banned = &kLrsBannedHeaders;
      why = "LRS unit reaches a cleartext-identifier header via include";
    }
    if (banned == nullptr) continue;
    const std::set<std::string> reach = reachable_includes(unit, units);
    for (const std::string& ban : *banned) {
      if (reach.count(ban) != 0) {
        findings.push_back({unit.path, 1, "flow-layer",
                            std::string(why) + ": " + ban});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Output & baseline.
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::map<std::string, std::size_t> rule_totals(
    const std::vector<Finding>& findings) {
  std::map<std::string, std::size_t> totals;
  for (const Finding& f : findings) ++totals[f.rule];
  return totals;
}

void print_json(const std::vector<Finding>& findings,
                const std::vector<Unit>& units, const Options& opts) {
  const auto totals = rule_totals(findings);
  std::cout << "{\n  \"files\": " << units.size() << ",\n  \"flow\": "
            << (opts.flow ? "true" : "false") << ",\n  \"total\": "
            << findings.size() << ",\n  \"totals\": {";
  bool first = true;
  for (const auto& [rule, count] : totals) {
    std::cout << (first ? "" : ", ") << "\"" << rule << "\": " << count;
    first = false;
  }
  std::cout << "},\n  \"findings\": [";
  first = true;
  for (const Finding& f : findings) {
    std::cout << (first ? "" : ",") << "\n    {\"path\": \""
              << json_escape(f.path) << "\", \"line\": " << f.line
              << ", \"rule\": \"" << f.rule << "\", \"message\": \""
              << json_escape(f.message) << "\"}";
    first = false;
  }
  std::cout << (first ? "" : "\n  ") << "],\n  \"units\": [";
  first = true;
  for (const Unit& u : units) {
    std::cout << (first ? "" : ",") << "\n    {\"path\": \""
              << json_escape(u.path) << "\", \"layer\": \"" << u.layer
              << "\", \"marker\": " << (u.layer_from_marker ? "true" : "false")
              << ", \"includes\": [";
    bool f2 = true;
    for (const std::string& inc : u.includes) {
      std::cout << (f2 ? "" : ", ") << "\"" << json_escape(inc) << "\"";
      f2 = false;
    }
    std::cout << "]}";
    first = false;
  }
  std::cout << (first ? "" : "\n  ") << "]\n}\n";
}

/// Parses the "totals" object of a baseline file (the lint's own --json
/// output, or a hand-written {"totals": {"rule": N, ...}}). Deliberately
/// tiny: scans `"name": number` pairs inside the totals braces.
bool parse_baseline(const std::string& path,
                    std::map<std::string, std::size_t>& totals) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::size_t anchor = text.find("\"totals\"");
  if (anchor == std::string::npos) return false;
  const std::size_t open = text.find('{', anchor);
  const std::size_t close = text.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return false;
  std::size_t pos = open + 1;
  while (pos < close) {
    const std::size_t q1 = text.find('"', pos);
    if (q1 == std::string::npos || q1 >= close) break;
    const std::size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos || q2 >= close) break;
    const std::string rule = text.substr(q1 + 1, q2 - q1 - 1);
    std::size_t num = text.find(':', q2);
    if (num == std::string::npos || num >= close) break;
    ++num;
    while (num < close &&
           std::isspace(static_cast<unsigned char>(text[num])) != 0) {
      ++num;
    }
    std::size_t value = 0;
    bool any = false;
    while (num < close && std::isdigit(static_cast<unsigned char>(text[num]))) {
      value = value * 10 + static_cast<std::size_t>(text[num] - '0');
      ++num;
      any = true;
    }
    if (!any) return false;
    totals[rule] = value;
    pos = num;
  }
  return true;
}

void collect(const fs::path& root, std::vector<fs::path>& files) {
  if (fs::is_regular_file(root)) {
    const auto ext = root.extension();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
      files.push_back(root);
    }
    return;
  }
  if (!fs::is_directory(root)) {
    std::cerr << "pprox_lint: no such file or directory: " << root << "\n";
    std::exit(2);
  }
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
      files.push_back(entry.path());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: pprox_lint [--flow|--hotpath|--locks|--ct|--lifetime] "
             "[--json] [--baseline FILE] "
             "[--baseline-write FILE] [--list-rules] <dir-or-file>...\n"
             "crypto rules: rand, memcmp, secure-wipe, secret-index, "
             "intrinsics, raw-sync, bare-suppression\n"
             "flow rules (--flow): flow-layer, flow-declassify, "
             "flow-test-declassify, flow-internal\n"
             "hotpath rules (--hotpath): hot-alloc, hot-throw, "
             "hot-recursion, nonblocking-block, ecall-alloc, ecall-block, "
             "hotpath-bare-suppression\n"
             "locks rules (--locks): lock-order, lock-blocking, lock-ecall, "
             "lock-manual, wait-nopred, locks-bare-suppression\n"
             "ct rules (--ct): ct-branch, ct-index, ct-varlat, "
             "ct-bare-suppression\n"
             "lifetime rules (--lifetime): lifetime-return-local, "
             "lifetime-ref-capture-escape, lifetime-view-member, "
             "lifetime-arena-escape, lifetime-bare-suppression\n"
             "suppress: // pprox-lint: allow(<rule>): <why>   (crypto/flow)\n"
             "          // PPROX-HOTPATH-OK(<effect>): <why>  (hotpath)\n"
             "          // PPROX-LOCKS-OK(<aspect>): <why>    (locks)\n"
             "          // PPROX-CT-OK(<aspect>): <why>       (ct)\n"
             "          // PPROX-LIFETIME-OK(<aspect>): <why> (lifetime)\n"
             "--json prints findings, per-rule totals, and the per-unit "
             "layer/include graph\n"
             "--baseline compares against FILE and fails only on regressions "
             "(per-rule totals; per-violation keys with --hotpath/--locks)\n"
             "--baseline-write regenerates FILE from the current findings "
             "and exits 0\n"
             "--list-rules prints the rule table and exits\n";
      return 0;
    }
    if (arg == "--list-rules") {
      opts.list_rules = true;
      continue;
    }
    if (arg == "--flow") {
      opts.flow = true;
      continue;
    }
    if (arg == "--hotpath") {
      opts.hotpath = true;
      continue;
    }
    if (arg == "--locks") {
      opts.locks = true;
      continue;
    }
    if (arg == "--ct") {
      opts.ct = true;
      continue;
    }
    if (arg == "--lifetime") {
      opts.lifetime = true;
      continue;
    }
    if (arg == "--json") {
      opts.json = true;
      continue;
    }
    if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "pprox_lint: --baseline needs a file argument\n";
        return 2;
      }
      opts.baseline = argv[++i];
      continue;
    }
    if (arg == "--baseline-write") {
      if (i + 1 >= argc) {
        std::cerr << "pprox_lint: --baseline-write needs a file argument\n";
        return 2;
      }
      opts.baseline_write = argv[++i];
      continue;
    }
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::cerr << "pprox_lint: unknown option " << arg
                << " (see --help)\n";
      return 2;
    }
    collect(arg, opts.inputs);
  }
  if (opts.list_rules) {
    // One consolidated table across all passes: pass, rule, suppression
    // token, baseline file, then the summary indented on its own line (the
    // summaries are full sentences; a fifth column would wrap badly).
    std::size_t wp = std::string("PASS").size();
    std::size_t wn = std::string("RULE").size();
    std::size_t ws = std::string("SUPPRESSION").size();
    for (const RuleDoc& doc : kRuleDocs) {
      wp = std::max(wp, std::string(doc.pass).size());
      wn = std::max(wn, std::string(doc.name).size());
      ws = std::max(ws, std::string(doc.suppress).size());
    }
    std::cout << std::left << std::setw(static_cast<int>(wp)) << "PASS"
              << "  " << std::setw(static_cast<int>(wn)) << "RULE" << "  "
              << std::setw(static_cast<int>(ws)) << "SUPPRESSION" << "  "
              << "BASELINE\n";
    for (const RuleDoc& doc : kRuleDocs) {
      std::cout << std::left << std::setw(static_cast<int>(wp)) << doc.pass
                << "  " << std::setw(static_cast<int>(wn)) << doc.name
                << "  " << std::setw(static_cast<int>(ws)) << doc.suppress
                << "  " << doc.baseline << "\n"
                << std::string(wp + 2, ' ') << "- " << doc.summary << "\n";
    }
    return 0;
  }
  if (opts.inputs.empty()) {
    std::cerr << "pprox_lint: no input files (pass src/crypto src/pprox)\n";
    return 2;
  }
  std::sort(opts.inputs.begin(), opts.inputs.end());

  if (opts.hotpath) {
    hotpath::Options hopts;
    hopts.json = opts.json;
    hopts.baseline = opts.baseline;
    hopts.baseline_write = opts.baseline_write;
    hopts.inputs = opts.inputs;
    return hotpath::run(hopts);
  }
  if (opts.locks) {
    locks::Options lopts;
    lopts.json = opts.json;
    lopts.baseline = opts.baseline;
    lopts.baseline_write = opts.baseline_write;
    lopts.inputs = opts.inputs;
    return locks::run(lopts);
  }
  if (opts.ct) {
    ct::Options copts;
    copts.json = opts.json;
    copts.baseline = opts.baseline;
    copts.baseline_write = opts.baseline_write;
    copts.inputs = opts.inputs;
    return ct::run(copts);
  }
  if (opts.lifetime) {
    lifetime::Options lfopts;
    lfopts.json = opts.json;
    lfopts.baseline = opts.baseline;
    lfopts.baseline_write = opts.baseline_write;
    lfopts.inputs = opts.inputs;
    return lifetime::run(lfopts);
  }

  std::vector<Finding> findings;
  std::vector<Unit> units;
  for (const fs::path& f : opts.inputs) scan_file(f, opts, findings, units);
  if (opts.flow) check_include_graph(units, findings);

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.path, a.line) < std::tie(b.path, b.line);
                   });

  if (opts.json) {
    print_json(findings, units, opts);
  } else {
    for (const Finding& f : findings) {
      std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
                << f.message << " (suppress: // pprox-lint: allow(" << f.rule
                << "): <why>)\n";
    }
  }

  if (!opts.baseline_write.empty()) {
    // Regenerate a totals-format baseline from the current findings so the
    // ratchet can be tightened without hand-editing JSON.
    std::ofstream out(opts.baseline_write);
    if (!out) {
      std::cerr << "pprox_lint: cannot write baseline " << opts.baseline_write
                << "\n";
      return 2;
    }
    const auto totals = rule_totals(findings);
    out << "{\n  \"totals\": {";
    bool first = true;
    for (const RuleDoc& doc : kRuleDocs) {
      const auto it = totals.find(doc.name);
      const std::string pass = doc.pass;
      if (pass != "crypto" && pass != "flow") {
        continue;  // call-graph passes live in their key-based baselines
      }
      out << (first ? "" : ",") << "\n    \"" << doc.name
          << "\": " << (it == totals.end() ? 0 : it->second);
      first = false;
    }
    out << "\n  }\n}\n";
    std::cout << "pprox_lint: wrote per-rule totals baseline to "
              << opts.baseline_write << " (" << findings.size()
              << " finding(s))\n";
    return 0;
  }

  if (!opts.baseline.empty()) {
    std::map<std::string, std::size_t> base;
    if (!parse_baseline(opts.baseline, base)) {
      std::cerr << "pprox_lint: cannot parse baseline " << opts.baseline
                << "\n";
      return 2;
    }
    const auto totals = rule_totals(findings);
    bool regressed = false;
    for (const auto& [rule, count] : totals) {
      const std::size_t allowed_count =
          base.count(rule) != 0 ? base.at(rule) : 0;
      if (count > allowed_count) {
        std::cerr << "pprox_lint: REGRESSION: rule '" << rule << "' has "
                  << count << " finding(s), baseline allows " << allowed_count
                  << "\n";
        regressed = true;
      } else if (count < allowed_count) {
        std::cerr << "pprox_lint: note: rule '" << rule << "' improved to "
                  << count << " (baseline " << allowed_count
                  << ") — consider tightening the baseline\n";
      }
    }
    if (regressed) return 1;
    if (!opts.json) {
      std::cout << "pprox_lint: " << units.size()
                << " file(s) within baseline (" << findings.size()
                << " finding(s))\n";
    }
    return 0;
  }

  if (!findings.empty()) {
    std::cerr << findings.size() << " finding(s) in " << units.size()
              << " file(s)\n";
    return 1;
  }
  if (!opts.json) {
    std::cout << "pprox_lint: " << units.size() << " file(s) clean\n";
  }
  return 0;
}
