// pprox_check — deterministic interleaving explorer for the PProx
// shuffle/rotation concurrency core (DESIGN.md §9).
//
// Each --model drives real pprox code (or, for rotation, a faithful
// miniature of Deployment::rotate) under the pprox::det cooperative
// scheduler from src/common/sync.{hpp,cpp}: bounded exhaustive DFS with
// sleep-set pruning and a preemption bound, or PCT-style randomised
// priorities. Timed condition-variable waits run on a virtual clock, so
// timer-vs-size races are explored systematically instead of slept for.
//
// On an invariant violation or deadlock the scheduler prints a numbered
// interleaving trace with source locations and a `--replay t0,t1,...`
// schedule that reproduces it deterministically; committed reproductions
// of the bugs this tool found live in tools/traces/.
//
// Build: -DPPROX_MODEL_CHECK=ON (tools/CMakeLists.txt only adds this
// target in that configuration). -DPPROX_CHECK_SELFTEST=ON additionally
// re-injects the pre-fix logic into the code under test so every model
// must FAIL — a permanent regression test of the checker itself.
#ifndef PPROX_MODEL_CHECK
#error "pprox_check requires -DPPROX_MODEL_CHECK (see tools/CMakeLists.txt)"
#endif

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "concurrent/mpmc_queue.hpp"
#include "concurrent/thread_pool.hpp"
#include "pprox/shuffle.hpp"

namespace {

using pprox::Atomic;
using pprox::CondVar;
using pprox::DetThread;
using pprox::FlushInfo;
using pprox::FlushReason;
using pprox::LockGuard;
using pprox::Mutex;
using pprox::ShuffleQueue;
using pprox::SteadyClock;
using pprox::UniqueLock;
namespace det = pprox::det;

// ---------------------------------------------------------------------------
// Model: shuffle — ShuffleQueue permutation completeness & flush arbitration.
//
// Paper §4.3: the shuffler must release every buffered item exactly once
// (no request lost, none duplicated — a dropped or replayed item breaks the
// proxy's request/response bijection) and must only flush when the batch
// reached S (full unlinkability set) or the delay bound fired (bounded
// latency). The queue is the TYPED batch buffer the proxy instantiates with
// pending-request structs: the model drives ShuffleQueue<int> through the
// batch sink, exactly the release interface the one-ecall-per-flush proxy
// uses. Checked invariants:
//   * every add()ed item is delivered by the sink exactly once (checked
//     after destruction);
//   * the sink's span agrees with FlushInfo::batch_size;
//   * a size-triggered flush carries exactly S items;
//   * a timer-triggered flush never fires before the deadline of the arming
//     it flushes — the pre-fix timer waited on a stale deadline snapshot and
//     could flush a successor batch early (tools/traces/shuffle_stale_deadline.txt).
//
// Shape: S = 2, two producers (2-producer/1-flush: the queue's own timer
// thread is the single flusher; the destructor's flush_now() drains leftovers).
// det::advance_time() between producer-1's adds separates the two arming
// deadlines on the virtual clock, which is what makes the stale-deadline
// arbitration observable.
// ---------------------------------------------------------------------------

void model_shuffle() {
  int released[3] = {0, 0, 0};
  {
    ShuffleQueue<int> queue(2, std::chrono::milliseconds(50));
    queue.set_flush_observer([](const FlushInfo& info) {
      det::model_check(info.batch_size >= 1,
                       "flush observer invoked for an empty batch");
      det::model_check(info.batch_size <= 2,
                       "flush released more than S items");
      if (info.reason == FlushReason::kSize) {
        det::model_check(info.batch_size == 2,
                         "size-triggered flush with fewer than S items");
      }
      if (info.reason == FlushReason::kTimer) {
        det::model_check(
            info.now >= info.deadline,
            "timer flush before the armed deadline (stale-deadline arbitration)");
      }
    });
    queue.set_batch_sink([&](std::span<int> batch, const FlushInfo& info) {
      det::model_check(batch.size() == info.batch_size,
                       "batch sink span disagrees with FlushInfo::batch_size");
      for (const int item : batch) ++released[item];
    });
    DetThread producer1(
        [&] {
          queue.add(0);
          // Let virtual time pass so a second arming gets a later deadline.
          det::advance_time(10);
          queue.add(2);
        },
        "producer-1");
    DetThread producer2([&] { queue.add(1); }, "producer-2");
    producer1.join();
    producer2.join();
  }  // ~ShuffleQueue: stop timer, flush_now() leftovers
  for (int i = 0; i < 3; ++i) {
    det::model_check(released[i] == 1,
                     "shuffle item lost or duplicated (released != 1)");
  }
}

// ---------------------------------------------------------------------------
// Model: mpmc — MpmcQueue linearizability against a sequential FIFO spec.
//
// The Vyukov queue is the proxy's server-thread -> enclave-pool hand-off;
// a lost or duplicated packet there silently drops or replays a client
// request. Every try_push/try_pop records its invocation/response step
// interval; after the threads join, a Wing–Gong style search looks for a
// total order that (a) respects real-time precedence and (b) replays
// correctly against a bounded FIFO queue. No such order => not linearizable.
// ---------------------------------------------------------------------------

struct QueueOp {
  bool is_push = false;
  int arg = 0;             // pushed value
  bool push_ok = false;    // try_push result
  bool pop_has = false;    // try_pop returned a value
  int pop_val = 0;
  std::uint64_t inv = 0;   // det::current_step() before the call
  std::uint64_t res = 0;   // det::current_step() after the call
};

bool linearize(const std::vector<QueueOp>& ops, std::vector<bool>& used,
               std::deque<int>& fifo, std::size_t capacity, std::size_t done) {
  if (done == ops.size()) return true;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (used[i]) continue;
    // Minimality: i may linearize next only if no pending op finished
    // strictly before i was invoked. (Equal step counts are treated as
    // concurrent — conservative: more candidate orders, never a false alarm.)
    bool minimal = true;
    for (std::size_t j = 0; j < ops.size() && minimal; ++j) {
      if (!used[j] && j != i && ops[j].res < ops[i].inv) minimal = false;
    }
    if (!minimal) continue;

    const QueueOp& op = ops[i];
    used[i] = true;
    if (op.is_push) {
      const bool ok = fifo.size() < capacity;
      if (ok == op.push_ok) {
        if (ok) fifo.push_back(op.arg);
        if (linearize(ops, used, fifo, capacity, done + 1)) return true;
        if (ok) fifo.pop_back();
      }
    } else {
      if (fifo.empty()) {
        if (!op.pop_has &&
            linearize(ops, used, fifo, capacity, done + 1)) {
          return true;
        }
      } else if (op.pop_has && op.pop_val == fifo.front()) {
        const int front = fifo.front();
        fifo.pop_front();
        if (linearize(ops, used, fifo, capacity, done + 1)) return true;
        fifo.push_front(front);
      }
    }
    used[i] = false;
  }
  return false;
}

void model_mpmc() {
  pprox::concurrent::MpmcQueue<int> queue(2);
  // Per-slot records, disjoint per thread; reads happen after join().
  QueueOp ops[4];

  auto record_push = [&](int slot, int value) {
    ops[slot].is_push = true;
    ops[slot].arg = value;
    ops[slot].inv = det::current_step();
    ops[slot].push_ok = queue.try_push(value);
    ops[slot].res = det::current_step();
  };
  auto record_pop = [&](int slot) {
    ops[slot].is_push = false;
    ops[slot].inv = det::current_step();
    const std::optional<int> value = queue.try_pop();
    ops[slot].res = det::current_step();
    ops[slot].pop_has = value.has_value();
    ops[slot].pop_val = value.value_or(0);
  };

  DetThread producer(
      [&] {
        record_push(0, 1);
        record_push(1, 2);
      },
      "producer");
  DetThread consumer1([&] { record_pop(2); }, "consumer-1");
  DetThread consumer2([&] { record_pop(3); }, "consumer-2");
  producer.join();
  consumer1.join();
  consumer2.join();

  std::vector<QueueOp> history(ops, ops + 4);
  std::vector<bool> used(history.size(), false);
  std::deque<int> fifo;
  if (!linearize(history, used, fifo, queue.capacity(), 0)) {
    std::string msg = "MpmcQueue history not linearizable vs FIFO spec:";
    for (const QueueOp& op : history) {
      msg += op.is_push
                 ? " push(" + std::to_string(op.arg) + ")=" +
                       (op.push_ok ? "ok" : "full")
                 : " pop()=" + (op.pop_has ? std::to_string(op.pop_val)
                                           : std::string("empty"));
    }
    det::model_fail(msg);
  }
}

// ---------------------------------------------------------------------------
// Model: pool — ThreadPool must not lose accepted tasks on shutdown.
//
// The pool is the in-enclave data-processing stage (§5); a task accepted by
// submit() carries a client request, so "accepted but never executed" is a
// silently dropped request. The pre-fix submit() could pass its stopping_
// check, lose the CPU, and publish its task after shutdown() had already
// joined every worker (tools/traces/pool_lost_task.txt). Invariants:
//   * submit() returning true implies the task ran by the time shutdown()
//     and the submitter both completed;
//   * submit() after shutdown() returns false.
// ---------------------------------------------------------------------------

void model_pool() {
  int executed = 0;  // only touched by pool-managed threads; read after joins
  bool accepted = false;
  {
    pprox::concurrent::ThreadPool pool(1, 2);
    DetThread submitter(
        [&] { accepted = pool.submit([&] { ++executed; }); }, "submitter");
    pool.shutdown();
    submitter.join();
    det::model_check(!pool.submit([] {}),
                     "submit() accepted a task after shutdown()");
    if (accepted) {
      det::model_check(executed == 1,
                       "accepted task lost on shutdown (submitted but never ran)");
    }
  }
  if (accepted) {
    det::model_check(executed == 1, "accepted task ran more than once");
  }
}

// ---------------------------------------------------------------------------
// Model: rotation — no stale-key pseudonymization, no use-after-rotate.
//
// Miniature of Deployment::rotate (pprox/deployment.cpp). The real path
// generates RSA keys (slow, and rejection sampling makes the op count
// schedule-dependent), so the model keeps only the schedule-relevant
// skeleton: proxies pseudonymize rows under the current key epoch; the
// rotator re-encrypts the store to the next epoch, retires the old key and
// rebuilds the serving stack. Invariants (paper §6: rotation must leave no
// row recoverable with a breached key):
//   * no proxy ever pseudonymizes with a retired key (use-after-rotate);
//   * after rotation, every stored row is under the store's epoch — a row
//     under a retired epoch is exactly the stale-key leak the pre-fix
//     rotate-store-then-tear-down ordering allowed
//     (tools/traces/rotation_stale_key.txt).
//
// PPROX_CHECK_SELFTEST swaps the rotator to the pre-fix ordering (rotate
// store and retire key BEFORE quiescing the serving stack), which the
// explorer must catch.
// ---------------------------------------------------------------------------

void model_rotation() {
  struct MiniStore {
    Mutex mu;
    std::vector<int> row_epochs PPROX_GUARDED_BY(mu);  // key epoch per row
    int store_epoch PPROX_GUARDED_BY(mu) = 0;
  };
  MiniStore store;
  Atomic<int> key_epoch{0};
  Atomic<bool> key0_alive{true};
  Mutex quiesce_mu;
  CondVar quiesce_cv;
  bool down = false;     // serving stack torn down   (guarded by quiesce_mu)
  int in_flight = 0;     // admitted proxy requests   (guarded by quiesce_mu)

  // One in-flight recommendation request on a proxy instance: admission
  // (torn-down stack answers 503 instead), pseudonymize under the current
  // key epoch, append to the store, complete.
  auto proxy_request = [&] {
    {
      LockGuard lock(quiesce_mu);
      if (down) return;  // 503: backend gone
      ++in_flight;
    }
    const int epoch = key_epoch.load(std::memory_order_acquire);
    {
      LockGuard lock(store.mu);
      det::model_check(
          !(epoch == 0 && !key0_alive.load(std::memory_order_acquire)),
          "use-after-rotate: pseudonymizing with a retired key");
      store.row_epochs.push_back(epoch);
    }
    {
      LockGuard lock(quiesce_mu);
      if (--in_flight == 0) quiesce_cv.notify_all();
    }
  };

  auto rotate_store = [&] {
    LockGuard lock(store.mu);
    for (int& row : store.row_epochs) row = 1;
    store.store_epoch = 1;
  };

#ifdef PPROX_CHECK_SELFTEST
  // Pre-fix Deployment::rotate ordering: rotate the store and retire the
  // old key while the old serving stack is still live. An in-flight request
  // that read epoch 0 before the bump lands a stale-key row in the rotated
  // store — the bug the fixed ordering below eliminates.
  auto rotator = [&] {
    rotate_store();
    key0_alive.store(false, std::memory_order_release);
    key_epoch.store(1, std::memory_order_release);
    {
      UniqueLock lock(quiesce_mu);
      down = true;
      quiesce_cv.wait(lock, [&] { return in_flight == 0; });
      down = false;  // rebuild under the new epoch
    }
  };
#else
  // Fixed ordering (deployment.cpp): tear down & quiesce the serving stack
  // FIRST, then rotate store + keys, then rebuild.
  auto rotator = [&] {
    {
      UniqueLock lock(quiesce_mu);
      down = true;
      quiesce_cv.wait(lock, [&] { return in_flight == 0; });
    }
    rotate_store();
    key0_alive.store(false, std::memory_order_release);
    key_epoch.store(1, std::memory_order_release);
    {
      LockGuard lock(quiesce_mu);
      down = false;  // rebuild: serving resumes under the new epoch
    }
  };
#endif

  DetThread proxy1(proxy_request, "proxy-1");
  DetThread proxy2(proxy_request, "proxy-2");
  DetThread rot(rotator, "rotator");
  proxy1.join();
  proxy2.join();
  rot.join();

  LockGuard lock(store.mu);
  for (int row : store.row_epochs) {
    det::model_check(
        row == store.store_epoch,
        "stale-key row: pseudonym under a retired epoch survived rotation");
  }
}

// ---------------------------------------------------------------------------
// Model: lockorder — two-mutex acquisition-order discipline.
//
// The dynamic twin of pprox_lint --locks' PPROX-LOCK-ORDER rule (DESIGN.md
// §12.3): the static pass proves the *absence* of cycles in the global
// lock-order graph; this model demonstrates the *presence* of the deadlock
// a cycle implies, so the two tools cross-validate. Thread-1 always takes
// mu_a then mu_b. In the shipped build thread-2 follows the same global
// order (a then b) and bounded DFS explores every interleaving without a
// deadlock. Under -DPPROX_CHECK_SELFTEST thread-2 inverts the order (b then
// a) — exactly the shape the analyzer keys as
// "lock-order|...mu_a...->...mu_b...->...mu_a..." — and DFS must find the
// interleaving where each thread holds one mutex and parks on the other,
// reported by the scheduler's deadlock detector with a replayable trace.
// ---------------------------------------------------------------------------

void model_lockorder() {
#ifdef PPROX_CHECK_SELFTEST
  // Printed once so the deadlock trace can be matched back to the static
  // analyzer's finding format.
  static const bool banner = [] {
    std::printf(
        "lockorder selftest: thread-2 acquires mu_b -> mu_a against "
        "thread-1's mu_a -> mu_b; pprox_lint --locks reports this shape as "
        "PPROX-LOCK-ORDER (key lock-order|mu_a->mu_b->mu_a) with both "
        "acquisition chains\n");
    // The deadlock path ends in std::_Exit (sync.cpp), which does not
    // flush stdio: flush now or the banner is lost exactly when it matters.
    std::fflush(stdout);
    return true;
  }();
  (void)banner;
#endif
  Mutex mu_a;
  Mutex mu_b;
  int shared = 0;
  DetThread t1(
      [&] {
        LockGuard a(mu_a);
        LockGuard b(mu_b);
        ++shared;
      },
      "locker-ab");
  DetThread t2(
      [&] {
#ifdef PPROX_CHECK_SELFTEST
        // Pre-fix shape: inverted order deadlocks when t1 holds mu_a and
        // this thread holds mu_b.
        LockGuard b(mu_b);
        LockGuard a(mu_a);
#else
        // Fixed shape: the single global order mu_a -> mu_b.
        LockGuard a(mu_a);
        LockGuard b(mu_b);
#endif
        ++shared;
      },
      "locker-2");
  t1.join();
  t2.join();
  det::model_check(shared == 2, "both critical sections must run");
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

struct ModelEntry {
  const char* name;
  const char* summary;
  void (*body)();
};

constexpr ModelEntry kModels[] = {
    {"shuffle",
     "ShuffleQueue: no action lost/duplicated; flush at exactly S or timer",
     &model_shuffle},
    {"mpmc", "MpmcQueue: linearizable against a bounded FIFO spec",
     &model_mpmc},
    {"pool", "ThreadPool: no accepted task lost across shutdown()",
     &model_pool},
    {"rotation",
     "Key rotation: no stale-key pseudonymization, no use-after-rotate",
     &model_rotation},
    {"lockorder",
     "Two-mutex global order: inverted acquisition (selftest) deadlocks",
     &model_lockorder},
};

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: pprox_check --model NAME [options]\n"
      "       pprox_check --list-models\n"
      "\n"
      "options:\n"
      "  --model NAME            model to explore (see --list-models)\n"
      "  --mode dfs|pct          bounded exhaustive DFS (default) or PCT\n"
      "                          randomised-priority sampling\n"
      "  --preemption-bound N    DFS: max preemptions per execution (default 2)\n"
      "  --no-sleep-sets         DFS: disable sleep-set pruning\n"
      "  --max-steps N           truncate executions longer than N steps\n"
      "  --max-execs N           stop after N executions (0 = unbounded)\n"
      "  --seed N                PCT: random seed (default 1)\n"
      "  --pct-iters N           PCT: number of executions (default 500)\n"
      "  --pct-depth N           PCT: bug depth d (d-1 priority change points)\n"
      "  --replay T0,T1,...      replay this exact schedule first, then\n"
      "                          fall back to the selected mode\n"
      "  -v, --verbose           per-execution progress\n"
      "\n"
      "exit status: 0 all explored schedules pass; 1 invariant violation,\n"
      "deadlock or nontermination (trace printed); 2 usage error.\n");
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  det::Options options;
  const ModelEntry* model = nullptr;
  bool mode_set = false;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "pprox_check: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-models") {
      std::printf("models:\n");
      for (const ModelEntry& entry : kModels) {
        std::printf("  %-9s %s\n", entry.name, entry.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--model") {
      const char* name = need_value(i++);
      for (const ModelEntry& entry : kModels) {
        if (std::strcmp(entry.name, name) == 0) model = &entry;
      }
      if (model == nullptr) {
        std::fprintf(stderr, "pprox_check: unknown model '%s'\n", name);
        return 2;
      }
    } else if (arg == "--mode") {
      const std::string mode = need_value(i++);
      if (mode == "dfs") {
        options.mode = det::Options::Mode::kDfs;
      } else if (mode == "pct") {
        options.mode = det::Options::Mode::kPct;
      } else {
        std::fprintf(stderr, "pprox_check: unknown mode '%s'\n", mode.c_str());
        return 2;
      }
      mode_set = true;
    } else if (arg == "--preemption-bound") {
      std::uint64_t v;
      if (!parse_u64(need_value(i++), &v)) return 2;
      options.preemption_bound = static_cast<int>(v);
    } else if (arg == "--no-sleep-sets") {
      options.sleep_sets = false;
    } else if (arg == "--max-steps") {
      if (!parse_u64(need_value(i++), &options.max_steps)) return 2;
    } else if (arg == "--max-execs") {
      if (!parse_u64(need_value(i++), &options.max_execs)) return 2;
    } else if (arg == "--seed") {
      if (!parse_u64(need_value(i++), &options.seed)) return 2;
    } else if (arg == "--pct-iters") {
      std::uint64_t v;
      if (!parse_u64(need_value(i++), &v)) return 2;
      options.pct_iters = static_cast<int>(v);
    } else if (arg == "--pct-depth") {
      std::uint64_t v;
      if (!parse_u64(need_value(i++), &v)) return 2;
      options.pct_depth = static_cast<int>(v);
    } else if (arg == "--replay") {
      const char* spec = need_value(i++);
      std::uint64_t v = 0;
      const char* p = spec;
      while (*p != '\0') {
        char* end = nullptr;
        v = std::strtoull(p, &end, 10);
        if (end == p) {
          std::fprintf(stderr, "pprox_check: bad --replay schedule '%s'\n",
                       spec);
          return 2;
        }
        options.replay.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
        if (*end != '\0' && *end != ',') {
          std::fprintf(stderr, "pprox_check: bad --replay schedule '%s'\n",
                       spec);
          return 2;
        }
      }
    } else if (arg == "-v" || arg == "--verbose") {
      options.verbose = true;
    } else {
      std::fprintf(stderr, "pprox_check: unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }

  if (model == nullptr) {
    print_usage(stderr);
    return 2;
  }
  options.model_name = model->name;
  if (!options.replay.empty() && !mode_set) {
    // A bare --replay means "just run this one schedule".
    options.max_execs = 1;
  }

#ifdef PPROX_CHECK_SELFTEST
  std::printf("pprox_check: SELFTEST build — pre-fix faults injected, "
              "every model is expected to FAIL\n");
#endif

  const det::Report report = det::explore(options, model->body);
  std::printf(
      "pprox_check: model=%s mode=%s executions=%llu steps=%llu "
      "truncated=%llu exhaustive=%s\n",
      model->name, options.mode == det::Options::Mode::kDfs ? "dfs" : "pct",
      static_cast<unsigned long long>(report.executions),
      static_cast<unsigned long long>(report.total_steps),
      static_cast<unsigned long long>(report.truncated),
      report.exhaustive ? "yes" : "no");
  std::printf("PASS: all explored interleavings satisfy the %s invariants\n",
              model->name);
  return 0;
}
