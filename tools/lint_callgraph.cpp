// Shared call-graph front end for pprox_lint whole-program passes.
// See lint_callgraph.hpp for the contract; the parser here is the --hotpath
// pass's original scope-stack parser with the leaf/call vocabulary removed:
// it only records function identity, annotations, and body token spans.
#include "lint_callgraph.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>

namespace cg {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_tok(const std::string& t) {
  return !t.empty() &&
         (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_');
}

std::vector<std::string> code_lines(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  bool in_directive = false;
  for (const std::string& line : raw) {
    std::string code;
    code.reserve(line.size());
    if (in_directive) {  // continuation of a preprocessor line
      in_directive = !line.empty() && line.back() == '\\';
      out.emplace_back();
      continue;
    }
    std::size_t first = 0;
    while (first < line.size() &&
           std::isspace(static_cast<unsigned char>(line[first])) != 0) {
      ++first;
    }
    if (!in_block && first < line.size() && line[first] == '#') {
      in_directive = !line.empty() && line.back() == '\\';
      out.emplace_back();
      continue;
    }
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            break;
          }
          ++i;
        }
        code.push_back(quote);
        code.push_back(quote);
        continue;
      }
      code.push_back(c);
    }
    out.push_back(std::move(code));
  }
  return out;
}

std::vector<Tok> tokenize(const std::vector<std::string>& code) {
  std::vector<Tok> toks;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& s = code[li];
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (is_ident_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
        std::size_t j = i;
        while (j < s.size() && is_ident_char(s[j])) ++j;
        toks.push_back({s.substr(i, j - i), li + 1});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i;
        while (j < s.size() && (is_ident_char(s[j]) || s[j] == '.')) ++j;
        toks.push_back({s.substr(i, j - i), li + 1});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        toks.push_back({"::", li + 1});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
        toks.push_back({"->", li + 1});
        i += 2;
        continue;
      }
      if (c == '"' && i + 1 < s.size() && s[i + 1] == '"') {
        toks.push_back({"\"\"", li + 1});
        i += 2;
        continue;
      }
      if (c == '\'' && i + 1 < s.size() && s[i + 1] == '\'') {
        toks.push_back({"''", li + 1});
        i += 2;
        continue;
      }
      toks.push_back({std::string(1, c), li + 1});
      ++i;
    }
  }
  return toks;
}

std::string last_component(const std::string& qname) {
  const std::size_t sep = qname.rfind("::");
  return sep == std::string::npos ? qname : qname.substr(sep + 2);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::map<std::size_t, Suppression> scan_suppressions(
    const std::vector<std::string>& raw, const std::string& marker,
    unsigned (*from_name)(const std::string&)) {
  std::map<std::size_t, Suppression> out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::size_t pos = raw[i].find(marker);
    if (pos == std::string::npos) continue;
    const std::size_t open = pos + marker.size();
    const std::size_t close = raw[i].find(')', open);
    if (close == std::string::npos) continue;
    Suppression s;
    std::string inside = raw[i].substr(open, close - open);
    std::replace(inside.begin(), inside.end(), ',', ' ');
    std::istringstream iss(inside);
    std::string name;
    while (iss >> name) s.effects |= from_name(name);
    // Mandatory ": <nonempty reason>" after the closing parenthesis.
    std::size_t after = close + 1;
    while (after < raw[i].size() &&
           std::isspace(static_cast<unsigned char>(raw[i][after])) != 0) {
      ++after;
    }
    if (after >= raw[i].size() || raw[i][after] != ':') {
      s.bare = true;
    } else {
      ++after;
      while (after < raw[i].size() &&
             std::isspace(static_cast<unsigned char>(raw[i][after])) != 0) {
        ++after;
      }
      if (after >= raw[i].size()) s.bare = true;
    }
    if (s.bare) s.effects = 0;  // a rejected suppression suppresses nothing
    out.emplace(i + 1, s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

Fn& Graph::get_or_create(const std::string& qname) {
  const auto it = index.find(qname);
  if (it != index.end()) return fns[static_cast<std::size_t>(it->second)];
  index.emplace(qname, static_cast<int>(fns.size()));
  Fn f;
  f.qname = qname;
  const std::size_t sep = qname.rfind("::");
  f.cls = sep == std::string::npos ? std::string() : qname.substr(0, sep);
  fns.push_back(std::move(f));
  return fns.back();
}

void Graph::merge_decl_annotations() {
  for (const auto& [qname, ann] : decl_annotations) {
    get_or_create(qname).annotations |= ann;
  }
}

// ---------------------------------------------------------------------------
// Parser: scope tracking and function-span extraction.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(int tu, Graph& graph)
      : tu_(tu), toks_(graph.tus[static_cast<std::size_t>(tu)].toks),
        file_(graph.tus[static_cast<std::size_t>(tu)].path), graph_(graph) {}

  void parse() {
    while (i_ < toks_.size()) {
      if (in_body()) {
        body_token();
      } else {
        decl_token();
      }
    }
  }

 private:
  enum class ScopeKind { kNamespace, kClass, kFunction, kBlock };
  struct Scope {
    ScopeKind kind;
    std::string name;
    int fn = -1;               ///< graph index for kFunction scopes
    std::size_t body_begin = 0;  ///< first body token for kFunction scopes
  };

  bool in_body() const {
    return !scopes_.empty() && (scopes_.back().kind == ScopeKind::kFunction ||
                                scopes_.back().kind == ScopeKind::kBlock);
  }

  std::string scope_prefix() const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (s.kind != ScopeKind::kNamespace && s.kind != ScopeKind::kClass) {
        continue;
      }
      if (s.name.empty()) continue;  // anonymous namespace / struct
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  const Tok& cur() const { return toks_[i_]; }
  const std::string& tok(std::size_t off = 0) const {
    static const std::string kEnd;
    return i_ + off < toks_.size() ? toks_[i_ + off].text : kEnd;
  }
  bool at_end() const { return i_ >= toks_.size(); }

  /// Skips a balanced group starting at the current opener token.
  void skip_balanced(const char* open, const char* close) {
    int depth = 0;
    while (!at_end()) {
      if (tok() == open) ++depth;
      if (tok() == close && --depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  /// Skips template angle brackets; bails out (going nowhere) if the '<'
  /// turns out to be a comparison (unbalanced before ';' or ')').
  void skip_angles() {
    const std::size_t start = i_;
    int depth = 0;
    std::size_t steps = 0;
    while (!at_end() && steps++ < 256) {
      const std::string& t = tok();
      if (t == "<") ++depth;
      if (t == ">" && --depth == 0) {
        ++i_;
        return;
      }
      if (t == ";" || t == "{" || t == "}") break;  // not a template list
      ++i_;
    }
    i_ = start + 1;
  }

  /// Consumes to the end of the current statement: the first ';' at bracket
  /// depth 0. Stops (without consuming) at a '}' at depth 0 so enclosing
  /// scopes still close properly.
  void skip_statement() {
    int depth = 0;
    while (!at_end()) {
      const std::string& t = tok();
      if (depth == 0 && t == ";") {
        ++i_;
        return;
      }
      if (depth == 0 && t == "}") return;
      if (t == "{" || t == "(" || t == "[") ++depth;
      if (t == "}" || t == ")" || t == "]") --depth;
      ++i_;
    }
  }

  // --- declaration scope ---------------------------------------------------

  void decl_token() {
    const std::string& t = tok();
    if (t == "}") {
      if (!scopes_.empty()) scopes_.pop_back();
      ++i_;
      if (tok() == ";") ++i_;
      return;
    }
    if (t == ";") {
      pending_ = 0;
      ++i_;
      return;
    }
    if (t == "namespace") {
      parse_namespace();
      return;
    }
    if (t == "template") {
      ++i_;
      if (tok() == "<") skip_angles();
      return;
    }
    if (t == "using" || t == "typedef" || t == "friend" ||
        t == "static_assert") {
      skip_statement();
      return;
    }
    if (t == "extern") {
      if (tok(1) == "\"\"" && tok(2) == "{") {
        scopes_.push_back({ScopeKind::kNamespace, "", -1, 0});
        i_ += 3;
        return;
      }
      ++i_;
      return;
    }
    if (t == "class" || t == "struct" || t == "union" || t == "enum") {
      parse_class();
      return;
    }
    if ((t == "public" || t == "private" || t == "protected") &&
        tok(1) == ":") {
      // Consume the access specifier so the first member after it dispatches
      // normally — otherwise an annotation opening that member is swallowed
      // as part of one long declaration statement.
      i_ += 2;
      return;
    }
    if (t == "PPROX_HOT") {
      pending_ |= kAnnHot;
      ++i_;
      return;
    }
    if (t == "PPROX_NONBLOCKING") {
      pending_ |= kAnnNonblocking;
      ++i_;
      return;
    }
    if (t == "PPROX_ECALL_BOUNDARY") {
      pending_ |= kAnnEcall;
      ++i_;
      return;
    }
    parse_decl_or_def();
  }

  void parse_namespace() {
    ++i_;  // namespace
    std::string name;
    while (!at_end() && (is_ident_tok(tok()) || tok() == "::")) {
      name += tok();
      ++i_;
    }
    if (tok() == "{") {
      scopes_.push_back({ScopeKind::kNamespace, name, -1, 0});
      ++i_;
    } else {
      skip_statement();  // namespace alias or malformed
    }
  }

  void parse_class() {
    ++i_;  // class/struct/union/enum
    if (tok() == "class" || tok() == "struct") ++i_;  // enum class
    while (tok() == "[") skip_balanced("[", "]");     // attributes
    if (tok() == "alignas" && tok(1) == "(") {
      ++i_;
      skip_balanced("(", ")");
    }
    std::string name;
    if (is_ident_tok(tok())) {
      name = tok();
      ++i_;
    }
    // Scan to the body or the end of a forward declaration.
    while (!at_end()) {
      const std::string& t = tok();
      if (t == ";") {
        ++i_;
        return;  // forward declaration
      }
      if (t == "{") {
        scopes_.push_back({ScopeKind::kClass, name, -1, 0});
        ++i_;
        return;
      }
      if (t == "(") {
        skip_balanced("(", ")");
        continue;
      }
      if (t == "<") {
        skip_angles();
        continue;
      }
      if (t == "}") return;  // malformed; let the scope close
      ++i_;
    }
  }

  /// Generic declaration statement at namespace/class scope: recognizes
  /// `name(args) [qualifiers] {body}` as a function definition and
  /// `name(args) [qualifiers];` as a declaration (annotation carrier).
  void parse_decl_or_def() {
    std::string name;
    std::size_t name_line = 0;
    bool name_fresh = false;  // the token just consumed ended the name path
    bool tilde = false;
    while (!at_end()) {
      const std::string& t = tok();
      if (t == ";") {
        pending_ = 0;
        ++i_;
        return;
      }
      if (t == "}") return;
      if (t == "{") {  // brace init or stray block at decl scope
        skip_balanced("{", "}");
        continue;
      }
      if (t == "=") {
        ++i_;
        if (tok() == "default" || tok() == "delete" || tok() == "0") {
          record_declaration(name);
        }
        skip_statement();
        pending_ = 0;
        return;
      }
      if (t == "~") {
        tilde = true;
        name_fresh = false;
        ++i_;
        continue;
      }
      if (t == "operator") {
        name = "operator";
        name_line = cur().line;
        ++i_;
        while (!at_end() && tok() != "(" && tok() != ";" && tok() != "{") {
          name += tok();
          ++i_;
        }
        if (name == "operator" && tok() == "(" && tok(1) == ")") {
          name += "()";
          i_ += 2;
        }
        name_fresh = true;
        continue;
      }
      if (is_ident_tok(t)) {
        name = tilde ? "~" + t : t;
        tilde = false;
        name_line = cur().line;
        ++i_;
        while (tok() == "::" && is_ident_tok(tok(1))) {
          name += "::" + tok(1);
          i_ += 2;
        }
        name_fresh = true;
        continue;
      }
      if (t == "<") {
        skip_angles();
        name_fresh = false;
        continue;
      }
      if (t == "(" && name_fresh && !name.empty()) {
        skip_balanced("(", ")");
        if (finish_signature(name, name_line)) return;
        continue;
      }
      if (t == "(") {
        skip_balanced("(", ")");
        name_fresh = false;
        continue;
      }
      if (t == "[") {
        skip_balanced("[", "]");
        name_fresh = false;
        continue;
      }
      name_fresh = false;
      ++i_;
    }
  }

  /// After `name(...)`: skims qualifiers and decides definition vs
  /// declaration. Returns true when the statement was fully handled.
  bool finish_signature(const std::string& name, std::size_t name_line) {
    while (!at_end()) {
      const std::string& t = tok();
      if (t == "{") {
        register_definition(name, name_line);
        ++i_;
        return true;
      }
      if (t == ";") {
        record_declaration(name);
        pending_ = 0;
        ++i_;
        return true;
      }
      if (t == "=") {
        ++i_;
        if (tok() == "default" || tok() == "delete" || tok() == "0") {
          record_declaration(name);
        }
        skip_statement();
        pending_ = 0;
        return true;
      }
      if (t == ":") {  // constructor initializer list
        ++i_;
        while (!at_end()) {
          if (tok() == "{") break;  // body
          if (tok() == "(") {
            skip_balanced("(", ")");
            continue;
          }
          if (tok() == "<") {
            skip_angles();
            continue;
          }
          if (is_ident_tok(tok()) || tok() == "::" || tok() == ",") {
            ++i_;
            continue;
          }
          if (is_ident_tok(tok(0)) && tok(1) == "{") {
            ++i_;
            continue;
          }
          // Brace init of a member: IDENT was consumed above, so a '{' here
          // after a ',' chain is an init argument list, not the body — but
          // we cannot tell; treat "{ preceded by ident-consumed" as init.
          break;
        }
        if (tok() == "{") {
          // Either the body or a member brace-init. Heuristic: a body brace
          // is followed by statement-ish tokens; a member init brace is
          // followed (after its balanced group) by ',' or '{'. Resolve by
          // balanced lookahead.
          const std::size_t save = i_;
          skip_balanced("{", "}");
          if (tok() == "," || tok() == "{") {
            // It was an init brace; continue skimming from after it.
            if (tok() == ",") ++i_;
            return finish_signature(name, name_line);
          }
          // It was the body: rewind and register.
          i_ = save;
          register_definition(name, name_line);
          ++i_;
          return true;
        }
        skip_statement();
        pending_ = 0;
        return true;
      }
      if (t == ",") {
        // Multiple declarators (`int f(), g;`) or a parenthesized variable
        // initializer — treat as a plain declaration statement.
        record_declaration(name);
        skip_statement();
        pending_ = 0;
        return true;
      }
      if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
          t == "mutable" || t == "&" || t == "&&" || t == "throw") {
        ++i_;
        if (tok() == "(") skip_balanced("(", ")");
        continue;
      }
      if (t == "->") {  // trailing return type
        ++i_;
        while (!at_end() && (is_ident_tok(tok()) || tok() == "::" ||
                             tok() == "*" || tok() == "&" || tok() == "const")) {
          if (tok(1) == "<") {
            ++i_;
            skip_angles();
          } else {
            ++i_;
          }
        }
        continue;
      }
      if (t == "[") {
        skip_balanced("[", "]");
        continue;
      }
      if (is_ident_tok(t)) {
        // Unknown trailing macro qualifier, e.g. PPROX_EXCLUDES(mutex_).
        ++i_;
        if (tok() == "(") skip_balanced("(", ")");
        continue;
      }
      // Anything else: not a function after all.
      skip_statement();
      pending_ = 0;
      return true;
    }
    return true;
  }

  void record_declaration(const std::string& name) {
    if (pending_ == 0 || name.empty()) return;
    std::string qn = scope_prefix();
    if (!qn.empty()) qn += "::";
    qn += name;
    graph_.decl_annotations[qn] |= pending_;
    pending_ = 0;
  }

  void register_definition(const std::string& name, std::size_t line) {
    std::string qn = scope_prefix();
    if (!qn.empty()) qn += "::";
    qn += name;
    Fn& f = graph_.get_or_create(qn);
    if (f.file.empty()) {
      f.file = file_;
      f.line = line;
    }
    f.annotations |= pending_;
    pending_ = 0;
    // i_ currently points at the body '{'; the span begins after it.
    scopes_.push_back(
        {ScopeKind::kFunction, name, graph_.index.at(qn), i_ + 1});
  }

  // --- function bodies -----------------------------------------------------

  /// Inside a body the parser only tracks brace nesting; everything else is
  /// a pass's business, replayed later over the recorded span.
  void body_token() {
    const std::string& t = tok();
    if (t == "{") {
      scopes_.push_back({ScopeKind::kBlock, "", -1, 0});
      ++i_;
      return;
    }
    if (t == "}") {
      if (!scopes_.empty()) {
        const Scope closing = scopes_.back();
        scopes_.pop_back();
        if (closing.kind == ScopeKind::kFunction && closing.fn >= 0) {
          graph_.fns[static_cast<std::size_t>(closing.fn)].bodies.push_back(
              {tu_, closing.body_begin, i_});
        }
      }
      ++i_;
      return;
    }
    ++i_;
  }

  int tu_;
  const std::vector<Tok>& toks_;
  std::string file_;
  Graph& graph_;
  std::vector<Scope> scopes_;
  std::size_t i_ = 0;
  unsigned pending_ = 0;
};

}  // namespace

void Graph::add_tu(std::string path, std::vector<Tok> toks) {
  const int tu = static_cast<int>(tus.size());
  tus.push_back({std::move(path), std::move(toks)});
  Parser parser(tu, *this);
  parser.parse();
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

std::map<std::string, std::vector<int>> index_by_last(const Graph& g) {
  std::map<std::string, std::vector<int>> by_last;
  for (std::size_t i = 0; i < g.fns.size(); ++i) {
    by_last[last_component(g.fns[i].qname)].push_back(static_cast<int>(i));
  }
  return by_last;
}

std::vector<int> resolve_name(
    const Graph& g, const std::map<std::string, std::vector<int>>& by_last,
    const Fn& caller, const std::string& name) {
  std::vector<int> targets;
  if (name.find("::") != std::string::npos) {
    // Qualified: exact or suffix match against scanned names.
    for (std::size_t t = 0; t < g.fns.size(); ++t) {
      const std::string& qn = g.fns[t].qname;
      if (qn == name ||
          (qn.size() > name.size() + 2 &&
           qn.compare(qn.size() - name.size() - 2, 2, "::") == 0 &&
           qn.compare(qn.size() - name.size(), name.size(), name) == 0)) {
        targets.push_back(static_cast<int>(t));
      }
    }
  } else {
    // Unqualified or member call: prefer the caller's own class, else fall
    // back to every scanned function with this name (the documented
    // virtual-call / unknown-receiver policy).
    if (!caller.cls.empty()) {
      const auto it = g.index.find(caller.cls + "::" + name);
      if (it != g.index.end()) targets.push_back(it->second);
    }
    if (targets.empty()) {
      const auto it = by_last.find(name);
      if (it != by_last.end()) targets = it->second;
    }
  }
  return targets;
}

// ---------------------------------------------------------------------------
// Keyed baselines and report tail
// ---------------------------------------------------------------------------

bool parse_keyed_baseline(const std::string& path, const std::string& anchor,
                          std::map<std::string, std::string>& entries) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::size_t anchor_pos = text.find("\"" + anchor + "\"");
  if (anchor_pos == std::string::npos) return false;
  std::size_t pos = text.find('[', anchor_pos);
  if (pos == std::string::npos) return false;

  auto read_string = [&text](std::size_t from, std::string& out,
                             std::size_t& end) {
    const std::size_t q1 = text.find('"', from);
    if (q1 == std::string::npos) return false;
    std::size_t q2 = q1 + 1;
    while (q2 < text.size() && text[q2] != '"') {
      if (text[q2] == '\\') ++q2;
      ++q2;
    }
    if (q2 >= text.size()) return false;
    out = text.substr(q1 + 1, q2 - q1 - 1);
    end = q2 + 1;
    return true;
  };

  while (true) {
    const std::size_t key_pos = text.find("\"key\"", pos);
    if (key_pos == std::string::npos) break;
    const std::size_t colon = text.find(':', key_pos + 5);
    if (colon == std::string::npos) break;
    std::string key;
    std::size_t after = 0;
    if (!read_string(colon + 1, key, after)) break;
    std::string why;
    const std::size_t why_pos = text.find("\"why\"", after);
    const std::size_t next_key = text.find("\"key\"", after);
    if (why_pos != std::string::npos &&
        (next_key == std::string::npos || why_pos < next_key)) {
      const std::size_t wcolon = text.find(':', why_pos + 5);
      std::size_t wend = 0;
      if (wcolon != std::string::npos) read_string(wcolon + 1, why, wend);
    }
    entries[key] = why;
    pos = after;
  }
  return true;
}

bool write_keyed_baseline(const std::string& path, const std::string& anchor,
                          const std::map<std::string, std::string>& entries) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"" << anchor << "\": [";
  bool first = true;
  for (const auto& [key, why] : entries) {
    out << (first ? "" : ",") << "\n    {\"key\": \"" << json_escape(key)
        << "\",\n     \"why\": \"" << json_escape(why) << "\"}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return true;
}

namespace {

void print_json(const std::string& mode, const std::vector<Finding>& findings,
                std::size_t files) {
  std::cout << "{\n  \"mode\": \"" << mode << "\",\n  \"files\": " << files
            << ",\n  \"total\": " << findings.size() << ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    std::cout << (first ? "" : ",") << "\n    {\"path\": \""
              << json_escape(f.path) << "\", \"line\": " << f.line
              << ", \"rule\": \"" << f.rule << "\", \"key\": \""
              << json_escape(f.key) << "\", \"chain\": \""
              << json_escape(f.chain) << "\", \"message\": \""
              << json_escape(f.message) << "\"}";
    first = false;
  }
  std::cout << (first ? "" : "\n  ") << "]\n}\n";
}

}  // namespace

int report(const ReportSpec& spec, std::vector<Finding>& findings,
           std::size_t files) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.path, a.line, a.key) <
                            std::tie(b.path, b.line, b.key);
                   });

  if (!spec.baseline_write.empty()) {
    std::map<std::string, std::string> old_whys;
    // Best-effort carry-over of existing justifications by key.
    parse_keyed_baseline(spec.baseline_write, spec.anchor, old_whys);
    std::map<std::string, std::string> entries;
    for (const Finding& f : findings) {
      if (f.rule == spec.bare_rule) continue;  // never baselinable
      const auto it = old_whys.find(f.key);
      entries[f.key] = it != old_whys.end() && !it->second.empty()
                           ? it->second
                           : spec.default_why;
    }
    if (!write_keyed_baseline(spec.baseline_write, spec.anchor, entries)) {
      std::cerr << "pprox_lint: cannot write baseline " << spec.baseline_write
                << "\n";
      return 2;
    }
    std::cout << "pprox_lint: wrote " << entries.size() << " " << spec.anchor
              << " baseline entr" << (entries.size() == 1 ? "y" : "ies")
              << " to " << spec.baseline_write << "\n";
    return 0;
  }

  if (spec.json) {
    print_json(spec.mode, findings, files);
  } else if (spec.baseline.empty()) {
    for (const Finding& f : findings) {
      std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }

  if (!spec.baseline.empty()) {
    std::map<std::string, std::string> base;
    if (!parse_keyed_baseline(spec.baseline, spec.anchor, base)) {
      std::cerr << "pprox_lint: cannot parse " << spec.anchor << " baseline "
                << spec.baseline << "\n";
      return 2;
    }
    std::map<std::string, int> current;
    bool regressed = false;
    for (const Finding& f : findings) {
      current[f.key] = 1;
      const bool bare = f.rule == spec.bare_rule;
      if (!bare && base.count(f.key) != 0) continue;  // ratcheted, silent
      // New key (or a bare suppression, which is never baselinable): print
      // the full finding — in ratchet mode only regressions make noise.
      if (!spec.json) {
        std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
      }
      std::cerr << "pprox_lint: REGRESSION: "
                << (bare ? "bare suppression is never baselinable: "
                         : "new " + spec.what + " violation not in baseline: ")
                << f.key << "\n";
      regressed = true;
    }
    std::size_t stale = 0;
    for (const auto& [key, why] : base) {
      (void)why;
      if (current.count(key) == 0) {
        std::cerr << "pprox_lint: note: baseline entry no longer fires "
                     "(tighten with --baseline-write): "
                  << key << "\n";
        ++stale;
      }
    }
    if (regressed) return 1;
    if (!spec.json) {
      std::cout << "pprox_lint: " << files << " file(s), " << findings.size()
                << " " << spec.what << " finding(s), all within baseline";
      if (stale != 0) {
        std::cout << " (" << stale << " stale entr"
                  << (stale == 1 ? "y" : "ies") << ")";
      }
      std::cout << "\n";
    }
    return 0;
  }

  if (!findings.empty()) {
    std::cerr << findings.size() << " " << spec.what << " finding(s) in "
              << files << " file(s)\n";
    return 1;
  }
  if (!spec.json) {
    std::cout << "pprox_lint: " << files << " file(s) " << spec.what
              << " clean\n";
  }
  return 0;
}

}  // namespace cg
