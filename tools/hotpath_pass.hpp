// Interface between the pprox_lint driver (pprox_lint.cpp) and the
// hot-path call-graph pass (pprox_lint_hotpath.cpp). The pass is a separate
// TU because it carries its own parser and graph machinery; the driver only
// forwards the already-collected file list and the baseline flags.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace hotpath {

struct Options {
  bool json = false;
  std::string baseline;       ///< compare findings against this file
  std::string baseline_write; ///< regenerate this baseline file and exit 0
  std::vector<std::filesystem::path> inputs;
};

/// Runs the hot-path discipline pass. Exit-code contract matches the
/// driver: 0 clean / within baseline, 1 findings or baseline regressions,
/// 2 usage or IO error (unreadable input, unparseable baseline).
int run(const Options& opts);

}  // namespace hotpath
