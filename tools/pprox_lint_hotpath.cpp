// pprox_lint --hotpath — call-graph hot-path discipline pass (DESIGN.md §11).
//
// Statically enforces the performance discipline the paper's proxy depends
// on: annotated request-path functions must stay allocation-free,
// non-blocking, and bounded. The pass
//
//   1. parses every TU via the shared call-graph front end
//      (lint_callgraph.hpp) and replays each function's body span against
//      the hot-path leaf vocabulary, recording *leaf effects* and *call
//      edges*;
//   2. resolves calls to scanned functions by qualified name (best-effort:
//      unqualified calls prefer the caller's class, then fall back to every
//      scanned function with that name — which is also how virtual calls
//      resolve to every override; see §11.2 for the soundness limits);
//   3. propagates effect labels (alloc / block / throw / recursion) over the
//      graph to a fixpoint, with recursion cycles detected via SCCs;
//   4. reports, for every PPROX_HOT / PPROX_NONBLOCKING /
//      PPROX_ECALL_BOUNDARY function, the full call chain to each reachable
//      forbidden leaf.
//
// Leaf effect patterns (the lattice bottom):
//   alloc  `new`, malloc/calloc/realloc/strdup, make_unique/make_shared,
//          growing-container members (push_back/emplace*/insert/resize/
//          reserve/append/assign/substr), std::to_string, std::string/
//          std::vector/Bytes construction, std::function (type-erased
//          capture may heap-allocate).
//   block  LockGuard/UniqueLock/SharedLock construction, .lock()/.wait*()/
//          .join(), blocking syscalls (recv/send/poll/epoll_wait/accept/
//          connect/select, ::read/::write when globally qualified), sleeps.
//   throw  `throw` expressions.
//   recursion  membership in a call-graph cycle (SCC or self-edge).
//
// Suppression (on the offending leaf or call line, reason mandatory):
//   buf.push_back(b);  // PPROX-HOTPATH-OK(alloc): reserved in ctor
// A suppression on a *call* line stops the named effects from propagating
// through that call; on a *leaf* line it drops the leaf itself. A bare
// suppression (no ": reason") is itself a finding and suppresses nothing.
//
// Baseline ratchet: --baseline FILE compares finding *keys*
// (rule|root|leaf|token — line-number free, so they survive unrelated
// edits) against tools/hotpath_baseline.json; only new keys fail, stale
// keys are reported so the baseline can shrink. --baseline-write FILE
// regenerates the file, carrying over existing "why" justifications.
#include "hotpath_pass.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "lint_callgraph.hpp"

namespace fs = std::filesystem;

namespace hotpath {
namespace {

using cg::Finding;

// ---------------------------------------------------------------------------
// Effects.
// ---------------------------------------------------------------------------

enum Effect : unsigned {
  kAlloc = 1u << 0,
  kBlock = 1u << 1,
  kThrow = 1u << 2,
  kRecur = 1u << 3,
};
constexpr unsigned kAllEffects = kAlloc | kBlock | kThrow | kRecur;

const char* effect_name(unsigned e) {
  switch (e) {
    case kAlloc: return "alloc";
    case kBlock: return "block";
    case kThrow: return "throw";
    case kRecur: return "recursion";
  }
  return "?";
}

unsigned effect_from_name(const std::string& name) {
  if (name == "alloc") return kAlloc;
  if (name == "block") return kBlock;
  if (name == "throw") return kThrow;
  if (name == "recursion") return kRecur;
  return 0;
}

/// One leaf effect inside a function body.
struct Leaf {
  unsigned kind = 0;
  std::string token;  ///< what matched, e.g. "new", "push_back", "::poll"
  std::size_t line = 0;
};

/// One call site inside a function body.
struct CallSite {
  std::string name;  ///< as written, "::" joined, leading "::" stripped
  bool member = false;
  bool global = false;  ///< written with a leading "::"
  std::size_t line = 0;
  unsigned mask = kAllEffects;  ///< effects allowed to propagate through
};

/// Pass-local per-function state, parallel to cg::Graph::fns.
struct Info {
  std::vector<Leaf> leaves;
  std::vector<CallSite> calls;
  std::vector<std::pair<int, unsigned>> edges;  ///< (callee index, mask)
  unsigned own = 0;    ///< union of leaf kinds
  unsigned reach = 0;  ///< fixpoint of own ∪ masked callee reach
};

struct Pass {
  cg::Graph g;
  std::vector<Info> info;
  std::vector<Finding> bare_findings;
  /// file -> line -> suppressed-effects mask. Kept past extraction because
  /// recursion leaves are minted in mark_recursion and anchor to the
  /// definition line.
  std::map<std::string, std::map<std::size_t, unsigned>> line_suppressions;
};

// ---------------------------------------------------------------------------
// Leaf pattern tables (documented in the header comment and DESIGN.md §11).
// ---------------------------------------------------------------------------

const std::set<std::string> kAllocCallNames = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "posix_memalign", "make_unique", "make_shared", "to_string",
    "push_back", "emplace_back", "emplace_front", "emplace", "insert",
    "resize", "reserve", "append", "assign", "substr", "stoi", "stol",
    "stoul", "stoull", "stod",
};

/// Allocating type constructions recognized as direct calls (`Bytes(...)`)
/// or declarations with arguments (`Bytes b(n, 0);`).
const std::set<std::string> kAllocTypeNames = {
    "Bytes", "std::string", "std::vector", "std::deque", "std::map",
    "std::set", "std::unordered_map", "std::unordered_set", "std::list",
    "std::ostringstream", "std::istringstream", "std::stringstream",
};

/// Blocking calls in any syntactic form.
const std::set<std::string> kBlockCallNames = {
    "lock", "lock_shared", "wait", "wait_for", "wait_until", "join",
    "sleep_for", "sleep_until", "sleep", "usleep", "nanosleep", "recv",
    "send", "sendto", "recvfrom", "poll", "ppoll", "select", "pselect",
    "epoll_wait", "epoll_pwait", "accept", "accept4", "connect", "fsync",
    "fdatasync", "flock", "getline",
};

/// Blocking only when written globally qualified (`::read`): the bare names
/// are too common as method names to flag unconditionally.
const std::set<std::string> kBlockGlobalOnlyNames = {
    "read", "write", "open", "pread", "pwrite", "readv", "writev",
};

/// RAII lock types whose construction acquires a mutex.
const std::set<std::string> kLockTypeNames = {"LockGuard", "UniqueLock",
                                              "SharedLock"};

/// Member calls with these names never resolve to scanned functions: they
/// are overwhelmingly STL/atomic/smart-pointer accessors on a data member
/// (`samples_.clear()`, `value_.load()`, `ptr.get()`), and resolving them
/// by last component manufactures self-cycles (Atomic::load "calling"
/// itself) and cross-class ghost edges. The cost is that a *scanned*
/// function with one of these names called through a receiver is invisible
/// to the analyzer — a documented soundness limit (DESIGN.md §11.3); such
/// functions are still analyzed as roots/callees of qualified calls.
const std::set<std::string> kNeutralMemberNames = {
    "load",  "store", "exchange", "fetch_add", "fetch_sub",
    "compare_exchange_weak", "compare_exchange_strong", "clear", "empty",
    "get",   "size",  "length",   "begin",     "end",
    "data",  "c_str", "front",    "back",      "top",
    "count", "contains", "erase",
};

const std::set<std::string> kNotACall = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "else", "do", "case", "goto", "new", "delete", "throw", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "decltype", "typeid",
    "co_await", "co_return", "co_yield", "noexcept", "alignas",
    "static_assert", "defined", "assert", "PPROX_HOT", "PPROX_NONBLOCKING",
    "PPROX_ECALL_BOUNDARY",
};

// ---------------------------------------------------------------------------
// Body replay: leaf and call-site extraction over recorded spans.
// ---------------------------------------------------------------------------

unsigned line_mask(const Pass& p, const std::string& file, std::size_t line) {
  const auto fit = p.line_suppressions.find(file);
  if (fit == p.line_suppressions.end()) return kAllEffects;
  const auto lit = fit->second.find(line);
  if (lit == fit->second.end()) return kAllEffects;
  return kAllEffects & ~lit->second;
}

void add_leaf(Pass& p, int fi, unsigned kind, const std::string& token,
              std::size_t line, const std::string& file) {
  if ((line_mask(p, file, line) & kind) == 0) return;  // suppressed
  Info& f = p.info[static_cast<std::size_t>(fi)];
  for (const Leaf& l : f.leaves) {
    if (l.kind == kind && l.line == line && l.token == token) return;
  }
  f.leaves.push_back({kind, token, line});
  f.own |= kind;
}

/// Replays one body span against the hot-path vocabulary. This is the
/// original parser's body scan, verbatim minus the scope bookkeeping: the
/// span's brace structure is already known, and every lookahead reads the
/// same TU token stream at the same absolute indices as the single-pass
/// version did.
void replay_span(Pass& p, int fi, const cg::Span& sp) {
  const std::vector<cg::Tok>& toks =
      p.g.tus[static_cast<std::size_t>(sp.tu)].toks;
  const std::string& file = p.g.tus[static_cast<std::size_t>(sp.tu)].path;
  const std::string kEnd;
  auto text = [&](std::size_t at) -> const std::string& {
    return at < toks.size() ? toks[at].text : kEnd;
  };
  std::size_t i = sp.begin;
  while (i < sp.end) {
    const std::string& t = toks[i].text;
    const std::size_t line = toks[i].line;
    if (t == "new") {
      add_leaf(p, fi, kAlloc, "new", line, file);
      ++i;
      continue;
    }
    if (t == "throw") {
      add_leaf(p, fi, kThrow, "throw", line, file);
      ++i;
      continue;
    }
    if (kLockTypeNames.count(t) != 0) {
      add_leaf(p, fi, kBlock, t, line, file);
      ++i;
      continue;
    }
    if (t == "std" && text(i + 1) == "::" && text(i + 2) == "function") {
      add_leaf(p, fi, kAlloc, "std::function", line, file);
      i += 3;
      continue;
    }
    // Allocating type construction: Type[<...>] [name] ( / {
    if (t == "Bytes" || (t == "std" && text(i + 1) == "::" &&
                         kAllocTypeNames.count("std::" + text(i + 2)) != 0)) {
      const std::string type_name =
          t == "Bytes" ? "Bytes" : "std::" + text(i + 2);
      std::size_t j = i + (t == "Bytes" ? 1 : 3);
      // Optional template argument list.
      if (j < toks.size() && toks[j].text == "<") {
        int depth = 0;
        std::size_t k = j;
        while (k < toks.size() && k < j + 64) {
          if (toks[k].text == "<") ++depth;
          if (toks[k].text == ">" && --depth == 0) {
            j = k + 1;
            break;
          }
          if (toks[k].text == ";" || toks[k].text == "{") break;
          ++k;
        }
      }
      const bool direct_call =
          j < toks.size() && (toks[j].text == "(" || toks[j].text == "{");
      const bool decl_with_args =
          j + 1 < toks.size() && cg::is_ident_tok(toks[j].text) &&
          (toks[j + 1].text == "(" || toks[j + 1].text == "{");
      if (direct_call || decl_with_args) {
        add_leaf(p, fi, kAlloc, type_name, line, file);
      }
      ++i;
      continue;
    }
    if (cg::is_ident_tok(t) && kNotACall.count(t) == 0) {
      // Build a forward qualified path and check for a call.
      std::string name = t;
      std::size_t j = i + 1;
      while (j + 1 < toks.size() && toks[j].text == "::" &&
             cg::is_ident_tok(toks[j + 1].text)) {
        name += "::" + toks[j + 1].text;
        j += 2;
      }
      const bool call = j < toks.size() && toks[j].text == "(";
      if (call) {
        const bool member =
            i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
        const bool global =
            i > 0 && toks[i - 1].text == "::" &&
            (i < 2 || !cg::is_ident_tok(toks[i - 2].text));
        p.info[static_cast<std::size_t>(fi)].calls.push_back(
            {name, member, global, line, line_mask(p, file, line)});
        i = j;  // leave '(' for normal scanning (nested calls)
        continue;
      }
      i = j;
      continue;
    }
    ++i;
  }
}

void extract_effects(Pass& p) {
  p.info.assign(p.g.fns.size(), Info{});
  for (std::size_t fi = 0; fi < p.g.fns.size(); ++fi) {
    for (const cg::Span& sp : p.g.fns[fi].bodies) {
      replay_span(p, static_cast<int>(fi), sp);
    }
  }
}

// ---------------------------------------------------------------------------
// Resolution, SCCs, propagation.
// ---------------------------------------------------------------------------

/// Applies the builtin leaf tables to a call site. Returns the effect kind
/// (0 when the call is not a builtin leaf). Builtin names shadow scanned
/// functions by design: anything named push_back or lock is treated as the
/// std/sync primitive it almost certainly is, which keeps chains finite.
unsigned builtin_effect(const CallSite& c) {
  const std::string last = cg::last_component(c.name);
  if (kAllocTypeNames.count(c.name) != 0) return kAlloc;
  if (kAllocCallNames.count(last) != 0) return kAlloc;
  if (kBlockCallNames.count(last) != 0) return kBlock;
  if (kBlockGlobalOnlyNames.count(last) != 0 && c.global) return kBlock;
  return 0;
}

void resolve_calls(Pass& p) {
  const auto by_last = cg::index_by_last(p.g);
  for (std::size_t i = 0; i < p.g.fns.size(); ++i) {
    Info& f = p.info[i];
    for (const CallSite& c : f.calls) {
      if (c.member &&
          kNeutralMemberNames.count(cg::last_component(c.name)) != 0) {
        continue;  // receiver-dot accessor: effect-free, never a scanned fn
      }
      const unsigned builtin = builtin_effect(c);
      if (builtin != 0) {
        if ((c.mask & builtin) != 0) {
          bool dup = false;
          for (const Leaf& l : f.leaves) {
            if (l.kind == builtin && l.line == c.line && l.token == c.name) {
              dup = true;
              break;
            }
          }
          if (!dup) {
            f.leaves.push_back({builtin, c.name, c.line});
            f.own |= builtin;
          }
        }
        continue;  // builtin leaves terminate the chain: no edges
      }
      for (int t : cg::resolve_name(p.g, by_last, p.g.fns[i], c.name)) {
        f.edges.emplace_back(t, c.mask);
      }
    }
  }
}

/// Tarjan SCC; every function in a nontrivial SCC (or with a self-edge)
/// gets the recursion leaf.
void mark_recursion(Pass& p) {
  const std::size_t n = p.g.fns.size();
  std::vector<int> indices(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int counter = 0;

  struct Frame {
    int v;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (indices[root] != -1) continue;
    std::vector<Frame> work;
    work.push_back({static_cast<int>(root)});
    indices[root] = low[root] = counter++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = true;
    while (!work.empty()) {
      Frame& fr = work.back();
      const auto& edges = p.info[static_cast<std::size_t>(fr.v)].edges;
      if (fr.edge < edges.size()) {
        const int w = edges[fr.edge++].first;
        if (indices[static_cast<std::size_t>(w)] == -1) {
          indices[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = counter++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          work.push_back({w});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(fr.v)] =
              std::min(low[static_cast<std::size_t>(fr.v)],
                       indices[static_cast<std::size_t>(w)]);
        }
      } else {
        const int v = fr.v;
        work.pop_back();
        if (!work.empty()) {
          const int parent = work.back().v;
          low[static_cast<std::size_t>(parent)] =
              std::min(low[static_cast<std::size_t>(parent)],
                       low[static_cast<std::size_t>(v)]);
        }
        if (low[static_cast<std::size_t>(v)] ==
            indices[static_cast<std::size_t>(v)]) {
          std::vector<int> scc;
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            scc.push_back(w);
            if (w == v) break;
          }
          bool cyclic = scc.size() > 1;
          if (!cyclic) {
            for (const auto& [t, mask] :
                 p.info[static_cast<std::size_t>(v)].edges) {
              (void)mask;
              if (t == v) cyclic = true;
            }
          }
          if (cyclic) {
            for (int w : scc) {
              const cg::Fn& fn = p.g.fns[static_cast<std::size_t>(w)];
              Info& f = p.info[static_cast<std::size_t>(w)];
              // The recursion leaf anchors to the definition line, so a
              // PPROX-HOTPATH-OK(recursion) comment on that line drops it —
              // same contract as every other leaf kind.
              if ((line_mask(p, fn.file, fn.line) & kRecur) == 0) continue;
              f.leaves.push_back({kRecur, "recursion-cycle", fn.line});
              f.own |= kRecur;
            }
          }
        }
      }
    }
  }
}

void propagate(Pass& p) {
  for (Info& f : p.info) f.reach = f.own;
  bool changed = true;
  std::size_t guard = 0;
  while (changed && guard++ < p.info.size() + 8) {
    changed = false;
    for (Info& f : p.info) {
      unsigned r = f.own;
      for (const auto& [t, mask] : f.edges) {
        r |= p.info[static_cast<std::size_t>(t)].reach & mask;
      }
      if (r != f.reach) {
        f.reach = r;
        changed = true;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Findings: per annotated root, shortest chain to every offending leaf fn.
// ---------------------------------------------------------------------------

std::string display_chain(const Pass& p, const std::vector<int>& parent,
                          int leaf) {
  std::vector<std::string> names;
  for (int v = leaf; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    names.push_back(p.g.fns[static_cast<std::size_t>(v)].qname);
  }
  std::reverse(names.begin(), names.end());
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) out += " -> ";
    out += names[i];
  }
  return out;
}

void collect_findings(const Pass& p, std::vector<Finding>& findings) {
  struct RuleSpec {
    unsigned annotation;
    unsigned kind;
    const char* rule;
    const char* what;
  };
  static const RuleSpec kRules[] = {
      {cg::kAnnHot, kAlloc, "hot-alloc", "heap allocation"},
      {cg::kAnnHot, kThrow, "hot-throw", "exception throw"},
      {cg::kAnnHot, kRecur, "hot-recursion", "recursion cycle"},
      {cg::kAnnNonblocking, kBlock, "nonblocking-block", "blocking operation"},
      {cg::kAnnEcall, kAlloc, "ecall-alloc",
       "heap allocation inside the enclave boundary"},
      {cg::kAnnEcall, kBlock, "ecall-block",
       "blocking operation inside the enclave boundary"},
  };
  const char* kAnnName[] = {"PPROX_HOT", "PPROX_NONBLOCKING",
                            "PPROX_ECALL_BOUNDARY"};

  for (std::size_t ri = 0; ri < p.g.fns.size(); ++ri) {
    const cg::Fn& root = p.g.fns[ri];
    if (root.annotations == 0) continue;
    for (const RuleSpec& spec : kRules) {
      if ((root.annotations & spec.annotation) == 0) continue;
      if ((p.info[ri].reach & spec.kind) == 0) continue;
      // BFS over edges that let this effect through.
      std::vector<int> parent(p.g.fns.size(), -1);
      std::vector<bool> seen(p.g.fns.size(), false);
      std::queue<int> q;
      q.push(static_cast<int>(ri));
      seen[ri] = true;
      std::vector<int> order;
      while (!q.empty()) {
        const int v = q.front();
        q.pop();
        order.push_back(v);
        for (const auto& [t, mask] :
             p.info[static_cast<std::size_t>(v)].edges) {
          if ((mask & spec.kind) == 0) continue;
          if ((p.info[static_cast<std::size_t>(t)].reach & spec.kind) == 0) {
            continue;
          }
          if (!seen[static_cast<std::size_t>(t)]) {
            seen[static_cast<std::size_t>(t)] = true;
            parent[static_cast<std::size_t>(t)] = v;
            q.push(t);
          }
        }
      }
      const char* ann_name =
          spec.annotation == cg::kAnnHot
              ? kAnnName[0]
              : (spec.annotation == cg::kAnnNonblocking ? kAnnName[1]
                                                        : kAnnName[2]);
      for (int v : order) {
        const cg::Fn& leaf_fn = p.g.fns[static_cast<std::size_t>(v)];
        const Info& leaf_info = p.info[static_cast<std::size_t>(v)];
        if ((leaf_info.own & spec.kind) == 0) continue;
        const Leaf* leaf = nullptr;
        for (const Leaf& l : leaf_info.leaves) {
          if (l.kind == spec.kind) {
            leaf = &l;
            break;
          }
        }
        if (leaf == nullptr) continue;
        Finding f;
        f.rule = spec.rule;
        f.key = std::string(spec.rule) + "|" + root.qname + "|" +
                leaf_fn.qname + "|" + leaf->token;
        f.path = leaf_fn.file.empty() ? root.file : leaf_fn.file;
        f.line = leaf->line != 0 ? leaf->line : leaf_fn.line;
        f.chain = display_chain(p, parent, v);
        f.message = std::string(ann_name) + " " + root.qname + " reaches " +
                    spec.what + " '" + leaf->token + "': " + f.chain +
                    "; fix it, suppress the leaf line with // " +
                    "PPROX-HOTPATH-" + "OK(" + effect_name(spec.kind) +
                    "): <why>, or ratchet it in the --baseline file";
        findings.push_back(std::move(f));
      }
    }
  }
}

}  // namespace

int run(const Options& opts) {
  Pass p;
  std::size_t files = 0;
  // The marker is split so this tool's own sources never self-match.
  const std::string marker = std::string("PPROX-HOTPATH-") + "OK(";
  for (const fs::path& path : opts.inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "pprox_lint: cannot read " << path << "\n";
      return 2;
    }
    std::vector<std::string> raw;
    std::string line;
    while (std::getline(in, line)) raw.push_back(line);
    ++files;

    const auto supp = cg::scan_suppressions(raw, marker, &effect_from_name);
    for (const auto& [ln, s] : supp) {
      if (!s.bare) continue;
      Finding f;
      f.rule = "hotpath-bare-suppression";
      f.key = std::string("hotpath-bare-suppression|") +
              path.filename().string() + "|" + std::to_string(ln);
      f.path = path.string();
      f.line = ln;
      f.chain = "";
      f.message =
          "hot-path suppression without a justification; write "
          "PPROX-HOTPATH-" "OK(<effect>): <why> (the bare form suppresses "
          "nothing)";
      p.bare_findings.push_back(std::move(f));
    }
    for (const auto& [ln, s] : supp) {
      if (!s.bare) p.line_suppressions[path.string()][ln] |= s.effects;
    }
    p.g.add_tu(path.string(), cg::tokenize(cg::code_lines(raw)));
  }

  p.g.merge_decl_annotations();

  extract_effects(p);
  resolve_calls(p);
  mark_recursion(p);
  propagate(p);

  std::vector<Finding> findings = std::move(p.bare_findings);
  collect_findings(p, findings);

  cg::ReportSpec spec;
  spec.mode = "hotpath";
  spec.anchor = "hotpath";
  spec.what = "hot-path";
  spec.bare_rule = "hotpath-bare-suppression";
  spec.default_why =
      "baselined pre-existing violation; shrink, do not grow (DESIGN.md "
      "§11.4)";
  spec.json = opts.json;
  spec.baseline = opts.baseline;
  spec.baseline_write = opts.baseline_write;
  return cg::report(spec, findings, files);
}

}  // namespace hotpath
