// pprox_lint --hotpath — call-graph hot-path discipline pass (DESIGN.md §11).
//
// Statically enforces the performance discipline the paper's proxy depends
// on: annotated request-path functions must stay allocation-free,
// non-blocking, and bounded. The pass
//
//   1. parses every TU it is given (comment/string-stripped, token level),
//      recognizing namespaces, classes, and function definitions, and
//      records per-function *leaf effects* and *call edges*;
//   2. resolves calls to scanned functions by qualified name (best-effort:
//      unqualified calls prefer the caller's class, then fall back to every
//      scanned function with that name — which is also how virtual calls
//      resolve to every override; see §11.2 for the soundness limits);
//   3. propagates effect labels (alloc / block / throw / recursion) over the
//      graph to a fixpoint, with recursion cycles detected via SCCs;
//   4. reports, for every PPROX_HOT / PPROX_NONBLOCKING /
//      PPROX_ECALL_BOUNDARY function, the full call chain to each reachable
//      forbidden leaf.
//
// Leaf effect patterns (the lattice bottom):
//   alloc  `new`, malloc/calloc/realloc/strdup, make_unique/make_shared,
//          growing-container members (push_back/emplace*/insert/resize/
//          reserve/append/assign/substr), std::to_string, std::string/
//          std::vector/Bytes construction, std::function (type-erased
//          capture may heap-allocate).
//   block  LockGuard/UniqueLock/SharedLock construction, .lock()/.wait*()/
//          .join(), blocking syscalls (recv/send/poll/epoll_wait/accept/
//          connect/select, ::read/::write when globally qualified), sleeps.
//   throw  `throw` expressions.
//   recursion  membership in a call-graph cycle (SCC or self-edge).
//
// Suppression (on the offending leaf or call line, reason mandatory):
//   buf.push_back(b);  // PPROX-HOTPATH-OK(alloc): reserved in ctor
// A suppression on a *call* line stops the named effects from propagating
// through that call; on a *leaf* line it drops the leaf itself. A bare
// suppression (no ": reason") is itself a finding and suppresses nothing.
//
// Baseline ratchet: --baseline FILE compares finding *keys*
// (rule|root|leaf|token — line-number free, so they survive unrelated
// edits) against tools/hotpath_baseline.json; only new keys fail, stale
// keys are reported so the baseline can shrink. --baseline-write FILE
// regenerates the file, carrying over existing "why" justifications.
#include "hotpath_pass.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace hotpath {
namespace {

// ---------------------------------------------------------------------------
// Effects and annotations.
// ---------------------------------------------------------------------------

enum Effect : unsigned {
  kAlloc = 1u << 0,
  kBlock = 1u << 1,
  kThrow = 1u << 2,
  kRecur = 1u << 3,
};
constexpr unsigned kAllEffects = kAlloc | kBlock | kThrow | kRecur;

enum Annotation : unsigned {
  kAnnHot = 1u << 0,
  kAnnNonblocking = 1u << 1,
  kAnnEcall = 1u << 2,
};

const char* effect_name(unsigned e) {
  switch (e) {
    case kAlloc: return "alloc";
    case kBlock: return "block";
    case kThrow: return "throw";
    case kRecur: return "recursion";
  }
  return "?";
}

unsigned effect_from_name(const std::string& name) {
  if (name == "alloc") return kAlloc;
  if (name == "block") return kBlock;
  if (name == "throw") return kThrow;
  if (name == "recursion") return kRecur;
  return 0;
}

/// One leaf effect inside a function body.
struct Leaf {
  unsigned kind = 0;
  std::string token;  ///< what matched, e.g. "new", "push_back", "::poll"
  std::size_t line = 0;
};

/// One call site inside a function body.
struct CallSite {
  std::string name;  ///< as written, "::" joined, leading "::" stripped
  bool member = false;
  bool global = false;  ///< written with a leading "::"
  std::size_t line = 0;
  unsigned mask = kAllEffects;  ///< effects allowed to propagate through
};

/// One function node of the call graph. Overloads (and re-definitions under
/// different #ifdef branches — the pass does not preprocess) share a node:
/// their effects and calls are unioned, which over-approximates but never
/// misses a chain.
struct Fn {
  std::string qname;
  std::string cls;  ///< qualified name minus the last component
  std::string file;
  std::size_t line = 0;
  unsigned annotations = 0;
  std::vector<Leaf> leaves;
  std::vector<CallSite> calls;
  std::vector<std::pair<int, unsigned>> edges;  ///< (callee index, mask)
  unsigned own = 0;    ///< union of leaf kinds
  unsigned reach = 0;  ///< fixpoint of own ∪ masked callee reach
};

struct Finding {
  std::string rule;
  std::string key;  ///< line-free ratchet key
  std::string path;
  std::size_t line = 0;
  std::string message;
  std::string chain;  ///< "root -> ... -> leaf"
};

// ---------------------------------------------------------------------------
// Leaf pattern tables (documented in the header comment and DESIGN.md §11).
// ---------------------------------------------------------------------------

const std::set<std::string> kAllocCallNames = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "posix_memalign", "make_unique", "make_shared", "to_string",
    "push_back", "emplace_back", "emplace_front", "emplace", "insert",
    "resize", "reserve", "append", "assign", "substr", "stoi", "stol",
    "stoul", "stoull", "stod",
};

/// Allocating type constructions recognized as direct calls (`Bytes(...)`)
/// or declarations with arguments (`Bytes b(n, 0);`).
const std::set<std::string> kAllocTypeNames = {
    "Bytes", "std::string", "std::vector", "std::deque", "std::map",
    "std::set", "std::unordered_map", "std::unordered_set", "std::list",
    "std::ostringstream", "std::istringstream", "std::stringstream",
};

/// Blocking calls in any syntactic form.
const std::set<std::string> kBlockCallNames = {
    "lock", "lock_shared", "wait", "wait_for", "wait_until", "join",
    "sleep_for", "sleep_until", "sleep", "usleep", "nanosleep", "recv",
    "send", "sendto", "recvfrom", "poll", "ppoll", "select", "pselect",
    "epoll_wait", "epoll_pwait", "accept", "accept4", "connect", "fsync",
    "fdatasync", "flock", "getline",
};

/// Blocking only when written globally qualified (`::read`): the bare names
/// are too common as method names to flag unconditionally.
const std::set<std::string> kBlockGlobalOnlyNames = {
    "read", "write", "open", "pread", "pwrite", "readv", "writev",
};

/// RAII lock types whose construction acquires a mutex.
const std::set<std::string> kLockTypeNames = {"LockGuard", "UniqueLock",
                                              "SharedLock"};

/// Member calls with these names never resolve to scanned functions: they
/// are overwhelmingly STL/atomic/smart-pointer accessors on a data member
/// (`samples_.clear()`, `value_.load()`, `ptr.get()`), and resolving them
/// by last component manufactures self-cycles (Atomic::load "calling"
/// itself) and cross-class ghost edges. The cost is that a *scanned*
/// function with one of these names called through a receiver is invisible
/// to the analyzer — a documented soundness limit (DESIGN.md §11.3); such
/// functions are still analyzed as roots/callees of qualified calls.
const std::set<std::string> kNeutralMemberNames = {
    "load",  "store", "exchange", "fetch_add", "fetch_sub",
    "compare_exchange_weak", "compare_exchange_strong", "clear", "empty",
    "get",   "size",  "length",   "begin",     "end",
    "data",  "c_str", "front",    "back",      "top",
    "count", "contains", "erase",
};

const std::set<std::string> kNotACall = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "else", "do", "case", "goto", "new", "delete", "throw", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "decltype", "typeid",
    "co_await", "co_return", "co_yield", "noexcept", "alignas",
    "static_assert", "defined", "assert", "PPROX_HOT", "PPROX_NONBLOCKING",
    "PPROX_ECALL_BOUNDARY",
};

// ---------------------------------------------------------------------------
// Lexing: comment/string stripping (line-preserving) + tokenization.
// ---------------------------------------------------------------------------

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Strips comments, string/char literals, and preprocessor lines while
/// preserving line structure (same contract as the driver's code_lines, plus
/// preprocessor removal so `#define PPROX_HOT ...` is not parsed as code).
std::vector<std::string> code_lines(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  bool in_directive = false;
  for (const std::string& line : raw) {
    std::string code;
    code.reserve(line.size());
    if (in_directive) {  // continuation of a preprocessor line
      in_directive = !line.empty() && line.back() == '\\';
      out.emplace_back();
      continue;
    }
    std::size_t first = 0;
    while (first < line.size() &&
           std::isspace(static_cast<unsigned char>(line[first])) != 0) {
      ++first;
    }
    if (!in_block && first < line.size() && line[first] == '#') {
      in_directive = !line.empty() && line.back() == '\\';
      out.emplace_back();
      continue;
    }
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            break;
          }
          ++i;
        }
        code.push_back(quote);
        code.push_back(quote);
        continue;
      }
      code.push_back(c);
    }
    out.push_back(std::move(code));
  }
  return out;
}

struct Tok {
  std::string text;
  std::size_t line;  ///< 1-based
};

std::vector<Tok> tokenize(const std::vector<std::string>& code) {
  std::vector<Tok> toks;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& s = code[li];
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (is_ident_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
        std::size_t j = i;
        while (j < s.size() && is_ident_char(s[j])) ++j;
        toks.push_back({s.substr(i, j - i), li + 1});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i;
        while (j < s.size() && (is_ident_char(s[j]) || s[j] == '.')) ++j;
        toks.push_back({s.substr(i, j - i), li + 1});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        toks.push_back({"::", li + 1});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
        toks.push_back({"->", li + 1});
        i += 2;
        continue;
      }
      if (c == '"' && i + 1 < s.size() && s[i + 1] == '"') {
        toks.push_back({"\"\"", li + 1});
        i += 2;
        continue;
      }
      if (c == '\'' && i + 1 < s.size() && s[i + 1] == '\'') {
        toks.push_back({"''", li + 1});
        i += 2;
        continue;
      }
      toks.push_back({std::string(1, c), li + 1});
      ++i;
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Suppressions: // PPROX-HOTPATH-OK(effect[,effect]): reason
// ---------------------------------------------------------------------------

struct Suppression {
  unsigned effects = 0;
  bool bare = false;  ///< reason missing — rejected, suppresses nothing
};

/// Per-line suppressions of one file. The marker is split so this tool's
/// own sources never self-match.
std::map<std::size_t, Suppression> scan_suppressions(
    const std::vector<std::string>& raw) {
  std::map<std::size_t, Suppression> out;
  const std::string marker = std::string("PPROX-HOTPATH-") + "OK(";
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::size_t pos = raw[i].find(marker);
    if (pos == std::string::npos) continue;
    const std::size_t open = pos + marker.size();
    const std::size_t close = raw[i].find(')', open);
    if (close == std::string::npos) continue;
    Suppression s;
    std::string inside = raw[i].substr(open, close - open);
    std::replace(inside.begin(), inside.end(), ',', ' ');
    std::istringstream iss(inside);
    std::string name;
    while (iss >> name) s.effects |= effect_from_name(name);
    // Mandatory ": <nonempty reason>" after the closing parenthesis.
    std::size_t after = close + 1;
    while (after < raw[i].size() &&
           std::isspace(static_cast<unsigned char>(raw[i][after])) != 0) {
      ++after;
    }
    if (after >= raw[i].size() || raw[i][after] != ':') {
      s.bare = true;
    } else {
      ++after;
      while (after < raw[i].size() &&
             std::isspace(static_cast<unsigned char>(raw[i][after])) != 0) {
        ++after;
      }
      if (after >= raw[i].size()) s.bare = true;
    }
    if (s.bare) s.effects = 0;  // a rejected suppression suppresses nothing
    out.emplace(i + 1, s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser: scope tracking, function extraction, body scanning.
// ---------------------------------------------------------------------------

struct Graph {
  std::vector<Fn> fns;
  std::map<std::string, int> index;                 // qname -> fns index
  std::map<std::string, unsigned> decl_annotations; // from declarations
  std::vector<Finding> bare_findings;
  /// file -> line -> suppressed-effects mask. Kept past parsing because
  /// recursion leaves are minted in mark_recursion (after the per-file
  /// suppression maps are gone) and anchor to the definition line.
  std::map<std::string, std::map<std::size_t, unsigned>> line_suppressions;

  Fn& get_or_create(const std::string& qname) {
    const auto it = index.find(qname);
    if (it != index.end()) return fns[static_cast<std::size_t>(it->second)];
    index.emplace(qname, static_cast<int>(fns.size()));
    Fn f;
    f.qname = qname;
    const std::size_t sep = qname.rfind("::");
    f.cls = sep == std::string::npos ? std::string() : qname.substr(0, sep);
    fns.push_back(std::move(f));
    return fns.back();
  }
};

class Parser {
 public:
  Parser(std::string file, std::vector<Tok> toks,
         std::map<std::size_t, Suppression> supp, Graph& graph)
      : file_(std::move(file)),
        toks_(std::move(toks)),
        supp_(std::move(supp)),
        graph_(graph) {}

  void parse() {
    while (i_ < toks_.size()) {
      if (in_body()) {
        body_token();
      } else {
        decl_token();
      }
    }
  }

 private:
  enum class ScopeKind { kNamespace, kClass, kFunction, kBlock };
  struct Scope {
    ScopeKind kind;
    std::string name;
    int fn = -1;  ///< graph index for kFunction scopes
  };

  bool in_body() const {
    return !scopes_.empty() && (scopes_.back().kind == ScopeKind::kFunction ||
                                scopes_.back().kind == ScopeKind::kBlock);
  }

  int current_fn() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == ScopeKind::kFunction) return it->fn;
    }
    return -1;
  }

  std::string scope_prefix() const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (s.kind != ScopeKind::kNamespace && s.kind != ScopeKind::kClass) {
        continue;
      }
      if (s.name.empty()) continue;  // anonymous namespace / struct
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  const Tok& cur() const { return toks_[i_]; }
  const std::string& tok(std::size_t off = 0) const {
    static const std::string kEnd;
    return i_ + off < toks_.size() ? toks_[i_ + off].text : kEnd;
  }
  bool at_end() const { return i_ >= toks_.size(); }

  static bool is_ident_tok(const std::string& t) {
    return !t.empty() &&
           (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_');
  }

  /// Skips a balanced group starting at the current opener token.
  void skip_balanced(const char* open, const char* close) {
    int depth = 0;
    while (!at_end()) {
      if (tok() == open) ++depth;
      if (tok() == close && --depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  /// Skips template angle brackets; bails out (going nowhere) if the '<'
  /// turns out to be a comparison (unbalanced before ';' or ')').
  void skip_angles() {
    const std::size_t start = i_;
    int depth = 0;
    std::size_t steps = 0;
    while (!at_end() && steps++ < 256) {
      const std::string& t = tok();
      if (t == "<") ++depth;
      if (t == ">" && --depth == 0) {
        ++i_;
        return;
      }
      if (t == ";" || t == "{" || t == "}") break;  // not a template list
      ++i_;
    }
    i_ = start + 1;
  }

  /// Consumes to the end of the current statement: the first ';' at bracket
  /// depth 0. Stops (without consuming) at a '}' at depth 0 so enclosing
  /// scopes still close properly.
  void skip_statement() {
    int depth = 0;
    while (!at_end()) {
      const std::string& t = tok();
      if (depth == 0 && t == ";") {
        ++i_;
        return;
      }
      if (depth == 0 && t == "}") return;
      if (t == "{" || t == "(" || t == "[") ++depth;
      if (t == "}" || t == ")" || t == "]") --depth;
      ++i_;
    }
  }

  // --- declaration scope ---------------------------------------------------

  void decl_token() {
    const std::string& t = tok();
    if (t == "}") {
      if (!scopes_.empty()) scopes_.pop_back();
      ++i_;
      if (tok() == ";") ++i_;
      return;
    }
    if (t == ";") {
      pending_ = 0;
      ++i_;
      return;
    }
    if (t == "namespace") {
      parse_namespace();
      return;
    }
    if (t == "template") {
      ++i_;
      if (tok() == "<") skip_angles();
      return;
    }
    if (t == "using" || t == "typedef" || t == "friend" ||
        t == "static_assert") {
      skip_statement();
      return;
    }
    if (t == "extern") {
      if (tok(1) == "\"\"" && tok(2) == "{") {
        scopes_.push_back({ScopeKind::kNamespace, "", -1});
        i_ += 3;
        return;
      }
      ++i_;
      return;
    }
    if (t == "class" || t == "struct" || t == "union" || t == "enum") {
      parse_class();
      return;
    }
    if (t == "PPROX_HOT") {
      pending_ |= kAnnHot;
      ++i_;
      return;
    }
    if (t == "PPROX_NONBLOCKING") {
      pending_ |= kAnnNonblocking;
      ++i_;
      return;
    }
    if (t == "PPROX_ECALL_BOUNDARY") {
      pending_ |= kAnnEcall;
      ++i_;
      return;
    }
    parse_decl_or_def();
  }

  void parse_namespace() {
    ++i_;  // namespace
    std::string name;
    while (!at_end() && (is_ident_tok(tok()) || tok() == "::")) {
      name += tok();
      ++i_;
    }
    if (tok() == "{") {
      scopes_.push_back({ScopeKind::kNamespace, name, -1});
      ++i_;
    } else {
      skip_statement();  // namespace alias or malformed
    }
  }

  void parse_class() {
    ++i_;  // class/struct/union/enum
    if (tok() == "class" || tok() == "struct") ++i_;  // enum class
    while (tok() == "[") skip_balanced("[", "]");     // attributes
    if (tok() == "alignas" && tok(1) == "(") {
      ++i_;
      skip_balanced("(", ")");
    }
    std::string name;
    if (is_ident_tok(tok())) {
      name = tok();
      ++i_;
    }
    // Scan to the body or the end of a forward declaration.
    while (!at_end()) {
      const std::string& t = tok();
      if (t == ";") {
        ++i_;
        return;  // forward declaration
      }
      if (t == "{") {
        scopes_.push_back({ScopeKind::kClass, name, -1});
        ++i_;
        return;
      }
      if (t == "(") {
        skip_balanced("(", ")");
        continue;
      }
      if (t == "<") {
        skip_angles();
        continue;
      }
      if (t == "}") return;  // malformed; let the scope close
      ++i_;
    }
  }

  /// Generic declaration statement at namespace/class scope: recognizes
  /// `name(args) [qualifiers] {body}` as a function definition and
  /// `name(args) [qualifiers];` as a declaration (annotation carrier).
  void parse_decl_or_def() {
    std::string name;
    std::size_t name_line = 0;
    bool name_fresh = false;  // the token just consumed ended the name path
    bool tilde = false;
    while (!at_end()) {
      const std::string& t = tok();
      if (t == ";") {
        pending_ = 0;
        ++i_;
        return;
      }
      if (t == "}") return;
      if (t == "{") {  // brace init or stray block at decl scope
        skip_balanced("{", "}");
        continue;
      }
      if (t == "=") {
        ++i_;
        if (tok() == "default" || tok() == "delete" || tok() == "0") {
          record_declaration(name);
        }
        skip_statement();
        pending_ = 0;
        return;
      }
      if (t == "~") {
        tilde = true;
        name_fresh = false;
        ++i_;
        continue;
      }
      if (t == "operator") {
        name = "operator";
        name_line = cur().line;
        ++i_;
        while (!at_end() && tok() != "(" && tok() != ";" && tok() != "{") {
          name += tok();
          ++i_;
        }
        if (name == "operator" && tok() == "(" && tok(1) == ")") {
          name += "()";
          i_ += 2;
        }
        name_fresh = true;
        continue;
      }
      if (is_ident_tok(t)) {
        name = tilde ? "~" + t : t;
        tilde = false;
        name_line = cur().line;
        ++i_;
        while (tok() == "::" && is_ident_tok(tok(1))) {
          name += "::" + tok(1);
          i_ += 2;
        }
        name_fresh = true;
        continue;
      }
      if (t == "<") {
        skip_angles();
        name_fresh = false;
        continue;
      }
      if (t == "(" && name_fresh && !name.empty()) {
        skip_balanced("(", ")");
        if (finish_signature(name, name_line)) return;
        continue;
      }
      if (t == "(") {
        skip_balanced("(", ")");
        name_fresh = false;
        continue;
      }
      if (t == "[") {
        skip_balanced("[", "]");
        name_fresh = false;
        continue;
      }
      name_fresh = false;
      ++i_;
    }
  }

  /// After `name(...)`: skims qualifiers and decides definition vs
  /// declaration. Returns true when the statement was fully handled.
  bool finish_signature(const std::string& name, std::size_t name_line) {
    while (!at_end()) {
      const std::string& t = tok();
      if (t == "{") {
        register_definition(name, name_line);
        ++i_;
        return true;
      }
      if (t == ";") {
        record_declaration(name);
        pending_ = 0;
        ++i_;
        return true;
      }
      if (t == "=") {
        ++i_;
        if (tok() == "default" || tok() == "delete" || tok() == "0") {
          record_declaration(name);
        }
        skip_statement();
        pending_ = 0;
        return true;
      }
      if (t == ":") {  // constructor initializer list
        ++i_;
        while (!at_end()) {
          if (tok() == "{") break;  // body
          if (tok() == "(") {
            skip_balanced("(", ")");
            continue;
          }
          if (tok() == "<") {
            skip_angles();
            continue;
          }
          if (is_ident_tok(tok()) || tok() == "::" || tok() == ",") {
            ++i_;
            continue;
          }
          if (is_ident_tok(tok(0)) && tok(1) == "{") {
            ++i_;
            continue;
          }
          // Brace init of a member: IDENT was consumed above, so a '{' here
          // after a ',' chain is an init argument list, not the body — but
          // we cannot tell; treat "{ preceded by ident-consumed" as init.
          break;
        }
        if (tok() == "{") {
          // Either the body or a member brace-init. Heuristic: a body brace
          // is followed by statement-ish tokens; a member init brace is
          // followed (after its balanced group) by ',' or '{'. Resolve by
          // balanced lookahead.
          const std::size_t save = i_;
          skip_balanced("{", "}");
          if (tok() == "," || tok() == "{") {
            // It was an init brace; continue skimming from after it.
            if (tok() == ",") ++i_;
            return finish_signature(name, name_line);
          }
          // It was the body: rewind and register.
          i_ = save;
          register_definition(name, name_line);
          ++i_;
          return true;
        }
        skip_statement();
        pending_ = 0;
        return true;
      }
      if (t == "," ) {
        // Multiple declarators (`int f(), g;`) or a parenthesized variable
        // initializer — treat as a plain declaration statement.
        record_declaration(name);
        skip_statement();
        pending_ = 0;
        return true;
      }
      if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
          t == "mutable" || t == "&" || t == "&&" || t == "throw") {
        ++i_;
        if (tok() == "(") skip_balanced("(", ")");
        continue;
      }
      if (t == "->") {  // trailing return type
        ++i_;
        while (!at_end() && (is_ident_tok(tok()) || tok() == "::" ||
                             tok() == "*" || tok() == "&" || tok() == "const")) {
          if (tok(1) == "<") {
            ++i_;
            skip_angles();
          } else {
            ++i_;
          }
        }
        continue;
      }
      if (t == "[") {
        skip_balanced("[", "]");
        continue;
      }
      if (is_ident_tok(t)) {
        // Unknown trailing macro qualifier, e.g. PPROX_EXCLUDES(mutex_).
        ++i_;
        if (tok() == "(") skip_balanced("(", ")");
        continue;
      }
      // Anything else: not a function after all.
      skip_statement();
      pending_ = 0;
      return true;
    }
    return true;
  }

  void record_declaration(const std::string& name) {
    if (pending_ == 0 || name.empty()) return;
    std::string qn = scope_prefix();
    if (!qn.empty()) qn += "::";
    qn += name;
    graph_.decl_annotations[qn] |= pending_;
    pending_ = 0;
  }

  void register_definition(const std::string& name, std::size_t line) {
    std::string qn = scope_prefix();
    if (!qn.empty()) qn += "::";
    qn += name;
    Fn& f = graph_.get_or_create(qn);
    if (f.file.empty()) {
      f.file = file_;
      f.line = line;
    }
    f.annotations |= pending_;
    pending_ = 0;
    scopes_.push_back(
        {ScopeKind::kFunction, name, graph_.index.at(qn)});
  }

  // --- function bodies -----------------------------------------------------

  unsigned line_mask(std::size_t line) const {
    const auto it = supp_.find(line);
    if (it == supp_.end()) return kAllEffects;
    return kAllEffects & ~it->second.effects;
  }

  void add_leaf(unsigned kind, const std::string& token, std::size_t line) {
    const int fi = current_fn();
    if (fi < 0) return;
    if ((line_mask(line) & kind) == 0) return;  // suppressed on this line
    Fn& f = graph_.fns[static_cast<std::size_t>(fi)];
    for (const Leaf& l : f.leaves) {
      if (l.kind == kind && l.line == line && l.token == token) return;
    }
    f.leaves.push_back({kind, token, line});
    f.own |= kind;
  }

  void body_token() {
    const std::string& t = tok();
    if (t == "{") {
      scopes_.push_back({ScopeKind::kBlock, "", -1});
      ++i_;
      return;
    }
    if (t == "}") {
      if (!scopes_.empty()) scopes_.pop_back();
      ++i_;
      return;
    }
    const std::size_t line = cur().line;
    if (t == "new") {
      add_leaf(kAlloc, "new", line);
      ++i_;
      return;
    }
    if (t == "throw") {
      add_leaf(kThrow, "throw", line);
      ++i_;
      return;
    }
    if (kLockTypeNames.count(t) != 0) {
      add_leaf(kBlock, t, line);
      ++i_;
      return;
    }
    if (t == "std" && tok(1) == "::" && tok(2) == "function") {
      add_leaf(kAlloc, "std::function", line);
      i_ += 3;
      return;
    }
    // Allocating type construction: Type[<...>] [name] ( / {
    if (t == "Bytes" || (t == "std" && tok(1) == "::" &&
                         kAllocTypeNames.count("std::" + tok(2)) != 0)) {
      const std::string type_name = t == "Bytes" ? "Bytes" : "std::" + tok(2);
      std::size_t j = i_ + (t == "Bytes" ? 1 : 3);
      // Optional template argument list.
      if (j < toks_.size() && toks_[j].text == "<") {
        int depth = 0;
        std::size_t k = j;
        while (k < toks_.size() && k < j + 64) {
          if (toks_[k].text == "<") ++depth;
          if (toks_[k].text == ">" && --depth == 0) {
            j = k + 1;
            break;
          }
          if (toks_[k].text == ";" || toks_[k].text == "{") break;
          ++k;
        }
      }
      const bool direct_call =
          j < toks_.size() && (toks_[j].text == "(" || toks_[j].text == "{");
      const bool decl_with_args =
          j + 1 < toks_.size() && is_ident_tok(toks_[j].text) &&
          (toks_[j + 1].text == "(" || toks_[j + 1].text == "{");
      if (direct_call || decl_with_args) {
        add_leaf(kAlloc, type_name, line);
      }
      ++i_;
      return;
    }
    if (is_ident_tok(t) && kNotACall.count(t) == 0) {
      // Build a forward qualified path and check for a call.
      std::string name = t;
      std::size_t j = i_ + 1;
      while (j + 1 < toks_.size() && toks_[j].text == "::" &&
             is_ident_tok(toks_[j + 1].text)) {
        name += "::" + toks_[j + 1].text;
        j += 2;
      }
      const bool call = j < toks_.size() && toks_[j].text == "(";
      if (call) {
        const bool member =
            i_ > 0 && (toks_[i_ - 1].text == "." || toks_[i_ - 1].text == "->");
        const bool global =
            i_ > 0 && toks_[i_ - 1].text == "::" &&
            (i_ < 2 || !is_ident_tok(toks_[i_ - 2].text));
        const int fi = current_fn();
        if (fi >= 0) {
          graph_.fns[static_cast<std::size_t>(fi)].calls.push_back(
              {name, member, global, line, line_mask(line)});
        }
        i_ = j;  // leave '(' for normal scanning (nested calls)
        return;
      }
      i_ = j;
      return;
    }
    ++i_;
  }

  std::string file_;
  std::vector<Tok> toks_;
  std::map<std::size_t, Suppression> supp_;
  Graph& graph_;
  std::vector<Scope> scopes_;
  std::size_t i_ = 0;
  unsigned pending_ = 0;
};

// ---------------------------------------------------------------------------
// Resolution, SCCs, propagation.
// ---------------------------------------------------------------------------

std::string last_component(const std::string& qname) {
  const std::size_t sep = qname.rfind("::");
  return sep == std::string::npos ? qname : qname.substr(sep + 2);
}

/// Applies the builtin leaf tables to a call site. Returns the effect kind
/// (0 when the call is not a builtin leaf). Builtin names shadow scanned
/// functions by design: anything named push_back or lock is treated as the
/// std/sync primitive it almost certainly is, which keeps chains finite.
unsigned builtin_effect(const CallSite& c) {
  const std::string last = last_component(c.name);
  if (kAllocTypeNames.count(c.name) != 0) return kAlloc;
  if (kAllocCallNames.count(last) != 0) return kAlloc;
  if (kBlockCallNames.count(last) != 0) return kBlock;
  if (kBlockGlobalOnlyNames.count(last) != 0 && c.global) return kBlock;
  return 0;
}

void resolve_calls(Graph& g) {
  // Index by last name component for unqualified resolution.
  std::map<std::string, std::vector<int>> by_last;
  for (std::size_t i = 0; i < g.fns.size(); ++i) {
    by_last[last_component(g.fns[i].qname)].push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < g.fns.size(); ++i) {
    Fn& f = g.fns[i];
    for (const CallSite& c : f.calls) {
      if (c.member && kNeutralMemberNames.count(last_component(c.name)) != 0) {
        continue;  // receiver-dot accessor: effect-free, never a scanned fn
      }
      const unsigned builtin = builtin_effect(c);
      if (builtin != 0) {
        if ((c.mask & builtin) != 0) {
          bool dup = false;
          for (const Leaf& l : f.leaves) {
            if (l.kind == builtin && l.line == c.line && l.token == c.name) {
              dup = true;
              break;
            }
          }
          if (!dup) {
            f.leaves.push_back({builtin, c.name, c.line});
            f.own |= builtin;
          }
        }
        continue;  // builtin leaves terminate the chain: no edges
      }
      std::vector<int> targets;
      if (c.name.find("::") != std::string::npos) {
        // Qualified: exact or suffix match against scanned names.
        for (std::size_t t = 0; t < g.fns.size(); ++t) {
          const std::string& qn = g.fns[t].qname;
          if (qn == c.name ||
              (qn.size() > c.name.size() + 2 &&
               qn.compare(qn.size() - c.name.size() - 2, 2, "::") == 0 &&
               qn.compare(qn.size() - c.name.size(), c.name.size(), c.name) ==
                   0)) {
            targets.push_back(static_cast<int>(t));
          }
        }
      } else {
        // Unqualified or member call: prefer the caller's own class, else
        // fall back to every scanned function with this name (the documented
        // virtual-call / unknown-receiver policy).
        if (!f.cls.empty()) {
          const auto it = g.index.find(f.cls + "::" + c.name);
          if (it != g.index.end()) targets.push_back(it->second);
        }
        if (targets.empty()) {
          const auto it = by_last.find(c.name);
          if (it != by_last.end()) targets = it->second;
        }
      }
      for (int t : targets) {
        if (t == static_cast<int>(i) && !c.member && c.name == f.qname) {
          // exact self call — keep, SCC pass flags it
        }
        f.edges.emplace_back(t, c.mask);
      }
    }
  }
}

/// Tarjan SCC; every function in a nontrivial SCC (or with a self-edge)
/// gets the recursion leaf.
void mark_recursion(Graph& g) {
  const std::size_t n = g.fns.size();
  std::vector<int> indices(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int counter = 0;

  struct Frame {
    int v;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (indices[root] != -1) continue;
    std::vector<Frame> work;
    work.push_back({static_cast<int>(root)});
    indices[root] = low[root] = counter++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = true;
    while (!work.empty()) {
      Frame& fr = work.back();
      const auto& edges = g.fns[static_cast<std::size_t>(fr.v)].edges;
      if (fr.edge < edges.size()) {
        const int w = edges[fr.edge++].first;
        if (indices[static_cast<std::size_t>(w)] == -1) {
          indices[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = counter++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          work.push_back({w});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(fr.v)] =
              std::min(low[static_cast<std::size_t>(fr.v)],
                       indices[static_cast<std::size_t>(w)]);
        }
      } else {
        const int v = fr.v;
        work.pop_back();
        if (!work.empty()) {
          const int parent = work.back().v;
          low[static_cast<std::size_t>(parent)] =
              std::min(low[static_cast<std::size_t>(parent)],
                       low[static_cast<std::size_t>(v)]);
        }
        if (low[static_cast<std::size_t>(v)] ==
            indices[static_cast<std::size_t>(v)]) {
          std::vector<int> scc;
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            scc.push_back(w);
            if (w == v) break;
          }
          bool cyclic = scc.size() > 1;
          if (!cyclic) {
            for (const auto& [t, mask] :
                 g.fns[static_cast<std::size_t>(v)].edges) {
              (void)mask;
              if (t == v) cyclic = true;
            }
          }
          if (cyclic) {
            for (int w : scc) {
              Fn& f = g.fns[static_cast<std::size_t>(w)];
              // The recursion leaf anchors to the definition line, so a
              // PPROX-HOTPATH-OK(recursion) comment on that line drops it —
              // same contract as every other leaf kind.
              const auto fit = g.line_suppressions.find(f.file);
              if (fit != g.line_suppressions.end()) {
                const auto lit = fit->second.find(f.line);
                if (lit != fit->second.end() && (lit->second & kRecur) != 0) {
                  continue;
                }
              }
              f.leaves.push_back({kRecur, "recursion-cycle", f.line});
              f.own |= kRecur;
            }
          }
        }
      }
    }
  }
}

void propagate(Graph& g) {
  for (Fn& f : g.fns) f.reach = f.own;
  bool changed = true;
  std::size_t guard = 0;
  while (changed && guard++ < g.fns.size() + 8) {
    changed = false;
    for (Fn& f : g.fns) {
      unsigned r = f.own;
      for (const auto& [t, mask] : f.edges) {
        r |= g.fns[static_cast<std::size_t>(t)].reach & mask;
      }
      if (r != f.reach) {
        f.reach = r;
        changed = true;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Findings: per annotated root, shortest chain to every offending leaf fn.
// ---------------------------------------------------------------------------

std::string display_chain(const Graph& g, const std::vector<int>& parent,
                          int leaf) {
  std::vector<std::string> names;
  for (int v = leaf; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    names.push_back(g.fns[static_cast<std::size_t>(v)].qname);
  }
  std::reverse(names.begin(), names.end());
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) out += " -> ";
    out += names[i];
  }
  return out;
}

void collect_findings(const Graph& g, std::vector<Finding>& findings) {
  struct RuleSpec {
    unsigned annotation;
    unsigned kind;
    const char* rule;
    const char* what;
  };
  static const RuleSpec kRules[] = {
      {kAnnHot, kAlloc, "hot-alloc", "heap allocation"},
      {kAnnHot, kThrow, "hot-throw", "exception throw"},
      {kAnnHot, kRecur, "hot-recursion", "recursion cycle"},
      {kAnnNonblocking, kBlock, "nonblocking-block", "blocking operation"},
      {kAnnEcall, kAlloc, "ecall-alloc",
       "heap allocation inside the enclave boundary"},
      {kAnnEcall, kBlock, "ecall-block",
       "blocking operation inside the enclave boundary"},
  };
  const char* kAnnName[] = {"PPROX_HOT", "PPROX_NONBLOCKING",
                            "PPROX_ECALL_BOUNDARY"};

  for (std::size_t ri = 0; ri < g.fns.size(); ++ri) {
    const Fn& root = g.fns[ri];
    if (root.annotations == 0) continue;
    for (const RuleSpec& spec : kRules) {
      if ((root.annotations & spec.annotation) == 0) continue;
      if ((root.reach & spec.kind) == 0) continue;
      // BFS over edges that let this effect through.
      std::vector<int> parent(g.fns.size(), -1);
      std::vector<bool> seen(g.fns.size(), false);
      std::queue<int> q;
      q.push(static_cast<int>(ri));
      seen[ri] = true;
      std::vector<int> order;
      while (!q.empty()) {
        const int v = q.front();
        q.pop();
        order.push_back(v);
        for (const auto& [t, mask] :
             g.fns[static_cast<std::size_t>(v)].edges) {
          if ((mask & spec.kind) == 0) continue;
          if ((g.fns[static_cast<std::size_t>(t)].reach & spec.kind) == 0) {
            continue;
          }
          if (!seen[static_cast<std::size_t>(t)]) {
            seen[static_cast<std::size_t>(t)] = true;
            parent[static_cast<std::size_t>(t)] = v;
            q.push(t);
          }
        }
      }
      const char* ann_name =
          spec.annotation == kAnnHot
              ? kAnnName[0]
              : (spec.annotation == kAnnNonblocking ? kAnnName[1]
                                                    : kAnnName[2]);
      for (int v : order) {
        const Fn& leaf_fn = g.fns[static_cast<std::size_t>(v)];
        if ((leaf_fn.own & spec.kind) == 0) continue;
        const Leaf* leaf = nullptr;
        for (const Leaf& l : leaf_fn.leaves) {
          if (l.kind == spec.kind) {
            leaf = &l;
            break;
          }
        }
        if (leaf == nullptr) continue;
        Finding f;
        f.rule = spec.rule;
        f.key = std::string(spec.rule) + "|" + root.qname + "|" +
                leaf_fn.qname + "|" + leaf->token;
        f.path = leaf_fn.file.empty() ? root.file : leaf_fn.file;
        f.line = leaf->line != 0 ? leaf->line : leaf_fn.line;
        f.chain = display_chain(g, parent, v);
        f.message = std::string(ann_name) + " " + root.qname + " reaches " +
                    spec.what + " '" + leaf->token + "': " + f.chain +
                    "; fix it, suppress the leaf line with // " +
                    "PPROX-HOTPATH-" + "OK(" + effect_name(spec.kind) +
                    "): <why>, or ratchet it in the --baseline file";
        findings.push_back(std::move(f));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Baseline and output.
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Reads the "hotpath" entry list: [{"key": "...", "why": "..."}, ...].
/// Returns key -> why, or nullopt-equivalent via ok=false.
bool parse_baseline(const std::string& path,
                    std::map<std::string, std::string>& entries) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::size_t anchor = text.find("\"hotpath\"");
  if (anchor == std::string::npos) return false;
  std::size_t pos = text.find('[', anchor);
  if (pos == std::string::npos) return false;

  auto read_string = [&text](std::size_t from, std::string& out,
                             std::size_t& end) {
    const std::size_t q1 = text.find('"', from);
    if (q1 == std::string::npos) return false;
    std::size_t q2 = q1 + 1;
    while (q2 < text.size() && text[q2] != '"') {
      if (text[q2] == '\\') ++q2;
      ++q2;
    }
    if (q2 >= text.size()) return false;
    out = text.substr(q1 + 1, q2 - q1 - 1);
    end = q2 + 1;
    return true;
  };

  while (true) {
    const std::size_t key_pos = text.find("\"key\"", pos);
    if (key_pos == std::string::npos) break;
    const std::size_t colon = text.find(':', key_pos + 5);
    if (colon == std::string::npos) break;
    std::string key;
    std::size_t after = 0;
    if (!read_string(colon + 1, key, after)) break;
    std::string why;
    const std::size_t why_pos = text.find("\"why\"", after);
    const std::size_t next_key = text.find("\"key\"", after);
    if (why_pos != std::string::npos &&
        (next_key == std::string::npos || why_pos < next_key)) {
      const std::size_t wcolon = text.find(':', why_pos + 5);
      std::size_t wend = 0;
      if (wcolon != std::string::npos) read_string(wcolon + 1, why, wend);
    }
    entries[key] = why;
    pos = after;
  }
  return true;
}

bool write_baseline(const std::string& path,
                    const std::vector<Finding>& findings,
                    const std::map<std::string, std::string>& old_whys) {
  std::map<std::string, std::string> entries;  // key -> why (sorted, deduped)
  for (const Finding& f : findings) {
    const auto it = old_whys.find(f.key);
    entries[f.key] = it != old_whys.end() && !it->second.empty()
                         ? it->second
                         : "baselined pre-existing violation; shrink, do not "
                           "grow (DESIGN.md §11.4)";
  }
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"hotpath\": [";
  bool first = true;
  for (const auto& [key, why] : entries) {
    out << (first ? "" : ",") << "\n    {\"key\": \"" << json_escape(key)
        << "\",\n     \"why\": \"" << json_escape(why) << "\"}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return true;
}

void print_json(const std::vector<Finding>& findings, std::size_t files) {
  std::cout << "{\n  \"mode\": \"hotpath\",\n  \"files\": " << files
            << ",\n  \"total\": " << findings.size() << ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    std::cout << (first ? "" : ",") << "\n    {\"path\": \""
              << json_escape(f.path) << "\", \"line\": " << f.line
              << ", \"rule\": \"" << f.rule << "\", \"key\": \""
              << json_escape(f.key) << "\", \"chain\": \""
              << json_escape(f.chain) << "\", \"message\": \""
              << json_escape(f.message) << "\"}";
    first = false;
  }
  std::cout << (first ? "" : "\n  ") << "]\n}\n";
}

}  // namespace

int run(const Options& opts) {
  Graph graph;
  std::size_t files = 0;
  for (const fs::path& path : opts.inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "pprox_lint: cannot read " << path << "\n";
      return 2;
    }
    std::vector<std::string> raw;
    std::string line;
    while (std::getline(in, line)) raw.push_back(line);
    ++files;

    auto supp = scan_suppressions(raw);
    for (const auto& [ln, s] : supp) {
      if (!s.bare) continue;
      Finding f;
      f.rule = "hotpath-bare-suppression";
      f.key = std::string("hotpath-bare-suppression|") +
              path.filename().string() + "|" + std::to_string(ln);
      f.path = path.string();
      f.line = ln;
      f.chain = "";
      f.message =
          "hot-path suppression without a justification; write "
          "PPROX-HOTPATH-" "OK(<effect>): <why> (the bare form suppresses "
          "nothing)";
      graph.bare_findings.push_back(std::move(f));
    }
    for (const auto& [ln, s] : supp) {
      if (!s.bare) graph.line_suppressions[path.string()][ln] |= s.effects;
    }
    Parser parser(path.string(), tokenize(code_lines(raw)), std::move(supp),
                  graph);
    parser.parse();
  }

  // Merge annotations recorded on declarations into their definitions.
  for (const auto& [qname, ann] : graph.decl_annotations) {
    graph.get_or_create(qname).annotations |= ann;
  }

  resolve_calls(graph);
  mark_recursion(graph);
  propagate(graph);

  std::vector<Finding> findings = std::move(graph.bare_findings);
  collect_findings(graph, findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.path, a.line, a.key) <
                            std::tie(b.path, b.line, b.key);
                   });

  if (!opts.baseline_write.empty()) {
    std::map<std::string, std::string> old_whys;
    parse_baseline(opts.baseline_write, old_whys);  // best effort carry-over
    if (!write_baseline(opts.baseline_write, findings, old_whys)) {
      std::cerr << "pprox_lint: cannot write baseline "
                << opts.baseline_write << "\n";
      return 2;
    }
    std::cout << "pprox_lint: wrote " << findings.size()
              << " hotpath baseline entr"
              << (findings.size() == 1 ? "y" : "ies") << " to "
              << opts.baseline_write << "\n";
    return 0;
  }

  if (opts.json) {
    print_json(findings, files);
  } else if (opts.baseline.empty()) {
    for (const Finding& f : findings) {
      std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }

  if (!opts.baseline.empty()) {
    std::map<std::string, std::string> base;
    if (!parse_baseline(opts.baseline, base)) {
      std::cerr << "pprox_lint: cannot parse hotpath baseline "
                << opts.baseline << "\n";
      return 2;
    }
    std::set<std::string> current;
    bool regressed = false;
    for (const Finding& f : findings) {
      current.insert(f.key);
      const bool bare = f.rule == "hotpath-bare-suppression";
      if (!bare && base.count(f.key) != 0) continue;  // ratcheted, silent
      // New key (or a bare suppression, which is never baselinable): print
      // the full finding — in ratchet mode only regressions make noise.
      if (!opts.json) {
        std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
      }
      std::cerr << "pprox_lint: REGRESSION: "
                << (bare ? "bare suppression is never baselinable: "
                         : "new hot-path violation not in baseline: ")
                << f.key << "\n";
      regressed = true;
    }
    std::size_t stale = 0;
    for (const auto& [key, why] : base) {
      (void)why;
      if (current.count(key) == 0) {
        std::cerr << "pprox_lint: note: baseline entry no longer fires "
                     "(tighten with --baseline-write): "
                  << key << "\n";
        ++stale;
      }
    }
    if (regressed) return 1;
    if (!opts.json) {
      std::cout << "pprox_lint: " << files << " file(s), " << findings.size()
                << " hot-path finding(s), all within baseline";
      if (stale != 0) std::cout << " (" << stale << " stale entr"
                                << (stale == 1 ? "y" : "ies") << ")";
      std::cout << "\n";
    }
    return 0;
  }

  if (!findings.empty()) {
    std::cerr << findings.size() << " hot-path finding(s) in " << files
              << " file(s)\n";
    return 1;
  }
  if (!opts.json) {
    std::cout << "pprox_lint: " << files << " file(s) hot-path clean\n";
  }
  return 0;
}

}  // namespace hotpath
