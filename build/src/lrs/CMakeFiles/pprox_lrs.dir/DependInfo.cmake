
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lrs/cco.cpp" "src/lrs/CMakeFiles/pprox_lrs.dir/cco.cpp.o" "gcc" "src/lrs/CMakeFiles/pprox_lrs.dir/cco.cpp.o.d"
  "/root/repo/src/lrs/docstore.cpp" "src/lrs/CMakeFiles/pprox_lrs.dir/docstore.cpp.o" "gcc" "src/lrs/CMakeFiles/pprox_lrs.dir/docstore.cpp.o.d"
  "/root/repo/src/lrs/harness.cpp" "src/lrs/CMakeFiles/pprox_lrs.dir/harness.cpp.o" "gcc" "src/lrs/CMakeFiles/pprox_lrs.dir/harness.cpp.o.d"
  "/root/repo/src/lrs/scheduler.cpp" "src/lrs/CMakeFiles/pprox_lrs.dir/scheduler.cpp.o" "gcc" "src/lrs/CMakeFiles/pprox_lrs.dir/scheduler.cpp.o.d"
  "/root/repo/src/lrs/search_index.cpp" "src/lrs/CMakeFiles/pprox_lrs.dir/search_index.cpp.o" "gcc" "src/lrs/CMakeFiles/pprox_lrs.dir/search_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/json/CMakeFiles/pprox_json.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/pprox_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
