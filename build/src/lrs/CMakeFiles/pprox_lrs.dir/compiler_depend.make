# Empty compiler generated dependencies file for pprox_lrs.
# This may be replaced when dependencies are built.
