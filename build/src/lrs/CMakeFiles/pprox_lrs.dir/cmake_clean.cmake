file(REMOVE_RECURSE
  "CMakeFiles/pprox_lrs.dir/cco.cpp.o"
  "CMakeFiles/pprox_lrs.dir/cco.cpp.o.d"
  "CMakeFiles/pprox_lrs.dir/docstore.cpp.o"
  "CMakeFiles/pprox_lrs.dir/docstore.cpp.o.d"
  "CMakeFiles/pprox_lrs.dir/harness.cpp.o"
  "CMakeFiles/pprox_lrs.dir/harness.cpp.o.d"
  "CMakeFiles/pprox_lrs.dir/scheduler.cpp.o"
  "CMakeFiles/pprox_lrs.dir/scheduler.cpp.o.d"
  "CMakeFiles/pprox_lrs.dir/search_index.cpp.o"
  "CMakeFiles/pprox_lrs.dir/search_index.cpp.o.d"
  "libpprox_lrs.a"
  "libpprox_lrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_lrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
