file(REMOVE_RECURSE
  "libpprox_lrs.a"
)
