# CMake generated Testfile for 
# Source directory: /root/repo/src/lrs
# Build directory: /root/repo/build/src/lrs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
