file(REMOVE_RECURSE
  "CMakeFiles/pprox_crypto.dir/aes.cpp.o"
  "CMakeFiles/pprox_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/pprox_crypto.dir/bigint.cpp.o"
  "CMakeFiles/pprox_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/pprox_crypto.dir/ctr.cpp.o"
  "CMakeFiles/pprox_crypto.dir/ctr.cpp.o.d"
  "CMakeFiles/pprox_crypto.dir/drbg.cpp.o"
  "CMakeFiles/pprox_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/pprox_crypto.dir/gcm.cpp.o"
  "CMakeFiles/pprox_crypto.dir/gcm.cpp.o.d"
  "CMakeFiles/pprox_crypto.dir/hybrid.cpp.o"
  "CMakeFiles/pprox_crypto.dir/hybrid.cpp.o.d"
  "CMakeFiles/pprox_crypto.dir/prime.cpp.o"
  "CMakeFiles/pprox_crypto.dir/prime.cpp.o.d"
  "CMakeFiles/pprox_crypto.dir/rsa.cpp.o"
  "CMakeFiles/pprox_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/pprox_crypto.dir/sha256.cpp.o"
  "CMakeFiles/pprox_crypto.dir/sha256.cpp.o.d"
  "libpprox_crypto.a"
  "libpprox_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
