# Empty dependencies file for pprox_crypto.
# This may be replaced when dependencies are built.
