file(REMOVE_RECURSE
  "libpprox_crypto.a"
)
