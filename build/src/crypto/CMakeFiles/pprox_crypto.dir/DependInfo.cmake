
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/pprox_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/pprox_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/pprox_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/pprox_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/ctr.cpp" "src/crypto/CMakeFiles/pprox_crypto.dir/ctr.cpp.o" "gcc" "src/crypto/CMakeFiles/pprox_crypto.dir/ctr.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/crypto/CMakeFiles/pprox_crypto.dir/drbg.cpp.o" "gcc" "src/crypto/CMakeFiles/pprox_crypto.dir/drbg.cpp.o.d"
  "/root/repo/src/crypto/gcm.cpp" "src/crypto/CMakeFiles/pprox_crypto.dir/gcm.cpp.o" "gcc" "src/crypto/CMakeFiles/pprox_crypto.dir/gcm.cpp.o.d"
  "/root/repo/src/crypto/hybrid.cpp" "src/crypto/CMakeFiles/pprox_crypto.dir/hybrid.cpp.o" "gcc" "src/crypto/CMakeFiles/pprox_crypto.dir/hybrid.cpp.o.d"
  "/root/repo/src/crypto/prime.cpp" "src/crypto/CMakeFiles/pprox_crypto.dir/prime.cpp.o" "gcc" "src/crypto/CMakeFiles/pprox_crypto.dir/prime.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/pprox_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/pprox_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/pprox_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/pprox_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
