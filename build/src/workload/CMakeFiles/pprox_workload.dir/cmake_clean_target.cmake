file(REMOVE_RECURSE
  "libpprox_workload.a"
)
