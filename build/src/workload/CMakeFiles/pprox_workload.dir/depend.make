# Empty dependencies file for pprox_workload.
# This may be replaced when dependencies are built.
