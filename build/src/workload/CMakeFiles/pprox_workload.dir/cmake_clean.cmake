file(REMOVE_RECURSE
  "CMakeFiles/pprox_workload.dir/injector.cpp.o"
  "CMakeFiles/pprox_workload.dir/injector.cpp.o.d"
  "CMakeFiles/pprox_workload.dir/movielens.cpp.o"
  "CMakeFiles/pprox_workload.dir/movielens.cpp.o.d"
  "libpprox_workload.a"
  "libpprox_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
