file(REMOVE_RECURSE
  "libpprox_attack.a"
)
