# Empty compiler generated dependencies file for pprox_attack.
# This may be replaced when dependencies are built.
