file(REMOVE_RECURSE
  "CMakeFiles/pprox_attack.dir/adversary.cpp.o"
  "CMakeFiles/pprox_attack.dir/adversary.cpp.o.d"
  "CMakeFiles/pprox_attack.dir/correlation.cpp.o"
  "CMakeFiles/pprox_attack.dir/correlation.cpp.o.d"
  "libpprox_attack.a"
  "libpprox_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
