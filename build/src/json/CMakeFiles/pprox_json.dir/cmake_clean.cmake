file(REMOVE_RECURSE
  "CMakeFiles/pprox_json.dir/json.cpp.o"
  "CMakeFiles/pprox_json.dir/json.cpp.o.d"
  "libpprox_json.a"
  "libpprox_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
