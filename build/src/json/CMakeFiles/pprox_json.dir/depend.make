# Empty dependencies file for pprox_json.
# This may be replaced when dependencies are built.
