file(REMOVE_RECURSE
  "libpprox_json.a"
)
