# Empty dependencies file for pprox_common.
# This may be replaced when dependencies are built.
