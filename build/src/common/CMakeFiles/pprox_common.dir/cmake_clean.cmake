file(REMOVE_RECURSE
  "CMakeFiles/pprox_common.dir/encoding.cpp.o"
  "CMakeFiles/pprox_common.dir/encoding.cpp.o.d"
  "CMakeFiles/pprox_common.dir/logging.cpp.o"
  "CMakeFiles/pprox_common.dir/logging.cpp.o.d"
  "CMakeFiles/pprox_common.dir/stats.cpp.o"
  "CMakeFiles/pprox_common.dir/stats.cpp.o.d"
  "libpprox_common.a"
  "libpprox_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
