file(REMOVE_RECURSE
  "libpprox_common.a"
)
