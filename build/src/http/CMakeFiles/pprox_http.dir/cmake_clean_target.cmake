file(REMOVE_RECURSE
  "libpprox_http.a"
)
