file(REMOVE_RECURSE
  "CMakeFiles/pprox_http.dir/http.cpp.o"
  "CMakeFiles/pprox_http.dir/http.cpp.o.d"
  "libpprox_http.a"
  "libpprox_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
