# Empty dependencies file for pprox_http.
# This may be replaced when dependencies are built.
