# Empty compiler generated dependencies file for pprox_enclave.
# This may be replaced when dependencies are built.
