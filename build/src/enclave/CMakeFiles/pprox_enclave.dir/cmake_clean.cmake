file(REMOVE_RECURSE
  "CMakeFiles/pprox_enclave.dir/attestation.cpp.o"
  "CMakeFiles/pprox_enclave.dir/attestation.cpp.o.d"
  "CMakeFiles/pprox_enclave.dir/enclave.cpp.o"
  "CMakeFiles/pprox_enclave.dir/enclave.cpp.o.d"
  "libpprox_enclave.a"
  "libpprox_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
