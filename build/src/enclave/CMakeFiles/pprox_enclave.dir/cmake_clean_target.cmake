file(REMOVE_RECURSE
  "libpprox_enclave.a"
)
