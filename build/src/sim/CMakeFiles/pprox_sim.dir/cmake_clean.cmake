file(REMOVE_RECURSE
  "CMakeFiles/pprox_sim.dir/cluster.cpp.o"
  "CMakeFiles/pprox_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/pprox_sim.dir/des.cpp.o"
  "CMakeFiles/pprox_sim.dir/des.cpp.o.d"
  "libpprox_sim.a"
  "libpprox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
