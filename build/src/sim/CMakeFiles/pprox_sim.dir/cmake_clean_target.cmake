file(REMOVE_RECURSE
  "libpprox_sim.a"
)
