# Empty dependencies file for pprox_sim.
# This may be replaced when dependencies are built.
