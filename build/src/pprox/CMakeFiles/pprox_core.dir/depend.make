# Empty dependencies file for pprox_core.
# This may be replaced when dependencies are built.
