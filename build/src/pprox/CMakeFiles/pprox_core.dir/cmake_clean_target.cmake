file(REMOVE_RECURSE
  "libpprox_core.a"
)
