
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pprox/client.cpp" "src/pprox/CMakeFiles/pprox_core.dir/client.cpp.o" "gcc" "src/pprox/CMakeFiles/pprox_core.dir/client.cpp.o.d"
  "/root/repo/src/pprox/deployment.cpp" "src/pprox/CMakeFiles/pprox_core.dir/deployment.cpp.o" "gcc" "src/pprox/CMakeFiles/pprox_core.dir/deployment.cpp.o.d"
  "/root/repo/src/pprox/keys.cpp" "src/pprox/CMakeFiles/pprox_core.dir/keys.cpp.o" "gcc" "src/pprox/CMakeFiles/pprox_core.dir/keys.cpp.o.d"
  "/root/repo/src/pprox/logic.cpp" "src/pprox/CMakeFiles/pprox_core.dir/logic.cpp.o" "gcc" "src/pprox/CMakeFiles/pprox_core.dir/logic.cpp.o.d"
  "/root/repo/src/pprox/message.cpp" "src/pprox/CMakeFiles/pprox_core.dir/message.cpp.o" "gcc" "src/pprox/CMakeFiles/pprox_core.dir/message.cpp.o.d"
  "/root/repo/src/pprox/proxy.cpp" "src/pprox/CMakeFiles/pprox_core.dir/proxy.cpp.o" "gcc" "src/pprox/CMakeFiles/pprox_core.dir/proxy.cpp.o.d"
  "/root/repo/src/pprox/rotation.cpp" "src/pprox/CMakeFiles/pprox_core.dir/rotation.cpp.o" "gcc" "src/pprox/CMakeFiles/pprox_core.dir/rotation.cpp.o.d"
  "/root/repo/src/pprox/shuffle.cpp" "src/pprox/CMakeFiles/pprox_core.dir/shuffle.cpp.o" "gcc" "src/pprox/CMakeFiles/pprox_core.dir/shuffle.cpp.o.d"
  "/root/repo/src/pprox/tenancy.cpp" "src/pprox/CMakeFiles/pprox_core.dir/tenancy.cpp.o" "gcc" "src/pprox/CMakeFiles/pprox_core.dir/tenancy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/pprox_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/pprox_json.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/pprox_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/enclave/CMakeFiles/pprox_enclave.dir/DependInfo.cmake"
  "/root/repo/build/src/lrs/CMakeFiles/pprox_lrs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
