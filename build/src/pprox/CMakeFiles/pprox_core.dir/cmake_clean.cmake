file(REMOVE_RECURSE
  "CMakeFiles/pprox_core.dir/client.cpp.o"
  "CMakeFiles/pprox_core.dir/client.cpp.o.d"
  "CMakeFiles/pprox_core.dir/deployment.cpp.o"
  "CMakeFiles/pprox_core.dir/deployment.cpp.o.d"
  "CMakeFiles/pprox_core.dir/keys.cpp.o"
  "CMakeFiles/pprox_core.dir/keys.cpp.o.d"
  "CMakeFiles/pprox_core.dir/logic.cpp.o"
  "CMakeFiles/pprox_core.dir/logic.cpp.o.d"
  "CMakeFiles/pprox_core.dir/message.cpp.o"
  "CMakeFiles/pprox_core.dir/message.cpp.o.d"
  "CMakeFiles/pprox_core.dir/proxy.cpp.o"
  "CMakeFiles/pprox_core.dir/proxy.cpp.o.d"
  "CMakeFiles/pprox_core.dir/rotation.cpp.o"
  "CMakeFiles/pprox_core.dir/rotation.cpp.o.d"
  "CMakeFiles/pprox_core.dir/shuffle.cpp.o"
  "CMakeFiles/pprox_core.dir/shuffle.cpp.o.d"
  "CMakeFiles/pprox_core.dir/tenancy.cpp.o"
  "CMakeFiles/pprox_core.dir/tenancy.cpp.o.d"
  "libpprox_core.a"
  "libpprox_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
