file(REMOVE_RECURSE
  "CMakeFiles/pprox_net.dir/socket.cpp.o"
  "CMakeFiles/pprox_net.dir/socket.cpp.o.d"
  "CMakeFiles/pprox_net.dir/tcp.cpp.o"
  "CMakeFiles/pprox_net.dir/tcp.cpp.o.d"
  "libpprox_net.a"
  "libpprox_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprox_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
