file(REMOVE_RECURSE
  "libpprox_net.a"
)
