# Empty compiler generated dependencies file for pprox_net.
# This may be replaced when dependencies are built.
