file(REMOVE_RECURSE
  "CMakeFiles/movie_raas.dir/movie_raas.cpp.o"
  "CMakeFiles/movie_raas.dir/movie_raas.cpp.o.d"
  "movie_raas"
  "movie_raas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_raas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
