# Empty dependencies file for movie_raas.
# This may be replaced when dependencies are built.
