file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_raas.dir/multi_tenant_raas.cpp.o"
  "CMakeFiles/multi_tenant_raas.dir/multi_tenant_raas.cpp.o.d"
  "multi_tenant_raas"
  "multi_tenant_raas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_raas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
