# Empty dependencies file for multi_tenant_raas.
# This may be replaced when dependencies are built.
