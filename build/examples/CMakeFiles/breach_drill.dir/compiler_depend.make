# Empty compiler generated dependencies file for breach_drill.
# This may be replaced when dependencies are built.
