# Empty dependencies file for test_tenancy.
# This may be replaced when dependencies are built.
