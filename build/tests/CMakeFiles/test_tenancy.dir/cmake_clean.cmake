file(REMOVE_RECURSE
  "CMakeFiles/test_tenancy.dir/test_tenancy.cpp.o"
  "CMakeFiles/test_tenancy.dir/test_tenancy.cpp.o.d"
  "test_tenancy"
  "test_tenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
