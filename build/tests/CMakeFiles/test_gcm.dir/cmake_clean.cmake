file(REMOVE_RECURSE
  "CMakeFiles/test_gcm.dir/test_gcm.cpp.o"
  "CMakeFiles/test_gcm.dir/test_gcm.cpp.o.d"
  "test_gcm"
  "test_gcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
