file(REMOVE_RECURSE
  "CMakeFiles/test_search_index.dir/test_search_index.cpp.o"
  "CMakeFiles/test_search_index.dir/test_search_index.cpp.o.d"
  "test_search_index"
  "test_search_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
