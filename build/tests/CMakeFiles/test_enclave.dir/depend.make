# Empty dependencies file for test_enclave.
# This may be replaced when dependencies are built.
