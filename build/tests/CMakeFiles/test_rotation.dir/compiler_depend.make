# Empty compiler generated dependencies file for test_rotation.
# This may be replaced when dependencies are built.
