
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_docstore.cpp" "tests/CMakeFiles/test_docstore.dir/test_docstore.cpp.o" "gcc" "tests/CMakeFiles/test_docstore.dir/test_docstore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lrs/CMakeFiles/pprox_lrs.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/pprox_json.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/pprox_http.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
