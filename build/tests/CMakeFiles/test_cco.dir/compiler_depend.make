# Empty compiler generated dependencies file for test_cco.
# This may be replaced when dependencies are built.
