file(REMOVE_RECURSE
  "CMakeFiles/test_cco.dir/test_cco.cpp.o"
  "CMakeFiles/test_cco.dir/test_cco.cpp.o.d"
  "test_cco"
  "test_cco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
