file(REMOVE_RECURSE
  "CMakeFiles/table2_microbench_matrix.dir/table2_microbench_matrix.cpp.o"
  "CMakeFiles/table2_microbench_matrix.dir/table2_microbench_matrix.cpp.o.d"
  "table2_microbench_matrix"
  "table2_microbench_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_microbench_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
