# Empty dependencies file for fig9_harness_baseline.
# This may be replaced when dependencies are built.
