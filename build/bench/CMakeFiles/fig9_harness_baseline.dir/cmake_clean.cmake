file(REMOVE_RECURSE
  "CMakeFiles/fig9_harness_baseline.dir/fig9_harness_baseline.cpp.o"
  "CMakeFiles/fig9_harness_baseline.dir/fig9_harness_baseline.cpp.o.d"
  "fig9_harness_baseline"
  "fig9_harness_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_harness_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
