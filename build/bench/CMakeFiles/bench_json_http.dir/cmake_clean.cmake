file(REMOVE_RECURSE
  "CMakeFiles/bench_json_http.dir/bench_json_http.cpp.o"
  "CMakeFiles/bench_json_http.dir/bench_json_http.cpp.o.d"
  "bench_json_http"
  "bench_json_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_json_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
