# Empty compiler generated dependencies file for bench_json_http.
# This may be replaced when dependencies are built.
