file(REMOVE_RECURSE
  "CMakeFiles/sec62_unlinkability.dir/sec62_unlinkability.cpp.o"
  "CMakeFiles/sec62_unlinkability.dir/sec62_unlinkability.cpp.o.d"
  "sec62_unlinkability"
  "sec62_unlinkability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_unlinkability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
