# Empty dependencies file for sec62_unlinkability.
# This may be replaced when dependencies are built.
