# Empty dependencies file for fig10_full_system.
# This may be replaced when dependencies are built.
