file(REMOVE_RECURSE
  "CMakeFiles/fig10_full_system.dir/fig10_full_system.cpp.o"
  "CMakeFiles/fig10_full_system.dir/fig10_full_system.cpp.o.d"
  "fig10_full_system"
  "fig10_full_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_full_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
