file(REMOVE_RECURSE
  "CMakeFiles/fig7_shuffling.dir/fig7_shuffling.cpp.o"
  "CMakeFiles/fig7_shuffling.dir/fig7_shuffling.cpp.o.d"
  "fig7_shuffling"
  "fig7_shuffling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_shuffling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
