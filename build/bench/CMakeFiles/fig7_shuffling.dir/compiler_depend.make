# Empty compiler generated dependencies file for fig7_shuffling.
# This may be replaced when dependencies are built.
