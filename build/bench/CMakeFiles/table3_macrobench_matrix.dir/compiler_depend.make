# Empty compiler generated dependencies file for table3_macrobench_matrix.
# This may be replaced when dependencies are built.
