# Empty dependencies file for sec63_history_attack.
# This may be replaced when dependencies are built.
