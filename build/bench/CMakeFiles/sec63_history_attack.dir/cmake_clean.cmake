file(REMOVE_RECURSE
  "CMakeFiles/sec63_history_attack.dir/sec63_history_attack.cpp.o"
  "CMakeFiles/sec63_history_attack.dir/sec63_history_attack.cpp.o.d"
  "sec63_history_attack"
  "sec63_history_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_history_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
