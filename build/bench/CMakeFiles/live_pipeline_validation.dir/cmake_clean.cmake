file(REMOVE_RECURSE
  "CMakeFiles/live_pipeline_validation.dir/live_pipeline_validation.cpp.o"
  "CMakeFiles/live_pipeline_validation.dir/live_pipeline_validation.cpp.o.d"
  "live_pipeline_validation"
  "live_pipeline_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_pipeline_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
