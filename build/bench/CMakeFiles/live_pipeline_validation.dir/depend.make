# Empty dependencies file for live_pipeline_validation.
# This may be replaced when dependencies are built.
