file(REMOVE_RECURSE
  "CMakeFiles/fig6_privacy_features.dir/fig6_privacy_features.cpp.o"
  "CMakeFiles/fig6_privacy_features.dir/fig6_privacy_features.cpp.o.d"
  "fig6_privacy_features"
  "fig6_privacy_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_privacy_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
