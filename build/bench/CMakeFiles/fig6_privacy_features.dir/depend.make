# Empty dependencies file for fig6_privacy_features.
# This may be replaced when dependencies are built.
