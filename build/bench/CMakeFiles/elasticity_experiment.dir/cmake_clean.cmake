file(REMOVE_RECURSE
  "CMakeFiles/elasticity_experiment.dir/elasticity_experiment.cpp.o"
  "CMakeFiles/elasticity_experiment.dir/elasticity_experiment.cpp.o.d"
  "elasticity_experiment"
  "elasticity_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticity_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
