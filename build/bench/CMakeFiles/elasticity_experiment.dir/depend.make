# Empty dependencies file for elasticity_experiment.
# This may be replaced when dependencies are built.
