#!/usr/bin/env bash
# One-command local reproduction of the full static/dynamic analysis gate:
#
#   1. crypto-hygiene + information-flow lint (tools/pprox_lint --flow) over
#      every layered directory, gated against tools/lint_baseline.json
#   2. hot-path discipline lint (tools/pprox_lint --hotpath) over the whole
#      src/ tree, gated against tools/hotpath_baseline.json (DESIGN.md §11),
#      then lock discipline (--locks, §12), constant-time discipline
#      (--ct, §13), and lifetime/escape discipline (--lifetime, §14) over
#      src/ against their committed baselines
#   3. negative-compile suite (tests/compile_fail/): taint-domain violations
#      must fail to compile
#   4. lint golden fixtures (tests/lint_fixtures/): analyzer behaviour pins
#   5. ASan + UBSan build, full ctest suite (leaks, overflows, UB)
#   6. lifetime selftest: -DPPROX_CHECK_SELFTEST dangling-view variant must
#      be caught by BOTH pprox_lint --lifetime and ASan (WILL_FAIL pair)
#   7. TSan build, concurrency-heavy tests (races in queue/pool/shuffler)
#   8. clang-tidy (bugprone-*, concurrency-*, performance-*) when installed
#
# Usage:
#   scripts/check.sh           # full gate (several minutes)
#   scripts/check.sh --quick   # lint + compile-fail + fixtures + ASan smoke
#   scripts/check.sh --model   # pprox_check interleaving exploration only:
#                              # normal build (models must pass) + selftest
#                              # fault-injection build (models must fail)
#   scripts/check.sh --bench   # regression gate: run bench_crypto /
#                              # bench_pipeline, compare against the
#                              # committed BENCH_*.json via bench_report.py
#                              # --compare; fails on > PPROX_BENCH_THRESHOLD
#                              # (default 0.15 = 15%) cpu-time regression
#   scripts/check.sh --bench-update
#                              # rewrite BENCH_crypto.json / BENCH_pipeline.
#                              # json at the repo root from a fresh run
#   scripts/check.sh --tidy    # clang-tidy only (needs LLVM installed)
#
# Every stage is wall-clocked; a summary table prints at the end with a
# per-stage status column (ok / warn / FAIL), and a failure reports the
# stage it died in (fail-fast via ERR trap). Lint stages that exit 2
# (operational warning) or report stale baseline entries finish as `warn`
# instead of folding into success — the gate still passes, but the state
# is visible.
#
# Sanitizer and model-check stages run with PPROX_DISABLE_ACCEL=1: the
# portable reference path is the one whose every byte ASan/UBSan/TSan can
# instrument (intrinsics hide loads from the shadow), and tests that matter
# for the accelerated kernels pin Backend::kAccelerated explicitly
# (test_accel), which overrides the env var by design.
#
# Build trees land in build-asan/, build-tsan/, build-bench/, build-model/,
# build-model-selftest/ and build-lifetime-selftest/ next to build/ and are
# reused across runs (incremental). Exit status is nonzero on any failure.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-full}"
BENCH_THRESHOLD="${PPROX_BENCH_THRESHOLD:-0.15}"

# Abort on the first sanitizer report instead of limping on; TSan history
# sized for the deep happens-before graphs of the pipeline tests.
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1:abort_on_error=0"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:history_size=7"

# Sanitized/model runs exercise the portable crypto reference; accelerated
# kernels are covered by test_accel's explicit backend pinning (see header).
case "$MODE" in --bench|--bench-update) ;; *) export PPROX_DISABLE_ACCEL=1 ;; esac

# --- stage bookkeeping ------------------------------------------------------
STAGE_NAMES=()
STAGE_TIMES=()
STAGE_STATUS=()
CURRENT_STAGE=""
CURRENT_STATUS="ok"
STAGE_T0=0

finish_stage() {
  if [[ -n "$CURRENT_STAGE" ]]; then
    STAGE_NAMES+=("$CURRENT_STAGE")
    STAGE_TIMES+=("$(($(date +%s) - STAGE_T0))")
    STAGE_STATUS+=("$CURRENT_STATUS")
    CURRENT_STAGE=""
    CURRENT_STATUS="ok"
  fi
}

step() {
  finish_stage
  CURRENT_STAGE="$*"
  STAGE_T0="$(date +%s)"
  printf '\n\033[1m== %s ==\033[0m\n' "$*"
}

summary() {
  finish_stage
  printf '\n\033[1m%-55s %8s  %s\033[0m\n' "stage" "seconds" "status"
  local i total=0
  for i in "${!STAGE_NAMES[@]}"; do
    printf '%-55s %8s  %s\n' "${STAGE_NAMES[$i]}" "${STAGE_TIMES[$i]}" \
      "${STAGE_STATUS[$i]}"
    total=$((total + STAGE_TIMES[i]))
  done
  printf '%-55s %8s\n' "total" "$total"
}

on_error() {
  CURRENT_STATUS="FAIL"
  printf '\n\033[1;31mFAILED in stage: %s\033[0m\n' \
    "${CURRENT_STAGE:-<setup>}" >&2
  summary >&2 || true
}
trap on_error ERR

# Runs one pprox_lint invocation, mapping its exit-code convention onto the
# stage status: 0 is ok (downgraded to `warn` if stale baseline entries were
# reported), 2 (operational warning: unreadable input, missing baseline) is
# `warn` and does NOT abort the gate, and 1 (findings/regressions) fails the
# stage via the ERR trap as before.
run_lint() {
  local rc=0 out
  out="$("$@" 2>&1)" || rc=$?
  printf '%s\n' "$out"
  case "$rc" in
    0) if grep -q 'note: baseline entry no longer fires' <<<"$out"; then
         CURRENT_STATUS="warn"
       fi ;;
    2) printf '\033[1;33mwarn: %s exited 2 (operational warning)\033[0m\n' \
         "$1" >&2
       CURRENT_STATUS="warn" ;;
    *) return "$rc" ;;
  esac
  return 0
}

configure_and_build() {
  local dir="$1" sanitize="$2"
  shift 2
  cmake -B "$ROOT/$dir" -S "$ROOT" -DPPROX_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$ROOT/$dir" -j "$JOBS" "$@"
}

run_tidy() {
  if command -v clang-tidy >/dev/null 2>&1; then
    step "clang-tidy (bugprone-*, concurrency-*, performance-*)"
    cmake -B "$ROOT/build-tidy" -S "$ROOT" \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    # Sources only; headers are covered via HeaderFilterRegex in .clang-tidy.
    find "$ROOT/src" "$ROOT/tools" -name '*.cpp' -print0 |
      xargs -0 -P "$JOBS" -n 8 clang-tidy -p "$ROOT/build-tidy" --quiet
  else
    step "clang-tidy not installed — skipped (install LLVM to enable)"
  fi
}

run_bench() {
  # A Release tree so the numbers reflect the shipped optimization level,
  # not RelWithDebInfo sanitizer scaffolding. Each binary runs both backend
  # variants in one process (BENCHMARK_CAPTURE pins Backend::kPortable /
  # kAccelerated), so the speedup column compares like with like.
  local update="$1"
  step "bench: build + run crypto and pipeline benchmarks"
  cmake -B "$ROOT/build-bench" -S "$ROOT" \
        -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$ROOT/build-bench" -j "$JOBS" \
        --target bench_crypto bench_pipeline
  local name
  for name in crypto pipeline; do
    "$ROOT/build-bench/bench/bench_$name" \
        --benchmark_format=json --benchmark_out_format=json \
        --benchmark_out="$ROOT/build-bench/bench_${name}_raw.json" >/dev/null
    python3 "$ROOT/scripts/bench_report.py" \
        "$ROOT/build-bench/bench_${name}_raw.json" \
        "$ROOT/build-bench/BENCH_${name}.json"
  done

  if [[ "$update" == 1 ]]; then
    step "bench baseline update: BENCH_crypto.json, BENCH_pipeline.json"
    cp "$ROOT/build-bench/BENCH_crypto.json" "$ROOT/BENCH_crypto.json"
    cp "$ROOT/build-bench/BENCH_pipeline.json" "$ROOT/BENCH_pipeline.json"
  else
    step "bench regression gate (threshold ${BENCH_THRESHOLD})"
    for name in crypto pipeline; do
      echo "BENCH_${name}.json vs fresh run:"
      python3 "$ROOT/scripts/bench_report.py" --compare \
          "$ROOT/BENCH_${name}.json" "$ROOT/build-bench/BENCH_${name}.json" \
          --threshold "$BENCH_THRESHOLD"
    done
  fi
}

if [[ "$MODE" == "--tidy" ]]; then
  run_tidy
  step "tidy gate PASSED"
  summary
  exit 0
fi

if [[ "$MODE" == "--bench" || "$MODE" == "--bench-update" ]]; then
  run_bench "$([[ "$MODE" == "--bench-update" ]] && echo 1 || echo 0)"
  step "bench gate PASSED"
  summary
  exit 0
fi

if [[ "$MODE" == "--model" ]]; then
  # Deterministic interleaving exploration (DESIGN.md §9). Two builds:
  #
  #   build-model           sync.hpp routes through the det scheduler; the
  #                         five pprox_check models (shuffle, mpmc, pool,
  #                         rotation, lockorder) run bounded-exhaustive DFS
  #                         and fixed-seed PCT and must all PASS.
  #   build-model-selftest  additionally compiles the pre-fix bugs back in
  #                         (-DPPROX_CHECK_SELFTEST). Every model test is
  #                         WILL_FAIL: ctest passes only if pprox_check
  #                         still FINDS every seeded bug. A green selftest
  #                         proves the checker, not the code.
  step "model: exhaustive + PCT exploration (bugs must be absent)"
  cmake -B "$ROOT/build-model" -S "$ROOT" -DPPROX_MODEL_CHECK=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$ROOT/build-model" -j "$JOBS" --target pprox_check
  ctest --test-dir "$ROOT/build-model" -R '^model_' \
        --output-on-failure -j "$JOBS"

  step "model selftest: fault injection (bugs must be FOUND)"
  cmake -B "$ROOT/build-model-selftest" -S "$ROOT" -DPPROX_MODEL_CHECK=ON \
        -DPPROX_CHECK_SELFTEST=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$ROOT/build-model-selftest" -j "$JOBS" --target pprox_check
  ctest --test-dir "$ROOT/build-model-selftest" -R '^model_' \
        --output-on-failure -j "$JOBS"

  step "model gate PASSED"
  summary
  exit 0
fi

LINT_SCOPE=("$ROOT/src/common" "$ROOT/src/crypto" "$ROOT/src/pprox"
            "$ROOT/src/lrs" "$ROOT/src/attack" "$ROOT/tools")

step "crypto-hygiene + information-flow lint (pprox_lint --flow)"
configure_and_build build-asan "address;undefined" --target pprox_lint
run_lint "$ROOT/build-asan/tools/pprox_lint" --flow "${LINT_SCOPE[@]}"
run_lint "$ROOT/build-asan/tools/pprox_lint" --flow \
    --baseline "$ROOT/tools/lint_baseline.json" "${LINT_SCOPE[@]}"
# raw-sync (and crypto rules) over the whole production tree: no raw std
# sync primitive outside common/sync.hpp, or pprox_check cannot see it.
run_lint "$ROOT/build-asan/tools/pprox_lint" "$ROOT/src"

step "hot-path discipline lint (pprox_lint --hotpath, DESIGN.md §11)"
run_lint "$ROOT/build-asan/tools/pprox_lint" --hotpath \
    --baseline "$ROOT/tools/hotpath_baseline.json" "$ROOT/src"

step "lock-discipline lint (pprox_lint --locks, DESIGN.md §12)"
run_lint "$ROOT/build-asan/tools/pprox_lint" --locks \
    --baseline "$ROOT/tools/locks_baseline.json" "$ROOT/src"

step "constant-time discipline lint (pprox_lint --ct, DESIGN.md §13)"
run_lint "$ROOT/build-asan/tools/pprox_lint" --ct \
    --baseline "$ROOT/tools/ct_baseline.json" "$ROOT/src"

step "lifetime/escape discipline lint (pprox_lint --lifetime, DESIGN.md §14)"
run_lint "$ROOT/build-asan/tools/pprox_lint" --lifetime \
    --baseline "$ROOT/tools/lifetime_baseline.json" "$ROOT/src"

step "negative-compile suite (taint-domain violations must not build)"
# Most cases drive the compiler directly (-fsyntax-only), but the
# detthread_double_join pair is a negative-RUN case and needs its binaries.
configure_and_build build-asan "address;undefined" \
    --target cf_detthread_double_join_control cf_detthread_double_join_violation
ctest --test-dir "$ROOT/build-asan" -R '^compile_fail_' \
      --output-on-failure -j "$JOBS"

step "lint golden fixtures (hotpath + locks + ct + lifetime + flow pins)"
ctest --test-dir "$ROOT/build-asan" -R '^lint_fixture_' \
      --output-on-failure -j "$JOBS"

if [[ "$MODE" == "--quick" ]]; then
  # test_batch is the batched-vs-sequential ecall differential (DESIGN.md
  # §15): under ASan it also proves the arena recycling/wipe discipline.
  step "ASan/UBSan smoke: test_concurrent + test_pipeline + test_batch"
  configure_and_build build-asan "address;undefined" \
      --target test_concurrent test_pipeline test_batch
  ctest --test-dir "$ROOT/build-asan" -R 'test_(concurrent|pipeline|batch)$' \
        --output-on-failure -j "$JOBS"
  step "quick gate PASSED"
  summary
  exit 0
fi

step "ASan/UBSan: full test suite"
configure_and_build build-asan "address;undefined"
ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS"

# Lifetime selftest cross-validation (DESIGN.md §14.6): compile the known
# dangling-view variant back in (-DPPROX_CHECK_SELFTEST, which requires the
# model-check scheduler) under ASan, and require BOTH detectors to fire —
# lifetime_selftest_static (pprox_lint --lifetime, WILL_FAIL) and
# lifetime_selftest_dynamic (heap-use-after-free, WILL_FAIL). A pass here
# proves the analyzer and the sanitizer still pin each other. Only the two
# standalone binaries are built: the fault-injected library tree is not
# linked, so the seeded pprox_check bugs stay out of this stage.
step "lifetime selftest: dangling view must be caught by lint AND ASan"
cmake -B "$ROOT/build-lifetime-selftest" -S "$ROOT" -DPPROX_MODEL_CHECK=ON \
      -DPPROX_CHECK_SELFTEST=ON -DPPROX_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$ROOT/build-lifetime-selftest" -j "$JOBS" \
      --target pprox_lifetime_selftest pprox_lint
ctest --test-dir "$ROOT/build-lifetime-selftest" -R '^lifetime_selftest' \
      --output-on-failure -j "$JOBS"

step "TSan: concurrency-heavy tests"
configure_and_build build-tsan "thread" \
    --target test_concurrent test_pipeline test_sanitizer_stress \
             test_shuffle test_scheduler test_tenancy
ctest --test-dir "$ROOT/build-tsan" \
      -R 'concurrent|pipeline|sanitizer_stress|shuffle|scheduler|tenancy' \
      --output-on-failure -j "$JOBS"

run_tidy

step "full gate PASSED"
summary
