#!/usr/bin/env bash
# One-command local reproduction of the full static/dynamic analysis gate:
#
#   1. crypto-hygiene + information-flow lint (tools/pprox_lint --flow) over
#      every layered directory, gated against tools/lint_baseline.json
#   2. negative-compile suite (tests/compile_fail/): taint-domain violations
#      must fail to compile
#   3. ASan + UBSan build, full ctest suite (leaks, overflows, UB)
#   4. TSan build, concurrency-heavy tests (races in queue/pool/shuffler)
#   5. clang-tidy (bugprone-*, concurrency-*, cert-msc50/51) when installed
#
# Usage:
#   scripts/check.sh           # full gate (several minutes)
#   scripts/check.sh --quick   # lint + compile-fail + ASan smoke
#   scripts/check.sh --model   # pprox_check interleaving exploration only:
#                              # normal build (models must pass) + selftest
#                              # fault-injection build (models must fail)
#   scripts/check.sh --bench   # machine-readable crypto + pipeline bench
#                              # baseline: runs bench_crypto/bench_pipeline
#                              # with --benchmark_format=json and writes
#                              # BENCH_crypto.json / BENCH_pipeline.json at
#                              # the repo root (portable vs accel speedups)
#
# Sanitizer and model-check stages run with PPROX_DISABLE_ACCEL=1: the
# portable reference path is the one whose every byte ASan/UBSan/TSan can
# instrument (intrinsics hide loads from the shadow), and tests that matter
# for the accelerated kernels pin Backend::kAccelerated explicitly
# (test_accel), which overrides the env var by design.
#
# Build trees land in build-asan/, build-tsan/, build-model/ and
# build-model-selftest/ next to build/ and are reused across runs
# (incremental). Exit status is nonzero on any failure.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
MODEL=0
BENCH=0
[[ "${1:-}" == "--quick" ]] && QUICK=1
[[ "${1:-}" == "--model" ]] && MODEL=1
[[ "${1:-}" == "--bench" ]] && BENCH=1

# Abort on the first sanitizer report instead of limping on; TSan history
# sized for the deep happens-before graphs of the pipeline tests.
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1:abort_on_error=0"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:history_size=7"

# Sanitized/model runs exercise the portable crypto reference; accelerated
# kernels are covered by test_accel's explicit backend pinning (see header).
[[ "$BENCH" == 0 ]] && export PPROX_DISABLE_ACCEL=1

step() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

if [[ "$BENCH" == 1 ]]; then
  # Benchmark baseline (ISSUE: first BENCH_*.json). A Release tree so the
  # numbers reflect the shipped optimization level, not RelWithDebInfo
  # sanitizer scaffolding. Each binary runs both backend variants in one
  # process (BENCHMARK_CAPTURE pins Backend::kPortable / kAccelerated), so
  # the speedup column compares like with like on the same machine.
  step "bench: crypto kernels (portable vs accelerated)"
  cmake -B "$ROOT/build-bench" -S "$ROOT" \
        -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$ROOT/build-bench" -j "$JOBS" \
        --target bench_crypto bench_pipeline
  "$ROOT/build-bench/bench/bench_crypto" \
      --benchmark_format=json --benchmark_out_format=json \
      --benchmark_out="$ROOT/build-bench/bench_crypto_raw.json" >/dev/null
  python3 "$ROOT/scripts/bench_report.py" \
      "$ROOT/build-bench/bench_crypto_raw.json" "$ROOT/BENCH_crypto.json"

  step "bench: end-to-end proxy pipeline (portable vs accelerated)"
  "$ROOT/build-bench/bench/bench_pipeline" \
      --benchmark_format=json --benchmark_out_format=json \
      --benchmark_out="$ROOT/build-bench/bench_pipeline_raw.json" >/dev/null
  python3 "$ROOT/scripts/bench_report.py" \
      "$ROOT/build-bench/bench_pipeline_raw.json" "$ROOT/BENCH_pipeline.json"

  step "bench baseline written: BENCH_crypto.json, BENCH_pipeline.json"
  exit 0
fi

if [[ "$MODEL" == 1 ]]; then
  # Deterministic interleaving exploration (DESIGN.md §9). Two builds:
  #
  #   build-model           sync.hpp routes through the det scheduler; the
  #                         four pprox_check models (shuffle, mpmc, pool,
  #                         rotation) run bounded-exhaustive DFS and
  #                         fixed-seed PCT and must all PASS.
  #   build-model-selftest  additionally compiles the pre-fix bugs back in
  #                         (-DPPROX_CHECK_SELFTEST). Every model test is
  #                         WILL_FAIL: ctest passes only if pprox_check
  #                         still FINDS every seeded bug. A green selftest
  #                         proves the checker, not the code.
  step "model: exhaustive + PCT exploration (bugs must be absent)"
  cmake -B "$ROOT/build-model" -S "$ROOT" -DPPROX_MODEL_CHECK=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$ROOT/build-model" -j "$JOBS" --target pprox_check
  ctest --test-dir "$ROOT/build-model" -R '^model_' \
        --output-on-failure -j "$JOBS"

  step "model selftest: fault injection (bugs must be FOUND)"
  cmake -B "$ROOT/build-model-selftest" -S "$ROOT" -DPPROX_MODEL_CHECK=ON \
        -DPPROX_CHECK_SELFTEST=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$ROOT/build-model-selftest" -j "$JOBS" --target pprox_check
  ctest --test-dir "$ROOT/build-model-selftest" -R '^model_' \
        --output-on-failure -j "$JOBS"

  step "model gate PASSED"
  exit 0
fi

configure_and_build() {
  local dir="$1" sanitize="$2"
  shift 2
  cmake -B "$ROOT/$dir" -S "$ROOT" -DPPROX_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$ROOT/$dir" -j "$JOBS" "$@"
}

LINT_SCOPE=("$ROOT/src/common" "$ROOT/src/crypto" "$ROOT/src/pprox"
            "$ROOT/src/lrs" "$ROOT/src/attack" "$ROOT/tools")

step "crypto-hygiene + information-flow lint (pprox_lint --flow)"
configure_and_build build-asan "address;undefined" --target pprox_lint
"$ROOT/build-asan/tools/pprox_lint" --flow "${LINT_SCOPE[@]}"
"$ROOT/build-asan/tools/pprox_lint" --flow \
    --baseline "$ROOT/tools/lint_baseline.json" "${LINT_SCOPE[@]}"
# raw-sync (and crypto rules) over the whole production tree: no raw std
# sync primitive outside common/sync.hpp, or pprox_check cannot see it.
"$ROOT/build-asan/tools/pprox_lint" "$ROOT/src"

step "negative-compile suite (taint-domain violations must not build)"
# Most cases drive the compiler directly (-fsyntax-only), but the
# detthread_double_join pair is a negative-RUN case and needs its binaries.
configure_and_build build-asan "address;undefined" \
    --target cf_detthread_double_join_control cf_detthread_double_join_violation
ctest --test-dir "$ROOT/build-asan" -R '^compile_fail_' \
      --output-on-failure -j "$JOBS"

if [[ "$QUICK" == 1 ]]; then
  step "ASan/UBSan smoke: test_concurrent + test_pipeline"
  configure_and_build build-asan "address;undefined" \
      --target test_concurrent test_pipeline
  ctest --test-dir "$ROOT/build-asan" -R 'test_(concurrent|pipeline)$' \
        --output-on-failure -j "$JOBS"
  step "quick gate PASSED"
  exit 0
fi

step "ASan/UBSan: full test suite"
configure_and_build build-asan "address;undefined"
ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS"

step "TSan: concurrency-heavy tests"
configure_and_build build-tsan "thread" \
    --target test_concurrent test_pipeline test_sanitizer_stress \
             test_shuffle test_scheduler test_tenancy
ctest --test-dir "$ROOT/build-tsan" \
      -R 'concurrent|pipeline|sanitizer_stress|shuffle|scheduler|tenancy' \
      --output-on-failure -j "$JOBS"

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy (bugprone-*, concurrency-*, cert-msc50/51)"
  cmake -B "$ROOT/build-tidy" -S "$ROOT" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Sources only; headers are covered via HeaderFilterRegex in .clang-tidy.
  find "$ROOT/src" "$ROOT/tools" -name '*.cpp' -print0 |
    xargs -0 -P "$JOBS" -n 8 clang-tidy -p "$ROOT/build-tidy" --quiet
else
  step "clang-tidy not installed — skipped (install LLVM to enable)"
fi

step "full gate PASSED"
