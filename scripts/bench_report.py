#!/usr/bin/env python3
"""Post-processes google-benchmark JSON into the repo's BENCH_*.json format.

Usage: bench_report.py RAW_JSON OUT_JSON
       bench_report.py --compare BASELINE_JSON NEW_JSON [--threshold FRAC]

The raw file is a `--benchmark_format=json` dump. Benchmarks registered as
<name>/portable[/args] and <name>/accel[/args] (BENCHMARK_CAPTURE pairs in
bench_crypto.cpp / bench_pipeline.cpp) are matched up and reported side by
side with their speedup, so the accelerated backend's win over the portable
reference is a single committed number per kernel rather than something a
reader has to divide by hand. Benchmarks without a backend tag pass through
under "single".

--compare takes two files in the *processed* BENCH_*.json format (the
committed baseline and a freshly generated report) and exits 1 if any
benchmark's cpu time regressed by more than --threshold (default 0.15,
i.e. 15% slower). High-variance series carry their own allowance (see
SERIES_THRESHOLDS). Benchmarks present on only one side are reported but do
not fail the gate: adding or retiring a benchmark is not a regression.
"""

import json
import re
import sys


def fmt_time(ns):
    """Human-readable duration for compare output (input in ns).

    Committed baselines written before the time_unit fix carry ms-scale
    values in *_ns fields; the adaptive format at least prints them with
    visible digits instead of rounding to 0ns.
    """
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if abs(ns) >= div:
            return f"{ns / div:.3g}{unit}"
    return f"{ns:.3g}ns"


# Per-series regression allowances overriding --threshold. The batched
# pipeline series measure end-to-end waves through both proxies (thread
# wakeups, shuffle flush timing, worker-pool handoffs), so their run-to-run
# variance is far above the kernel micro-benches the default 15% targets.
SERIES_THRESHOLDS = {
    "BM_PipelineGet/batchS": 0.5,
}


def threshold_for(name, default):
    for prefix, frac in SERIES_THRESHOLDS.items():
        if name.startswith(prefix):
            return frac
    return default


def compare(baseline_path, new_path, threshold):
    with open(baseline_path) as f:
        base = json.load(f)
    with open(new_path) as f:
        new = json.load(f)

    base_b = base.get("benchmarks", {})
    new_b = new.get("benchmarks", {})
    regressions = []
    improvements = 0
    compared = 0
    missing = 0

    for name in sorted(base_b):
        if name not in new_b:
            print(f"  {name}: only in baseline (retired?)")
            missing += len(base_b[name])
            continue
        for backend in sorted(base_b[name]):
            old_e = base_b[name][backend]
            new_e = new_b[name].get(backend)
            if new_e is None:
                # A backend present in the baseline but absent from the fresh
                # run usually means a renamed/retired series; warn so the gap
                # is visible instead of silently shrinking the comparison.
                print(f"  {name}/{backend}: in baseline but missing from "
                      f"this run (renamed or retired?)")
                missing += 1
                continue
            if "error" in old_e or "error" in new_e:
                continue
            old_t = old_e.get("cpu_time_ns")
            new_t = new_e.get("cpu_time_ns")
            if not old_t or not new_t:
                continue
            compared += 1
            ratio = new_t / old_t  # >1 means slower
            label = f"{name}/{backend}"
            if ratio > 1 + threshold_for(name, threshold):
                regressions.append((label, ratio))
                print(f"  REGRESSION {label}: {fmt_time(old_t)} -> "
                      f"{fmt_time(new_t)} ({(ratio - 1) * 100:+.1f}%)")
            elif ratio < 1:
                improvements += 1

    for name in sorted(set(new_b) - set(base_b)):
        print(f"  {name}: new benchmark (no baseline)")

    summary = (f"  compared {compared} series: {len(regressions)} "
               f"regression(s) beyond {threshold * 100:.0f}%, "
               f"{improvements} improved")
    if missing:
        summary += f", {missing} baseline series missing from this run"
    print(summary)
    return 1 if regressions else 0


def backend_split(name):
    """Returns (base_name, backend) where backend is portable/accel/None."""
    m = re.match(r"^(?P<fn>[^/]+)/(?P<backend>portable|accel)(?P<args>(/.*)?)$", name)
    if m:
        return m.group("fn") + m.group("args"), m.group("backend")
    # The batchS pipeline series register as <name>/<series>/<backend>
    # (backend last) so the series name stays adjacent to the function name.
    m = re.match(r"^(?P<fn>.+)/(?P<backend>portable|accel)$", name)
    if not m:
        return name, None
    return m.group("fn"), m.group("backend")


TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def entry(bench):
    # google-benchmark reports real_time/cpu_time in the benchmark's
    # time_unit (bench_pipeline uses ms); normalize to ns so the _ns field
    # names are honest and --compare output is readable.
    scale = TIME_UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
    real = bench.get("real_time")
    cpu = bench.get("cpu_time")
    out = {
        "real_time_ns": real * scale if real is not None else None,
        "cpu_time_ns": cpu * scale if cpu is not None else None,
        "iterations": bench.get("iterations"),
    }
    for extra in ("bytes_per_second", "items_per_second"):
        if extra in bench:
            out[extra] = bench[extra]
    if bench.get("error_occurred"):
        out["error"] = bench.get("error_message", "unknown")
    return out


def main():
    argv = sys.argv[1:]
    if argv and argv[0] == "--compare":
        threshold = 0.15
        rest = argv[1:]
        if "--threshold" in rest:
            i = rest.index("--threshold")
            try:
                threshold = float(rest[i + 1])
            except (IndexError, ValueError):
                sys.stderr.write("--threshold needs a fraction, e.g. 0.15\n")
                return 2
            rest = rest[:i] + rest[i + 2:]
        if len(rest) != 2:
            sys.stderr.write(__doc__)
            return 2
        try:
            return compare(rest[0], rest[1], threshold)
        except (OSError, json.JSONDecodeError) as e:
            sys.stderr.write(f"--compare: {e}\n")
            return 2
    if len(argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        raw = json.load(f)

    context = raw.get("context", {})
    report = {
        "generated_by": "scripts/check.sh --bench (scripts/bench_report.py)",
        "context": {
            "date": context.get("date"),
            "host_name": context.get("host_name"),
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
        },
        "benchmarks": {},
        "speedups": {},
    }

    paired = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        base, backend = backend_split(bench["name"])
        if backend is None:
            report["benchmarks"].setdefault(base, {})["single"] = entry(bench)
        else:
            paired.setdefault(base, {})[backend] = entry(bench)

    for base, sides in sorted(paired.items()):
        report["benchmarks"][base] = sides
        portable = sides.get("portable", {})
        accel = sides.get("accel", {})
        if (
            portable.get("cpu_time_ns")
            and accel.get("cpu_time_ns")
            and "error" not in portable
            and "error" not in accel
        ):
            report["speedups"][base] = round(
                portable["cpu_time_ns"] / accel["cpu_time_ns"], 2
            )

    with open(sys.argv[2], "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    for base, speedup in sorted(report["speedups"].items()):
        print(f"  {base}: {speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
