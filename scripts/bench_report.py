#!/usr/bin/env python3
"""Post-processes google-benchmark JSON into the repo's BENCH_*.json format.

Usage: bench_report.py RAW_JSON OUT_JSON

The raw file is a `--benchmark_format=json` dump. Benchmarks registered as
<name>/portable[/args] and <name>/accel[/args] (BENCHMARK_CAPTURE pairs in
bench_crypto.cpp / bench_pipeline.cpp) are matched up and reported side by
side with their speedup, so the accelerated backend's win over the portable
reference is a single committed number per kernel rather than something a
reader has to divide by hand. Benchmarks without a backend tag pass through
under "single".
"""

import json
import re
import sys


def backend_split(name):
    """Returns (base_name, backend) where backend is portable/accel/None."""
    m = re.match(r"^(?P<fn>[^/]+)/(?P<backend>portable|accel)(?P<args>(/.*)?)$", name)
    if not m:
        return name, None
    return m.group("fn") + m.group("args"), m.group("backend")


def entry(bench):
    out = {
        "real_time_ns": bench.get("real_time"),
        "cpu_time_ns": bench.get("cpu_time"),
        "iterations": bench.get("iterations"),
    }
    for extra in ("bytes_per_second", "items_per_second"):
        if extra in bench:
            out[extra] = bench[extra]
    if bench.get("error_occurred"):
        out["error"] = bench.get("error_message", "unknown")
    return out


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        raw = json.load(f)

    context = raw.get("context", {})
    report = {
        "generated_by": "scripts/check.sh --bench (scripts/bench_report.py)",
        "context": {
            "date": context.get("date"),
            "host_name": context.get("host_name"),
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
        },
        "benchmarks": {},
        "speedups": {},
    }

    paired = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        base, backend = backend_split(bench["name"])
        if backend is None:
            report["benchmarks"].setdefault(base, {})["single"] = entry(bench)
        else:
            paired.setdefault(base, {})[backend] = entry(bench)

    for base, sides in sorted(paired.items()):
        report["benchmarks"][base] = sides
        portable = sides.get("portable", {})
        accel = sides.get("accel", {})
        if (
            portable.get("cpu_time_ns")
            and accel.get("cpu_time_ns")
            and "error" not in portable
            and "error" not in accel
        ):
            report["speedups"][base] = round(
                portable["cpu_time_ns"] / accel["cpu_time_ns"], 2
            )

    with open(sys.argv[2], "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    for base, speedup in sorted(report["speedups"].items()):
        print(f"  {base}: {speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
