// BigInt arithmetic: known answers plus randomized algebraic property sweeps
// (the division and modexp paths are what RSA correctness rides on).
#include <gtest/gtest.h>

#include "common/rand.hpp"
#include "crypto/bigint.hpp"
#include "crypto/prime.hpp"

namespace pprox::crypto {
namespace {

TEST(BigInt, ConstructionAndHex) {
  EXPECT_EQ(BigInt(0).to_hex(), "0");
  EXPECT_EQ(BigInt(255).to_hex(), "ff");
  EXPECT_EQ(BigInt(0x123456789abcdefULL).to_hex(), "123456789abcdef");
  EXPECT_TRUE(BigInt(0).is_zero());
  EXPECT_FALSE(BigInt(1).is_zero());
}

TEST(BigInt, FromHexRoundTrip) {
  const auto v = BigInt::from_hex("deadbeefcafebabe0123456789");
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe0123456789");
  EXPECT_THROW(BigInt::from_hex("xyz"), std::invalid_argument);
}

TEST(BigInt, BytesBigEndianRoundTrip) {
  const Bytes data = {0x01, 0x02, 0x03, 0x04, 0x05};
  const auto v = BigInt::from_bytes_be(data);
  EXPECT_EQ(v.to_hex(), "102030405");
  EXPECT_EQ(v.to_bytes_be(), data);
  EXPECT_EQ(v.to_bytes_be(8), (Bytes{0, 0, 0, 0x01, 0x02, 0x03, 0x04, 0x05}));
}

TEST(BigInt, ZeroSerializesAsOneByte) {
  EXPECT_EQ(BigInt(0).to_bytes_be(), Bytes{0});
  EXPECT_EQ(BigInt(0).to_bytes_be(4), (Bytes{0, 0, 0, 0}));
}

TEST(BigInt, LeadingZeroBytesIgnored) {
  const Bytes a = {0x00, 0x00, 0x12, 0x34};
  const Bytes b = {0x12, 0x34};
  EXPECT_EQ(BigInt::from_bytes_be(a), BigInt::from_bytes_be(b));
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_GT(BigInt::from_hex("100000000"), BigInt(0xFFFFFFFFULL));
  EXPECT_EQ(BigInt(7), BigInt(7));
  EXPECT_LE(BigInt(7), BigInt(7));
}

TEST(BigInt, AddSubKnown) {
  const auto a = BigInt::from_hex("ffffffffffffffff");
  const auto b = BigInt(1);
  EXPECT_EQ((a + b).to_hex(), "10000000000000000");
  EXPECT_EQ(((a + b) - b), a);
  EXPECT_THROW(BigInt(1) - BigInt(2), std::underflow_error);
}

TEST(BigInt, MulKnown) {
  const auto a = BigInt::from_hex("ffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffe00000001");
  EXPECT_TRUE((a * BigInt(0)).is_zero());
}

TEST(BigInt, ShiftKnown) {
  EXPECT_EQ((BigInt(1) << 64).to_hex(), "10000000000000000");
  EXPECT_EQ((BigInt::from_hex("10000000000000000") >> 64), BigInt(1));
  EXPECT_EQ((BigInt::from_hex("ff") << 4).to_hex(), "ff0");
  EXPECT_EQ((BigInt::from_hex("ff0") >> 4).to_hex(), "ff");
  EXPECT_TRUE((BigInt(1) >> 1).is_zero());
}

TEST(BigInt, BitLengthAndBit) {
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_TRUE(BigInt(5).bit(0));
  EXPECT_FALSE(BigInt(5).bit(1));
  EXPECT_TRUE(BigInt(5).bit(2));
  EXPECT_FALSE(BigInt(5).bit(100));
}

TEST(BigInt, DivModKnown) {
  const auto dm = BigInt(100).divmod(BigInt(7));
  EXPECT_EQ(dm.quotient, BigInt(14));
  EXPECT_EQ(dm.remainder, BigInt(2));
  EXPECT_THROW(BigInt(1).divmod(BigInt(0)), std::domain_error);
}

TEST(BigInt, DivModMultiLimbKnown) {
  const auto a = BigInt::from_hex("123456789abcdef0123456789abcdef0");
  const auto b = BigInt::from_hex("fedcba9876543210");
  const auto dm = a.divmod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder, b);
}

TEST(BigInt, DivisionStressTopQuotientDigit) {
  // Regression shape: dividend whose normalized form occupies an extra limb;
  // the quotient needs its top digit.
  const auto a = BigInt::from_hex("ffffffffffffffffffffffff");
  const auto b = BigInt::from_hex("8000000000000001");
  const auto dm = a.divmod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder, b);
}

class BigIntRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BigIntRandom, DivModIdentityHolds) {
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_with_bits(GetParam() * 37 + 64, rng);
    const BigInt b = BigInt::random_with_bits(GetParam() * 11 + 32, rng);
    const auto dm = a.divmod(b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder, b);
  }
}

TEST_P(BigIntRandom, MulDivInverse) {
  SplitMix64 rng(GetParam() + 1000);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_with_bits(GetParam() * 23 + 40, rng);
    const BigInt b = BigInt::random_with_bits(GetParam() * 17 + 20, rng);
    EXPECT_EQ((a * b) / b, a);
    EXPECT_TRUE(((a * b) % b).is_zero());
  }
}

TEST_P(BigIntRandom, AddSubInverse) {
  SplitMix64 rng(GetParam() + 2000);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_with_bits(GetParam() * 29 + 50, rng);
    const BigInt b = BigInt::random_with_bits(GetParam() * 13 + 30, rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a + b, b + a);
  }
}

TEST_P(BigIntRandom, ShiftRoundTrip) {
  SplitMix64 rng(GetParam() + 3000);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_with_bits(GetParam() * 19 + 33, rng);
    const std::size_t s = rng.next_below(130);
    EXPECT_EQ((a << s) >> s, a);
    EXPECT_EQ(a << s, a * (BigInt(1) << s));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BigIntRandom, ::testing::Values(1, 2, 3, 5, 8));

TEST(BigInt, FuzzAgainstNative128BitReference) {
  // Exhaustive-style differential check against unsigned __int128 for
  // operands that fit: every operator must agree with the hardware.
  SplitMix64 rng(12345);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a64 = rng.next() >> (rng.next_below(63));
    const std::uint64_t b64 = (rng.next() >> (rng.next_below(63))) | 1;
    const BigInt a(a64), b(b64);
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(a64) * b64;
    const BigInt expected_prod = (BigInt(static_cast<std::uint64_t>(prod >> 64))
                                  << 64) +
                                 BigInt(static_cast<std::uint64_t>(prod));
    ASSERT_EQ(a * b, expected_prod) << a64 << " * " << b64;
    const unsigned __int128 sum = static_cast<unsigned __int128>(a64) + b64;
    const BigInt expected_sum =
        (BigInt(static_cast<std::uint64_t>(sum >> 64)) << 64) +
        BigInt(static_cast<std::uint64_t>(sum));
    ASSERT_EQ(a + b, expected_sum);
    if (a64 >= b64) ASSERT_EQ(a - b, BigInt(a64 - b64));
    ASSERT_EQ(a / b, BigInt(a64 / b64));
    ASSERT_EQ(a % b, BigInt(a64 % b64));
    ASSERT_EQ(BigInt::gcd(a, b), BigInt(std::__gcd(a64, b64)));
  }
}

TEST(BigInt, FuzzDivModWideDividendNarrowDivisor) {
  // The Algorithm-D qhat-correction paths trigger most often with extreme
  // digit patterns; hammer them with adversarial limbs.
  SplitMix64 rng(777);
  for (int i = 0; i < 500; ++i) {
    Bytes a_bytes(static_cast<std::size_t>(8 + rng.next_below(40)));
    Bytes b_bytes(static_cast<std::size_t>(4 + rng.next_below(12)));
    // Bias toward 0x00/0xFF-heavy patterns.
    for (auto& byte : a_bytes) {
      const auto roll = rng.next_below(4);
      byte = roll == 0 ? 0x00 : roll == 1 ? 0xFF
                                          : static_cast<std::uint8_t>(rng.next());
    }
    for (auto& byte : b_bytes) {
      const auto roll = rng.next_below(4);
      byte = roll == 0 ? 0x00 : roll == 1 ? 0xFF
                                          : static_cast<std::uint8_t>(rng.next());
    }
    const BigInt a = BigInt::from_bytes_be(a_bytes);
    const BigInt b = BigInt::from_bytes_be(b_bytes);
    if (b.is_zero()) continue;
    const auto dm = a.divmod(b);
    ASSERT_EQ(dm.quotient * b + dm.remainder, a);
    ASSERT_LT(dm.remainder, b);
  }
}

TEST(BigInt, ModexpKnown) {
  // 3^7 mod 10 = 2187 mod 10 = 7
  EXPECT_EQ(BigInt(3).modexp(BigInt(7), BigInt(10)), BigInt(7));
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigInt p(1000003);
  EXPECT_EQ(BigInt(12345).modexp(p - BigInt(1), p), BigInt(1));
  EXPECT_EQ(BigInt(5).modexp(BigInt(0), BigInt(7)), BigInt(1));
}

TEST(BigInt, ModexpLargeFermat) {
  SplitMix64 rng(77);
  const BigInt p = generate_prime(128, rng);
  const BigInt a = BigInt::random_below(p - BigInt(2), rng) + BigInt(2);
  EXPECT_EQ(a.modexp(p - BigInt(1), p), BigInt(1));
}

TEST(BigInt, GcdKnown) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
}

TEST(BigInt, ModInverse) {
  // 3 * 7 = 21 = 1 mod 10
  EXPECT_EQ(BigInt(3).modinv(BigInt(10)), BigInt(7));
  // Non-invertible: gcd(4, 10) = 2.
  EXPECT_TRUE(BigInt(4).modinv(BigInt(10)).is_zero());
}

TEST(BigInt, ModInverseRandomized) {
  SplitMix64 rng(5);
  const BigInt m = generate_prime(96, rng);
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt::random_below(m - BigInt(1), rng) + BigInt(1);
    const BigInt inv = a.modinv(m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
}

TEST(BigInt, RandomBelowInRange) {
  SplitMix64 rng(9);
  const BigInt bound = BigInt::from_hex("10000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::random_below(bound, rng), bound);
  }
}

TEST(BigInt, RandomWithBitsExactWidth) {
  SplitMix64 rng(13);
  for (std::size_t bits : {8u, 33u, 64u, 65u, 257u}) {
    EXPECT_EQ(BigInt::random_with_bits(bits, rng).bit_length(), bits);
  }
}

TEST(Prime, SmallKnownPrimes) {
  SplitMix64 rng(1);
  EXPECT_TRUE(is_probable_prime(BigInt(2), rng));
  EXPECT_TRUE(is_probable_prime(BigInt(3), rng));
  EXPECT_TRUE(is_probable_prime(BigInt(97), rng));
  EXPECT_TRUE(is_probable_prime(BigInt(1000003), rng));
  EXPECT_FALSE(is_probable_prime(BigInt(1), rng));
  EXPECT_FALSE(is_probable_prime(BigInt(0), rng));
  EXPECT_FALSE(is_probable_prime(BigInt(100), rng));
  EXPECT_FALSE(is_probable_prime(BigInt(1000001), rng));  // 101 * 9901
}

TEST(Prime, CarmichaelNumbersRejected) {
  SplitMix64 rng(2);
  for (std::uint64_t n : {561ULL, 1105ULL, 1729ULL, 2465ULL, 6601ULL}) {
    EXPECT_FALSE(is_probable_prime(BigInt(n), rng)) << n;
  }
}

TEST(Prime, GeneratedPrimesHaveRequestedWidth) {
  SplitMix64 rng(3);
  for (std::size_t bits : {32u, 64u, 128u}) {
    const BigInt p = generate_prime(bits, rng);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

}  // namespace
}  // namespace pprox::crypto
