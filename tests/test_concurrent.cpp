// Lock-free queue and thread pool: correctness under single-threaded edge
// cases and no-loss/no-duplication properties under multi-threaded stress.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <latch>
#include <map>
#include <numeric>
#include <thread>

#include "concurrent/mpmc_queue.hpp"
#include "concurrent/thread_pool.hpp"

namespace pprox::concurrent {
namespace {

TEST(MpmcQueue, CapacityRoundsToPowerOfTwo) {
  MpmcQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  MpmcQueue<int> q2(64);
  EXPECT_EQ(q2.capacity(), 64u);
  MpmcQueue<int> q3(1);
  EXPECT_EQ(q3.capacity(), 2u);
}

TEST(MpmcQueue, FifoSingleThreaded) {
  MpmcQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 10; ++i) {
    const auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, FullRejectsPush) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.try_pop().value(), 0);
  EXPECT_TRUE(q.try_push(99));  // slot freed
}

TEST(MpmcQueue, WrapsAroundManyTimes) {
  MpmcQueue<int> q(4);
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.try_push(round));
    ASSERT_EQ(q.try_pop().value(), round);
  }
}

TEST(MpmcQueue, MoveOnlyPayload) {
  MpmcQueue<std::unique_ptr<int>> q(8);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(7)));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

struct StressParams {
  int producers;
  int consumers;
};

class MpmcStress : public ::testing::TestWithParam<StressParams> {};

TEST_P(MpmcStress, NoLossNoDuplication) {
  const auto [producers, consumers] = GetParam();
  constexpr int kPerProducer = 20000;
  MpmcQueue<std::uint64_t> q(1024);
  std::atomic<int> producers_done{0};
  std::vector<std::thread> threads;

  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&q, &producers_done, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value =
            (static_cast<std::uint64_t>(p) << 32) | static_cast<std::uint32_t>(i);
        while (!q.try_push(value)) std::this_thread::yield();
      }
      producers_done.fetch_add(1);
    });
  }

  std::mutex sink_mutex;
  std::vector<std::uint64_t> sink;
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      std::vector<std::uint64_t> local;
      while (true) {
        const auto v = q.try_pop();
        if (v.has_value()) {
          local.push_back(*v);
        } else if (producers_done.load() == producers) {
          // Queue may still have items racing in; one final sweep.
          while (const auto last = q.try_pop()) local.push_back(*last);
          break;
        } else {
          std::this_thread::yield();
        }
      }
      std::lock_guard<std::mutex> lock(sink_mutex);
      sink.insert(sink.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(sink.size(), static_cast<std::size_t>(producers) * kPerProducer);
  std::sort(sink.begin(), sink.end());
  EXPECT_EQ(std::adjacent_find(sink.begin(), sink.end()), sink.end())
      << "duplicate element consumed";
  // Per-producer FIFO completeness: every (p, i) present exactly once.
  std::map<int, int> counts;
  for (const std::uint64_t v : sink) counts[static_cast<int>(v >> 32)]++;
  for (int p = 0; p < producers; ++p) EXPECT_EQ(counts[p], kPerProducer);
}

INSTANTIATE_TEST_SUITE_P(Topologies, MpmcStress,
                         ::testing::Values(StressParams{1, 1}, StressParams{2, 2},
                                           StressParams{4, 1}, StressParams{1, 4},
                                           StressParams{4, 4}));

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  pool.drain();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, DrainWaitsForSlowTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  // The gate holds all four tasks in flight until just before drain(), so
  // drain() provably observes unfinished work — the old 20ms sleeps only
  // made that likely, and wasted 40ms of wall clock doing it.
  std::latch gate(1);
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      gate.wait();
      done.fetch_add(1);
    });
  }
  gate.count_down();
  pool.drain();
  EXPECT_EQ(done.load(), 4);
}

TEST(ThreadPool, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.drain();
  pool.shutdown();
  pool.shutdown();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(4);
  // Two tasks rendezvous on a barrier: arrive_and_wait() can only return
  // when both tasks are in flight at once, so completing the rendezvous IS
  // the overlap proof. (The old version inferred overlap from 30ms sleeps
  // lining up — slow, and false-negative under an unlucky scheduler.)
  std::barrier rendezvous(2);
  std::atomic<int> overlapped{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      rendezvous.arrive_and_wait();
      overlapped.fetch_add(1);
    });
  }
  pool.drain();
  EXPECT_EQ(overlapped.load(), 2);
}

TEST(ThreadPool, SubmitFromWorkerThread) {
  ThreadPool pool(2, 64);
  std::atomic<int> counter{0};
  std::latch inner_submitted(1);
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(1); });
    inner_submitted.count_down();
  });
  inner_submitted.wait();  // drain() may not see the inner task before this
  pool.drain();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace pprox::concurrent
