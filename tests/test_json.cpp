// JSON DOM parser/writer and the in-place field editor used inside enclaves.
#include <gtest/gtest.h>

#include "common/rand.hpp"
#include "json/json.hpp"

namespace pprox::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").value().is_null());
  EXPECT_EQ(parse("true").value().as_bool(), true);
  EXPECT_EQ(parse("false").value().as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").value().as_number(), 42);
  EXPECT_DOUBLE_EQ(parse("-3.5").value().as_number(), -3.5);
  EXPECT_DOUBLE_EQ(parse("1e3").value().as_number(), 1000);
  EXPECT_DOUBLE_EQ(parse("2.5E-2").value().as_number(), 0.025);
  EXPECT_EQ(parse("\"hi\"").value().as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").value().as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse(R"("A")").value().as_string(), "A");
  EXPECT_EQ(parse(R"("é")").value().as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(parse(R"("€")").value().as_string(), "\xe2\x82\xac");  // €
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse(R"("😀")").value().as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, Structures) {
  const auto v = parse(R"({"user":"u1","items":[1,2,3],"nested":{"k":true}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().get_string("user"), "u1");
  EXPECT_EQ(v.value().find("items")->as_array().size(), 3u);
  EXPECT_TRUE(v.value().find("nested")->find("k")->as_bool());
  EXPECT_EQ(v.value().find("missing"), nullptr);
}

TEST(JsonParse, WhitespaceTolerated) {
  const auto v = parse("  {\n\t\"a\" :  [ 1 , 2 ]\r\n}  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().find("a")->as_array().size(), 2u);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("{}").value().as_object().empty());
  EXPECT_TRUE(parse("[]").value().as_array().empty());
}

TEST(JsonParse, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nul", "01a",
        "\"unterminated", "{\"a\":1}x", "[1 2]", "{'a':1}", "\"\\q\"",
        "\"\\u12\"", "+5", "-", "1.", "1e", "[1,]2"}) {
    EXPECT_FALSE(parse(bad).ok()) << bad;
  }
}

TEST(JsonParse, RejectsLoneSurrogates) {
  EXPECT_FALSE(parse(R"("\ud83d")").ok());
  EXPECT_FALSE(parse(R"("\ude00")").ok());
  EXPECT_FALSE(parse(R"("\ud83dx")").ok());
}

TEST(JsonParse, RejectsControlCharInString) {
  const std::string s = std::string("\"a") + '\x01' + "b\"";
  EXPECT_FALSE(parse(s).ok());
}

TEST(JsonParse, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(parse(deep, 64).ok());
  EXPECT_TRUE(parse(deep, 128).ok());
}

TEST(JsonDump, ScalarsAndEscaping) {
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
  EXPECT_EQ(JsonValue("a\"b\n").dump(), "\"a\\\"b\\n\"");
}

TEST(JsonDump, PreservesObjectOrder) {
  JsonValue v{JsonObject{}};
  v.set("z", 1);
  v.set("a", 2);
  EXPECT_EQ(v.dump(), R"({"z":1,"a":2})");
  v.set("z", 3);  // overwrite keeps position
  EXPECT_EQ(v.dump(), R"({"z":3,"a":2})");
}

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpFixpoint) {
  const auto v = parse(GetParam());
  ASSERT_TRUE(v.ok()) << GetParam();
  const std::string once = v.value().dump();
  const auto v2 = parse(once);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value().dump(), once);  // dump∘parse is a fixpoint
  EXPECT_EQ(v2.value(), v.value());
}

INSTANTIATE_TEST_SUITE_P(
    Docs, JsonRoundTrip,
    ::testing::Values(
        R"({"user":"enc-base64==","item":"abc123"})",
        R"({"items":["i1","i2","i3"],"count":3})",
        R"([{"a":[1,2,{"b":null}]},true,false,"x"])",
        R"({"nested":{"deep":{"deeper":{"deepest":[0.5,-1e9]}}}})",
        R"({"empty_obj":{},"empty_arr":[],"s":""})"));

namespace fuzz {

json::JsonValue random_value(SplitMix64& rng, int depth) {
  const auto kind = rng.next_below(depth > 3 ? 4 : 6);
  switch (kind) {
    case 0: return json::JsonValue(nullptr);
    case 1: return json::JsonValue(rng.next_below(2) == 0);
    case 2:
      return json::JsonValue(static_cast<double>(
                                 static_cast<std::int64_t>(rng.next())) /
                             static_cast<double>(1 + rng.next_below(1000)));
    case 3: {
      std::string s;
      const auto len = rng.next_below(12);
      for (std::size_t i = 0; i < len; ++i) {
        // Mix printable ASCII with escapes and multi-byte UTF-8.
        const auto roll = rng.next_below(8);
        if (roll == 0) s += '"';
        else if (roll == 1) s += '\\';
        else if (roll == 2) s += '\n';
        else if (roll == 3) s += "\xc3\xa9";
        else s += static_cast<char>('a' + rng.next_below(26));
      }
      return json::JsonValue(std::move(s));
    }
    case 4: {
      json::JsonArray arr;
      const auto len = rng.next_below(4);
      for (std::size_t i = 0; i < len; ++i) {
        arr.push_back(random_value(rng, depth + 1));
      }
      return json::JsonValue(std::move(arr));
    }
    default: {
      json::JsonObject obj;
      const auto len = rng.next_below(4);
      for (std::size_t i = 0; i < len; ++i) {
        obj.emplace_back("k" + std::to_string(i), random_value(rng, depth + 1));
      }
      return json::JsonValue(std::move(obj));
    }
  }
}

}  // namespace fuzz

TEST(JsonFuzz, RandomDocumentsRoundTrip) {
  SplitMix64 rng(4242);
  for (int i = 0; i < 500; ++i) {
    const json::JsonValue doc = fuzz::random_value(rng, 0);
    const std::string text = doc.dump();
    const auto back = parse(text);
    ASSERT_TRUE(back.ok()) << text;
    ASSERT_EQ(back.value().dump(), text) << text;
  }
}

TEST(JsonFuzz, MutatedDocumentsNeverCrash) {
  // Bit-flip valid documents; the parser must reject or accept without UB
  // (run under the normal test harness; ASan builds amplify this).
  SplitMix64 rng(515);
  const std::string base =
      R"({"user":"abc","items":["i1","i2",{"k":[1,2.5,null,true]}]})";
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(rng.next());
    (void)parse(mutated);  // must not crash, leak, or hang
  }
}

TEST(InPlaceEditor, FindsTopLevelField) {
  const std::string doc = R"({"user":"alice","item":"movie-7"})";
  const auto span = find_string_field(doc, "user");
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(doc.substr(span->first, span->second - span->first), "alice");
  EXPECT_EQ(get_string_field(doc, "item"), "movie-7");
}

TEST(InPlaceEditor, DoesNotMatchKeyInsideValue) {
  const std::string doc = R"({"comment":"the key user: is fake","user":"bob"})";
  EXPECT_EQ(get_string_field(doc, "user"), "bob");
}

TEST(InPlaceEditor, FindsNestedField) {
  const std::string doc = R"({"outer":{"user":"carol"}})";
  EXPECT_EQ(get_string_field(doc, "user"), "carol");
}

TEST(InPlaceEditor, MissingFieldReturnsNullopt) {
  EXPECT_FALSE(get_string_field(R"({"a":"b"})", "user").has_value());
  EXPECT_FALSE(get_string_field(R"({"user":42})", "user").has_value());
}

TEST(InPlaceEditor, ToleratesSpacesAroundColon) {
  const std::string doc = "{\"user\" :\n \"dave\"}";
  EXPECT_EQ(get_string_field(doc, "user"), "dave");
}

TEST(InPlaceEditor, ReplaceGrowsAndShrinks) {
  std::string doc = R"({"user":"u","item":"i"})";
  EXPECT_TRUE(replace_string_field(doc, "user", "a-much-longer-ciphertext=="));
  EXPECT_EQ(get_string_field(doc, "user"), "a-much-longer-ciphertext==");
  EXPECT_EQ(get_string_field(doc, "item"), "i");  // neighbours untouched
  EXPECT_TRUE(replace_string_field(doc, "user", "x"));
  EXPECT_EQ(doc, R"({"user":"x","item":"i"})");
}

TEST(InPlaceEditor, ReplaceMissingReturnsFalse) {
  std::string doc = R"({"a":"b"})";
  EXPECT_FALSE(replace_string_field(doc, "user", "x"));
  EXPECT_EQ(doc, R"({"a":"b"})");
}

TEST(InPlaceEditor, ReplacedDocStillParses) {
  std::string doc = R"({"user":"alice","items":["i1","i2"]})";
  ASSERT_TRUE(replace_string_field(doc, "user", "ZW5jcnlwdGVkCg=="));
  const auto v = parse(doc);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().get_string("user"), "ZW5jcnlwdGVkCg==");
}

TEST(InPlaceEditor, SkipsEscapedQuotesInValues) {
  const std::string doc = R"({"note":"he said \"user\":","user":"eve"})";
  EXPECT_EQ(get_string_field(doc, "user"), "eve");
}

}  // namespace
}  // namespace pprox::json
