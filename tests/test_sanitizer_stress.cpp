// Multi-threaded stress tests sized for ThreadSanitizer: enough contention
// to drive the CAS retry paths in MpmcQueue, the full/empty backpressure in
// ThreadPool, and concurrent add/flush/timer races in ShuffleQueue, while
// staying small enough that a TSan build finishes in seconds per case.
// These are the tests scripts/check.sh runs under -DPPROX_SANITIZE=thread;
// they also pass unsanitized as plain correctness checks.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <latch>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "concurrent/mpmc_queue.hpp"
#include "concurrent/thread_pool.hpp"
#include "net/channel.hpp"
#include "pprox/proxy.hpp"
#include "pprox/rotation.hpp"
#include "pprox/shuffle.hpp"
#include "pprox/tenancy.hpp"

namespace pprox {
namespace {

// Tight queue: with capacity 64 and 4+4 threads every producer regularly
// hits the "full" path and every consumer the "empty" path, so the Vyukov
// sequence-number CAS loops are exercised from both sides concurrently.
TEST(SanitizerStress, MpmcQueueContendedPushPop) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  concurrent::MpmcQueue<std::uint64_t> queue(64);
  std::atomic<int> producers_done{0};
  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> sum{0};
  std::barrier start(kProducers + kConsumers);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      start.arrive_and_wait();
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value =
            static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!queue.try_push(value)) std::this_thread::yield();
      }
      producers_done.fetch_add(1);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      start.arrive_and_wait();
      for (;;) {
        if (const auto v = queue.try_pop()) {
          popped.fetch_add(1);
          sum.fetch_add(*v);
        } else if (producers_done.load() == kProducers) {
          while (const auto last = queue.try_pop()) {
            popped.fetch_add(1);
            sum.fetch_add(*last);
          }
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);  // each value delivered exactly once
}

// A full queue must not destroy the caller's task: the retry loop depends on
// try_push leaving its argument intact on failure.
TEST(SanitizerStress, MpmcQueueFailedPushKeepsPayload) {
  concurrent::MpmcQueue<std::unique_ptr<int>> queue(2);
  ASSERT_TRUE(queue.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(queue.try_push(std::make_unique<int>(2)));
  auto extra = std::make_unique<int>(42);
  EXPECT_FALSE(queue.try_push(std::move(extra)));
  ASSERT_NE(extra, nullptr) << "failed push consumed the payload";
  EXPECT_EQ(*extra, 42);
}

// Many submitters racing workers through a deliberately tiny queue: submits
// spin on the full path while workers drain, and drain() must only return
// once every counted task ran.
TEST(SanitizerStress, ThreadPoolSubmitStorm) {
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 2000;
  concurrent::ThreadPool pool(3, /*queue_capacity=*/32);
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        ASSERT_TRUE(pool.submit([&executed] { executed.fetch_add(1); }));
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.drain();
  EXPECT_EQ(executed.load(), kSubmitters * kPerSubmitter);
}

TEST(SanitizerStress, ThreadPoolDrainRacesSubmit) {
  concurrent::ThreadPool pool(2, 16);
  std::atomic<int> executed{0};
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load()) pool.drain();
  });
  for (int i = 0; i < 3000; ++i) {
    pool.submit([&executed] { executed.fetch_add(1); });
  }
  pool.drain();
  stop.store(true);
  drainer.join();
  EXPECT_EQ(executed.load(), 3000);
}

// Adders racing the size-triggered flush, the timer flush, and explicit
// flush_now() calls. Every action must run exactly once whichever path
// releases it.
TEST(SanitizerStress, ShuffleQueueConcurrentAddAndFlush) {
  constexpr int kAdders = 4;
  constexpr int kPerAdder = 800;
  constexpr int kTotal = kAdders * kPerAdder;
  ShuffleQueue shuffle(8, std::chrono::milliseconds(1));
  std::atomic<int> released{0};
  std::latch all_released(kTotal);
  std::vector<std::thread> threads;
  for (int a = 0; a < kAdders; ++a) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerAdder; ++i) {
        shuffle.add([&] {
          released.fetch_add(1);
          all_released.count_down();
        });
        if (i % 97 == 0) shuffle.flush_now();
      }
    });
  }
  std::atomic<bool> adders_done{false};
  std::thread flusher([&] {
    while (!adders_done.load()) {
      shuffle.flush_now();
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  adders_done.store(true);
  flusher.join();
  shuffle.flush_now();
  // A timer flush may still be mid-batch when flush_now() returns, so the
  // count check can only follow the latch the actions themselves count
  // down. (The old version slept and hoped; under load the in-flight timer
  // batch made released lag the total.)
  all_released.wait();
  EXPECT_EQ(released.load(), kTotal);
  EXPECT_GE(shuffle.flush_count(), 1u);
  EXPECT_EQ(shuffle.buffered(), 0u);
}

// Timer-driven release racing the adder. The shuffle size (64) is never
// reached between handshakes, so only the 1ms timer can release the batch:
// every 16 adds the adder cv-waits until the timer has flushed everything
// added so far. That forces a real timer/adder race each round without the
// old "sleep 2ms and hope a timer fired" pacing, which flaked whenever the
// final count was read while a timer batch was still executing.
TEST(SanitizerStress, ShuffleQueueTimerRacesAdders) {
  ShuffleQueue shuffle(64, std::chrono::milliseconds(1));
  std::atomic<int> released{0};
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;  // guarded by mu
  const auto action = [&] {
    released.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    ++done;
    cv.notify_all();
  };
  constexpr int kActions = 300;
  for (int i = 0; i < kActions; ++i) {
    shuffle.add(action);
    if (i % 16 == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done == i + 1; });
    }
  }
  // Destructor flushes the remainder and joins the timer thread.
  {
    ShuffleQueue drain_on_exit(2, std::chrono::milliseconds(1));
    drain_on_exit.add(action);
  }
  shuffle.flush_now();
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == kActions + 1; });
  EXPECT_EQ(released.load(), kActions + 1);
}

TEST(SanitizerStress, PendingStoreConcurrentPutTake) {
  PendingStore store;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<int> recovered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t handle = store.put(Bytes{1, 2, 3});
        const auto taken = store.take(handle);
        if (taken.ok()) recovered.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recovered.load(), kThreads * kPerThread);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.take(0xdead).ok());
}

TEST(SanitizerStress, RoundRobinChannelConcurrentSend) {
  std::atomic<int> handled{0};
  auto sink = std::make_shared<net::FunctionSink>(
      [&handled](const http::HttpRequest&) {
        handled.fetch_add(1);
        return http::HttpResponse::json_response(200, "{}");
      });
  std::vector<std::shared_ptr<net::HttpChannel>> backends;
  for (int i = 0; i < 3; ++i) {
    backends.push_back(std::make_shared<net::InProcChannel>(*sink));
  }
  net::RoundRobinChannel rr(backends);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        http::HttpRequest request;
        request.method = "GET";
        request.target = "/";
        rr.send(std::move(request), [](http::HttpResponse) {});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(handled.load(), kThreads * kPerThread);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < rr.backend_count(); ++i) total += rr.sent_to(i);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Round-robin spreads within one request per thread of perfectly even.
  for (std::size_t i = 0; i < rr.backend_count(); ++i) {
    EXPECT_NEAR(static_cast<double>(rr.sent_to(i)), total / 3.0, kThreads + 1);
  }
}

TEST(SanitizerStress, BreachMonitorConcurrentRecordAndQuery) {
  BreachMonitor monitor(2.0, 16, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&monitor, t] {
      const std::string id = "enclave-" + std::to_string(t);
      for (int i = 0; i < 2000; ++i) monitor.record(id, 1.0);
    });
  }
  std::thread reader([&monitor] {
    for (int i = 0; i < 2000; ++i) {
      monitor.attack_suspected("enclave-0");
      monitor.baseline_ms("enclave-1");
    }
  });
  for (auto& t : threads) t.join();
  reader.join();
  EXPECT_FALSE(monitor.attack_suspected("enclave-0"));
}

TEST(SanitizerStress, TenantRegistryConcurrentUpsertSnapshot) {
  crypto::Drbg rng(to_bytes("tenant-registry-stress"));
  // One pre-generated secret is enough: the registry copies it per tenant,
  // and RSA keygen is far too slow to run inside the racing loops.
  const ApplicationKeys keys = ApplicationKeys::generate(rng, 512);
  TenantRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string id =
            "tenant-" + std::to_string(t) + "-" + std::to_string(i % 10);
        registry.upsert(id, keys.ua);
        if (i % 3 == 0) registry.remove(id);
        registry.contains(id);
      }
    });
  }
  std::thread snapshotter([&registry] {
    for (int i = 0; i < 100; ++i) {
      const TenantKeyring keyring = registry.snapshot();
      ASSERT_LE(keyring.tenants.size(), 30u);
    }
  });
  for (auto& t : threads) t.join();
  snapshotter.join();
  EXPECT_EQ(registry.size(), registry.tenant_ids().size());
  // The keyring snapshot round-trips through the provisioning wire format.
  const Bytes blob = registry.snapshot().serialize();
  ASSERT_TRUE(TenantKeyring::looks_like_keyring(blob));
  EXPECT_TRUE(TenantKeyring::deserialize(blob).ok());
}

}  // namespace
}  // namespace pprox
