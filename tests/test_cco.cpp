// CCO/LLR trainer: LLR math against known values, co-occurrence counting
// vs. a brute-force reference, and end-to-end recommendation sanity.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rand.hpp"
#include "lrs/cco.hpp"

namespace pprox::lrs {
namespace {

TEST(Llr, ZeroWhenIndependent) {
  // Perfectly proportional table: no association (up to float residue).
  EXPECT_NEAR(log_likelihood_ratio(10, 10, 10, 10), 0.0, 1e-9);
  EXPECT_NEAR(log_likelihood_ratio(5, 45, 5, 45), 0.0, 1e-9);
}

TEST(Llr, PositiveForAssociation) {
  // Items always seen together.
  EXPECT_GT(log_likelihood_ratio(50, 0, 0, 50), 0.0);
  // Stronger co-occurrence => larger LLR.
  EXPECT_GT(log_likelihood_ratio(40, 10, 10, 40),
            log_likelihood_ratio(30, 20, 20, 30));
}

TEST(Llr, SymmetricInPairRoles) {
  EXPECT_DOUBLE_EQ(log_likelihood_ratio(12, 5, 7, 100),
                   log_likelihood_ratio(12, 7, 5, 100));
}

TEST(Llr, HandlesZeros) {
  EXPECT_GE(log_likelihood_ratio(0, 0, 0, 0), 0.0);
  EXPECT_GE(log_likelihood_ratio(1, 0, 0, 0), 0.0);
  EXPECT_GE(log_likelihood_ratio(0, 10, 10, 0), 0.0);
}

TEST(Llr, KnownValueDunning) {
  // Reference value computed independently from Dunning's formula
  // (2 * [H(row) + H(col) - H(cells)]) for k = (10, 20, 30, 940).
  const double llr = log_likelihood_ratio(10, 20, 30, 940);
  EXPECT_NEAR(llr, 30.0691, 0.001);  // strong association
}

std::vector<Event> movie_events() {
  // Users 1-3 like A and B together; users 4-5 like C and D; user 6 mixes.
  return {
      {"u1", "A"}, {"u1", "B"},
      {"u2", "A"}, {"u2", "B"},
      {"u3", "A"}, {"u3", "B"},
      {"u4", "C"}, {"u4", "D"},
      {"u5", "C"}, {"u5", "D"},
      {"u6", "A"}, {"u6", "C"},
  };
}

TEST(CcoTrainer, FindsStrongPairs) {
  CcoTrainer trainer;
  const auto model = trainer.train(movie_events());
  ASSERT_EQ(model.size(), 4u);  // A, B, C, D

  const auto find = [&model](const std::string& id) -> const IndexedItem& {
    for (const auto& item : model) {
      if (item.item_id == id) return item;
    }
    throw std::runtime_error("missing " + id);
  };
  // A's strongest indicator is B (3 of A's 4 users also liked B).
  const auto& a = find("A");
  ASSERT_FALSE(a.indicators.empty());
  EXPECT_EQ(a.indicators[0].first, "B");
  const auto& c = find("C");
  ASSERT_FALSE(c.indicators.empty());
  EXPECT_EQ(c.indicators[0].first, "D");
}

TEST(CcoTrainer, DuplicateEventsCountOnce) {
  CcoTrainer trainer;
  std::vector<Event> events = movie_events();
  // Spam u1-likes-A a hundred times; the model must not change.
  const auto baseline = trainer.train(events);
  for (int i = 0; i < 100; ++i) events.push_back({"u1", "A"});
  const auto spammed = trainer.train(events);
  ASSERT_EQ(baseline.size(), spammed.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].item_id, spammed[i].item_id);
    EXPECT_EQ(baseline[i].indicators, spammed[i].indicators);
  }
}

TEST(CcoTrainer, MaxIndicatorsTruncatesButKeepsTieGroups) {
  CcoParams params;
  params.max_indicators_per_item = 3;
  CcoTrainer trainer(params);
  // Varied overlap so LLR values differ; plus noise users so associations
  // are positive.
  std::vector<Event> events;
  for (int u = 0; u < 8; ++u) {
    for (int i = 0; i <= u % 5 + 1; ++i) {
      events.push_back({"u" + std::to_string(u), "i" + std::to_string(i)});
    }
  }
  for (int u = 8; u < 20; ++u) {
    events.push_back({"u" + std::to_string(u), "solo-" + std::to_string(u)});
  }
  for (const auto& item : trainer.train(events)) {
    if (item.indicators.size() > 3u) {
      // Overflow is only allowed for indicators tied with the boundary
      // score (renaming-invariant truncation).
      const double boundary = item.indicators[2].second;
      for (std::size_t i = 3; i < item.indicators.size(); ++i) {
        EXPECT_DOUBLE_EQ(item.indicators[i].second, boundary) << item.item_id;
      }
    }
  }
}

TEST(CcoTrainer, ModelInvariantUnderIdentifierRenaming) {
  // The PProx transparency property depends on this: training over
  // pseudonymized identifiers must yield the same model up to renaming.
  CcoParams params;
  params.max_indicators_per_item = 2;  // force truncation with ties
  CcoTrainer trainer(params);
  std::vector<Event> events;
  SplitMix64 rng(17);
  for (int n = 0; n < 300; ++n) {
    events.push_back({"u" + std::to_string(rng.next_below(20)),
                      "i" + std::to_string(rng.next_below(15))});
  }
  auto rename = [](const std::string& id) { return "zz-renamed-" + id; };
  std::vector<Event> renamed;
  for (const auto& e : events) renamed.push_back({rename(e.user), rename(e.item)});

  const auto model_a = trainer.train(events);
  const auto model_b = trainer.train(renamed);
  ASSERT_EQ(model_a.size(), model_b.size());
  // Compare as sets of (item, {indicator: weight}) after renaming.
  std::map<std::string, std::map<std::string, double>> a, b;
  for (const auto& d : model_a) {
    for (const auto& [ind, w] : d.indicators) a[rename(d.item_id)][rename(ind)] = w;
  }
  for (const auto& d : model_b) {
    for (const auto& [ind, w] : d.indicators) b[d.item_id][ind] = w;
  }
  EXPECT_EQ(a, b);
}

TEST(CcoTrainer, EmptyInputEmptyModel) {
  CcoTrainer trainer;
  EXPECT_TRUE(trainer.train({}).empty());
}

TEST(CcoTrainer, SingleUserSingleItem) {
  CcoTrainer trainer;
  const auto model = trainer.train({{"u", "only"}});
  ASSERT_EQ(model.size(), 1u);
  EXPECT_EQ(model[0].item_id, "only");
  EXPECT_TRUE(model[0].indicators.empty());
}

// Brute-force reference check on a randomized event log.
TEST(CcoTrainer, CooccurrenceMatchesBruteForce) {
  SplitMix64 rng(99);
  std::vector<Event> events;
  constexpr int kUsers = 30;
  constexpr int kItems = 12;
  for (int u = 0; u < kUsers; ++u) {
    for (int k = 0; k < 6; ++k) {
      events.push_back({"u" + std::to_string(u),
                        "i" + std::to_string(rng.next_below(kItems))});
    }
  }
  // Reference: user sets, then pairwise LLR for one probe pair.
  std::map<std::string, std::set<std::string>> histories;
  for (const auto& e : events) histories[e.user].insert(e.item);
  const std::string a = "i3", b = "i7";
  std::uint64_t k11 = 0, a_users = 0, b_users = 0;
  for (const auto& [u, items] : histories) {
    const bool has_a = items.count(a), has_b = items.count(b);
    k11 += has_a && has_b;
    a_users += has_a;
    b_users += has_b;
  }
  const std::uint64_t total = histories.size();
  const double expected = log_likelihood_ratio(
      k11, a_users - k11, b_users - k11, total - a_users - b_users + k11);

  CcoParams params;
  params.llr_threshold = -1;  // keep everything
  const auto model = CcoTrainer(params).train(events);
  double actual = -1;
  for (const auto& item : model) {
    if (item.item_id != a) continue;
    for (const auto& [ind, weight] : item.indicators) {
      if (ind == b) actual = weight;
    }
  }
  if (k11 * total > a_users * b_users) {  // positive association kept
    ASSERT_GE(actual, 0) << "pair missing from model";
    EXPECT_NEAR(actual, expected, 1e-9);
  } else {
    EXPECT_LT(actual, 0) << "negatively-associated pair must be filtered";
  }
}

TEST(Recommender, RecommendsCoLikedAndExcludesSeen) {
  CcoTrainer trainer;
  SearchIndex index;
  index.replace_all(trainer.train(movie_events()));
  const Recommender rec(index);
  // A user who liked A should be recommended B (not A itself).
  const auto hits = rec.recommend({"A"}, 10);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].item_id, "B");
  for (const auto& hit : hits) EXPECT_NE(hit.item_id, "A");
}

}  // namespace
}  // namespace pprox::lrs
