// Simulated TEE: attestation flow, provisioning, ecall boundary, sealing,
// and the breach/exfiltration adversary surface.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/hybrid.hpp"
#include "enclave/attestation.hpp"
#include "enclave/enclave.hpp"

namespace pprox::enclave {
namespace {

class EnclaveTest : public ::testing::Test {
 protected:
  EnclaveTest() : rng_(to_bytes("enclave-test")), ias_(rng_) {}
  crypto::Drbg rng_;
  AttestationService ias_;
};

TEST_F(EnclaveTest, MeasurementIsCodeIdentityDigest) {
  Enclave a("pprox-ua-v1", rng_);
  Enclave b("pprox-ua-v1", rng_);
  Enclave c("pprox-ia-v1", rng_);
  EXPECT_EQ(a.measurement(), b.measurement());  // same code, same measurement
  EXPECT_FALSE(a.measurement() == c.measurement());
  EXPECT_EQ(a.measurement(), Measurement::of_code("pprox-ua-v1"));
}

TEST_F(EnclaveTest, ChannelKeysAreDistinctPerInstance) {
  Enclave a("pprox-ua-v1", rng_);
  Enclave b("pprox-ua-v1", rng_);
  EXPECT_NE(a.channel_public_key().fingerprint(),
            b.channel_public_key().fingerprint());
}

TEST_F(EnclaveTest, FullAttestThenProvisionFlow) {
  Enclave enclave("pprox-ua-v1", rng_);
  ias_.register_platform(enclave);

  // Verifier (RaaS client app): challenge, verify, provision.
  const Bytes nonce = rng_.bytes(16);
  const auto quote = ias_.issue_quote(enclave, nonce);
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(AttestationService::verify_quote(
      quote.value(), ias_.root_public_key(), Measurement::of_code("pprox-ua-v1"),
      nonce, enclave.channel_public_key()));

  const Bytes secrets = to_bytes("layer-secret-keys");
  const auto blob =
      crypto::hybrid_encrypt(enclave.channel_public_key(), secrets, rng_);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(enclave.provision(blob.value()).ok());
  EXPECT_TRUE(enclave.provisioned());

  // Enclave code sees the secrets through the ecall boundary.
  const Bytes inside = enclave.ecall([](ByteView s) {
    return Bytes(s.begin(), s.end());
  });
  EXPECT_EQ(inside, secrets);
}

TEST_F(EnclaveTest, QuoteRefusedForUnregisteredPlatform) {
  Enclave rogue("pprox-ua-v1", rng_);
  EXPECT_FALSE(ias_.issue_quote(rogue, rng_.bytes(16)).ok());
}

TEST_F(EnclaveTest, VerifyRejectsWrongMeasurementNonceOrKey) {
  Enclave enclave("pprox-ua-v1", rng_);
  Enclave other("pprox-ua-v1", rng_);
  ias_.register_platform(enclave);
  const Bytes nonce = rng_.bytes(16);
  const auto quote = ias_.issue_quote(enclave, nonce);
  ASSERT_TRUE(quote.ok());

  const auto& root = ias_.root_public_key();
  EXPECT_FALSE(AttestationService::verify_quote(
      quote.value(), root, Measurement::of_code("evil-code"), nonce,
      enclave.channel_public_key()));
  EXPECT_FALSE(AttestationService::verify_quote(
      quote.value(), root, Measurement::of_code("pprox-ua-v1"),
      rng_.bytes(16), enclave.channel_public_key()));
  // Quote must bind the channel key: substituting another enclave's key (a
  // man-in-the-middle provisioning attempt) fails.
  EXPECT_FALSE(AttestationService::verify_quote(
      quote.value(), root, Measurement::of_code("pprox-ua-v1"), nonce,
      other.channel_public_key()));
}

TEST_F(EnclaveTest, VerifyRejectsForgedSignature) {
  Enclave enclave("pprox-ua-v1", rng_);
  ias_.register_platform(enclave);
  const Bytes nonce = rng_.bytes(16);
  auto quote = ias_.issue_quote(enclave, nonce);
  ASSERT_TRUE(quote.ok());
  quote.value().signature[5] ^= 0x10;
  EXPECT_FALSE(AttestationService::verify_quote(
      quote.value(), ias_.root_public_key(),
      Measurement::of_code("pprox-ua-v1"), nonce,
      enclave.channel_public_key()));
}

TEST_F(EnclaveTest, ProvisionRejectsGarbageAndDoubleProvision) {
  Enclave enclave("pprox-ua-v1", rng_);
  EXPECT_FALSE(enclave.provision(Bytes(10, 0)).ok());
  const auto blob = crypto::hybrid_encrypt(enclave.channel_public_key(),
                                           to_bytes("secrets"), rng_);
  ASSERT_TRUE(enclave.provision(blob.value()).ok());
  EXPECT_FALSE(enclave.provision(blob.value()).ok());  // already provisioned
}

TEST_F(EnclaveTest, ProvisionForWrongEnclaveFails) {
  Enclave a("pprox-ua-v1", rng_);
  Enclave b("pprox-ua-v1", rng_);
  const auto blob_for_a =
      crypto::hybrid_encrypt(a.channel_public_key(), to_bytes("secrets"), rng_);
  // The blob is bound to a's channel key; b cannot decrypt it.
  EXPECT_FALSE(b.provision(blob_for_a.value()).ok());
}

TEST_F(EnclaveTest, EcallBeforeProvisionThrows) {
  Enclave enclave("pprox-ua-v1", rng_);
  EXPECT_THROW(enclave.ecall([](ByteView) { return 0; }), std::logic_error);
}

TEST_F(EnclaveTest, EcallsAreCounted) {
  Enclave enclave("pprox-ua-v1", rng_);
  const auto blob = crypto::hybrid_encrypt(enclave.channel_public_key(),
                                           to_bytes("s"), rng_);
  ASSERT_TRUE(enclave.provision(blob.value()).ok());
  EXPECT_EQ(enclave.transition_count(), 0u);
  for (int i = 0; i < 5; ++i) enclave.ecall([](ByteView) { return 0; });
  EXPECT_EQ(enclave.transition_count(), 5u);
}

TEST_F(EnclaveTest, SealUnsealRoundTripAndTamperDetection) {
  Enclave enclave("pprox-ua-v1", rng_);
  const Bytes data = to_bytes("sealed state: pending response keys");
  Bytes sealed = enclave.seal(data);
  const auto back = enclave.unseal(sealed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);

  sealed[3] ^= 0x01;
  EXPECT_FALSE(enclave.unseal(sealed).ok());
  EXPECT_FALSE(enclave.unseal(Bytes(5, 0)).ok());
}

TEST_F(EnclaveTest, SealingIsPlatformBound) {
  Enclave a("pprox-ua-v1", rng_);
  Enclave b("pprox-ua-v1", rng_);  // same code, different platform instance
  const Bytes sealed = a.seal(to_bytes("data"));
  EXPECT_FALSE(b.unseal(sealed).ok());
}

TEST_F(EnclaveTest, SecretsIsolatedUntilBreach) {
  Enclave enclave("pprox-ua-v1", rng_);
  const auto blob = crypto::hybrid_encrypt(enclave.channel_public_key(),
                                           to_bytes("kUA||skUA"), rng_);
  ASSERT_TRUE(enclave.provision(blob.value()).ok());

  EXPECT_FALSE(enclave.breached());
  EXPECT_FALSE(enclave.exfiltrate_secrets().ok());
  EXPECT_FALSE(enclave.exfiltrate_channel_key().ok());

  enclave.breach();  // side-channel attack succeeds (paper §2.3 ➍)
  EXPECT_TRUE(enclave.breached());
  const auto stolen = enclave.exfiltrate_secrets();
  ASSERT_TRUE(stolen.ok());
  EXPECT_EQ(to_string(stolen.value()), "kUA||skUA");
  EXPECT_TRUE(enclave.exfiltrate_channel_key().ok());
}

}  // namespace
}  // namespace pprox::enclave
