// Constant-time helper and branch-free unpad tests. Two layers: exhaustive
// bit-level checks of the crypto/ct.hpp building blocks (a wrong mask fold
// is a silent correctness bug, not just a timing one), and accept/reject
// equivalence of the branch-free PKCS#1 v1.5 / OAEP unpad scans against a
// straightforward branching reference across separator positions and
// corruption patterns. The timing side is covered by tools/pprox_ct_bench;
// here we pin that hardening changed no functional behaviour.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "common/bytes.hpp"
#include "common/encoding.hpp"
#include "crypto/ct.hpp"
#include "crypto/drbg.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace pprox::crypto {
namespace {

constexpr std::size_t kEmSize = 128;  // 1024-bit modulus block

TEST(CtHelpers, EqU8Exhaustive) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      EXPECT_EQ(ct_eq_u8(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)),
                a == b ? 1 : 0);
    }
  }
}

TEST(CtHelpers, SelectAndMaskU8) {
  EXPECT_EQ(ct_select_u8(1, 0xAB, 0xCD), 0xAB);
  EXPECT_EQ(ct_select_u8(0, 0xAB, 0xCD), 0xCD);
  EXPECT_EQ(ct_mask_u8(1), 0xFF);
  EXPECT_EQ(ct_mask_u8(0), 0x00);
  for (int v = 0; v < 256; ++v) {
    const auto b = static_cast<std::uint8_t>(v);
    EXPECT_EQ(ct_select_u8(1, b, static_cast<std::uint8_t>(~b)), b);
    EXPECT_EQ(ct_select_u8(0, static_cast<std::uint8_t>(~b), b), b);
  }
}

TEST(CtHelpers, LtGeSizeEdges) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  const std::size_t samples[] = {0, 1, 2, 9, 10, 11, 127, 128,
                                 kMax - 1, kMax, kMax / 2};
  for (std::size_t a : samples) {
    for (std::size_t b : samples) {
      EXPECT_EQ(ct_lt_size(a, b), a < b ? 1u : 0u) << a << " < " << b;
      EXPECT_EQ(ct_ge_size(a, b), a >= b ? 1u : 0u) << a << " >= " << b;
    }
  }
}

TEST(CtHelpers, SelectAndMaskSize) {
  EXPECT_EQ(ct_mask_size(1), ~static_cast<std::size_t>(0));
  EXPECT_EQ(ct_mask_size(0), static_cast<std::size_t>(0));
  EXPECT_EQ(ct_select_size(1, 42, 7), 42u);
  EXPECT_EQ(ct_select_size(0, 42, 7), 7u);
}

TEST(CtHelpers, EqualAndIsZero) {
  const Bytes a = to_bytes("equal-buffers-equal-buffers");
  Bytes b = a;
  EXPECT_TRUE(ct_equal(a, b));
  b.front() ^= 1;
  EXPECT_FALSE(ct_equal(a, b));
  b = a;
  b.back() ^= 0x80;
  EXPECT_FALSE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, ByteView(a.data(), a.size() - 1)));
  EXPECT_TRUE(ct_equal(ByteView(), ByteView()));

  Bytes z(33, 0);
  EXPECT_TRUE(ct_is_zero(z));
  z[17] = 1;
  EXPECT_FALSE(ct_is_zero(z));
}

// --- PKCS#1 v1.5: branch-free scan vs straightforward reference ------------

// The obvious branching implementation the hardened scan replaced. Kept here
// as the behavioural oracle: both must accept/reject identically and return
// the same message bytes.
Result<Bytes> reference_unpad_pkcs1(ByteView em) {
  if (em.size() < 11) return Error::crypto("PKCS1: bad padding");
  if (em[0] != 0x00 || em[1] != 0x02) return Error::crypto("PKCS1: bad padding");
  std::size_t sep = 0;
  bool found = false;
  for (std::size_t i = 2; i < em.size(); ++i) {
    if (em[i] == 0x00) {
      sep = i;
      found = true;
      break;
    }
  }
  if (!found || sep < 10) return Error::crypto("PKCS1: bad padding");
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep) + 1, em.end());
}

void expect_same_verdict(ByteView em) {
  const auto got = rsa_unpad_pkcs1(em);
  const auto want = reference_unpad_pkcs1(em);
  ASSERT_EQ(got.ok(), want.ok());
  if (got.ok()) {
    EXPECT_EQ(got.value(), want.value());
  }
}

Bytes pkcs1_block(std::size_t sep) {
  // EM = 00 02 || nonzero PS || 00 || M, separator at index `sep`.
  Bytes em(kEmSize, 0x5A);
  em[0] = 0x00;
  em[1] = 0x02;
  em[sep] = 0x00;
  for (std::size_t i = sep + 1; i < em.size(); ++i) {
    em[i] = static_cast<std::uint8_t>(i & 0xFF ? i : 1);
  }
  return em;
}

TEST(Pkcs1Unpad, EverySeparatorPositionMatchesReference) {
  // Positions 2..9 violate the >=8-byte-PS rule (reject), 10..126 accept
  // with a message of shrinking length, 127 accepts an empty message.
  for (std::size_t sep = 2; sep < kEmSize; ++sep) {
    const Bytes em = pkcs1_block(sep);
    expect_same_verdict(em);
    const auto got = rsa_unpad_pkcs1(em);
    EXPECT_EQ(got.ok(), sep >= 10);
    if (got.ok()) {
      EXPECT_EQ(got.value().size(), kEmSize - sep - 1);
    }
  }
}

TEST(Pkcs1Unpad, CorruptionsMatchReference) {
  const Bytes good = pkcs1_block(40);
  ASSERT_TRUE(rsa_unpad_pkcs1(good).ok());

  Bytes em = good;
  em[0] = 0x01;  // wrong leading byte
  expect_same_verdict(em);
  EXPECT_FALSE(rsa_unpad_pkcs1(em).ok());

  em = good;
  em[1] = 0x01;  // wrong block type
  expect_same_verdict(em);
  EXPECT_FALSE(rsa_unpad_pkcs1(em).ok());

  em = good;
  for (std::size_t i = 2; i < em.size(); ++i) em[i] |= 1;  // no separator
  expect_same_verdict(em);
  EXPECT_FALSE(rsa_unpad_pkcs1(em).ok());

  expect_same_verdict(ByteView(good.data(), 10));  // too short outright
  EXPECT_FALSE(rsa_unpad_pkcs1(ByteView(good.data(), 10)).ok());
}

TEST(Pkcs1Unpad, RandomVectorsMatchReference) {
  Drbg rng(to_bytes("ct-pkcs1-vectors"));
  for (int round = 0; round < 200; ++round) {
    Bytes em(kEmSize, 0);
    rng.fill(em);
    // Half the rounds get a plausible header so the scan path is exercised.
    if (round % 2 == 0) {
      em[0] = 0x00;
      em[1] = 0x02;
    }
    expect_same_verdict(em);
  }
}

// --- OAEP: branch-free unpad over hand-built encryption blocks -------------

// Mirrors the encrypt-side padding in rsa_encrypt_oaep with a caller-chosen
// seed, so unpad behaviour is testable without keys or modexp.
Bytes oaep_block(ByteView msg, std::uint8_t seed_fill) {
  constexpr std::size_t h = Sha256::kDigestSize;
  Bytes db(kEmSize - h - 1, 0);
  const auto l_hash = Sha256::digest(ByteView());
  std::memcpy(db.data(), l_hash.data(), h);
  db[db.size() - msg.size() - 1] = 0x01;
  if (!msg.empty()) {
    std::memcpy(db.data() + db.size() - msg.size(), msg.data(), msg.size());
  }
  Bytes seed(h, seed_fill);
  const Bytes db_mask = mgf1_sha256(seed, db.size());
  xor_into(db, db_mask);
  const Bytes seed_mask = mgf1_sha256(db, h);
  xor_into(seed, seed_mask);
  Bytes em;
  em.reserve(kEmSize);
  em.push_back(0x00);
  em.insert(em.end(), seed.begin(), seed.end());
  em.insert(em.end(), db.begin(), db.end());
  return em;
}

TEST(OaepUnpad, RoundTripsEveryMessageLength) {
  constexpr std::size_t h = Sha256::kDigestSize;
  Drbg rng(to_bytes("ct-oaep-vectors"));
  for (std::size_t len = 0; len <= kEmSize - 2 * h - 2; ++len) {
    Bytes msg(len, 0);
    rng.fill(msg);
    const auto got = rsa_unpad_oaep(oaep_block(msg, 0x3C));
    ASSERT_TRUE(got.ok()) << "len=" << len;
    EXPECT_EQ(got.value(), msg);
  }
}

TEST(OaepUnpad, RejectsEveryCorruptionClass) {
  const Bytes msg = to_bytes("oaep message");
  const Bytes good = oaep_block(msg, 0x77);
  ASSERT_TRUE(rsa_unpad_oaep(good).ok());

  Bytes em = good;
  em[0] = 0x01;  // nonzero leading byte
  EXPECT_FALSE(rsa_unpad_oaep(em).ok());

  em = good;
  em[1 + Sha256::kDigestSize] ^= 0x40;  // corrupt masked DB -> lHash mismatch
  EXPECT_FALSE(rsa_unpad_oaep(em).ok());

  em = good;
  em[5] ^= 0x01;  // corrupt masked seed -> DB unmasks to garbage
  EXPECT_FALSE(rsa_unpad_oaep(em).ok());

  EXPECT_FALSE(rsa_unpad_oaep(ByteView(good.data(), 2 * Sha256::kDigestSize + 1))
                   .ok());  // too short
}

TEST(OaepUnpad, SeedValueNeverChangesVerdict) {
  // The random seed only masks; acceptance must not depend on it.
  const Bytes msg = to_bytes("seed-independence");
  for (int fill = 0; fill < 256; fill += 15) {
    EXPECT_TRUE(
        rsa_unpad_oaep(oaep_block(msg, static_cast<std::uint8_t>(fill))).ok());
  }
}

}  // namespace
}  // namespace pprox::crypto
