// Hybrid RSA-OAEP + AES-CTR encryption (the enclave provisioning channel).
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/hybrid.hpp"

namespace pprox::crypto {
namespace {

class HybridTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Drbg(to_bytes("hybrid-test"));
    keys_ = new RsaKeyPair(rsa_generate(1024, *rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
  }
  static Drbg* rng_;
  static RsaKeyPair* keys_;
};

Drbg* HybridTest::rng_ = nullptr;
RsaKeyPair* HybridTest::keys_ = nullptr;

class HybridSizes : public HybridTest,
                    public ::testing::WithParamInterface<std::size_t> {};

TEST_P(HybridSizes, RoundTripsArbitraryPayloadSizes) {
  const Bytes payload = rng_->bytes(GetParam());
  const auto blob = hybrid_encrypt(keys_->pub, payload, *rng_);
  ASSERT_TRUE(blob.ok());
  const auto back = hybrid_decrypt(keys_->priv, blob.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HybridSizes,
                         ::testing::Values(0, 1, 31, 32, 33, 127, 128, 129,
                                           1200,  // ~ LayerSecrets blob
                                           65536));

TEST_F(HybridTest, BlobIsRandomized) {
  const Bytes payload = to_bytes("layer secrets");
  const auto a = hybrid_encrypt(keys_->pub, payload, *rng_);
  const auto b = hybrid_encrypt(keys_->pub, payload, *rng_);
  EXPECT_NE(a.value(), b.value());
}

TEST_F(HybridTest, WrongKeyCannotDecrypt) {
  Drbg rng2(to_bytes("other"));
  const RsaKeyPair other = rsa_generate(1024, rng2);
  const auto blob = hybrid_encrypt(keys_->pub, to_bytes("secret"), *rng_);
  EXPECT_FALSE(hybrid_decrypt(other.priv, blob.value()).ok());
}

TEST_F(HybridTest, RejectsMalformedBlobs) {
  EXPECT_FALSE(hybrid_decrypt(keys_->priv, Bytes{}).ok());
  EXPECT_FALSE(hybrid_decrypt(keys_->priv, Bytes(1, 0)).ok());
  EXPECT_FALSE(hybrid_decrypt(keys_->priv, Bytes(64, 0)).ok());

  auto blob = hybrid_encrypt(keys_->pub, to_bytes("x"), *rng_);
  Bytes truncated = blob.value();
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(hybrid_decrypt(keys_->priv, truncated).ok());

  // Corrupt the wrapped-key length prefix.
  Bytes bad_len = blob.value();
  bad_len[0] = 0xFF;
  bad_len[1] = 0xFF;
  EXPECT_FALSE(hybrid_decrypt(keys_->priv, bad_len).ok());

  // Corrupt the wrapped key itself: OAEP must reject it.
  Bytes bad_key = blob.value();
  bad_key[10] ^= 0x40;
  EXPECT_FALSE(hybrid_decrypt(keys_->priv, bad_key).ok());
}

TEST_F(HybridTest, BodyTamperChangesPlaintextButKeyUnwrapHolds) {
  // CTR body without a MAC: flipping body bits garbles the plaintext
  // (provisioning integrity comes from attestation + the secrets' own
  // self-validation in LayerSecrets::deserialize).
  const Bytes payload = rng_->bytes(64);
  auto blob = hybrid_encrypt(keys_->pub, payload, *rng_);
  Bytes tampered = blob.value();
  tampered[tampered.size() - 1] ^= 0x01;
  const auto back = hybrid_decrypt(keys_->priv, tampered);
  ASSERT_TRUE(back.ok());
  EXPECT_NE(back.value(), payload);
}

}  // namespace
}  // namespace pprox::crypto
