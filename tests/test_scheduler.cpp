// Periodic training scheduler (Spark-style model rebuilds, paper §7).
#include <gtest/gtest.h>

#include <thread>

#include "json/json.hpp"
#include "lrs/scheduler.hpp"

namespace pprox::lrs {
namespace {

using namespace std::chrono_literals;

TrainingPolicy fast_policy() {
  TrainingPolicy policy;
  policy.interval = 60ms;
  return policy;
}

TEST(TrainingScheduler, PeriodicRebuilds) {
  HarnessServer lrs;
  lrs.post_event("u1", "A");
  lrs.post_event("u1", "B");
  lrs.post_event("u2", "A");
  lrs.post_event("u2", "B");
  lrs.post_event("u3", "C");

  TrainingScheduler scheduler(lrs, fast_policy());
  scheduler.wait_for_next_run();
  EXPECT_GE(scheduler.runs_completed(), 1u);
  EXPECT_GT(lrs.indexed_items(), 0u);
  scheduler.wait_for_next_run();
  EXPECT_GE(scheduler.runs_completed(), 2u);
}

TEST(TrainingScheduler, TriggerForcesImmediateRun) {
  HarnessServer lrs;
  lrs.post_event("u", "i");
  TrainingPolicy policy;
  policy.interval = 10s;  // far away: only the trigger can cause a run
  TrainingScheduler scheduler(lrs, policy);
  EXPECT_EQ(scheduler.runs_completed(), 0u);
  scheduler.trigger();
  scheduler.wait_for_next_run();
  EXPECT_GE(scheduler.runs_completed(), 1u);
}

TEST(TrainingScheduler, EventCountTrigger) {
  HarnessServer lrs;
  TrainingPolicy policy;
  policy.interval = 10s;
  policy.min_new_events = 5;
  TrainingScheduler scheduler(lrs, policy);
  for (int i = 0; i < 5; ++i) {
    lrs.post_event("u" + std::to_string(i), "item-" + std::to_string(i % 2));
  }
  scheduler.wait_for_next_run();
  EXPECT_GE(scheduler.runs_completed(), 1u);
  EXPECT_GT(lrs.indexed_items(), 0u);
}

TEST(TrainingScheduler, NewFeedbackChangesModelAfterNextRun) {
  HarnessServer lrs;
  lrs.post_event("u1", "A");
  lrs.post_event("u1", "B");
  lrs.post_event("u2", "A");
  lrs.post_event("u2", "B");
  lrs.post_event("u3", "C");
  lrs.post_event("probe", "A");

  TrainingScheduler scheduler(lrs, fast_policy());
  scheduler.wait_for_next_run();
  const auto first = json::parse(lrs.query("probe").body);
  ASSERT_FALSE(first.value().find("items")->as_array().empty());

  // A new strongly co-occurring item appears; after the next rebuild the
  // recommendations include it.
  lrs.post_event("u1", "D");
  lrs.post_event("u2", "D");
  scheduler.wait_for_next_run();
  scheduler.wait_for_next_run();  // ensure a run strictly after the posts
  const auto second = json::parse(lrs.query("probe").body);
  bool has_d = false;
  for (const auto& item : second.value().find("items")->as_array()) {
    if (item.as_string() == "D") has_d = true;
  }
  EXPECT_TRUE(has_d);
}

TEST(TrainingScheduler, QueriesServedDuringRetraining) {
  HarnessServer lrs;
  for (int u = 0; u < 30; ++u) {
    for (int i = 0; i < 20; ++i) {
      lrs.post_event("u" + std::to_string(u), "i" + std::to_string((u + i) % 40));
    }
  }
  TrainingPolicy policy;
  policy.interval = 5ms;  // retrain constantly
  TrainingScheduler scheduler(lrs, policy);
  scheduler.wait_for_next_run();
  // Queries must always see a complete snapshot.
  for (int i = 0; i < 200; ++i) {
    const auto resp = lrs.query("u1");
    ASSERT_EQ(resp.status, 200);
  }
  EXPECT_GE(scheduler.runs_completed(), 1u);
}

TEST(TrainingScheduler, StopIsIdempotentAndFast) {
  HarnessServer lrs;
  auto scheduler = std::make_unique<TrainingScheduler>(lrs, fast_policy());
  scheduler->stop();
  scheduler->stop();
  scheduler.reset();
}

}  // namespace
}  // namespace pprox::lrs
