// Unit tests for the sync facade (common/sync.hpp) in its normal,
// passthrough flavour: the pprox::Mutex / CondVar / Atomic / DetThread
// wrappers every src/ component must use (enforced by the raw-sync lint
// rule) so that the -DPPROX_MODEL_CHECK build can interpose a deterministic
// scheduler on exactly the same call sites (DESIGN.md §9). These tests pin
// the passthrough semantics: the wrappers must behave like the std
// primitives they wrap, plus the lifecycle contract checks.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/sync.hpp"

namespace pprox {
namespace {

TEST(Sync, MutexProvidesExclusion) {
  Mutex mu;
  int counter = 0;
  std::vector<DetThread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(DetThread(
        [&] {
          for (int i = 0; i < 10000; ++i) {
            LockGuard lock(mu);
            ++counter;
          }
        },
        "incr"));
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(Sync, UniqueLockRelockAndContractChecks) {
  Mutex mu;
  UniqueLock lock(mu);
  lock.unlock();
  lock.lock();  // relockable, unlike LockGuard
  lock.unlock();
  // Destroying an unlocked UniqueLock must not unlock again (UB if it did);
  // reaching the end of scope cleanly is the assertion.
}

TEST(Sync, CondVarNotifyWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  DetThread waiter(
      [&] {
        UniqueLock lock(mu);
        cv.wait(lock, [&] { return ready; });
        observed = true;
      },
      "waiter");
  {
    LockGuard lock(mu);
    ready = true;
    cv.notify_one();
  }
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(Sync, CondVarWaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  UniqueLock lock(mu);
  const auto before = SteadyClock::now();
  const bool ok =
      cv.wait_for(lock, std::chrono::milliseconds(5), [] { return false; });
  EXPECT_FALSE(ok);  // predicate never satisfied: must report timeout
  EXPECT_GE(SteadyClock::now() - before, std::chrono::milliseconds(4));
}

TEST(Sync, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  int value = 0;
  {
    WriteLock w(mu);
    value = 42;
  }
  // Two ReadLocks held at once in one thread: lock_shared must not exclude
  // other shared holders (it would deadlock right here if it did).
  ReadLock r1(mu);
  ReadLock r2(mu);
  EXPECT_EQ(value, 42);
}

TEST(Sync, AtomicRoundTripAndRmw) {
  Atomic<int> a{5};
  EXPECT_EQ(a.load(), 5);
  a.store(7);
  EXPECT_EQ(a.exchange(9), 7);
  EXPECT_EQ(a.fetch_add(3), 9);
  EXPECT_EQ(a.fetch_sub(2), 12);
  EXPECT_EQ(a.load(), 10);
}

TEST(Sync, AtomicCompareExchange) {
  Atomic<int> a{1};
  int expected = 2;
  EXPECT_FALSE(a.compare_exchange_strong(expected, 3));
  EXPECT_EQ(expected, 1);  // failure loads the current value
  EXPECT_TRUE(a.compare_exchange_strong(expected, 3));
  EXPECT_EQ(a.load(), 3);
  // acq_rel success order: the wrapper must derive a valid failure order
  // (acquire) instead of passing acq_rel through, which is UB for the load.
  int cur = 0;
  while (!a.compare_exchange_weak(cur, 4, std::memory_order_acq_rel)) {
  }
  EXPECT_EQ(a.load(), 4);
}

TEST(Sync, SteadyClockIsMonotonic) {
  const auto a = SteadyClock::now();
  const auto b = SteadyClock::now();
  EXPECT_LE(a, b);
}

TEST(Sync, DetThreadLifecycle) {
  Atomic<bool> ran{false};
  DetThread t([&] { ran.store(true); }, "lifecycle");
  EXPECT_TRUE(t.joinable());
  t.join();
  EXPECT_FALSE(t.joinable());
  EXPECT_TRUE(ran.load());

  DetThread empty;
  EXPECT_FALSE(empty.joinable());
  empty = DetThread([] {}, "assigned");  // move-assign over a joined thread
  empty.join();
}

using SyncDeath = ::testing::Test;

TEST(SyncDeath, DetThreadDoubleJoinExitsOne) {
  // PPROX_SYNC_ASSERT uses std::_Exit(1) (not abort) so the failure is a
  // plain status ctest-side tooling can invert; see also the
  // compile_fail_detthread_double_join negative-run pair.
  EXPECT_EXIT(
      {
        DetThread t([] {}, "double-join");
        t.join();
        t.join();
      },
      ::testing::ExitedWithCode(1), "DetThread joined twice");
}

TEST(SyncDeath, UniqueLockDoubleLockExitsOne) {
  EXPECT_EXIT(
      {
        Mutex mu;
        UniqueLock lock(mu);
        lock.lock();
      },
      ::testing::ExitedWithCode(1), "UniqueLock::lock\\(\\) on a held lock");
}

}  // namespace
}  // namespace pprox
