// SHA-256 and HMAC-SHA256 against FIPS 180-4 / RFC 4231 vectors.
#include <gtest/gtest.h>

#include "common/encoding.hpp"
#include "crypto/sha256.hpp"

namespace pprox::crypto {
namespace {

std::string digest_hex(ByteView data) {
  const auto d = Sha256::digest(data);
  return hex_encode(ByteView(d.data(), d.size()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(ByteView()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  const auto in = to_bytes("abc");
  EXPECT_EQ(digest_hex(in),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const auto in =
      to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(digest_hex(in),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finish();
  EXPECT_EQ(hex_encode(ByteView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const auto data = to_bytes("the quick brown fox jumps over the lazy dog!");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.update(ByteView(data.data(), split));
    h.update(ByteView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), Sha256::digest(data)) << "split=" << split;
  }
}

TEST(Sha256, DigestBytesMatchesDigest) {
  const auto in = to_bytes("xyz");
  const auto a = Sha256::digest(in);
  const auto b = Sha256::digest_bytes(in);
  EXPECT_EQ(Bytes(a.begin(), a.end()), b);
}

// Boundary lengths around the 64-byte block and 56-byte padding threshold.
class Sha256Boundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Boundary, IncrementalByteAtATimeMatchesOneShot) {
  Bytes data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  Sha256 h;
  for (std::uint8_t b : data) h.update(ByteView(&b, 1));
  EXPECT_EQ(h.finish(), Sha256::digest(data));
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256Boundary,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 127, 128, 129, 1000));

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto data = to_bytes("Hi There");
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto key = to_bytes("Jefe");
  const auto data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const auto data = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, DifferentKeysDiffer) {
  const auto msg = to_bytes("same message");
  EXPECT_NE(hmac_sha256(to_bytes("k1"), msg), hmac_sha256(to_bytes("k2"), msg));
}

}  // namespace
}  // namespace pprox::crypto
