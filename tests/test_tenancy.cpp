// Multi-tenancy (§6.3): one proxy layer pair serving several applications
// with distinct key material, shared shuffle buffers, and strict cross-
// tenant isolation.
#include <gtest/gtest.h>

#include <future>

#include "crypto/drbg.hpp"
#include "crypto/hybrid.hpp"
#include "lrs/harness.hpp"
#include "pprox/client.hpp"
#include "pprox/proxy.hpp"
#include "pprox/tenancy.hpp"

namespace pprox {
namespace {

TEST(TenantKeyring, SerializeDeserializeRoundTrip) {
  crypto::Drbg rng(to_bytes("keyring"));
  TenantKeyring keyring;
  keyring.tenants.emplace("shop", ApplicationKeys::generate(rng).ua);
  keyring.tenants.emplace("forum", ApplicationKeys::generate(rng).ua);
  const Bytes blob = keyring.serialize();
  EXPECT_TRUE(TenantKeyring::looks_like_keyring(blob));

  const auto back = TenantKeyring::deserialize(blob);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().tenants.size(), 2u);
  EXPECT_EQ(back.value().tenants.at("shop").k, keyring.tenants.at("shop").k);
  EXPECT_EQ(back.value().tenants.at("forum").k, keyring.tenants.at("forum").k);
}

TEST(TenantKeyring, RejectsMalformedBlobs) {
  EXPECT_FALSE(TenantKeyring::deserialize(Bytes{}).ok());
  EXPECT_FALSE(TenantKeyring::deserialize(to_bytes("PPXT")).ok());
  EXPECT_FALSE(TenantKeyring::deserialize(to_bytes("XXXX\x00\x01")).ok());
  crypto::Drbg rng(to_bytes("kr2"));
  TenantKeyring keyring;
  keyring.tenants.emplace("a", ApplicationKeys::generate(rng).ua);
  Bytes blob = keyring.serialize();
  blob.pop_back();
  EXPECT_FALSE(TenantKeyring::deserialize(blob).ok());
  blob.push_back(0);
  blob.push_back(0);
  EXPECT_FALSE(TenantKeyring::deserialize(blob).ok());  // trailing bytes
}

TEST(TenantKeyring, SingleSecretsBlobIsNotAKeyring) {
  crypto::Drbg rng(to_bytes("kr3"));
  const Bytes blob = ApplicationKeys::generate(rng).ua.serialize();
  EXPECT_FALSE(TenantKeyring::looks_like_keyring(blob));
}

class TenancyTest : public ::testing::Test {
 protected:
  TenancyTest() : rng_(to_bytes("tenancy-test")) {
    shop_keys_ = ApplicationKeys::generate(rng_);
    forum_keys_ = ApplicationKeys::generate(rng_);

    TenantKeyring ua_ring, ia_ring;
    ua_ring.tenants = {{"shop", shop_keys_.ua}, {"forum", forum_keys_.ua}};
    ia_ring.tenants = {{"shop", shop_keys_.ia}, {"forum", forum_keys_.ia}};

    ua_enclave_ = std::make_unique<enclave::Enclave>(kUaCodeIdentity, rng_);
    ia_enclave_ = std::make_unique<enclave::Enclave>(kIaCodeIdentity, rng_);
    provision(*ua_enclave_, ua_ring);
    provision(*ia_enclave_, ia_ring);

    ProxyOptions ia_options;
    ia_options.layer = ProxyOptions::Layer::kIa;
    ia_proxy_ = std::make_unique<ProxyServer>(
        ia_options, *ia_enclave_, std::make_shared<net::InProcChannel>(lrs_));
    ProxyOptions ua_options;
    ua_proxy_ = std::make_unique<ProxyServer>(
        ua_options, *ua_enclave_,
        std::make_shared<net::InProcChannel>(*ia_proxy_));
    entry_ = std::make_shared<net::InProcChannel>(*ua_proxy_);
  }

  void provision(enclave::Enclave& enclave, const TenantKeyring& keyring) {
    const auto blob = crypto::hybrid_encrypt(enclave.channel_public_key(),
                                             keyring.serialize(), rng_);
    ASSERT_TRUE(enclave.provision(blob.value()).ok());
  }

  ClientLibrary client_for(const std::string& tenant) {
    const ApplicationKeys& keys =
        tenant == "shop" ? shop_keys_ : forum_keys_;
    return ClientLibrary(keys.client_params(), entry_, &rng_, tenant);
  }

  crypto::Drbg rng_;
  ApplicationKeys shop_keys_;
  ApplicationKeys forum_keys_;
  lrs::HarnessServer lrs_;
  std::unique_ptr<enclave::Enclave> ua_enclave_;
  std::unique_ptr<enclave::Enclave> ia_enclave_;
  std::unique_ptr<ProxyServer> ia_proxy_;
  std::unique_ptr<ProxyServer> ua_proxy_;
  std::shared_ptr<net::HttpChannel> entry_;
};

TEST_F(TenancyTest, BothTenantsServedBySharedProxies) {
  EXPECT_EQ(ua_proxy_->tenant_count(), 2u);
  ClientLibrary shop = client_for("shop");
  ClientLibrary forum = client_for("forum");

  ASSERT_TRUE(shop.post_sync("s-user", "gadget").ok());
  ASSERT_TRUE(forum.post_sync("f-user", "thread-42").ok());
  EXPECT_EQ(lrs_.event_count(), 2u);
  EXPECT_EQ(ua_proxy_->requests_seen(), 2u);  // same instances
}

TEST_F(TenancyTest, TenantsGetTheirOwnRecommendations) {
  ClientLibrary shop = client_for("shop");
  ClientLibrary forum = client_for("forum");
  for (const auto& [u, i] : std::vector<std::pair<std::string, std::string>>{
           {"s1", "gadget"}, {"s1", "widget"}, {"s2", "gadget"},
           {"s2", "widget"}, {"s3", "gizmo"}, {"probe", "gadget"}}) {
    ASSERT_TRUE(shop.post_sync(u, i).ok());
  }
  for (const auto& [u, i] : std::vector<std::pair<std::string, std::string>>{
           {"f1", "thread-a"}, {"f1", "thread-b"}, {"f2", "thread-a"},
           {"f2", "thread-b"}, {"f3", "thread-c"}, {"probe", "thread-a"}}) {
    ASSERT_TRUE(forum.post_sync(u, i).ok());
  }
  lrs_.train();
  // Each tenant's "probe" is a DIFFERENT pseudonymous user; each sees only
  // its own catalogue.
  const auto shop_recs = shop.get_sync("probe");
  ASSERT_TRUE(shop_recs.ok());
  ASSERT_FALSE(shop_recs.value().empty());
  EXPECT_EQ(shop_recs.value()[0], "widget");
  const auto forum_recs = forum.get_sync("probe");
  ASSERT_TRUE(forum_recs.ok());
  ASSERT_FALSE(forum_recs.value().empty());
  EXPECT_EQ(forum_recs.value()[0], "thread-b");
}

TEST_F(TenancyTest, WrongTenantHeaderCannotDecrypt) {
  // A request encrypted under shop's keys but labelled as forum must be
  // rejected: forum's skUA cannot decrypt shop's ciphertext.
  ClientLibrary shop = client_for("shop");
  auto request = shop.build_post_request("s-user", "gadget");
  request.value().set_header(kTenantHeader, "forum");
  std::promise<http::HttpResponse> promise;
  auto future = promise.get_future();
  entry_->send(std::move(request.value()), [&promise](http::HttpResponse r) {
    promise.set_value(std::move(r));
  });
  EXPECT_EQ(future.get().status, 400);
}

TEST_F(TenancyTest, UnknownTenantRejected) {
  ClientLibrary rogue(shop_keys_.client_params(), entry_, &rng_, "mallory-app");
  const Status s = rogue.post_sync("u", "i");
  EXPECT_FALSE(s.ok());
  EXPECT_GE(ua_proxy_->errors(), 1u);
}

TEST_F(TenancyTest, PseudonymSpacesAreDisjoint) {
  ClientLibrary shop = client_for("shop");
  ClientLibrary forum = client_for("forum");
  // Same plaintext user id in both tenants.
  ASSERT_TRUE(shop.post_sync("alice", "x").ok());
  ASSERT_TRUE(forum.post_sync("alice", "x").ok());
  const auto rows = lrs_.dump_events();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[0].first, rows[1].first);   // different user pseudonyms
  EXPECT_NE(rows[0].second, rows[1].second); // different item pseudonyms
}

TEST_F(TenancyTest, BreachLeaksAllTenantsOfOneLayerOnly) {
  // The paper's stated multi-tenancy risk: one broken enclave exposes the
  // secrets of several applications — but still only one layer each.
  ua_enclave_->breach();
  const auto blob = ua_enclave_->exfiltrate_secrets();
  ASSERT_TRUE(blob.ok());
  const auto keyring = TenantKeyring::deserialize(blob.value());
  ASSERT_TRUE(keyring.ok());
  EXPECT_EQ(keyring.value().tenants.size(), 2u);  // both tenants' UA secrets
  EXPECT_EQ(keyring.value().tenants.at("shop").k, shop_keys_.ua.k);
  // IA secrets remain out of reach.
  EXPECT_FALSE(ia_enclave_->exfiltrate_secrets().ok());
}

}  // namespace
}  // namespace pprox
