// Cluster-model behaviour: the qualitative properties the paper's evaluation
// rests on must hold in the simulator (feature costs stack, shuffling adds
// bounded delay, capacity scales with instances, saturation is detected).
#include <gtest/gtest.h>

#include <set>

#include "sim/cluster.hpp"

namespace pprox::sim {
namespace {

WorkloadConfig quick_workload(double rps, std::uint64_t seed = 7) {
  WorkloadConfig w;
  w.rps = rps;
  w.duration_ms = 20'000;
  w.warmup_ms = 3'000;
  w.cooldown_ms = 3'000;
  w.repetitions = 1;
  w.seed = seed;
  return w;
}

TEST(ClusterSim, CompletesAllRequestsUnderLightLoad) {
  ProxyConfig proxy;  // all features, no shuffling
  LrsConfig lrs;
  const RunResult r = run_cluster(proxy, lrs, quick_workload(100), CostModel{});
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.injected, r.completed);
  EXPECT_GT(r.latencies.count(), 500u);
  EXPECT_LT(r.latencies.percentile(50), 50);
}

TEST(ClusterSim, FeatureCostsStack) {
  LrsConfig lrs;
  const CostModel costs;
  ProxyConfig m1;
  m1.encryption = false;
  m1.sgx = false;
  ProxyConfig m2 = m1;
  m2.encryption = true;
  ProxyConfig m3 = m2;
  m3.sgx = true;

  const double l1 =
      run_cluster(m1, lrs, quick_workload(100), costs).latencies.percentile(50);
  const double l2 =
      run_cluster(m2, lrs, quick_workload(100), costs).latencies.percentile(50);
  const double l3 =
      run_cluster(m3, lrs, quick_workload(100), costs).latencies.percentile(50);
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
  // Encryption costs more than the SGX boundary (paper Fig. 6 observation).
  EXPECT_GT(l2 - l1, l3 - l2);
}

TEST(ClusterSim, ItemPseudonymizationNearlyFree) {
  LrsConfig lrs;
  ProxyConfig m3;
  ProxyConfig m4 = m3;
  m4.item_pseudonymization = false;
  const double with_pseudo =
      run_cluster(m3, lrs, quick_workload(100), CostModel{}).latencies.percentile(50);
  const double without =
      run_cluster(m4, lrs, quick_workload(100), CostModel{}).latencies.percentile(50);
  EXPECT_NEAR(with_pseudo, without, 1.0);  // negligible difference
}

TEST(ClusterSim, ShufflingAddsLatencyInverselyToRate) {
  LrsConfig lrs;
  ProxyConfig s10;
  s10.shuffle_size = 10;
  const double at_50 =
      run_cluster(s10, lrs, quick_workload(50), CostModel{}).latencies.percentile(50);
  const double at_250 =
      run_cluster(s10, lrs, quick_workload(250), CostModel{}).latencies.percentile(50);
  EXPECT_GT(at_50, at_250);  // buffer fills slower at low rate
  EXPECT_GT(at_50, 100);     // substantial at 50 rps with S=10
  EXPECT_LT(at_250, 200);    // amortized at 250 rps (paper Fig. 7)
}

TEST(ClusterSim, ShuffleTimerBoundsWorstCase) {
  LrsConfig lrs;
  ProxyConfig proxy;
  proxy.shuffle_size = 10;
  proxy.shuffle_timeout_ms = 200;
  // 5 rps: the buffer essentially never fills; the timer must flush it.
  const RunResult r = run_cluster(proxy, lrs, quick_workload(5), CostModel{});
  EXPECT_EQ(r.injected, r.completed);
  // Three shuffle stages (UA requests, IA requests, IA responses), each
  // bounded by the timer, plus processing.
  EXPECT_LT(r.latencies.percentile(99), 3 * 200 + 100);
}

TEST(ClusterSim, HorizontalScalingRaisesCapacity) {
  LrsConfig lrs;
  ProxyConfig one;
  one.shuffle_size = 10;
  ProxyConfig four = one;
  four.ua_instances = 4;
  four.ia_instances = 4;

  // 1000 rps saturates a single pair but not four pairs (paper Fig. 8).
  const RunResult small = run_cluster(one, lrs, quick_workload(1000), CostModel{});
  const RunResult big = run_cluster(four, lrs, quick_workload(1000), CostModel{});
  EXPECT_TRUE(small.saturated);
  EXPECT_FALSE(big.saturated);
  EXPECT_LT(big.latencies.percentile(50), 300);
}

TEST(ClusterSim, SingleProxyPairHandles250Rps) {
  // Headline claim: one PProx instance pair (4 cores) sustains 250 rps.
  LrsConfig lrs;
  ProxyConfig proxy;
  proxy.shuffle_size = 10;
  const RunResult r = run_cluster(proxy, lrs, quick_workload(250), CostModel{});
  EXPECT_FALSE(r.saturated);
  EXPECT_LT(r.latencies.percentile(50), 300);
}

TEST(ClusterSim, BaselineHarnessScalesWithFrontends) {
  ProxyConfig off;
  off.enabled = false;
  LrsConfig b1;
  b1.kind = LrsConfig::Kind::kHarness;
  b1.frontend_nodes = 3;
  LrsConfig b4 = b1;
  b4.frontend_nodes = 12;

  const RunResult small = run_cluster(off, b1, quick_workload(1000), CostModel{});
  const RunResult big = run_cluster(off, b4, quick_workload(1000), CostModel{});
  EXPECT_TRUE(small.saturated);
  EXPECT_FALSE(big.saturated);
}

TEST(ClusterSim, FullSystemLatencyIsRoughlyAdditive) {
  // f1 ≈ m6 + b1 (paper: "latencies are, as expected, the sum").
  const CostModel costs;
  ProxyConfig m6;
  m6.shuffle_size = 10;
  LrsConfig stub;
  LrsConfig b1;
  b1.kind = LrsConfig::Kind::kHarness;
  b1.frontend_nodes = 3;
  ProxyConfig off;
  off.enabled = false;

  const double proxy_only =
      run_cluster(m6, stub, quick_workload(250), costs).latencies.percentile(50);
  const double harness_only =
      run_cluster(off, b1, quick_workload(250), costs).latencies.percentile(50);
  const double full =
      run_cluster(m6, b1, quick_workload(250), costs).latencies.percentile(50);
  EXPECT_NEAR(full, proxy_only + harness_only, 0.5 * full);
  EXPECT_GT(full, proxy_only);
  EXPECT_GT(full, harness_only);
}

TEST(ClusterSim, SaturationDetectedAtOverload) {
  LrsConfig lrs;
  ProxyConfig proxy;  // single pair
  const RunResult r = run_cluster(proxy, lrs, quick_workload(2000), CostModel{});
  EXPECT_TRUE(r.saturated);
}

TEST(ClusterSim, MaxStableRpsFindsKneeBetween250And500) {
  LrsConfig lrs;
  ProxyConfig proxy;
  proxy.shuffle_size = 10;
  const double knee = max_stable_rps(proxy, lrs, CostModel{},
                                     {50, 125, 250, 375, 500, 625, 750});
  EXPECT_GE(knee, 250);
  EXPECT_LT(knee, 750);
}

TEST(ClusterSim, DeterministicGivenSeed) {
  LrsConfig lrs;
  ProxyConfig proxy;
  proxy.shuffle_size = 5;
  const RunResult a = run_cluster(proxy, lrs, quick_workload(100, 42), CostModel{});
  const RunResult b = run_cluster(proxy, lrs, quick_workload(100, 42), CostModel{});
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_DOUBLE_EQ(a.latencies.percentile(50), b.latencies.percentile(50));
  EXPECT_DOUBLE_EQ(a.latencies.percentile(99), b.latencies.percentile(99));
}

TEST(ClusterSim, ObserverSeesEveryStageOnce) {
  LrsConfig lrs;
  ProxyConfig proxy;
  std::map<FlowPoint, std::set<std::uint64_t>> seen;
  WorkloadConfig w = quick_workload(50);
  w.duration_ms = 5'000;
  w.warmup_ms = 0;
  w.cooldown_ms = 0;
  run_cluster(proxy, lrs, w, CostModel{},
              [&](const FlowEvent& e) { seen[e.point].insert(e.request_id); });
  const auto& inbound = seen[FlowPoint::kClientToUa];
  ASSERT_FALSE(inbound.empty());
  // Conservation: every request observed inbound is observed at every later
  // stage exactly once (ids are sets, so duplicates would shrink counts).
  EXPECT_EQ(seen[FlowPoint::kUaToIa].size(), inbound.size());
  EXPECT_EQ(seen[FlowPoint::kIaToLrs].size(), inbound.size());
  EXPECT_EQ(seen[FlowPoint::kLrsToIa].size(), inbound.size());
  EXPECT_EQ(seen[FlowPoint::kIaToUa].size(), inbound.size());
  EXPECT_EQ(seen[FlowPoint::kUaToClient].size(), inbound.size());
}

TEST(ClusterSim, UtilizationScalesWithLoad) {
  LrsConfig lrs;
  ProxyConfig proxy;
  const RunResult low = run_cluster(proxy, lrs, quick_workload(50), CostModel{});
  const RunResult high = run_cluster(proxy, lrs, quick_workload(200), CostModel{});
  EXPECT_GT(high.ua_utilization, low.ua_utilization);
  EXPECT_GT(high.ia_utilization, low.ia_utilization);
  EXPECT_GT(low.ua_utilization, 0.0);
  EXPECT_LE(high.ua_utilization, 1.05);
}

}  // namespace
}  // namespace pprox::sim
