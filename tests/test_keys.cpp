// Layer key material: serialization, generation, attest-and-provision flow.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "pprox/keys.hpp"

namespace pprox {
namespace {

class KeysTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new crypto::Drbg(to_bytes("keys-test"));
    keys_ = new ApplicationKeys(ApplicationKeys::generate(*rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }
  static crypto::Drbg* rng_;
  static ApplicationKeys* keys_;
};

crypto::Drbg* KeysTest::rng_ = nullptr;
ApplicationKeys* KeysTest::keys_ = nullptr;

TEST_F(KeysTest, GenerateProducesDistinctLayers) {
  EXPECT_NE(keys_->ua.sk.n.to_hex(), keys_->ia.sk.n.to_hex());
  EXPECT_NE(keys_->ua.k, keys_->ia.k);
  EXPECT_EQ(keys_->ua.k.size(), 32u);
  EXPECT_EQ(keys_->ia.k.size(), 32u);
}

TEST_F(KeysTest, ClientParamsMatchPrivateKeys) {
  const ClientParams params = keys_->client_params();
  EXPECT_EQ(params.pk_ua.n.to_hex(), keys_->ua.sk.n.to_hex());
  EXPECT_EQ(params.pk_ia.n.to_hex(), keys_->ia.sk.n.to_hex());
}

TEST_F(KeysTest, SerializeDeserializeRoundTrip) {
  const Bytes blob = keys_->ua.serialize();
  const auto back = LayerSecrets::deserialize(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().sk.n.to_hex(), keys_->ua.sk.n.to_hex());
  EXPECT_EQ(back.value().sk.d.to_hex(), keys_->ua.sk.d.to_hex());
  EXPECT_EQ(back.value().sk.q_inv.to_hex(), keys_->ua.sk.q_inv.to_hex());
  EXPECT_EQ(back.value().k, keys_->ua.k);
}

TEST_F(KeysTest, DeserializeRejectsCorruptBlobs) {
  Bytes blob = keys_->ua.serialize();
  EXPECT_FALSE(LayerSecrets::deserialize(Bytes(blob.begin(), blob.begin() + 10)).ok());
  Bytes extended = blob;
  extended.push_back(0);
  EXPECT_FALSE(LayerSecrets::deserialize(extended).ok());
  EXPECT_FALSE(LayerSecrets::deserialize(Bytes{}).ok());
}

TEST_F(KeysTest, DeserializedKeyStillDecrypts) {
  const auto blob = keys_->ia.serialize();
  const auto restored = LayerSecrets::deserialize(blob);
  ASSERT_TRUE(restored.ok());
  const auto ct = crypto::rsa_encrypt_oaep(keys_->ia.sk.public_key(),
                                           to_bytes("probe"), *rng_);
  ASSERT_TRUE(ct.ok());
  const auto pt = crypto::rsa_decrypt_oaep(restored.value().sk, ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(to_string(pt.value()), "probe");
}

TEST_F(KeysTest, AttestAndProvisionHappyPath) {
  enclave::AttestationService authority(*rng_);
  enclave::Enclave enclave(kUaCodeIdentity, *rng_);
  authority.register_platform(enclave);
  const Status s = attest_and_provision(
      enclave, authority, enclave::Measurement::of_code(kUaCodeIdentity),
      keys_->ua, *rng_);
  ASSERT_TRUE(s.ok()) << s.error().message;
  EXPECT_TRUE(enclave.provisioned());
  // The enclave can reconstruct the secrets.
  enclave.ecall([&](ByteView blob) {
    const auto secrets = LayerSecrets::deserialize(blob);
    EXPECT_TRUE(secrets.ok());
    EXPECT_EQ(secrets.value().k, keys_->ua.k);
    return 0;
  });
}

TEST_F(KeysTest, ProvisionRefusedForWrongMeasurement) {
  enclave::AttestationService authority(*rng_);
  enclave::Enclave evil("evil-proxy-code", *rng_);
  authority.register_platform(evil);
  const Status s = attest_and_provision(
      evil, authority, enclave::Measurement::of_code(kUaCodeIdentity),
      keys_->ua, *rng_);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(evil.provisioned());  // secrets never left the client
}

TEST_F(KeysTest, ProvisionRefusedForUnregisteredPlatform) {
  enclave::AttestationService authority(*rng_);
  enclave::Enclave enclave(kUaCodeIdentity, *rng_);  // not registered
  const Status s = attest_and_provision(
      enclave, authority, enclave::Measurement::of_code(kUaCodeIdentity),
      keys_->ua, *rng_);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace pprox
