// HTTP codec round-trips, incremental parsing across arbitrary splits, and
// router dispatch.
#include <gtest/gtest.h>

#include "http/http.hpp"

namespace pprox::http {
namespace {

TEST(HttpMessage, RequestSerializeHasLengthAndCrlf) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/engines/ur/events";
  req.set_header("Content-Type", "application/json");
  req.body = R"({"user":"u"})";
  const std::string wire = req.serialize();
  EXPECT_NE(wire.find("POST /engines/ur/events HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 12\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n"), std::string::npos);
}

TEST(HttpMessage, SetHeaderOverwritesCaseInsensitive) {
  HttpRequest req;
  req.set_header("content-type", "text/plain");
  req.set_header("Content-Type", "application/json");
  ASSERT_NE(req.header("CONTENT-TYPE"), nullptr);
  EXPECT_EQ(*req.header("CONTENT-TYPE"), "application/json");
  EXPECT_EQ(req.headers.size(), 1u);
}

TEST(HttpMessage, StatusReasons) {
  EXPECT_EQ(status_reason(200), "OK");
  EXPECT_EQ(status_reason(404), "Not Found");
  EXPECT_EQ(status_reason(503), "Service Unavailable");
  EXPECT_EQ(status_reason(599), "Unknown");
}

TEST(HttpParser, ParsesSerializedRequest) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/queries?user=u1";
  req.body = "payload";
  HttpParser parser(HttpParser::Mode::kRequest);
  parser.feed(req.serialize());
  const auto parsed = parser.next_request();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->target, "/queries?user=u1");
  EXPECT_EQ(parsed->body, "payload");
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpParser, ParsesSerializedResponse) {
  HttpResponse resp = HttpResponse::json_response(201, R"({"ok":true})");
  HttpParser parser(HttpParser::Mode::kResponse);
  parser.feed(resp.serialize());
  const auto parsed = parser.next_response();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 201);
  EXPECT_EQ(parsed->body, R"({"ok":true})");
  ASSERT_NE(parsed->header("content-type"), nullptr);
  EXPECT_EQ(*parsed->header("content-type"), "application/json");
}

TEST(HttpParser, IncompleteMessageNeedsMoreData) {
  HttpParser parser(HttpParser::Mode::kRequest);
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab");
  EXPECT_FALSE(parser.next_request().has_value());
  parser.feed("cde");
  const auto parsed = parser.next_request();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body, "abcde");
}

class HttpSplitTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HttpSplitTest, ArbitrarySplitPointsReassemble) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/x";
  req.body = "0123456789abcdef";
  const std::string wire = req.serialize();
  const std::size_t split = GetParam() % wire.size();

  HttpParser parser(HttpParser::Mode::kRequest);
  parser.feed(std::string_view(wire).substr(0, split));
  (void)parser.next_request();
  parser.feed(std::string_view(wire).substr(split));
  const auto parsed = parser.next_request();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body, "0123456789abcdef");
  EXPECT_FALSE(parser.broken());
}

INSTANTIATE_TEST_SUITE_P(Splits, HttpSplitTest,
                         ::testing::Values(1, 5, 16, 17, 30, 40, 50, 57, 58, 59,
                                           60, 70));

TEST(HttpParser, PipelinedRequests) {
  HttpRequest a;
  a.target = "/a";
  HttpRequest b;
  b.target = "/b";
  b.body = "body-b";
  HttpParser parser(HttpParser::Mode::kRequest);
  parser.feed(a.serialize() + b.serialize());
  const auto first = parser.next_request();
  const auto second = parser.next_request();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->target, "/a");
  EXPECT_EQ(second->target, "/b");
  EXPECT_EQ(second->body, "body-b");
  EXPECT_FALSE(parser.next_request().has_value());
}

TEST(HttpParser, MalformedStartLineBreaksStream) {
  HttpParser parser(HttpParser::Mode::kRequest);
  parser.feed("NOT-HTTP\r\nFoo: bar\r\n\r\n");
  EXPECT_FALSE(parser.next_request().has_value());
  EXPECT_TRUE(parser.broken());
}

TEST(HttpParser, MalformedHeaderBreaksStream) {
  HttpParser parser(HttpParser::Mode::kRequest);
  parser.feed("GET / HTTP/1.1\r\nbad header line\r\n\r\n");
  EXPECT_FALSE(parser.next_request().has_value());
  EXPECT_TRUE(parser.broken());
}

TEST(HttpParser, BadContentLengthBreaksStream) {
  HttpParser parser(HttpParser::Mode::kRequest);
  parser.feed("GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
  EXPECT_FALSE(parser.next_request().has_value());
  EXPECT_TRUE(parser.broken());
}

TEST(HttpParser, OversizedHeadersBreakStream) {
  HttpParser parser(HttpParser::Mode::kRequest);
  parser.feed("GET / HTTP/1.1\r\nX: " + std::string(70 * 1024, 'a'));
  EXPECT_FALSE(parser.next_request().has_value());
  EXPECT_TRUE(parser.broken());
}

TEST(HttpParser, ResponseStatusOutOfRangeBreaks) {
  HttpParser parser(HttpParser::Mode::kResponse);
  parser.feed("HTTP/1.1 999 Whatever\r\n\r\n");
  EXPECT_FALSE(parser.next_response().has_value());
  EXPECT_TRUE(parser.broken());
}

TEST(Router, ExactAndWildcardDispatch) {
  Router router;
  router.add("POST", "/engines/*/events",
             [](const HttpRequest&) { return HttpResponse::json_response(201, "{}"); });
  router.add("GET", "/health",
             [](const HttpRequest&) { return HttpResponse::json_response(200, "ok"); });

  HttpRequest post;
  post.method = "POST";
  post.target = "/engines/ur/events";
  EXPECT_EQ(router.dispatch(post).status, 201);

  HttpRequest health;
  health.method = "GET";
  health.target = "/health?verbose=1";  // query string ignored
  EXPECT_EQ(router.dispatch(health).status, 200);
}

TEST(Router, NotFoundAndMethodNotAllowed) {
  Router router;
  router.add("GET", "/a", [](const HttpRequest&) {
    return HttpResponse::json_response(200, "{}");
  });
  HttpRequest missing;
  missing.target = "/b";
  EXPECT_EQ(router.dispatch(missing).status, 404);
  HttpRequest wrong_method;
  wrong_method.method = "POST";
  wrong_method.target = "/a";
  EXPECT_EQ(router.dispatch(wrong_method).status, 405);
}

TEST(Router, PatternMatching) {
  EXPECT_TRUE(Router::pattern_matches("/a/*/c", "/a/b/c"));
  EXPECT_FALSE(Router::pattern_matches("/a/*/c", "/a/b/d"));
  EXPECT_FALSE(Router::pattern_matches("/a/*/c", "/a/b/c/d"));
  EXPECT_FALSE(Router::pattern_matches("/a/*", "/a/"));  // '*' needs nonempty
  EXPECT_TRUE(Router::pattern_matches("/a", "/a"));
  EXPECT_FALSE(Router::pattern_matches("/a", "/a/b"));
  EXPECT_FALSE(Router::pattern_matches("/a/b", "/a"));
}

TEST(Router, FirstMatchWins) {
  Router router;
  router.add("GET", "/x/*", [](const HttpRequest&) {
    return HttpResponse::json_response(200, "wild");
  });
  router.add("GET", "/x/y", [](const HttpRequest&) {
    return HttpResponse::json_response(200, "exact");
  });
  HttpRequest req;
  req.target = "/x/y";
  EXPECT_EQ(router.dispatch(req).body, "wild");
}

}  // namespace
}  // namespace pprox::http
