// Unit and property tests for the common substrate: byte helpers, hex/base64
// codecs, PRNG streams, and shuffling.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/bytes.hpp"
#include "common/encoding.hpp"
#include "common/rand.hpp"
#include "common/result.hpp"
#include "crypto/ct.hpp"

namespace pprox {
namespace {

TEST(Bytes, ToBytesRoundTrip) {
  const std::string s = "hello \x01\x02 world";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, ConcatJoinsAllViews) {
  const Bytes a = to_bytes("ab");
  const Bytes b = to_bytes("cd");
  const Bytes c = to_bytes("e");
  EXPECT_EQ(to_string(concat(a, b, c)), "abcde");
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = to_bytes("secret");
  const Bytes b = to_bytes("secret");
  const Bytes c = to_bytes("secreT");
  const Bytes d = to_bytes("secre");
  EXPECT_TRUE(crypto::ct_equal(a, b));
  EXPECT_FALSE(crypto::ct_equal(a, c));
  EXPECT_FALSE(crypto::ct_equal(a, d));
}

TEST(Bytes, ConstantTimeIsZero) {
  const Bytes zeros(16, 0);
  Bytes tail = zeros;
  tail.back() = 1;
  Bytes head = zeros;
  head.front() = 1;
  EXPECT_TRUE(crypto::ct_is_zero(zeros));
  EXPECT_TRUE(crypto::ct_is_zero(ByteView{}));
  EXPECT_FALSE(crypto::ct_is_zero(tail));
  EXPECT_FALSE(crypto::ct_is_zero(head));
}

TEST(Bytes, ConstantTimeSelectAndMask) {
  EXPECT_EQ(crypto::ct_select_u8(1, 0xAA, 0x55), 0xAA);
  EXPECT_EQ(crypto::ct_select_u8(0, 0xAA, 0x55), 0x55);
  EXPECT_EQ(crypto::ct_mask_u8(1), 0xFF);
  EXPECT_EQ(crypto::ct_mask_u8(0), 0x00);
}

TEST(Bytes, XorIntoIsInvolution) {
  Bytes data = to_bytes("some payload bytes");
  const Bytes original = data;
  const Bytes mask = to_bytes("maskmaskmaskmaskma");
  xor_into(data, mask);
  EXPECT_NE(data, original);
  xor_into(data, mask);
  EXPECT_EQ(data, original);
}

TEST(Bytes, SecureWipeZeroes) {
  Bytes key = to_bytes("super secret key");
  secure_wipe(key);
  for (auto b : key) EXPECT_EQ(b, 0);
}

TEST(Hex, EncodeDecodeRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(hex_encode(data), "0001abff10");
  const auto back = hex_decode("0001abff10");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, DecodeAcceptsUppercase) {
  const auto v = hex_decode("ABCDEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(hex_encode(*v), "abcdef");
}

TEST(Hex, DecodeRejectsMalformed) {
  EXPECT_FALSE(hex_decode("abc").has_value());   // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());    // bad digit
  EXPECT_FALSE(hex_decode("0g").has_value());
}

TEST(Base64, KnownVectorsRfc4648) {
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeKnownVectors) {
  const auto v = base64_decode("Zm9vYmFy");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "foobar");
  const auto w = base64_decode("Zg==");
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(to_string(*w), "f");
}

TEST(Base64, DecodeRejectsMalformed) {
  EXPECT_FALSE(base64_decode("Zg=").has_value());     // bad length
  EXPECT_FALSE(base64_decode("Z===").has_value());    // pad too early
  EXPECT_FALSE(base64_decode("Zg=a").has_value());    // data after pad
  EXPECT_FALSE(base64_decode("Zm!v").has_value());    // bad character
  EXPECT_FALSE(base64_decode("=AAA").has_value());    // pad at front
}

class Base64RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base64RoundTrip, EncodeDecodeIdentity) {
  SplitMix64 rng(GetParam() * 7919 + 1);
  Bytes data(GetParam());
  rng.fill(data);
  const auto decoded = base64_decode(base64_encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Base64RoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 15, 16, 17, 63, 64,
                                           255, 256, 1000, 4096));

TEST(Rand, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rand, NextBelowStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rand, NextBelowCoversRange) {
  SplitMix64 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rand, NextDoubleInUnitInterval) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rand, ShuffleIsPermutation) {
  SplitMix64 rng(5);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  shuffle(shuffled, rng);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

TEST(Rand, ShuffleMovesEveryPositionEventually) {
  // Over many shuffles, element 0 should land in every slot: a sanity check
  // that the shuffle is not biased toward fixed points.
  SplitMix64 rng(9);
  std::set<std::size_t> positions;
  for (int round = 0; round < 200; ++round) {
    std::vector<int> v(10);
    std::iota(v.begin(), v.end(), 0);
    shuffle(v, rng);
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] == 0) positions.insert(i);
    }
  }
  EXPECT_EQ(positions.size(), 10u);
}

TEST(Result, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(0), 7);

  Result<int> bad(Error::parse("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Error::Code::kParseError);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW(bad.value(), std::runtime_error);
}

TEST(Result, StatusDefaultsToOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status e(Error::denied("no"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error().code, Error::Code::kPermissionDenied);
}

TEST(Result, ErrorCodeNames) {
  EXPECT_STREQ(to_string(Error::Code::kParseError), "parse_error");
  EXPECT_STREQ(to_string(Error::Code::kCryptoError), "crypto_error");
  EXPECT_STREQ(to_string(Error::Code::kNotFound), "not_found");
}

}  // namespace
}  // namespace pprox
