// Batched enclave transitions (ROADMAP item 3): one ECALL per shuffle flush.
//
// Differential tests pin the batched entry points — UaLogic::transform_batch,
// IaLogic::transform_batch, IaLogic::seal_batch — bit-for-bit against S
// sequential per-request transforms, including per-slot error reporting and
// RNG consumption order. The suite runs on both crypto backends (plain and
// `_noaccel` ctest registrations), so the 8-wide AES kernels and the portable
// reference must agree through the batch path too. A full-deployment test
// then pins Enclave::transition_count() to exactly one transition per flush.
#include <gtest/gtest.h>

#include <future>
#include <span>
#include <string>
#include <vector>

#include "common/encoding.hpp"
#include "crypto/ctr.hpp"
#include "crypto/drbg.hpp"
#include "json/json.hpp"
#include "lrs/harness.hpp"
#include "pprox/batch.hpp"
#include "pprox/client.hpp"
#include "pprox/deployment.hpp"
#include "pprox/logic.hpp"

namespace pprox {
namespace {

using namespace std::chrono_literals;

class BatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new crypto::Drbg(to_bytes("batch-test"));
    keys_ = new ApplicationKeys(ApplicationKeys::generate(*rng_));
    ua_ = new UaLogic(UaLogic::from_secrets(keys_->ua.serialize()).value());
    ia_ = new IaLogic(IaLogic::from_secrets(keys_->ia.serialize()).value());
    client_ = new ClientLibrary(keys_->client_params(), nullptr, rng_);
  }
  static void TearDownTestSuite() {
    delete client_;
    delete ia_;
    delete ua_;
    delete keys_;
    delete rng_;
  }

  /// Deterministic pseudonym as the LRS would store it.
  static std::string pseudonym(const LayerSecrets& layer,
                               const std::string& id) {
    const crypto::DeterministicCipher det(layer.k);
    return base64_encode(det.encrypt(pad_identifier(id).value()));
  }

  /// An LRS get-response body listing `n` pseudonymized items.
  static std::string lrs_items_body(int n, const std::string& prefix) {
    json::JsonValue body{json::JsonObject{}};
    json::JsonArray items;
    for (int i = 0; i < n; ++i) {
      items.emplace_back(
          pseudonym(keys_->ia, prefix + "-" + std::to_string(i)));
    }
    body.set("items", std::move(items));
    return body.dump();
  }

  static crypto::Drbg* rng_;
  static ApplicationKeys* keys_;
  static UaLogic* ua_;
  static IaLogic* ia_;
  static ClientLibrary* client_;
};

crypto::Drbg* BatchTest::rng_ = nullptr;
ApplicationKeys* BatchTest::keys_ = nullptr;
UaLogic* BatchTest::ua_ = nullptr;
IaLogic* BatchTest::ia_ = nullptr;
ClientLibrary* BatchTest::client_ = nullptr;

TEST_F(BatchTest, KeystreamMatchesZeroPlaintextEncryption) {
  // The batched paths XOR a cached zero-IV keystream instead of calling
  // encrypt/decrypt per message; the two must be the same bytes.
  const crypto::DeterministicCipher det(keys_->ua.k);
  Bytes ks(kIdBlockSize, 0xAA);
  det.keystream(MutByteView(ks.data(), ks.size()));
  EXPECT_EQ(ks, det.encrypt(Bytes(kIdBlockSize, 0)));
}

TEST_F(BatchTest, UaBatchMatchesSequentialBitForBit) {
  // Mixed batch: posts, gets, and two malformed bodies in the middle.
  std::vector<std::string> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(client_
                         ->build_post_request("user-" + std::to_string(i),
                                              "item-" + std::to_string(i))
                         .value()
                         .body);
  }
  inputs.push_back("{}");                          // no user field
  inputs.push_back(R"({"user":"not-base64!!!"})");  // undecodable field
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(
        client_->build_get_request("getter-" + std::to_string(i))
            .value()
            .request.body);
  }

  // Reference: S sequential single-request ecall bodies.
  std::vector<Result<std::string>> sequential;
  sequential.reserve(inputs.size());
  for (const auto& body : inputs) {
    sequential.push_back(ua_->transform_request(body));
  }

  // Batched: one transform_batch over copies of the same inputs.
  std::vector<std::string> bodies = inputs;
  std::vector<UaBatchSlot> slots;
  slots.reserve(bodies.size());
  for (auto& body : bodies) {
    slots.push_back({ua_, &body, {}, {}});
  }
  BatchArena arena(bodies.size() * kIdBlockSize + kIdBlockSize);
  UaLogic::transform_batch(std::span<UaBatchSlot>(slots), arena);

  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (sequential[i].ok()) {
      ASSERT_TRUE(slots[i].status.ok()) << "slot " << i;
      EXPECT_EQ(bodies[i], sequential[i].value()) << "slot " << i;
    } else {
      ASSERT_FALSE(slots[i].status.ok()) << "slot " << i;
      EXPECT_EQ(slots[i].status.error().message,
                sequential[i].error().message)
          << "slot " << i;
      EXPECT_EQ(bodies[i], inputs[i]) << "failed slot must not mutate body";
    }
  }

  // The arena is reusable: the same batch after wipe_and_reset produces the
  // same bytes again (per-proxy scratch is recycled across flushes).
  arena.wipe_and_reset();
  std::vector<std::string> again = inputs;
  std::vector<UaBatchSlot> slots2;
  for (auto& body : again) {
    slots2.push_back({ua_, &body, {}, {}});
  }
  UaLogic::transform_batch(std::span<UaBatchSlot>(slots2), arena);
  EXPECT_EQ(again, bodies);
}

TEST_F(BatchTest, UaBatchEmptyAndSingleSlot) {
  BatchArena arena(kIdBlockSize * 2);
  UaLogic::transform_batch({}, arena);  // no slots: no work, no crash

  std::string body = client_->build_post_request("solo", "item").value().body;
  const auto expected = ua_->transform_request(body);
  std::vector<UaBatchSlot> slots{{ua_, &body, {}, {}}};
  UaLogic::transform_batch(std::span<UaBatchSlot>(slots), arena);
  ASSERT_TRUE(slots[0].status.ok());
  EXPECT_EQ(body, expected.value());
}

TEST_F(BatchTest, IaRequestBatchMatchesSequentialBitForBit) {
  // Posts (both pseudonymization modes), gets, and a malformed body.
  struct Case {
    std::string body;
    bool is_get;
    bool pseudonymize;
  };
  std::vector<Case> cases;
  for (int i = 0; i < 2; ++i) {
    cases.push_back({client_
                         ->build_post_request("u" + std::to_string(i),
                                              "i" + std::to_string(i))
                         .value()
                         .body,
                     false, true});
  }
  cases.push_back(
      {client_->build_post_request("u-opt", "i-opt").value().body, false,
       false});  // §6.3 opt-out slot mixed into the batch
  cases.push_back({"{}", false, true});  // malformed post
  std::vector<Bytes> expected_k_u;
  for (int i = 0; i < 3; ++i) {
    auto call = client_->build_get_request("g" + std::to_string(i));
    expected_k_u.push_back(call.value().k_u);
    cases.push_back({call.value().request.body, true, true});
  }

  // Reference: sequential transforms.
  std::vector<Result<std::string>> seq_bodies;
  std::vector<Bytes> seq_k_u(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (cases[i].is_get) {
      auto r = ia_->transform_get_request(cases[i].body);
      if (r.ok()) {
        seq_k_u[i] = r.value().k_u;
        seq_bodies.emplace_back(std::move(r.value().body));
      } else {
        seq_bodies.emplace_back(r.error());
      }
    } else {
      seq_bodies.push_back(
          ia_->transform_post_request(cases[i].body, cases[i].pseudonymize));
    }
  }

  // Batched: one transform_batch over the same inputs.
  std::vector<std::string> bodies;
  for (const auto& c : cases) bodies.push_back(c.body);
  std::vector<IaRequestSlot> slots;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    slots.push_back(
        {ia_, &bodies[i], cases[i].is_get, cases[i].pseudonymize, {}, {}});
  }
  BatchArena arena(4096);
  IaLogic::transform_batch(std::span<IaRequestSlot>(slots), arena);

  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (seq_bodies[i].ok()) {
      ASSERT_TRUE(slots[i].status.ok()) << "slot " << i;
      EXPECT_EQ(bodies[i], seq_bodies[i].value()) << "slot " << i;
      EXPECT_EQ(slots[i].k_u, seq_k_u[i]) << "slot " << i;
    } else {
      ASSERT_FALSE(slots[i].status.ok()) << "slot " << i;
      EXPECT_EQ(slots[i].status.error().message,
                seq_bodies[i].error().message)
          << "slot " << i;
    }
  }
  // Recovered keys match what the client generated.
  EXPECT_EQ(slots[4].k_u, expected_k_u[0]);
  EXPECT_EQ(slots[5].k_u, expected_k_u[1]);
  EXPECT_EQ(slots[6].k_u, expected_k_u[2]);
}

TEST_F(BatchTest, SealBatchMatchesSequentialBitForBit) {
  for (const bool authenticated : {false, true}) {
    SCOPED_TRACE(authenticated ? "gcm" : "ctr");
    // Responses of different lengths (1, 20 = already full, 3 items), one
    // malformed body in the middle, plus an empty list (unknown user).
    std::vector<std::string> lrs_bodies;
    std::vector<Bytes> keys;
    std::vector<int> item_counts{1, 20, 3, 0};
    for (std::size_t i = 0; i < item_counts.size(); ++i) {
      lrs_bodies.push_back(lrs_items_body(
          item_counts[i], "m" + std::to_string(i)));
      keys.push_back(
          client_->build_get_request("s" + std::to_string(i)).value().k_u);
    }
    // Malformed slot: framing error, consumes no randomness on either path.
    lrs_bodies.insert(lrs_bodies.begin() + 2, R"({"items":"nope"})");
    keys.insert(keys.begin() + 2, Bytes(32, 7));

    // Reference: sequential seals against a deterministic source.
    crypto::Drbg seq_rng(to_bytes("seal-differential"));
    std::vector<Result<std::string>> sequential;
    for (std::size_t i = 0; i < lrs_bodies.size(); ++i) {
      sequential.push_back(ia_->transform_get_response(
          lrs_bodies[i], ByteView(keys[i]), seq_rng, authenticated));
    }

    // Batched: one seal_batch against an equally-seeded source. Bit-for-bit
    // equality requires rng draws in slot order, successful slots only.
    crypto::Drbg batch_rng(to_bytes("seal-differential"));
    std::vector<IaSealSlot> slots;
    for (std::size_t i = 0; i < lrs_bodies.size(); ++i) {
      IaSealSlot slot;
      slot.logic = ia_;
      slot.lrs_body = &lrs_bodies[i];
      slot.k_u = ByteView(keys[i]);
      slot.authenticated = authenticated;
      slots.push_back(std::move(slot));
    }
    BatchArena arena(64 * kIdBlockSize);
    IaLogic::seal_batch(std::span<IaSealSlot>(slots), batch_rng, arena);

    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (sequential[i].ok()) {
        ASSERT_TRUE(slots[i].status.ok()) << "slot " << i;
        EXPECT_EQ(slots[i].sealed, sequential[i].value()) << "slot " << i;
      } else {
        ASSERT_FALSE(slots[i].status.ok()) << "slot " << i;
        EXPECT_EQ(slots[i].status.error().message,
                  sequential[i].error().message)
            << "slot " << i;
      }
    }

    // Sanity: the batched ciphertext decrypts to the original plaintext ids.
    const http::HttpResponse resp =
        http::HttpResponse::json_response(200, slots[0].sealed);
    const auto decoded =
        ClientLibrary::decode_get_response(resp, keys[0]);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), (std::vector<std::string>{"m0-0"}));
  }
}

TEST_F(BatchTest, ArenaOverflowKeepsEarlierViewsValid) {
  // A batch larger than the reservation must still be correct: overflow
  // allocations come from fresh chunks, never invalidating staged blocks.
  std::vector<std::string> inputs;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(
        client_->build_post_request("ov-" + std::to_string(i), "x")
            .value()
            .body);
  }
  std::vector<Result<std::string>> sequential;
  for (const auto& body : inputs) {
    sequential.push_back(ua_->transform_request(body));
  }
  std::vector<std::string> bodies = inputs;
  std::vector<UaBatchSlot> slots;
  for (auto& body : bodies) slots.push_back({ua_, &body, {}, {}});
  BatchArena tiny(kIdBlockSize);  // room for one block; rest overflows
  UaLogic::transform_batch(std::span<UaBatchSlot>(slots), tiny);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    ASSERT_TRUE(slots[i].status.ok()) << "slot " << i;
    EXPECT_EQ(bodies[i], sequential[i].value()) << "slot " << i;
  }
  tiny.wipe_and_reset();
  EXPECT_EQ(tiny.used(), 0u);
}

TEST(BatchTransitions, ExactlyOneEcallPerFlush) {
  crypto::Drbg rng(to_bytes("batch-transitions"));
  lrs::HarnessServer lrs;
  DeploymentConfig config;
  config.shuffle_size = 4;
  config.shuffle_timeout = 10s;  // size-triggered flushes only
  Deployment deployment(config, lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);

  const enclave::Enclave& ua = deployment.ua_proxy(0).hosted_enclave();
  const enclave::Enclave& ia = deployment.ia_proxy(0).hosted_enclave();
  const std::uint64_t ua0 = ua.transition_count();
  const std::uint64_t ia0 = ia.transition_count();

  // One buffer's worth of posts: exactly one UA request flush and one IA
  // request flush. Post responses traverse the IA response shuffle as
  // passthrough items — no seal, so no third ecall.
  std::vector<std::promise<Status>> post_done(4);
  std::vector<std::future<Status>> post_futures;
  for (std::size_t i = 0; i < post_done.size(); ++i) {
    post_futures.push_back(post_done[i].get_future());
    std::promise<Status>* p = &post_done[i];
    client.post("user-" + std::to_string(i), "item-" + std::to_string(i),
                [p](Status s) { p->set_value(std::move(s)); });
  }
  for (auto& f : post_futures) {
    ASSERT_TRUE(f.get().ok());
  }
  EXPECT_EQ(ua.transition_count() - ua0, 1u);
  EXPECT_EQ(ia.transition_count() - ia0, 1u);

  // One buffer's worth of gets: one UA request flush, one IA request flush,
  // and one IA seal flush for the four LRS responses — 1 and 2 transitions.
  const std::uint64_t ua1 = ua.transition_count();
  const std::uint64_t ia1 = ia.transition_count();
  using GetResult = Result<std::vector<std::string>>;
  std::vector<std::promise<GetResult>> get_done(4);
  std::vector<std::future<GetResult>> get_futures;
  for (std::size_t i = 0; i < get_done.size(); ++i) {
    get_futures.push_back(get_done[i].get_future());
    std::promise<GetResult>* p = &get_done[i];
    client.get("user-" + std::to_string(i),
               [p](GetResult r) { p->set_value(std::move(r)); });
  }
  for (auto& f : get_futures) {
    ASSERT_TRUE(f.get().ok());
  }
  EXPECT_EQ(ua.transition_count() - ua1, 1u);
  EXPECT_EQ(ia.transition_count() - ia1, 2u);
}

}  // namespace
}  // namespace pprox
