// Breach response: performance-based attack detection and key rotation with
// LRS database re-encryption (paper §3 footnote 1).
#include <gtest/gtest.h>

#include "attack/adversary.hpp"
#include "crypto/drbg.hpp"
#include "pprox/deployment.hpp"
#include "pprox/rotation.hpp"

namespace pprox {
namespace {

TEST(BreachMonitor, NoAlarmOnStableLatency) {
  BreachMonitor monitor(2.0, 16, 8);
  for (int i = 0; i < 100; ++i) monitor.record("ua-0", 1.0 + 0.05 * (i % 3));
  EXPECT_FALSE(monitor.attack_suspected("ua-0"));
  EXPECT_NEAR(monitor.baseline_ms("ua-0"), 1.05, 0.1);
}

TEST(BreachMonitor, AlarmsOnSideChannelDegradation) {
  BreachMonitor monitor(2.0, 16, 8);
  for (int i = 0; i < 16; ++i) monitor.record("ua-0", 1.0);
  EXPECT_FALSE(monitor.attack_suspected("ua-0"));
  // A cache-priming attack makes every ecall several times slower
  // (paper §2.3: "making enclave performance drop significantly").
  for (int i = 0; i < 8; ++i) monitor.record("ua-0", 5.0);
  EXPECT_TRUE(monitor.attack_suspected("ua-0"));
}

TEST(BreachMonitor, NeedsBaselineBeforeAlarming) {
  BreachMonitor monitor(2.0, 16, 8);
  for (int i = 0; i < 10; ++i) monitor.record("ua-0", 100.0);  // no baseline yet
  EXPECT_FALSE(monitor.attack_suspected("ua-0"));
  EXPECT_EQ(monitor.baseline_ms("ua-0"), 0);
}

TEST(BreachMonitor, NeedsFullRecentWindow) {
  BreachMonitor monitor(2.0, 16, 8);
  for (int i = 0; i < 16; ++i) monitor.record("ua-0", 1.0);
  for (int i = 0; i < 3; ++i) monitor.record("ua-0", 50.0);  // window not full
  EXPECT_FALSE(monitor.attack_suspected("ua-0"));
}

TEST(BreachMonitor, TracksEnclavesIndependently) {
  BreachMonitor monitor(2.0, 4, 4);
  for (int i = 0; i < 4; ++i) {
    monitor.record("ua-0", 1.0);
    monitor.record("ia-0", 1.0);
  }
  for (int i = 0; i < 4; ++i) monitor.record("ia-0", 10.0);
  EXPECT_FALSE(monitor.attack_suspected("ua-0"));
  EXPECT_TRUE(monitor.attack_suspected("ia-0"));
  EXPECT_FALSE(monitor.attack_suspected("unknown"));
}

TEST(BreachMonitor, RecoversWhenAttackStops) {
  BreachMonitor monitor(2.0, 8, 4);
  for (int i = 0; i < 8; ++i) monitor.record("e", 1.0);
  for (int i = 0; i < 4; ++i) monitor.record("e", 10.0);
  EXPECT_TRUE(monitor.attack_suspected("e"));
  for (int i = 0; i < 4; ++i) monitor.record("e", 1.0);  // window refills
  EXPECT_FALSE(monitor.attack_suspected("e"));
}

class RotationTest : public ::testing::Test {
 protected:
  RotationTest()
      : rng_(to_bytes("rotation-test")),
        deployment_(DeploymentConfig{}, lrs_, rng_),
        client_(deployment_.make_client(&rng_)) {
    for (const auto& [u, i, p] :
         std::vector<std::tuple<std::string, std::string, std::string>>{
             {"u1", "A", "5"}, {"u1", "B", ""}, {"u2", "A", "4"},
             {"u2", "B", ""}, {"u3", "C", "1"}, {"probe", "A", ""}}) {
      EXPECT_TRUE(client_.post_sync(u, i, p).ok());
    }
    lrs_.train();
  }

  crypto::Drbg rng_;
  lrs::HarnessServer lrs_;
  Deployment deployment_;
  ClientLibrary client_;
};

TEST_F(RotationTest, RotationPreservesDataAndPayloads) {
  const auto before = lrs_.dump_event_rows();
  const auto rotation = rotate_keys(deployment_.application_keys(), lrs_, rng_);
  ASSERT_TRUE(rotation.ok());
  EXPECT_EQ(rotation.value().rows_reencrypted, before.size());
  const auto after = lrs_.dump_event_rows();
  ASSERT_EQ(after.size(), before.size());
  // Payload survives; pseudonyms all changed.
  std::multiset<std::string> payloads_before, payloads_after;
  std::set<std::string> users_before, users_after;
  for (const auto& row : before) {
    payloads_before.insert(row.payload);
    users_before.insert(row.user);
  }
  for (const auto& row : after) {
    payloads_after.insert(row.payload);
    users_after.insert(row.item.empty() ? "" : row.user);
  }
  EXPECT_EQ(payloads_before, payloads_after);
  for (const auto& u : users_after) EXPECT_EQ(users_before.count(u), 0u);
}

TEST_F(RotationTest, OldSecretsUselessAfterRotation) {
  // The adversary fully looted both layers (worst case) BEFORE rotation.
  attack::Adversary adversary;
  adversary.steal_ua_secrets(deployment_.application_keys().ua);
  adversary.steal_ia_secrets(deployment_.application_keys().ia);

  const auto rotation = rotate_keys(deployment_.application_keys(), lrs_, rng_);
  ASSERT_TRUE(rotation.ok());

  // Old keys against the rotated database: every row now decrypts to junk
  // (unpad fails or yields a non-identifier), so linking fails everywhere.
  for (const auto& [u, i] : lrs_.dump_events()) {
    const attack::LrsDbRow row{u, i};
    const auto user = adversary.de_pseudonymize_user(row);
    if (user.ok()) {
      EXPECT_EQ(user.value().find("u"), std::string::npos)
          << "old key recovered a plausible id: " << user.value();
    }
    EXPECT_FALSE(adversary.can_link("u1", "A", {row}, {}));
  }
}

TEST_F(RotationTest, FreshDeploymentServesIdenticalRecommendationsAfterRotation) {
  const auto before = client_.get_sync("probe");
  ASSERT_TRUE(before.ok());

  const auto rotation = rotate_keys(deployment_.application_keys(), lrs_, rng_);
  ASSERT_TRUE(rotation.ok());
  lrs_.train();  // pseudonym space changed: retrain

  // Fresh enclaves provisioned with the new secrets; clients get new params.
  // (Deployment generates its own keys, so provision enclaves by hand.)
  enclave::AttestationService authority(rng_);
  enclave::Enclave ua(kUaCodeIdentity, rng_);
  enclave::Enclave ia(kIaCodeIdentity, rng_);
  authority.register_platform(ua);
  authority.register_platform(ia);
  ASSERT_TRUE(attest_and_provision(ua, authority,
                                   enclave::Measurement::of_code(kUaCodeIdentity),
                                   rotation.value().new_keys.ua, rng_)
                  .ok());
  ASSERT_TRUE(attest_and_provision(ia, authority,
                                   enclave::Measurement::of_code(kIaCodeIdentity),
                                   rotation.value().new_keys.ia, rng_)
                  .ok());
  ProxyOptions ia_options;
  ia_options.layer = ProxyOptions::Layer::kIa;
  ProxyServer ia_proxy(ia_options, ia,
                       std::make_shared<net::InProcChannel>(lrs_));
  ProxyOptions ua_options;
  ProxyServer ua_proxy(ua_options, ua,
                       std::make_shared<net::InProcChannel>(ia_proxy));
  ClientLibrary new_client(rotation.value().new_keys.client_params(),
                           std::make_shared<net::InProcChannel>(ua_proxy),
                           &rng_);

  const auto after = new_client.get_sync("probe");
  ASSERT_TRUE(after.ok()) << after.error().message;
  EXPECT_EQ(after.value(), before.value());
}

TEST_F(RotationTest, DeploymentRotateIsOneCall) {
  const auto before = client_.get_sync("probe");
  ASSERT_TRUE(before.ok());
  const auto old_keys = deployment_.application_keys();

  ASSERT_TRUE(deployment_.rotate(lrs_, rng_).ok());
  EXPECT_EQ(deployment_.key_epoch(), 1u);
  lrs_.train();

  // Keys actually changed; old client params are stale.
  EXPECT_NE(deployment_.application_keys().ua.k, old_keys.ua.k);
  EXPECT_FALSE(client_.post_sync("probe", "whatever").ok());

  // A fresh client works and sees the same recommendations as before.
  ClientLibrary fresh = deployment_.make_client(&rng_);
  ASSERT_TRUE(fresh.post_sync("newbie", "A").ok());
  const auto after = fresh.get_sync("probe");
  ASSERT_TRUE(after.ok()) << after.error().message;
  EXPECT_EQ(after.value(), before.value());

  // Rotations stack.
  ASSERT_TRUE(deployment_.rotate(lrs_, rng_).ok());
  EXPECT_EQ(deployment_.key_epoch(), 2u);
  lrs_.train();
  ClientLibrary fresher = deployment_.make_client(&rng_);
  EXPECT_TRUE(fresher.get_sync("probe").ok());
}

TEST_F(RotationTest, StaleChannelFailsClosedAfterRotation) {
  // Regression pin for the InProcChannel weak_ptr fix: a channel grabbed
  // before rotate() must not deliver to the rotated-out proxy (rotate frees
  // it) — the channel's weak reference expires instead, the completion gets
  // a synchronous 503 "backend gone", and there is no freed-proxy touch for
  // ASan to report. Before the fix this was a use-after-free; today the
  // behaviour is only covered incidentally via post_sync failing.
  const std::shared_ptr<net::HttpChannel> stale = deployment_.entry_channel();

  ASSERT_TRUE(deployment_.rotate(lrs_, rng_).ok());
  lrs_.train();

  int completions = 0;
  http::HttpResponse seen;
  http::HttpRequest request;
  request.method = "POST";
  request.target = "/recommend";
  request.body = "probe";
  stale->send(std::move(request), [&](http::HttpResponse response) {
    ++completions;
    seen = std::move(response);
  });
  // InProcChannel fails closed synchronously: exactly one completion, and
  // the error names the dead backend rather than echoing proxy output.
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(seen.status, 503);
  EXPECT_NE(seen.body.find("backend gone"), std::string::npos) << seen.body;

  // Sends through the stale channel never resurrect the old stack: repeat
  // sends keep failing closed while a fresh client is fully live.
  http::HttpRequest again;
  stale->send(std::move(again), [&](http::HttpResponse response) {
    ++completions;
    EXPECT_EQ(response.status, 503);
  });
  EXPECT_EQ(completions, 2);
  ClientLibrary fresh = deployment_.make_client(&rng_);
  EXPECT_TRUE(fresh.get_sync("probe").ok());
}

TEST(Rotation, RefusesCorruptDatabaseUntouched) {
  crypto::Drbg rng(to_bytes("rot-corrupt"));
  lrs::HarnessServer lrs;
  lrs.post_event("not-a-pseudonym", "also-not", "");
  const ApplicationKeys keys = ApplicationKeys::generate(rng);
  const auto rotation = rotate_keys(keys, lrs, rng);
  EXPECT_FALSE(rotation.ok());
  // The store was not half-rotated.
  EXPECT_EQ(lrs.dump_event_rows()[0].user, "not-a-pseudonym");
}

}  // namespace
}  // namespace pprox
