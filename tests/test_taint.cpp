// PPROX-LAYER: tooling
//
// The taint-domain layer (common/taint.hpp + the typed helpers threaded
// through the pipeline): zero-overhead guarantees, compile-time domain
// separation, bit-for-bit agreement between the typed transforms and the
// untyped wire functions they wrap, and the end-to-end property the types
// exist for — an adversary without layer secrets still links nothing when
// the pipeline runs through the typed entry points.
#include <gtest/gtest.h>

#include <type_traits>

#include "attack/adversary.hpp"
#include "common/encoding.hpp"
#include "crypto/ctr.hpp"
#include "crypto/drbg.hpp"
#include "json/json.hpp"
#include "lrs/harness.hpp"
#include "pprox/client.hpp"
#include "pprox/logic.hpp"

namespace pprox {
namespace {

using taint::ItemDomain;
using taint::PseudonymDomain;
using taint::Sensitive;
using taint::UserDomain;

// ---------------------------------------------------------------------------
// Compile-time contract. Every assertion here is part of the security
// argument: if one of these starts failing, the type system has stopped
// enforcing the corresponding flow rule.
// ---------------------------------------------------------------------------

// Zero overhead: the wrapper adds no bytes and keeps the payload's layout
// properties, for the concrete instantiations the pipeline uses.
static_assert(sizeof(UserId) == sizeof(std::string));
static_assert(sizeof(ItemId) == sizeof(std::string));
static_assert(sizeof(SensitiveBlock<ItemDomain>) == sizeof(Bytes));
static_assert(std::is_trivially_copyable_v<Sensitive<int, UserDomain>>);

// No implicit exit: a sensitive value never converts to its raw type.
static_assert(!std::is_convertible_v<UserId, std::string>);
static_assert(!std::is_convertible_v<ItemId, std::string>);
static_assert(!std::is_convertible_v<PseudonymizedId, std::string>);

// No implicit entry either: wrapping is an explicit, visible act.
static_assert(!std::is_convertible_v<std::string, UserId>);
static_assert(std::is_constructible_v<UserId, std::string>);

// No cross-domain flow: user and item values cannot mix, in either
// direction, by construction or assignment.
static_assert(!std::is_constructible_v<UserId, ItemId>);
static_assert(!std::is_constructible_v<ItemId, UserId>);
static_assert(!std::is_constructible_v<lrs::StoredPseudonym, UserId>);
static_assert(!std::is_assignable_v<UserId&, const ItemId&>);
static_assert(!std::is_assignable_v<ItemId&, const UserId&>);

// wire() exists exactly for pseudonyms: reading the protocol's *output*
// needs no declassification, reading its *input* is impossible.
template <typename S>
concept HasWire = requires(const S s) { s.wire(); };
static_assert(HasWire<PseudonymizedId>);
static_assert(HasWire<lrs::StoredPseudonym>);
static_assert(!HasWire<UserId>);
static_assert(!HasWire<ItemId>);

// The §6.3 opt-out declassifier is item-only: user pseudonymization has no
// off switch.
template <typename S>
concept LrsReleasable = requires(S s) { taint::declassify_for_lrs(std::move(s)); };
static_assert(LrsReleasable<ItemId>);
static_assert(!LrsReleasable<UserId>);
static_assert(!LrsReleasable<PseudonymizedId>);

static_assert(taint::is_sensitive_v<UserId>);
static_assert(!taint::is_sensitive_v<std::string>);

// ---------------------------------------------------------------------------
// Combinators and typed message helpers.
// ---------------------------------------------------------------------------

TEST(TaintCombinators, MapPreservesDomain) {
  const ItemId item{std::string("movie-7")};
  const auto length =
      taint::map(item, [](const std::string& s) { return s.size(); });
  static_assert(
      std::is_same_v<std::decay_t<decltype(length)>,
                     Sensitive<std::string::size_type, ItemDomain>>);
  EXPECT_EQ(taint::declassify_for_test(length), 7u);
}

TEST(TaintCombinators, TryMapPropagatesErrorsWithoutTheValue) {
  const UserId oversized{std::string(4096, 'x')};
  const auto block = pad_sensitive_id(oversized);
  ASSERT_FALSE(block.ok());
  // The error path must not leak the protected value.
  EXPECT_EQ(block.error().message.find(std::string(64, 'x')), std::string::npos);
}

TEST(TaintCombinators, SameDomainEqualityOnly) {
  const UserId a{std::string("alice")};
  const UserId b{std::string("alice")};
  const UserId c{std::string("bob")};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TaintMessage, TypedPaddingMatchesUntypedBitForBit) {
  const std::string raw_id = "movie-42";
  const ItemId typed{raw_id};
  const auto typed_block = pad_sensitive_id(typed);
  const auto untyped_block = pad_identifier(raw_id);
  ASSERT_TRUE(typed_block.ok());
  ASSERT_TRUE(untyped_block.ok());
  EXPECT_EQ(taint::declassify_for_test(typed_block.value()),
            untyped_block.value());

  const auto back = unpad_sensitive_id(typed_block.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(taint::declassify_for_test(back.value()), raw_id);
}

TEST(TaintMessage, TypedResponseBlockMatchesUntypedBitForBit) {
  const std::vector<std::string> raw_items = {"movie-1", "movie-2"};
  std::vector<ItemId> typed_items;
  for (const std::string& item : raw_items) typed_items.emplace_back(item);

  const auto typed_block =
      encode_sensitive_response_block(pad_sensitive_recommendations(typed_items));
  const auto untyped_block =
      encode_response_block(pad_recommendations(raw_items));
  ASSERT_TRUE(typed_block.ok());
  ASSERT_TRUE(untyped_block.ok());
  EXPECT_EQ(taint::declassify_for_test(typed_block.value()),
            untyped_block.value());

  const auto decoded = decode_sensitive_response_block<ItemDomain>(
      untyped_block.value());
  ASSERT_TRUE(decoded.ok());
  std::vector<std::string> released;
  for (auto& item : decoded.value()) {
    released.push_back(taint::declassify_for_test(std::move(item)));
  }
  EXPECT_EQ(strip_pad_items(std::move(released)), raw_items);
}

// ---------------------------------------------------------------------------
// Declassification round-trips: the typed pipeline entry points must produce
// byte-identical wire values to the pre-taint formulation (deterministic
// pseudonym = base64(det_enc(pad(id), k_layer))).
// ---------------------------------------------------------------------------

class TaintPipelineTest : public ::testing::Test {
 protected:
  TaintPipelineTest()
      : rng_(to_bytes("taint-test")),
        keys_(ApplicationKeys::generate(rng_)),
        ua_(UaLogic::from_secrets(keys_.ua.serialize()).value()),
        ia_(IaLogic::from_secrets(keys_.ia.serialize()).value()),
        client_(keys_.client_params(), nullptr, &rng_) {}

  /// The untyped ground truth a pre-taint build computed.
  static std::string manual_pseudonym(const LayerSecrets& layer,
                                      const std::string& id) {
    const crypto::DeterministicCipher det(layer.k);
    return base64_encode(det.encrypt(pad_identifier(id).value()));
  }

  crypto::Drbg rng_;
  ApplicationKeys keys_;
  UaLogic ua_;
  IaLogic ia_;
  ClientLibrary client_;
};

TEST_F(TaintPipelineTest, TypedUaPseudonymBitForBit) {
  const auto pseudonym = ua_.pseudonym_of(UserId{std::string("alice")});
  ASSERT_TRUE(pseudonym.ok());
  EXPECT_EQ(pseudonym.value().wire(), manual_pseudonym(keys_.ua, "alice"));
}

TEST_F(TaintPipelineTest, WireTransformsUnchangedByTyping) {
  // Full POST lifecycle: every wire value the typed pipeline emits equals
  // the manual composition of the untyped primitives.
  const auto request = client_.build_post_request("alice", "movie-7");
  ASSERT_TRUE(request.ok());
  const auto after_ua = ua_.transform_request(request.value().body);
  ASSERT_TRUE(after_ua.ok());
  const auto after_ia = ia_.transform_post_request(after_ua.value());
  ASSERT_TRUE(after_ia.ok());
  EXPECT_EQ(*json::get_string_field(after_ia.value(), fields::kUser),
            manual_pseudonym(keys_.ua, "alice"));
  EXPECT_EQ(*json::get_string_field(after_ia.value(), fields::kItem),
            manual_pseudonym(keys_.ia, "movie-7"));
}

TEST_F(TaintPipelineTest, TypedLrsEntryPointsMatchWireOverloads) {
  // Same events through the typed and the string overloads must produce
  // identical LRS state (the typed overloads are a compile-time gate, not a
  // different code path).
  lrs::HarnessServer typed_lrs;
  lrs::HarnessServer untyped_lrs;
  const std::string u = manual_pseudonym(keys_.ua, "alice");
  const std::string i = manual_pseudonym(keys_.ia, "movie-7");
  EXPECT_EQ(typed_lrs
                .post_event(lrs::StoredPseudonym{u}, lrs::StoredPseudonym{i})
                .status,
            untyped_lrs.post_event(u, i).status);
  EXPECT_EQ(typed_lrs.event_count(), untyped_lrs.event_count());
  EXPECT_EQ(typed_lrs.user_history(u), untyped_lrs.user_history(u));
  EXPECT_EQ(typed_lrs.query(lrs::StoredPseudonym{u}).status,
            untyped_lrs.query(u).status);
}

// ---------------------------------------------------------------------------
// The property all of this serves: running the pipeline through the typed
// entry points changes nothing for the adversary — without layer secrets,
// intercepted ciphertexts and the LRS database still link no user to any
// item (§6.1 cases with zero breached layers).
// ---------------------------------------------------------------------------

TEST_F(TaintPipelineTest, AdversaryWithoutSecretsStillLinksNothing) {
  std::vector<attack::InterceptedPost> intercepts;
  std::vector<attack::LrsDbRow> database;
  const std::vector<std::pair<std::string, std::string>> traffic = {
      {"alice", "diabetes-forum"}, {"bob", "political-news"}};
  for (const auto& [user, item] : traffic) {
    auto request = client_.build_post_request(user, item);
    ASSERT_TRUE(request.ok());
    attack::InterceptedPost intercept;
    intercept.user_field =
        *json::get_string_field(request.value().body, fields::kUser);
    intercept.item_field =
        *json::get_string_field(request.value().body, fields::kItem);
    intercepts.push_back(intercept);
    const auto after_ua = ua_.transform_request(request.value().body);
    ASSERT_TRUE(after_ua.ok());
    const auto after_ia = ia_.transform_post_request(after_ua.value());
    ASSERT_TRUE(after_ia.ok());
    database.push_back(
        {*json::get_string_field(after_ia.value(), fields::kUser),
         *json::get_string_field(after_ia.value(), fields::kItem)});
  }

  const attack::Adversary adversary;  // no stolen secrets
  for (const auto& [user, item] : traffic) {
    EXPECT_FALSE(adversary.can_link(user, item, database, intercepts));
  }
  // Sanity: the attack machinery itself still works when fully armed, so
  // the EXPECT_FALSE above is meaningful.
  attack::Adversary armed;
  armed.steal_ua_secrets(keys_.ua);
  armed.steal_ia_secrets(keys_.ia);
  EXPECT_TRUE(armed.can_link("alice", "diabetes-forum", database, intercepts));
}

}  // namespace
}  // namespace pprox
