// AES block cipher (FIPS 197) and CTR mode (NIST SP 800-38A) vectors, plus
// property tests for the deterministic and random-IV wrappers used by PProx.
#include <gtest/gtest.h>

#include "common/encoding.hpp"
#include "crypto/ctr.hpp"
#include "crypto/drbg.hpp"

namespace pprox::crypto {
namespace {

Bytes h(std::string_view hex) { return *hex_decode(hex); }

TEST(Aes, Fips197Aes128) {
  const Aes aes(h("000102030405060708090a0b0c0d0e0f"));
  Bytes block = h("00112233445566778899aabbccddeeff");
  aes.encrypt_block(block.data());
  EXPECT_EQ(hex_encode(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.decrypt_block(block.data());
  EXPECT_EQ(hex_encode(block), "00112233445566778899aabbccddeeff");
}

TEST(Aes, Fips197Aes256) {
  const Aes aes(
      h("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  Bytes block = h("00112233445566778899aabbccddeeff");
  aes.encrypt_block(block.data());
  EXPECT_EQ(hex_encode(block), "8ea2b7ca516745bfeafc49904b496089");
  aes.decrypt_block(block.data());
  EXPECT_EQ(hex_encode(block), "00112233445566778899aabbccddeeff");
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(24)), std::invalid_argument);  // AES-192 unsupported
  EXPECT_THROW(Aes(Bytes(0)), std::invalid_argument);
}

TEST(AesCtr, NistSp80038aCtrAes256) {
  const Aes aes(
      h("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"));
  std::array<std::uint8_t, 16> iv{};
  const Bytes iv_bytes = h("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  std::copy(iv_bytes.begin(), iv_bytes.end(), iv.begin());
  const Bytes plaintext = h(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes expected = h(
      "601ec313775789a5b7a7f504bbf3d228"
      "f443e3ca4d62b59aca84e990cacaf5c5"
      "2b0930daa23de94ce87017ba2d84988d"
      "dfc9c58db67aada613c2dd08457941a6");
  EXPECT_EQ(ctr_crypt(aes, iv, plaintext), expected);
  EXPECT_EQ(ctr_crypt(aes, iv, expected), plaintext);  // involution
}

TEST(AesCtr, CounterCarriesAcrossBytes) {
  // An IV of ...ff ff must wrap into higher bytes rather than repeat the
  // keystream block.
  const Aes aes(Bytes(32, 0x42));
  std::array<std::uint8_t, 16> iv;
  iv.fill(0xFF);
  const Bytes zeros(48, 0);
  const Bytes ks = ctr_crypt(aes, iv, zeros);
  EXPECT_NE(Bytes(ks.begin(), ks.begin() + 16),
            Bytes(ks.begin() + 16, ks.begin() + 32));
  EXPECT_NE(Bytes(ks.begin() + 16, ks.begin() + 32),
            Bytes(ks.begin() + 32, ks.end()));
}

TEST(DeterministicCipher, SameInputSameOutput) {
  const Bytes key(32, 0x11);
  const DeterministicCipher c(key);
  const auto p = to_bytes("user-４２");
  EXPECT_EQ(c.encrypt(p), c.encrypt(p));
  EXPECT_EQ(c.decrypt(c.encrypt(p)), p);
}

TEST(DeterministicCipher, DistinctInputsDistinctOutputs) {
  const DeterministicCipher c(Bytes(32, 0x22));
  EXPECT_NE(c.encrypt(to_bytes("user-1")), c.encrypt(to_bytes("user-2")));
}

TEST(DeterministicCipher, DistinctKeysDistinctOutputs) {
  const DeterministicCipher a(Bytes(32, 0x01));
  const DeterministicCipher b(Bytes(32, 0x02));
  EXPECT_NE(a.encrypt(to_bytes("user-1")), b.encrypt(to_bytes("user-1")));
}

TEST(DeterministicCipher, RequiresAes256Key) {
  EXPECT_THROW(DeterministicCipher(Bytes(16, 0)), std::invalid_argument);
}

class CipherRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CipherRoundTrip, DeterministicRoundTripsAllSizes) {
  Drbg rng(to_bytes("seed-det"));
  const DeterministicCipher c(rng.bytes(32));
  const Bytes plain = rng.bytes(GetParam());
  EXPECT_EQ(c.decrypt(c.encrypt(plain)), plain);
}

TEST_P(CipherRoundTrip, RandomIvRoundTripsAllSizes) {
  Drbg rng(to_bytes("seed-rand"));
  const RandomIvCipher c(rng.bytes(32));
  const Bytes plain = rng.bytes(GetParam());
  const Bytes ct = c.encrypt(plain, rng);
  EXPECT_EQ(ct.size(), plain.size() + 16);  // IV prepended
  const auto back = c.decrypt(ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), plain);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CipherRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 100,
                                           1000, 4096));

TEST(RandomIvCipher, SamePlaintextDifferentCiphertext) {
  Drbg rng(to_bytes("seed-iv"));
  const RandomIvCipher c(rng.bytes(32));
  const auto p = to_bytes("recommendations");
  EXPECT_NE(c.encrypt(p, rng), c.encrypt(p, rng));
}

TEST(RandomIvCipher, RejectsTruncatedCiphertext) {
  const RandomIvCipher c(Bytes(32, 0x33));
  EXPECT_FALSE(c.decrypt(Bytes(15, 0)).ok());
}

TEST(RandomIvCipher, TamperedIvChangesPlaintext) {
  Drbg rng(to_bytes("seed-tamper"));
  const RandomIvCipher c(rng.bytes(32));
  const auto p = to_bytes("0123456789abcdef");
  Bytes ct = c.encrypt(p, rng);
  ct[0] ^= 0x01;  // flip an IV bit
  const auto back = c.decrypt(ct);
  ASSERT_TRUE(back.ok());
  EXPECT_NE(back.value(), p);
}

}  // namespace
}  // namespace pprox::crypto
