// UA/IA enclave logic: the end-to-end message lifecycles of Figures 3 and 4,
// checked transform by transform against the paper's protocol.
#include <gtest/gtest.h>

#include "common/encoding.hpp"
#include "crypto/ctr.hpp"
#include "crypto/drbg.hpp"
#include "json/json.hpp"
#include "pprox/client.hpp"
#include "pprox/logic.hpp"

namespace pprox {
namespace {

class LogicTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new crypto::Drbg(to_bytes("logic-test"));
    keys_ = new ApplicationKeys(ApplicationKeys::generate(*rng_));
    ua_ = new UaLogic(UaLogic::from_secrets(keys_->ua.serialize()).value());
    ia_ = new IaLogic(IaLogic::from_secrets(keys_->ia.serialize()).value());
    client_ = new ClientLibrary(keys_->client_params(), nullptr, rng_);
  }
  static void TearDownTestSuite() {
    delete client_;
    delete ia_;
    delete ua_;
    delete keys_;
    delete rng_;
  }

  /// Deterministic pseudonym as the LRS would store it.
  static std::string pseudonym(const LayerSecrets& layer, const std::string& id) {
    const crypto::DeterministicCipher det(layer.k);
    return base64_encode(det.encrypt(pad_identifier(id).value()));
  }

  static crypto::Drbg* rng_;
  static ApplicationKeys* keys_;
  static UaLogic* ua_;
  static IaLogic* ia_;
  static ClientLibrary* client_;
};

crypto::Drbg* LogicTest::rng_ = nullptr;
ApplicationKeys* LogicTest::keys_ = nullptr;
UaLogic* LogicTest::ua_ = nullptr;
IaLogic* LogicTest::ia_ = nullptr;
ClientLibrary* LogicTest::client_ = nullptr;

TEST_F(LogicTest, PostLifecycleFigure3) {
  // Client: post(u, i) -> post(enc(u,pkUA), enc(i,pkIA)).
  const auto request = client_->build_post_request("alice", "movie-7");
  ASSERT_TRUE(request.ok());
  const std::string& body0 = request.value().body;
  // Neither identifier appears in the clear.
  EXPECT_EQ(body0.find("alice"), std::string::npos);
  EXPECT_EQ(body0.find("movie-7"), std::string::npos);

  // UA: -> post(det_enc(u,kUA), enc(i,pkIA)).
  const auto body1 = ua_->transform_request(body0);
  ASSERT_TRUE(body1.ok());
  EXPECT_EQ(*json::get_string_field(body1.value(), "user"),
            pseudonym(keys_->ua, "alice"));
  // Item ciphertext untouched by UA.
  EXPECT_EQ(*json::get_string_field(body1.value(), "item"),
            *json::get_string_field(body0, "item"));

  // IA: -> post(det_enc(u,kUA), det_enc(i,kIA)).
  const auto body2 = ia_->transform_post_request(body1.value());
  ASSERT_TRUE(body2.ok());
  EXPECT_EQ(*json::get_string_field(body2.value(), "user"),
            pseudonym(keys_->ua, "alice"));
  EXPECT_EQ(*json::get_string_field(body2.value(), "item"),
            pseudonym(keys_->ia, "movie-7"));
  EXPECT_EQ(body2.value().find("alice"), std::string::npos);
  EXPECT_EQ(body2.value().find("movie-7"), std::string::npos);
}

TEST_F(LogicTest, PseudonymsAreStableAcrossRequests) {
  // Two posts by the same user must map to the same LRS pseudonym even
  // though the client-side ciphertexts differ (randomized encryption).
  const auto r1 = client_->build_post_request("bob", "x");
  const auto r2 = client_->build_post_request("bob", "y");
  EXPECT_NE(*json::get_string_field(r1.value().body, "user"),
            *json::get_string_field(r2.value().body, "user"));
  const auto t1 = ua_->transform_request(r1.value().body);
  const auto t2 = ua_->transform_request(r2.value().body);
  EXPECT_EQ(*json::get_string_field(t1.value(), "user"),
            *json::get_string_field(t2.value(), "user"));
}

TEST_F(LogicTest, GetLifecycleFigure4) {
  // Client: get(u) -> get(enc(u,pkUA), enc(k_u,pkIA)).
  auto call = client_->build_get_request("carol");
  ASSERT_TRUE(call.ok());
  const Bytes k_u = call.value().k_u;
  EXPECT_EQ(k_u.size(), 32u);
  const std::string& body0 = call.value().request.body;
  EXPECT_EQ(body0.find("carol"), std::string::npos);

  // UA: pseudonymize user; k field untouched.
  const auto body1 = ua_->transform_request(body0);
  ASSERT_TRUE(body1.ok());
  EXPECT_EQ(*json::get_string_field(body1.value(), "user"),
            pseudonym(keys_->ua, "carol"));
  EXPECT_EQ(*json::get_string_field(body1.value(), "k"),
            *json::get_string_field(body0, "k"));

  // IA: recover k_u, strip it from the LRS-bound call.
  auto get_req = ia_->transform_get_request(body1.value());
  ASSERT_TRUE(get_req.ok());
  EXPECT_EQ(get_req.value().k_u, k_u);
  EXPECT_EQ(*json::get_string_field(get_req.value().body, "k"), "");
  EXPECT_EQ(*json::get_string_field(get_req.value().body, "user"),
            pseudonym(keys_->ua, "carol"));

  // LRS answers with pseudonymized items.
  json::JsonValue lrs_body{json::JsonObject{}};
  json::JsonArray items;
  items.emplace_back(pseudonym(keys_->ia, "movie-1"));
  items.emplace_back(pseudonym(keys_->ia, "movie-2"));
  lrs_body.set("items", std::move(items));

  // IA response: de-pseudonymize, pad, encrypt under k_u.
  const auto response =
      ia_->transform_get_response(lrs_body.dump(), k_u, *rng_);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().find("movie-1"), std::string::npos);  // hidden

  // UA response: pass-through.
  EXPECT_EQ(ua_->transform_response(response.value()), response.value());

  // Client decrypts and strips padding.
  http::HttpResponse http_resp =
      http::HttpResponse::json_response(200, response.value());
  const auto decoded = ClientLibrary::decode_get_response(http_resp, k_u);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(),
            (std::vector<std::string>{"movie-1", "movie-2"}));
}

TEST_F(LogicTest, GetResponsesAreConstantSize) {
  auto call = client_->build_get_request("dave");
  const Bytes& k_u = call.value().k_u;
  json::JsonValue one{json::JsonObject{}};
  json::JsonArray items1;
  items1.emplace_back(pseudonym(keys_->ia, "a"));
  one.set("items", std::move(items1));
  json::JsonValue many{json::JsonObject{}};
  json::JsonArray items2;
  for (int i = 0; i < 20; ++i) {
    items2.emplace_back(pseudonym(keys_->ia, "item-" + std::to_string(i)));
  }
  many.set("items", std::move(items2));

  const auto r1 = ia_->transform_get_response(one.dump(), k_u, *rng_);
  const auto r2 = ia_->transform_get_response(many.dump(), k_u, *rng_);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().size(), r2.value().size());
}

TEST_F(LogicTest, ItemPseudonymizationOptOut) {
  // §6.3: disabled pseudonymization forwards the item in the clear.
  const auto request = client_->build_post_request("erin", "movie-9");
  const auto body1 = ua_->transform_request(request.value().body);
  const auto body2 = ia_->transform_post_request(body1.value(), false);
  ASSERT_TRUE(body2.ok());
  EXPECT_EQ(*json::get_string_field(body2.value(), "item"), "movie-9");
  // The user remains pseudonymized either way.
  EXPECT_EQ(body2.value().find("erin"), std::string::npos);
}

TEST_F(LogicTest, WrongLayerKeysCannotDecrypt) {
  // A post encrypted for *this* application fails under another app's keys
  // (no cross-tenant decryption).
  crypto::Drbg rng2(to_bytes("other-app"));
  const ApplicationKeys other = ApplicationKeys::generate(rng2);
  const UaLogic other_ua =
      UaLogic::from_secrets(other.ua.serialize()).value();
  const auto request = client_->build_post_request("frank", "m");
  EXPECT_FALSE(other_ua.transform_request(request.value().body).ok());
}

TEST_F(LogicTest, MalformedBodiesRejected) {
  EXPECT_FALSE(ua_->transform_request("{}").ok());
  EXPECT_FALSE(ua_->transform_request(R"({"user":"not-base64!!!"})").ok());
  EXPECT_FALSE(ia_->transform_post_request("{}").ok());
  EXPECT_FALSE(ia_->transform_get_request(R"({"user":"x"})").ok());
  EXPECT_FALSE(
      ia_->transform_get_response("not json", Bytes(32, 1), *rng_).ok());
  EXPECT_FALSE(
      ia_->transform_get_response(R"({"items":"nope"})", Bytes(32, 1), *rng_)
          .ok());
}

TEST_F(LogicTest, TamperedCiphertextRejected) {
  auto request = client_->build_post_request("gina", "m");
  std::string body = request.value().body;
  // Flip one character inside the user ciphertext: OAEP must reject it.
  const auto span = json::find_string_field(body, "user");
  ASSERT_TRUE(span.has_value());
  body[span->first + 10] = body[span->first + 10] == 'A' ? 'B' : 'A';
  EXPECT_FALSE(ua_->transform_request(body).ok());
}

TEST_F(LogicTest, FromSecretsRejectsGarbage) {
  EXPECT_FALSE(UaLogic::from_secrets(Bytes(5, 1)).ok());
  EXPECT_FALSE(IaLogic::from_secrets(Bytes{}).ok());
}

TEST_F(LogicTest, DePseudonymizeItemInverse) {
  const std::string p = pseudonym(keys_->ia, "movie-42");
  const auto back = ia_->de_pseudonymize_item(p);
  ASSERT_TRUE(back.ok());
  // The result is ItemDomain-tainted; only the test escape hatch reads it.
  EXPECT_EQ(taint::declassify_for_test(back.value()), "movie-42");
  EXPECT_FALSE(ia_->de_pseudonymize_item("@@@").ok());
  EXPECT_FALSE(ia_->de_pseudonymize_item("c2hvcnQ=").ok());  // wrong size
}

TEST_F(LogicTest, TypedUaPseudonymMatchesWireTransform) {
  // The typed UA entry point and the wire-level transform must agree.
  const auto typed = ua_->pseudonym_of(UserId{"alice"});
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed.value().wire(), pseudonym(keys_->ua, "alice"));
  // Oversized ids are rejected, not truncated.
  EXPECT_FALSE(ua_->pseudonym_of(UserId{std::string(4096, 'x')}).ok());
}

}  // namespace
}  // namespace pprox
