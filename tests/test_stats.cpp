// Tests for the candlestick/percentile statistics used by the evaluation.
#include <gtest/gtest.h>

#include "common/rand.hpp"
#include "common/stats.hpp"

namespace pprox {
namespace {

TEST(Stats, PercentilesOfKnownSequence) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-9);
  EXPECT_NEAR(s.percentile(75), 75.25, 1e-9);
}

TEST(Stats, MeanAndCount) {
  SampleStats s;
  s.add(2);
  s.add(4);
  s.add(6);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(Stats, SingleSampleCandlestick) {
  SampleStats s;
  s.add(42);
  const Candlestick c = s.candlestick();
  EXPECT_EQ(c.count, 1u);
  EXPECT_DOUBLE_EQ(c.median, 42);
  EXPECT_DOUBLE_EQ(c.p25, 42);
  EXPECT_DOUBLE_EQ(c.p75, 42);
  EXPECT_DOUBLE_EQ(c.whisker_low, 42);
  EXPECT_DOUBLE_EQ(c.whisker_high, 42);
}

TEST(Stats, WhiskersExcludeOutliers) {
  SampleStats s;
  // Tight cluster plus one far outlier.
  for (int i = 0; i < 99; ++i) s.add(100 + (i % 10));
  s.add(10000);
  const Candlestick c = s.candlestick();
  EXPECT_LT(c.whisker_high, 200);
  EXPECT_DOUBLE_EQ(c.max, 10000);
}

TEST(Stats, WhiskersWithinFences) {
  SplitMix64 rng(1);
  SampleStats s;
  for (int i = 0; i < 1000; ++i) s.add(rng.next_double() * 100);
  const Candlestick c = s.candlestick();
  const double iqr = c.p75 - c.p25;
  EXPECT_GE(c.whisker_low, c.p25 - 1.5 * iqr - 1e-9);
  EXPECT_LE(c.whisker_high, c.p75 + 1.5 * iqr + 1e-9);
  EXPECT_LE(c.whisker_low, c.p25);
  EXPECT_GE(c.whisker_high, c.p75);
}

TEST(Stats, MergeCombinesSamples) {
  SampleStats a, b;
  a.add(1);
  a.add(2);
  b.add(3);
  b.add(4);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
}

TEST(Stats, AddAllAppends) {
  SampleStats s;
  s.add_all({5, 6, 7});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.percentile(50), 6);
}

TEST(Stats, EmptyThrows) {
  SampleStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.percentile(50), std::runtime_error);
  EXPECT_THROW(s.candlestick(), std::runtime_error);
}

TEST(Stats, PercentileMonotoneInQ) {
  SplitMix64 rng(2);
  SampleStats s;
  for (int i = 0; i < 500; ++i) s.add(rng.next_double() * 1000);
  double prev = s.percentile(0);
  for (int q = 5; q <= 100; q += 5) {
    const double cur = s.percentile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Stats, FormatRowContainsLabelAndHeaderAligns) {
  SampleStats s;
  s.add(1);
  s.add(2);
  s.add(3);
  const auto row = format_candlestick_row("cfg-x", s.candlestick());
  EXPECT_NE(row.find("cfg-x"), std::string::npos);
  EXPECT_FALSE(candlestick_header().empty());
}

}  // namespace
}  // namespace pprox
