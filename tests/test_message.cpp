// Wire-format invariants: fixed-size identifier blocks, constant-size
// response blocks, recommendation padding.
#include <gtest/gtest.h>

#include "pprox/message.hpp"

namespace pprox {
namespace {

TEST(PadIdentifier, RoundTripsAndIsConstantSize) {
  for (const std::string& id : std::vector<std::string>{
           "", "u", "user-12345", std::string(kMaxIdLength, 'x')}) {
    const auto block = pad_identifier(id);
    ASSERT_TRUE(block.ok()) << id;
    EXPECT_EQ(block.value().size(), kIdBlockSize);
    const auto back = unpad_identifier(block.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), id);
  }
}

TEST(PadIdentifier, RejectsOversized) {
  EXPECT_FALSE(pad_identifier(std::string(kMaxIdLength + 1, 'x')).ok());
}

TEST(PadIdentifier, DistinctIdsDistinctBlocks) {
  EXPECT_NE(pad_identifier("user-1").value(), pad_identifier("user-2").value());
  // Tricky case: "a" vs "a\0" style confusion is prevented by the length
  // prefix.
  const std::string with_nul("a\0", 2);
  EXPECT_NE(pad_identifier("a").value(), pad_identifier(with_nul).value());
}

TEST(UnpadIdentifier, RejectsMalformedBlocks) {
  EXPECT_FALSE(unpad_identifier(Bytes(10, 0)).ok());               // wrong size
  Bytes corrupt(kIdBlockSize, 0);
  corrupt[0] = 0xFF;  // length way past capacity
  corrupt[1] = 0xFF;
  EXPECT_FALSE(unpad_identifier(corrupt).ok());
}

TEST(PadRecommendations, PadsShortLists) {
  const auto padded = pad_recommendations({"a", "b"});
  EXPECT_EQ(padded.size(), kMaxRecommendations);
  EXPECT_EQ(padded[0], "a");
  EXPECT_EQ(padded[1], "b");
  for (std::size_t i = 2; i < padded.size(); ++i) {
    EXPECT_EQ(padded[i].rfind(kPadItemPrefix, 0), 0u) << padded[i];
  }
}

TEST(PadRecommendations, TruncatesLongLists) {
  std::vector<std::string> many(kMaxRecommendations + 5, "item");
  EXPECT_EQ(pad_recommendations(many).size(), kMaxRecommendations);
}

TEST(StripPadItems, InverseOfPadding) {
  const std::vector<std::string> original = {"x", "y", "z"};
  EXPECT_EQ(strip_pad_items(pad_recommendations(original)), original);
  // Full padding (empty recommendation list) strips to empty.
  EXPECT_TRUE(strip_pad_items(pad_recommendations({})).empty());
}

TEST(ResponseBlock, ConstantSizeAndRoundTrip) {
  const auto items = pad_recommendations({"movie-1", "movie-2"});
  const auto block = encode_response_block(items);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().size(), kResponseBlockSize);

  const auto other = encode_response_block(
      pad_recommendations({"a-totally-different-item-name"}));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value().size(), kResponseBlockSize);  // size never varies

  const auto back = decode_response_block(block.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), items);
}

TEST(ResponseBlock, RejectsOversizedList) {
  // 20 maximal identifiers exceed the block size budget? They must NOT:
  // kResponseBlockSize is chosen to fit kMaxRecommendations maximal ids.
  std::vector<std::string> max_items(kMaxRecommendations,
                                     std::string(kMaxIdLength, 'x'));
  EXPECT_TRUE(encode_response_block(max_items).ok());
  // ...but a list that ignores the id limit must be rejected.
  std::vector<std::string> huge(kMaxRecommendations, std::string(200, 'y'));
  EXPECT_FALSE(encode_response_block(huge).ok());
}

TEST(ResponseBlock, RejectsGarbage) {
  EXPECT_FALSE(decode_response_block(to_bytes("not json")).ok());
  EXPECT_FALSE(decode_response_block(to_bytes(R"({"a":1})")).ok());   // not a list
  EXPECT_FALSE(decode_response_block(to_bytes(R"([1,2,3])")).ok());   // non-strings
}

}  // namespace
}  // namespace pprox
