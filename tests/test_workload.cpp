// Workload substrate: Zipf sampler, synthetic MovieLens properties, and the
// real-time open-loop injector.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/channel.hpp"
#include "workload/injector.hpp"
#include "workload/movielens.hpp"

namespace pprox::workload {
namespace {

TEST(Zipf, SamplesInRange) {
  SplitMix64 rng(1);
  const ZipfSampler sampler(100, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(sampler.sample(rng), 100u);
}

TEST(Zipf, SkewFollowsExponent) {
  SplitMix64 rng(2);
  const ZipfSampler sampler(1000, 1.2);
  std::map<std::size_t, int> counts;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) counts[sampler.sample(rng)]++;
  // Rank 0 dominates and the ratio rank0/rank9 approximates (10/1)^1.2 ~ 15.8.
  EXPECT_GT(counts[0], counts[9] * 8);
  EXPECT_GT(counts[0], kDraws / 20);
}

TEST(Zipf, UniformWhenExponentZero) {
  SplitMix64 rng(3);
  const ZipfSampler sampler(10, 0.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20'000; ++i) counts[sampler.sample(rng)]++;
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, 2000, 350) << rank;
  }
}

TEST(MovieLens, SmallDatasetShape) {
  const MovieLensGenerator gen(MovieLensParams::small());
  const auto events = gen.events();
  EXPECT_EQ(events.size(), 5'000u);
  // No duplicate (user, item) pairs — a user rates a movie once.
  std::set<std::pair<std::string, std::string>> pairs;
  for (const auto& e : events) {
    EXPECT_TRUE(pairs.emplace(e.user, e.item).second)
        << e.user << "/" << e.item;
  }
  EXPECT_GT(gen.distinct_users(), 100u);
  EXPECT_GT(gen.distinct_items(), 150u);
}

TEST(MovieLens, DeterministicForSameSeed) {
  const MovieLensGenerator a(MovieLensParams::small(42));
  const MovieLensGenerator b(MovieLensParams::small(42));
  const MovieLensGenerator c(MovieLensParams::small(43));
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].user, b.events()[i].user);
    EXPECT_EQ(a.events()[i].item, b.events()[i].item);
  }
  EXPECT_NE(c.events()[0].item + c.events()[1].item + c.events()[2].item,
            a.events()[0].item + a.events()[1].item + a.events()[2].item);
}

TEST(MovieLens, PopularitySkewExists) {
  const MovieLensGenerator gen(MovieLensParams::small());
  std::map<std::string, int> item_counts;
  for (const auto& e : gen.events()) item_counts[e.item]++;
  int max_count = 0;
  for (const auto& [item, count] : item_counts) max_count = std::max(max_count, count);
  const double mean =
      static_cast<double>(gen.events().size()) / item_counts.size();
  EXPECT_GT(max_count, 3 * mean);  // head items far above average
}

TEST(MovieLens, PaperScaleParamsMatchDataset) {
  const auto p = MovieLensParams::paper_scale();
  EXPECT_EQ(p.users, 7'288u);
  EXPECT_EQ(p.items, 17'141u);
  EXPECT_EQ(p.ratings, 562'888u);
}

TEST(Injector, HitsTargetRateAndRecordsLatency) {
  net::FunctionSink sink([](const http::HttpRequest&) {
    return http::HttpResponse::json_response(200, "{}");
  });
  net::InProcChannel channel(sink);
  InjectorConfig config;
  config.rps = 500;
  config.duration = std::chrono::milliseconds(1'000);
  config.warmup = std::chrono::milliseconds(100);
  config.cooldown = std::chrono::milliseconds(100);
  const auto report = run_injection(channel, config, [] {
    http::HttpRequest req;
    req.method = "POST";
    req.target = "/x";
    return req;
  });
  EXPECT_NEAR(static_cast<double>(report.injected), 500, 100);
  EXPECT_EQ(report.completed, report.injected);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GT(report.latencies_ms.count(), 0u);
  EXPECT_LT(report.latencies_ms.percentile(50), 5.0);  // in-proc is fast
}

TEST(Injector, CountsFailures) {
  net::FunctionSink sink([](const http::HttpRequest&) {
    return http::HttpResponse::error_response(503, "down");
  });
  net::InProcChannel channel(sink);
  InjectorConfig config;
  config.rps = 200;
  config.duration = std::chrono::milliseconds(500);
  config.warmup = std::chrono::milliseconds(0);
  config.cooldown = std::chrono::milliseconds(0);
  const auto report = run_injection(channel, config, [] { return http::HttpRequest{}; });
  EXPECT_GT(report.failed, 0u);
  EXPECT_EQ(report.failed, report.completed);
}

TEST(Injector, TrimsWarmupAndCooldown) {
  net::FunctionSink sink([](const http::HttpRequest&) {
    return http::HttpResponse::json_response(200, "{}");
  });
  net::InProcChannel channel(sink);
  InjectorConfig config;
  config.rps = 100;
  config.duration = std::chrono::milliseconds(600);
  config.warmup = std::chrono::milliseconds(200);
  config.cooldown = std::chrono::milliseconds(200);
  const auto report = run_injection(channel, config, [] { return http::HttpRequest{}; });
  // Only ~200ms of the 600ms window is measured.
  EXPECT_LT(report.latencies_ms.count(), report.completed);
  EXPECT_GT(report.latencies_ms.count(), 0u);
}

}  // namespace
}  // namespace pprox::workload
