// ShuffleQueue: batching by size S, timer-driven flush, permutation output.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>

#include "pprox/shuffle.hpp"

namespace pprox {
namespace {

using namespace std::chrono_literals;

TEST(ShuffleQueue, PassThroughWhenDisabled) {
  ShuffleQueue q(0, 100ms);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.add([&order, i] { order.push_back(i); });
    EXPECT_EQ(q.buffered(), 0u);  // released synchronously
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ShuffleQueue, BuffersUntilSizeReached) {
  ShuffleQueue q(5, 10s);  // timer effectively disabled
  std::atomic<int> released{0};
  for (int i = 0; i < 4; ++i) q.add([&released] { released.fetch_add(1); });
  EXPECT_EQ(released.load(), 0);
  EXPECT_EQ(q.buffered(), 4u);
  q.add([&released] { released.fetch_add(1); });  // 5th triggers flush
  EXPECT_EQ(released.load(), 5);
  EXPECT_EQ(q.buffered(), 0u);
  EXPECT_EQ(q.flush_count(), 1u);
}

TEST(ShuffleQueue, EveryActionRunsExactlyOnce) {
  ShuffleQueue q(10, 10s);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100; ++i) {
    q.add([&counts, i] { counts[static_cast<std::size_t>(i)]++; });
  }
  for (int count : counts) EXPECT_EQ(count, 1);
  EXPECT_EQ(q.flush_count(), 10u);
}

TEST(ShuffleQueue, OutputOrderIsShuffled) {
  // With S=32, the probability that a batch stays in arrival order is
  // 1/32! — seeing any permutation move is the expectation.
  ShuffleQueue q(32, 10s);
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) q.add([&order, i] { order.push_back(i); });
  std::vector<int> sorted(32);
  std::iota(sorted.begin(), sorted.end(), 0);
  EXPECT_TRUE(std::is_permutation(order.begin(), order.end(), sorted.begin()));
  EXPECT_NE(order, sorted);
}

TEST(ShuffleQueue, TimerFlushesPartialBatch) {
  ShuffleQueue q(100, 50ms);
  std::atomic<int> released{0};
  q.add([&released] { released.fetch_add(1); });
  q.add([&released] { released.fetch_add(1); });
  EXPECT_EQ(released.load(), 0);
  // Wait well past the timeout.
  for (int i = 0; i < 100 && released.load() < 2; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(released.load(), 2);
}

TEST(ShuffleQueue, TimerRearmsAfterFlush) {
  ShuffleQueue q(100, 40ms);
  std::atomic<int> released{0};
  q.add([&released] { released.fetch_add(1); });
  for (int i = 0; i < 100 && released.load() < 1; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_EQ(released.load(), 1);
  // A second wave must get its own deadline.
  q.add([&released] { released.fetch_add(1); });
  for (int i = 0; i < 100 && released.load() < 2; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(released.load(), 2);
}

TEST(ShuffleQueue, SizeFlushCancelsPendingTimer) {
  ShuffleQueue q(2, 80ms);
  std::atomic<int> released{0};
  q.add([&released] { released.fetch_add(1); });
  q.add([&released] { released.fetch_add(1); });  // size flush before timer
  EXPECT_EQ(released.load(), 2);
  const auto flushes_before = q.flush_count();
  std::this_thread::sleep_for(120ms);  // stale timer must not re-fire
  EXPECT_EQ(q.flush_count(), flushes_before);
}

TEST(ShuffleQueue, FlushNowReleasesEverything) {
  ShuffleQueue q(100, 10s);
  std::atomic<int> released{0};
  for (int i = 0; i < 7; ++i) q.add([&released] { released.fetch_add(1); });
  q.flush_now();
  EXPECT_EQ(released.load(), 7);
}

TEST(ShuffleQueue, DestructorDoesNotStrandActions) {
  std::atomic<int> released{0};
  {
    ShuffleQueue q(100, 10s);
    for (int i = 0; i < 3; ++i) q.add([&released] { released.fetch_add(1); });
  }
  EXPECT_EQ(released.load(), 3);
}

TEST(ShuffleQueue, ConcurrentProducers) {
  ShuffleQueue q(16, 100ms);
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&q, &released] {
      for (int i = 0; i < 250; ++i) q.add([&released] { released.fetch_add(1); });
    });
  }
  for (auto& t : threads) t.join();
  q.flush_now();
  // Some releases may still be mid-run on other threads; wait briefly.
  for (int i = 0; i < 200 && released.load() < 1000; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(released.load(), 1000);
}

}  // namespace
}  // namespace pprox
