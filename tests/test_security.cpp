// Executable version of the paper's security analysis (§6.1): the adversary
// observes every intercepted message and the full LRS database, breaches one
// enclave layer at a time, and must still fail to link users to items.
// Cases 1(a)-(c) and 2(a)-(c) are checked against the *real* pipeline — the
// intercepted ciphertexts and database rows are exactly what the deployed
// system puts on the wire and in storage.
#include <gtest/gtest.h>

#include "attack/adversary.hpp"
#include "crypto/drbg.hpp"
#include "json/json.hpp"
#include "lrs/harness.hpp"
#include "pprox/deployment.hpp"

namespace pprox::attack {
namespace {

class SecurityTest : public ::testing::Test {
 protected:
  SecurityTest()
      : rng_(to_bytes("security-test")),
        deployment_(make_config(), lrs_, rng_),
        client_(deployment_.make_client(&rng_)) {
    // Ground-truth traffic: three users access three items. The adversary
    // taps the client->UA wire (possible: it sees all cloud ingress).
    for (const auto& [user, item] : traffic()) {
      auto request = client_.build_post_request(user, item);
      // Record the interception before delivery, like a wire tap.
      InterceptedPost intercept;
      intercept.source_address = "10.0.0." + user.substr(user.size() - 1);
      intercept.user_field =
          *json::get_string_field(request.value().body, "user");
      intercept.item_field =
          *json::get_string_field(request.value().body, "item");
      intercepts_.push_back(intercept);
      deliver(std::move(request.value()));
    }
    // The adversary also dumps the LRS database (§2.3 ➋).
    for (const auto& [u, i] : lrs_.dump_events()) {
      database_.push_back({u, i});
    }
  }

  static DeploymentConfig make_config() {
    DeploymentConfig config;
    config.shuffle_size = 0;  // §6.1 analysis is about keys, not timing
    return config;
  }

  static std::vector<std::pair<std::string, std::string>> traffic() {
    return {{"alice", "diabetes-forum"},
            {"bob", "political-news"},
            {"carol", "dating-tips"}};
  }

  void deliver(http::HttpRequest request) {
    std::promise<http::HttpResponse> promise;
    auto future = promise.get_future();
    deployment_.entry_channel()->send(std::move(request),
                                      [&promise](http::HttpResponse r) {
                                        promise.set_value(std::move(r));
                                      });
    ASSERT_EQ(future.get().status, 201);
  }

  LayerSecrets breach_ua() {
    deployment_.ua_enclave(0).breach();
    const auto blob = deployment_.ua_enclave(0).exfiltrate_secrets();
    return LayerSecrets::deserialize(blob.value()).value();
  }
  LayerSecrets breach_ia() {
    deployment_.ia_enclave(0).breach();
    const auto blob = deployment_.ia_enclave(0).exfiltrate_secrets();
    return LayerSecrets::deserialize(blob.value()).value();
  }

  bool adversary_links_anything(const Adversary& adversary) const {
    for (const auto& [user, item] : traffic()) {
      if (adversary.can_link(user, item, database_, intercepts_)) return true;
    }
    return false;
  }

  crypto::Drbg rng_;
  lrs::HarnessServer lrs_;
  Deployment deployment_;
  ClientLibrary client_;
  std::vector<InterceptedPost> intercepts_;
  std::vector<LrsDbRow> database_;
};

TEST_F(SecurityTest, BaselineNoBreachNothingLinkable) {
  Adversary adversary;
  EXPECT_FALSE(adversary.recover_user(intercepts_[0]).ok());
  EXPECT_FALSE(adversary.recover_item(intercepts_[0]).ok());
  EXPECT_FALSE(adversary.de_pseudonymize_user(database_[0]).ok());
  EXPECT_FALSE(adversary.de_pseudonymize_item(database_[0]).ok());
  EXPECT_FALSE(adversary_links_anything(adversary));
}

TEST_F(SecurityTest, DatabaseHoldsOnlyPseudonyms) {
  ASSERT_EQ(database_.size(), traffic().size());
  for (const auto& row : database_) {
    for (const auto& [user, item] : traffic()) {
      EXPECT_NE(row.user_pseudonym, user);
      EXPECT_NE(row.item_pseudonym, item);
      EXPECT_EQ(row.user_pseudonym.find(user), std::string::npos);
      EXPECT_EQ(row.item_pseudonym.find(item), std::string::npos);
    }
  }
}

TEST_F(SecurityTest, Case1aBrokenUaSeesUserNotItem) {
  Adversary adversary;
  adversary.steal_ua_secrets(breach_ua());

  // The adversary links the IP to the user identity (paper concedes this)...
  const auto user = adversary.recover_user(intercepts_[0]);
  ASSERT_TRUE(user.ok());
  EXPECT_EQ(user.value(), "alice");
  // ...but cannot decrypt enc(i, pkIA) without IA secrets.
  EXPECT_FALSE(adversary.recover_item(intercepts_[0]).ok());
  EXPECT_FALSE(adversary_links_anything(adversary));
}

TEST_F(SecurityTest, Case1cBrokenUaPlusDatabase) {
  Adversary adversary;
  adversary.steal_ua_secrets(breach_ua());
  // kUA de-pseudonymizes users in the database...
  const auto user = adversary.de_pseudonymize_user(database_[0]);
  ASSERT_TRUE(user.ok());
  EXPECT_NE(std::find_if(traffic().begin(), traffic().end(),
                         [&](const auto& t) { return t.first == user.value(); }),
            traffic().end());
  // ...items stay opaque: kIA lives in the other layer.
  EXPECT_FALSE(adversary.de_pseudonymize_item(database_[0]).ok());
  EXPECT_FALSE(adversary_links_anything(adversary));
}

TEST_F(SecurityTest, Case2aBrokenIaSeesItemNotUser) {
  Adversary adversary;
  adversary.steal_ia_secrets(breach_ia());

  const auto item = adversary.recover_item(intercepts_[0]);
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item.value(), "diabetes-forum");
  EXPECT_FALSE(adversary.recover_user(intercepts_[0]).ok());
  EXPECT_FALSE(adversary_links_anything(adversary));
}

TEST_F(SecurityTest, Case2cBrokenIaPlusDatabase) {
  Adversary adversary;
  adversary.steal_ia_secrets(breach_ia());
  const auto item = adversary.de_pseudonymize_item(database_[0]);
  ASSERT_TRUE(item.ok());
  EXPECT_FALSE(adversary.de_pseudonymize_user(database_[0]).ok());
  EXPECT_FALSE(adversary_links_anything(adversary));
}

TEST_F(SecurityTest, BothLayersBreachedBreaksUnlinkability) {
  // The model assumes one layer at a time (§2.3); violating it must break
  // the guarantee — this is what the two-layer split defends, no more.
  Adversary adversary;
  adversary.steal_ua_secrets(breach_ua());
  adversary.steal_ia_secrets(breach_ia());
  EXPECT_TRUE(adversary.can_link("alice", "diabetes-forum", database_, intercepts_));
  EXPECT_TRUE(adversary_links_anything(adversary));
  // And it cannot fabricate links that never happened.
  EXPECT_FALSE(adversary.can_link("alice", "dating-tips", database_, intercepts_));
}

TEST_F(SecurityTest, AllInstancesOfALayerShareSecrets) {
  // Horizontal scaling note (§5): breaching any instance of a layer yields
  // that layer's secrets — but still only one layer's.
  DeploymentConfig config = make_config();
  config.ua_instances = 3;
  lrs::HarnessServer lrs2;
  crypto::Drbg rng2(to_bytes("scale-sec"));
  Deployment scaled(config, lrs2, rng2);
  scaled.ua_enclave(2).breach();
  const auto blob = scaled.ua_enclave(2).exfiltrate_secrets();
  ASSERT_TRUE(blob.ok());
  const auto secrets = LayerSecrets::deserialize(blob.value());
  ASSERT_TRUE(secrets.ok());
  EXPECT_EQ(secrets.value().k, scaled.application_keys().ua.k);
}

TEST(SecurityOptOut, DisabledItemPseudonymizationWeakensModel) {
  // §6.3: with items in the clear at the LRS, a single UA breach suffices.
  crypto::Drbg rng(to_bytes("optout"));
  lrs::HarnessServer lrs;
  DeploymentConfig config;
  config.pseudonymize_items = false;
  Deployment deployment(config, lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);
  ASSERT_TRUE(client.post_sync("victim", "sensitive-item").ok());

  std::vector<LrsDbRow> database;
  for (const auto& [u, i] : lrs.dump_events()) database.push_back({u, i});
  ASSERT_EQ(database.size(), 1u);
  EXPECT_EQ(database[0].item_pseudonym, "sensitive-item");  // in the clear

  Adversary adversary;
  deployment.ua_enclave(0).breach();
  adversary.steal_ua_secrets(
      LayerSecrets::deserialize(
          deployment.ua_enclave(0).exfiltrate_secrets().value())
          .value());
  EXPECT_TRUE(adversary.can_link("victim", "sensitive-item", database, {}));
}

TEST(HistoryAttackTest, RecurringCandidatesIsolateVictim) {
  // §6.3: the victim's pseudonym recurs in every S-sized candidate set.
  HistoryAttack attack;
  SplitMix64 rng(3);
  const std::string victim = "pseudo-victim";
  int rounds_needed = 0;
  for (int round = 0; round < 50 && !attack.victim_identified(); ++round) {
    std::vector<std::string> candidates = {victim};
    for (int j = 0; j < 9; ++j) {  // S = 10
      candidates.push_back("pseudo-" + std::to_string(rng.next_below(500)));
    }
    attack.observe_round(candidates);
    rounds_needed = round + 1;
  }
  ASSERT_TRUE(attack.victim_identified());
  EXPECT_EQ(attack.surviving_candidates()[0], victim);
  // With 500 decoys and S=10, a handful of rounds suffices — this is why
  // §6.3 recommends hiding client IPs if history attacks are a concern.
  EXPECT_LE(rounds_needed, 10);
  EXPECT_GE(rounds_needed, 2);
}

TEST(HistoryAttackTest, NoFalsePositiveWithoutRecurrence) {
  HistoryAttack attack;
  attack.observe_round({"a", "b", "c"});
  attack.observe_round({"d", "e", "f"});
  EXPECT_TRUE(attack.surviving_candidates().empty());
  EXPECT_FALSE(attack.victim_identified());
  EXPECT_EQ(attack.rounds(), 2u);
}

TEST(HistoryAttackTest, DuplicatesInRoundHandled) {
  HistoryAttack attack;
  attack.observe_round({"x", "x", "y"});
  attack.observe_round({"x", "z"});
  EXPECT_EQ(attack.surviving_candidates(), std::vector<std::string>{"x"});
  EXPECT_TRUE(attack.victim_identified());
}

}  // namespace
}  // namespace pprox::attack
