// Discrete-event engine: ordering, timers, CPU queueing, samplers.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/des.hpp"

namespace pprox::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1, [&] {
    times.push_back(sim.now());
    sim.schedule_in(4, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1);
  EXPECT_DOUBLE_EQ(times[1], 5);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(50, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(10, [&] {
    sim.schedule_at(3, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 10);
}

TEST(CpuPool, SerializesBeyondCoreCount) {
  Simulator sim;
  CpuPool pool(sim, 2);
  std::vector<double> completions;
  for (int i = 0; i < 4; ++i) {
    pool.submit(10, [&] { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 4u);
  // Two start immediately, two queue behind them.
  EXPECT_DOUBLE_EQ(completions[0], 10);
  EXPECT_DOUBLE_EQ(completions[1], 10);
  EXPECT_DOUBLE_EQ(completions[2], 20);
  EXPECT_DOUBLE_EQ(completions[3], 20);
  EXPECT_DOUBLE_EQ(pool.cpu_time_used(), 40);
}

TEST(CpuPool, FifoOrderAmongQueued) {
  Simulator sim;
  CpuPool pool(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.submit(1, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(CpuPool, QueueDepthVisible) {
  Simulator sim;
  CpuPool pool(sim, 1);
  for (int i = 0; i < 3; ++i) pool.submit(5, [] {});
  EXPECT_EQ(pool.busy(), 1);
  EXPECT_EQ(pool.queue_depth(), 2u);
  sim.run();
  EXPECT_EQ(pool.busy(), 0);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(Samplers, ExponentialMeanMatchesRate) {
  SplitMix64 rng(1);
  const double rate_per_ms = 0.25;  // 250 rps
  double total = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) total += exp_interarrival(rate_per_ms, rng);
  const double mean = total / kN;
  EXPECT_NEAR(mean, 1.0 / rate_per_ms, 0.1);
}

TEST(Samplers, LognormalMedianMatches) {
  SplitMix64 rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(lognormal_sample(21.0, 0.45, rng));
    EXPECT_GT(samples.back(), 0);
  }
  std::sort(samples.begin(), samples.end());
  const double median = samples[samples.size() / 2];
  EXPECT_NEAR(median, 21.0, 0.8);
}

}  // namespace
}  // namespace pprox::sim
