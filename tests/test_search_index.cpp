// Inverted index (Elasticsearch stand-in): scoring, exclusion, snapshots.
#include <gtest/gtest.h>

#include <thread>

#include "lrs/search_index.hpp"

namespace pprox::lrs {
namespace {

std::vector<IndexedItem> small_model() {
  return {
      {"movie-a", {{"movie-b", 2.0}, {"movie-c", 1.0}}},
      {"movie-b", {{"movie-a", 2.0}}},
      {"movie-c", {{"movie-a", 1.0}, {"movie-b", 3.0}}},
      {"movie-d", {}},
  };
}

TEST(SearchIndex, EmptyIndexReturnsNothing) {
  SearchIndex index;
  EXPECT_TRUE(index.query({"anything"}, {}, 10).empty());
  EXPECT_EQ(index.document_count(), 0u);
}

TEST(SearchIndex, ScoresSumAcrossMatchedTerms) {
  SearchIndex index;
  index.replace_all(small_model());
  // History {movie-a, movie-b}: movie-c matches both (1.0 + 3.0 = 4.0).
  const auto hits = index.query({"movie-a", "movie-b"}, {}, 10);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].item_id, "movie-c");
  EXPECT_DOUBLE_EQ(hits[0].score, 4.0);
}

TEST(SearchIndex, ExcludesHistory) {
  SearchIndex index;
  index.replace_all(small_model());
  const auto hits = index.query({"movie-b"}, {"movie-a"}, 10);
  for (const auto& hit : hits) EXPECT_NE(hit.item_id, "movie-a");
  // movie-a matched (weight 2.0) but was excluded; movie-c remains (3.0).
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].item_id, "movie-c");
}

TEST(SearchIndex, LimitTruncatesRanked) {
  SearchIndex index;
  std::vector<IndexedItem> model;
  for (int i = 0; i < 50; ++i) {
    model.push_back({"item-" + std::to_string(i),
                     {{"t", static_cast<double>(i)}}});
  }
  index.replace_all(std::move(model));
  const auto hits = index.query({"t"}, {}, 5);
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_EQ(hits[0].item_id, "item-49");  // highest weight first
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST(SearchIndex, DeterministicTieBreakByItemId) {
  SearchIndex index;
  index.replace_all({{"zzz", {{"t", 1.0}}}, {"aaa", {{"t", 1.0}}}});
  const auto hits = index.query({"t"}, {}, 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].item_id, "aaa");
  EXPECT_EQ(hits[1].item_id, "zzz");
}

TEST(SearchIndex, ReplaceAllBumpsGeneration) {
  SearchIndex index;
  EXPECT_EQ(index.generation(), 0u);
  index.replace_all(small_model());
  EXPECT_EQ(index.generation(), 1u);
  EXPECT_EQ(index.document_count(), 4u);
  index.replace_all({});
  EXPECT_EQ(index.generation(), 2u);
  EXPECT_EQ(index.document_count(), 0u);
}

TEST(SearchIndex, QueriesSurviveConcurrentRetraining) {
  SearchIndex index;
  index.replace_all(small_model());
  std::thread trainer([&] {
    for (int gen = 0; gen < 500; ++gen) index.replace_all(small_model());
  });
  for (int i = 0; i < 500; ++i) {
    const auto hits = index.query({"movie-a", "movie-b"}, {}, 10);
    // Every snapshot is complete: results come from one whole generation.
    ASSERT_FALSE(hits.empty());
    ASSERT_EQ(hits[0].item_id, "movie-c");
  }
  trainer.join();
  EXPECT_GE(index.generation(), 500u);
}

}  // namespace
}  // namespace pprox::lrs
