// RSA keygen, PKCS#1 v1.5, OAEP, and signature tests. Key generation is the
// slow part, so one 1024-bit pair is shared across the suite.
#include <gtest/gtest.h>

#include "common/encoding.hpp"
#include "crypto/drbg.hpp"
#include "crypto/rsa.hpp"

namespace pprox::crypto {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Drbg(to_bytes("rsa-test-seed"));
    keys_ = new RsaKeyPair(rsa_generate(1024, *rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }
  static Drbg* rng_;
  static RsaKeyPair* keys_;
};

Drbg* RsaTest::rng_ = nullptr;
RsaKeyPair* RsaTest::keys_ = nullptr;

TEST_F(RsaTest, KeyShape) {
  EXPECT_EQ(keys_->pub.n.bit_length(), 1024u);
  EXPECT_EQ(keys_->pub.e, BigInt(65537));
  EXPECT_EQ(keys_->priv.p * keys_->priv.q, keys_->pub.n);
  EXPECT_GE(keys_->priv.p, keys_->priv.q);  // CRT convention
  EXPECT_EQ(keys_->pub.modulus_bytes(), 128u);
}

TEST_F(RsaTest, RawOpsAreInverses) {
  const BigInt m = BigInt::from_hex("123456789abcdef");
  const BigInt c = rsa_public_op(keys_->pub, m);
  EXPECT_NE(c, m);
  EXPECT_EQ(rsa_private_op(keys_->priv, c), m);
}

TEST_F(RsaTest, CrtMatchesPlainModexp) {
  for (int i = 0; i < 5; ++i) {
    const BigInt c = BigInt::random_below(keys_->pub.n, *rng_);
    EXPECT_EQ(rsa_private_op(keys_->priv, c),
              c.modexp(keys_->priv.d, keys_->priv.n));
  }
}

TEST_F(RsaTest, Pkcs1RoundTrip) {
  const auto msg = to_bytes("user-8412");
  const auto ct = rsa_encrypt_pkcs1(keys_->pub, msg, *rng_);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct.value().size(), 128u);
  const auto back = rsa_decrypt_pkcs1(keys_->priv, ct.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), msg);
}

TEST_F(RsaTest, Pkcs1IsRandomized) {
  const auto msg = to_bytes("same-user");
  const auto a = rsa_encrypt_pkcs1(keys_->pub, msg, *rng_);
  const auto b = rsa_encrypt_pkcs1(keys_->pub, msg, *rng_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Randomized encryption: same plaintext, different ciphertexts — this is
  // exactly why det_enc is needed for pseudonyms (paper §4.1).
  EXPECT_NE(a.value(), b.value());
}

TEST_F(RsaTest, Pkcs1RejectsOversizedPlaintext) {
  const Bytes big(128 - 10, 0x41);
  EXPECT_FALSE(rsa_encrypt_pkcs1(keys_->pub, big, *rng_).ok());
}

TEST_F(RsaTest, Pkcs1MaxSizePlaintext) {
  const Bytes msg(128 - 11, 0x42);
  const auto ct = rsa_encrypt_pkcs1(keys_->pub, msg, *rng_);
  ASSERT_TRUE(ct.ok());
  const auto back = rsa_decrypt_pkcs1(keys_->priv, ct.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), msg);
}

TEST_F(RsaTest, Pkcs1RejectsCorruptedCiphertext) {
  const auto ct = rsa_encrypt_pkcs1(keys_->pub, to_bytes("x"), *rng_);
  ASSERT_TRUE(ct.ok());
  Bytes bad = ct.value();
  bad.pop_back();
  EXPECT_FALSE(rsa_decrypt_pkcs1(keys_->priv, bad).ok());
}

TEST_F(RsaTest, OaepRoundTrip) {
  const auto msg = to_bytes("item-identifier-17141");
  const auto ct = rsa_encrypt_oaep(keys_->pub, msg, *rng_);
  ASSERT_TRUE(ct.ok());
  const auto back = rsa_decrypt_oaep(keys_->priv, ct.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), msg);
}

TEST_F(RsaTest, OaepEmptyAndMaxPlaintext) {
  for (std::size_t len : {std::size_t{0}, std::size_t{128 - 2 * 32 - 2}}) {
    const Bytes msg(len, 0x5a);
    const auto ct = rsa_encrypt_oaep(keys_->pub, msg, *rng_);
    ASSERT_TRUE(ct.ok()) << len;
    const auto back = rsa_decrypt_oaep(keys_->priv, ct.value());
    ASSERT_TRUE(back.ok()) << len;
    EXPECT_EQ(back.value(), msg);
  }
  EXPECT_FALSE(rsa_encrypt_oaep(keys_->pub, Bytes(63, 0), *rng_).ok());
}

TEST_F(RsaTest, OaepTamperDetected) {
  const auto ct = rsa_encrypt_oaep(keys_->pub, to_bytes("payload"), *rng_);
  ASSERT_TRUE(ct.ok());
  Bytes bad = ct.value();
  bad[bad.size() / 2] ^= 0x40;
  EXPECT_FALSE(rsa_decrypt_oaep(keys_->priv, bad).ok());
}

TEST_F(RsaTest, OaepIsRandomized) {
  const auto a = rsa_encrypt_oaep(keys_->pub, to_bytes("m"), *rng_);
  const auto b = rsa_encrypt_oaep(keys_->pub, to_bytes("m"), *rng_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
}

TEST_F(RsaTest, SignVerify) {
  const auto msg = to_bytes("enclave quote: measurement || pk fingerprint");
  const Bytes sig = rsa_sign_sha256(keys_->priv, msg);
  EXPECT_TRUE(rsa_verify_sha256(keys_->pub, msg, sig));
  EXPECT_FALSE(rsa_verify_sha256(keys_->pub, to_bytes("other"), sig));
  Bytes bad = sig;
  bad[0] ^= 1;
  EXPECT_FALSE(rsa_verify_sha256(keys_->pub, msg, bad));
  EXPECT_FALSE(rsa_verify_sha256(keys_->pub, msg, Bytes(10, 0)));
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  Drbg rng2(to_bytes("second-key"));
  const RsaKeyPair other = rsa_generate(1024, rng2);
  const auto msg = to_bytes("message");
  const Bytes sig = rsa_sign_sha256(keys_->priv, msg);
  EXPECT_FALSE(rsa_verify_sha256(other.pub, msg, sig));
}

TEST_F(RsaTest, FingerprintStableAndKeyDependent) {
  EXPECT_EQ(keys_->pub.fingerprint(), keys_->pub.fingerprint());
  Drbg rng2(to_bytes("third-key"));
  const RsaKeyPair other = rsa_generate(1024, rng2);
  EXPECT_NE(keys_->pub.fingerprint(), other.pub.fingerprint());
}

TEST(Mgf1, KnownLengthAndDeterminism) {
  const auto seed = to_bytes("seed");
  const Bytes a = mgf1_sha256(seed, 100);
  const Bytes b = mgf1_sha256(seed, 100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
  // Prefix property: longer mask extends the shorter one.
  const Bytes c = mgf1_sha256(seed, 40);
  EXPECT_TRUE(std::equal(c.begin(), c.end(), a.begin()));
  EXPECT_NE(mgf1_sha256(to_bytes("other"), 100), a);
}

}  // namespace
}  // namespace pprox::crypto
