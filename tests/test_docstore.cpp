// Document store (MongoDB stand-in) behaviour and concurrency.
#include <gtest/gtest.h>

#include <thread>

#include "lrs/docstore.hpp"

namespace pprox::lrs {
namespace {

json::JsonValue make_doc(const std::string& user, const std::string& item) {
  json::JsonValue doc{json::JsonObject{}};
  doc.set("user", user);
  doc.set("item", item);
  return doc;
}

TEST(Collection, UpsertGeneratesIds) {
  Collection c;
  const std::string id1 = c.upsert("", make_doc("u1", "i1"));
  const std::string id2 = c.upsert("", make_doc("u2", "i2"));
  EXPECT_NE(id1, id2);
  EXPECT_EQ(c.size(), 2u);
}

TEST(Collection, UpsertWithExplicitIdReplaces) {
  Collection c;
  c.upsert("k", make_doc("u1", "i1"));
  c.upsert("k", make_doc("u1", "i2"));
  EXPECT_EQ(c.size(), 1u);
  const auto doc = c.find_by_id("k");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("item"), "i2");
}

TEST(Collection, FindByIdMissing) {
  Collection c;
  EXPECT_FALSE(c.find_by_id("nope").has_value());
}

TEST(Collection, FindByField) {
  Collection c;
  c.upsert("", make_doc("alice", "i1"));
  c.upsert("", make_doc("alice", "i2"));
  c.upsert("", make_doc("bob", "i3"));
  EXPECT_EQ(c.find_by_field("user", "alice").size(), 2u);
  EXPECT_EQ(c.find_by_field("user", "bob").size(), 1u);
  EXPECT_TRUE(c.find_by_field("user", "carol").empty());
  EXPECT_TRUE(c.find_by_field("missing_key", "x").empty());
}

TEST(Collection, ScanVisitsEverything) {
  Collection c;
  for (int i = 0; i < 10; ++i) c.upsert("", make_doc("u", std::to_string(i)));
  int count = 0;
  c.scan([&count](const std::string&, const json::JsonValue&) { ++count; });
  EXPECT_EQ(count, 10);
}

TEST(Collection, EraseAndClear) {
  Collection c;
  const std::string id = c.upsert("", make_doc("u", "i"));
  EXPECT_TRUE(c.erase(id));
  EXPECT_FALSE(c.erase(id));
  c.upsert("", make_doc("u", "i"));
  c.clear();
  EXPECT_EQ(c.size(), 0u);
}

TEST(Collection, ConcurrentInsertsAllLand) {
  Collection c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < 500; ++i) {
        c.upsert("", make_doc("user-" + std::to_string(t), std::to_string(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.size(), 2000u);
}

TEST(DocumentStore, CollectionsAreIndependentAndStable) {
  DocumentStore store;
  store.collection("events").upsert("", make_doc("u", "i"));
  store.collection("models").upsert("", make_doc("m", "x"));
  EXPECT_EQ(store.collection("events").size(), 1u);
  EXPECT_EQ(store.collection("models").size(), 1u);
  EXPECT_EQ(store.collection_names().size(), 2u);
  // Repeated access returns the same collection.
  Collection& a = store.collection("events");
  Collection& b = store.collection("events");
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace pprox::lrs
