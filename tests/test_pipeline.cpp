// Full-system integration: client -> UA -> IA -> LRS and back, over the
// in-process transport and over real TCP, with and without shuffling.
// Includes the paper's headline functional claims: transparency (identical
// recommendations with and without PProx) and LRS pseudonym-only storage.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "common/encoding.hpp"
#include "crypto/ctr.hpp"
#include "crypto/drbg.hpp"
#include "json/json.hpp"
#include "lrs/harness.hpp"
#include "net/tcp.hpp"
#include "pprox/deployment.hpp"

namespace pprox {
namespace {

using namespace std::chrono_literals;

DeploymentConfig fast_config() {
  DeploymentConfig config;
  config.shuffle_size = 0;
  return config;
}

TEST(Pipeline, PostAndGetThroughStub) {
  crypto::Drbg rng(to_bytes("pipe-stub"));
  lrs::StubServer stub;
  Deployment deployment(fast_config(), stub, rng);
  ClientLibrary client = deployment.make_client(&rng);

  EXPECT_TRUE(client.post_sync("alice", "movie-1").ok());
  // Stub items are not IA pseudonyms, so a full get round-trip needs the
  // real LRS; the stub path validates post and transport plumbing.
  EXPECT_EQ(deployment.ua_proxy(0).requests_seen(), 1u);
  EXPECT_EQ(deployment.ia_proxy(0).requests_seen(), 1u);
}

class PipelineHarnessTest : public ::testing::Test {
 protected:
  PipelineHarnessTest()
      : rng_(to_bytes("pipe-harness")),
        deployment_(fast_config(), lrs_, rng_),
        client_(deployment_.make_client(&rng_)) {}

  void seed_and_train() {
    // u1,u2 like A+B; u3 likes only C (so A is not universal); probe likes A.
    for (const auto& [u, i] : std::vector<std::pair<std::string, std::string>>{
             {"u1", "A"}, {"u1", "B"}, {"u2", "A"}, {"u2", "B"},
             {"u3", "C"}, {"probe", "A"}}) {
      ASSERT_TRUE(client_.post_sync(u, i).ok()) << u << "/" << i;
    }
    // Training is an offline batch job (Spark stand-in).
    lrs_.train();
  }

  crypto::Drbg rng_;
  lrs::HarnessServer lrs_;
  Deployment deployment_;
  ClientLibrary client_;
};

TEST_F(PipelineHarnessTest, EndToEndRecommendations) {
  seed_and_train();
  const auto recs = client_.get_sync("probe");
  ASSERT_TRUE(recs.ok()) << recs.error().message;
  ASSERT_FALSE(recs.value().empty());
  EXPECT_EQ(recs.value()[0], "B");  // strongest co-occurrence with A
  // Padding pseudo-items never reach the application.
  for (const auto& item : recs.value()) {
    EXPECT_EQ(item.find("__pprox_pad_"), std::string::npos);
  }
}

TEST_F(PipelineHarnessTest, RecommendationsIdenticalToUnprotectedLrs) {
  seed_and_train();
  // Reference run: same events into a fresh LRS, no PProx, plaintext ids.
  lrs::HarnessServer reference;
  for (const auto& [u, i] : std::vector<std::pair<std::string, std::string>>{
           {"u1", "A"}, {"u1", "B"}, {"u2", "A"}, {"u2", "B"},
           {"u3", "C"}, {"probe", "A"}}) {
    reference.post_event(u, i);
  }
  reference.train();
  const auto plain = json::parse(reference.query("probe").body);
  std::vector<std::string> expected;
  for (const auto& e : plain.value().find("items")->as_array()) {
    expected.push_back(e.as_string());
  }

  const auto through_pprox = client_.get_sync("probe");
  ASSERT_TRUE(through_pprox.ok());
  // The headline transparency claim: recommendation lists are identical.
  EXPECT_EQ(through_pprox.value(), expected);
}

TEST_F(PipelineHarnessTest, LrsNeverSeesPlaintextIdentifiers) {
  seed_and_train();
  // Inspect everything the LRS persisted: no plaintext user or item ids.
  bool saw_docs = false;
  // Reconstruct the pseudonyms the LRS should hold instead.
  std::set<std::string> plain_ids = {"u1", "u2", "u3", "probe",
                                     "A",  "B",  "C"};
  // Access the store via a fresh query for each user: the user_history
  // map keys are what the LRS believes user identifiers are.
  for (const auto& id : plain_ids) {
    EXPECT_TRUE(lrs_.user_history(id).empty())
        << "LRS knows plaintext id " << id;
  }
  lrs_.train();  // no-op effect; ensures store scan path also runs
  saw_docs = lrs_.event_count() > 0;
  EXPECT_TRUE(saw_docs);
}

TEST_F(PipelineHarnessTest, GetForUnknownUserReturnsEmpty) {
  seed_and_train();
  const auto recs = client_.get_sync("stranger");
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs.value().empty());  // padding fully stripped
}

TEST(PipelineShuffled, WorksWithShufflingEnabled) {
  crypto::Drbg rng(to_bytes("pipe-shuffle"));
  lrs::HarnessServer lrs;
  DeploymentConfig config;
  config.shuffle_size = 5;
  config.shuffle_timeout = 100ms;
  Deployment deployment(config, lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);

  // Fire 10 posts concurrently so buffers fill rather than waiting on the
  // timer, then one get (timer-flushed).
  std::vector<std::future<Status>> posts;
  std::vector<std::promise<Status>> promises(10);
  for (int i = 0; i < 10; ++i) {
    posts.push_back(promises[static_cast<std::size_t>(i)].get_future());
    client.post("user-" + std::to_string(i % 3), "item-" + std::to_string(i),
                [&promises, i](Status s) {
                  promises[static_cast<std::size_t>(i)].set_value(std::move(s));
                });
  }
  for (auto& f : posts) EXPECT_TRUE(f.get().ok());
  lrs.train();
  const auto recs = client.get_sync("user-0");
  EXPECT_TRUE(recs.ok()) << (recs.ok() ? "" : recs.error().message);
}

TEST(PipelineScaled, MultipleInstancesBalanceLoad) {
  crypto::Drbg rng(to_bytes("pipe-scaled"));
  lrs::HarnessServer lrs;
  DeploymentConfig config;
  config.ua_instances = 3;
  config.ia_instances = 2;
  Deployment deployment(config, lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(client.post_sync("u" + std::to_string(i), "i").ok());
  }
  // Round-robin: each UA instance saw 4, each IA instance saw 6.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(deployment.ua_proxy(i).requests_seen(), 4u);
  }
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(deployment.ia_proxy(i).requests_seen(), 6u);
  }
  // All instances of a layer share the layer secrets: pseudonyms agree, so
  // the LRS sees exactly 12 events for pseudonymous users.
  EXPECT_EQ(lrs.event_count(), 12u);
}

TEST(PipelineGcm, AuthenticatedResponsesRoundTrip) {
  crypto::Drbg rng(to_bytes("pipe-gcm"));
  lrs::HarnessServer lrs;
  DeploymentConfig config;
  config.authenticated_responses = true;
  Deployment deployment(config, lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);
  for (const auto& [u, i] : std::vector<std::pair<std::string, std::string>>{
           {"u1", "A"}, {"u1", "B"}, {"u2", "A"}, {"u2", "B"},
           {"u3", "C"}, {"probe", "A"}}) {
    ASSERT_TRUE(client.post_sync(u, i).ok());
  }
  lrs.train();
  const auto recs = client.get_sync("probe");
  ASSERT_TRUE(recs.ok()) << recs.error().message;
  ASSERT_FALSE(recs.value().empty());
  EXPECT_EQ(recs.value()[0], "B");
}

TEST(PipelineGcm, TamperedAuthenticatedResponseRejected) {
  // A corrupted GCM payload must fail decryption, not yield a garbled list.
  crypto::Drbg rng(to_bytes("pipe-gcm2"));
  const ApplicationKeys keys = ApplicationKeys::generate(rng);
  const IaLogic ia = IaLogic::from_secrets(keys.ia.serialize()).value();
  const Bytes k_u = rng.bytes(32);

  const crypto::DeterministicCipher det(keys.ia.k);
  json::JsonValue lrs_body{json::JsonObject{}};
  json::JsonArray items;
  items.emplace_back(
      base64_encode(det.encrypt(pad_identifier("movie-1").value())));
  lrs_body.set("items", std::move(items));
  auto response = ia.transform_get_response(lrs_body.dump(), k_u, rng,
                                            /*authenticated=*/true);
  ASSERT_TRUE(response.ok());

  // Intact response decodes...
  http::HttpResponse ok_resp =
      http::HttpResponse::json_response(200, response.value());
  ASSERT_TRUE(ClientLibrary::decode_get_response(ok_resp, k_u).ok());
  // ...tampered payload is rejected outright.
  std::string tampered = response.value();
  const auto span = json::find_string_field(tampered, "payload");
  ASSERT_TRUE(span.has_value());
  tampered[span->first + 20] =
      tampered[span->first + 20] == 'A' ? 'B' : 'A';
  http::HttpResponse bad_resp = http::HttpResponse::json_response(200, tampered);
  EXPECT_FALSE(ClientLibrary::decode_get_response(bad_resp, k_u).ok());

  // Contrast: plain CTR (the paper's mode) silently garbles instead.
  auto ctr_response = ia.transform_get_response(lrs_body.dump(), k_u, rng,
                                                /*authenticated=*/false);
  ASSERT_TRUE(ctr_response.ok());
  std::string ctr_tampered = ctr_response.value();
  const auto ctr_span = json::find_string_field(ctr_tampered, "payload");
  ctr_tampered[ctr_span->first + 40] =
      ctr_tampered[ctr_span->first + 40] == 'A' ? 'B' : 'A';
  http::HttpResponse ctr_bad =
      http::HttpResponse::json_response(200, ctr_tampered);
  const auto garbled = ClientLibrary::decode_get_response(ctr_bad, k_u);
  // Either the JSON block breaks (error) or the list silently changed —
  // never an authenticated rejection. Both outcomes are acceptable here;
  // the point is GCM gives the strictly stronger guarantee.
  (void)garbled;
}

TEST(PipelinePayload, RatingPayloadReachesLrsUsable) {
  crypto::Drbg rng(to_bytes("pipe-payload"));
  lrs::HarnessServer lrs;
  Deployment deployment(fast_config(), lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);

  ASSERT_TRUE(client.post_sync("rater", "movie-9", "4.5").ok());
  const auto rows = lrs.dump_event_rows();
  ASSERT_EQ(rows.size(), 1u);
  // The LRS gets the payload in usable (plaintext) form...
  EXPECT_EQ(rows[0].payload, "4.5");
  // ...while both identifiers stay pseudonymized.
  EXPECT_EQ(rows[0].user.find("rater"), std::string::npos);
  EXPECT_EQ(rows[0].item.find("movie-9"), std::string::npos);
}

TEST(PipelinePayload, PayloadWithJsonSpecialsSurvives) {
  crypto::Drbg rng(to_bytes("pipe-payload2"));
  lrs::HarnessServer lrs;
  Deployment deployment(fast_config(), lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);
  const std::string tricky = "she said \"5/5\"\n";
  ASSERT_TRUE(client.post_sync("u", "i", tricky).ok());
  ASSERT_EQ(lrs.dump_event_rows().size(), 1u);
  EXPECT_EQ(lrs.dump_event_rows()[0].payload, tricky);
}

TEST(PipelinePayload, OversizedPayloadRejectedClientSide) {
  crypto::Drbg rng(to_bytes("pipe-payload3"));
  lrs::HarnessServer lrs;
  Deployment deployment(fast_config(), lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);
  EXPECT_FALSE(client.post_sync("u", "i", std::string(kMaxIdLength + 1, 'x')).ok());
  EXPECT_EQ(lrs.event_count(), 0u);
}

TEST(PipelineErrors, LrsErrorPropagatesThroughBothLayers) {
  crypto::Drbg rng(to_bytes("pipe-err"));
  net::FunctionSink failing_lrs([](const http::HttpRequest&) {
    return http::HttpResponse::error_response(503, "db down");
  });
  Deployment deployment(fast_config(), failing_lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);
  EXPECT_FALSE(client.post_sync("u", "i").ok());
  const auto recs = client.get_sync("u");
  EXPECT_FALSE(recs.ok());
}

TEST(PipelineErrors, GarbageRequestRejectedAtUa) {
  crypto::Drbg rng(to_bytes("pipe-garbage"));
  lrs::StubServer stub;
  Deployment deployment(fast_config(), stub, rng);

  http::HttpRequest bogus;
  bogus.method = "POST";
  bogus.target = paths::kEvents;
  bogus.body = R"({"user":"plaintext-not-encrypted","item":"x"})";
  std::promise<http::HttpResponse> promise;
  auto future = promise.get_future();
  deployment.entry_channel()->send(std::move(bogus), [&promise](http::HttpResponse r) {
    promise.set_value(std::move(r));
  });
  EXPECT_EQ(future.get().status, 400);
  EXPECT_GE(deployment.ua_proxy(0).errors(), 1u);
}

// Configuration-matrix integration sweep: every combination of instance
// counts, shuffling, response mode, and payload use must round-trip
// correctly end to end.
struct MatrixParams {
  int ua;
  int ia;
  int shuffle;
  bool gcm;
  bool payload;
};

class PipelineMatrix : public ::testing::TestWithParam<MatrixParams> {};

TEST_P(PipelineMatrix, FullRoundTrip) {
  const auto p = GetParam();
  crypto::Drbg rng(to_bytes("pipe-matrix-" + std::to_string(p.ua) +
                            std::to_string(p.ia) + std::to_string(p.shuffle) +
                            std::to_string(p.gcm) + std::to_string(p.payload)));
  lrs::HarnessServer lrs;
  DeploymentConfig config;
  config.ua_instances = p.ua;
  config.ia_instances = p.ia;
  config.shuffle_size = p.shuffle;
  config.shuffle_timeout = 50ms;
  config.authenticated_responses = p.gcm;
  Deployment deployment(config, lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);

  for (const auto& [u, i] : std::vector<std::pair<std::string, std::string>>{
           {"u1", "A"}, {"u1", "B"}, {"u2", "A"}, {"u2", "B"},
           {"u3", "C"}, {"probe", "A"}}) {
    ASSERT_TRUE(client.post_sync(u, i, p.payload ? "5" : "").ok());
  }
  lrs.train();
  const auto recs = client.get_sync("probe");
  ASSERT_TRUE(recs.ok()) << recs.error().message;
  ASSERT_FALSE(recs.value().empty());
  EXPECT_EQ(recs.value()[0], "B");
  if (p.payload) {
    EXPECT_EQ(lrs.dump_event_rows()[0].payload, "5");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineMatrix,
    ::testing::Values(MatrixParams{1, 1, 0, false, false},
                      MatrixParams{1, 1, 0, true, true},
                      MatrixParams{2, 1, 3, false, true},
                      MatrixParams{1, 2, 3, true, false},
                      MatrixParams{3, 3, 4, true, true}));

TEST(PipelineBreach, PassiveBreachDoesNotDisruptService) {
  // The adversary observes but never interferes (paper §2.3): a breached
  // enclave keeps serving traffic — the operators just need to rotate.
  crypto::Drbg rng(to_bytes("pipe-breach"));
  lrs::HarnessServer lrs;
  Deployment deployment(fast_config(), lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);
  ASSERT_TRUE(client.post_sync("u1", "A").ok());
  deployment.ua_enclave(0).breach();
  deployment.ia_enclave(0).breach();
  EXPECT_TRUE(client.post_sync("u1", "B").ok());
  EXPECT_EQ(lrs.event_count(), 2u);
  const auto recs = client.get_sync("u1");
  EXPECT_TRUE(recs.ok());
}

TEST(PipelineTcp, FullStackOverRealSockets) {
  // client -> TCP -> UA -> TCP -> IA -> TCP -> LRS: three epoll servers.
  crypto::Drbg rng(to_bytes("pipe-tcp"));
  lrs::HarnessServer lrs;
  net::TcpServer lrs_server(0, lrs);

  // Manual assembly (Deployment wires in-proc; here we want sockets).
  enclave::AttestationService authority(rng);
  ApplicationKeys keys = ApplicationKeys::generate(rng);

  enclave::Enclave ia_enclave(kIaCodeIdentity, rng);
  authority.register_platform(ia_enclave);
  ASSERT_TRUE(attest_and_provision(ia_enclave, authority,
                                   enclave::Measurement::of_code(kIaCodeIdentity),
                                   keys.ia, rng)
                  .ok());
  ProxyOptions ia_options;
  ia_options.layer = ProxyOptions::Layer::kIa;
  ProxyServer ia_proxy(ia_options, ia_enclave,
                       std::make_shared<net::TcpChannel>(lrs_server.port(), 2));
  net::TcpServer ia_server(0, ia_proxy);

  enclave::Enclave ua_enclave(kUaCodeIdentity, rng);
  authority.register_platform(ua_enclave);
  ASSERT_TRUE(attest_and_provision(ua_enclave, authority,
                                   enclave::Measurement::of_code(kUaCodeIdentity),
                                   keys.ua, rng)
                  .ok());
  ProxyOptions ua_options;
  ua_options.layer = ProxyOptions::Layer::kUa;
  ProxyServer ua_proxy(ua_options, ua_enclave,
                       std::make_shared<net::TcpChannel>(ia_server.port(), 2));
  net::TcpServer ua_server(0, ua_proxy);

  ClientLibrary client(keys.client_params(),
                       std::make_shared<net::TcpChannel>(ua_server.port(), 2),
                       &rng);

  for (const auto& [u, i] : std::vector<std::pair<std::string, std::string>>{
           {"u1", "A"}, {"u1", "B"}, {"u2", "A"}, {"u2", "B"},
           {"u3", "C"}, {"probe", "A"}}) {
    ASSERT_TRUE(client.post_sync(u, i).ok());
  }
  lrs.train();
  const auto recs = client.get_sync("probe");
  ASSERT_TRUE(recs.ok()) << recs.error().message;
  ASSERT_FALSE(recs.value().empty());
  EXPECT_EQ(recs.value()[0], "B");
}

TEST(Autoscaler, RecommendedPairsMatchPaperScaling) {
  // Paper: 250 rps per pair, 1000 rps needs 4 pairs.
  EXPECT_EQ(recommend_instance_pairs(250, 250, 1.0), 1);
  EXPECT_EQ(recommend_instance_pairs(1000, 250, 1.0), 4);
  EXPECT_EQ(recommend_instance_pairs(1000, 250, 0.8), 5);  // with headroom
  EXPECT_EQ(recommend_instance_pairs(1, 250, 0.8), 1);
  EXPECT_THROW(recommend_instance_pairs(100, 0, 0.8), std::invalid_argument);
}

}  // namespace
}  // namespace pprox
