// Fixture: bare manual mutex operations — bump() calls .lock()/.unlock()
// directly on a declared Mutex member instead of using a RAII guard.
// Expected findings: one lock-manual per operation. The weak_ptr-style
// .lock() on a non-mutex receiver below must NOT fire.
// This file is analyzer input only — it is never compiled into a target.

namespace fixture {

class Mutex {
 public:
  void lock();
  void unlock();
};

struct Handle {
  int* lock();
};

class Counter {
 public:
  void bump() {
    mu_.lock();
    ++n_;
    mu_.unlock();
  }
  int* peek() { return handle_.lock(); }

 private:
  Mutex mu_;
  Handle handle_;
  int n_ = 0;
};

}  // namespace fixture
