#!/usr/bin/env bash
# Golden-file runner for the pprox_lint fixture suite.
#
#   run_fixture.sh LINT_BIN MODE FIXTURE.cpp EXPECTED
#
# MODE is any pass flag pprox_lint understands (`hotpath`, `locks`, `ct`,
# `lifetime`, `flow`). The fixture is linted on its own; findings are
# normalized and diffed against EXPECTED. Every key-emitting pass shares one
# invocation path (--MODE --json, sorted baseline keys); `flow` is the one
# odd duck (no --json, so its [rule] stderr tags are the normal form). The
# lint exit code must also agree with the golden: a non-empty EXPECTED
# demands exit 1, an empty one exit 0 — so a fixture that stops firing OR an
# analyzer that stops failing both break the test.
set -u

if [[ $# -ne 4 ]]; then
  echo "usage: $0 LINT_BIN MODE FIXTURE EXPECTED" >&2
  exit 2
fi
lint="$1" mode="$2" fixture="$3" expected="$4"

cd "$(dirname "$fixture")" || exit 2
name="$(basename "$fixture")"

case "$mode" in
  hotpath|locks|ct|lifetime)
    raw="$("$lint" "--$mode" --json "$name" 2>/dev/null)"
    rc=$?
    got="$(printf '%s' "$raw" | grep -o '"key": "[^"]*"' |
           sed 's/^"key": "//; s/"$//' | sort)"
    ;;
  flow)
    raw="$("$lint" --flow "$name" 2>&1)"
    rc=$?
    got="$(printf '%s' "$raw" | grep -oE '\[[a-z-]+\]' | sort)"
    ;;
  *)
    echo "unknown mode '$mode'" >&2
    exit 2
    ;;
esac

want_rc=0
[[ -s "$expected" ]] && want_rc=1
if [[ "$rc" -ne "$want_rc" ]]; then
  echo "FAIL $name: lint exit $rc, expected $want_rc" >&2
  printf '%s\n' "$raw" >&2
  exit 1
fi

if ! diff -u "$expected" <(printf '%s' "$got"; [[ -n "$got" ]] && echo); then
  echo "FAIL $name: findings differ from golden $expected" >&2
  exit 1
fi
echo "PASS $name"
