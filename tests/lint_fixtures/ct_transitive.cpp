// ct fixture: taint must travel two call hops through per-function
// summaries — the root seeds a secret, an un-annotated middle function
// forwards it, and the leaf branches on its (locally innocent) parameter.
// The finding anchors at the leaf sink with the full chain.
int leaf_cmp(int value) {
  if (value != 0) return 1;  // sink: tainted only via callers
  return 0;
}

int middle_hop(int v) { return leaf_cmp(v); }

int root_source() {
  const int secret_word = 3;
  return middle_hop(secret_word);
}
