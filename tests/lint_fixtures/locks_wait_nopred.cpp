// Fixture: a predicate-less CondVar wait — park() waits on cv_ with only
// the lock argument, so a spurious wakeup resumes with the invariant
// unchecked. Expected finding: wait-nopred. The wait releases the only
// held lock, so no lock-blocking fires (the exemption).
// This file is analyzer input only — it is never compiled into a target.

namespace fixture {

class Mutex {};
class UniqueLock {
 public:
  explicit UniqueLock(Mutex&);
};
class CondVar {
 public:
  void wait(UniqueLock&);
};

class Waiter {
 public:
  void park() {
    UniqueLock lk(mu_);
    cv_.wait(lk);
  }

 private:
  Mutex mu_;
  CondVar cv_;
};

}  // namespace fixture
