// ct fixture: a bare suppression (no ": <why>") must be reported itself AND
// must not silence the underlying finding — both keys appear.
int ct_fixture_route(int secret_mode) {
  if (secret_mode != 0) return 1;  // PPROX-CT-OK(branch)
  return 0;
}
