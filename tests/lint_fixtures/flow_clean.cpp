// PPROX-LAYER: shared
//
// Fixture: a well-behaved shared-layer unit. Declares its layer, references
// no domain-plaintext symbols, uses no raw sync or banned crypto APIs.
// Expected findings: none, in both flow mode and the hotpath pass.

namespace fixture {

inline int add_checked(int a, int b) {
  return a + b;
}

}  // namespace fixture
