// ct fixture: routing a secret through ct_reveal (the audited
// declassification gate) makes the result public — no finding. This is the
// negative case pinning the ct_-prefix publicity rule.
template <typename T>
T ct_reveal(T v) {
  return v;
}

int ct_fixture_check(int secret_ok) {
  const int revealed = ct_reveal(secret_ok);
  if (revealed != 0) return 1;  // clean: branches on the declassified copy
  return 0;
}
