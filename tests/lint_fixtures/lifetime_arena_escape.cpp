// Fixture: lifetime-arena-escape (pprox_lint --lifetime).
// Views of per-connection / per-batch buffers (the in_buffer/out_buffer
// arenas the zero-copy plane recycles after every handler) must not be
// stored past the handler's return. Pins the direct member-container store
// and the transitive store through an escapes-param summary; the copying
// store is the negative.
// Analyzer input only — never compiled into a target.
#include <string>
#include <string_view>
#include <vector>

struct Conn {
  std::vector<unsigned char> in_buffer;  // recycled after every handler
};

// Direct: a view of the connection arena outlives the handler.
struct Handler {
  std::vector<std::string_view> headers_;
  void on_readable(Conn& conn) {
    std::string_view line(reinterpret_cast<const char*>(conn.in_buffer.data()), 16);
    headers_.push_back(line);
  }
};

// Summary: remember() stores its view parameter as-is...
struct Router {
  std::vector<std::string_view> routes_;
  void remember(std::string_view route) { routes_.push_back(route); }
};

// ...so handing it an arena view escapes transitively.
void dispatch(Router& router, Conn& conn) {
  std::string_view path(reinterpret_cast<const char*>(conn.in_buffer.data()), 8);
  router.remember(path);
}

// Negative: append() copies the bytes out of the arena before it returns.
struct Accumulator {
  std::string text_;
  void keep(Conn& conn) {
    std::string_view v(reinterpret_cast<const char*>(conn.in_buffer.data()), 4);
    text_.append(v);
  }
};
