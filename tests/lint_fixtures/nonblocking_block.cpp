// Fixture: a PPROX_NONBLOCKING function takes a lock through a helper.
// Expected finding: nonblocking-block (LockGuard construction is a blocking
// leaf). The PPROX_HOT-only sibling is clean: HOT allows locks by design
// ("lock-light, not lock-free") — only NONBLOCKING forbids them.
#define PPROX_HOT
#define PPROX_NONBLOCKING

namespace fixture {

struct Mutex {};
struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Counter {
  Mutex mu;
  int value = 0;

  void bump() {
    LockGuard lock(mu);
    ++value;
  }
};

PPROX_NONBLOCKING void nonblocking_bump(Counter& c) {
  c.bump();
}

PPROX_HOT void hot_bump_is_fine(Counter& c) {
  c.bump();
}

}  // namespace fixture
