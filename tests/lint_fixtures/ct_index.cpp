// ct fixture: a secret-indexed table load must fire ct-index — the cache
// set touched depends on the secret byte (classic S-box leak shape).
extern const unsigned char kTable[256];

unsigned char ct_fixture_lookup(unsigned char secret_byte) {
  return kTable[secret_byte];  // leak: secret-dependent cache line
}
