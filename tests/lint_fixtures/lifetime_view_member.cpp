// Fixture: lifetime-view-member (pprox_lint --lifetime).
// A view-typed data member means the object aliases bytes it does not own:
// every use after the source buffer dies is a dangling read, and nothing in
// the type system ties the two lifetimes together. The owning sibling and
// the view-typed local are the negatives.
// Analyzer input only — never compiled into a target.
#include <string>
#include <string_view>

struct Index {
  std::string_view key_;   // violation: whose bytes are these?
  std::string payload_;    // negative: owning member is fine
};

// Negative: view-typed locals are scoped to the frame — not this rule.
void scan(std::string_view hay) {
  std::string_view cursor = hay;
  (void)cursor;
}
