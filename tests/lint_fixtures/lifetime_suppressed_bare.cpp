// Fixture: bare PPROX-LIFETIME-OK suppression (pprox_lint --lifetime).
// A suppression without a ': <why>' is itself a finding and never enters a
// baseline — the justification is the product.
// Analyzer input only — never compiled into a target.
#include <string>
#include <string_view>

std::string_view spill() {
  std::string local = "oops";
  std::string_view v = local;
  // PPROX-LIFETIME-OK(return)
  return v;
}
