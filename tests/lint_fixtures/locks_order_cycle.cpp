// Fixture: a lock-order cycle built interprocedurally — ab() holds a_ and
// reaches the b_ acquisition through take_b(), while ba() acquires b_ then
// a_ directly. Expected finding: one lock-order cycle keyed on the
// lexicographically smallest lock, carrying both acquisition chains.
// This file is analyzer input only — it is never compiled into a target.

namespace fixture {

class Mutex {};
class LockGuard {
 public:
  explicit LockGuard(Mutex&);
};

class Pair {
 public:
  void ab() {
    LockGuard g(a_);
    take_b();
  }
  void ba() {
    LockGuard g(b_);
    LockGuard h(a_);
  }

 private:
  void take_b() { LockGuard g(b_); }
  Mutex a_;
  Mutex b_;
};

}  // namespace fixture
