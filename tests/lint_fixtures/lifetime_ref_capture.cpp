// Fixture: lifetime-ref-capture-escape (pprox_lint --lifetime).
// A lambda handed to a sink that outlives the frame (pool submit, queue,
// thread) must not capture locals by reference or `this` without a pin.
// Pins the direct by-ref case, the unowned-sink `this` case, and the
// transitive case through an escapes-param summary; the negatives cover
// by-value capture, a member-owned sink, and a weak_ptr guard.
// Analyzer input only — never compiled into a target.
#include <functional>
#include <memory>
#include <utility>

struct ThreadPool {
  void submit(std::function<void()> fn);
};

// Direct: `counter` is dead long before the pool runs the callback.
void fire_and_forget(ThreadPool& pool) {
  int counter = 0;
  pool.submit([&] { ++counter; });
}

// `this` into a pool this object does not own: the Emitter can be destroyed
// while the callback is still queued.
struct Emitter {
  void arm(ThreadPool& pool) {
    pool.submit([this] { fire(); });
  }
  void fire();
};

// Summary: defer_to_pool stores its callable parameter past its return...
struct Relay {
  ThreadPool* pool_;
  void defer_to_pool(std::function<void()> fn) {
    pool_->submit(std::move(fn));
  }
};

// ...so a by-ref lambda passed to it escapes transitively.
void transitive_escape(Relay& relay) {
  int counter = 0;
  relay.defer_to_pool([&] { ++counter; });
}

// Negative: by-value capture owns its state.
void by_value(ThreadPool& pool) {
  int counter = 0;
  pool.submit([counter]() mutable { ++counter; });
}

// Negative: the sink is a member — ~Owner joins workers_ before the object
// dies, so `this` cannot dangle (ThreadPool discipline, DESIGN.md §14.3).
struct Owner {
  ThreadPool workers_;
  int hits_ = 0;
  void kick() {
    workers_.submit([this] { ++hits_; });
  }
};

// Negative: weak_ptr pin — the callback checks liveness before touching us.
struct Guarded : std::enable_shared_from_this<Guarded> {
  void arm(ThreadPool& pool) {
    pool.submit([self = weak_from_this()] { (void)self; });
  }
};
