// Fixture: the same direct allocation as direct_alloc.cpp, but carrying a
// justified suppression on the leaf line. Expected findings: none — the
// reason clause makes the suppression effective.
#define PPROX_HOT

namespace fixture {

struct Buf {
  char* data = nullptr;
};

PPROX_HOT void hot_justified(Buf& b) {
  b.data = new char[64];  // PPROX-HOTPATH-OK(alloc): one-time warmup buffer, freed at shutdown
}

}  // namespace fixture
