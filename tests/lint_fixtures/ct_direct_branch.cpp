// ct fixture: a secret-named value used directly as a branch condition must
// fire ct-branch at the use site, rooted in the same function.
int ct_fixture_direct(int secret_flag) {
  if (secret_flag != 0) return 1;  // leak: instruction count keys to secret
  return 0;
}
