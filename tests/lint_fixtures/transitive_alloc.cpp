// Fixture: allocation reached transitively through two un-annotated helper
// levels. Expected finding: hot-alloc with the full three-hop chain
// hot_entry -> level_one -> level_two (push_back leaf); the helpers
// themselves produce no findings because only the root is annotated.
#define PPROX_HOT
#include <vector>

namespace fixture {

inline void level_two(std::vector<int>& out, int v) {
  out.push_back(v);
}

inline void level_one(std::vector<int>& out, int v) {
  level_two(out, v + 1);
}

PPROX_HOT void hot_entry(std::vector<int>& out) {
  level_one(out, 7);
}

}  // namespace fixture
