// Fixture: mutual recursion under a PPROX_HOT root. Expected findings:
// hot-recursion — the ping/pong pair forms a nontrivial SCC, each member
// gets a recursion-cycle leaf, and the hot root reaches both.
#define PPROX_HOT

namespace fixture {

int pong(int v);

int ping(int v) { return v <= 0 ? v : pong(v - 1); }

int pong(int v) { return v <= 0 ? v : ping(v - 1); }

PPROX_HOT int hot_bounce(int v) {
  return ping(v);
}

}  // namespace fixture
