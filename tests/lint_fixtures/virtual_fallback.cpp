// Fixture: a hot function dispatches through a base-class pointer. The
// analyzer cannot devirtualize, so the documented fallback resolves the
// member call to every scanned function named `handle` — including the
// allocating override. Expected finding: hot-alloc through
// hot_dispatch -> AllocatingHandler::handle.
#define PPROX_HOT
#include <string>

namespace fixture {

class Handler {
 public:
  virtual ~Handler() = default;
  virtual void handle(int v) = 0;
};

class AllocatingHandler : public Handler {
 public:
  void handle(int v) override { log_.append(1, static_cast<char>(v)); }

 private:
  std::string log_;
};

PPROX_HOT void hot_dispatch(Handler* h) {
  h->handle(42);
}

}  // namespace fixture
