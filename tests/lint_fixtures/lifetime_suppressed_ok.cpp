// Fixture: justified PPROX-LIFETIME-OK suppressions (pprox_lint --lifetime).
// Each violation below carries an aspect-scoped suppression with a why, so
// the fixture must lint clean (empty golden, exit 0).
// Analyzer input only — never compiled into a target.
#include <functional>
#include <string>
#include <string_view>

std::string_view cached() {
  static std::string storage = "interned for the process lifetime";
  std::string_view v = storage;
  // PPROX-LIFETIME-OK(return): storage is function-static; the view never dangles
  return v;
}

struct Interner {
  // PPROX-LIFETIME-OK(member): table_ aliases the process-lifetime intern pool
  std::string_view table_;
};

struct Pool {
  void submit(std::function<void()> fn);
  void drain();
};

void flush(Pool& pool) {
  int pending = 0;
  // PPROX-LIFETIME-OK(capture): drain() below joins every callback before the frame exits
  pool.submit([&] { ++pending; });
  pool.drain();
}
