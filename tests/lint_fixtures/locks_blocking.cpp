// Fixture: blocking while locked, transitively — tick() holds mu_ across a
// call to nap(), which reaches a sleep two frames from the acquisition.
// Expected finding: lock-blocking rooted at tick() (where the lock is
// held), with the chain down to the sleep_for leaf.
// This file is analyzer input only — it is never compiled into a target.

namespace fixture {

class Mutex {};
class LockGuard {
 public:
  explicit LockGuard(Mutex&);
};

class Svc {
 public:
  void tick() {
    LockGuard g(mu_);
    nap();
  }

 private:
  void nap() { idle(); }
  void idle() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }
  Mutex mu_;
};

}  // namespace fixture
