// ct fixture: a justified suppression with an aspect and a reason silences
// the finding on its line (and a comment-only marker covers the line below).
int ct_fixture_route(int secret_mode) {
  // PPROX-CT-OK(branch): fixture justification — this value is public here.
  if (secret_mode != 0) return 1;
  return 0;
}
