// Fixture: the same manual mutex operations as locks_manual.cpp, but each
// carrying a justified suppression. Expected findings: none — the reason
// clause makes the suppression effective.
// This file is analyzer input only — it is never compiled into a target.

namespace fixture {

class Mutex {
 public:
  void lock();
  void unlock();
};

class Gauge {
 public:
  void sample() {
    mu_.lock();  // PPROX-LOCKS-OK(manual): interrupt handler; guard dtor would run after the window closed
    ++n_;
    mu_.unlock();  // PPROX-LOCKS-OK(manual): mirrors the lock above
  }

 private:
  Mutex mu_;
  int n_ = 0;
};

}  // namespace fixture
