// Fixture: a PPROX_HOT function that allocates directly. Expected finding:
// hot-alloc rooted and leafed at the same function (chain of length one).
// This file is analyzer input only — it is never compiled into a target.
#define PPROX_HOT
#define PPROX_NONBLOCKING

namespace fixture {

struct Buf {
  char* data = nullptr;
};

PPROX_HOT void hot_direct(Buf& b) {
  b.data = new char[64];
}

}  // namespace fixture
