// Fixture: a suppression comment with no ": reason" clause. Expected
// findings: hotpath-bare-suppression (the bare form is itself an error) AND
// the underlying hot-alloc — a justification-free suppression hides nothing.
#define PPROX_HOT

namespace fixture {

struct Buf {
  char* data = nullptr;
};

PPROX_HOT void hot_bare(Buf& b) {
  b.data = new char[64];  // PPROX-HOTPATH-OK(alloc)
}

}  // namespace fixture
