// PPROX-LAYER: ua
//
// Fixture: a UA-layer unit that references an item-plaintext symbol — the
// exact confinement the flow lint exists to catch (the User Anonymizer must
// never observe item identifiers, paper §4.2). Expected findings: flow-layer
// for the ItemId reference, plus the crypto "rand" rule for the libc PRNG.
#include <cstdlib>

namespace fixture {

struct ItemId {
  int v = 0;
};

inline int leak_item(const ItemId& item) {
  return item.v + rand();
}

}  // namespace fixture
