// Fixture: lifetime-return-local (pprox_lint --lifetime).
// A view-returning function must not return a view of a local or of an
// owning temporary. Pins the direct case, the materialized-temporary case,
// and the transitive case through a returns-view-of-param summary; the
// param pass-through at the bottom is the negative (the caller decides).
// Analyzer input only — never compiled into a target.
#include <string>
#include <string_view>

// Direct: the view's bytes die with the frame.
std::string_view direct_dangle() {
  std::string local = "transient payload";
  std::string_view v = local;
  return v;
}

// An owning temporary materialized straight into the returned view.
std::string_view temp_dangle() {
  return std::string("materialized then destroyed");
}

// Summary: suffix returns a view of its parameter...
std::string_view suffix(std::string_view s) { return s.substr(1); }

// ...so feeding it a local dangles transitively.
std::string_view via_helper() {
  std::string local = "also transient";
  return suffix(local);
}

// Negative: a view of a parameter flows out — the bytes belong to the
// caller, which is the whole point of taking string_view arguments.
std::string_view pass_through(std::string_view s) { return s; }
