// Fixture: a lock held across the enclave boundary — call_locked() holds
// mu_ while invoking a PPROX_ECALL_BOUNDARY-annotated function. Expected
// finding: lock-ecall rooted at call_locked() with the boundary function's
// annotation as the leaf token.
// This file is analyzer input only — it is never compiled into a target.
#define PPROX_ECALL_BOUNDARY

namespace fixture {

class Mutex {};
class LockGuard {
 public:
  explicit LockGuard(Mutex&);
};

class Enclave {
 public:
  PPROX_ECALL_BOUNDARY void enter() {}
};

class Host {
 public:
  void call_locked() {
    LockGuard g(mu_);
    enclave_.enter();
  }

 private:
  Mutex mu_;
  Enclave enclave_;
};

}  // namespace fixture
