// Fixture: a bare lock-discipline suppression — the lock() line carries the
// marker without a ": <why>" clause. Expected findings: the bare
// suppression itself AND the underlying lock-manual (the bare form
// suppresses nothing). The unlock() line's justified suppression holds.
// This file is analyzer input only — it is never compiled into a target.

namespace fixture {

class Mutex {
 public:
  void lock();
  void unlock();
};

class Gauge {
 public:
  void sample() {
    mu_.lock();  // PPROX-LOCKS-OK(manual)
    ++n_;
    mu_.unlock();  // PPROX-LOCKS-OK(manual): mirrors the lock above
  }

 private:
  Mutex mu_;
  int n_ = 0;
};

}  // namespace fixture
