// Differential and known-answer tests for the crypto dispatch layer
// (crypto/accel.hpp). Every accelerated kernel — AES-NI block encryption,
// pipelined CTR, CLMUL GHASH, Montgomery modexp — is validated two ways:
//  1. NIST vectors under BOTH backends (the same vector suite the portable
//     path already passes must pass bit-identically on the hardware path);
//  2. randomized differential runs with a fixed Drbg seed, comparing the
//     accelerated output byte-for-byte against the portable reference.
// The whole binary is additionally registered twice in ctest: once as-is
// and once with PPROX_DISABLE_ACCEL=1 (see tests/CMakeLists.txt), so even
// the "auto" codepaths get exercised under both resolutions.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/accel.hpp"
#include "crypto/aes.hpp"
#include "crypto/bigint.hpp"
#include "crypto/ctr.hpp"
#include "crypto/drbg.hpp"
#include "crypto/gcm.hpp"
#include "crypto/rsa.hpp"

namespace pprox::crypto {
namespace {

Bytes from_hex_bytes(std::string_view hex) {
  const auto nib = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
    return static_cast<std::uint8_t>(c - 'A' + 10);
  };
  Bytes out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nib(hex[i]) << 4) | nib(hex[i + 1])));
  }
  return out;
}

/// Restores whatever backend resolution was active before each test, so a
/// test that pins kPortable/kAccelerated can't leak into its neighbours.
class AccelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = accel::active_backend(); }
  void TearDown() override { accel::select_backend(saved_); }

  /// Runs `fn` once per selectable backend (always portable; accelerated
  /// only if this CPU has it and returns true from select_backend).
  template <typename Fn>
  void for_each_backend(Fn&& fn) {
    ASSERT_TRUE(accel::select_backend(accel::Backend::kPortable));
    fn(accel::Backend::kPortable);
    if (accel::available()) {
      ASSERT_TRUE(accel::select_backend(accel::Backend::kAccelerated));
      fn(accel::Backend::kAccelerated);
    }
  }

 private:
  accel::Backend saved_ = accel::Backend::kAuto;
};

TEST_F(AccelTest, BackendSelectionContract) {
  ASSERT_TRUE(accel::select_backend(accel::Backend::kPortable));
  EXPECT_EQ(accel::active_backend(), accel::Backend::kPortable);
  EXPECT_STREQ(accel::aes_ops().name, "aes-portable");
  EXPECT_STREQ(accel::ghash_ops().name, "ghash-portable");
  EXPECT_FALSE(accel::montgomery_active());

  if (accel::available()) {
    ASSERT_TRUE(accel::select_backend(accel::Backend::kAccelerated));
    EXPECT_EQ(accel::active_backend(), accel::Backend::kAccelerated);
    EXPECT_STREQ(accel::aes_ops().name, "aes-ni");
    EXPECT_STREQ(accel::ghash_ops().name, "ghash-clmul");
    EXPECT_TRUE(accel::montgomery_active());
  } else {
    EXPECT_FALSE(accel::select_backend(accel::Backend::kAccelerated));
  }

  // kAuto honours PPROX_DISABLE_ACCEL; with it set the resolved backend must
  // be portable even on capable hardware.
  ASSERT_TRUE(accel::select_backend(accel::Backend::kAuto));
  if (accel::disabled_by_env()) {
    EXPECT_EQ(accel::active_backend(), accel::Backend::kPortable);
    EXPECT_FALSE(accel::montgomery_active());
  } else if (accel::available()) {
    EXPECT_EQ(accel::active_backend(), accel::Backend::kAccelerated);
  }
}

// --- AES known answers under both backends --------------------------------

TEST_F(AccelTest, Fips197Aes256VectorBothBackends) {
  // FIPS-197 Appendix C.3.
  const Bytes key = from_hex_bytes(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex_bytes("00112233445566778899aabbccddeeff");
  const Bytes ct = from_hex_bytes("8ea2b7ca516745bfeafc49904b496089");
  for_each_backend([&](accel::Backend) {
    Aes aes(key);
    std::uint8_t block[16];
    std::memcpy(block, pt.data(), 16);
    aes.encrypt_block(block);
    EXPECT_EQ(0, std::memcmp(block, ct.data(), 16));
    aes.decrypt_block(block);
    EXPECT_EQ(0, std::memcmp(block, pt.data(), 16));
  });
}

TEST_F(AccelTest, Sp80038aCtrVectorBothBackends) {
  // NIST SP 800-38A F.5.5 (CTR-AES256.Encrypt), all four blocks.
  const Bytes key = from_hex_bytes(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  const std::array<std::uint8_t, 16> iv = {0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5,
                                           0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb,
                                           0xfc, 0xfd, 0xfe, 0xff};
  const Bytes pt = from_hex_bytes(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes ct = from_hex_bytes(
      "601ec313775789a5b7a7f504bbf3d228"
      "f443e3ca4d62b59aca84e990cacaf5c5"
      "2b0930daa23de94ce87017ba2d84988d"
      "dfc9c58db67aada613c2dd08457941a6");
  for_each_backend([&](accel::Backend) {
    Aes aes(key);
    EXPECT_EQ(ctr_crypt(aes, iv, pt), ct);
    EXPECT_EQ(ctr_crypt(aes, iv, ct), pt);
  });
}

TEST_F(AccelTest, GcmVectorBothBackends) {
  // NIST GCM test case 16 (AES-256, AAD, 60-byte plaintext).
  const Bytes key = from_hex_bytes(
      "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
  const Bytes nonce_bytes = from_hex_bytes("cafebabefacedbaddecaf888");
  const Bytes pt = from_hex_bytes(
      "d9313225f88406e5a55909c5aff5269a"
      "86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525"
      "b16aedf5aa0de657ba637b39");
  const Bytes aad = from_hex_bytes("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const Bytes ct = from_hex_bytes(
      "522dc1f099567d07f47f37a32a84427d"
      "643a8cdcbfe5c0c97598a2bd2555d1aa"
      "8cb08e48590dbb3da7b08b1056828838"
      "c5f61e6393ba7a0abcc9f662");
  const Bytes tag = from_hex_bytes("76fc6ece0f4e1768cddf8853bb2d551b");
  std::array<std::uint8_t, AesGcm::kNonceSize> nonce{};
  std::memcpy(nonce.data(), nonce_bytes.data(), nonce.size());

  for_each_backend([&](accel::Backend) {
    AesGcm gcm(key);
    const Bytes sealed = gcm.seal(nonce, pt, aad);
    ASSERT_EQ(sealed.size(), ct.size() + tag.size());
    EXPECT_EQ(0, std::memcmp(sealed.data(), ct.data(), ct.size()));
    EXPECT_EQ(0, std::memcmp(sealed.data() + ct.size(), tag.data(), tag.size()));
    const auto opened = gcm.open(nonce, sealed, aad);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(opened.value(), pt);
  });
}

// --- Randomized differential: accelerated vs portable ---------------------

TEST_F(AccelTest, CtrDifferentialAllSizes) {
  if (!accel::available()) GTEST_SKIP() << "no hardware acceleration";
  const Bytes seed(32, 0x5a);
  Drbg rng{ByteView(seed)};
  Bytes key(32);
  rng.fill(MutByteView(key));
  Aes aes(key);

  // Sizes 0..257 cover every batch-boundary case: empty, sub-block, exact
  // 8-block pipeline fills, and ragged tails past one and two full batches.
  for (std::size_t size = 0; size <= 257; ++size) {
    std::array<std::uint8_t, 16> iv{};
    rng.fill(MutByteView(iv.data(), iv.size()));
    Bytes data(size);
    rng.fill(MutByteView(data));

    ASSERT_TRUE(accel::select_backend(accel::Backend::kPortable));
    const Bytes portable = ctr_crypt(aes, iv, data);
    ASSERT_TRUE(accel::select_backend(accel::Backend::kAccelerated));
    const Bytes accelerated = ctr_crypt(aes, iv, data);
    ASSERT_EQ(portable, accelerated) << "CTR mismatch at size " << size;
  }
}

TEST_F(AccelTest, GcmDifferentialAllSizes) {
  if (!accel::available()) GTEST_SKIP() << "no hardware acceleration";
  const Bytes seed(32, 0xc3);
  Drbg rng{ByteView(seed)};
  Bytes key(32);
  rng.fill(MutByteView(key));

  for (std::size_t size = 0; size <= 257; size += 7) {
    std::array<std::uint8_t, AesGcm::kNonceSize> nonce{};
    rng.fill(MutByteView(nonce.data(), nonce.size()));
    Bytes data(size);
    rng.fill(MutByteView(data));
    Bytes aad(size % 33);
    rng.fill(MutByteView(aad));

    ASSERT_TRUE(accel::select_backend(accel::Backend::kPortable));
    AesGcm gcm_portable(key);
    const Bytes sealed_portable = gcm_portable.seal(nonce, data, aad);
    ASSERT_TRUE(accel::select_backend(accel::Backend::kAccelerated));
    AesGcm gcm_accel(key);
    const Bytes sealed_accel = gcm_accel.seal(nonce, data, aad);
    ASSERT_EQ(sealed_portable, sealed_accel) << "GCM mismatch at size " << size;

    // Cross-open: accelerated must open what portable sealed and vice versa.
    const auto cross = gcm_accel.open(nonce, sealed_portable, aad);
    ASSERT_TRUE(cross.ok());
    EXPECT_EQ(cross.value(), data);
  }
}

TEST_F(AccelTest, Gf128MulDifferential) {
  if (!accel::available()) GTEST_SKIP() << "no hardware acceleration";
  const Bytes seed(32, 0x11);
  Drbg rng{ByteView(seed)};
  ASSERT_TRUE(accel::select_backend(accel::Backend::kAccelerated));
  for (int iter = 0; iter < 2000; ++iter) {
    std::uint8_t x[16], y[16], ref[16];
    rng.fill(MutByteView(x, 16));
    rng.fill(MutByteView(y, 16));
    std::memcpy(ref, x, 16);
    gf128_mul_portable(ref, y);  // ground truth
    gf128_mul(x, y);             // dispatches to CLMUL
    ASSERT_EQ(0, std::memcmp(x, ref, 16)) << "gf128 mismatch, iter " << iter;
  }
  // Edge operands the random sweep is unlikely to hit.
  const std::uint8_t kEdges[][16] = {
      {},                                                    // zero
      {0x80},                                                // the element "1"
      {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x01},  // x^127
      {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
       0xff, 0xff, 0xff, 0xff},
  };
  for (const auto& a : kEdges) {
    for (const auto& b : kEdges) {
      std::uint8_t x[16], ref[16];
      std::memcpy(x, a, 16);
      std::memcpy(ref, a, 16);
      gf128_mul_portable(ref, b);
      gf128_mul(x, b);
      ASSERT_EQ(0, std::memcmp(x, ref, 16));
    }
  }
}

TEST_F(AccelTest, EncryptBlocksMatchesRepeatedSingleBlocks) {
  if (!accel::available()) GTEST_SKIP() << "no hardware acceleration";
  const Bytes seed(32, 0x77);
  Drbg rng{ByteView(seed)};
  Bytes key(32);
  rng.fill(MutByteView(key));
  Aes aes(key);
  ASSERT_TRUE(accel::select_backend(accel::Backend::kAccelerated));

  for (std::size_t nblocks : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{4}, std::size_t{5}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{16},
                              std::size_t{17}, std::size_t{31}}) {
    Bytes in(16 * nblocks);
    rng.fill(MutByteView(in));
    Bytes batched(in.size());
    aes.encrypt_blocks(in.data(), batched.data(), nblocks);
    Bytes single = in;
    for (std::size_t b = 0; b < nblocks; ++b) {
      aes.encrypt_block(single.data() + 16 * b);
    }
    EXPECT_EQ(batched, single) << "nblocks=" << nblocks;

    // Decrypt path (AESIMC-transformed schedule) must invert the batch,
    // in place.
    aes.decrypt_blocks(batched.data(), batched.data(), nblocks);
    EXPECT_EQ(batched, in) << "nblocks=" << nblocks;
  }
}

// --- Montgomery modexp ----------------------------------------------------

TEST_F(AccelTest, MontgomeryMatchesDivmodRandomOddModuli) {
  const Bytes seed(32, 0x42);
  Drbg rng{ByteView(seed)};
  for (std::size_t bits : {33u, 64u, 96u, 256u, 512u, 1024u}) {
    for (int iter = 0; iter < 8; ++iter) {
      BigInt n = BigInt::random_with_bits(bits, rng);
      if (!n.is_odd()) n = n + BigInt(1);
      const BigInt base = BigInt::random_below(n + n, rng);  // may exceed n
      const BigInt exp = BigInt::random_with_bits(bits / 2 + 1, rng);
      EXPECT_EQ(base.modexp_montgomery(exp, n), base.modexp_divmod(exp, n))
          << "bits=" << bits << " iter=" << iter;
    }
  }
}

TEST_F(AccelTest, MontgomeryEdgeCases) {
  const BigInt one(1);
  const BigInt n = BigInt::from_hex("f123456789abcdef1");  // odd
  // Exponent zero -> 1 mod n.
  EXPECT_EQ(BigInt(12345).modexp_montgomery(BigInt(), n), one);
  // Modulus one -> 0.
  EXPECT_TRUE(BigInt(7).modexp_montgomery(BigInt(5), one).is_zero());
  // Zero base.
  EXPECT_TRUE(BigInt().modexp_montgomery(BigInt(3), n).is_zero());
  // Base >= modulus reduces first.
  EXPECT_EQ((n + BigInt(2)).modexp_montgomery(BigInt(10), n),
            BigInt(2).modexp_montgomery(BigInt(10), n));
  // Even or zero modulus is a caller error.
  EXPECT_THROW(BigInt(3).modexp_montgomery(BigInt(2), BigInt(10)),
               std::domain_error);
  EXPECT_THROW(BigInt(3).modexp_montgomery(BigInt(2), BigInt()),
               std::domain_error);
  // The dispatching modexp keeps working for even moduli via divmod.
  EXPECT_EQ(BigInt(3).modexp(BigInt(4), BigInt(10)), BigInt(1));
}

TEST_F(AccelTest, RsaRoundTripsBothModexpPaths) {
  // Fixed 1024-bit fixture (generated once with this repo's rsa_generate,
  // then frozen) so the CRT path — including q^-1 mod p recombination — is
  // exercised deterministically under both modexp implementations.
  const Bytes seed(32, 0x99);
  Drbg rng{ByteView(seed)};
  const RsaKeyPair kp = rsa_generate(1024, rng);
  // p > q and p < q both occur across seeds; assert the fixture hits the
  // recombination branch at all (h = q_inv * (m_p - m_q) mod p).
  ASSERT_NE(kp.priv.p, kp.priv.q);

  const Bytes msg = from_hex_bytes("00ff102030405060708090a0b0c0d0e0f0");
  for_each_backend([&](accel::Backend backend) {
    Drbg enc_rng{ByteView(seed)};
    const auto ct = rsa_encrypt_oaep(kp.pub, msg, enc_rng);
    ASSERT_TRUE(ct.ok());
    const auto pt = rsa_decrypt_oaep(kp.priv, ct.value());
    ASSERT_TRUE(pt.ok()) << "backend " << static_cast<int>(backend);
    EXPECT_EQ(pt.value(), msg);

    const Bytes sig = rsa_sign_sha256(kp.priv, msg);
    EXPECT_TRUE(rsa_verify_sha256(kp.pub, msg, sig));
  });

  // Ciphertext sealed under one backend must decrypt under the other.
  if (accel::available()) {
    ASSERT_TRUE(accel::select_backend(accel::Backend::kPortable));
    Drbg enc_rng{ByteView(seed)};
    const auto ct = rsa_encrypt_oaep(kp.pub, msg, enc_rng);
    ASSERT_TRUE(ct.ok());
    ASSERT_TRUE(accel::select_backend(accel::Backend::kAccelerated));
    const auto pt = rsa_decrypt_oaep(kp.priv, ct.value());
    ASSERT_TRUE(pt.ok());
    EXPECT_EQ(pt.value(), msg);
  }
}

TEST_F(AccelTest, Rsa2048FixtureCrtEdgeCases) {
  // 2048-bit round trip; heavier, so a single deterministic key. Covers the
  // target size for the paper's proxy deployments.
  const Bytes seed(32, 0xab);
  Drbg rng{ByteView(seed)};
  const RsaKeyPair kp = rsa_generate(2048, rng);
  const Bytes msg = from_hex_bytes("deadbeefcafef00d");
  for_each_backend([&](accel::Backend) {
    Drbg enc_rng{ByteView(seed)};
    const auto ct = rsa_encrypt_pkcs1(kp.pub, msg, enc_rng);
    ASSERT_TRUE(ct.ok());
    const auto pt = rsa_decrypt_pkcs1(kp.priv, ct.value());
    ASSERT_TRUE(pt.ok());
    EXPECT_EQ(pt.value(), msg);
  });

  // CRT recombination edge: craft messages congruent to 0 mod p and 0 mod q
  // so m_p (resp. m_q) is zero during recombination.
  for (const BigInt& prime : {kp.priv.p, kp.priv.q}) {
    const BigInt m = prime;  // 0 mod that prime, nonzero mod the other
    const BigInt c = rsa_public_op(kp.pub, m);
    for_each_backend([&](accel::Backend) {
      EXPECT_EQ(rsa_private_op(kp.priv, c), m);
    });
  }
}

}  // namespace
}  // namespace pprox::crypto
