// Flow-correlation attack (§6.2): empirical adversary success against the
// simulated deployment must match the paper's analysis — near-certain with
// no shuffling, ~1/S within a UA batch, ~1/(S*I) at the LRS, ~1/(S*U) for
// responses, improving (for the defender) with instance count.
#include <gtest/gtest.h>

#include "attack/correlation.hpp"

namespace pprox::attack {
namespace {

std::vector<sim::FlowEvent> observe(int shuffle_size, int ua, int ia,
                                    double rps, std::uint64_t seed = 11) {
  sim::ProxyConfig proxy;
  proxy.shuffle_size = shuffle_size;
  proxy.ua_instances = ua;
  proxy.ia_instances = ia;
  sim::LrsConfig lrs;
  sim::WorkloadConfig workload;
  workload.rps = rps;
  workload.duration_ms = 30'000;
  workload.warmup_ms = 0;
  workload.cooldown_ms = 0;
  workload.repetitions = 1;
  workload.seed = seed;
  std::vector<sim::FlowEvent> events;
  sim::run_cluster(proxy, lrs, workload, sim::CostModel{},
                   [&events](const sim::FlowEvent& e) { events.push_back(e); });
  return events;
}

TEST(Correlation, NoShufflingIsNearCertainLinkage) {
  SplitMix64 rng(1);
  const auto events = observe(0, 1, 1, 100);
  const auto result = link_requests_at_ua(events, rng);
  ASSERT_GT(result.attempts, 1000u);
  // Without shuffling the adversary matches inbound to outbound almost
  // always (only CPU-queue reorderings add noise).
  EXPECT_GT(result.success_rate(), 0.9);
}

TEST(Correlation, ShuffleS10BoundsUaLinkageAtOneOverS) {
  SplitMix64 rng(2);
  const auto events = observe(10, 1, 1, 250);
  const auto result = link_requests_at_ua(events, rng);
  ASSERT_GT(result.attempts, 2000u);
  EXPECT_NEAR(result.success_rate(), 0.10, 0.04);  // 1/S
}

TEST(Correlation, ShuffleS5BoundsUaLinkageAtOneOverS) {
  SplitMix64 rng(3);
  const auto events = observe(5, 1, 1, 250);
  const auto result = link_requests_at_ua(events, rng);
  EXPECT_NEAR(result.success_rate(), 0.20, 0.06);  // 1/S
}

TEST(Correlation, MoreIaInstancesImproveUnlinkabilityAtLrs) {
  // §6.2: request-path guess probability is 1/(S*I): scaling I helps.
  SplitMix64 rng(4);
  const auto one = link_requests_at_lrs(observe(10, 1, 1, 250), rng);
  const auto four = link_requests_at_lrs(observe(10, 4, 4, 1000), rng);
  ASSERT_GT(one.attempts, 1000u);
  ASSERT_GT(four.attempts, 1000u);
  EXPECT_LT(one.success_rate(), 0.15);             // at most ~1/S
  EXPECT_LT(four.success_rate(), one.success_rate());  // I=4 strictly better
  EXPECT_LT(four.success_rate(), 0.05);            // approaching 1/(S*I)
}

TEST(Correlation, ResponsesProtectedSymmetrically) {
  SplitMix64 rng(5);
  const auto unshuffled = link_responses(observe(0, 1, 1, 100), rng);
  const auto shuffled = link_responses(observe(10, 1, 1, 250), rng);
  EXPECT_GT(unshuffled.success_rate(), 0.85);
  EXPECT_LT(shuffled.success_rate(), 0.18);  // ~1/S with U=1
}

TEST(Correlation, MoreUaInstancesProtectResponses) {
  // Response-path probability is 1/(S*U): scaling U helps the return path.
  SplitMix64 rng(6);
  const auto u1 = link_responses(observe(10, 1, 1, 250), rng);
  const auto u4 = link_responses(observe(10, 4, 4, 1000), rng);
  EXPECT_LT(u4.success_rate(), u1.success_rate());
}

TEST(Correlation, LowTrafficLimitation) {
  // §6.3 "Assumption on traffic": at very low rates the timer flushes
  // near-singleton batches and shuffling degrades. The attack must show it.
  SplitMix64 rng(7);
  const auto low = link_requests_at_ua(observe(10, 1, 1, 3), rng);
  const auto high = link_requests_at_ua(observe(10, 1, 1, 250), rng);
  EXPECT_GT(low.success_rate(), 3 * high.success_rate());
}

TEST(Correlation, EmptyObservationsYieldNoAttempts) {
  SplitMix64 rng(8);
  const auto result = link_requests_at_ua({}, rng);
  EXPECT_EQ(result.attempts, 0u);
  EXPECT_EQ(result.success_rate(), 0.0);
}

}  // namespace
}  // namespace pprox::attack
