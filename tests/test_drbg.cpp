// ChaCha20 block function (RFC 8439) vector and DRBG behaviour tests.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/encoding.hpp"
#include "crypto/drbg.hpp"

namespace pprox::crypto {
namespace {

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 §2.3.2: key 00..1f, counter 1, nonce 000000090000004a00000000.
  std::array<std::uint32_t, 8> key{};
  for (int w = 0; w < 8; ++w) {
    std::uint32_t v = 0;
    for (int b = 3; b >= 0; --b) v = (v << 8) | static_cast<std::uint32_t>(4 * w + b);
    key[w] = v;
  }
  const std::array<std::uint32_t, 3> nonce = {0x09000000, 0x4a000000, 0x00000000};
  std::uint8_t out[64];
  chacha20_block(key, 1, nonce, out);
  EXPECT_EQ(hex_encode(ByteView(out, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(Drbg, DeterministicWithSameSeed) {
  Drbg a(to_bytes("seed"));
  Drbg b(to_bytes("seed"));
  EXPECT_EQ(a.bytes(100), b.bytes(100));
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a(to_bytes("seed-1"));
  Drbg b(to_bytes("seed-2"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, OutputIsNotRepeating) {
  Drbg d(to_bytes("s"));
  std::set<Bytes> blocks;
  for (int i = 0; i < 100; ++i) blocks.insert(d.bytes(16));
  EXPECT_EQ(blocks.size(), 100u);
}

TEST(Drbg, ReseedChangesStream) {
  Drbg a(to_bytes("seed"));
  Drbg b(to_bytes("seed"));
  (void)a.bytes(10);
  (void)b.bytes(10);
  b.reseed(to_bytes("extra entropy"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, SurvivesRekeyBoundary) {
  Drbg d(to_bytes("long"));
  // Pull more than the 1 MiB rekey interval; stream must keep flowing and
  // remain deterministic for the same seed.
  Bytes total;
  for (int i = 0; i < 1100; ++i) {
    const Bytes chunk = d.bytes(1024);
    total.insert(total.end(), chunk.begin(), chunk.begin() + 4);
  }
  Drbg d2(to_bytes("long"));
  Bytes total2;
  for (int i = 0; i < 1100; ++i) {
    const Bytes chunk = d2.bytes(1024);
    total2.insert(total2.end(), chunk.begin(), chunk.begin() + 4);
  }
  EXPECT_EQ(total, total2);
}

TEST(Drbg, OsSeededInstancesDiffer) {
  Drbg a;
  Drbg b;
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, ThreadSafeUnderConcurrentFill) {
  Drbg d(to_bytes("mt"));
  std::vector<std::thread> threads;
  std::vector<Bytes> results(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&d, &results, t] { results[t] = d.bytes(10000); });
  }
  for (auto& t : threads) t.join();
  // All outputs distinct (the stream is shared, not replayed per thread).
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) EXPECT_NE(results[i], results[j]);
  }
}

TEST(Drbg, GlobalDrbgIsUsable) {
  EXPECT_EQ(global_drbg().bytes(16).size(), 16u);
}

}  // namespace
}  // namespace pprox::crypto
