// AES-GCM against NIST GCM test vectors plus AEAD property tests.
#include <gtest/gtest.h>

#include "common/encoding.hpp"
#include "crypto/drbg.hpp"
#include "crypto/gcm.hpp"

namespace pprox::crypto {
namespace {

Bytes h(std::string_view hex) { return *hex_decode(hex); }

std::array<std::uint8_t, 12> nonce_of(std::string_view hex) {
  const Bytes raw = h(hex);
  std::array<std::uint8_t, 12> nonce{};
  std::copy(raw.begin(), raw.end(), nonce.begin());
  return nonce;
}

// NIST GCM spec (SP 800-38D validation suite / McGrew-Viega paper vectors).
TEST(AesGcm, NistAes128EmptyPlaintext) {
  // Test case 1: key 0^128, nonce 0^96, empty everything.
  const AesGcm gcm(Bytes(16, 0));
  const auto sealed = gcm.seal(nonce_of("000000000000000000000000"), {});
  EXPECT_EQ(hex_encode(sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(AesGcm, NistAes128SingleBlock) {
  // Test case 2: key 0^128, nonce 0^96, plaintext 0^128.
  const AesGcm gcm(Bytes(16, 0));
  const auto sealed =
      gcm.seal(nonce_of("000000000000000000000000"), Bytes(16, 0));
  EXPECT_EQ(hex_encode(sealed),
            "0388dace60b6a392f328c2b971b2fe78"
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(AesGcm, NistAes128FourBlocksWithAad) {
  // Test case 4: 60-byte plaintext, 20-byte AAD.
  const AesGcm gcm(h("feffe9928665731c6d6a8f9467308308"));
  const auto nonce = nonce_of("cafebabefacedbaddecaf888");
  const Bytes plaintext = h(
      "d9313225f88406e5a55909c5aff5269a"
      "86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525"
      "b16aedf5aa0de657ba637b39");
  const Bytes aad = h("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const auto sealed = gcm.seal(nonce, plaintext, aad);
  EXPECT_EQ(hex_encode(sealed),
            "42831ec2217774244b7221b784d0d49c"
            "e3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa05"
            "1ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
  // And the inverse direction.
  const auto opened = gcm.open(nonce, sealed, aad);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), plaintext);
}

TEST(AesGcm, NistAes256SingleBlock) {
  // AES-256 test case: key 0^256, nonce 0^96, plaintext 0^128.
  const AesGcm gcm(Bytes(32, 0));
  const auto sealed =
      gcm.seal(nonce_of("000000000000000000000000"), Bytes(16, 0));
  EXPECT_EQ(hex_encode(sealed),
            "cea7403d4d606b6e074ec5d3baf39d18"
            "d0d1c8a799996bf0265b98b5d48ab919");
}

TEST(AesGcm, TamperedCiphertextRejected) {
  const AesGcm gcm(Bytes(32, 7));
  const auto nonce = nonce_of("0102030405060708090a0b0c");
  Bytes sealed = gcm.seal(nonce, to_bytes("recommendations list"));
  sealed[4] ^= 0x01;
  EXPECT_FALSE(gcm.open(nonce, sealed).ok());
}

TEST(AesGcm, TamperedTagRejected) {
  const AesGcm gcm(Bytes(32, 7));
  const auto nonce = nonce_of("0102030405060708090a0b0c");
  Bytes sealed = gcm.seal(nonce, to_bytes("payload"));
  sealed.back() ^= 0x80;
  EXPECT_FALSE(gcm.open(nonce, sealed).ok());
}

TEST(AesGcm, WrongAadRejected) {
  const AesGcm gcm(Bytes(32, 7));
  const auto nonce = nonce_of("0102030405060708090a0b0c");
  const Bytes sealed = gcm.seal(nonce, to_bytes("data"), to_bytes("aad-1"));
  EXPECT_TRUE(gcm.open(nonce, sealed, to_bytes("aad-1")).ok());
  EXPECT_FALSE(gcm.open(nonce, sealed, to_bytes("aad-2")).ok());
  EXPECT_FALSE(gcm.open(nonce, sealed, {}).ok());
}

TEST(AesGcm, WrongNonceRejected) {
  const AesGcm gcm(Bytes(32, 7));
  const Bytes sealed =
      gcm.seal(nonce_of("0102030405060708090a0b0c"), to_bytes("data"));
  EXPECT_FALSE(gcm.open(nonce_of("ffffffffffffffffffffffff"), sealed).ok());
}

TEST(AesGcm, TruncatedMessageRejected) {
  const AesGcm gcm(Bytes(32, 7));
  EXPECT_FALSE(gcm.open(nonce_of("000000000000000000000000"), Bytes(8, 0)).ok());
  EXPECT_FALSE(gcm.open_with_nonce(Bytes(20, 0)).ok());
}

class GcmRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GcmRoundTrip, SealOpenIdentityAllSizes) {
  Drbg rng(to_bytes("gcm-prop"));
  const AesGcm gcm(rng.bytes(32));
  const Bytes plaintext = rng.bytes(GetParam());
  const Bytes aad = rng.bytes(GetParam() % 37);
  const Bytes packed = gcm.seal_with_random_nonce(plaintext, rng, aad);
  EXPECT_EQ(packed.size(), plaintext.size() + 12 + 16);
  const auto opened = gcm.open_with_nonce(packed, aad);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), plaintext);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 100,
                                           255, 1000, 2048));

TEST(AesGcm, RandomNonceSealsDiffer) {
  Drbg rng(to_bytes("gcm-nonce"));
  const AesGcm gcm(rng.bytes(32));
  const auto p = to_bytes("same plaintext");
  EXPECT_NE(gcm.seal_with_random_nonce(p, rng), gcm.seal_with_random_nonce(p, rng));
}

TEST(Gf128, MultiplyBasics) {
  // 1 * y = y (the GHASH "1" is the bit-reflected MSB-first 0x80...).
  std::uint8_t one[16] = {0x80};
  std::uint8_t y[16];
  for (int i = 0; i < 16; ++i) y[i] = static_cast<std::uint8_t>(i * 17 + 3);
  std::uint8_t x[16];
  std::memcpy(x, one, 16);
  gf128_mul(x, y);
  EXPECT_EQ(Bytes(x, x + 16), Bytes(y, y + 16));

  // 0 * y = 0.
  std::uint8_t zero[16] = {};
  gf128_mul(zero, y);
  EXPECT_EQ(Bytes(zero, zero + 16), Bytes(16, 0));
}

TEST(Gf128, MultiplyCommutes) {
  std::uint8_t a[16], b[16], ab[16], ba[16];
  for (int i = 0; i < 16; ++i) {
    a[i] = static_cast<std::uint8_t>(i * 31 + 1);
    b[i] = static_cast<std::uint8_t>(i * 7 + 11);
  }
  std::memcpy(ab, a, 16);
  gf128_mul(ab, b);
  std::memcpy(ba, b, 16);
  gf128_mul(ba, a);
  EXPECT_EQ(Bytes(ab, ab + 16), Bytes(ba, ba + 16));
}

}  // namespace
}  // namespace pprox::crypto
