// Transport tests: in-process channels, round-robin balancing, and the real
// epoll TCP server with the pooled client channel.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "net/channel.hpp"
#include "net/tcp.hpp"

namespace pprox::net {
namespace {

http::HttpResponse sync_send(HttpChannel& channel, http::HttpRequest request) {
  std::promise<http::HttpResponse> promise;
  auto future = promise.get_future();
  channel.send(std::move(request),
               [&promise](http::HttpResponse r) { promise.set_value(std::move(r)); });
  return future.get();
}

TEST(InProcChannel, DeliversToSink) {
  FunctionSink sink([](const http::HttpRequest& req) {
    return http::HttpResponse::json_response(200, "echo:" + req.body);
  });
  InProcChannel channel(sink);
  http::HttpRequest req;
  req.body = "hello";
  EXPECT_EQ(sync_send(channel, req).body, "echo:hello");
}

TEST(RoundRobin, CyclesThroughBackends) {
  std::atomic<int> hits_a{0}, hits_b{0};
  auto sink_a = std::make_shared<FunctionSink>([&](const http::HttpRequest&) {
    hits_a.fetch_add(1);
    return http::HttpResponse::json_response(200, "a");
  });
  auto sink_b = std::make_shared<FunctionSink>([&](const http::HttpRequest&) {
    hits_b.fetch_add(1);
    return http::HttpResponse::json_response(200, "b");
  });
  RoundRobinChannel lb({std::make_shared<InProcChannel>(*sink_a),
                        std::make_shared<InProcChannel>(*sink_b)});
  for (int i = 0; i < 10; ++i) sync_send(lb, {});
  EXPECT_EQ(hits_a.load(), 5);
  EXPECT_EQ(hits_b.load(), 5);
}

TEST(RoundRobin, EmptyBackendsReturns503) {
  RoundRobinChannel lb({});
  EXPECT_EQ(sync_send(lb, {}).status, 503);
}

class TcpFixture : public ::testing::Test {
 protected:
  TcpFixture()
      : sink_([this](const http::HttpRequest& req) {
          requests_seen_.fetch_add(1);
          http::HttpResponse resp;
          resp.status = 200;
          resp.body = "method=" + req.method + " target=" + req.target +
                      " body=" + req.body;
          return resp;
        }),
        server_(0, sink_) {}

  std::atomic<int> requests_seen_{0};
  FunctionSink sink_;
  TcpServer server_;
};

TEST_F(TcpFixture, SingleRoundTrip) {
  TcpChannel channel(server_.port(), 1);
  http::HttpRequest req;
  req.method = "POST";
  req.target = "/events";
  req.body = "feedback";
  const auto resp = sync_send(channel, req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "method=POST target=/events body=feedback");
}

TEST_F(TcpFixture, ManySequentialRequestsReuseConnection) {
  TcpChannel channel(server_.port(), 1);
  for (int i = 0; i < 50; ++i) {
    http::HttpRequest req;
    req.body = "n" + std::to_string(i);
    const auto resp = sync_send(channel, req);
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("n" + std::to_string(i)), std::string::npos);
  }
  EXPECT_EQ(requests_seen_.load(), 50);
}

TEST_F(TcpFixture, ConcurrentClients) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  TcpChannel channel(server_.port(), 4);
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&channel, &ok] {
      for (int i = 0; i < kPerThread; ++i) {
        http::HttpRequest req;
        req.body = "x";
        if (sync_send(channel, req).status == 200) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(requests_seen_.load(), kThreads * kPerThread);
}

TEST_F(TcpFixture, LargeBodyRoundTrip) {
  TcpChannel channel(server_.port(), 1);
  http::HttpRequest req;
  req.body = std::string(200 * 1024, 'z');
  const auto resp = sync_send(channel, req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find(std::string(1000, 'z')), std::string::npos);
}

TEST(TcpServerAsync, DeferredCompletionFromAnotherThread) {
  // The sink answers from a detached thread after a delay — exercising the
  // eventfd wakeup path the proxy's enclave workers rely on.
  class DeferredSink final : public RequestSink {
   public:
    void handle(http::HttpRequest, RespondFn done) override {
      std::thread([done = std::move(done)] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        done(http::HttpResponse::json_response(200, "deferred"));
      }).detach();
    }
  };
  DeferredSink sink;
  TcpServer server(0, sink);
  TcpChannel channel(server.port(), 2);
  const auto resp = sync_send(channel, {});
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "deferred");
}

TEST(TcpChannelTimeout, HungUpstreamYields504) {
  // A sink that never answers: the channel's deadline must fire.
  class BlackHoleSink final : public RequestSink {
   public:
    void handle(http::HttpRequest, RespondFn done) override {
      // Park the completion; never call it.
      std::lock_guard<std::mutex> lock(mutex_);
      parked_.push_back(std::move(done));
    }
    ~BlackHoleSink() override {
      // Unpark on teardown so the server can shut down cleanly.
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& done : parked_) {
        done(http::HttpResponse::error_response(503, "shutting down"));
      }
    }

   private:
    std::mutex mutex_;
    std::vector<RespondFn> parked_;
  };
  BlackHoleSink sink;
  TcpServer server(0, sink);
  TcpChannel channel(server.port(), 1, std::chrono::milliseconds(150));
  const auto start = std::chrono::steady_clock::now();
  const auto resp = sync_send(channel, {});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(resp.status, 504);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  // The channel recovers: a fresh request on a healthy sink still works...
  // (reconnection is exercised because the timed-out connection was dropped.)
}

TEST(TcpChannelTimeout, RecoversAfterTimeout) {
  std::atomic<bool> answer{false};
  class ToggleSink final : public RequestSink {
   public:
    explicit ToggleSink(std::atomic<bool>& answer) : answer_(&answer) {}
    void handle(http::HttpRequest, RespondFn done) override {
      if (answer_->load()) {
        done(http::HttpResponse::json_response(200, "late-but-fine"));
      }
      // else: drop (leak the callback intentionally for the test).
    }

   private:
    std::atomic<bool>* answer_;
  };
  ToggleSink sink(answer);
  TcpServer server(0, sink);
  TcpChannel channel(server.port(), 1, std::chrono::milliseconds(120));
  EXPECT_EQ(sync_send(channel, {}).status, 504);
  answer.store(true);
  const auto resp = sync_send(channel, {});
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "late-but-fine");
}

TEST(TcpChannelError, ConnectFailureReturns503or502) {
  TcpChannel channel(1, 1);  // port 1: nothing listening
  const auto resp = sync_send(channel, {});
  EXPECT_TRUE(resp.status == 503 || resp.status == 502) << resp.status;
}

TEST(TcpServerLifecycle, StopIsIdempotentAndJoins) {
  FunctionSink sink([](const http::HttpRequest&) {
    return http::HttpResponse::json_response(200, "{}");
  });
  auto server = std::make_unique<TcpServer>(0, sink);
  const auto port = server->port();
  EXPECT_GT(port, 0);
  server->stop();
  server->stop();
  server.reset();
}

TEST(SocketHelpers, ListenConnectRoundTrip) {
  auto listener = tcp_listen(0);
  ASSERT_TRUE(listener.ok());
  const auto port = local_port(listener.value());
  ASSERT_TRUE(port.ok());
  auto client = tcp_connect(port.value());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(write_all(client.value(), "ping").ok());
}

TEST(SocketHelpers, FdMoveSemantics) {
  Fd a(42000);  // not a real fd; never used for I/O
  const int raw = a.release();
  EXPECT_EQ(raw, 42000);
  EXPECT_FALSE(a.valid());
  Fd b;
  EXPECT_FALSE(b.valid());
}

}  // namespace
}  // namespace pprox::net
