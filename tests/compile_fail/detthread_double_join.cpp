// PPROX-LAYER: tooling
//
// Negative-RUN case (this pair executes, unlike the -fsyntax-only cases):
// joining a DetThread twice is a lifecycle bug — the second join() on a
// std::thread is UB, and under -DPPROX_MODEL_CHECK it would corrupt the
// scheduler's thread table. DetThread turns it into a deterministic
// PPROX_SYNC_ASSERT ("DetThread joined twice") that _Exits with status 1,
// which ctest inverts via WILL_FAIL. The control flavour runs the same
// thread through the legal lifecycle and must exit 0.
#include "common/sync.hpp"

int main() {
  pprox::DetThread worker([] {}, "cf-worker");
  worker.join();
#ifdef PPROX_VIOLATION
  worker.join();  // second join: PPROX_SYNC_ASSERT exits 1
#endif
  return 0;
}
