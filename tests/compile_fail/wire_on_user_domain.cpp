// PPROX-LAYER: tooling
//
// Negative-compile case: wire() is the serialization accessor for values
// that are *already* pseudonymized — its requires-clause restricts it to
// PseudonymDomain. Calling it on a UserDomain value would put a cleartext
// identity on the wire, so the constraint must reject it.
#include <string>

#include "pprox/message.hpp"

namespace pprox {

std::string serialize(const UserId& user, const PseudonymizedId& pseudonym) {
#ifdef PPROX_VIOLATION
  return user.wire();  // requires PseudonymDomain: must not compile
#else
  (void)user;
  return pseudonym.wire();
#endif
}

}  // namespace pprox
