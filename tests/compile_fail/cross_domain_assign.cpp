// PPROX-LAYER: tooling
//
// Negative-compile case: values must not migrate between taint domains by
// assignment. Sensitive<T, D> deletes its cross-domain converting
// constructor and assignment operator, so an ItemDomain value can never be
// laundered into a UserDomain slot (or vice versa).
#include <string>

#include "pprox/message.hpp"

namespace pprox {

void reassign(UserId& user, const ItemId& item) {
#ifdef PPROX_VIOLATION
  user = item;  // cross-domain assignment: deleted
#else
  user = UserId{std::string("fresh")};
  (void)item;
#endif
}

}  // namespace pprox
