// PPROX-LAYER: tooling
//
// Negative-compile case: a sensitive value must not decay to its raw
// representation implicitly. Sensitive<T, D> has no conversion operator;
// the only exits are the audited declassify_* functions (and wire(), which
// is constrained to PseudonymDomain).
#include <string>

#include "pprox/message.hpp"

namespace pprox {

std::string leak(const UserId& user) {
#ifdef PPROX_VIOLATION
  return user;  // no operator std::string(): must not compile
#else
  // The audited escape hatch spells out the release.
  return taint::declassify_for_test(user);
#endif
}

}  // namespace pprox
