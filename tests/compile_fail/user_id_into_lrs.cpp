// PPROX-LAYER: tooling
//
// Negative-compile case: a cleartext user identity must not cross into the
// LRS API. The typed HarnessServer::post_event overload only accepts
// StoredPseudonym (PseudonymDomain); handing it a UserDomain value has to
// fail overload resolution because Sensitive's cross-domain conversion is
// deleted and the raw std::string overload can't be reached implicitly.
#include <string>

#include "lrs/harness.hpp"
#include "pprox/message.hpp"

namespace pprox {

void record(lrs::HarnessServer& harness, const UserId& user,
            const PseudonymizedId& user_pseudonym,
            const PseudonymizedId& item_pseudonym) {
#ifdef PPROX_VIOLATION
  // A user identity reaching the LRS links every event to the person.
  (void)harness.post_event(user, item_pseudonym);
#else
  (void)harness.post_event(user_pseudonym, item_pseudonym);
  (void)user;
#endif
}

}  // namespace pprox
