// PPROX-LAYER: tooling
//
// Negative-compile case: the UA's typed pseudonymization entry point takes
// UserId only. Feeding it an ItemDomain value would make the UA observe an
// item identifier (breaking the split that gives PProx its unlinkability),
// and must fail because the cross-domain converting constructor is deleted.
#include "pprox/logic_ua.hpp"

namespace pprox {

Result<PseudonymizedId> pseudonymize(const UaLogic& ua, const UserId& user,
                                     const ItemId& item) {
#ifdef PPROX_VIOLATION
  return ua.pseudonym_of(item);  // UA observing an item id: must not compile
#else
  (void)item;
  return ua.pseudonym_of(user);
#endif
}

}  // namespace pprox
