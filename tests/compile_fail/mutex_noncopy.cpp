// PPROX-LAYER: tooling
//
// Negative-compile case: pprox::Mutex is pinned to its address. Copying or
// moving a mutex would silently fork (or orphan) its wait queue — and under
// -DPPROX_MODEL_CHECK would split the det::ObjRecord identity the scheduler
// keys sleep sets on — so both operations are deleted in both flavours.
#include "common/sync.hpp"

namespace pprox {

Mutex& stationary() {
  static Mutex mu;
  return mu;
}

void use_mutex() {
#ifdef PPROX_VIOLATION
  Mutex copy = stationary();   // copy ctor: deleted
  Mutex moved = Mutex();       // move ctor: deleted
  (void)copy;
  (void)moved;
#else
  LockGuard lock(stationary());  // the blessed way: lock it where it lives
#endif
}

}  // namespace pprox
