// PPROX-LAYER: tooling
//
// Negative-compile case: the §6.3 item-pseudonymization opt-out releases
// *item* identifiers to the LRS in the clear. declassify_for_lrs is
// constrained to ItemDomain precisely so the same opt-out can never be
// applied to a user identity — user pseudonymization has no off switch.
#include <string>

#include "pprox/message.hpp"

namespace pprox {

std::string opt_out(UserId user, ItemId item) {
#ifdef PPROX_VIOLATION
  return taint::declassify_for_lrs(std::move(user));  // wrong domain
#else
  (void)user;
  // PPROX-DECLASSIFY: compile-fail control branch — exercises the audited
  // item-side opt-out release to prove the harness compiles legitimate code.
  return taint::declassify_for_lrs(std::move(item));
#endif
}

}  // namespace pprox
