// HarnessServer (the LRS) REST behaviour and the nginx-like stub.
#include <gtest/gtest.h>

#include <future>

#include "json/json.hpp"
#include "lrs/harness.hpp"

namespace pprox::lrs {
namespace {

http::HttpResponse call(net::RequestSink& sink, const std::string& method,
                        const std::string& target, const std::string& body) {
  http::HttpRequest req;
  req.method = method;
  req.target = target;
  req.body = body;
  std::promise<http::HttpResponse> promise;
  auto future = promise.get_future();
  sink.handle(std::move(req),
              [&promise](http::HttpResponse r) { promise.set_value(std::move(r)); });
  return future.get();
}

TEST(Harness, HealthEndpoint) {
  HarnessServer lrs;
  EXPECT_EQ(call(lrs, "GET", "/health", "").status, 200);
}

TEST(Harness, EventInsertionViaRest) {
  HarnessServer lrs;
  const auto resp = call(lrs, "POST", "/engines/ur/events",
                         R"({"user":"u1","item":"movie-1"})");
  EXPECT_EQ(resp.status, 201);
  EXPECT_EQ(lrs.event_count(), 1u);
  EXPECT_EQ(lrs.user_history("u1"), std::vector<std::string>{"movie-1"});
}

TEST(Harness, EventValidation) {
  HarnessServer lrs;
  EXPECT_EQ(call(lrs, "POST", "/engines/ur/events", "not json").status, 400);
  EXPECT_EQ(call(lrs, "POST", "/engines/ur/events", R"({"user":"u"})").status, 400);
  EXPECT_EQ(call(lrs, "POST", "/engines/ur/events", R"({"item":"i"})").status, 400);
  EXPECT_EQ(call(lrs, "POST", "/engines/ur/events", R"([1,2])").status, 400);
  EXPECT_EQ(lrs.event_count(), 0u);
}

TEST(Harness, UnknownRouteAndMethod) {
  HarnessServer lrs;
  EXPECT_EQ(call(lrs, "POST", "/nope", "{}").status, 404);
  EXPECT_EQ(call(lrs, "GET", "/engines/ur/events", "").status, 405);
}

TEST(Harness, TrainThenQueryReturnsCoLiked) {
  HarnessServer lrs;
  // u1, u2 like both A and B; u3 likes only A.
  for (const auto& [u, i] : std::vector<std::pair<std::string, std::string>>{
           {"u1", "A"}, {"u1", "B"}, {"u2", "A"}, {"u2", "B"},
           {"u3", "A"}, {"u4", "C"}}) {
    EXPECT_EQ(call(lrs, "POST", "/engines/ur/events",
                   R"({"user":")" + u + R"(","item":")" + i + R"("})")
                  .status,
              201);
  }
  const auto train = call(lrs, "POST", "/engines/ur/train", "");
  EXPECT_EQ(train.status, 200);
  EXPECT_GT(lrs.indexed_items(), 0u);

  const auto resp = call(lrs, "POST", "/engines/ur/queries", R"({"user":"u3"})");
  ASSERT_EQ(resp.status, 200);
  const auto doc = json::parse(resp.body);
  ASSERT_TRUE(doc.ok());
  const auto* items = doc.value().find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_FALSE(items->as_array().empty());
  EXPECT_EQ(items->as_array()[0].as_string(), "B");  // co-liked with A
}

TEST(Harness, QueryExcludesOwnHistory) {
  HarnessServer lrs;
  lrs.post_event("u1", "A");
  lrs.post_event("u1", "B");
  lrs.post_event("u2", "A");
  lrs.post_event("u2", "B");
  lrs.train();
  const auto resp = lrs.query("u1");  // u1 already has both items
  const auto doc = json::parse(resp.body);
  ASSERT_TRUE(doc.ok());
  for (const auto& item : doc.value().find("items")->as_array()) {
    EXPECT_NE(item.as_string(), "A");
    EXPECT_NE(item.as_string(), "B");
  }
}

TEST(Harness, QueryBeforeTrainReturnsEmptyList) {
  HarnessServer lrs;
  lrs.post_event("u1", "A");
  const auto resp = lrs.query("u1");
  EXPECT_EQ(resp.status, 200);
  const auto doc = json::parse(resp.body);
  EXPECT_TRUE(doc.value().find("items")->as_array().empty());
}

TEST(Harness, QueryValidation) {
  HarnessServer lrs;
  EXPECT_EQ(call(lrs, "POST", "/engines/ur/queries", "garbage").status, 400);
  EXPECT_EQ(call(lrs, "POST", "/engines/ur/queries", "{}").status, 400);
}

TEST(Harness, ResultListCapped) {
  HarnessConfig config;
  config.max_recommendations = 5;
  HarnessServer lrs(config);
  // One heavy user co-likes everything with everyone.
  for (int u = 0; u < 10; ++u) {
    for (int i = 0; i < 30; ++i) {
      lrs.post_event("u" + std::to_string(u), "i" + std::to_string(i));
    }
  }
  lrs.post_event("probe", "i0");
  lrs.train();
  const auto resp = lrs.query("probe");
  const auto doc = json::parse(resp.body);
  EXPECT_LE(doc.value().find("items")->as_array().size(), 5u);
}

TEST(Harness, HistoryIsInsertionOrderedAndDeduplicated) {
  HarnessServer lrs;
  lrs.post_event("u", "b");
  lrs.post_event("u", "a");
  lrs.post_event("u", "b");
  EXPECT_EQ(lrs.user_history("u"), (std::vector<std::string>{"b", "a"}));
  EXPECT_TRUE(lrs.user_history("ghost").empty());
}

TEST(Stub, ReturnsConstantPayload) {
  StubServer stub(20);
  const auto a = call(stub, "POST", "/engines/ur/queries", R"({"user":"x"})");
  const auto b = call(stub, "POST", "/anything", "whatever");
  EXPECT_EQ(a.status, 200);
  EXPECT_EQ(a.body, b.body);  // static payload regardless of request
  const auto doc = json::parse(a.body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().find("items")->as_array().size(), 20u);
}

TEST(Stub, ConfigurableListSize) {
  StubServer stub(7);
  const auto doc = json::parse(stub.payload());
  EXPECT_EQ(doc.value().find("items")->as_array().size(), 7u);
}

}  // namespace
}  // namespace pprox::lrs
