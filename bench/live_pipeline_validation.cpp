// Calibration-loop closure: drive the REAL pipeline (real RSA/AES, real
// threads, in-process transport) with the open-loop injector, and print the
// simulator's prediction for a comparable deployment next to it. The
// absolute numbers depend on this machine (the whole pipeline shares its
// cores, unlike the paper's dedicated 2-core NUC per instance), but at
// uncongested rates the un-queued service-time floor should agree with the
// cost model within a small factor.
#include <atomic>
#include <cstdio>
#include <future>

#include "crypto/drbg.hpp"
#include "figure_common.hpp"
#include "lrs/harness.hpp"
#include "pprox/deployment.hpp"
#include "workload/injector.hpp"

using namespace pprox;

namespace {

struct LivePoint {
  double rps;
  double median_ms;
  double p95_ms;
  std::size_t completed;
  std::size_t failed;
};

LivePoint run_live(double rps, int shuffle, crypto::Drbg& rng) {
  lrs::HarnessServer lrs;
  DeploymentConfig config;
  config.shuffle_size = shuffle;
  config.shuffle_timeout = std::chrono::milliseconds(200);
  Deployment deployment(config, lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);

  // Seed a small catalogue and train so get calls exercise the full path.
  // Posts are fired concurrently so shuffle buffers flush by size, not timer.
  {
    std::promise<void> drained;
    std::atomic<int> remaining{20 * 6};
    for (int u = 0; u < 20; ++u) {
      for (int i = 0; i < 6; ++i) {
        client.post("user-" + std::to_string(u),
                    "item-" + std::to_string((u + i) % 30), [&](Status) {
                      if (remaining.fetch_sub(1) == 1) drained.set_value();
                    });
      }
    }
    drained.get_future().wait();
  }
  lrs.train();

  workload::InjectorConfig injector;
  injector.rps = rps;
  injector.duration = std::chrono::milliseconds(3'000);
  injector.warmup = std::chrono::milliseconds(500);
  injector.cooldown = std::chrono::milliseconds(300);
  std::uint64_t n = 0;
  const auto report = workload::run_injection(
      *deployment.entry_channel(), injector, [&client, &n] {
        // 80% get / 20% post mix, pre-encrypted.
        const std::string user = "user-" + std::to_string(n % 20);
        ++n;
        if (n % 5 == 0) {
          return client
              .build_post_request(user, "item-" + std::to_string(n % 30))
              .value();
        }
        return client.build_get_request(user).value().request;
      });
  LivePoint point;
  point.rps = rps;
  point.median_ms =
      report.latencies_ms.empty() ? 0 : report.latencies_ms.percentile(50);
  point.p95_ms =
      report.latencies_ms.empty() ? 0 : report.latencies_ms.percentile(95);
  point.completed = report.completed;
  point.failed = report.failed;
  return point;
}

double sim_prediction(double rps, int shuffle) {
  sim::ProxyConfig proxy;
  proxy.shuffle_size = shuffle;
  sim::LrsConfig lrs;
  lrs.kind = sim::LrsConfig::Kind::kHarness;
  lrs.frontend_nodes = 1;
  sim::WorkloadConfig w;
  w.rps = rps;
  w.duration_ms = 20'000;
  w.warmup_ms = 3'000;
  w.cooldown_ms = 3'000;
  w.repetitions = 2;
  w.get_fraction = 0.8;
  const auto result = sim::run_cluster(proxy, lrs, w, sim::CostModel{});
  return result.latencies.empty() ? 0 : result.latencies.percentile(50);
}

}  // namespace

int main() {
  crypto::Drbg rng(to_bytes("live-validation"));
  std::printf("=== Live pipeline vs simulator (same request mix) ===\n");
  std::printf("%-6s %-3s | %9s %9s %6s %6s | %12s\n", "rps", "S", "liveMed",
              "liveP95", "done", "fail", "simMed(NUC)");
  for (const auto& [rps, shuffle] :
       std::vector<std::pair<double, int>>{{20, 0}, {40, 0}, {40, 5}}) {
    const LivePoint live = run_live(rps, shuffle, rng);
    const double predicted = sim_prediction(rps, shuffle);
    std::printf("%-6.0f %-3d | %9.1f %9.1f %6zu %6zu | %12.1f\n", rps, shuffle,
                live.median_ms, live.p95_ms, live.completed, live.failed,
                predicted);
  }
  std::printf("\nReading: without shuffling, the gap is the LRS model — the\n"
              "simulator charges the paper's Harness (Elasticsearch/MongoDB,\n"
              "~21 ms median) while the live run hits this repo's in-memory\n"
              "LRS (~us). The proxy-side costs agree (live ~7-8 ms over four\n"
              "crypto hops vs ~10 ms modelled). With shuffling, queueing\n"
              "dominates both and live tracks the prediction closely.\n");
  return 0;
}
