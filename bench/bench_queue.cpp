// Concurrency microbenchmarks + the mutex-queue ablation called out in
// DESIGN.md: the lock-free MPMC queue (paper §5 uses Desrochers' queue) vs a
// plain mutex-guarded deque, single- and multi-threaded.
#include <benchmark/benchmark.h>

#include <deque>
#include <mutex>
#include <thread>

#include "concurrent/mpmc_queue.hpp"
#include "pprox/shuffle.hpp"

namespace {

using namespace pprox;

// Ablation baseline: the simplest thread-safe queue.
template <typename T>
class MutexQueue {
 public:
  bool try_push(T v) {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(v));
    return true;
  }
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

 private:
  std::mutex mutex_;
  std::deque<T> queue_;
};

void BM_MpmcPushPop(benchmark::State& state) {
  concurrent::MpmcQueue<std::uint64_t> queue(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    queue.try_push(i++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_MpmcPushPop);

void BM_MutexPushPop(benchmark::State& state) {
  MutexQueue<std::uint64_t> queue;
  std::uint64_t i = 0;
  for (auto _ : state) {
    queue.try_push(i++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_MutexPushPop);

template <typename Queue>
void contended_bench(benchmark::State& state, Queue& queue) {
  // Both sides are non-blocking single attempts: with fixed iteration counts
  // a spinning producer could deadlock once its consumers finish.
  if (state.thread_index() % 2 == 0) {
    std::uint64_t i = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(queue.try_push(i++));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(queue.try_pop());
    }
  }
}

void BM_MpmcContended(benchmark::State& state) {
  static concurrent::MpmcQueue<std::uint64_t>* queue = nullptr;
  if (state.thread_index() == 0) {
    queue = new concurrent::MpmcQueue<std::uint64_t>(4096);
  }
  contended_bench(state, *queue);
  if (state.thread_index() == 0) {
    delete queue;
    queue = nullptr;
  }
}
// Iterations bounded: with more threads than cores, contended CAS loops
// otherwise take minutes to satisfy google-benchmark's default min time.
BENCHMARK(BM_MpmcContended)->Threads(2)->Threads(4)->UseRealTime()->Iterations(500'000);

void BM_MutexContended(benchmark::State& state) {
  static MutexQueue<std::uint64_t>* queue = nullptr;
  if (state.thread_index() == 0) queue = new MutexQueue<std::uint64_t>();
  contended_bench(state, *queue);
  if (state.thread_index() == 0) {
    delete queue;
    queue = nullptr;
  }
}
BENCHMARK(BM_MutexContended)->Threads(2)->Threads(4)->UseRealTime()->Iterations(500'000);

void BM_ShuffleQueueAdd(benchmark::State& state) {
  ShuffleQueue queue(static_cast<int>(state.range(0)),
                     std::chrono::milliseconds(10'000));
  for (auto _ : state) {
    queue.add([] {});
  }
}
BENCHMARK(BM_ShuffleQueueAdd)->Arg(0)->Arg(5)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
