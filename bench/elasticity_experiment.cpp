// Elastic scaling experiment (paper §5 "the two proxy layers need to
// elastically scale up and down based on observed request load"): a diurnal
// load pattern is served either by a static worst-case deployment or by an
// advisor-driven elastic one. The elastic deployment matches latency SLOs
// at every level while spending far fewer node-hours — and, crucially,
// scaling DOWN at night keeps the shuffle buffers full (privacy + latency).
#include <cstdio>

#include "figure_common.hpp"
#include "pprox/deployment.hpp"

using namespace pprox;
using namespace pprox::bench;

namespace {

struct Segment {
  const char* name;
  double rps;
  double hours;  // weight for the node-hour bill
};

sim::RunResult run_segment(double rps, int pairs, const sim::CostModel& costs) {
  sim::ProxyConfig proxy;
  proxy.shuffle_size = 10;
  proxy.ua_instances = pairs;
  proxy.ia_instances = pairs;
  sim::LrsConfig lrs;
  sim::WorkloadConfig w;
  w.rps = rps;
  w.duration_ms = 30'000;
  w.warmup_ms = 5'000;
  w.cooldown_ms = 5'000;
  w.repetitions = 2;
  w.seed = 5;
  return sim::run_cluster(proxy, lrs, w, costs);
}

}  // namespace

int main() {
  const sim::CostModel costs;
  const std::vector<Segment> day = {
      {"night", 50, 8},
      {"morning", 400, 4},
      {"midday", 900, 4},
      {"evening", 600, 8},
  };
  const double per_pair_capacity = 250;  // measured: Fig. 8 staircase

  std::printf("=== Elasticity: static worst-case vs advisor-driven scaling ===\n");
  std::printf("%-10s %6s | %6s %9s %9s | %6s %9s %9s\n", "segment", "rps",
              "static", "med(ms)", "p95(ms)", "elastic", "med(ms)", "p95(ms)");

  const int static_pairs = recommend_instance_pairs(900, per_pair_capacity);
  double static_node_hours = 0, elastic_node_hours = 0;
  for (const auto& segment : day) {
    const int elastic_pairs =
        recommend_instance_pairs(segment.rps, per_pair_capacity);
    const auto static_run = run_segment(segment.rps, static_pairs, costs);
    const auto elastic_run = run_segment(segment.rps, elastic_pairs, costs);
    static_node_hours += 2.0 * static_pairs * segment.hours;
    elastic_node_hours += 2.0 * elastic_pairs * segment.hours;
    std::printf("%-10s %6.0f | %6d %9.1f %9.1f | %6d %9.1f %9.1f\n",
                segment.name, segment.rps, static_pairs,
                static_run.latencies.percentile(50),
                static_run.latencies.percentile(95), elastic_pairs,
                elastic_run.latencies.percentile(50),
                elastic_run.latencies.percentile(95));
  }
  std::printf("\nproxy node-hours/day: static %.0f vs elastic %.0f (%.0f%% saved)\n",
              static_node_hours, elastic_node_hours,
              100.0 * (1.0 - elastic_node_hours / static_node_hours));
  std::printf("note the night segment: the static deployment's latency blows up\n"
              "(shuffle buffers starve across %d pairs) while the elastic one\n"
              "stays within SLO — scaling down is a PRIVACY feature here.\n",
              static_pairs);
  return 0;
}
