// Figure 9 reproduction: Harness LRS baseline without PProx.
//   b1..b4: 3/6/9/12 front-end nodes (+4 support nodes in the paper's
//   deployments), 50..1000 RPS, MovieLens-style query workload.
#include "figure_common.hpp"

using namespace pprox::bench;

int main() {
  const pprox::sim::CostModel costs;
  const std::vector<double> rps = {50, 250, 500, 750, 1000};

  print_figure_header("Figure 9: Harness baseline (no PProx, b1..b4)");
  for (const auto& config : {b1(), b2(), b3(), b4()}) {
    sweep(config, rps, costs);
  }

  std::printf("\nExpected shape (paper): b_k saturates just above 250*k RPS;"
              "\nservice times below 100 ms up to 500 RPS, widening near"
              "\nsaturation with ~300 ms peaks for b4 at 1000 RPS.\n");
  return 0;
}
