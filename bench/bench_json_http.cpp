// JSON/HTTP/base64 microbenchmarks: the proxy's non-crypto per-packet work.
// CostModel.parse_forward_ms and response_forward_ms are calibrated from
// these plus the transport layer overheads.
#include <benchmark/benchmark.h>

#include "common/encoding.hpp"
#include "crypto/drbg.hpp"
#include "http/http.hpp"
#include "json/json.hpp"

namespace {

using namespace pprox;

std::string sample_post_body() {
  // Realistic proxy-visible body: two base64 ciphertext fields.
  crypto::Drbg rng(to_bytes("bench-json"));
  json::JsonValue body{json::JsonObject{}};
  body.set("user", base64_encode(rng.bytes(128)));
  body.set("item", base64_encode(rng.bytes(128)));
  return body.dump();
}

void BM_JsonParsePostBody(benchmark::State& state) {
  const std::string body = sample_post_body();
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::parse(body));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(body.size()));
}
BENCHMARK(BM_JsonParsePostBody);

void BM_JsonDump(benchmark::State& state) {
  const auto doc = json::parse(sample_post_body()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc.dump());
  }
}
BENCHMARK(BM_JsonDump);

// The enclave hot path: find + replace a field without building a DOM.
void BM_InPlaceFieldReplace(benchmark::State& state) {
  const std::string original = sample_post_body();
  const std::string replacement(88, 'A');
  for (auto _ : state) {
    std::string body = original;
    json::replace_string_field(body, "user", replacement);
    benchmark::DoNotOptimize(body);
  }
}
BENCHMARK(BM_InPlaceFieldReplace);

void BM_InPlaceFieldFind(benchmark::State& state) {
  const std::string body = sample_post_body();
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::find_string_field(body, "item"));
  }
}
BENCHMARK(BM_InPlaceFieldFind);

void BM_Base64Encode(benchmark::State& state) {
  crypto::Drbg rng(to_bytes("b64"));
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(base64_encode(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Base64Encode)->Arg(48)->Arg(2048);

void BM_Base64Decode(benchmark::State& state) {
  crypto::Drbg rng(to_bytes("b64d"));
  const std::string text = base64_encode(rng.bytes(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(base64_decode(text));
  }
}
BENCHMARK(BM_Base64Decode)->Arg(48)->Arg(2048);

void BM_HttpSerializeRequest(benchmark::State& state) {
  http::HttpRequest req;
  req.method = "POST";
  req.target = "/engines/ur/events";
  req.set_header("Content-Type", "application/json");
  req.body = sample_post_body();
  for (auto _ : state) {
    benchmark::DoNotOptimize(req.serialize());
  }
}
BENCHMARK(BM_HttpSerializeRequest);

void BM_HttpParseRequest(benchmark::State& state) {
  http::HttpRequest req;
  req.method = "POST";
  req.target = "/engines/ur/events";
  req.body = sample_post_body();
  const std::string wire = req.serialize();
  for (auto _ : state) {
    http::HttpParser parser(http::HttpParser::Mode::kRequest);
    parser.feed(wire);
    benchmark::DoNotOptimize(parser.next_request());
  }
}
BENCHMARK(BM_HttpParseRequest);

void BM_RouterDispatch(benchmark::State& state) {
  http::Router router;
  for (int i = 0; i < 8; ++i) {
    router.add("GET", "/other/" + std::to_string(i),
               [](const http::HttpRequest&) {
                 return http::HttpResponse::json_response(200, "{}");
               });
  }
  router.add("POST", "/engines/*/events", [](const http::HttpRequest&) {
    return http::HttpResponse::json_response(201, "{}");
  });
  http::HttpRequest req;
  req.method = "POST";
  req.target = "/engines/ur/events";
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.dispatch(req));
  }
}
BENCHMARK(BM_RouterDispatch);

}  // namespace

BENCHMARK_MAIN();
