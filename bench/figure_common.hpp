// Shared harness for the figure/table reproduction benches: runs simulated
// experiments per (configuration, RPS) pair and prints candlestick rows in
// the paper's reporting style (§8 "Metrics and workload"): aggregated over
// repetitions, warm-up/cool-down trimmed, reported up to saturation.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/cluster.hpp"

namespace pprox::bench {

struct NamedProxyConfig {
  std::string name;
  sim::ProxyConfig proxy;
  sim::LrsConfig lrs;
};

inline sim::WorkloadConfig standard_workload(double rps) {
  sim::WorkloadConfig w;
  w.rps = rps;
  // The paper injects for 5 min and trims 15 s on both sides; we simulate a
  // 60 s window with 10 s trims and aggregate 6 repetitions (same count).
  w.duration_ms = 60'000;
  w.warmup_ms = 10'000;
  w.cooldown_ms = 10'000;
  w.repetitions = 6;
  w.seed = 42;
  return w;
}

inline void print_figure_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%s\n", candlestick_header().c_str());
}

inline std::string point_label(const std::string& name, double rps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s @ %.0f rps", name.c_str(), rps);
  return buf;
}

/// Runs one (config, rps) point; prints the row; returns true when stable
/// (callers stop the sweep at the first saturated point, like the paper,
/// which reports "up to the last value measured before reaching
/// saturation").
inline bool run_and_print_point(const NamedProxyConfig& config, double rps,
                                const sim::CostModel& costs) {
  const sim::RunResult result =
      sim::run_cluster(config.proxy, config.lrs, standard_workload(rps), costs);
  const std::string label = point_label(config.name, rps);
  if (result.saturated || result.latencies.empty()) {
    std::printf("%-24s   SATURATED (completed %zu/%zu)\n", label.c_str(),
                result.completed, result.injected);
    return false;
  }
  std::printf("%s\n",
              format_candlestick_row(label, result.latencies.candlestick()).c_str());
  return true;
}

/// Sweeps a config across RPS points, stopping after the first saturation.
inline void sweep(const NamedProxyConfig& config, const std::vector<double>& rps_points,
                  const sim::CostModel& costs) {
  for (const double rps : rps_points) {
    if (!run_and_print_point(config, rps, costs)) break;
  }
}

// --- The paper's named configurations (Tables 2 and 3) ---------------------

inline NamedProxyConfig micro_config(const std::string& name, bool enc, bool sgx,
                                     int shuffle, int instances,
                                     bool item_pseudo = true) {
  NamedProxyConfig c;
  c.name = name;
  c.proxy.encryption = enc;
  c.proxy.sgx = sgx;
  c.proxy.item_pseudonymization = item_pseudo;
  c.proxy.shuffle_size = shuffle;
  c.proxy.ua_instances = instances;
  c.proxy.ia_instances = instances;
  c.lrs.kind = sim::LrsConfig::Kind::kStub;
  return c;
}

inline NamedProxyConfig m1() { return micro_config("m1", false, false, 0, 1); }
inline NamedProxyConfig m2() { return micro_config("m2", true, false, 0, 1); }
inline NamedProxyConfig m3() { return micro_config("m3", true, true, 0, 1); }
inline NamedProxyConfig m4() {
  return micro_config("m4", true, true, 0, 1, /*item_pseudo=*/false);
}
inline NamedProxyConfig m5() { return micro_config("m5", true, true, 5, 1); }
inline NamedProxyConfig m6() { return micro_config("m6", true, true, 10, 1); }
inline NamedProxyConfig m7() { return micro_config("m7", true, true, 10, 2); }
inline NamedProxyConfig m8() { return micro_config("m8", true, true, 10, 3); }
inline NamedProxyConfig m9() { return micro_config("m9", true, true, 10, 4); }

inline NamedProxyConfig baseline_config(const std::string& name, int frontends) {
  NamedProxyConfig c;
  c.name = name;
  c.proxy.enabled = false;
  c.lrs.kind = sim::LrsConfig::Kind::kHarness;
  c.lrs.frontend_nodes = frontends;
  return c;
}

inline NamedProxyConfig b1() { return baseline_config("b1", 3); }
inline NamedProxyConfig b2() { return baseline_config("b2", 6); }
inline NamedProxyConfig b3() { return baseline_config("b3", 9); }
inline NamedProxyConfig b4() { return baseline_config("b4", 12); }

inline NamedProxyConfig full_config(const std::string& name, int instances,
                                    int frontends) {
  NamedProxyConfig c = micro_config(name, true, true, 10, instances);
  c.lrs.kind = sim::LrsConfig::Kind::kHarness;
  c.lrs.frontend_nodes = frontends;
  return c;
}

inline NamedProxyConfig f1() { return full_config("f1", 1, 3); }
inline NamedProxyConfig f2() { return full_config("f2", 2, 6); }
inline NamedProxyConfig f3() { return full_config("f3", 3, 9); }
inline NamedProxyConfig f4() { return full_config("f4", 4, 12); }

}  // namespace pprox::bench
