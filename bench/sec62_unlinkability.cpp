// §6.2 reproduction: empirical unlinkability under the flow-correlation
// adversary. For each (S, instance count) deployment, runs the rank-matching
// and window attacks over full wire traces and compares the measured guess
// success to the paper's analytical bounds 1/S, 1/(S*I), 1/(S*U).
#include <cstdio>

#include "attack/correlation.hpp"
#include "figure_common.hpp"

using namespace pprox;
using namespace pprox::attack;

namespace {

std::vector<sim::FlowEvent> trace(int shuffle, int instances, double rps) {
  sim::ProxyConfig proxy;
  proxy.shuffle_size = shuffle;
  proxy.ua_instances = instances;
  proxy.ia_instances = instances;
  sim::LrsConfig lrs;  // stub
  sim::WorkloadConfig workload;
  workload.rps = rps;
  workload.duration_ms = 60'000;
  workload.warmup_ms = 0;
  workload.cooldown_ms = 0;
  workload.repetitions = 1;
  workload.seed = 7;
  std::vector<sim::FlowEvent> events;
  sim::run_cluster(proxy, lrs, workload, sim::CostModel{},
                   [&events](const sim::FlowEvent& e) { events.push_back(e); });
  return events;
}

void report(const char* label, const CorrelationResult& result, double bound) {
  std::printf("  %-34s measured=%6.4f  analytical<=%6.4f  (n=%zu)\n", label,
              result.success_rate(), bound, result.attempts);
}

}  // namespace

int main() {
  std::printf("=== Section 6.2: empirical unlinkability vs analytical bounds ===\n");
  SplitMix64 rng(99);

  struct Case {
    int shuffle;
    int instances;
    double rps;
  };
  const std::vector<Case> cases = {
      {0, 1, 100}, {5, 1, 250}, {10, 1, 250}, {10, 2, 500}, {10, 4, 1000}};

  for (const auto& c : cases) {
    std::printf("\nS=%d, UA=IA=%d, %.0f RPS:\n", c.shuffle, c.instances, c.rps);
    const auto events = trace(c.shuffle, c.instances, c.rps);
    const double s = c.shuffle == 0 ? 1.0 : c.shuffle;
    report("requests, UA vantage (<= 1/S)",
           link_requests_at_ua(events, rng), 1.0 / s);
    report("requests, LRS vantage (<= 1/(S*I))",
           link_requests_at_lrs(events, rng),
           c.shuffle == 0 ? 1.0 : 1.0 / (s * c.instances));
    report("responses (<= 1/(S*U))", link_responses(events, rng),
           c.shuffle == 0 ? 1.0 : 1.0 / (s * c.instances));
  }

  std::printf("\nLow-traffic limitation (S=10, 1 pair, 3 RPS): shuffling\n"
              "degrades when the buffer cannot fill before the timer (§6.3):\n");
  const auto low = trace(10, 1, 3);
  report("requests, UA vantage", link_requests_at_ua(low, rng), 1.0);
  return 0;
}
