// Figure 7 reproduction: impact of request/response shuffling.
//   m3: all features, no shuffling (reference)
//   m5: S = 5
//   m6: S = 10
// Stub LRS, 1 UA + 1 IA, 50..250 RPS. The shuffling delay is inversely
// proportional to the per-instance request rate: S=10 at 50 RPS is the worst
// case, amortized to <200 ms median at higher rates.
#include "figure_common.hpp"

using namespace pprox::bench;

int main() {
  const pprox::sim::CostModel costs;
  const std::vector<double> rps = {50, 100, 150, 200, 250};

  print_figure_header("Figure 7: impact of shuffling (stub LRS, 1 UA + 1 IA)");
  for (const auto& config : {m3(), m5(), m6()}) {
    sweep(config, rps, costs);
  }

  std::printf("\nExpected shape (paper): at 50 RPS shuffling dominates (S=10 too"
              "\nhigh for most SLOs, S=5 within a few hundred ms); at >=100 RPS"
              "\nmedians stay well below 200 ms for both.\n");
  return 0;
}
