// Figure 8 reproduction: horizontal scaling of the proxy service.
//   m6..m9: 1..4 instances per layer (2..8 nodes), all features, S = 10.
// Stub LRS, 50..1000 RPS. Each extra UA+IA pair adds ~250 RPS of capacity;
// over-provisioned low-RPS points expose the shuffle-timer latency floor
// (the motivation for elastic down-scaling, §5/§8.1.2).
#include "figure_common.hpp"

using namespace pprox::bench;

int main() {
  const pprox::sim::CostModel costs;
  const std::vector<double> rps = {50, 250, 500, 750, 1000};

  print_figure_header(
      "Figure 8: proxy horizontal scaling (stub LRS, S=10, 1..4 instance pairs)");
  for (const auto& config : {m6(), m7(), m8(), m9()}) {
    // The paper plots every configuration at every RPS it sustains; over-
    // provisioned points (high latency, low rate) are part of the message,
    // so do not stop at the first saturated point here — skip it instead.
    for (const double r : rps) {
      run_and_print_point(config, r, costs);
    }
  }

  std::printf("\nExpected shape (paper): each pair adds ~250 RPS before"
              "\nsaturation; 4 pairs sustain 1000 RPS under 200 ms median;"
              "\nover-provisioned points (e.g. m9 at 50 RPS) show the"
              "\nshuffle-timer floor.\n");
  return 0;
}
