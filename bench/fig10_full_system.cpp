// Figure 10 reproduction: the complete integrated system.
//   f1..f4 = (m6..m9 proxy) + (b1..b4 Harness): 1..4 proxy pairs in front of
//   3..12 Harness front-ends, all privacy features, S = 10.
// Latencies compose additively from Figures 8 and 9; the PProx
// infrastructure cost is 30% (f1) to 50% (f4) extra nodes.
#include "figure_common.hpp"

using namespace pprox::bench;

int main() {
  const pprox::sim::CostModel costs;
  const std::vector<double> rps = {50, 250, 500, 750, 1000};

  print_figure_header("Figure 10: PProx + Harness full system (f1..f4)");
  for (const auto& config : {f1(), f2(), f3(), f4()}) {
    for (const double r : rps) {
      run_and_print_point(config, r, costs);
    }
  }

  std::printf("\nExpected shape (paper): latency ~= Fig.8 + Fig.9 at each point;"
              "\n50 RPS points dominated by shuffling; 250-750 RPS medians"
              "\n100-200 ms and always below 300 ms; at 1000 RPS max ~450 ms"
              "\nwith median still below 200 ms.\n");
  return 0;
}
