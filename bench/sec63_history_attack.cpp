// §6.3 "History-based attacks" reproduction: an adversary targeting one IP
// collects, for each of the victim's get requests, the candidate set of S
// indistinguishable pseudonymized flows. Recurring candidates isolate the
// victim; the experiment measures how many observations that takes as a
// function of S and of the decoy population, and shows the paper's
// mitigation (HTTP redirection hiding client IPs) closing the attack.
#include <cstdio>

#include "attack/adversary.hpp"
#include "common/rand.hpp"

using namespace pprox;
using namespace pprox::attack;

namespace {

/// Simulates the candidate sets an adversary collects: the victim's
/// pseudonym plus S-1 decoys drawn from `population` concurrent users.
double rounds_to_identify(int s, int population, SplitMix64& rng,
                          int max_rounds = 200) {
  HistoryAttack attack;
  const std::string victim = "victim-pseudonym";
  for (int round = 1; round <= max_rounds; ++round) {
    std::vector<std::string> candidates = {victim};
    for (int i = 0; i < s - 1; ++i) {
      candidates.push_back("user-" +
                           std::to_string(rng.next_below(
                               static_cast<std::uint64_t>(population))));
    }
    attack.observe_round(candidates);
    if (attack.victim_identified()) return round;
  }
  return max_rounds;  // not identified within the horizon
}

double average_rounds(int s, int population, int trials, SplitMix64& rng) {
  double total = 0;
  for (int t = 0; t < trials; ++t) total += rounds_to_identify(s, population, rng);
  return total / trials;
}

}  // namespace

int main() {
  SplitMix64 rng(63);
  std::printf("=== Section 6.3: history-based attack on a targeted IP ===\n");
  std::printf("average observations until the victim's pseudonym is isolated\n");
  std::printf("(%d trials per cell; larger is better for the defender)\n\n", 50);

  std::printf("%-14s", "population");
  for (const int s : {5, 10, 20, 40}) std::printf("  S=%-6d", s);
  std::printf("\n");
  for (const int population : {100, 1'000, 10'000, 100'000}) {
    std::printf("%-14d", population);
    for (const int s : {5, 10, 20, 40}) {
      std::printf("  %-8.1f", average_rounds(s, population, 50, rng));
    }
    std::printf("\n");
  }

  std::printf("\nTakeaways (match the paper's discussion):\n"
              " * a handful of repeated observations suffices for ANY S —\n"
              "   shuffling alone cannot protect a heavily-targeted recurring\n"
              "   user, which is exactly why §6.3 flags this attack;\n"
              " * counter-intuitively, larger decoy populations make the\n"
              "   attack FASTER: random decoys almost never recur across\n"
              "   rounds, so two observations usually isolate the victim;\n"
              "   only small populations (recurring decoys) buy extra rounds.\n");

  std::printf("\nMitigation (paper §6.3): route get calls through an HTTP\n"
              "redirection at the application front-end, so every request\n"
              "carries the application's address. The adversary can no longer\n"
              "form per-victim candidate sets at all:\n");
  {
    // With redirection every observation round mixes ALL concurrent users'
    // flows — the candidate set is the entire active population, and the
    // intersection never shrinks below it.
    HistoryAttack attack;
    SplitMix64 rng2(99);
    for (int round = 0; round < 50; ++round) {
      std::vector<std::string> everyone;
      for (int i = 0; i < 500; ++i) {
        everyone.push_back("user-" + std::to_string(i));
      }
      (void)rng2;
      attack.observe_round(everyone);
    }
    std::printf("  after 50 rounds: %zu surviving candidates (victim %s)\n",
                attack.surviving_candidates().size(),
                attack.victim_identified() ? "IDENTIFIED" : "hidden");
  }
  return 0;
}
