// Figure 6 reproduction: cost of each privacy-enabling feature.
//   m1: plain two-layer proxying (no encryption, no SGX)
//   m2: + encryption      (client RSA, proxy RSA decrypt + det. AES)
//   m3: + SGX enclaves    (transition overhead)
//   m4: encryption with item pseudonymization DISABLED (§6.3 opt-out)
// Stub LRS, 1 UA + 1 IA instance, no shuffling, 50..250 RPS.
// Also prints the post-vs-get comparison of §8 footnote 9.
#include "figure_common.hpp"

using namespace pprox;
using namespace pprox::bench;

int main() {
  const sim::CostModel costs;
  const std::vector<double> rps = {50, 100, 150, 200, 250};

  print_figure_header(
      "Figure 6: impact of privacy features (stub LRS, 1 UA + 1 IA, no shuffling)");
  for (const auto& config : {m1(), m2(), m3(), m4()}) {
    sweep(config, rps, costs);
  }

  std::printf("\nExpected shape (paper): m1 < m2 with encryption adding more than"
              "\nSGX (m3-m2 is 2-5 ms, about half of m2-m1); m4 ~= m3 (item"
              "\npseudonymization is free).\n");

  // §8 footnote 9: post requests follow the same trends with marginally
  // lower latencies (no response list to re-encrypt).
  print_figure_header("Footnote 9: get-only vs post-only workload (config m3)");
  for (const double get_fraction : {1.0, 0.0}) {
    NamedProxyConfig config = m3();
    config.name = get_fraction == 1.0 ? "m3-get" : "m3-post";
    for (const double r : rps) {
      sim::WorkloadConfig w = standard_workload(r);
      w.get_fraction = get_fraction;
      const auto result = sim::run_cluster(config.proxy, config.lrs, w, costs);
      if (result.saturated) break;
      std::printf("%s\n", format_candlestick_row(point_label(config.name, r),
                                                  result.latencies.candlestick())
                               .c_str());
    }
  }
  return 0;
}
