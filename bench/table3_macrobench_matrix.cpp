// Table 3 reproduction: macro-benchmark configurations (Harness baseline
// b1..b4 and full-system f1..f4) with node budgets and the measured maximal
// sustainable throughput.
#include "figure_common.hpp"

using namespace pprox;
using namespace pprox::bench;

int main() {
  const pprox::sim::CostModel costs;
  const std::vector<double> grid = {50,  125, 250, 375, 500, 625,
                                    750, 875, 1000, 1125, 1250};

  std::printf("=== Table 3: macro-benchmark configurations (Harness LRS) ===\n");
  std::printf("%-6s %-5s %-5s %-4s %-4s %-10s %10s %10s\n", "cfg", "Enc",
              "SGX", "UA", "IA", "LRS", "paperRPS", "measRPS");
  struct Row {
    NamedProxyConfig config;
    double paper_rps;
  };
  const std::vector<Row> rows = {
      {b1(), 250}, {b2(), 500}, {b3(), 750}, {b4(), 1000},
      {f1(), 250}, {f2(), 500}, {f3(), 750}, {f4(), 1000},
  };
  for (const auto& row : rows) {
    const auto& c = row.config;
    const double measured = sim::max_stable_rps(c.proxy, c.lrs, costs, grid);
    char lrs_desc[32];
    std::snprintf(lrs_desc, sizeof(lrs_desc), "%d: %d+4",
                  c.lrs.frontend_nodes + 4, c.lrs.frontend_nodes);
    std::printf("%-6s %-5s %-5s %-4d %-4d %-10s %10.0f %10.0f\n",
                c.name.c_str(), c.proxy.enabled ? "yes" : "-",
                c.proxy.enabled ? "yes" : "-",
                c.proxy.enabled ? c.proxy.ua_instances : 0,
                c.proxy.enabled ? c.proxy.ia_instances : 0, lrs_desc,
                row.paper_rps, measured);
  }
  std::printf("\nLRS column: total nodes (front-ends + 4 support), matching the"
              "\npaper's deployments of 7/10/13/16 LRS nodes. f-configs add"
              "\n2..8 proxy nodes: +30%% (f1) to +50%% (f4) infrastructure.\n");
  return 0;
}
