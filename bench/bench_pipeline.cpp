// End-to-end proxy-pipeline benchmark: client -> UA -> IA -> LRS and back
// over the in-process transport, measured per request. This is the number
// the paper's Fig. 6 actually talks about — how much latency/throughput the
// privacy proxies add on top of the LRS — and the macro counterpart to
// bench_crypto's kernels: one post carries two RSA-OAEP encrypts (client),
// two RSA private ops (proxies), deterministic AES pseudonymization and a
// response-protection CTR pass, so the accelerated backend's kernel-level
// wins show up here diluted by transport and JSON overhead.
//
// Like bench_crypto, every benchmark registers a /portable and an /accel
// variant; scripts/bench_report.py turns the pair into BENCH_pipeline.json.
#include <benchmark/benchmark.h>

#include <optional>

#include "common/encoding.hpp"
#include "crypto/accel.hpp"
#include "crypto/drbg.hpp"
#include "lrs/harness.hpp"
#include "pprox/deployment.hpp"

namespace {

using namespace pprox;

/// One deployment per (backend, config) benchmark run. Constructed after
/// the backend is pinned so RSA keygen and key provisioning also run on the
/// measured path, but outside the timed loop either way.
struct PipelineFixture {
  explicit PipelineFixture(bool authenticated)
      : rng(to_bytes("bench-pipeline")),
        deployment(make_config(authenticated), lrs, rng),
        client(deployment.make_client(&rng)) {}

  static DeploymentConfig make_config(bool authenticated) {
    DeploymentConfig config;
    config.shuffle_size = 0;  // shuffling batches would hide per-op cost
    config.authenticated_responses = authenticated;
    return config;
  }

  void seed_and_train() {
    for (const auto& [u, i] :
         {std::pair<const char*, const char*>{"u1", "A"}, {"u1", "B"},
          {"u2", "A"}, {"u2", "B"}, {"u3", "C"}, {"probe", "A"}}) {
      if (!client.post_sync(u, i).ok()) std::abort();
    }
    lrs.train();
  }

  crypto::Drbg rng;
  lrs::HarnessServer lrs;
  Deployment deployment;
  ClientLibrary client;
};

bool pin_backend(benchmark::State& state, crypto::accel::Backend backend) {
  if (!crypto::accel::select_backend(backend)) {
    state.SkipWithError("hardware acceleration unavailable on this CPU");
    return false;
  }
  return true;
}

// Write path: one preference event through both proxies into the LRS.
void BM_PipelinePost(benchmark::State& state, crypto::accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  PipelineFixture fx(/*authenticated=*/false);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const std::string user = "user-" + std::to_string(seq % 64);
    const std::string item = "item-" + std::to_string(seq % 512);
    ++seq;
    const auto result = fx.client.post_sync(user, item);
    if (!result.ok()) {
      state.SkipWithError("post failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PipelinePost, portable, crypto::accel::Backend::kPortable)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelinePost, accel, crypto::accel::Backend::kAccelerated)
    ->Unit(benchmark::kMillisecond);

// Read path: recommendations for a trained user, response-protected with
// the per-request key k_u (plain CTR here; GCM variant below).
void BM_PipelineGet(benchmark::State& state, crypto::accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  PipelineFixture fx(/*authenticated=*/false);
  fx.seed_and_train();
  for (auto _ : state) {
    const auto recs = fx.client.get_sync("probe");
    if (!recs.ok() || recs.value().empty()) {
      state.SkipWithError("get failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PipelineGet, portable, crypto::accel::Backend::kPortable)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGet, accel, crypto::accel::Backend::kAccelerated)
    ->Unit(benchmark::kMillisecond);

// Read path with AES-GCM response protection — adds a GHASH pass per
// response block, so it leans on the CLMUL kernel too.
void BM_PipelineGetAuthenticated(benchmark::State& state,
                                 crypto::accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  PipelineFixture fx(/*authenticated=*/true);
  fx.seed_and_train();
  for (auto _ : state) {
    const auto recs = fx.client.get_sync("probe");
    if (!recs.ok() || recs.value().empty()) {
      state.SkipWithError("get failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PipelineGetAuthenticated, portable,
                  crypto::accel::Backend::kPortable)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGetAuthenticated, accel,
                  crypto::accel::Backend::kAccelerated)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
