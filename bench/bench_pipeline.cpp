// End-to-end proxy-pipeline benchmark: client -> UA -> IA -> LRS and back
// over the in-process transport, measured per request. This is the number
// the paper's Fig. 6 actually talks about — how much latency/throughput the
// privacy proxies add on top of the LRS — and the macro counterpart to
// bench_crypto's kernels: one post carries two RSA-OAEP encrypts (client),
// two RSA private ops (proxies), deterministic AES pseudonymization and a
// response-protection CTR pass, so the accelerated backend's kernel-level
// wins show up here diluted by transport and JSON overhead.
//
// Like bench_crypto, every benchmark registers a /portable and an /accel
// variant; scripts/bench_report.py turns the pair into BENCH_pipeline.json.
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

#include "common/encoding.hpp"
#include "crypto/accel.hpp"
#include "crypto/drbg.hpp"
#include "lrs/harness.hpp"
#include "pprox/deployment.hpp"

namespace {

using namespace pprox;

/// One deployment per (backend, config) benchmark run. Constructed after
/// the backend is pinned so RSA keygen and key provisioning also run on the
/// measured path, but outside the timed loop either way.
struct PipelineFixture {
  explicit PipelineFixture(bool authenticated, int shuffle_size = 0)
      : rng(to_bytes("bench-pipeline")),
        deployment(make_config(authenticated, shuffle_size), lrs, rng),
        client(deployment.make_client(&rng)) {}

  static DeploymentConfig make_config(bool authenticated, int shuffle_size) {
    DeploymentConfig config;
    // The per-op series keep shuffle_size = 0 (shuffling batches would hide
    // per-op cost); the batchS series below measure exactly that batching.
    config.shuffle_size = shuffle_size;
    // Short timer: the timed loop fills buffers in microseconds, so flushes
    // are size-triggered; the timer only drains the tail wave after the
    // loop, outside the measurement.
    config.shuffle_timeout = std::chrono::milliseconds(200);
    config.authenticated_responses = authenticated;
    if (shuffle_size > 0) {
      // One worker per proxy for the batchS series: on the 1-CPU bench
      // machines extra workers only add context-switch churn between the
      // submitting thread and the pool, which shows up as per-request noise
      // that can bury the batching amortization. The per-op series keep the
      // default pool so their committed baselines stay comparable.
      config.worker_threads = 1;
    }
    return config;
  }

  void seed_and_train() {
    for (const auto& [u, i] :
         {std::pair<const char*, const char*>{"u1", "A"}, {"u1", "B"},
          {"u2", "A"}, {"u2", "B"}, {"u3", "C"}, {"probe", "A"}}) {
      if (!client.post_sync(u, i).ok()) std::abort();
    }
    lrs.train();
  }

  crypto::Drbg rng;
  lrs::HarnessServer lrs;
  Deployment deployment;
  ClientLibrary client;
};

bool pin_backend(benchmark::State& state, crypto::accel::Backend backend) {
  if (!crypto::accel::select_backend(backend)) {
    state.SkipWithError("hardware acceleration unavailable on this CPU");
    return false;
  }
  return true;
}

// Write path: one preference event through both proxies into the LRS.
void BM_PipelinePost(benchmark::State& state, crypto::accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  PipelineFixture fx(/*authenticated=*/false);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const std::string user = "user-" + std::to_string(seq % 64);
    const std::string item = "item-" + std::to_string(seq % 512);
    ++seq;
    const auto result = fx.client.post_sync(user, item);
    if (!result.ok()) {
      state.SkipWithError("post failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PipelinePost, portable, crypto::accel::Backend::kPortable)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelinePost, accel, crypto::accel::Backend::kAccelerated)
    ->Unit(benchmark::kMillisecond);

// Read path: recommendations for a trained user, response-protected with
// the per-request key k_u (plain CTR here; GCM variant below).
void BM_PipelineGet(benchmark::State& state, crypto::accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  PipelineFixture fx(/*authenticated=*/false);
  fx.seed_and_train();
  for (auto _ : state) {
    const auto recs = fx.client.get_sync("probe");
    if (!recs.ok() || recs.value().empty()) {
      state.SkipWithError("get failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PipelineGet, portable, crypto::accel::Backend::kPortable)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGet, accel, crypto::accel::Backend::kAccelerated)
    ->Unit(benchmark::kMillisecond);

// Batched read path (ROADMAP item 3): S concurrent gets ride each shuffle
// flush, so the enclave transitions (one per flush instead of one per
// request), scratch acquisition, keystream derivation and wakeups amortize
// across the batch. The client-side RSA-OAEP encryptions are prebuilt
// outside the timed loop — they are user-device work, and at ~74us apiece
// they would otherwise swamp the proxy-side cost this series measures. Each
// iteration submits one request; every S-th iteration waits for the whole
// wave, so per-iteration cpu_time is per-request proxy cost at batch size S.
void BM_PipelineGet(benchmark::State& state, crypto::accel::Backend backend,
                    int batch) {
  if (!pin_backend(state, backend)) return;
  PipelineFixture fx(/*authenticated=*/false, batch);
  fx.seed_and_train();
  std::vector<http::HttpRequest> wave;
  for (int i = 0; i < batch; ++i) {
    auto call = fx.client.build_get_request("probe");
    if (!call.ok()) {
      state.SkipWithError("build_get_request failed");
      return;
    }
    wave.push_back(std::move(call.value().request));
  }
  const auto entry = fx.deployment.entry_channel();

  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t done = 0;
  std::uint64_t target = 0;
  bool failed = false;
  // Notify only when the wave completes: a notify per response would wake
  // the waiting bench thread S-1 extra times per wave, charging it a
  // constant per-request futex cost that buries the batching amortization
  // this series exists to show.
  const auto on_response = [&](http::HttpResponse response) {
    std::lock_guard<std::mutex> lock(mutex);
    if (response.status != 200) failed = true;
    ++done;
    if (done == target) cv.notify_one();
  };

  std::uint64_t sent = 0;
  bool errored = false;
  for (auto _ : state) {
    entry->send(wave[sent % wave.size()], on_response);
    ++sent;
    if (sent % wave.size() == 0) {
      std::unique_lock<std::mutex> lock(mutex);
      target = sent;
      cv.wait(lock, [&] { return done >= target; });
      if (failed && !errored) {
        errored = true;
        state.SkipWithError("get failed");
      }
    }
  }
  {
    // Drain the tail wave (timer-flushed) before tearing down the latch.
    std::unique_lock<std::mutex> lock(mutex);
    target = sent;
    cv.wait(lock, [&] { return done >= target; });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PipelineGet, batchS1/portable,
                  crypto::accel::Backend::kPortable, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGet, batchS1/accel,
                  crypto::accel::Backend::kAccelerated, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGet, batchS8/portable,
                  crypto::accel::Backend::kPortable, 8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGet, batchS8/accel,
                  crypto::accel::Backend::kAccelerated, 8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGet, batchS32/portable,
                  crypto::accel::Backend::kPortable, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGet, batchS32/accel,
                  crypto::accel::Backend::kAccelerated, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGet, batchS128/portable,
                  crypto::accel::Backend::kPortable, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGet, batchS128/accel,
                  crypto::accel::Backend::kAccelerated, 128)
    ->Unit(benchmark::kMillisecond);

// Read path with AES-GCM response protection — adds a GHASH pass per
// response block, so it leans on the CLMUL kernel too.
void BM_PipelineGetAuthenticated(benchmark::State& state,
                                 crypto::accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  PipelineFixture fx(/*authenticated=*/true);
  fx.seed_and_train();
  for (auto _ : state) {
    const auto recs = fx.client.get_sync("probe");
    if (!recs.ok() || recs.value().empty()) {
      state.SkipWithError("get failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PipelineGetAuthenticated, portable,
                  crypto::accel::Backend::kPortable)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineGetAuthenticated, accel,
                  crypto::accel::Backend::kAccelerated)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
