// Microbenchmarks for the crypto substrate. These are the real measured
// costs behind the simulator's CostModel (DESIGN.md "calibration"): RSA
// private ops dominate the proxy's per-request CPU, deterministic AES is
// nearly free — which is why Fig. 6's encryption bar dwarfs the SGX bar and
// why m4 (no item pseudonymization) is indistinguishable from m3.
#include <benchmark/benchmark.h>

#include "crypto/ctr.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hybrid.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "pprox/message.hpp"

namespace {

using namespace pprox;
using namespace pprox::crypto;

Drbg& bench_rng() {
  static Drbg rng(to_bytes("bench-crypto"));
  return rng;
}

const RsaKeyPair& keys_1024() {
  static RsaKeyPair keys = rsa_generate(1024, bench_rng());
  return keys;
}

const RsaKeyPair& keys_2048() {
  static RsaKeyPair keys = rsa_generate(2048, bench_rng());
  return keys;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = bench_rng().bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = bench_rng().bytes(32);
  const Bytes data = bench_rng().bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_AesBlock(benchmark::State& state) {
  const Aes aes(bench_rng().bytes(32));
  std::uint8_t block[16] = {};
  for (auto _ : state) {
    aes.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_AesBlock);

void BM_AesCtr(benchmark::State& state) {
  const Aes aes(bench_rng().bytes(32));
  const Bytes data = bench_rng().bytes(static_cast<std::size_t>(state.range(0)));
  const std::array<std::uint8_t, 16> iv{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctr_crypt(aes, iv, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(48)->Arg(2048)->Arg(65536);

// The pseudonymization primitive: det_enc over one identifier block.
// CostModel.det_enc_ms derives from this.
void BM_DetEncIdBlock(benchmark::State& state) {
  const DeterministicCipher det(bench_rng().bytes(32));
  const Bytes block = pad_identifier("user-123456").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.encrypt(block));
  }
}
BENCHMARK(BM_DetEncIdBlock);

// Response protection: AES-CTR random-IV over the fixed response block.
void BM_ResponseBlockEncrypt(benchmark::State& state) {
  const RandomIvCipher cipher(bench_rng().bytes(32));
  const Bytes block(kResponseBlockSize, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.encrypt(block, bench_rng()));
  }
}
BENCHMARK(BM_ResponseBlockEncrypt);

// Client-side cost: CostModel.client_encrypt_ms derives from two of these.
void BM_RsaOaepEncrypt(benchmark::State& state) {
  const auto& keys = state.range(0) == 1024 ? keys_1024() : keys_2048();
  const Bytes block = pad_identifier("user-123456").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_encrypt_oaep(keys.pub, block, bench_rng()));
  }
}
BENCHMARK(BM_RsaOaepEncrypt)->Arg(1024)->Arg(2048);

// The proxy's dominant cost: CostModel.rsa_decrypt_ms derives from this.
void BM_RsaOaepDecrypt(benchmark::State& state) {
  const auto& keys = state.range(0) == 1024 ? keys_1024() : keys_2048();
  const Bytes block = pad_identifier("user-123456").value();
  const Bytes ct = rsa_encrypt_oaep(keys.pub, block, bench_rng()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_decrypt_oaep(keys.priv, ct));
  }
}
BENCHMARK(BM_RsaOaepDecrypt)->Arg(1024)->Arg(2048);

void BM_RsaSign(benchmark::State& state) {
  const Bytes msg = bench_rng().bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign_sha256(keys_1024().priv, msg));
  }
}
BENCHMARK(BM_RsaSign);

void BM_RsaVerify(benchmark::State& state) {
  const Bytes msg = bench_rng().bytes(256);
  const Bytes sig = rsa_sign_sha256(keys_1024().priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify_sha256(keys_1024().pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify);

void BM_HybridProvisioningBlob(benchmark::State& state) {
  const Bytes secrets = bench_rng().bytes(1200);  // ~ serialized LayerSecrets
  for (auto _ : state) {
    benchmark::DoNotOptimize(hybrid_encrypt(keys_1024().pub, secrets, bench_rng()));
  }
}
BENCHMARK(BM_HybridProvisioningBlob);

void BM_DrbgFill(benchmark::State& state) {
  Bytes buf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bench_rng().fill(buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DrbgFill)->Arg(32)->Arg(4096);

void BM_BigIntModExp1024(benchmark::State& state) {
  Drbg& rng = bench_rng();
  const BigInt base = BigInt::random_with_bits(1024, rng);
  const BigInt exp = BigInt::random_with_bits(1024, rng);
  const BigInt mod = BigInt::random_with_bits(1024, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.modexp(exp, mod));
  }
}
BENCHMARK(BM_BigIntModExp1024);

}  // namespace

BENCHMARK_MAIN();
