// Microbenchmarks for the crypto substrate. These are the real measured
// costs behind the simulator's CostModel (DESIGN.md "calibration"): RSA
// private ops dominate the proxy's per-request CPU, deterministic AES is
// nearly free — which is why Fig. 6's encryption bar dwarfs the SGX bar and
// why m4 (no item pseudonymization) is indistinguishable from m3. With the
// dispatch layer (crypto/accel.hpp) that gap widens further: on AES-NI
// hardware the pipelined CTR/GCM kernels run >20x the portable S-box path
// and Montgomery reduction cuts RSA-2048 private ops to under half the
// divmod baseline, so pseudonymization drops even deeper below the RSA bar.
//
// Every hot-path benchmark is registered twice, as <name>/portable and
// <name>/accel (BENCHMARK_CAPTURE), pinning the corresponding backend via
// accel::select_backend. scripts/bench_report.py pairs them up and emits
// the speedup table in BENCH_crypto.json; acceptance floors are >=5x for
// CTR/GCM on 1 KiB+ payloads and >=2x for RSA-2048 private ops.
#include <benchmark/benchmark.h>

#include "crypto/accel.hpp"
#include "crypto/ctr.hpp"
#include "crypto/drbg.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hybrid.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "pprox/message.hpp"

namespace {

using namespace pprox;
using namespace pprox::crypto;

Drbg& bench_rng() {
  static Drbg rng(to_bytes("bench-crypto"));
  return rng;
}

const RsaKeyPair& keys_1024() {
  static RsaKeyPair keys = rsa_generate(1024, bench_rng());
  return keys;
}

const RsaKeyPair& keys_2048() {
  static RsaKeyPair keys = rsa_generate(2048, bench_rng());
  return keys;
}

/// Pins `backend` for a dual-registered benchmark; skips the accelerated
/// variant cleanly on CPUs without AES-NI/CLMUL so the JSON report stays
/// machine-readable everywhere.
bool pin_backend(benchmark::State& state, accel::Backend backend) {
  if (!accel::select_backend(backend)) {
    state.SkipWithError("hardware acceleration unavailable on this CPU");
    return false;
  }
  return true;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = bench_rng().bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = bench_rng().bytes(32);
  const Bytes data = bench_rng().bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_AesBlock(benchmark::State& state, accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  const Aes aes(bench_rng().bytes(32));
  std::uint8_t block[16] = {};
  for (auto _ : state) {
    aes.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK_CAPTURE(BM_AesBlock, portable, accel::Backend::kPortable);
BENCHMARK_CAPTURE(BM_AesBlock, accel, accel::Backend::kAccelerated);

void BM_AesCtr(benchmark::State& state, accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  const Aes aes(bench_rng().bytes(32));
  const Bytes data = bench_rng().bytes(static_cast<std::size_t>(state.range(0)));
  const std::array<std::uint8_t, 16> iv{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctr_crypt(aes, iv, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK_CAPTURE(BM_AesCtr, portable, accel::Backend::kPortable)
    ->Arg(48)->Arg(1024)->Arg(16384)->Arg(65536);
BENCHMARK_CAPTURE(BM_AesCtr, accel, accel::Backend::kAccelerated)
    ->Arg(48)->Arg(1024)->Arg(16384)->Arg(65536);

// GCM is the hardened response-protection option; seal = CTR + GHASH, so it
// exercises both the AES-NI pipeline and the CLMUL kernel.
void BM_GcmSeal(benchmark::State& state, accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  const AesGcm gcm(bench_rng().bytes(32));
  const Bytes data = bench_rng().bytes(static_cast<std::size_t>(state.range(0)));
  std::array<std::uint8_t, AesGcm::kNonceSize> nonce{};
  bench_rng().fill(MutByteView(nonce.data(), nonce.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.seal(nonce, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK_CAPTURE(BM_GcmSeal, portable, accel::Backend::kPortable)
    ->Arg(1024)->Arg(16384);
BENCHMARK_CAPTURE(BM_GcmSeal, accel, accel::Backend::kAccelerated)
    ->Arg(1024)->Arg(16384);

void BM_GcmOpen(benchmark::State& state, accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  const AesGcm gcm(bench_rng().bytes(32));
  const Bytes data = bench_rng().bytes(static_cast<std::size_t>(state.range(0)));
  std::array<std::uint8_t, AesGcm::kNonceSize> nonce{};
  bench_rng().fill(MutByteView(nonce.data(), nonce.size()));
  const Bytes sealed = gcm.seal(nonce, data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.open(nonce, sealed));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK_CAPTURE(BM_GcmOpen, portable, accel::Backend::kPortable)->Arg(1024);
BENCHMARK_CAPTURE(BM_GcmOpen, accel, accel::Backend::kAccelerated)->Arg(1024);

// The pseudonymization primitive: det_enc over one identifier block.
// CostModel.det_enc_ms derives from this.
void BM_DetEncIdBlock(benchmark::State& state, accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  const DeterministicCipher det(bench_rng().bytes(32));
  const Bytes block = pad_identifier("user-123456").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.encrypt(block));
  }
}
BENCHMARK_CAPTURE(BM_DetEncIdBlock, portable, accel::Backend::kPortable);
BENCHMARK_CAPTURE(BM_DetEncIdBlock, accel, accel::Backend::kAccelerated);

// Response protection: AES-CTR random-IV over the fixed response block.
void BM_ResponseBlockEncrypt(benchmark::State& state, accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  const RandomIvCipher cipher(bench_rng().bytes(32));
  const Bytes block(kResponseBlockSize, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.encrypt(block, bench_rng()));
  }
}
BENCHMARK_CAPTURE(BM_ResponseBlockEncrypt, portable, accel::Backend::kPortable);
BENCHMARK_CAPTURE(BM_ResponseBlockEncrypt, accel, accel::Backend::kAccelerated);

// Client-side cost: CostModel.client_encrypt_ms derives from two of these.
void BM_RsaOaepEncrypt(benchmark::State& state, accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  const auto& keys = state.range(0) == 1024 ? keys_1024() : keys_2048();
  const Bytes block = pad_identifier("user-123456").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_encrypt_oaep(keys.pub, block, bench_rng()));
  }
}
BENCHMARK_CAPTURE(BM_RsaOaepEncrypt, portable, accel::Backend::kPortable)
    ->Arg(1024)->Arg(2048);
BENCHMARK_CAPTURE(BM_RsaOaepEncrypt, accel, accel::Backend::kAccelerated)
    ->Arg(1024)->Arg(2048);

// The proxy's dominant cost: CostModel.rsa_decrypt_ms derives from this.
// /accel runs CRT over Montgomery fixed-window modexp; /portable is the
// original divmod square-and-multiply.
void BM_RsaOaepDecrypt(benchmark::State& state, accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  const auto& keys = state.range(0) == 1024 ? keys_1024() : keys_2048();
  const Bytes block = pad_identifier("user-123456").value();
  const Bytes ct = rsa_encrypt_oaep(keys.pub, block, bench_rng()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_decrypt_oaep(keys.priv, ct));
  }
}
BENCHMARK_CAPTURE(BM_RsaOaepDecrypt, portable, accel::Backend::kPortable)
    ->Arg(1024)->Arg(2048);
BENCHMARK_CAPTURE(BM_RsaOaepDecrypt, accel, accel::Backend::kAccelerated)
    ->Arg(1024)->Arg(2048);

void BM_RsaSign(benchmark::State& state, accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  const Bytes msg = bench_rng().bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign_sha256(keys_1024().priv, msg));
  }
}
BENCHMARK_CAPTURE(BM_RsaSign, portable, accel::Backend::kPortable);
BENCHMARK_CAPTURE(BM_RsaSign, accel, accel::Backend::kAccelerated);

void BM_RsaVerify(benchmark::State& state) {
  const Bytes msg = bench_rng().bytes(256);
  const Bytes sig = rsa_sign_sha256(keys_1024().priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify_sha256(keys_1024().pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify);

void BM_HybridProvisioningBlob(benchmark::State& state) {
  const Bytes secrets = bench_rng().bytes(1200);  // ~ serialized LayerSecrets
  for (auto _ : state) {
    benchmark::DoNotOptimize(hybrid_encrypt(keys_1024().pub, secrets, bench_rng()));
  }
}
BENCHMARK(BM_HybridProvisioningBlob);

void BM_DrbgFill(benchmark::State& state) {
  Bytes buf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bench_rng().fill(buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DrbgFill)->Arg(32)->Arg(4096);

void BM_BigIntModExp(benchmark::State& state, accel::Backend backend) {
  if (!pin_backend(state, backend)) return;
  Drbg rng(to_bytes("bench-modexp"));  // same operands for both backends
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt base = BigInt::random_with_bits(bits, rng);
  const BigInt exp = BigInt::random_with_bits(bits, rng);
  BigInt mod = BigInt::random_with_bits(bits, rng);
  if (!mod.is_odd()) mod = mod + BigInt(1);  // keep the Montgomery path open
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.modexp(exp, mod));
  }
}
BENCHMARK_CAPTURE(BM_BigIntModExp, portable, accel::Backend::kPortable)
    ->Arg(1024)->Arg(2048);
BENCHMARK_CAPTURE(BM_BigIntModExp, accel, accel::Backend::kAccelerated)
    ->Arg(1024)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
