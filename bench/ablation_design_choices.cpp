// Ablation studies for the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//   A. shuffle buffer size S: latency vs adversary success (finer grid than
//      Fig. 7 / §6.2);
//   B. shuffle flush timer: the latency floor under low traffic;
//   C. multi-tenancy (§6.3 mitigation): sharing one proxy layer across
//      applications restores shuffle anonymity for low-traffic tenants;
//   D. service-time jitter sensitivity of the latency distribution.
#include <cstdio>

#include "attack/correlation.hpp"
#include "figure_common.hpp"

using namespace pprox;
using namespace pprox::bench;

namespace {

sim::WorkloadConfig quick(double rps) {
  sim::WorkloadConfig w;
  w.rps = rps;
  w.duration_ms = 30'000;
  w.warmup_ms = 5'000;
  w.cooldown_ms = 5'000;
  w.repetitions = 2;
  w.seed = 13;
  return w;
}

std::vector<sim::FlowEvent> trace(const sim::ProxyConfig& proxy, double rps) {
  sim::LrsConfig lrs;
  sim::WorkloadConfig w = quick(rps);
  w.repetitions = 1;
  w.warmup_ms = 0;
  w.cooldown_ms = 0;
  std::vector<sim::FlowEvent> events;
  sim::run_cluster(proxy, lrs, w, sim::CostModel{},
                   [&events](const sim::FlowEvent& e) { events.push_back(e); });
  return events;
}

}  // namespace

int main() {
  const sim::CostModel costs;
  SplitMix64 rng(7);

  std::printf("=== Ablation A: shuffle size S (1 pair, 250 RPS) ===\n");
  std::printf("%-4s %10s %10s %14s\n", "S", "med(ms)", "p95(ms)", "attackSuccess");
  for (const int s : {0, 2, 5, 10, 20, 40}) {
    sim::ProxyConfig proxy;
    proxy.shuffle_size = s;
    sim::LrsConfig lrs;
    const auto result = sim::run_cluster(proxy, lrs, quick(250), costs);
    const auto attack =
        attack::link_requests_at_ua(trace(proxy, 250), rng);
    std::printf("%-4d %10.1f %10.1f %14.4f\n", s,
                result.latencies.percentile(50), result.latencies.percentile(95),
                attack.success_rate());
  }
  std::printf("(latency grows ~linearly in S; attack success ~1/S: S=10 is the\n"
              " paper's privacy/latency sweet spot)\n");

  std::printf("\n=== Ablation B: shuffle flush timer (S=10, 1 pair, 20 RPS) ===\n");
  std::printf("%-10s %10s %10s\n", "timer(ms)", "med(ms)", "p99(ms)");
  for (const double t : {100.0, 250.0, 500.0, 1000.0}) {
    sim::ProxyConfig proxy;
    proxy.shuffle_size = 10;
    proxy.shuffle_timeout_ms = t;
    sim::LrsConfig lrs;
    const auto result = sim::run_cluster(proxy, lrs, quick(20), costs);
    std::printf("%-10.0f %10.1f %10.1f\n", t, result.latencies.percentile(50),
                result.latencies.percentile(99));
  }
  std::printf("(non-monotone: timers shorter than the buffer fill time S/rate\n"
              " flush early and bound the delay; timers just above it make\n"
              " every batch wait the full timeout; much longer timers let the\n"
              " buffer fill by size again)\n");

  std::printf("\n=== Ablation C: multi-tenancy at low per-tenant traffic ===\n");
  std::printf("%-28s %10s %14s\n", "deployment", "rps", "attackSuccess");
  {
    sim::ProxyConfig proxy;
    proxy.shuffle_size = 10;
    // One tenant alone at 10 RPS: buffers fill slowly, shuffling degrades.
    const auto alone = attack::link_requests_at_ua(trace(proxy, 10), rng);
    // The same tenant sharing the proxy with 9 others (combined 100 RPS):
    // its requests hide in the common shuffle buffers (§6.3 mitigation).
    const auto shared = attack::link_requests_at_ua(trace(proxy, 100), rng);
    std::printf("%-28s %10.0f %14.4f\n", "tenant alone", 10.0, alone.success_rate());
    std::printf("%-28s %10.0f %14.4f\n", "shared proxy (10 tenants)", 100.0,
                shared.success_rate());
  }

  std::printf("\n=== Ablation D: CPU jitter sensitivity (m6 @ 250 RPS) ===\n");
  std::printf("%-8s %10s %10s %10s\n", "sigma", "p25(ms)", "med(ms)", "p95(ms)");
  for (const double sigma : {0.0, 0.12, 0.3, 0.6}) {
    sim::CostModel jittered = costs;
    jittered.cpu_jitter_sigma = sigma;
    sim::ProxyConfig proxy;
    proxy.shuffle_size = 10;
    sim::LrsConfig lrs;
    const auto result = sim::run_cluster(proxy, lrs, quick(250), jittered);
    std::printf("%-8.2f %10.1f %10.1f %10.1f\n", sigma,
                result.latencies.percentile(25), result.latencies.percentile(50),
                result.latencies.percentile(95));
  }
  std::printf("(moderate jitter leaves the distribution stable, so the figure\n"
              " shapes do not hinge on this parameter; extreme jitter inflates\n"
              " the mean service time — lognormal mean grows with sigma — and\n"
              " pushes the deployment into saturation)\n");
  return 0;
}
