// Table 2 reproduction: the micro-benchmark configuration matrix with the
// measured maximal sustainable RPS per configuration (the table's "RPS"
// column is the highest stable rate, a measured quantity).
#include "figure_common.hpp"

using namespace pprox;
using namespace pprox::bench;

int main() {
  const pprox::sim::CostModel costs;
  const std::vector<double> grid = {50,  125, 250, 375, 500, 625,
                                    750, 875, 1000, 1125, 1250};

  std::printf("=== Table 2: micro-benchmark configurations (stub LRS) ===\n");
  std::printf("%-6s %-5s %-5s %-5s %-4s %-4s %10s %10s\n", "cfg", "Enc", "SGX",
              "S", "UA", "IA", "paperRPS", "measRPS");
  struct Row {
    NamedProxyConfig config;
    const char* enc;
    double paper_rps;
  };
  const std::vector<Row> rows = {
      {m1(), "no", 250},  {m2(), "yes", 250}, {m3(), "yes", 250},
      {m4(), "*", 250},   {m5(), "yes", 250}, {m6(), "yes", 250},
      {m7(), "yes", 500}, {m8(), "yes", 750}, {m9(), "yes", 1000},
  };
  for (const auto& row : rows) {
    const double measured =
        sim::max_stable_rps(row.config.proxy, row.config.lrs, costs, grid);
    std::printf("%-6s %-5s %-5s %-5d %-4d %-4d %10.0f %10.0f\n",
                row.config.name.c_str(), row.enc,
                row.config.proxy.sgx ? "yes" : "no",
                row.config.proxy.shuffle_size, row.config.proxy.ua_instances,
                row.config.proxy.ia_instances, row.paper_rps, measured);
  }
  std::printf("\nNote: the paper tested m1-m6 up to 250 RPS on a single instance"
              "\npair; \"*\" = encryption with item pseudonymization disabled."
              "\nmeasRPS is the last stable grid point before saturation.\n");
  return 0;
}
