// Breach drill: walk through the paper's §6.1 adversary cases against a live
// deployment. The adversary taps every wire, dumps the LRS database, then
// breaks one enclave layer at a time — and the user-interest link survives
// until BOTH layers fall (which the threat model excludes).
//
//   $ ./breach_drill
#include <cstdio>

#include "attack/adversary.hpp"
#include "crypto/drbg.hpp"
#include "json/json.hpp"
#include "lrs/harness.hpp"
#include "pprox/deployment.hpp"
#include "pprox/rotation.hpp"

using namespace pprox;

namespace {

void report(const char* what, const Result<std::string>& r) {
  if (r.ok()) {
    std::printf("    %-38s -> RECOVERED: %s\n", what, r.value().c_str());
  } else {
    std::printf("    %-38s -> opaque (%s)\n", what, r.error().message.c_str());
  }
}

}  // namespace

int main() {
  crypto::Drbg rng(to_bytes("breach-drill"));
  lrs::HarnessServer lrs;
  DeploymentConfig config;
  Deployment deployment(config, lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);

  // The victim's sensitive access, tapped on the wire by the adversary.
  const std::string victim = "patient-007";
  const std::string sensitive = "rare-disease-forum";
  auto request = client.build_post_request(victim, sensitive);
  attack::InterceptedPost tap;
  tap.source_address = "198.51.100.7";
  tap.user_field = *json::get_string_field(request.value().body, "user");
  tap.item_field = *json::get_string_field(request.value().body, "item");

  std::promise<http::HttpResponse> promise;
  auto future = promise.get_future();
  deployment.entry_channel()->send(std::move(request.value()),
                                   [&promise](http::HttpResponse r) {
                                     promise.set_value(std::move(r));
                                   });
  std::printf("victim's post delivered (HTTP %d); adversary holds the tap and\n"
              "a full dump of the LRS database.\n\n",
              future.get().status);

  std::vector<attack::LrsDbRow> database;
  for (const auto& [u, i] : lrs.dump_events()) database.push_back({u, i});

  attack::Adversary adversary;
  const auto show_state = [&](const char* phase) {
    std::printf("%s\n", phase);
    report("user from intercepted message", adversary.recover_user(tap));
    report("item from intercepted message", adversary.recover_item(tap));
    report("user pseudonym in LRS database",
           adversary.de_pseudonymize_user(database[0]));
    report("item pseudonym in LRS database",
           adversary.de_pseudonymize_item(database[0]));
    const bool linked =
        adversary.can_link(victim, sensitive, database, {tap});
    std::printf("    => user-interest link %s\n\n",
                linked ? "*** BROKEN ***" : "HOLDS");
  };

  show_state("[phase 0] no enclave breached:");

  // Side-channel attack succeeds against one UA enclave (tens of minutes of
  // effort in practice — paper §2.3).
  deployment.ua_enclave(0).breach();
  adversary.steal_ua_secrets(
      LayerSecrets::deserialize(
          deployment.ua_enclave(0).exfiltrate_secrets().value())
          .value());
  show_state("[phase 1] UA enclave breached (skUA, kUA stolen):");

  std::printf("breach detected -> operators rotate keys; but suppose the\n"
              "adversary ALSO breaks the IA layer before countermeasures:\n\n");
  deployment.ia_enclave(0).breach();
  adversary.steal_ia_secrets(
      LayerSecrets::deserialize(
          deployment.ia_enclave(0).exfiltrate_secrets().value())
          .value());
  show_state("[phase 2] both layers breached (outside the threat model):");

  std::printf("conclusion: unlinkability rests exactly on the one-enclave-at-\n"
              "a-time assumption, as analyzed in the paper's section 6.1.\n\n");

  // Phase 3: detection and recovery. A side-channel attack is slow and
  // degrades the enclave's performance — the monitor (Varys/Déjà-Vu
  // stand-in) spots it, and the operator rotates keys: fresh layer secrets,
  // database re-encrypted, fresh enclaves provisioned.
  std::printf("[phase 3] detection and recovery:\n");
  BreachMonitor monitor(2.0, 16, 8);
  for (int i = 0; i < 16; ++i) monitor.record("ua-0", 1.1);   // calm baseline
  for (int i = 0; i < 8; ++i) monitor.record("ua-0", 6.4);    // attack running
  std::printf("    monitor: baseline %.1f ms/ecall, attack suspected: %s\n",
              monitor.baseline_ms("ua-0"),
              monitor.attack_suspected("ua-0") ? "YES" : "no");

  const auto rotation = rotate_keys(deployment.application_keys(), lrs, rng);
  if (!rotation.ok()) {
    std::printf("    rotation failed: %s\n", rotation.error().message.c_str());
    return 1;
  }
  std::printf("    rotated keys; %zu database rows re-encrypted\n",
              rotation.value().rows_reencrypted);

  // The adversary still holds ALL the old secrets — now worthless.
  std::vector<attack::LrsDbRow> rotated_db;
  for (const auto& [u, i] : lrs.dump_events()) rotated_db.push_back({u, i});
  const bool still_linked =
      adversary.can_link(victim, sensitive, rotated_db, {});
  std::printf("    old stolen secrets vs rotated database: link %s\n",
              still_linked ? "*** STILL BROKEN ***" : "RESTORED (loot useless)");
  return still_linked ? 1 : 0;
}
