// Movie recommendation-as-a-service: the paper's end-to-end scenario on a
// downscaled synthetic MovieLens workload. Demonstrates the headline
// functional claim — recommendations through PProx are IDENTICAL to an
// unprotected deployment (no accuracy loss) — while the provider's database
// holds only pseudonyms.
//
//   $ ./movie_raas [ratings]        (default 6000)
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "crypto/drbg.hpp"
#include "json/json.hpp"
#include "lrs/harness.hpp"
#include "pprox/deployment.hpp"
#include "workload/movielens.hpp"

int main(int argc, char** argv) {
  using namespace pprox;
  using Clock = std::chrono::steady_clock;

  workload::MovieLensParams params;
  params.users = 800;
  params.items = 1'500;
  params.ratings = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6'000;
  params.seed = 2014;
  const workload::MovieLensGenerator dataset(params);
  std::printf("synthetic MovieLens slice: %zu ratings, %zu users, %zu movies\n",
              dataset.events().size(), dataset.distinct_users(),
              dataset.distinct_items());

  crypto::Drbg rng(to_bytes("movie-raas"));
  lrs::HarnessServer protected_lrs;
  lrs::HarnessServer reference_lrs;  // unprotected control

  DeploymentConfig config;
  config.ua_instances = 2;
  config.ia_instances = 2;
  config.shuffle_size = 10;
  config.shuffle_timeout = std::chrono::milliseconds(100);
  Deployment deployment(config, protected_lrs, rng);
  ClientLibrary client = deployment.make_client(&rng);

  // Phase 1: inject feedback (through PProx and, in parallel, into the
  // control LRS with plaintext ids). Injection is asynchronous with a
  // bounded in-flight window so shuffle buffers fill from concurrent
  // traffic, like a real request stream.
  const auto inject_start = Clock::now();
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t in_flight = 0, posted = 0;
  constexpr std::size_t kWindow = 64;
  for (const auto& event : dataset.events()) {
    {
      std::unique_lock lock(mutex);
      cv.wait(lock, [&] { return in_flight < kWindow; });
      ++in_flight;
    }
    client.post(event.user, event.item, [&](Status s) {
      std::lock_guard lock(mutex);
      if (s.ok()) ++posted;
      --in_flight;
      cv.notify_all();
    });
    reference_lrs.post_event(event.user, event.item);
  }
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return in_flight == 0; });
  }
  const double inject_s =
      std::chrono::duration<double>(Clock::now() - inject_start).count();
  std::printf("phase 1: injected %zu/%zu events through PProx (%.1f ev/s)\n",
              posted, dataset.events().size(),
              static_cast<double>(posted) / inject_s);

  // Phase 2: train both models (identical algorithm, identical events —
  // just pseudonymized ids on the protected side).
  const std::size_t indexed = protected_lrs.train();
  reference_lrs.train();
  std::printf("phase 2: CCO training done, %zu items indexed\n", indexed);

  // Phase 3: collect recommendations for a sample of users and compare
  // against the unprotected control. The LRS breaks score ties by item id,
  // and pseudonymized ids sort differently than plaintext ids — so lists may
  // legitimately differ *among equally-scored items*. Anything else would be
  // an accuracy violation.
  std::size_t compared = 0, identical = 0, tie_equivalent = 0, divergent = 0;
  for (std::size_t u = 0; u < 50; ++u) {
    const std::string user = dataset.user_id(u * 7 % params.users);
    const auto through_pprox = client.get_sync(user);
    if (!through_pprox.ok()) continue;

    // Control: scored query against the unprotected LRS (extra depth so
    // every hit has a known score).
    const auto scored = reference_lrs.query_scored(user, 100000);
    std::map<std::string, double> score_of;
    std::vector<std::string> expected;
    for (const auto& hit : scored) {
      score_of[hit.item_id] = hit.score;
      if (expected.size() < 20) expected.push_back(hit.item_id);
    }
    ++compared;
    if (through_pprox.value() == expected) {
      ++identical;
      continue;
    }
    // Positions that differ must hold items with equal scores.
    bool only_ties = through_pprox.value().size() == expected.size();
    for (std::size_t i = 0; only_ties && i < expected.size(); ++i) {
      const auto& got = through_pprox.value()[i];
      const auto it = score_of.find(got);
      only_ties = it != score_of.end() &&
                  std::abs(it->second - score_of[expected[i]]) < 1e-9;
    }
    if (only_ties) {
      ++tie_equivalent;
    } else {
      ++divergent;
      if (divergent == 1 && std::getenv("PPROX_DEBUG") != nullptr) {
        std::printf("DEBUG divergence for %s (expected %zu, got %zu):\n",
                    user.c_str(), expected.size(), through_pprox.value().size());
        for (std::size_t i = 0;
             i < std::max(expected.size(), through_pprox.value().size()); ++i) {
          const std::string e = i < expected.size() ? expected[i] : "-";
          const std::string g =
              i < through_pprox.value().size() ? through_pprox.value()[i] : "-";
          const double es = score_of.count(e) ? score_of[e] : -1;
          const double gs = score_of.count(g) ? score_of[g] : -1;
          std::printf("  [%2zu] exp=%-12s %.12f  got=%-12s %.12f\n", i,
                      e.c_str(), es, g.c_str(), gs);
        }
      }
    }
  }
  std::printf("phase 3: %zu users compared: %zu identical, %zu equal-score "
              "reorderings, %zu divergent (must be 0)\n",
              compared, identical, tie_equivalent, divergent);

  // Show one concrete recommendation list.
  const std::string probe = dataset.user_id(1);
  const auto recs = client.get_sync(probe);
  if (recs.ok() && !recs.value().empty()) {
    std::printf("\n%s's top recommendations via PProx:\n", probe.c_str());
    for (std::size_t i = 0; i < recs.value().size() && i < 5; ++i) {
      std::printf("  %zu. %s\n", i + 1, recs.value()[i].c_str());
    }
  }

  // And what the provider can see about that user: nothing legible.
  std::printf("\nprovider-side view (first stored rows):\n");
  int shown = 0;
  for (const auto& [user, item] : protected_lrs.dump_events()) {
    if (shown++ == 3) break;
    std::printf("  user=%.24s... item=%.24s...\n", user.c_str(), item.c_str());
  }
  return divergent == 0 ? 0 : 1;
}
