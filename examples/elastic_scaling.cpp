// Elastic scaling demo: drive a live in-process deployment with the
// open-loop injector at increasing request rates, watch per-configuration
// latency, and apply the capacity advisor (paper §5 "Horizontal scaling" /
// §8.1.2) to choose the instance count for each load level.
//
//   $ ./elastic_scaling
#include <cstdio>

#include "crypto/drbg.hpp"
#include "lrs/harness.hpp"
#include "pprox/deployment.hpp"
#include "workload/injector.hpp"

using namespace pprox;

namespace {

workload::InjectionReport drive(Deployment& deployment, ClientLibrary& client,
                                double rps) {
  workload::InjectorConfig config;
  config.rps = rps;
  config.duration = std::chrono::milliseconds(2'000);
  config.warmup = std::chrono::milliseconds(400);
  config.cooldown = std::chrono::milliseconds(200);
  std::uint64_t n = 0;
  return workload::run_injection(
      *deployment.entry_channel(), config, [&client, &n]() {
        // Pre-encrypted post requests from a rotating user population.
        const std::string user = "user-" + std::to_string(n % 97);
        const std::string item = "item-" + std::to_string(n++ % 211);
        return client.build_post_request(user, item).value();
      });
}

}  // namespace

int main() {
  crypto::Drbg rng(to_bytes("elastic-demo"));
  std::printf("%-8s %-6s %10s %10s %10s %10s  %s\n", "target", "pairs", "sent",
              "ok", "med(ms)", "p95(ms)", "advisor");

  // Calibration: measured per-pair capacity on this machine (real crypto,
  // real threads; the whole pipeline shares this host's cores, so the figure
  // is far below the paper's 250 rps per dedicated 4-core pair).
  const double per_pair_capacity = 110;

  for (const double rps : {25.0, 60.0, 100.0}) {
    const int pairs = recommend_instance_pairs(rps, per_pair_capacity);

    lrs::HarnessServer lrs;
    DeploymentConfig config;
    config.ua_instances = pairs;
    config.ia_instances = pairs;
    config.shuffle_size = 8;
    config.shuffle_timeout = std::chrono::milliseconds(150);
    Deployment deployment(config, lrs, rng);
    ClientLibrary client = deployment.make_client(&rng);

    const auto report = drive(deployment, client, rps);
    const double med = report.latencies_ms.empty()
                           ? 0
                           : report.latencies_ms.percentile(50);
    const double p95 = report.latencies_ms.empty()
                           ? 0
                           : report.latencies_ms.percentile(95);
    const int next = recommend_instance_pairs(rps * 2, per_pair_capacity);
    std::printf("%-8.0f %-6d %10zu %10zu %10.1f %10.1f  2x load -> %d pairs\n",
                rps, pairs, report.injected,
                report.completed - report.failed, med, p95, next);
  }

  std::printf("\nThe advisor mirrors the paper's observation: each proxy pair\n"
              "adds a fixed capacity increment, and over-provisioning hurts\n"
              "latency under shuffling (scale down when traffic drops).\n");
  return 0;
}
