// Multi-tenant RaaS (paper §6.3): one shared PProx proxy layer pair serves
// two applications — an online shop and a discussion forum — with separate
// key material. Low-traffic tenants benefit: their requests mix with other
// tenants' in the shared shuffle buffers.
//
//   $ ./multi_tenant_raas
#include <cstdio>

#include "crypto/drbg.hpp"
#include "crypto/hybrid.hpp"
#include "lrs/harness.hpp"
#include "pprox/client.hpp"
#include "pprox/proxy.hpp"
#include "pprox/tenancy.hpp"

using namespace pprox;

int main() {
  crypto::Drbg rng(to_bytes("multi-tenant-demo"));

  // Each application generates ITS OWN keys; the provider never sees them.
  const ApplicationKeys shop_keys = ApplicationKeys::generate(rng);
  const ApplicationKeys forum_keys = ApplicationKeys::generate(rng);

  // The RaaS provider runs ONE proxy pair; the enclaves are provisioned with
  // a keyring holding both tenants' layer secrets.
  TenantKeyring ua_ring, ia_ring;
  ua_ring.tenants = {{"shop", shop_keys.ua}, {"forum", forum_keys.ua}};
  ia_ring.tenants = {{"shop", shop_keys.ia}, {"forum", forum_keys.ia}};

  enclave::Enclave ua_enclave(kUaCodeIdentity, rng);
  enclave::Enclave ia_enclave(kIaCodeIdentity, rng);
  for (const auto& [enclave, ring] :
       std::vector<std::pair<enclave::Enclave*, const TenantKeyring*>>{
           {&ua_enclave, &ua_ring}, {&ia_enclave, &ia_ring}}) {
    const auto blob = crypto::hybrid_encrypt(enclave->channel_public_key(),
                                             ring->serialize(), rng);
    if (!enclave->provision(blob.value()).ok()) {
      std::printf("provisioning failed\n");
      return 1;
    }
  }

  lrs::HarnessServer lrs;  // shared LRS, pseudonym spaces keep tenants apart
  ProxyOptions ia_options;
  ia_options.layer = ProxyOptions::Layer::kIa;
  ia_options.shuffle_size = 4;
  ia_options.shuffle_timeout = std::chrono::milliseconds(60);
  ProxyServer ia_proxy(ia_options, ia_enclave,
                       std::make_shared<net::InProcChannel>(lrs));
  ProxyOptions ua_options;
  ua_options.shuffle_size = 4;
  ua_options.shuffle_timeout = std::chrono::milliseconds(60);
  ProxyServer ua_proxy(ua_options, ua_enclave,
                       std::make_shared<net::InProcChannel>(ia_proxy));
  auto entry = std::make_shared<net::InProcChannel>(ua_proxy);
  std::printf("shared proxy pair up, serving %zu tenants\n",
              ua_proxy.tenant_count());

  ClientLibrary shop(shop_keys.client_params(), entry, &rng, "shop");
  ClientLibrary forum(forum_keys.client_params(), entry, &rng, "forum");

  for (const auto& [u, i] : std::vector<std::pair<std::string, std::string>>{
           {"s1", "gadget"}, {"s1", "widget"}, {"s2", "gadget"},
           {"s2", "widget"}, {"s3", "gizmo"}, {"ada", "gadget"}}) {
    shop.post_sync(u, i);
  }
  for (const auto& [u, i] : std::vector<std::pair<std::string, std::string>>{
           {"f1", "rust-thread"}, {"f1", "cpp-thread"}, {"f2", "rust-thread"},
           {"f2", "cpp-thread"}, {"f3", "go-thread"}, {"ada", "rust-thread"}}) {
    forum.post_sync(u, i);
  }
  lrs.train();
  std::printf("%zu events stored (both tenants), %zu items indexed\n",
              lrs.event_count(), lrs.indexed_items());

  // "ada" exists in BOTH tenants — but as two unrelated pseudonyms, so each
  // application only ever learns about its own catalogue.
  const auto shop_recs = shop.get_sync("ada");
  const auto forum_recs = forum.get_sync("ada");
  std::printf("\nshop's ada  -> %s\n",
              shop_recs.ok() && !shop_recs.value().empty()
                  ? shop_recs.value()[0].c_str()
                  : "(none)");
  std::printf("forum's ada -> %s\n",
              forum_recs.ok() && !forum_recs.value().empty()
                  ? forum_recs.value()[0].c_str()
                  : "(none)");

  // Cross-tenant requests are rejected outright.
  ClientLibrary confused(shop_keys.client_params(), entry, &rng, "forum");
  const Status cross = confused.post_sync("mallory", "gadget");
  std::printf("\nshop-encrypted request labelled 'forum' -> %s\n",
              cross.ok() ? "ACCEPTED (BUG!)" : "rejected, as it must be");
  return cross.ok() ? 1 : 0;
}
