// Quickstart: stand up a complete PProx deployment in-process — attestation
// authority, two enclave layers, proxy instances, a Harness-like LRS — then
// insert feedback and collect recommendations through the privacy proxy.
//
//   $ ./quickstart
//
// Everything a RaaS integration needs is in this file:
//   1. generate application keys (client side, never given to the provider)
//   2. boot + attest + provision enclaves (Deployment does the handshake)
//   3. use ClientLibrary exactly like the LRS REST API.
#include <cstdio>

#include "crypto/drbg.hpp"
#include "lrs/harness.hpp"
#include "pprox/deployment.hpp"

int main() {
  using namespace pprox;
  crypto::Drbg rng(to_bytes("quickstart-example"));

  // The legacy recommendation system, completely unmodified by PProx.
  lrs::HarnessServer lrs;

  // One UA + one IA instance, shuffling with S=4 for this tiny demo.
  DeploymentConfig config;
  config.shuffle_size = 4;
  config.shuffle_timeout = std::chrono::milliseconds(50);
  Deployment deployment(config, lrs, rng);
  std::printf("deployment up: %zu UA + %zu IA enclaves attested & provisioned\n",
              deployment.ua_count(), deployment.ia_count());

  // The user-side library: same API surface as the LRS.
  ClientLibrary client = deployment.make_client(&rng);

  // Users interact with the application; feedback flows through PProx.
  struct Row {
    const char* user;
    const char* item;
  };
  const Row feedback[] = {
      {"ada", "the-matrix"},   {"ada", "blade-runner"},
      {"grace", "the-matrix"}, {"grace", "blade-runner"},
      {"alan", "the-matrix"},  {"linus", "free-solo"},
  };
  for (const auto& [user, item] : feedback) {
    const Status s = client.post_sync(user, item);
    std::printf("post(%s, %s) -> %s\n", user, item, s.ok() ? "ok" : "FAILED");
  }

  // What the RaaS provider actually stores: pseudonyms only.
  std::printf("\nLRS database sample (what the provider sees):\n");
  int shown = 0;
  for (const auto& [user, item] : lrs.dump_events()) {
    if (shown++ == 3) break;
    std::printf("  user=%.20s... item=%.20s...\n", user.c_str(), item.c_str());
  }

  // Batch model training (the Spark stand-in).
  const std::size_t indexed = lrs.train();
  std::printf("\ntrained CCO model over %zu events -> %zu items indexed\n",
              lrs.event_count(), indexed);

  // Recommendations come back decrypted and de-pseudonymized.
  const auto recs = client.get_sync("alan");
  if (!recs.ok()) {
    std::printf("get(alan) failed: %s\n", recs.error().message.c_str());
    return 1;
  }
  std::printf("\nget(alan) -> %zu recommendation(s):\n", recs.value().size());
  for (const auto& item : recs.value()) {
    std::printf("  %s\n", item.c_str());
  }
  std::printf("\n(alan liked the-matrix; ada and grace co-liked blade-runner)\n");
  return 0;
}
