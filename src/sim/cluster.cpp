#include "sim/cluster.hpp"

#include <algorithm>
#include <unordered_map>
#include <memory>

namespace pprox::sim {
namespace {

/// Shuffle buffer attached to one proxy instance and one direction. Requests
/// are released in a randomized batch when S are buffered or the timer
/// expires (paper §4.3, §5: table T doubles as the shuffling structure).
/// The whole batch is handed to `release` at once, mirroring the proxy's
/// batched boundary: one ecall per flush, not one per item.
class ShuffleStage {
 public:
  ShuffleStage(Simulator& sim, int size, double timeout_ms, RandomSource& rng,
               std::function<void(std::vector<std::uint64_t>)> release)
      : sim_(&sim),
        size_(size),
        timeout_ms_(timeout_ms),
        rng_(&rng),
        release_(std::move(release)) {}

  void add(std::uint64_t request_id) {
    if (size_ <= 0) {  // shuffling disabled: pass through
      release_({request_id});
      return;
    }
    buffer_.push_back(request_id);
    if (static_cast<int>(buffer_.size()) >= size_) {
      flush();
    } else if (buffer_.size() == 1) {
      arm_timer();
    }
  }

 private:
  void arm_timer() {
    const std::uint64_t epoch = ++timer_epoch_;
    sim_->schedule_in(timeout_ms_, [this, epoch] {
      // A flush since arming invalidates this timer.
      if (epoch == timer_epoch_ && !buffer_.empty()) flush();
    });
  }

  void flush() {
    ++timer_epoch_;  // cancel any armed timer
    std::vector<std::uint64_t> batch;
    batch.swap(buffer_);
    shuffle(batch, *rng_);
    release_(std::move(batch));
  }

  Simulator* sim_;
  int size_;
  double timeout_ms_;
  RandomSource* rng_;
  std::function<void(std::vector<std::uint64_t>)> release_;
  std::vector<std::uint64_t> buffer_;
  std::uint64_t timer_epoch_ = 0;
};

struct RequestState {
  SimTime start = 0;
  bool is_get = true;
  int ua_instance = 0;
  int ia_instance = 0;
  int lrs_node = 0;
};

/// One full repetition of the experiment.
class Run {
 public:
  Run(const ProxyConfig& proxy, const LrsConfig& lrs,
      const WorkloadConfig& workload, const CostModel& costs,
      const std::function<void(const FlowEvent&)>& observer,
      std::uint64_t seed)
      : proxy_(proxy),
        lrs_(lrs),
        workload_(workload),
        costs_(costs),
        observer_(observer),
        rng_(seed) {
    for (int i = 0; i < proxy_.ua_instances; ++i) {
      ua_cpus_.push_back(std::make_unique<CpuPool>(sim_, proxy_.cores_per_instance));
    }
    for (int i = 0; i < proxy_.ia_instances; ++i) {
      ia_cpus_.push_back(std::make_unique<CpuPool>(sim_, proxy_.cores_per_instance));
    }
    const int lrs_nodes =
        lrs_.kind == LrsConfig::Kind::kStub ? 1 : lrs_.frontend_nodes;
    const int lrs_conc = lrs_.kind == LrsConfig::Kind::kStub
                             ? costs_.stub_concurrency
                             : costs_.harness_concurrency_per_node;
    for (int i = 0; i < lrs_nodes; ++i) {
      lrs_cpus_.push_back(std::make_unique<CpuPool>(sim_, lrs_conc));
    }
    if (proxy_.enabled) {
      for (int i = 0; i < proxy_.ua_instances; ++i) {
        ua_request_shufflers_.push_back(std::make_unique<ShuffleStage>(
            sim_, proxy_.shuffle_size, proxy_.shuffle_timeout_ms, rng_,
            batched_release(ua_cpus_[static_cast<std::size_t>(i)].get(),
                            [this](std::uint64_t id) { forward_to_ia(id); })));
      }
      for (int i = 0; i < proxy_.ia_instances; ++i) {
        ia_request_shufflers_.push_back(std::make_unique<ShuffleStage>(
            sim_, proxy_.shuffle_size, proxy_.shuffle_timeout_ms, rng_,
            batched_release(ia_cpus_[static_cast<std::size_t>(i)].get(),
                            [this](std::uint64_t id) { forward_to_lrs(id); })));
        ia_response_shufflers_.push_back(std::make_unique<ShuffleStage>(
            sim_, proxy_.shuffle_size, proxy_.shuffle_timeout_ms, rng_,
            batched_release(ia_cpus_[static_cast<std::size_t>(i)].get(),
                            [this](std::uint64_t id) { response_to_ua(id); })));
      }
    }
  }

  void execute(RunResult& result) {
    schedule_next_arrival();
    sim_.run_until(workload_.duration_ms + 120'000);  // generous drain window

    result.injected += injected_;
    result.completed += completed_;
    result.latencies.merge(latencies_);
    // Unfinished requests at the end of the drain window mean divergence.
    if (completed_ + 50 < injected_) result.saturated = true;

    const double horizon = workload_.duration_ms;
    auto util = [horizon](const auto& pools, int cores) {
      double used = 0;
      for (const auto& p : pools) used += p->cpu_time_used();
      return used / (static_cast<double>(pools.size()) * cores * horizon);
    };
    result.ua_utilization = util(ua_cpus_, proxy_.cores_per_instance);
    result.ia_utilization = util(ia_cpus_, proxy_.cores_per_instance);
    result.lrs_utilization =
        util(lrs_cpus_, lrs_.kind == LrsConfig::Kind::kStub
                            ? costs_.stub_concurrency
                            : costs_.harness_concurrency_per_node);
  }

 private:
  void observe(FlowPoint point, std::uint64_t id, int from_instance,
               int to_instance, bool response) {
    if (observer_) {
      observer_({sim_.now(), point, id, from_instance, to_instance, response});
    }
  }

  void schedule_next_arrival() {
    const double rate_per_ms = workload_.rps / 1000.0;
    sim_.schedule_in(exp_interarrival(rate_per_ms, rng_), [this] {
      if (sim_.now() < workload_.duration_ms) {
        inject();
        schedule_next_arrival();
      }
    });
  }

  void inject() {
    const std::uint64_t id = next_id_++;
    RequestState& req = states_[id];
    req.start = sim_.now();
    req.is_get = rng_.next_double() < workload_.get_fraction;
    ++injected_;

    if (!proxy_.enabled) {
      // Baseline: client -> LRS directly.
      sim_.schedule_in(costs_.client_hop_ms, [this, id] { at_lrs(id); });
      return;
    }
    // User-side library encrypts (enc(u,pkUA), enc(i|k_u, pkIA)).
    const double client_cpu =
        proxy_.encryption ? costs_.client_encrypt_ms : 0.0;
    req.ua_instance = static_cast<int>(rr_ua_++ % ua_cpus_.size());
    sim_.schedule_in(client_cpu + costs_.client_hop_ms, [this, id] {
      observe(FlowPoint::kClientToUa, id, -1, states_[id].ua_instance, false);
      at_ua_request(id);
    });
  }

  /// With shuffling on, the proxy crosses the enclave boundary once per
  /// FLUSH (the batched ecall), so the transition cost is charged by
  /// batched_release() instead of per request here. Per-item crypto work is
  /// still per request regardless of batching.
  bool sgx_charged_per_request() const {
    return proxy_.sgx && proxy_.shuffle_size <= 0;
  }

  /// One simulated ecall per released batch: the transition cost gates the
  /// whole flush on the instance's CPU, then the items forward individually.
  std::function<void(std::vector<std::uint64_t>)> batched_release(
      CpuPool* pool, std::function<void(std::uint64_t)> forward) {
    return [this, pool,
            forward = std::move(forward)](std::vector<std::uint64_t> batch) {
      if (!proxy_.sgx || proxy_.shuffle_size <= 0) {
        for (const std::uint64_t id : batch) forward(id);
        return;
      }
      auto shared = std::make_shared<std::vector<std::uint64_t>>(
          std::move(batch));
      pool->submit(jittered(costs_.sgx_ecall_ms), [forward, shared] {
        for (const std::uint64_t id : *shared) forward(id);
      });
    };
  }

  double ua_request_cpu() const {
    double cpu = costs_.parse_forward_ms;
    if (proxy_.encryption) cpu += costs_.rsa_decrypt_ms + costs_.det_enc_ms;
    if (sgx_charged_per_request()) cpu += costs_.sgx_ecall_ms;
    return cpu;
  }

  double ia_request_cpu(bool is_get) const {
    double cpu = costs_.parse_forward_ms;
    if (proxy_.encryption) {
      cpu += costs_.rsa_decrypt_ms;  // item id (post) or k_u (get)
      // PPROX-CT-OK(branch): capacity-planning simulation; models costs with
      // synthetic workloads, no real secrets exist in this process.
      if (!is_get && proxy_.item_pseudonymization) cpu += costs_.det_enc_ms;
    }
    if (sgx_charged_per_request()) cpu += costs_.sgx_ecall_ms;
    return cpu;
  }

  /// Applies the model's multiplicative service-time jitter.
  double jittered(double cpu_ms) {
    if (costs_.cpu_jitter_sigma <= 0) return cpu_ms;
    return lognormal_sample(cpu_ms, costs_.cpu_jitter_sigma, rng_);
  }

  void at_ua_request(std::uint64_t id) {
    const RequestState& req = states_[id];
    ua_cpus_[static_cast<std::size_t>(req.ua_instance)]->submit(
        jittered(ua_request_cpu()), [this, id] {
          ua_request_shufflers_[static_cast<std::size_t>(states_[id].ua_instance)]
              ->add(id);
        });
  }

  void forward_to_ia(std::uint64_t id) {
    RequestState& req = states_[id];
    req.ia_instance = static_cast<int>(rr_ia_++ % ia_cpus_.size());
    observe(FlowPoint::kUaToIa, id, req.ua_instance, req.ia_instance, false);
    sim_.schedule_in(costs_.hop_ms, [this, id] {
      const RequestState& r = states_[id];
      // IA requests are buffered and batch-released too: the restructured
      // proxy shuffles its inbound requests at both layers, so the IA's
      // transform ecall is likewise paid once per flush.
      ia_cpus_[static_cast<std::size_t>(r.ia_instance)]->submit(
          jittered(ia_request_cpu(r.is_get)), [this, id] {
            ia_request_shufflers_[static_cast<std::size_t>(
                                      states_[id].ia_instance)]
                ->add(id);
          });
    });
  }

  void forward_to_lrs(std::uint64_t id) {
    observe(FlowPoint::kIaToLrs, id, states_[id].ia_instance, -1, false);
    sim_.schedule_in(costs_.hop_ms, [this, id] { at_lrs(id); });
  }

  void at_lrs(std::uint64_t id) {
    RequestState& req = states_[id];
    double service;
    if (lrs_.kind == LrsConfig::Kind::kStub) {
      req.lrs_node = 0;
      service = jittered(costs_.stub_service_ms);
    } else {
      req.lrs_node = static_cast<int>(rr_lrs_++ % lrs_cpus_.size());
      service = lognormal_sample(costs_.harness_median_ms,
                                 costs_.harness_sigma, rng_);
      if (!req.is_get) service *= 0.7;  // feedback inserts are cheaper
    }
    lrs_cpus_[static_cast<std::size_t>(req.lrs_node)]->submit(
        service, [this, id] {
          if (!proxy_.enabled) {
            sim_.schedule_in(costs_.client_hop_ms, [this, id] { complete(id); });
            return;
          }
          observe(FlowPoint::kLrsToIa, id, -1, states_[id].ia_instance, true);
          sim_.schedule_in(costs_.hop_ms, [this, id] { at_ia_response(id); });
        });
  }

  double ia_response_cpu(bool is_get) const {
    double cpu = costs_.response_forward_ms;
    if (proxy_.encryption && is_get) cpu += costs_.response_reencrypt_ms;
    if (sgx_charged_per_request()) cpu += costs_.sgx_ecall_ms;
    return cpu;
  }

  void at_ia_response(std::uint64_t id) {
    const RequestState& req = states_[id];
    ia_cpus_[static_cast<std::size_t>(req.ia_instance)]->submit(
        jittered(ia_response_cpu(req.is_get)), [this, id] {
          ia_response_shufflers_[static_cast<std::size_t>(
                                     states_[id].ia_instance)]
              ->add(id);
        });
  }

  void response_to_ua(std::uint64_t id) {
    observe(FlowPoint::kIaToUa, id, states_[id].ia_instance, states_[id].ua_instance, true);
    sim_.schedule_in(costs_.hop_ms, [this, id] {
      const RequestState& req = states_[id];
      // Responses pass through the UA untouched (opaque to that layer), so
      // no enclave transition is charged on the UA response path — matching
      // the restructured proxy, where UA responses never enter the enclave.
      const double cpu = costs_.response_forward_ms;
      ua_cpus_[static_cast<std::size_t>(req.ua_instance)]->submit(
          jittered(cpu), [this, id] {
            observe(FlowPoint::kUaToClient, id, states_[id].ua_instance, -1, true);
            sim_.schedule_in(costs_.client_hop_ms, [this, id] { complete(id); });
          });
    });
  }

  void complete(std::uint64_t id) {
    const RequestState& req = states_[id];
    ++completed_;
    const SimTime latency = sim_.now() - req.start;
    if (req.start >= workload_.warmup_ms &&
        req.start <= workload_.duration_ms - workload_.cooldown_ms) {
      latencies_.add(latency);
    }
    states_.erase(id);
  }

  const ProxyConfig& proxy_;
  const LrsConfig& lrs_;
  const WorkloadConfig& workload_;
  const CostModel& costs_;
  const std::function<void(const FlowEvent&)>& observer_;

  Simulator sim_;
  SplitMix64 rng_;
  std::vector<std::unique_ptr<CpuPool>> ua_cpus_;
  std::vector<std::unique_ptr<CpuPool>> ia_cpus_;
  std::vector<std::unique_ptr<CpuPool>> lrs_cpus_;
  std::vector<std::unique_ptr<ShuffleStage>> ua_request_shufflers_;
  std::vector<std::unique_ptr<ShuffleStage>> ia_request_shufflers_;
  std::vector<std::unique_ptr<ShuffleStage>> ia_response_shufflers_;

  std::unordered_map<std::uint64_t, RequestState> states_;
  std::uint64_t next_id_ = 0;
  std::uint64_t rr_ua_ = 0;
  std::uint64_t rr_ia_ = 0;
  std::uint64_t rr_lrs_ = 0;
  std::size_t injected_ = 0;
  std::size_t completed_ = 0;
  SampleStats latencies_;
};

}  // namespace

RunResult run_cluster(const ProxyConfig& proxy, const LrsConfig& lrs,
                      const WorkloadConfig& workload, const CostModel& costs,
                      const std::function<void(const FlowEvent&)>& observer) {
  RunResult result;
  double ua_util = 0, ia_util = 0, lrs_util = 0;
  for (int rep = 0; rep < workload.repetitions; ++rep) {
    Run run(proxy, lrs, workload, costs, observer,
            workload.seed + static_cast<std::uint64_t>(rep) * 7919);
    run.execute(result);
    ua_util += result.ua_utilization;
    ia_util += result.ia_utilization;
    lrs_util += result.lrs_utilization;
  }
  result.ua_utilization = ua_util / workload.repetitions;
  result.ia_utilization = ia_util / workload.repetitions;
  result.lrs_utilization = lrs_util / workload.repetitions;
  // Saturation = queue divergence: requests left behind at the end of the
  // drain window, or latencies blowing past any plausible service envelope.
  // SLO violations at stable throughput (e.g. shuffle-timer floors on an
  // over-provisioned deployment) are NOT saturation — the paper plots them.
  if (!result.latencies.empty() &&
      result.latencies.percentile(50) > 2'500) {
    result.saturated = true;
  }
  return result;
}

double max_stable_rps(const ProxyConfig& proxy, const LrsConfig& lrs,
                      const CostModel& costs, const std::vector<double>& rps_grid,
                      double slo_median_ms) {
  double best = 0;
  for (const double rps : rps_grid) {
    WorkloadConfig workload;
    workload.rps = rps;
    workload.duration_ms = 30'000;
    workload.warmup_ms = 5'000;
    workload.cooldown_ms = 5'000;
    workload.repetitions = 1;
    const RunResult r = run_cluster(proxy, lrs, workload, costs);
    if (r.saturated) break;  // grid is increasing; divergence ends the sweep
    const bool within_slo =
        !r.latencies.empty() && r.latencies.percentile(50) <= slo_median_ms;
    // Over-provisioned deployments violate the SLO at LOW rates (the
    // shuffle-timer floor) and recover as traffic grows — keep scanning.
    if (within_slo) best = rps;
  }
  return best;
}

}  // namespace pprox::sim
