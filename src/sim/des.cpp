#include "sim/des.hpp"

#include <cmath>

namespace pprox::sim {

void Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;  // clamp: no scheduling into the past
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulator::run_until(SimTime end) {
  while (!queue_.empty() && queue_.top().when <= end) {
    // priority_queue::top() is const; move out via const_cast is UB — copy
    // the closure instead (events are small).
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.fn();
  }
  if (now_ < end) now_ = end;
}

void Simulator::run() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.fn();
  }
}

void CpuPool::submit(SimTime service_ms, std::function<void()> on_done) {
  Job job{service_ms, std::move(on_done)};
  if (busy_ < cores_) {
    start(std::move(job));
  } else {
    waiting_.push_back(std::move(job));
  }
}

void CpuPool::start(Job job) {  // PPROX-HOTPATH-OK(recursion): re-entry happens via a deferred simulator event, not the stack; the waiting queue drains monotonically
  ++busy_;
  cpu_time_used_ += job.service_ms;
  sim_->schedule_in(job.service_ms, [this, on_done = std::move(job.on_done)] {
    --busy_;
    if (!waiting_.empty()) {
      Job next = std::move(waiting_.front());
      waiting_.pop_front();
      start(std::move(next));
    }
    on_done();
  });
}

double lognormal_sample(double median_ms, double sigma, RandomSource& rng) {
  // Box–Muller for a standard normal.
  double u1 = rng.next_double();
  while (u1 <= 0.0) u1 = rng.next_double();
  const double u2 = rng.next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return median_ms * std::exp(sigma * z);
}

}  // namespace pprox::sim
