// Discrete-event simulation engine. Replaces the paper's 27-node NUC
// cluster: nodes are CPU pools with queueing, links add latency, and an
// open-loop injector drives requests. Deterministic given a seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "common/rand.hpp"

namespace pprox::sim {

/// Simulated time in milliseconds.
using SimTime = double;

/// Event-driven simulator: schedule closures at absolute or relative times,
/// then run. Events at equal times fire in scheduling order (stable).
class Simulator {
 public:
  SimTime now() const { return now_; }

  void schedule_at(SimTime when, std::function<void()> fn);
  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs until the event queue empties or `end` is passed.
  void run_until(SimTime end);

  /// Runs until the event queue is empty.
  void run();

  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// A node's processing capacity: `cores` jobs execute concurrently, the rest
/// queue FIFO. Models the paper's 2-core NUCs (and the thread pool pinned to
/// them).
class CpuPool {
 public:
  CpuPool(Simulator& sim, int cores) : sim_(&sim), cores_(cores) {}

  /// Submits a job needing `service_ms` of CPU; on_done fires at completion.
  void submit(SimTime service_ms, std::function<void()> on_done);

  int busy() const { return busy_; }
  std::size_t queue_depth() const { return waiting_.size(); }
  /// Total CPU-milliseconds consumed (for utilization reporting).
  double cpu_time_used() const { return cpu_time_used_; }

 private:
  struct Job {
    SimTime service_ms;
    std::function<void()> on_done;
  };
  void start(Job job);

  Simulator* sim_;
  int cores_;
  int busy_ = 0;
  std::deque<Job> waiting_;
  double cpu_time_used_ = 0;
};

/// Exponential (Poisson-process) interarrival sampler.
inline SimTime exp_interarrival(double rate_per_ms, RandomSource& rng) {
  double u = rng.next_double();
  while (u <= 0.0) u = rng.next_double();
  return -std::log(u) / rate_per_ms;
}

/// Lognormal service-time sampler parameterized by median and sigma.
double lognormal_sample(double median_ms, double sigma, RandomSource& rng);

}  // namespace pprox::sim
