// Simulated deployment of PProx + LRS on a cluster, mirroring the paper's
// testbed (§8): 2-core NUC nodes, one UA/IA proxy layer pair, an LRS that is
// either the nginx stub (micro-benchmarks) or the Harness model
// (macro-benchmarks), an open-loop injector, and the candlestick metric
// pipeline (warm-up/cool-down trimming, repetitions).
//
// CPU costs are *calibrated from real measurements* of this repository's own
// crypto/JSON/HTTP code (bench_crypto, bench_json_http), scaled to the
// paper's mobile-grade NUC cores; EXPERIMENTS.md records the mapping.
// Calibration uses the ACCELERATED crypto backend (BENCH_crypto.json,
// DESIGN.md §10) — the paper's SGX-SSL crypto is hardware-accelerated too,
// and the accelerated RSA-2048 private op lands on rsa_decrypt_ms almost
// exactly; portable-path timings overshoot ~6x and must not be used here.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/des.hpp"

namespace pprox::sim {

/// Per-operation CPU and network costs (milliseconds).
struct CostModel {
  // Network.
  double hop_ms = 0.25;            ///< intra-cluster one-way latency
  double client_hop_ms = 1.0;      ///< client <-> RaaS cloud (same region)
  // Proxy instance per-traversal CPU.
  double parse_forward_ms = 0.9;   ///< epoll + HTTP/JSON handling, request path
  double rsa_decrypt_ms = 3.2;     ///< RSA private op (user id / item id / k_u)
  double det_enc_ms = 0.15;        ///< deterministic AES-CTR pseudonymization
  double response_reencrypt_ms = 1.6;  ///< IA: de-pseudonymize + re-encrypt list
  double response_forward_ms = 0.6;    ///< response-path handling per layer
  /// Enclave transition + EPC paging per ecall. With shuffling enabled the
  /// proxy batches: ONE ecall per released flush (charged at release time),
  /// so per-request transition cost amortizes as S grows; without shuffling
  /// it stays a per-request charge.
  double sgx_ecall_ms = 0.45;
  double client_encrypt_ms = 1.2;  ///< user-side library RSA encryptions
  /// Multiplicative lognormal jitter (sigma) applied to every CPU service
  /// time: real packet handling is never perfectly deterministic.
  double cpu_jitter_sigma = 0.12;
  // Stub LRS (nginx static payload).
  double stub_service_ms = 1.5;
  int stub_concurrency = 16;
  // Harness LRS (UR queries over Elasticsearch/MongoDB).
  double harness_median_ms = 21.0;
  double harness_sigma = 0.45;
  int harness_concurrency_per_node = 2;
};

/// Proxy service deployment knobs — one row of Table 2 / Table 3.
struct ProxyConfig {
  bool enabled = true;               ///< false = baseline without PProx (b1-b4)
  bool encryption = true;            ///< m1 disables
  bool item_pseudonymization = true; ///< m4 disables (enc = ★)
  bool sgx = true;                   ///< m2 disables
  int shuffle_size = 0;              ///< S; 0 disables shuffling
  double shuffle_timeout_ms = 500;   ///< flush timer
  int ua_instances = 1;
  int ia_instances = 1;
  int cores_per_instance = 2;        ///< NUCs have 2 cores
};

/// LRS deployment knobs.
struct LrsConfig {
  enum class Kind { kStub, kHarness };
  Kind kind = Kind::kStub;
  int frontend_nodes = 1;  ///< Harness front-end count (3..12 in the paper)
};

/// Injection parameters, matching §8's methodology.
struct WorkloadConfig {
  double rps = 250;
  double duration_ms = 60'000;
  double warmup_ms = 10'000;    ///< trimmed from the front
  double cooldown_ms = 10'000;  ///< trimmed from the back
  double get_fraction = 1.0;    ///< remainder are post requests
  int repetitions = 3;          ///< aggregated like the paper's 6 runs
  std::uint64_t seed = 1;
};

/// Where a message was observed on the wire — the adversary's vantage
/// points (paper §2.3 ➌: it monitors all internal and external flows).
enum class FlowPoint {
  kClientToUa,
  kUaToIa,
  kIaToLrs,
  kLrsToIa,
  kIaToUa,
  kUaToClient,
};

/// One observed (encrypted, constant-size) packet. `from_instance` /
/// `to_instance` are proxy instance indices where applicable (-1 for the
/// client or the LRS end).
struct FlowEvent {
  SimTime time;
  FlowPoint point;
  std::uint64_t request_id;  ///< ground truth, unavailable to the adversary
  int from_instance;
  int to_instance;
  bool is_response;
};

/// Aggregate outcome of one simulated experiment.
struct RunResult {
  SampleStats latencies;      ///< round-trip ms, trimmed window, all reps
  std::size_t injected = 0;
  std::size_t completed = 0;
  bool saturated = false;     ///< heuristic: backlog or SLO blow-up
  double ua_utilization = 0;  ///< busy fraction of UA layer CPU
  double ia_utilization = 0;
  double lrs_utilization = 0;
};

/// Runs the configured deployment under the configured workload. The
/// optional observer receives every wire-level FlowEvent (used by the
/// §6.2 unlinkability experiments).
RunResult run_cluster(const ProxyConfig& proxy, const LrsConfig& lrs,
                      const WorkloadConfig& workload, const CostModel& costs,
                      const std::function<void(const FlowEvent&)>& observer = {});

/// Sweeps RPS values and reports the last value before saturation — the
/// "RPS" column of Tables 2 and 3.
double max_stable_rps(const ProxyConfig& proxy, const LrsConfig& lrs,
                      const CostModel& costs, const std::vector<double>& rps_grid,
                      double slo_median_ms = 600);

}  // namespace pprox::sim
