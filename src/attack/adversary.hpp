// PPROX-LAYER: attack
//
// The paper's adversary (§2.3): observes all RaaS-internal traffic and the
// LRS database in the clear, and can break into at most ONE enclave layer at
// a time. This module makes the §6.1 security analysis executable: given a
// set of stolen secrets and a set of observations, what can be linked?
//
// Flow-lint note: the attack layer deliberately sits OUTSIDE the trusted
// computing base — it models what a breached enclave's loot can derive, so
// it may reference both layers' recovery APIs. The layering rules that bind
// ua/ia/lrs/shared TUs do not apply here; the justification-comment and
// crypto-hygiene rules still do.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "pprox/keys.hpp"
#include "pprox/logic.hpp"

namespace pprox::attack {

/// One pseudonymized event row as stored by the LRS (what the adversary
/// reads when it dumps the database, §2.3 ➋).
struct LrsDbRow {
  std::string user_pseudonym;  // base64(det_enc(u, kUA))
  std::string item_pseudonym;  // base64(det_enc(i, kIA)) or cleartext i
};

/// An intercepted client->UA message (ciphertext fields, plus the source
/// address the adversary always sees).
struct InterceptedPost {
  std::string source_address;
  std::string user_field;  // base64(enc(u, pkUA))
  std::string item_field;  // base64(enc(i, pkIA))
};

/// The adversary's toolbox. Stolen secrets are added as enclaves are
/// breached; every query returns what the adversary can derive — and
/// nothing more.
class Adversary {
 public:
  /// Loot from a breached UA enclave (paper Case 1).
  void steal_ua_secrets(LayerSecrets secrets);
  /// Loot from a breached IA enclave (paper Case 2).
  void steal_ia_secrets(LayerSecrets secrets);

  bool has_ua_secrets() const { return ua_.has_value(); }
  bool has_ia_secrets() const { return ia_.has_value(); }

  /// Case 1(a): decrypt the user identity from an intercepted post.
  /// Requires skUA; fails without UA loot.
  Result<std::string> recover_user(const InterceptedPost& message) const;

  /// Case 1(a) continued: decrypt the item from the same message.
  /// Requires skIA; fails with only UA loot.
  Result<std::string> recover_item(const InterceptedPost& message) const;

  /// Case 1(c)/2(c): de-pseudonymize an LRS database row. Each half needs
  /// the corresponding layer's permanent key.
  Result<std::string> de_pseudonymize_user(const LrsDbRow& row) const;
  Result<std::string> de_pseudonymize_item(const LrsDbRow& row) const;

  /// The unlinkability predicate itself: can this adversary, with its
  /// current loot, link user `u` to item `i` given the full LRS dump and
  /// all intercepted messages? Mirrors the case analysis of §6.1.
  bool can_link(const std::string& user, const std::string& item,
                const std::vector<LrsDbRow>& database,
                const std::vector<InterceptedPost>& intercepts) const;

 private:
  Result<std::string> decrypt_identifier(const crypto::RsaPrivateKey& sk,
                                         const std::string& base64_field) const;
  Result<std::string> de_pseudonymize(const Bytes& key,
                                      const std::string& base64_field) const;

  std::optional<LayerSecrets> ua_;
  std::optional<LayerSecrets> ia_;
};

/// §6.3 history-based attack: the adversary targets one source address and
/// collects, for each of that user's get requests, the candidate set of S
/// pseudonymous outputs it cannot distinguish between. Recurring elements
/// across rounds eventually isolate the victim's pseudonym.
class HistoryAttack {
 public:
  /// Adds one observation round (the candidate pseudonyms for the victim).
  void observe_round(const std::vector<std::string>& candidates);

  /// Pseudonyms still consistent with every round.
  std::vector<std::string> surviving_candidates() const;

  /// True when exactly one candidate survives (victim identified).
  bool victim_identified() const { return surviving_candidates().size() == 1; }

  std::size_t rounds() const { return rounds_; }

 private:
  bool first_ = true;
  std::vector<std::string> survivors_;
  std::size_t rounds_ = 0;
};

}  // namespace pprox::attack
