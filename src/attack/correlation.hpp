// PPROX-LAYER: attack
//
// Flow-correlation attack over wire observations (paper §4.3, analyzed in
// §6.2): the adversary timestamps every encrypted, constant-size packet at
// each vantage point and tries to match an inbound client request to the
// corresponding message reaching the LRS (and a response leaving the LRS to
// the client that receives it). Shuffling bounds its success at 1/(S*I) for
// requests and 1/(S*U) for responses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rand.hpp"
#include "sim/cluster.hpp"

namespace pprox::attack {

struct CorrelationResult {
  std::size_t attempts = 0;
  std::size_t correct = 0;
  double success_rate() const {
    return attempts == 0 ? 0.0 : static_cast<double>(correct) / attempts;
  }
  double mean_candidates = 0;  ///< average ambiguity-set size
};

/// Request-path attack at the UA->IA vantage point: for each observed
/// client->UA packet, the adversary picks its guess among the UA instance's
/// next outbound batch (simultaneous, indistinguishable messages).
/// No shuffling => batches of one => near-certain success.
CorrelationResult link_requests_at_ua(const std::vector<sim::FlowEvent>& events,
                                      RandomSource& rng);

/// Request-path attack at the IA->LRS vantage point: the UA batch additionally
/// spreads over all IA instances whose outputs interleave; candidates are all
/// IA->LRS packets in the dispersion window. Expected success ~ 1/(S*I).
CorrelationResult link_requests_at_lrs(const std::vector<sim::FlowEvent>& events,
                                       RandomSource& rng,
                                       double window_ms = 40.0);

/// Response-path attack: match an LRS->IA response to the UA->client packet
/// delivering it. Expected success ~ 1/(S*U).
CorrelationResult link_responses(const std::vector<sim::FlowEvent>& events,
                                 RandomSource& rng, double window_ms = 40.0);

}  // namespace pprox::attack
