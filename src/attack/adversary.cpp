// PPROX-LAYER: attack
#include "attack/adversary.hpp"

#include <algorithm>

#include "common/encoding.hpp"
#include "crypto/ctr.hpp"
#include "crypto/rsa.hpp"
#include "pprox/message.hpp"

namespace pprox::attack {

void Adversary::steal_ua_secrets(LayerSecrets secrets) {
  ua_ = std::move(secrets);
}

void Adversary::steal_ia_secrets(LayerSecrets secrets) {
  ia_ = std::move(secrets);
}

Result<std::string> Adversary::decrypt_identifier(
    const crypto::RsaPrivateKey& sk, const std::string& base64_field) const {
  const auto cipher = base64_decode(base64_field);
  // PPROX-CT-OK(branch): adversary-model code outside the enclave; it runs on
  // data the attack already holds, so its timing leaks nothing to anyone.
  if (!cipher) return Error::parse("field not base64");
  auto block = crypto::rsa_decrypt_oaep(sk, *cipher);
  if (!block.ok()) return block.error();
  return unpad_identifier(block.value());
}

Result<std::string> Adversary::de_pseudonymize(
    const Bytes& key, const std::string& base64_field) const {
  const auto cipher = base64_decode(base64_field);
  // PPROX-CT-OK(branch): adversary-model code; see decrypt_identifier above.
  if (!cipher || cipher->size() != kIdBlockSize) {
    return Error::parse("pseudonym malformed");
  }
  const crypto::DeterministicCipher det(key);
  return unpad_identifier(det.decrypt(*cipher));
}

Result<std::string> Adversary::recover_user(const InterceptedPost& message) const {
  if (!ua_) return Error::denied("no UA secrets: user field is opaque");
  return decrypt_identifier(ua_->sk, message.user_field);
}

Result<std::string> Adversary::recover_item(const InterceptedPost& message) const {
  if (!ia_) return Error::denied("no IA secrets: item field is opaque");
  return decrypt_identifier(ia_->sk, message.item_field);
}

Result<std::string> Adversary::de_pseudonymize_user(const LrsDbRow& row) const {
  if (!ua_) return Error::denied("no UA secrets: kUA unavailable");
  return de_pseudonymize(ua_->k, row.user_pseudonym);
}

Result<std::string> Adversary::de_pseudonymize_item(const LrsDbRow& row) const {
  if (!ia_) return Error::denied("no IA secrets: kIA unavailable");
  return de_pseudonymize(ia_->k, row.item_pseudonym);
}

bool Adversary::can_link(const std::string& user, const std::string& item,
                         const std::vector<LrsDbRow>& database,
                         const std::vector<InterceptedPost>& intercepts) const {
  // Route 1: fully decrypt an intercepted message (needs both layers).
  for (const auto& message : intercepts) {
    const auto u = recover_user(message);
    const auto i = recover_item(message);
    // PPROX-CT-OK(branch): adversary-side linkage test over its own loot.
    if (u.ok() && i.ok() && u.value() == user && i.value() == item) return true;
  }
  // Route 2: de-pseudonymize a database row (needs kUA *and* kIA).
  for (const auto& row : database) {
    const auto u = de_pseudonymize_user(row);
    const auto i = de_pseudonymize_item(row);
    // PPROX-CT-OK(branch): adversary-side linkage test over its own loot.
    if (u.ok() && i.ok() && u.value() == user && i.value() == item) return true;
    // Route 2b (item pseudonymization disabled): item stored in clear.
    // PPROX-CT-OK(branch): adversary-side linkage test over its own loot.
    if (u.ok() && u.value() == user && row.item_pseudonym == item) return true;
  }
  // Route 3: half-decrypt an intercept, half-decrypt the database, joined on
  // the shared pseudonym. Case 1(a): from an intercepted message, skUA
  // yields u; kUA maps u to det_enc(u); database rows with that pseudonym
  // would reveal det_enc(i, kIA) — which still needs kIA to resolve to i
  // (and symmetrically for Case 2). So this route reduces to the keys
  // checked above; nothing further to try.
  return false;
}

void HistoryAttack::observe_round(const std::vector<std::string>& candidates) {
  ++rounds_;
  if (first_) {
    survivors_ = candidates;
    std::sort(survivors_.begin(), survivors_.end());
    survivors_.erase(std::unique(survivors_.begin(), survivors_.end()),
                     survivors_.end());
    first_ = false;
    return;
  }
  std::vector<std::string> sorted = candidates;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::string> next;
  std::set_intersection(survivors_.begin(), survivors_.end(), sorted.begin(),
                        sorted.end(), std::back_inserter(next));
  survivors_ = std::move(next);
}

std::vector<std::string> HistoryAttack::surviving_candidates() const {
  return survivors_;
}

}  // namespace pprox::attack
