// PPROX-LAYER: attack
#include "attack/correlation.hpp"

#include <algorithm>
#include <map>

namespace pprox::attack {
namespace {

using sim::FlowEvent;
using sim::FlowPoint;

std::vector<FlowEvent> select(const std::vector<FlowEvent>& events,
                              FlowPoint point) {
  std::vector<FlowEvent> out;
  for (const auto& e : events) {
    if (e.point == point) out.push_back(e);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlowEvent& a, const FlowEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

/// Picks uniformly among [first, last) and scores against `target_id`.
void guess(const std::vector<FlowEvent>& candidates, std::size_t first,
           std::size_t last, std::uint64_t target_id, RandomSource& rng,
           CorrelationResult& result) {
  const std::size_t n = last - first;
  if (n == 0) return;
  ++result.attempts;
  result.mean_candidates += static_cast<double>(n);
  const std::size_t pick = first + rng.next_below(n);
  if (candidates[pick].request_id == target_id) ++result.correct;
}

std::size_t lower_bound_time(const std::vector<FlowEvent>& events, double t) {
  return static_cast<std::size_t>(
      std::lower_bound(events.begin(), events.end(), t,
                       [](const FlowEvent& e, double value) {
                         return e.time < value;
                       }) -
      events.begin());
}

void finalize(CorrelationResult& result) {
  if (result.attempts > 0) {
    result.mean_candidates /= static_cast<double>(result.attempts);
  }
}

}  // namespace

CorrelationResult link_requests_at_ua(const std::vector<FlowEvent>& events,
                                      RandomSource& rng) {
  (void)rng;
  // Rank-matching attack per UA instance: the proxy serves requests FIFO
  // (epoll order -> queue -> workers), so without shuffling the k-th inbound
  // packet is the k-th outbound packet. Shuffling permutes ranks within each
  // batch of S; a random permutation has one expected fixed point per batch,
  // capping the adversary's success at ~1/S (paper §6.2).
  std::map<int, std::vector<FlowEvent>> inbound, outbound;
  for (const auto& e : select(events, FlowPoint::kClientToUa)) {
    inbound[e.to_instance].push_back(e);
  }
  for (const auto& e : select(events, FlowPoint::kUaToIa)) {
    outbound[e.from_instance].push_back(e);
  }

  CorrelationResult result;
  for (const auto& [instance, in] : inbound) {
    const auto it = outbound.find(instance);
    if (it == outbound.end()) continue;
    const auto& out = it->second;
    const std::size_t n = std::min(in.size(), out.size());
    for (std::size_t k = 0; k < n; ++k) {
      ++result.attempts;
      result.mean_candidates += 1.0;
      if (in[k].request_id == out[k].request_id) ++result.correct;
    }
  }
  finalize(result);
  return result;
}

CorrelationResult link_requests_at_lrs(const std::vector<FlowEvent>& events,
                                       RandomSource& rng, double window_ms) {
  const auto inbound = select(events, FlowPoint::kClientToUa);
  const auto at_lrs = select(events, FlowPoint::kIaToLrs);

  CorrelationResult result;
  for (const auto& target : inbound) {
    const std::size_t first = lower_bound_time(at_lrs, target.time);
    if (first == at_lrs.size()) continue;
    const double horizon = at_lrs[first].time + window_ms;
    std::size_t last = first;
    while (last < at_lrs.size() && at_lrs[last].time <= horizon) ++last;
    guess(at_lrs, first, last, target.request_id, rng, result);
  }
  finalize(result);
  return result;
}

CorrelationResult link_responses(const std::vector<FlowEvent>& events,
                                 RandomSource& rng, double window_ms) {
  (void)rng;
  (void)window_ms;
  // Rank-matching attack: the return path is FIFO when unshuffled, so the
  // k-th response leaving the LRS is (almost) the k-th packet delivered to a
  // client. Shuffling at the IA layer permutes ranks within each batch of S
  // (across U interleaved UA output streams), collapsing the success rate.
  const auto from_lrs = select(events, FlowPoint::kLrsToIa);
  const auto to_client = select(events, FlowPoint::kUaToClient);

  CorrelationResult result;
  const std::size_t n = std::min(from_lrs.size(), to_client.size());
  for (std::size_t k = 0; k < n; ++k) {
    ++result.attempts;
    result.mean_candidates += 1.0;
    if (from_lrs[k].request_id == to_client[k].request_id) ++result.correct;
  }
  finalize(result);
  return result;
}

}  // namespace pprox::attack
