// Simulated trusted execution environment (Intel SGX stand-in).
//
// The paper runs the proxy's data-processing threads inside SGX enclaves and
// relies on exactly three TEE behaviours, all modelled here:
//   1. *Attested identity*: secrets are provisioned only after the enclave
//      proves (via a quote signed by the platform authority) that it runs
//      the expected code and that the provisioning channel key belongs to it.
//   2. *Isolation*: code outside the enclave cannot read provisioned secrets
//      or in-enclave state. In this simulation the boundary is the ecall()
//      API — the host only holds opaque handles, and ecall transitions are
//      counted so benches can charge the measured SGX crossing cost.
//   3. *Breachability*: a side-channel attack (costly, one enclave at a
//      time; paper §2.3) is modelled by breach(), after which — and only
//      after which — the adversary may exfiltrate() the sealed secrets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/bytes.hpp"
#include "common/hotpath.hpp"
#include "common/sync.hpp"
#include "common/rand.hpp"
#include "common/result.hpp"
#include "crypto/drbg.hpp"
#include "crypto/rsa.hpp"

namespace pprox::enclave {

/// Enclave code identity: SHA-256 over the code-identity string (MRENCLAVE
/// stand-in).
struct Measurement {
  Bytes digest;

  bool operator==(const Measurement& other) const {
    return digest == other.digest;
  }
  static Measurement of_code(std::string_view code_identity);
};

/// A hosted enclave instance. The channel key pair is generated inside at
/// construction; the private half never leaves unless the enclave is
/// breached.
class Enclave {
 public:
  /// `code_identity` names the code being run (e.g. "pprox-ua-v1");
  /// `channel_key_bits` sizes the provisioning channel RSA key.
  Enclave(std::string code_identity, RandomSource& rng,
          std::size_t channel_key_bits = 1024);

  const Measurement& measurement() const { return measurement_; }
  const std::string& code_identity() const { return code_identity_; }

  /// Public half of the provisioning channel key (safe to publish).
  const crypto::RsaPublicKey& channel_public_key() const { return channel_pub_; }

  /// Installs the secrets blob: `encrypted` is a hybrid_encrypt() of the
  /// secrets under channel_public_key(). Fails if already provisioned.
  Status provision(ByteView encrypted);

  bool provisioned() const { return provisioned_; }

  /// Runs enclave code with access to the provisioned secrets. `fn` is
  /// invoked as fn(ByteView secrets); the transition is counted. Throws
  /// std::logic_error when not yet provisioned (programming error).
  /// PPROX_ECALL_BOUNDARY: the transition itself must not allocate or block
  /// (ROADMAP item 3) — the logic the callers run inside `fn` is checked at
  /// their own annotations.
  template <typename Fn>
  PPROX_ECALL_BOUNDARY auto ecall(Fn&& fn) const -> decltype(fn(ByteView{})) {
    require_provisioned();
    transitions_.fetch_add(1, std::memory_order_relaxed);
    return std::forward<Fn>(fn)(ByteView(secrets_));
  }

  /// Number of host<->enclave transitions so far (for the SGX cost model).
  std::uint64_t transition_count() const {
    return transitions_.load(std::memory_order_relaxed);
  }

  // --- Sealing (SGX sealed storage stand-in) -----------------------------
  /// Encrypts data so only an enclave with the same measurement on the same
  /// platform can recover it.
  Bytes seal(ByteView data) const;
  Result<Bytes> unseal(ByteView sealed) const;

  // --- Adversary surface ---------------------------------------------------
  /// Marks the enclave as broken by a side-channel attack.
  void breach() { breached_.store(true, std::memory_order_release); }
  bool breached() const { return breached_.load(std::memory_order_acquire); }

  /// Extracts the provisioned secrets and the channel private key — only
  /// possible after breach(). This is the modelled side-channel leak.
  Result<Bytes> exfiltrate_secrets() const;
  Result<crypto::RsaPrivateKey> exfiltrate_channel_key() const;

 private:
  /// Cold precondition check for ecall(): throws std::logic_error when not
  /// yet provisioned. Out-of-line and unannotated on purpose — the throw is
  /// a programmer-error trap, not part of the transition's hot path, so the
  /// PPROX_ECALL_BOUNDARY annotation on ecall() stays honest.
  void require_provisioned() const;

  std::string code_identity_;
  Measurement measurement_;
  crypto::RsaPublicKey channel_pub_;
  crypto::RsaPrivateKey channel_priv_;
  Bytes platform_seal_key_;  // per-instance platform sealing root
  Bytes secrets_;
  bool provisioned_ = false;
  mutable Atomic<std::uint64_t> transitions_{0};
  Atomic<bool> breached_{false};
  mutable crypto::Drbg enclave_rng_;
};

}  // namespace pprox::enclave
