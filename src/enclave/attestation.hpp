// Remote attestation, modelled on Intel's quoting flow: a platform authority
// (IAS stand-in) signs quotes binding {measurement, channel-key fingerprint,
// verifier nonce}. The RaaS client application verifies a quote against the
// authority's root key and its expected measurement before provisioning
// secrets (paper §2.2: "code running inside enclaves is properly attested
// before being provided with secrets").
#pragma once

#include <set>

#include "common/bytes.hpp"
#include "enclave/enclave.hpp"

namespace pprox::enclave {

/// A signed attestation statement for one enclave instance.
struct Quote {
  Bytes measurement;       // enclave code measurement
  Bytes key_fingerprint;   // SHA-256 of the enclave's channel public key
  Bytes nonce;             // verifier freshness challenge
  Bytes signature;         // authority signature over the three fields

  Bytes signed_payload() const;
};

/// The platform/quoting authority. Only enclaves on registered platforms
/// (genuine SGX CPUs) can obtain quotes.
class AttestationService {
 public:
  explicit AttestationService(RandomSource& rng, std::size_t root_key_bits = 1024);

  const crypto::RsaPublicKey& root_public_key() const { return root_.pub; }

  /// Registers a platform as genuine (models Intel's CPU certification).
  void register_platform(const Enclave& enclave);

  /// Issues a signed quote; fails for unregistered platforms.
  Result<Quote> issue_quote(const Enclave& enclave, ByteView nonce) const;

  /// Verifier side: checks signature, expected measurement, nonce freshness,
  /// and that the quote covers `channel_key` (the key secrets will be
  /// encrypted under).
  static bool verify_quote(const Quote& quote,
                           const crypto::RsaPublicKey& authority_root,
                           const Measurement& expected_measurement,
                           ByteView nonce,
                           const crypto::RsaPublicKey& channel_key);

 private:
  crypto::RsaKeyPair root_;
  std::set<const Enclave*> platforms_;
};

}  // namespace pprox::enclave
