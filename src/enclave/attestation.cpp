#include "enclave/attestation.hpp"

#include "crypto/sha256.hpp"

namespace pprox::enclave {

Bytes Quote::signed_payload() const {
  // Length-prefixed concatenation: unambiguous framing for the signature.
  Bytes out;
  for (const Bytes* field : {&measurement, &key_fingerprint, &nonce}) {
    out.push_back(static_cast<std::uint8_t>(field->size() >> 8));
    out.push_back(static_cast<std::uint8_t>(field->size()));
    append(out, *field);
  }
  return out;
}

AttestationService::AttestationService(RandomSource& rng,
                                       std::size_t root_key_bits)
    : root_(crypto::rsa_generate(root_key_bits, rng)) {}

void AttestationService::register_platform(const Enclave& enclave) {
  platforms_.insert(&enclave);
}

Result<Quote> AttestationService::issue_quote(const Enclave& enclave,
                                              ByteView nonce) const {
  if (platforms_.find(&enclave) == platforms_.end()) {
    return Error::denied("platform not registered with attestation authority");
  }
  Quote quote;
  quote.measurement = enclave.measurement().digest;
  quote.key_fingerprint = enclave.channel_public_key().fingerprint();
  quote.nonce = Bytes(nonce.begin(), nonce.end());
  quote.signature = crypto::rsa_sign_sha256(root_.priv, quote.signed_payload());
  return quote;
}

bool AttestationService::verify_quote(const Quote& quote,
                                      const crypto::RsaPublicKey& authority_root,
                                      const Measurement& expected_measurement,
                                      ByteView nonce,
                                      const crypto::RsaPublicKey& channel_key) {
  if (quote.measurement != expected_measurement.digest) return false;
  if (quote.nonce != Bytes(nonce.begin(), nonce.end())) return false;
  if (quote.key_fingerprint != channel_key.fingerprint()) return false;
  return crypto::rsa_verify_sha256(authority_root, quote.signed_payload(),
                                   quote.signature);
}

}  // namespace pprox::enclave
