#include "enclave/enclave.hpp"

#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/ctr.hpp"
#include "crypto/hybrid.hpp"
#include "crypto/sha256.hpp"

namespace pprox::enclave {

Measurement Measurement::of_code(std::string_view code_identity) {
  return Measurement{crypto::Sha256::digest_bytes(to_bytes(code_identity))};
}

Enclave::Enclave(std::string code_identity, RandomSource& rng,
                 std::size_t channel_key_bits)
    : code_identity_(std::move(code_identity)),
      measurement_(Measurement::of_code(code_identity_)),
      enclave_rng_(rng.bytes(32)) {
  auto pair = crypto::rsa_generate(channel_key_bits, enclave_rng_);
  channel_pub_ = std::move(pair.pub);
  channel_priv_ = std::move(pair.priv);
  platform_seal_key_ = enclave_rng_.bytes(32);
}

void Enclave::require_provisioned() const {
  // PPROX-CT-OK(branch): provisioning state is public deployment lifecycle,
  // not secret data.
  if (!provisioned_) {
    throw std::logic_error("Enclave: ecall before provision");
  }
}

Status Enclave::provision(ByteView encrypted) {
  if (provisioned_) {
    return Error::denied("enclave already provisioned");
  }
  auto secrets = crypto::hybrid_decrypt(channel_priv_, encrypted);
  if (!secrets.ok()) return secrets.error();
  secrets_ = std::move(secrets.value());
  provisioned_ = true;
  return Status::ok_status();
}

Bytes Enclave::seal(ByteView data) const {
  // Sealing key binds platform and measurement: MRENCLAVE-policy sealing.
  Bytes key = crypto::hmac_sha256(platform_seal_key_, measurement_.digest);
  const crypto::RandomIvCipher cipher(key);
  Bytes sealed = cipher.encrypt(data, enclave_rng_);
  // MAC over the ciphertext for integrity.
  Bytes mac = crypto::hmac_sha256(key, sealed);
  secure_wipe(key);  // cipher holds its own key schedule
  append(sealed, mac);
  return sealed;
}

Result<Bytes> Enclave::unseal(ByteView sealed) const {
  if (sealed.size() < 48) return Error::crypto("unseal: blob too short");
  Bytes key = crypto::hmac_sha256(platform_seal_key_, measurement_.digest);
  const ByteView body = sealed.first(sealed.size() - 32);
  const ByteView mac = sealed.last(32);
  if (!crypto::ct_equal(crypto::hmac_sha256(key, body), mac)) {
    secure_wipe(key);
    return Error::crypto("unseal: MAC mismatch");
  }
  const crypto::RandomIvCipher cipher(key);
  secure_wipe(key);  // cipher holds its own key schedule
  return cipher.decrypt(body);
}

Result<Bytes> Enclave::exfiltrate_secrets() const {
  if (!breached()) {
    return Error::denied("enclave not breached: secrets are isolated");
  }
  return secrets_;
}

Result<crypto::RsaPrivateKey> Enclave::exfiltrate_channel_key() const {
  if (!breached()) {
    return Error::denied("enclave not breached: key is isolated");
  }
  return channel_priv_;
}

}  // namespace pprox::enclave
