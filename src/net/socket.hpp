// RAII file descriptors and small TCP helpers for the epoll server/client.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace pprox::net {

/// Owning file descriptor; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket on 127.0.0.1:port (port 0 = ephemeral).
Result<Fd> tcp_listen(std::uint16_t port);

/// Returns the locally bound port of a listening socket.
Result<std::uint16_t> local_port(const Fd& fd);

/// Blocking connect to 127.0.0.1:port.
Result<Fd> tcp_connect(std::uint16_t port);

/// Sets O_NONBLOCK.
Status set_nonblocking(const Fd& fd, bool enabled);

/// Writes the whole buffer (blocking socket); returns error on failure.
Status write_all(const Fd& fd, std::string_view data);

}  // namespace pprox::net
