// Transport abstraction. The proxy pipeline is written against HttpChannel /
// RequestSink so the same logic runs over three hosts: in-process wiring
// (tests, examples), real TCP + epoll (deployment path), and the discrete-
// event simulator (evaluation benches).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "http/http.hpp"

namespace pprox::net {

/// Completion callback carrying the response. May be invoked on any thread.
using RespondFn = std::function<void(http::HttpResponse)>;

/// Client side: something requests can be sent to.
class HttpChannel {
 public:
  virtual ~HttpChannel() = default;
  virtual void send(http::HttpRequest request, RespondFn done) = 0;
};

/// Server side: something that handles requests and eventually responds.
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  virtual void handle(http::HttpRequest request, RespondFn done) = 0;
};

/// Zero-copy in-process channel: forwards directly into a sink.
class InProcChannel final : public HttpChannel {
 public:
  explicit InProcChannel(RequestSink& sink) : sink_(&sink) {}
  void send(http::HttpRequest request, RespondFn done) override {
    sink_->handle(std::move(request), std::move(done));
  }

 private:
  RequestSink* sink_;
};

/// Round-robin load balancer over several backends — the kube-proxy
/// stand-in used for horizontal scaling of proxy layers and LRS front-ends.
class RoundRobinChannel final : public HttpChannel {
 public:
  explicit RoundRobinChannel(std::vector<std::shared_ptr<HttpChannel>> backends)
      : backends_(std::move(backends)) {}

  void send(http::HttpRequest request, RespondFn done) override {
    if (backends_.empty()) {
      done(http::HttpResponse::error_response(503, "no backends"));
      return;
    }
    const std::size_t i =
        next_.fetch_add(1, std::memory_order_relaxed) % backends_.size();
    backends_[i]->send(std::move(request), std::move(done));
  }

  std::size_t backend_count() const { return backends_.size(); }

 private:
  std::vector<std::shared_ptr<HttpChannel>> backends_;
  std::atomic<std::size_t> next_{0};
};

/// Adapts a synchronous handler function into a RequestSink.
class FunctionSink final : public RequestSink {
 public:
  using Fn = std::function<http::HttpResponse(const http::HttpRequest&)>;
  explicit FunctionSink(Fn fn) : fn_(std::move(fn)) {}
  void handle(http::HttpRequest request, RespondFn done) override {
    done(fn_(request));
  }

 private:
  Fn fn_;
};

}  // namespace pprox::net
