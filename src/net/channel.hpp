// Transport abstraction. The proxy pipeline is written against HttpChannel /
// RequestSink so the same logic runs over three hosts: in-process wiring
// (tests, examples), real TCP + epoll (deployment path), and the discrete-
// event simulator (evaluation benches).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "http/http.hpp"

namespace pprox::net {

/// Completion callback carrying the response. May be invoked on any thread.
using RespondFn = std::function<void(http::HttpResponse)>;

/// Client side: something requests can be sent to.
class HttpChannel {
 public:
  virtual ~HttpChannel() = default;
  virtual void send(http::HttpRequest request, RespondFn done) = 0;
};

/// Server side: something that handles requests and eventually responds.
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  virtual void handle(http::HttpRequest request, RespondFn done) = 0;
};

/// Zero-copy in-process channel: forwards directly into a sink.
///
/// Two ownership modes:
///  - borrowed (`RequestSink&`): the caller guarantees the sink outlives the
///    channel — the usual scoped-test wiring.
///  - weak (`std::weak_ptr<RequestSink>`): the sink may be torn down while
///    clients still hold the channel (key rotation discards proxies that
///    stale ClientLibrary instances still point at). send() pins the sink
///    for the duration of handle(), and answers 503 once it is gone,
///    instead of dereferencing a destroyed proxy.
class InProcChannel final : public HttpChannel {
 public:
  explicit InProcChannel(RequestSink& sink) : sink_(&sink) {}
  explicit InProcChannel(std::weak_ptr<RequestSink> sink)
      : weak_sink_(std::move(sink)) {}

  void send(http::HttpRequest request, RespondFn done) override {
    // PPROX-CT-OK(branch): which channel backend is wired up is deployment
    // configuration, independent of request or key contents.
    if (sink_ != nullptr) {
      sink_->handle(std::move(request), std::move(done));
      return;
    }
    // PPROX-CT-OK(branch): backend liveness is deployment state, independent
    // of any request or key contents.
    if (const auto pinned = weak_sink_.lock()) {
      pinned->handle(std::move(request), std::move(done));
      return;
    }
    done(http::HttpResponse::error_response(503, "backend gone"));
  }

 private:
  RequestSink* sink_ = nullptr;
  std::weak_ptr<RequestSink> weak_sink_;
};

/// Round-robin load balancer over several backends — the kube-proxy
/// stand-in used for horizontal scaling of proxy layers and LRS front-ends.
class RoundRobinChannel final : public HttpChannel {
 public:
  explicit RoundRobinChannel(std::vector<std::shared_ptr<HttpChannel>> backends)
      : backends_(std::move(backends)), sent_(backends_.size(), 0) {}

  void send(http::HttpRequest request, RespondFn done) override
      PPROX_EXCLUDES(stats_mutex_) {
    if (backends_.empty()) {
      done(http::HttpResponse::error_response(503, "no backends"));
      return;
    }
    const std::size_t i =
        next_.fetch_add(1, std::memory_order_relaxed) % backends_.size();
    {
      LockGuard lock(stats_mutex_);
      ++sent_[i];
    }
    backends_[i]->send(std::move(request), std::move(done));
  }

  std::size_t backend_count() const { return backends_.size(); }

  /// Requests dispatched to backend `i` so far (load-spread checks in tests
  /// and the elasticity benches).
  std::uint64_t sent_to(std::size_t i) const PPROX_EXCLUDES(stats_mutex_) {
    LockGuard lock(stats_mutex_);
    return i < sent_.size() ? sent_[i] : 0;
  }

 private:
  std::vector<std::shared_ptr<HttpChannel>> backends_;  // fixed after ctor
  Atomic<std::size_t> next_{0};
  mutable Mutex stats_mutex_;
  std::vector<std::uint64_t> sent_ PPROX_GUARDED_BY(stats_mutex_);
};

/// Adapts a synchronous handler function into a RequestSink.
class FunctionSink final : public RequestSink {
 public:
  using Fn = std::function<http::HttpResponse(const http::HttpRequest&)>;
  explicit FunctionSink(Fn fn) : fn_(std::move(fn)) {}
  void handle(http::HttpRequest request, RespondFn done) override {
    done(fn_(request));
  }

 private:
  Fn fn_;
};

}  // namespace pprox::net
