#include "net/tcp.hpp"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hpp"

namespace pprox::net {
namespace {

constexpr std::size_t kReadChunk = 16 * 1024;

}  // namespace

TcpServer::TcpServer(std::uint16_t port, RequestSink& sink) : sink_(&sink) {
  auto listen_result = tcp_listen(port);
  listen_fd_ = std::move(listen_result.value());
  port_ = local_port(listen_fd_).value();
  if (!set_nonblocking(listen_fd_, true).ok()) {
    throw std::runtime_error("TcpServer: cannot set listen fd nonblocking");
  }

  epoll_fd_ = Fd(::epoll_create1(0));
  if (!epoll_fd_.valid()) throw std::runtime_error("epoll_create1 failed");
  completions_->wake_fd = Fd(::eventfd(0, EFD_NONBLOCK));
  if (!completions_->wake_fd.valid()) throw std::runtime_error("eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // listen fd marker
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev);
  epoll_event wev{};
  wev.events = EPOLLIN;
  wev.data.u64 = UINT64_MAX;  // wake fd marker
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, completions_->wake_fd.get(), &wev);

  thread_ = DetThread([this] { loop(); }, "tcp-server");
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(completions_->wake_fd.get(), &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
}

std::size_t TcpServer::connection_count() const {
  LockGuard lock(conn_count_mutex_);
  return conn_count_;
}

void TcpServer::loop() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_.get(), events, 64, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      LOG_ERROR("TcpServer: epoll_wait failed: " << std::strerror(errno));
      return;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == 0) {
        accept_new();
      } else if (id == UINT64_MAX) {
        std::uint64_t count = 0;
        [[maybe_unused]] ssize_t r =
            ::read(completions_->wake_fd.get(), &count, sizeof(count));
        drain_completions();
      } else {
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          close_connection(id);
          continue;
        }
        if (events[i].events & EPOLLIN) on_readable(id);
        if (events[i].events & EPOLLOUT) on_writable(id);
      }
    }
    // Completions can also arrive between epoll wakeups.
    drain_completions();
  }
}

void TcpServer::accept_new() {
  while (true) {
    Fd client(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!client.valid()) return;  // EAGAIN or error: done accepting
    if (!set_nonblocking(client, true).ok()) continue;
    const std::uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = std::move(client);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, conn.fd.get(), &ev);
    connections_.emplace(id, std::move(conn));
    LockGuard lock(conn_count_mutex_);
    conn_count_ = connections_.size();
  }
}

void TcpServer::on_readable(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn.parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    } else if (n == 0) {
      close_connection(conn_id);
      return;
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(conn_id);
      return;
    }
  }

  while (auto request = conn.parser.next_request()) {
    const std::uint64_t slot = conn.next_slot++;
    conn.pending.emplace_back(std::nullopt);
    // Completion may fire on any thread (e.g. an enclave worker): route it
    // through the completion queue and wake the epoll loop. Held weakly so
    // a completion outliving the server is dropped, not a use-after-free.
    sink_->handle(std::move(*request),
                  [weak = std::weak_ptr<CompletionQueue>(completions_),
                   conn_id, slot](http::HttpResponse response) {
                    if (const auto queue = weak.lock()) {
                      queue->post({conn_id, slot, std::move(response)});
                    }
                  });
  }
  if (conn.parser.broken()) close_connection(conn_id);
}

void TcpServer::CompletionQueue::post(Completion completion) {
  {
    LockGuard lock(mutex);
    items.push_back(std::move(completion));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(wake_fd.get(), &one, sizeof(one));
}

void TcpServer::drain_completions() {
  std::vector<Completion> batch;
  {
    LockGuard lock(completions_->mutex);
    batch.swap(completions_->items);
  }
  for (auto& completion : batch) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // client disconnected meanwhile
    Connection& conn = it->second;
    const std::uint64_t index = completion.slot - conn.first_slot;
    if (index >= conn.pending.size()) continue;
    conn.pending[index] = std::move(completion.response);
    flush_ready(completion.conn_id, conn);
  }
}

void TcpServer::flush_ready(std::uint64_t conn_id, Connection& conn) {
  while (!conn.pending.empty() && conn.pending.front().has_value()) {
    // Serialize straight into the connection's output buffer: the response
    // bytes are written exactly once, with no per-response temporary.
    conn.pending.front()->serialize_to(conn.out_buffer);
    conn.pending.pop_front();
    ++conn.first_slot;
  }
  on_writable(conn_id);
}

void TcpServer::on_writable(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  while (conn.unsent() != 0) {
    const ssize_t n =
        ::send(conn.fd.get(), conn.out_buffer.data() + conn.out_offset,
               conn.unsent(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(conn_id);
      return;
    }
  }
  if (conn.unsent() == 0) {
    // Fully drained: reset the buffer (capacity is kept — the next response
    // reuses the allocation) instead of memmoving a tail on every send.
    conn.out_buffer.clear();
    conn.out_offset = 0;
  }
  update_epoll(conn_id, conn);
}

void TcpServer::update_epoll(std::uint64_t conn_id, Connection& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.unsent() == 0 ? 0 : EPOLLOUT);
  ev.data.u64 = conn_id;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void TcpServer::close_connection(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->second.fd.get(), nullptr);
  connections_.erase(it);
  LockGuard lock(conn_count_mutex_);
  conn_count_ = connections_.size();
}

TcpChannel::TcpChannel(std::uint16_t port, std::size_t pool_size,
                       std::chrono::milliseconds request_timeout)
    : port_(port), request_timeout_(request_timeout) {
  workers_.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    workers_.emplace_back(DetThread([this] { worker_loop(); }, "tcp-client"));
  }
}

TcpChannel::~TcpChannel() {
  {
    LockGuard lock(mutex_);
    stopping_.store(true);
    cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void TcpChannel::send(http::HttpRequest request, RespondFn done) {
  LockGuard lock(mutex_);
  jobs_.push_back({std::move(request), std::move(done)});
  cv_.notify_one();
}

void TcpChannel::worker_loop() {
  Fd conn;   // persistent connection, lazily opened
  std::string wire;  // reusable request serialization buffer
  while (true) {
    Job job;
    {
      UniqueLock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_.load() || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job.done(round_trip(conn, job.request, wire));
  }
}

http::HttpResponse TcpChannel::round_trip(Fd& conn,
                                          const http::HttpRequest& request,
                                          std::string& wire) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + request_timeout_;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!conn.valid()) {
      auto c = tcp_connect(port_);
      if (!c.ok()) {
        return http::HttpResponse::error_response(503, "connect failed");
      }
      conn = std::move(c.value());
    }
    wire.clear();  // keeps the worker's capacity across requests
    request.serialize_to(wire);
    if (!write_all(conn, wire).ok()) {
      conn.reset();
      continue;  // stale connection: reconnect once
    }
    http::HttpParser parser(http::HttpParser::Mode::kResponse);
    char buf[kReadChunk];
    while (true) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (remaining.count() <= 0) {
        // The connection now carries an unconsumed response: discard it.
        conn.reset();
        return http::HttpResponse::error_response(504, "upstream timed out");
      }
      pollfd pfd{conn.get(), POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (ready == 0) continue;  // re-check the deadline
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      const ssize_t n = ::recv(conn.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        if (auto response = parser.next_response()) return std::move(*response);
        if (parser.broken()) break;
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        break;
      }
    }
    conn.reset();
  }
  return http::HttpResponse::error_response(502, "upstream connection failed");
}

}  // namespace pprox::net
