// Real-network transport: an epoll-based HTTP server (mirroring the paper's
// event-driven proxy server, §5) and a pooled blocking HTTP client channel.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/hotpath.hpp"
#include "common/sync.hpp"
#include "net/channel.hpp"
#include "net/socket.hpp"

namespace pprox::net {

/// Single-threaded epoll HTTP/1.1 server. Incoming requests are handed to
/// the sink; the sink's completion callback may fire on any thread — the
/// response is routed back to the right connection, in request order, via an
/// eventfd wakeup. This mirrors the paper's server thread + routing table T.
class TcpServer {
 public:
  /// Binds 127.0.0.1:port (0 = pick an ephemeral port) and starts the loop.
  TcpServer(std::uint16_t port, RequestSink& sink);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Number of currently open client connections (for tests).
  std::size_t connection_count() const;

  void stop();

 private:
  struct Connection {
    Fd fd;
    http::HttpParser parser{http::HttpParser::Mode::kRequest};
    // Responses are serialized directly into out_buffer (no per-response
    // temporary); out_offset is the send cursor so partial writes do not
    // memmove the unsent tail on every send().
    std::string out_buffer;
    std::size_t out_offset = 0;
    // In-order response slots: HTTP/1.1 requires responses in request order.
    std::deque<std::optional<http::HttpResponse>> pending;
    std::uint64_t first_slot = 0;  // slot id of pending.front()
    std::uint64_t next_slot = 0;
    bool closing = false;

    std::size_t unsent() const { return out_buffer.size() - out_offset; }
  };

  void loop();
  void accept_new();
  // The per-request epoll path: everything between "bytes arrived" and
  // "response bytes queued" is PPROX_HOT — reachable allocations show up in
  // pprox_lint --hotpath and must shrink, not grow (tools/
  // hotpath_baseline.json).
  PPROX_HOT void on_readable(std::uint64_t conn_id);
  PPROX_HOT void on_writable(std::uint64_t conn_id);
  PPROX_HOT void flush_ready(std::uint64_t conn_id, Connection& conn);
  PPROX_HOT void drain_completions();
  void close_connection(std::uint64_t conn_id);
  PPROX_HOT PPROX_NONBLOCKING void update_epoll(std::uint64_t conn_id,
                                                Connection& conn);

  Fd listen_fd_;
  Fd epoll_fd_;
  std::uint16_t port_ = 0;
  RequestSink* sink_;
  DetThread thread_;
  Atomic<bool> stopping_{false};

  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t next_conn_id_ = 1;
  mutable Mutex conn_count_mutex_;
  std::size_t conn_count_ = 0;

  struct Completion {
    std::uint64_t conn_id;
    std::uint64_t slot;
    http::HttpResponse response;
  };
  /// Completion routing state, shared with every in-flight RespondFn. The
  /// callbacks hold it via weak_ptr: a completion firing after the server
  /// is gone (a sink flushing parked requests during teardown, a slow
  /// worker thread) finds the queue expired and drops the response instead
  /// of writing into a destroyed server. The wake eventfd lives here so a
  /// late post never touches a closed descriptor either.
  struct CompletionQueue {
    Mutex mutex;
    std::vector<Completion> items;
    Fd wake_fd;  // eventfd
    void post(Completion completion);
  };
  std::shared_ptr<CompletionQueue> completions_ =
      std::make_shared<CompletionQueue>();
};

/// Client channel to 127.0.0.1:port backed by a small pool of worker
/// threads, each holding one persistent connection (blocking round trips).
/// A per-request deadline guards against hung upstreams: expiry yields a
/// 504 and drops the (now unusable) connection.
class TcpChannel final : public HttpChannel {
 public:
  explicit TcpChannel(std::uint16_t port, std::size_t pool_size = 4,
                      std::chrono::milliseconds request_timeout =
                          std::chrono::milliseconds(30'000));
  ~TcpChannel() override;

  void send(http::HttpRequest request, RespondFn done) override;

 private:
  struct Job {
    http::HttpRequest request;
    RespondFn done;
  };

  void worker_loop();
  /// One request/response over the persistent connection; reconnects once.
  /// `wire` is the worker's reusable serialization buffer (cleared here),
  /// so steady-state round trips do not allocate for the request bytes.
  http::HttpResponse round_trip(Fd& conn, const http::HttpRequest& request,
                                std::string& wire);

  std::uint16_t port_;
  std::chrono::milliseconds request_timeout_;
  Atomic<bool> stopping_{false};
  Mutex mutex_;
  CondVar cv_;
  std::deque<Job> jobs_;
  std::vector<DetThread> workers_;
};

}  // namespace pprox::net
