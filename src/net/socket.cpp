#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pprox::net {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> tcp_listen(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Error::internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Error::internal(std::string("bind() failed: ") + std::strerror(errno));
  }
  if (::listen(fd.get(), 256) != 0) {
    return Error::internal("listen() failed");
  }
  return fd;
}

Result<std::uint16_t> local_port(const Fd& fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Error::internal("getsockname() failed");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Result<Fd> tcp_connect(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Error::internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Error::unavailable(std::string("connect() failed: ") + std::strerror(errno));
  }
  return fd;
}

Status set_nonblocking(const Fd& fd, bool enabled) {
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) return Error::internal("fcntl(F_GETFL) failed");
  flags = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd.get(), F_SETFL, flags) != 0) {
    return Error::internal("fcntl(F_SETFL) failed");
  }
  return Status::ok_status();
}

Status write_all(const Fd& fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd.get(), data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error::unavailable(std::string("send() failed: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::ok_status();
}

}  // namespace pprox::net
