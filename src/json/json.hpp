// JSON support, two flavours:
//  * A DOM (JsonValue + parse/dump) for the LRS, workload tooling, and tests.
//  * An in-place editor mirroring the paper's in-enclave parser (§5): finds
//    and rewrites string fields directly in the packet buffer with minimal
//    copying, so enclave logic never materializes a DOM.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.hpp"

namespace pprox::json {

class JsonValue;

/// Object member list; insertion order is preserved (stable wire output).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

/// A parsed JSON document node. Value semantics.
class JsonValue {
 public:
  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}              // NOLINT
  JsonValue(bool b) : data_(b) {}                            // NOLINT
  JsonValue(double d) : data_(d) {}                          // NOLINT
  JsonValue(int i) : data_(static_cast<double>(i)) {}        // NOLINT
  JsonValue(std::int64_t i) : data_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(const char* s) : data_(std::string(s)) {}        // NOLINT
  JsonValue(std::string s) : data_(std::move(s)) {}          // NOLINT
  JsonValue(JsonArray a) : data_(std::move(a)) {}            // NOLINT
  JsonValue(JsonObject o) : data_(std::move(o)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(data_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(data_); }
  JsonArray& as_array() { return std::get<JsonArray>(data_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(data_); }
  JsonObject& as_object() { return std::get<JsonObject>(data_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Inserts or overwrites an object member. *this must be an object.
  void set(std::string key, JsonValue value);

  /// Convenience: string member or fallback.
  std::string get_string(std::string_view key, std::string fallback = "") const;

  /// Convenience: numeric member or fallback.
  double get_number(std::string_view key, double fallback = 0) const;

  /// Serializes to compact JSON text.
  std::string dump() const;

  bool operator==(const JsonValue& other) const { return data_ == other.data_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      data_;
};

/// Parses a complete JSON document. Rejects trailing garbage and enforces a
/// nesting-depth limit (default 64) against stack-exhaustion inputs.
Result<JsonValue> parse(std::string_view text, int max_depth = 64);

/// Escapes a string for embedding in JSON output.
std::string escape(std::string_view raw);

// ---------------------------------------------------------------------------
// In-place editing over a serialized JSON buffer (enclave hot path).
// Only string-valued top-level-ish fields are needed by the proxy: it swaps
// identifier ciphertexts without reserializing the document.
// ---------------------------------------------------------------------------

/// Locates the value of the first occurrence of `"key": "<value>"` anywhere
/// in `buffer` and returns the [begin, end) offsets of <value> (quotes
/// excluded). Fields inside nested objects/arrays are found too; keys inside
/// string values are not matched. Returns nullopt when absent.
std::optional<std::pair<std::size_t, std::size_t>> find_string_field(
    std::string_view buffer, std::string_view key);

/// Reads a string field's raw (still escaped) value.
std::optional<std::string> get_string_field(std::string_view buffer,
                                            std::string_view key);

/// Replaces a string field's value in place; the buffer is resized as needed.
/// `new_value` must already be escape-safe (base64 always is). Returns false
/// when the field is absent.
bool replace_string_field(std::string& buffer, std::string_view key,
                          std::string_view new_value);

}  // namespace pprox::json
