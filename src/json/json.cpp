#include "json/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pprox::json {
namespace {

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> run() {
    skip_ws();
    auto v = parse_value(0);
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return v;
  }

 private:
  Error make_error(const std::string& msg) {
    return Error::parse(msg + " at offset " + std::to_string(pos_));
  }
  Result<JsonValue> fail(const std::string& msg) { return make_error(msg); }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (!at_end() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value(int depth) {  // PPROX-HOTPATH-OK(recursion): recursive descent bounded by max_depth_ (checked in parse_value)
    if (depth > max_depth_) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return s.error();
        return JsonValue(std::move(s.value()));
      }
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        return fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        return fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        return fail("bad literal");
      default: return parse_number();
    }
  }

  Result<JsonValue> parse_object(int depth) {  // PPROX-HOTPATH-OK(recursion): recursive descent bounded by max_depth_ (checked in parse_value)
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(obj));
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      obj.emplace_back(std::move(key.value()), std::move(value.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue(std::move(obj));
      return fail("expected ',' or '}'");
    }
  }

  Result<JsonValue> parse_array(int depth) {  // PPROX-HOTPATH-OK(recursion): recursive descent bounded by max_depth_ (checked in parse_value)
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(arr));
    while (true) {
      skip_ws();
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      arr.push_back(std::move(value.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue(std::move(arr));
      return fail("expected ',' or ']'");
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (at_end()) return make_error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return make_error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return make_error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          auto cp = parse_hex4();
          if (!cp.ok()) return cp.error();
          std::uint32_t code = cp.value();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair.
            if (!consume_literal("\\u")) return make_error("lone surrogate");
            auto low = parse_hex4();
            if (!low.ok()) return low.error();
            if (low.value() < 0xDC00 || low.value() > 0xDFFF) {
              return make_error("bad low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low.value() - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return make_error("lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: return make_error("bad escape character");
      }
    }
  }

  Result<std::uint32_t> parse_hex4() {
    if (pos_ + 4 > text_.size()) return make_error("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return make_error("bad hex digit in \\u escape");
    }
    return v;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("bad number");
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (consume('.')) {
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("bad fraction");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("bad exponent");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    double value = 0;
    const auto* begin = text_.data() + start;
    const auto* end = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end) return fail("unparseable number");
    return JsonValue(value);
  }

  // The parser is a stack local inside parse(): text_ aliases the caller's
  // buffer only for the duration of that call, and every JsonValue produced
  // owns its strings (values are copied out, never aliased).
  // PPROX-LIFETIME-OK(member): parser never outlives parse()'s argument
  std::string_view text_;
  std::size_t pos_ = 0;
  int max_depth_;
};

void dump_value(const JsonValue& v, std::string& out);

void dump_number(double d, std::string& out) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void dump_value(const JsonValue& v, std::string& out) {  // PPROX-HOTPATH-OK(recursion): tree walk bounded by the parsed document depth (parser enforces max_depth_)
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(v.as_number(), out);
  } else if (v.is_string()) {
    out += '"';
    out += escape(v.as_string());
    out += '"';
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const auto& e : v.as_array()) {
      if (!first) out += ',';
      first = false;
      dump_value(e, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += escape(k);
      out += "\":";
      dump_value(e, out);
    }
    out += '}';
  }
}

// Scans past a JSON string starting at the opening quote; returns the offset
// just past the closing quote, or npos on malformed input.
std::size_t skip_string(std::string_view buffer, std::size_t pos) {
  ++pos;  // opening quote
  // PPROX-CT-OK(branch): wire-format body scan, public framing.
  while (pos < buffer.size()) {
    // PPROX-CT-OK(branch): wire-format body scan, public framing.
    if (buffer[pos] == '\\') {
      pos += 2;
    } else if (buffer[pos] == '"') {  // PPROX-CT-OK(branch): wire framing
      return pos + 1;
    } else {
      ++pos;
    }
  }
  return std::string_view::npos;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    // PPROX-CT-OK(branch): object keys are JSON field names — public wire
    // schema ("user", "item", ...), never secret values.
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  auto& obj = as_object();
  for (auto& [k, v] : obj) {
    // PPROX-CT-OK(branch): JSON field names are public wire schema.
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string fallback) const {
  const JsonValue* v = find(key);
  if (v != nullptr && v->is_string()) return v->as_string();
  return fallback;
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  if (v != nullptr && v->is_number()) return v->as_number();
  return fallback;
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Result<JsonValue> parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth).run();
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::optional<std::pair<std::size_t, std::size_t>> find_string_field(
    std::string_view buffer, std::string_view key) {
  // Walk the buffer token by token, skipping string literals so a key inside
  // a value never matches. A full parse is unnecessary: the proxy only needs
  // "key": "value" pairs, which this scan finds at any nesting level.
  std::size_t pos = 0;
  while (pos < buffer.size()) {
    const char c = buffer[pos];
    // PPROX-CT-OK(branch): wire-format body scan, public framing.
    if (c != '"') {
      ++pos;
      continue;
    }
    const std::size_t key_begin = pos + 1;
    const std::size_t after = skip_string(buffer, pos);
    if (after == std::string_view::npos) return std::nullopt;
    const std::size_t key_end = after - 1;
    // Is this string the key we want, followed by a colon?
    std::size_t cursor = after;
    // PPROX-CT-OK(branch): scans the wire-format request body — ciphertext
    // and pseudonym fields the network observer already sees byte-for-byte.
    while (cursor < buffer.size() &&
           (buffer[cursor] == ' ' || buffer[cursor] == '\t' ||
            buffer[cursor] == '\n' || buffer[cursor] == '\r')) {
      ++cursor;
    }
    // PPROX-CT-OK(branch): scans the wire-format request body; field names
    // and framing are public schema.
    if (cursor < buffer.size() && buffer[cursor] == ':' &&
        buffer.substr(key_begin, key_end - key_begin) == key) {
      ++cursor;
      // PPROX-CT-OK(branch): wire-format body scan, public framing.
      while (cursor < buffer.size() &&
             (buffer[cursor] == ' ' || buffer[cursor] == '\t' ||
              buffer[cursor] == '\n' || buffer[cursor] == '\r')) {
        ++cursor;
      }
      // PPROX-CT-OK(branch): wire-format body scan, public framing.
      if (cursor < buffer.size() && buffer[cursor] == '"') {
        const std::size_t value_end = skip_string(buffer, cursor);
        if (value_end == std::string_view::npos) return std::nullopt;
        return std::make_pair(cursor + 1, value_end - 1);
      }
      // Key present but value is not a string: keep scanning for another
      // occurrence rather than failing.
    }
    pos = after;
  }
  return std::nullopt;
}

std::optional<std::string> get_string_field(std::string_view buffer,
                                            std::string_view key) {
  const auto span = find_string_field(buffer, key);
  if (!span) return std::nullopt;
  return std::string(buffer.substr(span->first, span->second - span->first));
}

bool replace_string_field(std::string& buffer, std::string_view key,
                          std::string_view new_value) {
  const auto span = find_string_field(buffer, key);
  if (!span) return false;
  buffer.replace(span->first, span->second - span->first,
                 new_value.data(), new_value.size());
  return true;
}

}  // namespace pprox::json
