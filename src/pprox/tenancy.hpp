// Multi-tenancy (paper §6.3 "Assumption on traffic"): a RaaS provider can
// run ONE proxy layer for MANY client applications, so low-traffic tenants
// still see full shuffle buffers (their requests mix with other tenants').
// Each tenant keeps its own layer secrets; an enclave is provisioned with a
// keyring mapping tenant ids to secrets. The trade-off the paper notes —
// one breached enclave now leaks several tenants' layer secrets (still only
// one LAYER each) — is intrinsic and tested.
#pragma once

#include <map>
#include <string>

#include "pprox/keys.hpp"

namespace pprox {

/// Request header naming the tenant application. The tenant id identifies
/// the *application*, never a user, so it travels in the clear.
inline constexpr const char* kTenantHeader = "X-PProx-App";

/// Default tenant id used by single-application deployments.
inline constexpr const char* kDefaultTenant = "";

/// Per-layer secrets for a set of tenant applications.
struct TenantKeyring {
  std::map<std::string, LayerSecrets> tenants;

  /// Binary encoding with a magic prefix, so provisioning blobs are
  /// self-describing (an enclave accepts either a bare LayerSecrets or a
  /// keyring).
  Bytes serialize() const;
  static Result<TenantKeyring> deserialize(ByteView blob);

  /// True when `blob` starts with the keyring magic.
  static bool looks_like_keyring(ByteView blob);
};

}  // namespace pprox
