// PPROX-LAYER: shared
//
// Multi-tenancy (paper §6.3 "Assumption on traffic"): a RaaS provider can
// run ONE proxy layer for MANY client applications, so low-traffic tenants
// still see full shuffle buffers (their requests mix with other tenants').
// Each tenant keeps its own layer secrets; an enclave is provisioned with a
// keyring mapping tenant ids to secrets. The trade-off the paper notes —
// one breached enclave now leaks several tenants' layer secrets (still only
// one LAYER each) — is intrinsic and tested.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "pprox/keys.hpp"

namespace pprox {

/// Request header naming the tenant application. The tenant id identifies
/// the *application*, never a user, so it travels in the clear.
inline constexpr const char* kTenantHeader = "X-PProx-App";

/// Default tenant id used by single-application deployments.
inline constexpr const char* kDefaultTenant = "";

/// Per-layer secrets for a set of tenant applications.
struct TenantKeyring {
  std::map<std::string, LayerSecrets> tenants;

  /// Binary encoding with a magic prefix, so provisioning blobs are
  /// self-describing (an enclave accepts either a bare LayerSecrets or a
  /// keyring).
  Bytes serialize() const;
  static Result<TenantKeyring> deserialize(ByteView blob);

  /// True when `blob` starts with the keyring magic.
  static bool looks_like_keyring(ByteView blob);
};

/// Thread-safe registry of tenant secrets for the provider's control plane:
/// tenants onboard and leave while proxies keep serving, so mutation and
/// snapshot-for-provisioning race. All state is guarded by one mutex; reads
/// hand out copies (a provisioning blob must not alias live registry state).
class TenantRegistry {
 public:
  TenantRegistry() = default;
  explicit TenantRegistry(TenantKeyring keyring);

  /// Adds or replaces a tenant's layer secrets.
  void upsert(const std::string& tenant_id, LayerSecrets secrets)
      PPROX_EXCLUDES(mutex_);

  /// Removes a tenant; false when unknown.
  bool remove(const std::string& tenant_id) PPROX_EXCLUDES(mutex_);

  bool contains(const std::string& tenant_id) const PPROX_EXCLUDES(mutex_);
  std::size_t size() const PPROX_EXCLUDES(mutex_);
  std::vector<std::string> tenant_ids() const PPROX_EXCLUDES(mutex_);

  /// Consistent point-in-time copy for enclave provisioning.
  TenantKeyring snapshot() const PPROX_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  TenantKeyring keyring_ PPROX_GUARDED_BY(mutex_);
};

}  // namespace pprox
