// PPROX-LAYER: shared
#include "pprox/proxy.hpp"

#include "common/logging.hpp"

namespace pprox {

std::uint64_t PendingStore::put(Bytes k_u) {
  LockGuard lock(mutex_);
  const std::uint64_t handle = next_++;
  pending_.emplace(handle, std::move(k_u));
  return handle;
}

Result<Bytes> PendingStore::take(std::uint64_t handle) {
  LockGuard lock(mutex_);
  const auto it = pending_.find(handle);
  if (it == pending_.end()) {
    return Error::not_found("no pending state for handle");
  }
  Bytes k_u = std::move(it->second);
  pending_.erase(it);
  return k_u;
}

std::size_t PendingStore::size() const {
  LockGuard lock(mutex_);
  return pending_.size();
}

ProxyServer::ProxyServer(ProxyOptions options, enclave::Enclave& enclave,
                         std::shared_ptr<net::HttpChannel> next)
    : options_(options),
      enclave_(&enclave),
      next_(std::move(next)),
      workers_(options.worker_threads),
      // Both layers batch their inbound requests now: the per-flush ecall
      // amortizes the transition cost for the IA exactly as for the UA.
      request_shuffle_(options.shuffle_size, options.shuffle_timeout),
      response_shuffle_(options.layer == ProxyOptions::Layer::kIa
                            ? options.shuffle_size
                            : 0,
                        options.shuffle_timeout) {
  // Batch release: the whole shuffled batch crosses the enclave boundary as
  // ONE ecall inside these sinks (set before any request can arrive).
  request_shuffle_.set_batch_sink(
      [this](std::span<PendingRequest> batch, const FlushInfo&) {
        release_request_batch(batch);
      });
  response_shuffle_.set_batch_sink(
      [this](std::span<PendingResponse> batch, const FlushInfo&) {
        release_response_batch(batch);
      });
  // Initial ecall: deserialize the provisioned secrets into enclave-resident
  // logic objects. Throws if the enclave was not attested+provisioned first.
  // The blob is either one application's LayerSecrets or a TenantKeyring.
  enclave_->ecall([this](ByteView secrets) {
    std::map<std::string, Bytes> blobs;
    if (TenantKeyring::looks_like_keyring(secrets)) {
      auto keyring = TenantKeyring::deserialize(secrets);
      if (!keyring.ok()) throw std::runtime_error(keyring.error().message);
      for (const auto& [id, layer_secrets] : keyring.value().tenants) {
        blobs.emplace(id, layer_secrets.serialize());
      }
    } else {
      blobs.emplace(kDefaultTenant, Bytes(secrets.begin(), secrets.end()));
    }
    for (const auto& [id, blob] : blobs) {
      if (options_.layer == ProxyOptions::Layer::kUa) {
        auto logic = UaLogic::from_secrets(blob);
        if (!logic.ok()) throw std::runtime_error(logic.error().message);
        ua_logics_.emplace(id, std::move(logic.value()));
      } else {
        auto logic = IaLogic::from_secrets(blob);
        if (!logic.ok()) throw std::runtime_error(logic.error().message);
        ia_logics_.emplace(id, std::move(logic.value()));
      }
    }
    return 0;
  });
}

std::string ProxyServer::tenant_of(const http::HttpRequest& request) {
  const std::string* header = request.header(kTenantHeader);
  return header != nullptr ? *header : kDefaultTenant;
}

const UaLogic* ProxyServer::ua_logic_for(const std::string& tenant) const {
  const auto it = ua_logics_.find(tenant);
  return it == ua_logics_.end() ? nullptr : &it->second;
}

const IaLogic* ProxyServer::ia_logic_for(const std::string& tenant) const {
  const auto it = ia_logics_.find(tenant);
  return it == ia_logics_.end() ? nullptr : &it->second;
}

ProxyServer::~ProxyServer() {
  // Release queued work before tearing down the worker pool. Order matters:
  // flushing pending requests can produce responses (synchronous channels)
  // whose processing rides the worker pool into response_shuffle_, so the
  // response flush must come after the pool drains.
  request_shuffle_.flush_now();
  workers_.shutdown();
  response_shuffle_.flush_now();
}

std::unique_ptr<ProxyServer::BatchScratch> ProxyServer::acquire_scratch() {
  {
    LockGuard lock(scratch_mutex_);
    if (!scratch_pool_.empty()) {
      auto scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return scratch;
    }
  }
  // PPROX-HOTPATH-OK(alloc): cold — first flush (or concurrent flushes
  // beyond the pooled count); the scratch returns to the pool afterwards,
  // so steady state reuses it allocation-free.
  const auto slots = static_cast<std::size_t>(
      options_.shuffle_size > 1 ? options_.shuffle_size : 1);
  return std::make_unique<BatchScratch>(slots * kResponseBlockSize + 4096,
                                        slots);
}

void ProxyServer::recycle_scratch(std::unique_ptr<BatchScratch> scratch) {
  scratch->arena.wipe_and_reset();
  scratch->ua_slots.clear();
  scratch->ia_slots.clear();
  scratch->seal_slots.clear();
  LockGuard lock(scratch_mutex_);
  scratch_pool_.push_back(std::move(scratch));
}

void ProxyServer::fail(const net::RespondFn& done, int status,
                       std::string_view message) {
  errors_.fetch_add(1);
  done(http::HttpResponse::error_response(status, message));
}

void ProxyServer::handle(http::HttpRequest request, net::RespondFn done) {
  requests_seen_.fetch_add(1);
  // The server part only schedules; all payload access happens in the
  // enclave data-processing pool.
  workers_.submit([this, request = std::move(request),
                   done = std::move(done)]() mutable {
    if (options_.layer == ProxyOptions::Layer::kUa) {
      handle_ua(std::move(request), std::move(done));
    } else {
      handle_ia(std::move(request), std::move(done));
    }
  });
}

void ProxyServer::handle_ua(http::HttpRequest request, net::RespondFn done) {
  const UaLogic* logic = ua_logic_for(tenant_of(request));
  // PPROX-CT-OK(branch): tenant routing on the public Host/tenant header;
  // the 403 is the deliberate public answer for unknown tenants.
  if (logic == nullptr) {
    fail(done, 403, "unknown tenant application");
    return;
  }
  // Only scheduling here: the user-field transform happens at release time,
  // batched with the rest of the flush inside one ecall.
  request_shuffle_.add(PendingRequest{std::move(request), std::move(done),
                                      logic, nullptr, false});
}

void ProxyServer::handle_ia(http::HttpRequest request, net::RespondFn done) {
  const IaLogic* logic = ia_logic_for(tenant_of(request));
  // PPROX-CT-OK(branch): tenant routing on the public Host/tenant header.
  if (logic == nullptr) {
    fail(done, 403, "unknown tenant application");
    return;
  }
  const bool is_get = request.target == paths::kQueries;
  request_shuffle_.add(PendingRequest{std::move(request), std::move(done),
                                      nullptr, logic, is_get});
}

void ProxyServer::release_request_batch(std::span<PendingRequest> batch) {
  std::unique_ptr<BatchScratch> scratch = acquire_scratch();

  // Describe the batch to the enclave: one slot per request, transformed
  // bodies written back in place.
  // PPROX-CT-OK(branch): layer selection is fixed deployment config.
  if (options_.layer == ProxyOptions::Layer::kUa) {
    for (PendingRequest& item : batch) {
      scratch->ua_slots.push_back(
          UaBatchSlot{item.ua_logic, &item.request.body, {}, {}});
    }
    // ONE ecall for the whole flush (ROADMAP item 3): S pseudonymizations
    // amortize a single simulated SGX transition.
    enclave_->ecall([&scratch](ByteView) {
      UaLogic::transform_batch(std::span<UaBatchSlot>(scratch->ua_slots),
                               scratch->arena);
      return 0;
    });
    scratch->arena.wipe_and_reset();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      PendingRequest& item = batch[i];
      const Status& status = scratch->ua_slots[i].status;
      if (!status.ok()) {
        fail(item.done, 400, status.error().message);
        continue;
      }
      next_->send(std::move(item.request),
                  [done = std::move(item.done)](http::HttpResponse response) {
                    // Responses pass through the UA untouched (opaque here).
                    done(std::move(response));
                  });
    }
    recycle_scratch(std::move(scratch));
    return;
  }

  for (PendingRequest& item : batch) {
    scratch->ia_slots.push_back(IaRequestSlot{item.ia_logic,
                                              &item.request.body, item.is_get,
                                              options_.pseudonymize_items,
                                              {},
                                              {}});
  }
  enclave_->ecall([&scratch](ByteView) {
    IaLogic::transform_batch(std::span<IaRequestSlot>(scratch->ia_slots),
                             scratch->arena);
    return 0;
  });
  scratch->arena.wipe_and_reset();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    PendingRequest& item = batch[i];
    IaRequestSlot& slot = scratch->ia_slots[i];
    if (!slot.status.ok()) {
      fail(item.done, 400, slot.status.error().message);
      continue;
    }
    // PPROX-CT-OK(branch): GET vs POST dispatch on the public request line.
    if (!item.is_get) {
      next_->send(
          std::move(item.request),
          [this, done = std::move(item.done)](http::HttpResponse response) {
            // Post responses carry no payload worth hiding, but they are
            // shuffled like everything else on the return path.
            response_shuffle_.add(PendingResponse{std::move(response),
                                                  std::move(done), nullptr,
                                                  {}});
          });
      continue;
    }
    // get: k_u was recovered inside the batch ecall; park it in the EPC
    // store until the LRS response arrives.
    const std::uint64_t handle = pending_.put(std::move(slot.k_u));
    const IaLogic* logic = item.ia_logic;
    next_->send(
        std::move(item.request),
        [this, logic, handle,
         done = std::move(item.done)](http::HttpResponse response) mutable {
          // Process the LRS response in the enclave pool, not the transport
          // thread.
          workers_.submit([this, logic, handle, done = std::move(done),
                           response = std::move(response)]() mutable {
            auto k_u = pending_.take(handle);
            if (!k_u.ok()) {
              fail(done, 500, "lost pending response state");
              return;
            }
            if (response.status != 200) {
              // Propagate LRS errors (still shuffled, passthrough).
              response_shuffle_.add(PendingResponse{
                  std::move(response), std::move(done), nullptr, {}});
              return;
            }
            // No per-response ecall here: the seal happens batched, at
            // response-flush release time.
            response_shuffle_.add(PendingResponse{std::move(response),
                                                  std::move(done), logic,
                                                  std::move(k_u.value())});
          });
        });
  }
  recycle_scratch(std::move(scratch));
}

void ProxyServer::release_response_batch(std::span<PendingResponse> batch) {
  std::unique_ptr<BatchScratch> scratch;
  for (PendingResponse& item : batch) {
    if (item.logic == nullptr) continue;  // passthrough: nothing to seal
    if (!scratch) scratch = acquire_scratch();
    scratch->seal_slots.push_back(IaSealSlot{item.logic, &item.response.body,
                                             ByteView(item.k_u),
                                             options_.authenticated_responses,
                                             {},
                                             {},
                                             {},
                                             0});
  }
  if (scratch) {
    // ONE ecall seals every response in the flush: the de-pseudonymize
    // keystream is shared per tenant and the GCM/CTR batch kernels run over
    // the whole set of response blocks.
    enclave_->ecall([this, &scratch](ByteView) {
      IaLogic::seal_batch(std::span<IaSealSlot>(scratch->seal_slots),
                          enclave_rng_, scratch->arena);
      return 0;
    });
    // Wipe before any response leaves: de-pseudonymized item plaintext must
    // not outlive the transition that produced it.
    scratch->arena.wipe_and_reset();
  }

  std::size_t sealed_index = 0;
  for (PendingResponse& item : batch) {
    if (item.logic == nullptr) {
      item.done(std::move(item.response));
      continue;
    }
    IaSealSlot& slot = scratch->seal_slots[sealed_index++];
    if (!slot.status.ok()) {
      fail(item.done, 502, slot.status.error().message);
    } else {
      item.done(http::HttpResponse::json_response(200,
                                                  std::move(slot.sealed)));
    }
    secure_wipe(MutByteView(item.k_u.data(), item.k_u.size()));
  }
  if (scratch) recycle_scratch(std::move(scratch));
}

}  // namespace pprox
