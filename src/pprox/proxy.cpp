// PPROX-LAYER: shared
#include "pprox/proxy.hpp"

#include "common/logging.hpp"

namespace pprox {

std::uint64_t PendingStore::put(Bytes k_u) {
  LockGuard lock(mutex_);
  const std::uint64_t handle = next_++;
  pending_.emplace(handle, std::move(k_u));
  return handle;
}

Result<Bytes> PendingStore::take(std::uint64_t handle) {
  LockGuard lock(mutex_);
  const auto it = pending_.find(handle);
  if (it == pending_.end()) {
    return Error::not_found("no pending state for handle");
  }
  Bytes k_u = std::move(it->second);
  pending_.erase(it);
  return k_u;
}

std::size_t PendingStore::size() const {
  LockGuard lock(mutex_);
  return pending_.size();
}

ProxyServer::ProxyServer(ProxyOptions options, enclave::Enclave& enclave,
                         std::shared_ptr<net::HttpChannel> next)
    : options_(options),
      enclave_(&enclave),
      next_(std::move(next)),
      workers_(options.worker_threads),
      request_shuffle_(options.layer == ProxyOptions::Layer::kUa
                           ? options.shuffle_size
                           : 0,
                       options.shuffle_timeout),
      response_shuffle_(options.layer == ProxyOptions::Layer::kIa
                            ? options.shuffle_size
                            : 0,
                        options.shuffle_timeout) {
  // Initial ecall: deserialize the provisioned secrets into enclave-resident
  // logic objects. Throws if the enclave was not attested+provisioned first.
  // The blob is either one application's LayerSecrets or a TenantKeyring.
  enclave_->ecall([this](ByteView secrets) {
    std::map<std::string, Bytes> blobs;
    if (TenantKeyring::looks_like_keyring(secrets)) {
      auto keyring = TenantKeyring::deserialize(secrets);
      if (!keyring.ok()) throw std::runtime_error(keyring.error().message);
      for (const auto& [id, layer_secrets] : keyring.value().tenants) {
        blobs.emplace(id, layer_secrets.serialize());
      }
    } else {
      blobs.emplace(kDefaultTenant, Bytes(secrets.begin(), secrets.end()));
    }
    for (const auto& [id, blob] : blobs) {
      if (options_.layer == ProxyOptions::Layer::kUa) {
        auto logic = UaLogic::from_secrets(blob);
        if (!logic.ok()) throw std::runtime_error(logic.error().message);
        ua_logics_.emplace(id, std::move(logic.value()));
      } else {
        auto logic = IaLogic::from_secrets(blob);
        if (!logic.ok()) throw std::runtime_error(logic.error().message);
        ia_logics_.emplace(id, std::move(logic.value()));
      }
    }
    return 0;
  });
}

std::string ProxyServer::tenant_of(const http::HttpRequest& request) {
  const std::string* header = request.header(kTenantHeader);
  return header != nullptr ? *header : kDefaultTenant;
}

const UaLogic* ProxyServer::ua_logic_for(const std::string& tenant) const {
  const auto it = ua_logics_.find(tenant);
  return it == ua_logics_.end() ? nullptr : &it->second;
}

const IaLogic* ProxyServer::ia_logic_for(const std::string& tenant) const {
  const auto it = ia_logics_.find(tenant);
  return it == ia_logics_.end() ? nullptr : &it->second;
}

ProxyServer::~ProxyServer() {
  // Release queued work before tearing down the worker pool.
  request_shuffle_.flush_now();
  response_shuffle_.flush_now();
  workers_.shutdown();
}

void ProxyServer::fail(const net::RespondFn& done, int status,
                       std::string_view message) {
  errors_.fetch_add(1);
  done(http::HttpResponse::error_response(status, message));
}

void ProxyServer::handle(http::HttpRequest request, net::RespondFn done) {
  requests_seen_.fetch_add(1);
  // The server part only schedules; all payload access happens in the
  // enclave data-processing pool.
  workers_.submit([this, request = std::move(request),
                   done = std::move(done)]() mutable {
    if (options_.layer == ProxyOptions::Layer::kUa) {
      handle_ua(std::move(request), std::move(done));
    } else {
      handle_ia(std::move(request), std::move(done));
    }
  });
}

void ProxyServer::handle_ua(http::HttpRequest request, net::RespondFn done) {
  const UaLogic* logic = ua_logic_for(tenant_of(request));
  // PPROX-CT-OK(branch): tenant routing on the public Host/tenant header;
  // the 403 is the deliberate public answer for unknown tenants.
  if (logic == nullptr) {
    fail(done, 403, "unknown tenant application");
    return;
  }
  auto transformed = enclave_->ecall([logic, &request](ByteView) {
    return logic->transform_request(std::move(request.body));
  });
  if (!transformed.ok()) {
    fail(done, 400, transformed.error().message);
    return;
  }
  // No Content-Length rewrite here: serialize_to() recomputes it from the
  // transformed body, so the std::to_string round trip was pure overhead.
  request.body = std::move(transformed.value());

  // Shuffle outbound requests towards the IA layer.
  request_shuffle_.add([this, request = std::move(request),
                        done = std::move(done)]() mutable {
    next_->send(std::move(request), [done = std::move(done)](
                                        http::HttpResponse response) {
      // Responses pass through the UA untouched (opaque to this layer).
      done(std::move(response));
    });
  });
}

void ProxyServer::handle_ia(http::HttpRequest request, net::RespondFn done) {
  const IaLogic* logic = ia_logic_for(tenant_of(request));
  // PPROX-CT-OK(branch): tenant routing on the public Host/tenant header.
  if (logic == nullptr) {
    fail(done, 403, "unknown tenant application");
    return;
  }
  const bool is_get = request.target == paths::kQueries;
  // PPROX-CT-OK(branch): GET vs POST dispatch on the public request line.
  if (!is_get) {
    auto transformed = enclave_->ecall([this, logic, &request](ByteView) {
      return logic->transform_post_request(std::move(request.body),
                                           options_.pseudonymize_items);
    });
    if (!transformed.ok()) {
      fail(done, 400, transformed.error().message);
      return;
    }
    request.body = std::move(transformed.value());
    next_->send(std::move(request),
                [this, done = std::move(done)](http::HttpResponse response) {
                  // Post responses carry no payload worth hiding, but they
                  // are shuffled like everything else on the return path.
                  response_shuffle_.add([done = std::move(done),
                                         response = std::move(response)]() mutable {
                    done(std::move(response));
                  });
                });
    return;
  }

  // get: recover k_u inside the enclave and park it in the EPC store.
  auto transformed = enclave_->ecall([logic, &request](ByteView) {
    return logic->transform_get_request(std::move(request.body));
  });
  if (!transformed.ok()) {
    fail(done, 400, transformed.error().message);
    return;
  }
  const std::uint64_t handle = pending_.put(std::move(transformed.value().k_u));
  request.body = std::move(transformed.value().body);

  next_->send(std::move(request), [this, logic, handle, done = std::move(done)](
                                      http::HttpResponse response) mutable {
    // Process the LRS response in the enclave pool, not the transport thread.
    workers_.submit([this, logic, handle, done = std::move(done),
                     response = std::move(response)]() mutable {
      auto k_u = pending_.take(handle);
      if (!k_u.ok()) {
        fail(done, 500, "lost pending response state");
        return;
      }
      if (response.status != 200) {
        // Propagate LRS errors (still shuffled).
        response_shuffle_.add([done = std::move(done),
                               response = std::move(response)]() mutable {
          done(std::move(response));
        });
        return;
      }
      auto body = enclave_->ecall([this, logic, &response, &k_u](ByteView) {
        return logic->transform_get_response(response.body, k_u.value(),
                                             enclave_rng_,
                                             options_.authenticated_responses);
      });
      if (!body.ok()) {
        fail(done, 502, body.error().message);
        return;
      }
      http::HttpResponse out = http::HttpResponse::json_response(
          200, std::move(body.value()));
      response_shuffle_.add(
          [done = std::move(done), out = std::move(out)]() mutable {
            done(std::move(out));
          });
    });
  });
}

}  // namespace pprox
