#include "pprox/deployment.hpp"

#include <cmath>
#include <stdexcept>

#include "pprox/rotation.hpp"

namespace pprox {

Deployment::Deployment(const DeploymentConfig& config, net::RequestSink& lrs,
                       RandomSource& rng)
    : config_(config),
      authority_(rng),
      keys_(ApplicationKeys::generate(rng, config.rsa_bits)),
      client_params_(keys_.client_params()) {
  lrs_channel_ = std::make_shared<net::InProcChannel>(lrs);
  build_layers(rng);
}

void Deployment::build_layers(RandomSource& rng) {
  // Boot, attest and provision the IA layer first (UA forwards into it).
  const auto ua_measurement = enclave::Measurement::of_code(kUaCodeIdentity);
  const auto ia_measurement = enclave::Measurement::of_code(kIaCodeIdentity);

  std::vector<std::shared_ptr<net::HttpChannel>> ia_channels;
  for (int i = 0; i < config_.ia_instances; ++i) {
    auto enclave = std::make_unique<enclave::Enclave>(kIaCodeIdentity, rng);
    authority_.register_platform(*enclave);
    const Status provisioned = attest_and_provision(
        *enclave, authority_, ia_measurement, keys_.ia, rng);
    if (!provisioned.ok()) {
      throw std::runtime_error("IA provisioning failed: " +
                               provisioned.error().message);
    }
    ProxyOptions options;
    options.layer = ProxyOptions::Layer::kIa;
    options.pseudonymize_items = config_.pseudonymize_items;
    options.authenticated_responses = config_.authenticated_responses;
    options.shuffle_size = config_.shuffle_size;
    options.shuffle_timeout = config_.shuffle_timeout;
    options.worker_threads = config_.worker_threads;
    auto proxy =
        std::make_shared<ProxyServer>(options, *enclave, lrs_channel_);
    ia_channels.push_back(std::make_shared<net::InProcChannel>(
        std::weak_ptr<net::RequestSink>(proxy)));
    ia_enclaves_.push_back(std::move(enclave));
    ia_proxies_.push_back(std::move(proxy));
  }
  ia_balancer_ = std::make_shared<net::RoundRobinChannel>(std::move(ia_channels));

  std::vector<std::shared_ptr<net::HttpChannel>> ua_channels;
  for (int i = 0; i < config_.ua_instances; ++i) {
    auto enclave = std::make_unique<enclave::Enclave>(kUaCodeIdentity, rng);
    authority_.register_platform(*enclave);
    const Status provisioned = attest_and_provision(
        *enclave, authority_, ua_measurement, keys_.ua, rng);
    if (!provisioned.ok()) {
      throw std::runtime_error("UA provisioning failed: " +
                               provisioned.error().message);
    }
    ProxyOptions options;
    options.layer = ProxyOptions::Layer::kUa;
    options.shuffle_size = config_.shuffle_size;
    options.shuffle_timeout = config_.shuffle_timeout;
    options.worker_threads = config_.worker_threads;
    auto proxy =
        std::make_shared<ProxyServer>(options, *enclave, ia_balancer_);
    ua_channels.push_back(std::make_shared<net::InProcChannel>(
        std::weak_ptr<net::RequestSink>(proxy)));
    ua_enclaves_.push_back(std::move(enclave));
    ua_proxies_.push_back(std::move(proxy));
  }
  entry_ = std::make_shared<net::RoundRobinChannel>(std::move(ua_channels));
}

Status Deployment::rotate(lrs::HarnessServer& lrs, RandomSource& rng) {
  // Tear the old stack down BEFORE touching keys or the store (proxies
  // before enclaves before balancers). Destroying the proxies drains their
  // worker pools, so once teardown returns no request is pseudonymizing
  // under the retiring keys; clients created before the rotation still hold
  // the old entry channel, whose weak references expire here, so their
  // sends get 503 "backend gone" rather than reaching freed proxies.
  //
  // The pre-fix ordering rotated the store first: a request in flight on a
  // still-live old proxy could then write a retired-epoch pseudonym into
  // the freshly rotated store — exactly the stale-key row the rotation
  // exists to eliminate (pprox_check --model rotation;
  // tools/traces/rotation_stale_key.txt).
  entry_.reset();
  ua_proxies_.clear();
  ia_balancer_.reset();
  ia_proxies_.clear();
  ua_enclaves_.clear();
  ia_enclaves_.clear();

  auto rotation = rotate_keys(keys_, lrs, rng, config_.rsa_bits);
  if (!rotation.ok()) {
    // Store untouched (rotate_keys writes nothing back on failure): restore
    // service under the old keys rather than staying dark.
    build_layers(rng);
    return rotation.error();
  }
  keys_ = std::move(rotation.value().new_keys);
  client_params_ = keys_.client_params();
  build_layers(rng);
  ++key_epoch_;
  return Status::ok_status();
}

ClientLibrary Deployment::make_client(RandomSource* rng) const {
  return ClientLibrary(client_params_, entry_, rng);
}

int recommend_instance_pairs(double target_rps, double per_pair_capacity_rps,
                             double headroom) {
  if (per_pair_capacity_rps <= 0 || headroom <= 0) {
    throw std::invalid_argument("capacity and headroom must be positive");
  }
  const int pairs = static_cast<int>(
      std::ceil(target_rps / (per_pair_capacity_rps * headroom)));
  return pairs < 1 ? 1 : pairs;
}

}  // namespace pprox
