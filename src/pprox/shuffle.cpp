// PPROX-LAYER: shared
#include "pprox/shuffle.hpp"

namespace pprox {

ShuffleQueue::ShuffleQueue(int size, std::chrono::milliseconds timeout)
    : size_(size), timeout_(timeout) {
  if (size_ > 1) {
    // A batch can never exceed S actions: reserving here makes the
    // steady-state push_back in add() allocation-free.
    buffer_.reserve(static_cast<std::size_t>(size_));
    timer_ = DetThread([this] { timer_loop(); }, "shuffle-timer");
  }
}

ShuffleQueue::~ShuffleQueue() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
    cv_.notify_all();
  }
  if (timer_.joinable()) timer_.join();
  flush_now();  // do not strand queued work
}

void ShuffleQueue::add(std::function<void()> release) {
  if (size_ <= 1) {
    release();
    return;
  }
  std::vector<std::function<void()>> batch;
  FlushInfo info{FlushReason::kSize, 0, {}, {}};
  {
    LockGuard lock(mutex_);
    buffer_.push_back(std::move(release));
    if (static_cast<int>(buffer_.size()) >= size_) {
      batch.swap(buffer_);
      deadline_armed_ = false;
      ++arm_generation_;
      info = FlushInfo{FlushReason::kSize, batch.size(), deadline_,
                       SteadyClock::now()};
    } else if (buffer_.size() == 1) {
      deadline_ = SteadyClock::now() + timeout_;
      deadline_armed_ = true;
      ++arm_generation_;
      cv_.notify_all();
    }
  }
  if (!batch.empty()) run_batch(std::move(batch), info);
}

void ShuffleQueue::flush_now() {
  std::vector<std::function<void()>> batch;
  FlushInfo info{FlushReason::kExplicit, 0, {}, {}};
  {
    LockGuard lock(mutex_);
    batch.swap(buffer_);
    deadline_armed_ = false;
    ++arm_generation_;
    info = FlushInfo{FlushReason::kExplicit, batch.size(), deadline_,
                     SteadyClock::now()};
  }
  if (!batch.empty()) run_batch(std::move(batch), info);
}

std::size_t ShuffleQueue::buffered() const {
  LockGuard lock(mutex_);
  return buffer_.size();
}

void ShuffleQueue::run_batch(std::vector<std::function<void()>> batch,
                             const FlushInfo& info) {
  if (observer_) observer_(info);
  shuffle(batch, rng_);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  for (auto& action : batch) action();
}

#ifdef PPROX_CHECK_SELFTEST
// Fault injection for pprox_check --model shuffle (tools/CMakeLists.txt):
// the pre-fix timer loop, preserved verbatim. wait_until() snapshots
// deadline_ once, so when a size-triggered flush disarms and a later add()
// re-arms while the timer is parked, the timer still times out at the OLD
// (earlier) deadline and flushes the successor batch before its delay bound
// (tools/traces/shuffle_stale_deadline.txt). The selftest build must make
// the model FAIL on exactly this schedule.
void ShuffleQueue::timer_loop() {
  UniqueLock lock(mutex_);
  while (!stopping_) {
    if (!deadline_armed_) {
      cv_.wait(lock, [this] { return stopping_ || deadline_armed_; });
      continue;
    }
    if (cv_.wait_until(lock, deadline_, [this] {
          return stopping_ || !deadline_armed_;
        })) {
      continue;  // re-armed, flushed by size, or stopping
    }
    // Deadline reached with the buffer still pending: flush it.
    std::vector<std::function<void()>> batch;
    batch.swap(buffer_);
    deadline_armed_ = false;
    ++arm_generation_;
    const FlushInfo info{FlushReason::kTimer, batch.size(), deadline_,
                         SteadyClock::now()};
    {
      ScopedUnlock unlocked(lock);
      if (!batch.empty()) run_batch(std::move(batch), info);
    }
  }
}
#else
void ShuffleQueue::timer_loop() {
  UniqueLock lock(mutex_);
  while (!stopping_) {
    if (!deadline_armed_) {
      cv_.wait(lock, [this] { return stopping_ || deadline_armed_; });
      continue;
    }
    // A timeout may only flush the arming it waited on. The generation
    // stamp distinguishes "this arming's deadline passed" from "the arming
    // changed underneath the wait": without it, a size-flush + re-arm while
    // the timer is parked leaves the wait bound to the retired (earlier)
    // deadline, and the successor batch gets flushed before its delay bound
    // (tools/traces/shuffle_stale_deadline.txt).
    const std::uint64_t gen = arm_generation_;
    const auto deadline = deadline_;
    const bool changed = cv_.wait_until(lock, deadline, [this, gen] {
      return stopping_ || !deadline_armed_ || arm_generation_ != gen;
    });
    if (changed || stopping_ || !deadline_armed_ || arm_generation_ != gen) {
      continue;  // re-armed, flushed by size, or stopping
    }
    // This arming's deadline passed with its buffer still pending: flush.
    std::vector<std::function<void()>> batch;
    batch.swap(buffer_);
    deadline_armed_ = false;
    ++arm_generation_;
    const FlushInfo info{FlushReason::kTimer, batch.size(), deadline,
                         SteadyClock::now()};
    {
      ScopedUnlock unlocked(lock);
      if (!batch.empty()) run_batch(std::move(batch), info);
    }
  }
}
#endif  // PPROX_CHECK_SELFTEST

}  // namespace pprox
