// PPROX-LAYER: shared
#include "pprox/shuffle.hpp"

namespace pprox {

ShuffleQueue::ShuffleQueue(int size, std::chrono::milliseconds timeout)
    : size_(size), timeout_(timeout) {
  if (size_ > 1) {
    timer_ = std::thread([this] { timer_loop(); });
  }
}

ShuffleQueue::~ShuffleQueue() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    cv_.notify_all();
  }
  if (timer_.joinable()) timer_.join();
  flush_now();  // do not strand queued work
}

void ShuffleQueue::add(std::function<void()> release) {
  if (size_ <= 1) {
    release();
    return;
  }
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard lock(mutex_);
    buffer_.push_back(std::move(release));
    if (static_cast<int>(buffer_.size()) >= size_) {
      batch.swap(buffer_);
      deadline_armed_ = false;
    } else if (buffer_.size() == 1) {
      deadline_ = std::chrono::steady_clock::now() + timeout_;
      deadline_armed_ = true;
      cv_.notify_all();
    }
  }
  if (!batch.empty()) run_batch(std::move(batch));
}

void ShuffleQueue::flush_now() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard lock(mutex_);
    batch.swap(buffer_);
    deadline_armed_ = false;
  }
  if (!batch.empty()) run_batch(std::move(batch));
}

std::size_t ShuffleQueue::buffered() const {
  std::lock_guard lock(mutex_);
  return buffer_.size();
}

void ShuffleQueue::run_batch(std::vector<std::function<void()>> batch) {
  shuffle(batch, rng_);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  for (auto& action : batch) action();
}

void ShuffleQueue::timer_loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    if (!deadline_armed_) {
      cv_.wait(lock, [this] { return stopping_ || deadline_armed_; });
      continue;
    }
    if (cv_.wait_until(lock, deadline_, [this] {
          return stopping_ || !deadline_armed_;
        })) {
      continue;  // re-armed, flushed by size, or stopping
    }
    // Deadline reached with the buffer still pending: flush it.
    std::vector<std::function<void()>> batch;
    batch.swap(buffer_);
    deadline_armed_ = false;
    lock.unlock();
    if (!batch.empty()) run_batch(std::move(batch));
    lock.lock();
  }
}

}  // namespace pprox
