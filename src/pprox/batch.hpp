// PPROX-LAYER: shared
//
// Reusable scratch memory for batched enclave transitions (ROADMAP item 3).
// A BatchArena is a bump allocator over one pre-reserved region: the batch
// entry points (UaLogic::transform_batch, IaLogic::transform_batch,
// IaLogic::seal_batch) stage identifier blocks and keystreams in it instead
// of allocating per message, and the host wipes the whole high-water region
// after every batch (wipe_and_reset) so no identifier plaintext outlives
// the ecall that produced it.
//
// Views returned by alloc() stay valid until wipe_and_reset(): an overflow
// allocation (batch larger than the reservation) comes from a fresh chunk
// rather than growing the main region, so earlier views are never
// invalidated mid-batch.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.hpp"
#include "common/hotpath.hpp"

namespace pprox {

class BatchArena {
 public:
  /// Reserves `capacity` bytes up front; alloc() beyond it falls back to
  /// overflow chunks (cold path).
  explicit BatchArena(std::size_t capacity);

  BatchArena(const BatchArena&) = delete;
  BatchArena& operator=(const BatchArena&) = delete;
  ~BatchArena();

  /// Returns a zero-initialized view of `n` bytes, valid until the next
  /// wipe_and_reset().
  PPROX_HOT MutByteView alloc(std::size_t n);

  /// Zeroizes every byte handed out since the last reset and makes the full
  /// reservation available again. Call after the batch's results have been
  /// copied out — message plaintext must not survive the transition.
  void wipe_and_reset();

  std::size_t capacity() const { return storage_.size(); }
  std::size_t used() const { return used_; }

 private:
  Bytes storage_;
  std::size_t used_ = 0;
  std::vector<Bytes> overflow_;
};

}  // namespace pprox
