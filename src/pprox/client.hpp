// PPROX-LAYER: client
//
// User-side library (paper §2.1 ➄, §4.2): intercepts the application's REST
// calls, encrypts identifiers for the two proxy layers, generates the
// per-request temporary key k_u for get calls, and transparently decrypts
// and unpads the returned recommendations. Holds no per-user state beyond
// the globally-known public parameters — the "thin static code" requirement.
//
// The client is the one place both taint domains legitimately coexist in
// the clear (the user owns their identity and their feedback). Identifiers
// are wrapped into Sensitive<_, Domain> at the API boundary and only leave
// through encryption declassifiers, so a refactor cannot accidentally put
// an id on the wire unencrypted.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/rand.hpp"
#include "common/result.hpp"
#include "net/channel.hpp"
#include "pprox/keys.hpp"
#include "pprox/message.hpp"

namespace pprox {

class ClientLibrary {
 public:
  /// `channel` reaches the UA layer (through any load balancer); `rng`
  /// must be cryptographically strong in production (defaults to the
  /// process DRBG).
  ClientLibrary(ClientParams params, std::shared_ptr<net::HttpChannel> channel,
                RandomSource* rng = nullptr, std::string tenant_id = "");

  /// post(u, i[, p]): inserts feedback with an optional payload (e.g. a
  /// rating), required by some recommendation algorithms (paper §2.1).
  /// The payload is encrypted for the IA layer and forwarded to the LRS in
  /// usable form. Completion carries the HTTP status.
  void post(const std::string& user, const std::string& item,
            std::function<void(Status)> done);
  void post(const std::string& user, const std::string& item,
            const std::string& payload, std::function<void(Status)> done);

  /// get(u): collects recommendations (plaintext item ids, padding removed).
  void get(const std::string& user,
           std::function<void(Result<std::vector<std::string>>)> done);

  /// Blocking conveniences for tests and examples.
  Status post_sync(const std::string& user, const std::string& item,
                   const std::string& payload = "");
  Result<std::vector<std::string>> get_sync(const std::string& user);

  /// Builds the encrypted post request (exposed for tests/attack harness).
  Result<http::HttpRequest> build_post_request(const std::string& user,
                                               const std::string& item,
                                               const std::string& payload = "");

  struct GetCall {
    http::HttpRequest request;
    Bytes k_u;  ///< temporary key; needed to decrypt the response
  };
  Result<GetCall> build_get_request(const std::string& user);

  /// Decrypts and unpads a get response given the call's k_u.
  static Result<std::vector<std::string>> decode_get_response(
      const http::HttpResponse& response, ByteView k_u);

 private:
  /// Pads and RSA-OAEP-encrypts a domain-typed identifier for the layer
  /// holding `pk`. The id's cleartext exits its domain only into the OAEP
  /// ciphertext (declassify_for_encryption inside).
  template <typename Domain>
  Result<std::string> encrypt_sensitive_for(
      const crypto::RsaPublicKey& pk,
      const taint::Sensitive<std::string, Domain>& id) {
    auto block = pad_sensitive_id(id);
    if (!block.ok()) return block.error();
    // PPROX-DECLASSIFY: randomized RSA-OAEP under the layer public key —
    // only the target layer's enclave can recover the block.
    return encrypt_block_for(pk,
                             taint::declassify_for_encryption(block.value()));
  }
  Result<std::string> encrypt_block_for(const crypto::RsaPublicKey& pk,
                                        ByteView block);

  ClientParams params_;
  std::shared_ptr<net::HttpChannel> channel_;
  RandomSource* rng_;
  std::string tenant_id_;  ///< multi-tenant deployments: X-PProx-App value
};

}  // namespace pprox
