// User-side library (paper §2.1 ➄, §4.2): intercepts the application's REST
// calls, encrypts identifiers for the two proxy layers, generates the
// per-request temporary key k_u for get calls, and transparently decrypts
// and unpads the returned recommendations. Holds no per-user state beyond
// the globally-known public parameters — the "thin static code" requirement.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/rand.hpp"
#include "common/result.hpp"
#include "net/channel.hpp"
#include "pprox/keys.hpp"
#include "pprox/message.hpp"

namespace pprox {

class ClientLibrary {
 public:
  /// `channel` reaches the UA layer (through any load balancer); `rng`
  /// must be cryptographically strong in production (defaults to the
  /// process DRBG).
  ClientLibrary(ClientParams params, std::shared_ptr<net::HttpChannel> channel,
                RandomSource* rng = nullptr, std::string tenant_id = "");

  /// post(u, i[, p]): inserts feedback with an optional payload (e.g. a
  /// rating), required by some recommendation algorithms (paper §2.1).
  /// The payload is encrypted for the IA layer and forwarded to the LRS in
  /// usable form. Completion carries the HTTP status.
  void post(const std::string& user, const std::string& item,
            std::function<void(Status)> done);
  void post(const std::string& user, const std::string& item,
            const std::string& payload, std::function<void(Status)> done);

  /// get(u): collects recommendations (plaintext item ids, padding removed).
  void get(const std::string& user,
           std::function<void(Result<std::vector<std::string>>)> done);

  /// Blocking conveniences for tests and examples.
  Status post_sync(const std::string& user, const std::string& item,
                   const std::string& payload = "");
  Result<std::vector<std::string>> get_sync(const std::string& user);

  /// Builds the encrypted post request (exposed for tests/attack harness).
  Result<http::HttpRequest> build_post_request(const std::string& user,
                                               const std::string& item,
                                               const std::string& payload = "");

  struct GetCall {
    http::HttpRequest request;
    Bytes k_u;  ///< temporary key; needed to decrypt the response
  };
  Result<GetCall> build_get_request(const std::string& user);

  /// Decrypts and unpads a get response given the call's k_u.
  static Result<std::vector<std::string>> decode_get_response(
      const http::HttpResponse& response, ByteView k_u);

 private:
  Result<std::string> encrypt_id_for(const crypto::RsaPublicKey& pk,
                                     const std::string& id);

  ClientParams params_;
  std::shared_ptr<net::HttpChannel> channel_;
  RandomSource* rng_;
  std::string tenant_id_;  ///< multi-tenant deployments: X-PProx-App value
};

}  // namespace pprox
