// PPROX-LAYER: ua
//
// User-Anonymizer enclave code (paper §4.2). The UA sees the user identity
// in the clear — and nothing else: item identifiers reach it only as
// pkIA-encrypted blobs, and responses are opaque k_u-ciphertexts. This
// translation unit must therefore never reference an item-plaintext API;
// `pprox_lint --flow` fails the build if it does.
//
//  post/get request:  enc(u,pkUA) -> det_enc(u,kUA)
//  responses:         pass through untouched (they are opaque to UA).
#pragma once

#include <string>

#include "common/hotpath.hpp"
#include "common/result.hpp"
#include "crypto/ctr.hpp"
#include "pprox/keys.hpp"
#include "pprox/message.hpp"

namespace pprox {

/// User-Anonymizer enclave code.
class UaLogic {
 public:
  /// Deserializes the provisioned secrets blob (called inside an ecall).
  static Result<UaLogic> from_secrets(ByteView secrets_blob);

  /// Pseudonymizes the "user" field of a post or get body.
  /// PPROX_ECALL_BOUNDARY: runs inside an ecall — per-request allocation
  /// here is an enclave-boundary violation (ROADMAP item 3); today's JSON/
  /// base64 round trips are ratcheted in tools/hotpath_baseline.json.
  PPROX_ECALL_BOUNDARY Result<std::string> transform_request(
      std::string body) const;

  /// Responses traverse the UA unchanged (encrypted under k_u or opaque).
  std::string transform_response(std::string body) const { return body; }

  /// Pseudonym of a cleartext user id, as the LRS will store it. The only
  /// UA entry point that accepts user plaintext — and it demands the typed
  /// wrapper, so an ItemId cannot be passed by accident (compile error).
  Result<PseudonymizedId> pseudonym_of(const UserId& user) const;

 private:
  explicit UaLogic(LayerSecrets secrets);
  LayerSecrets secrets_;
  crypto::DeterministicCipher det_;
};

}  // namespace pprox
