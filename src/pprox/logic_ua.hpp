// PPROX-LAYER: ua
//
// User-Anonymizer enclave code (paper §4.2). The UA sees the user identity
// in the clear — and nothing else: item identifiers reach it only as
// pkIA-encrypted blobs, and responses are opaque k_u-ciphertexts. This
// translation unit must therefore never reference an item-plaintext API;
// `pprox_lint --flow` fails the build if it does.
//
//  post/get request:  enc(u,pkUA) -> det_enc(u,kUA)
//  responses:         pass through untouched (they are opaque to UA).
#pragma once

#include <span>
#include <string>

#include "common/hotpath.hpp"
#include "common/result.hpp"
#include "crypto/ctr.hpp"
#include "pprox/batch.hpp"
#include "pprox/keys.hpp"
#include "pprox/message.hpp"

namespace pprox {

class UaLogic;

/// One pending request inside a batched UA ecall. The host fills `logic`
/// (the request's tenant) and `body`; the enclave rewrites `body` in place
/// and reports per-slot success in `status`. `staged` is enclave-internal
/// arena scratch — hosts must not touch it.
struct UaBatchSlot {
  const UaLogic* logic = nullptr;
  std::string* body = nullptr;
  Status status;
  MutByteView staged{};
};

/// User-Anonymizer enclave code.
class UaLogic {
 public:
  /// Deserializes the provisioned secrets blob (called inside an ecall).
  static Result<UaLogic> from_secrets(ByteView secrets_blob);

  /// Pseudonymizes the "user" field of a post or get body.
  /// PPROX_ECALL_BOUNDARY: runs inside an ecall — per-request allocation
  /// here is an enclave-boundary violation (ROADMAP item 3); today's JSON/
  /// base64 round trips are ratcheted in tools/hotpath_baseline.json.
  PPROX_ECALL_BOUNDARY Result<std::string> transform_request(
      std::string body) const;

  /// Batched form of transform_request: pseudonymizes every slot's "user"
  /// field inside ONE ecall. Identifier blocks are staged in `arena` and the
  /// zero-IV CTR keystream is computed once per distinct tenant logic, then
  /// XORed across all of that tenant's blocks — bit-for-bit identical to S
  /// sequential transform_request calls (the keystream is message-
  /// independent). Per-slot failures land in slot.status; other slots still
  /// complete. The caller owns wiping `arena` after results are copied out.
  PPROX_ECALL_BOUNDARY static void transform_batch(
      std::span<UaBatchSlot> slots, BatchArena& arena);

  /// Responses traverse the UA unchanged (encrypted under k_u or opaque).
  std::string transform_response(std::string body) const { return body; }

  /// Pseudonym of a cleartext user id, as the LRS will store it. The only
  /// UA entry point that accepts user plaintext — and it demands the typed
  /// wrapper, so an ItemId cannot be passed by accident (compile error).
  Result<PseudonymizedId> pseudonym_of(const UserId& user) const;

 private:
  explicit UaLogic(LayerSecrets secrets);
  LayerSecrets secrets_;
  crypto::DeterministicCipher det_;
};

}  // namespace pprox
