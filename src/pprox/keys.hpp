// Key material and provisioning for the two proxy layers (paper §4.1).
//
// Each layer owns: a public/private pair (pkUA/skUA, pkIA/skIA) for
// client->layer confidentiality, and a permanent symmetric key (kUA, kIA)
// for deterministic pseudonymization. The RaaS *client application* (not the
// provider!) generates these and provisions every enclave of a layer after
// attesting it.
#pragma once

#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/rsa.hpp"
#include "enclave/attestation.hpp"
#include "enclave/enclave.hpp"

namespace pprox {

/// Secrets provisioned into every enclave of one layer.
struct LayerSecrets {
  crypto::RsaPrivateKey sk;  ///< private half of the layer key pair
  Bytes k;                   ///< 32-byte permanent symmetric key (det. enc.)

  /// Length-prefixed binary encoding (the provisioning payload).
  Bytes serialize() const;
  static Result<LayerSecrets> deserialize(ByteView blob);
};

/// Public parameters shipped to user-side libraries (static web code).
struct ClientParams {
  crypto::RsaPublicKey pk_ua;
  crypto::RsaPublicKey pk_ia;
};

/// Everything the RaaS client application holds for one application.
struct ApplicationKeys {
  LayerSecrets ua;
  LayerSecrets ia;
  ClientParams client_params() const;

  /// Generates fresh UA and IA layer keys. `rsa_bits` sizes the layer key
  /// pairs (tests use 1024; production would use >= 2048).
  static ApplicationKeys generate(RandomSource& rng, std::size_t rsa_bits = 1024);
};

/// Expected enclave code identities for the two layers.
inline constexpr const char* kUaCodeIdentity = "pprox-ua-enclave-v1";
inline constexpr const char* kIaCodeIdentity = "pprox-ia-enclave-v1";

/// The full attest-then-provision handshake (paper §2.2, §5):
/// challenge the enclave, verify the quote binds the expected measurement
/// and the enclave's channel key, then provision the layer secrets encrypted
/// under that key. Refuses to provision on any verification failure.
Status attest_and_provision(enclave::Enclave& enclave,
                            const enclave::AttestationService& authority,
                            const enclave::Measurement& expected,
                            const LayerSecrets& secrets, RandomSource& rng);

}  // namespace pprox
