// PPROX-LAYER: shared
#include "pprox/tenancy.hpp"

namespace pprox {
namespace {

constexpr std::uint8_t kMagic[4] = {'P', 'P', 'X', 'T'};

void put_u16(Bytes& out, std::size_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

// Keyring framing (magic, counts, length prefixes) is public format
// structure, not key material — same argument as keys.cpp's get_field.
bool get_u16(ByteView blob, std::size_t& offset, std::size_t& v) {
  if (offset + 2 > blob.size()) return false;  // PPROX-CT-OK(branch): framing
  // PPROX-CT-OK(index): framing
  v = (static_cast<std::size_t>(blob[offset]) << 8) | blob[offset + 1];
  offset += 2;
  return true;
}

}  // namespace

bool TenantKeyring::looks_like_keyring(ByteView blob) {
  return blob.size() >= 4 && blob[0] == kMagic[0] && blob[1] == kMagic[1] &&
         blob[2] == kMagic[2] && blob[3] == kMagic[3];
}

Bytes TenantKeyring::serialize() const {
  Bytes out(kMagic, kMagic + 4);
  put_u16(out, tenants.size());
  for (const auto& [id, secrets] : tenants) {
    put_u16(out, id.size());
    append(out, to_bytes(id));
    const Bytes blob = secrets.serialize();
    put_u16(out, blob.size());
    append(out, blob);
  }
  return out;
}

Result<TenantKeyring> TenantKeyring::deserialize(ByteView blob) {
  // PPROX-CT-OK(branch): magic-byte check — fixed public format bytes.
  if (!looks_like_keyring(blob)) {
    return Error::parse("keyring: bad magic");
  }
  std::size_t offset = 4;
  std::size_t count = 0;
  // PPROX-CT-OK(branch): tenant count is public deployment structure.
  if (!get_u16(blob, offset, count)) return Error::parse("keyring: truncated");

  TenantKeyring keyring;
  // PPROX-CT-OK(branch): loop over the public tenant count.
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t id_len = 0;
    // PPROX-CT-OK(branch): length-prefix framing; tenant ids are public.
    if (!get_u16(blob, offset, id_len) || offset + id_len > blob.size()) {
      return Error::parse("keyring: truncated tenant id");
    }
    const std::string id = to_string(blob.subspan(offset, id_len));
    offset += id_len;
    std::size_t secret_len = 0;
    // PPROX-CT-OK(branch): length-prefix framing (key sizes, not key bits).
    if (!get_u16(blob, offset, secret_len) || offset + secret_len > blob.size()) {
      return Error::parse("keyring: truncated secrets");
    }
    auto secrets = LayerSecrets::deserialize(blob.subspan(offset, secret_len));
    if (!secrets.ok()) return secrets.error();
    offset += secret_len;
    keyring.tenants.emplace(id, std::move(secrets.value()));
  }
  // PPROX-CT-OK(branch): end-of-blob framing check.
  if (offset != blob.size()) return Error::parse("keyring: trailing bytes");
  return keyring;
}

TenantRegistry::TenantRegistry(TenantKeyring keyring)
    : keyring_(std::move(keyring)) {}

void TenantRegistry::upsert(const std::string& tenant_id, LayerSecrets secrets) {
  LockGuard lock(mutex_);
  keyring_.tenants.insert_or_assign(tenant_id, std::move(secrets));
}

bool TenantRegistry::remove(const std::string& tenant_id) {
  LockGuard lock(mutex_);
  return keyring_.tenants.erase(tenant_id) > 0;
}

bool TenantRegistry::contains(const std::string& tenant_id) const {
  LockGuard lock(mutex_);
  return keyring_.tenants.count(tenant_id) > 0;
}

std::size_t TenantRegistry::size() const {
  LockGuard lock(mutex_);
  return keyring_.tenants.size();
}

std::vector<std::string> TenantRegistry::tenant_ids() const {
  LockGuard lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(keyring_.tenants.size());
  for (const auto& [id, secrets] : keyring_.tenants) ids.push_back(id);
  return ids;
}

TenantKeyring TenantRegistry::snapshot() const {
  LockGuard lock(mutex_);
  return keyring_;
}

}  // namespace pprox
