// PPROX-LAYER: shared
//
// The proxy service instance (paper §5): an untrusted server part (request
// scheduling, shuffling, routing — here hosted on any RequestSink transport)
// driving in-enclave data processing through ecalls into the hosted TEE.
// One ProxyServer is one UA or IA instance; horizontal scaling runs several
// behind a RoundRobinChannel.
//
// This TU is the *host*: it schedules and routes but never touches
// identifier plaintext — every transform it invokes is ciphertext-in/
// ciphertext-out on the enclave logic. The flow lint (`pprox_lint --flow`)
// holds it to that: shared TUs may reference neither taint domain nor any
// declassifier.
#pragma once

#include <chrono>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/hotpath.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "concurrent/thread_pool.hpp"
#include "crypto/drbg.hpp"
#include "enclave/enclave.hpp"
#include "net/channel.hpp"
#include "pprox/batch.hpp"
#include "pprox/logic.hpp"
#include "pprox/shuffle.hpp"
#include "pprox/tenancy.hpp"

namespace pprox {

/// In-EPC store for per-request state awaiting the LRS response (paper §5:
/// "an in-memory key-value store in the EPC holds the information necessary
/// for handling request responses"). Holds k_u for in-flight get calls.
class PendingStore {
 public:
  PPROX_HOT std::uint64_t put(Bytes k_u) PPROX_EXCLUDES(mutex_);
  /// Fetches and removes; empty result when the handle is unknown.
  PPROX_HOT Result<Bytes> take(std::uint64_t handle) PPROX_EXCLUDES(mutex_);
  std::size_t size() const PPROX_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::unordered_map<std::uint64_t, Bytes> pending_ PPROX_GUARDED_BY(mutex_);
  std::uint64_t next_ PPROX_GUARDED_BY(mutex_) = 1;
};

struct ProxyOptions {
  enum class Layer { kUa, kIa };
  Layer layer = Layer::kUa;
  bool pseudonymize_items = true;  ///< §6.3 opt-out when false (IA only)
  bool authenticated_responses = false;  ///< AES-GCM for get responses (IA)
  int shuffle_size = 0;            ///< S; <=1 disables shuffling
  std::chrono::milliseconds shuffle_timeout{500};
  std::size_t worker_threads = 2;  ///< enclave data-processing pool (2-core NUC)
};

/// One proxy instance. The enclave must be attested and provisioned before
/// construction (the ctor performs the initial ecall that deserializes the
/// layer secrets into enclave-resident logic state). The provisioning blob
/// may be a single application's LayerSecrets or a multi-tenant
/// TenantKeyring (paper §6.3): with a keyring, requests select their tenant
/// via the X-PProx-App header and all tenants share the shuffle buffers.
class ProxyServer final : public net::RequestSink {
 public:
  ProxyServer(ProxyOptions options, enclave::Enclave& enclave,
              std::shared_ptr<net::HttpChannel> next);
  ~ProxyServer() override;

  PPROX_HOT void handle(http::HttpRequest request, net::RespondFn done) override;

  /// Counters for tests/benches.
  std::uint64_t requests_seen() const { return requests_seen_.load(); }
  std::uint64_t errors() const { return errors_.load(); }
  std::size_t tenant_count() const {
    return options_.layer == ProxyOptions::Layer::kUa ? ua_logics_.size()
                                                      : ia_logics_.size();
  }
  const enclave::Enclave& hosted_enclave() const { return *enclave_; }
  std::size_t pending_responses() const { return pending_.size(); }

 private:
  /// One buffered inbound request awaiting its batched enclave transform.
  /// The body is still the client's ciphertext — the transform happens at
  /// release time, inside the per-flush ecall.
  struct PendingRequest {
    http::HttpRequest request;
    net::RespondFn done;
    const UaLogic* ua_logic = nullptr;
    const IaLogic* ia_logic = nullptr;
    bool is_get = false;
  };

  /// One buffered outbound response (IA). `logic == nullptr` marks a
  /// passthrough (post response or LRS error); otherwise the LRS body is
  /// sealed under `k_u` at release time, inside the per-flush ecall.
  struct PendingResponse {
    http::HttpResponse response;
    net::RespondFn done;
    const IaLogic* logic = nullptr;
    Bytes k_u;
  };

  /// Reusable per-flush scratch: the arena the batch entry points stage
  /// identifier blocks in, plus the slot vectors that describe the batch to
  /// the enclave. Pooled so the steady-state flush cycle allocates nothing.
  struct BatchScratch {
    BatchScratch(std::size_t arena_bytes, std::size_t slots)
        : arena(arena_bytes) {
      ua_slots.reserve(slots);
      ia_slots.reserve(slots);
      seal_slots.reserve(slots);
    }
    BatchArena arena;
    std::vector<UaBatchSlot> ua_slots;
    std::vector<IaRequestSlot> ia_slots;
    std::vector<IaSealSlot> seal_slots;
  };

  PPROX_HOT void handle_ua(http::HttpRequest request, net::RespondFn done);
  PPROX_HOT void handle_ia(http::HttpRequest request, net::RespondFn done);
  /// Batch sinks: ONE ecall per released batch (ROADMAP item 3).
  PPROX_HOT void release_request_batch(std::span<PendingRequest> batch);
  PPROX_HOT void release_response_batch(std::span<PendingResponse> batch);
  PPROX_HOT std::unique_ptr<BatchScratch> acquire_scratch()
      PPROX_EXCLUDES(scratch_mutex_);
  PPROX_HOT void recycle_scratch(std::unique_ptr<BatchScratch> scratch)
      PPROX_EXCLUDES(scratch_mutex_);
  void fail(const net::RespondFn& done, int status, std::string_view message);
  /// Tenant id named by the request header (kDefaultTenant when absent).
  static std::string tenant_of(const http::HttpRequest& request);
  const UaLogic* ua_logic_for(const std::string& tenant) const;
  const IaLogic* ia_logic_for(const std::string& tenant) const;

  ProxyOptions options_;
  enclave::Enclave* enclave_;
  std::shared_ptr<net::HttpChannel> next_;

  // Enclave-resident state (created inside the provisioning ecall; modelled
  // as living in EPC memory — never readable by the host). One logic
  // instance per tenant; single-application deployments use kDefaultTenant.
  std::map<std::string, UaLogic> ua_logics_;
  std::map<std::string, IaLogic> ia_logics_;
  PendingStore pending_;
  crypto::Drbg enclave_rng_;

  // Scratch pool (declared before the pool/queues so it outlives every
  // in-flight flush during destruction).
  Mutex scratch_mutex_;
  std::vector<std::unique_ptr<BatchScratch>> scratch_pool_
      PPROX_GUARDED_BY(scratch_mutex_);

  concurrent::ThreadPool workers_;
  ShuffleQueue<PendingRequest> request_shuffle_;    ///< outbound requests
  ShuffleQueue<PendingResponse> response_shuffle_;  ///< IA: outbound responses

  Atomic<std::uint64_t> requests_seen_{0};
  Atomic<std::uint64_t> errors_{0};
};

}  // namespace pprox
