#include "pprox/logic.hpp"

#include "common/encoding.hpp"
#include "crypto/gcm.hpp"
#include "json/json.hpp"

namespace pprox {

Result<std::string> pseudonymize_field(const crypto::RsaPrivateKey& sk,
                                       const crypto::DeterministicCipher& det,
                                       std::string_view base64_cipher) {
  const auto cipher = base64_decode(base64_cipher);
  if (!cipher) return Error::parse("field is not valid base64");
  auto block = crypto::rsa_decrypt_oaep(sk, *cipher);
  if (!block.ok()) return block.error();
  if (block.value().size() != kIdBlockSize) {
    return Error::crypto("decrypted identifier block has wrong size");
  }
  // Deterministic pseudonym over the *padded block*: constant size, and the
  // LRS sees equal pseudonyms for equal identifiers.
  return base64_encode(det.encrypt(block.value()));
}

// ---------------------------------------------------------------------------
// UA layer
// ---------------------------------------------------------------------------

UaLogic::UaLogic(LayerSecrets secrets)
    : secrets_(std::move(secrets)), det_(secrets_.k) {}

Result<UaLogic> UaLogic::from_secrets(ByteView secrets_blob) {
  auto secrets = LayerSecrets::deserialize(secrets_blob);
  if (!secrets.ok()) return secrets.error();
  return UaLogic(std::move(secrets.value()));
}

Result<std::string> UaLogic::transform_request(std::string body) const {
  const auto user_cipher = json::get_string_field(body, fields::kUser);
  if (!user_cipher) return Error::parse("request has no user field");
  auto pseudonym = pseudonymize_field(secrets_.sk, det_, *user_cipher);
  if (!pseudonym.ok()) return pseudonym.error();
  json::replace_string_field(body, fields::kUser, pseudonym.value());
  return body;
}

// ---------------------------------------------------------------------------
// IA layer
// ---------------------------------------------------------------------------

IaLogic::IaLogic(LayerSecrets secrets)
    : secrets_(std::move(secrets)), det_(secrets_.k) {}

Result<IaLogic> IaLogic::from_secrets(ByteView secrets_blob) {
  auto secrets = LayerSecrets::deserialize(secrets_blob);
  if (!secrets.ok()) return secrets.error();
  return IaLogic(std::move(secrets.value()));
}

Result<Bytes> IaLogic::decrypt_field(std::string_view base64_cipher) const {
  const auto cipher = base64_decode(base64_cipher);
  if (!cipher) return Error::parse("field is not valid base64");
  return crypto::rsa_decrypt_oaep(secrets_.sk, *cipher);
}

Result<std::string> IaLogic::transform_post_request(std::string body,
                                                    bool pseudonymize_items) const {
  const auto item_cipher = json::get_string_field(body, fields::kItem);
  if (!item_cipher) return Error::parse("post has no item field");
  if (pseudonymize_items) {
    auto pseudonym = pseudonymize_field(secrets_.sk, det_, *item_cipher);
    if (!pseudonym.ok()) return pseudonym.error();
    json::replace_string_field(body, fields::kItem, pseudonym.value());
  } else {
    // §6.3 opt-out: forward the item in the clear for semantics-aware LRS.
    auto block = decrypt_field(*item_cipher);
    if (!block.ok()) return block.error();
    auto id = unpad_identifier(block.value());
    if (!id.ok()) return id.error();
    json::replace_string_field(body, fields::kItem, id.value());
  }
  // Optional payload (rating, weight, ...): decrypt and forward in usable
  // form — the LRS needs the actual value, and it carries no identifier.
  if (const auto payload_cipher =
          json::get_string_field(body, fields::kPayload)) {
    auto block = decrypt_field(*payload_cipher);
    if (!block.ok()) return block.error();
    auto payload = unpad_identifier(block.value());
    if (!payload.ok()) return payload.error();
    json::replace_string_field(body, fields::kPayload,
                               json::escape(payload.value()));
  }
  return body;
}

Result<IaLogic::GetRequest> IaLogic::transform_get_request(std::string body) const {
  const auto key_cipher = json::get_string_field(body, fields::kTempKey);
  if (!key_cipher) return Error::parse("get has no temporary key field");
  auto k_u = decrypt_field(*key_cipher);
  if (!k_u.ok()) return k_u.error();
  if (k_u.value().size() != 32) {
    return Error::crypto("temporary key has wrong length");
  }
  // Strip the key from the forwarded call: the LRS never sees k_u, and all
  // forwarded get calls look identical in shape.
  json::replace_string_field(body, fields::kTempKey, "");
  return GetRequest{std::move(body), std::move(k_u.value())};
}

Result<std::string> IaLogic::de_pseudonymize_item(
    std::string_view base64_cipher) const {
  const auto cipher = base64_decode(base64_cipher);
  if (!cipher) return Error::parse("pseudonym is not valid base64");
  if (cipher->size() != kIdBlockSize) {
    return Error::parse("pseudonym block has wrong size");
  }
  return unpad_identifier(det_.decrypt(*cipher));
}

Result<std::string> IaLogic::transform_get_response(const std::string& lrs_body,
                                                    ByteView k_u,
                                                    RandomSource& rng,
                                                    bool authenticated) const {
  const auto doc = json::parse(lrs_body);
  if (!doc.ok()) return doc.error();
  const json::JsonValue* items = doc.value().find(fields::kItems);
  if (items == nullptr || !items->is_array()) {
    return Error::parse("LRS response has no items list");
  }
  std::vector<std::string> plain_items;
  for (const auto& entry : items->as_array()) {
    if (!entry.is_string()) return Error::parse("non-string item in response");
    auto id = de_pseudonymize_item(entry.as_string());
    if (!id.ok()) return id.error();
    plain_items.push_back(std::move(id.value()));
  }

  auto block = encode_response_block(pad_recommendations(std::move(plain_items)));
  if (!block.ok()) return block.error();
  Bytes encrypted;
  if (authenticated) {
    const crypto::AesGcm cipher(k_u);
    encrypted = cipher.seal_with_random_nonce(block.value(), rng);
  } else {
    const crypto::RandomIvCipher cipher(k_u);
    encrypted = cipher.encrypt(block.value(), rng);
  }

  json::JsonValue out{json::JsonObject{}};
  out.set(fields::kPayload, base64_encode(encrypted));
  out.set(fields::kEncryptionMode, authenticated ? "gcm" : "ctr");
  return out.dump();
}

}  // namespace pprox
