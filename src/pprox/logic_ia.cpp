// PPROX-LAYER: ia
#include "pprox/logic_ia.hpp"

#include "common/encoding.hpp"
#include "crypto/gcm.hpp"
#include "crypto/rsa.hpp"
#include "json/json.hpp"
#include "pprox/pseudonymize.hpp"

namespace pprox {

IaLogic::IaLogic(LayerSecrets secrets)
    : secrets_(std::move(secrets)), det_(secrets_.k) {}

Result<IaLogic> IaLogic::from_secrets(ByteView secrets_blob) {
  auto secrets = LayerSecrets::deserialize(secrets_blob);
  if (!secrets.ok()) return secrets.error();
  return IaLogic(std::move(secrets.value()));
}

Result<SensitiveBlock<taint::ItemDomain>> IaLogic::decrypt_item_block(
    std::string_view base64_cipher) const {
  const auto cipher = base64_decode(base64_cipher);
  // PPROX-CT-OK(branch): base64 framing of adversary-chosen wire input.
  if (!cipher) return Error::parse("field is not valid base64");
  auto plain = crypto::rsa_decrypt_oaep(secrets_.sk, *cipher);
  // PPROX-CT-OK(branch): the unpad itself is branch-free (rsa_unpad_oaep);
  // this reveals only the accept/reject bit the response already carries.
  if (!plain.ok()) return plain.error();
  return SensitiveBlock<taint::ItemDomain>{std::move(plain.value())};
}

Result<Bytes> IaLogic::decrypt_key_field(std::string_view base64_cipher) const {
  const auto cipher = base64_decode(base64_cipher);
  // PPROX-CT-OK(branch): base64 framing of adversary-chosen wire input.
  if (!cipher) return Error::parse("field is not valid base64");
  return crypto::rsa_decrypt_oaep(secrets_.sk, *cipher);
}

Result<std::string> IaLogic::transform_post_request(std::string body,
                                                    bool pseudonymize_items) const {
  const auto item_cipher = json::get_string_field(body, fields::kItem);
  // PPROX-CT-OK(branch): presence of the item field is public JSON framing.
  if (!item_cipher) return Error::parse("post has no item field");
  // PPROX-CT-OK(branch): deployment-config flag (paper §6.3 opt-out), fixed
  // per tenant at startup — not per-request secret data.
  if (pseudonymize_items) {
    auto pseudonym =
        pseudonymize_field<taint::ItemDomain>(secrets_.sk, det_, *item_cipher);
    if (!pseudonym.ok()) return pseudonym.error();
    json::replace_string_field(body, fields::kItem, pseudonym.value());
  } else {
    auto block = decrypt_item_block(*item_cipher);
    if (!block.ok()) return block.error();
    auto id = unpad_sensitive_id(block.value());
    if (!id.ok()) return id.error();
    // PPROX-DECLASSIFY: §6.3 item-pseudonymization opt-out — the operator
    // chose a semantics-aware LRS; item ids (never user ids — the domain
    // constraint enforces it) are forwarded in the clear.
    json::replace_string_field(body, fields::kItem,
                               taint::declassify_for_lrs(std::move(id.value())));
  }
  // Optional payload (rating, weight, ...): decrypt and forward in usable
  // form — the LRS needs the actual value, and it carries no identifier.
  // PPROX-CT-OK(branch): presence of the optional payload field is public
  // JSON framing of the adversary-visible request body.
  if (const auto payload_cipher =
          json::get_string_field(body, fields::kPayload)) {
    auto block = decrypt_item_block(*payload_cipher);
    if (!block.ok()) return block.error();
    auto payload = unpad_sensitive_id(block.value());
    if (!payload.ok()) return payload.error();
    // PPROX-DECLASSIFY: event payloads are identifier-free values the LRS
    // must read to train (paper §2.1); they ride the IA path so only the IA
    // layer ever decrypts them.
    json::replace_string_field(
        body, fields::kPayload,
        json::escape(taint::declassify_for_lrs(std::move(payload.value()))));
  }
  return body;
}

Result<IaLogic::GetRequest> IaLogic::transform_get_request(std::string body) const {
  const auto key_cipher = json::get_string_field(body, fields::kTempKey);
  // PPROX-CT-OK(branch): presence of the field is public JSON framing.
  if (!key_cipher) return Error::parse("get has no temporary key field");
  auto k_u = decrypt_key_field(*key_cipher);
  if (!k_u.ok()) return k_u.error();
  if (k_u.value().size() != 32) {
    return Error::crypto("temporary key has wrong length");
  }
  // Strip the key from the forwarded call: the LRS never sees k_u, and all
  // forwarded get calls look identical in shape.
  json::replace_string_field(body, fields::kTempKey, "");
  return GetRequest{std::move(body), std::move(k_u.value())};
}

Result<ItemId> IaLogic::de_pseudonymize_item(
    std::string_view base64_cipher) const {
  const auto cipher = base64_decode(base64_cipher);
  // PPROX-CT-OK(branch): base64/size framing of a stored wire-format row.
  if (!cipher) return Error::parse("pseudonym is not valid base64");
  if (cipher->size() != kIdBlockSize) {
    return Error::parse("pseudonym block has wrong size");
  }
  const SensitiveBlock<taint::ItemDomain> block{det_.decrypt(*cipher)};
  return unpad_sensitive_id(block);
}

Result<std::string> IaLogic::transform_get_response(const std::string& lrs_body,
                                                    ByteView k_u,
                                                    RandomSource& rng,
                                                    bool authenticated) const {
  const auto doc = json::parse(lrs_body);
  if (!doc.ok()) return doc.error();
  const json::JsonValue* items = doc.value().find(fields::kItems);
  if (items == nullptr || !items->is_array()) {
    return Error::parse("LRS response has no items list");
  }
  std::vector<ItemId> plain_items;
  for (const auto& entry : items->as_array()) {
    if (!entry.is_string()) return Error::parse("non-string item in response");
    auto id = de_pseudonymize_item(entry.as_string());
    if (!id.ok()) return id.error();
    plain_items.push_back(std::move(id.value()));
  }

  auto block = encode_sensitive_response_block(
      pad_sensitive_recommendations(std::move(plain_items)));
  if (!block.ok()) return block.error();
  // PPROX-DECLASSIFY: the serialized list is immediately sealed under the
  // per-request key k_u, which only this enclave and the requesting client
  // hold; the UA and the network observe ciphertext of constant size.
  const Bytes& raw_block = taint::declassify_for_encryption(block.value());
  Bytes encrypted;
  if (authenticated) {
    const crypto::AesGcm cipher(k_u);
    encrypted = cipher.seal_with_random_nonce(raw_block, rng);
  } else {
    const crypto::RandomIvCipher cipher(k_u);
    encrypted = cipher.encrypt(raw_block, rng);
  }

  json::JsonValue out{json::JsonObject{}};
  out.set(fields::kPayload, base64_encode(encrypted));
  out.set(fields::kEncryptionMode, authenticated ? "gcm" : "ctr");
  return out.dump();
}

}  // namespace pprox
