// PPROX-LAYER: ia
#include "pprox/logic_ia.hpp"

#include <algorithm>

#include "common/encoding.hpp"
#include "crypto/gcm.hpp"
#include "crypto/rsa.hpp"
#include "json/json.hpp"
#include "pprox/pseudonymize.hpp"

namespace pprox {

IaLogic::IaLogic(LayerSecrets secrets)
    : secrets_(std::move(secrets)), det_(secrets_.k) {}

Result<IaLogic> IaLogic::from_secrets(ByteView secrets_blob) {
  auto secrets = LayerSecrets::deserialize(secrets_blob);
  if (!secrets.ok()) return secrets.error();
  return IaLogic(std::move(secrets.value()));
}

Result<SensitiveBlock<taint::ItemDomain>> IaLogic::decrypt_item_block(
    std::string_view base64_cipher) const {
  const auto cipher = base64_decode(base64_cipher);
  // PPROX-CT-OK(branch): base64 framing of adversary-chosen wire input.
  if (!cipher) return Error::parse("field is not valid base64");
  auto plain = crypto::rsa_decrypt_oaep(secrets_.sk, *cipher);
  // PPROX-CT-OK(branch): the unpad itself is branch-free (rsa_unpad_oaep);
  // this reveals only the accept/reject bit the response already carries.
  if (!plain.ok()) return plain.error();
  return SensitiveBlock<taint::ItemDomain>{std::move(plain.value())};
}

Result<Bytes> IaLogic::decrypt_key_field(std::string_view base64_cipher) const {
  const auto cipher = base64_decode(base64_cipher);
  // PPROX-CT-OK(branch): base64 framing of adversary-chosen wire input.
  if (!cipher) return Error::parse("field is not valid base64");
  return crypto::rsa_decrypt_oaep(secrets_.sk, *cipher);
}

Result<std::string> IaLogic::transform_post_request(std::string body,
                                                    bool pseudonymize_items) const {
  const auto item_cipher = json::get_string_field(body, fields::kItem);
  // PPROX-CT-OK(branch): presence of the item field is public JSON framing.
  if (!item_cipher) return Error::parse("post has no item field");
  // PPROX-CT-OK(branch): deployment-config flag (paper §6.3 opt-out), fixed
  // per tenant at startup — not per-request secret data.
  if (pseudonymize_items) {
    auto pseudonym =
        pseudonymize_field<taint::ItemDomain>(secrets_.sk, det_, *item_cipher);
    if (!pseudonym.ok()) return pseudonym.error();
    json::replace_string_field(body, fields::kItem, pseudonym.value());
  } else {
    auto block = decrypt_item_block(*item_cipher);
    if (!block.ok()) return block.error();
    auto id = unpad_sensitive_id(block.value());
    if (!id.ok()) return id.error();
    // PPROX-DECLASSIFY: §6.3 item-pseudonymization opt-out — the operator
    // chose a semantics-aware LRS; item ids (never user ids — the domain
    // constraint enforces it) are forwarded in the clear.
    json::replace_string_field(body, fields::kItem,
                               taint::declassify_for_lrs(std::move(id.value())));
  }
  // Optional payload (rating, weight, ...): decrypt and forward in usable
  // form — the LRS needs the actual value, and it carries no identifier.
  // PPROX-CT-OK(branch): presence of the optional payload field is public
  // JSON framing of the adversary-visible request body.
  if (const auto payload_cipher =
          json::get_string_field(body, fields::kPayload)) {
    auto block = decrypt_item_block(*payload_cipher);
    if (!block.ok()) return block.error();
    auto payload = unpad_sensitive_id(block.value());
    if (!payload.ok()) return payload.error();
    // PPROX-DECLASSIFY: event payloads are identifier-free values the LRS
    // must read to train (paper §2.1); they ride the IA path so only the IA
    // layer ever decrypts them.
    json::replace_string_field(
        body, fields::kPayload,
        json::escape(taint::declassify_for_lrs(std::move(payload.value()))));
  }
  return body;
}

Result<IaLogic::GetRequest> IaLogic::transform_get_request(std::string body) const {
  const auto key_cipher = json::get_string_field(body, fields::kTempKey);
  // PPROX-CT-OK(branch): presence of the field is public JSON framing.
  if (!key_cipher) return Error::parse("get has no temporary key field");
  auto k_u = decrypt_key_field(*key_cipher);
  if (!k_u.ok()) return k_u.error();
  if (k_u.value().size() != 32) {
    return Error::crypto("temporary key has wrong length");
  }
  // Strip the key from the forwarded call: the LRS never sees k_u, and all
  // forwarded get calls look identical in shape.
  json::replace_string_field(body, fields::kTempKey, "");
  return GetRequest{std::move(body), std::move(k_u.value())};
}

void IaLogic::transform_batch(std::span<IaRequestSlot> slots,
                              BatchArena& /*arena*/) {
  // Posts and gets are JSON rewrites around a single RSA decrypt each —
  // there is no shared keystream to vectorize, so the batch win here is
  // purely the amortized transition: S transforms under ONE ecall. The
  // per-slot transforms reuse the sequential entry points so the results
  // (and error strings) are identical by construction.
  for (IaRequestSlot& slot : slots) {
    // PPROX-CT-OK(branch): request kind is the HTTP method — adversary-
    // visible wire metadata, not secret plaintext.
    if (slot.is_get) {
      auto got = slot.logic->transform_get_request(std::move(*slot.body));
      if (!got.ok()) {
        slot.status = got.error();
        continue;
      }
      *slot.body = std::move(got.value().body);
      slot.k_u = std::move(got.value().k_u);
    } else {
      auto posted = slot.logic->transform_post_request(std::move(*slot.body),
                                                       slot.pseudonymize_items);
      if (!posted.ok()) {
        slot.status = posted.error();
        continue;
      }
      *slot.body = std::move(posted.value());
    }
  }
}

void IaLogic::seal_batch(std::span<IaSealSlot> slots, RandomSource& rng,
                         BatchArena& arena) {
  // Phase 1 — parse every LRS body and gather its pseudonym blocks into one
  // contiguous arena region per slot. Error strings match the sequential
  // transform_get_response path exactly so the differential test can
  // compare failures bit-for-bit too.
  for (IaSealSlot& slot : slots) {
    const auto doc = json::parse(*slot.lrs_body);
    if (!doc.ok()) {
      slot.status = doc.error();
      continue;
    }
    const json::JsonValue* items = doc.value().find(fields::kItems);
    // PPROX-CT-OK(branch): JSON framing of the LRS response body.
    if (items == nullptr || !items->is_array()) {
      slot.status = Error::parse("LRS response has no items list");
      continue;
    }
    const auto& array = items->as_array();
    slot.blocks = arena.alloc(array.size() * kIdBlockSize);
    slot.item_count = 0;
    for (const auto& entry : array) {
      // PPROX-CT-OK(branch): base64/size framing of stored wire-format rows.
      if (!entry.is_string()) {
        slot.status = Error::parse("non-string item in response");
        break;
      }
      const auto cipher = base64_decode(entry.as_string());
      // PPROX-CT-OK(branch): base64 framing of stored wire-format rows.
      if (!cipher) {
        slot.status = Error::parse("pseudonym is not valid base64");
        break;
      }
      // PPROX-CT-OK(branch): size framing of stored wire-format rows.
      if (cipher->size() != kIdBlockSize) {
        slot.status = Error::parse("pseudonym block has wrong size");
        break;
      }
      std::copy(cipher->begin(), cipher->end(),
                slot.blocks.begin() +
                    static_cast<std::ptrdiff_t>(slot.item_count * kIdBlockSize));
      ++slot.item_count;
    }
  }

  // Phase 2 — vectorized de-pseudonymize. det decrypt is zero-IV CTR, i.e.
  // a message-independent keystream XOR: compute it once per tenant logic
  // (the 8-wide AES kernel runs once per tenant per flush) and sweep it
  // across every gathered block.
  const IaLogic* keyed_for = nullptr;
  MutByteView ks{};
  for (IaSealSlot& slot : slots) {
    if (!slot.status.ok()) continue;
    // PPROX-CT-OK(branch): tenant-routing identity of the slot, not secret
    // plaintext — which logic instance a response targets is adversary-visible
    // wire metadata; the gathered blocks stay branch-free (XOR only).
    if (slot.logic != keyed_for) {
      ks = arena.alloc(kIdBlockSize);
      slot.logic->det_.keystream(ks);
      keyed_for = slot.logic;
    }
    for (std::size_t i = 0; i < slot.item_count; ++i) {
      xor_into(slot.blocks.subspan(i * kIdBlockSize, kIdBlockSize), ks);
    }
  }

  // Phase 3 — unpad, pad to the constant list length, and seal under k_u.
  // Slot order fixes the rng consumption order, and failed slots consume
  // none — exactly what S sequential calls against the same source do.
  for (IaSealSlot& slot : slots) {
    if (!slot.status.ok()) continue;
    std::vector<ItemId> plain_items;
    plain_items.reserve(slot.item_count);
    for (std::size_t i = 0; i < slot.item_count; ++i) {
      const auto sub = slot.blocks.subspan(i * kIdBlockSize, kIdBlockSize);
      const SensitiveBlock<taint::ItemDomain> block{Bytes(sub.begin(), sub.end())};
      auto id = unpad_sensitive_id(block);
      if (!id.ok()) {
        slot.status = id.error();
        break;
      }
      plain_items.push_back(std::move(id.value()));
    }
    if (!slot.status.ok()) continue;
    auto block = encode_sensitive_response_block(
        pad_sensitive_recommendations(std::move(plain_items)));
    if (!block.ok()) {
      slot.status = block.error();
      continue;
    }
    // PPROX-DECLASSIFY: the serialized list is immediately sealed under the
    // per-request key k_u, which only this enclave and the requesting client
    // hold; the UA and the network observe ciphertext of constant size.
    const Bytes& raw_block = taint::declassify_for_encryption(block.value());
    Bytes encrypted;
    // PPROX-CT-OK(branch): deployment-config flag, fixed per proxy.
    if (slot.authenticated) {
      const crypto::AesGcm cipher(slot.k_u);
      encrypted = cipher.seal_with_random_nonce(raw_block, rng);
    } else {
      const crypto::RandomIvCipher cipher(slot.k_u);
      encrypted = cipher.encrypt(raw_block, rng);
    }
    json::JsonValue out{json::JsonObject{}};
    out.set(fields::kPayload, base64_encode(encrypted));
    out.set(fields::kEncryptionMode, slot.authenticated ? "gcm" : "ctr");
    slot.sealed = out.dump();
  }
}

Result<ItemId> IaLogic::de_pseudonymize_item(
    std::string_view base64_cipher) const {
  const auto cipher = base64_decode(base64_cipher);
  // PPROX-CT-OK(branch): base64/size framing of a stored wire-format row.
  if (!cipher) return Error::parse("pseudonym is not valid base64");
  if (cipher->size() != kIdBlockSize) {
    return Error::parse("pseudonym block has wrong size");
  }
  const SensitiveBlock<taint::ItemDomain> block{det_.decrypt(*cipher)};
  return unpad_sensitive_id(block);
}

Result<std::string> IaLogic::transform_get_response(const std::string& lrs_body,
                                                    ByteView k_u,
                                                    RandomSource& rng,
                                                    bool authenticated) const {
  const auto doc = json::parse(lrs_body);
  if (!doc.ok()) return doc.error();
  const json::JsonValue* items = doc.value().find(fields::kItems);
  if (items == nullptr || !items->is_array()) {
    return Error::parse("LRS response has no items list");
  }
  std::vector<ItemId> plain_items;
  for (const auto& entry : items->as_array()) {
    if (!entry.is_string()) return Error::parse("non-string item in response");
    auto id = de_pseudonymize_item(entry.as_string());
    if (!id.ok()) return id.error();
    plain_items.push_back(std::move(id.value()));
  }

  auto block = encode_sensitive_response_block(
      pad_sensitive_recommendations(std::move(plain_items)));
  if (!block.ok()) return block.error();
  // PPROX-DECLASSIFY: the serialized list is immediately sealed under the
  // per-request key k_u, which only this enclave and the requesting client
  // hold; the UA and the network observe ciphertext of constant size.
  const Bytes& raw_block = taint::declassify_for_encryption(block.value());
  Bytes encrypted;
  if (authenticated) {
    const crypto::AesGcm cipher(k_u);
    encrypted = cipher.seal_with_random_nonce(raw_block, rng);
  } else {
    const crypto::RandomIvCipher cipher(k_u);
    encrypted = cipher.encrypt(raw_block, rng);
  }

  json::JsonValue out{json::JsonObject{}};
  out.set(fields::kPayload, base64_encode(encrypted));
  out.set(fields::kEncryptionMode, authenticated ? "gcm" : "ctr");
  return out.dump();
}

}  // namespace pprox
