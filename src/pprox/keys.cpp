#include "pprox/keys.hpp"

#include "crypto/hybrid.hpp"

namespace pprox {
namespace {

void put_field(Bytes& out, ByteView field) {
  out.push_back(static_cast<std::uint8_t>(field.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(field.size()));
  append(out, field);
}

// The keyring blob's *contents* are secret; its length-prefix framing is
// not — field lengths are the key-size parameters (modulus width, 32-byte
// symmetric key) that the format itself publishes. Cursor arithmetic over
// that framing is therefore public control flow.
bool get_field(ByteView blob, std::size_t& offset, Bytes& out) {
  if (offset + 2 > blob.size()) return false;  // PPROX-CT-OK(branch): framing
  const std::size_t len =
      (static_cast<std::size_t>(blob[offset]) << 8) |  // PPROX-CT-OK(index): framing
      blob[offset + 1];
  offset += 2;
  if (offset + len > blob.size()) return false;  // PPROX-CT-OK(branch): framing
  out.assign(blob.begin() + static_cast<std::ptrdiff_t>(offset),
             blob.begin() + static_cast<std::ptrdiff_t>(offset + len));
  offset += len;
  return true;
}

}  // namespace

Bytes LayerSecrets::serialize() const {
  Bytes out;
  for (const crypto::BigInt* v :
       {&sk.n, &sk.e, &sk.d, &sk.p, &sk.q, &sk.d_p, &sk.d_q, &sk.q_inv}) {
    put_field(out, v->to_bytes_be());
  }
  put_field(out, k);
  return out;
}

Result<LayerSecrets> LayerSecrets::deserialize(ByteView blob) {
  LayerSecrets secrets;
  std::size_t offset = 0;
  crypto::BigInt* fields[] = {&secrets.sk.n,   &secrets.sk.e,
                              &secrets.sk.d,   &secrets.sk.p,
                              &secrets.sk.q,   &secrets.sk.d_p,
                              &secrets.sk.d_q, &secrets.sk.q_inv};
  for (crypto::BigInt* field : fields) {
    Bytes raw;
    if (!get_field(blob, offset, raw)) {
      return Error::parse("LayerSecrets: truncated key field");
    }
    *field = crypto::BigInt::from_bytes_be(raw);
  }
  if (!get_field(blob, offset, secrets.k)) {
    return Error::parse("LayerSecrets: truncated symmetric key");
  }
  // PPROX-CT-OK(branch): end-of-blob framing check; see get_field above.
  if (offset != blob.size()) {
    return Error::parse("LayerSecrets: trailing bytes");
  }
  if (secrets.k.size() != 32) {
    return Error::parse("LayerSecrets: symmetric key must be 32 bytes");
  }
  if (secrets.sk.n.is_zero()) {
    return Error::parse("LayerSecrets: empty modulus");
  }
  return secrets;
}

ClientParams ApplicationKeys::client_params() const {
  return ClientParams{ua.sk.public_key(), ia.sk.public_key()};
}

ApplicationKeys ApplicationKeys::generate(RandomSource& rng, std::size_t rsa_bits) {
  ApplicationKeys keys;
  keys.ua.sk = crypto::rsa_generate(rsa_bits, rng).priv;
  keys.ua.k = rng.bytes(32);
  keys.ia.sk = crypto::rsa_generate(rsa_bits, rng).priv;
  keys.ia.k = rng.bytes(32);
  return keys;
}

Status attest_and_provision(enclave::Enclave& enclave,
                            const enclave::AttestationService& authority,
                            const enclave::Measurement& expected,
                            const LayerSecrets& secrets, RandomSource& rng) {
  const Bytes nonce = rng.bytes(16);
  const auto quote = authority.issue_quote(enclave, nonce);
  if (!quote.ok()) return quote.error();
  if (!enclave::AttestationService::verify_quote(
          quote.value(), authority.root_public_key(), expected, nonce,
          enclave.channel_public_key())) {
    return Error::denied("attestation failed: quote rejected");
  }
  auto blob =
      crypto::hybrid_encrypt(enclave.channel_public_key(), secrets.serialize(), rng);
  if (!blob.ok()) return blob.error();
  return enclave.provision(blob.value());
}

}  // namespace pprox
